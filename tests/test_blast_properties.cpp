// Property-based tests of the extension algorithms against brute-force
// references, over randomized inputs (parameterized by seed).
#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <vector>

#include "blast/extend.h"
#include "blast/scoring.h"
#include "util/rng.h"

namespace pioblast::blast {
namespace {

constexpr int kNegInf = std::numeric_limits<int>::min() / 4;

std::vector<std::uint8_t> random_protein(util::Rng& rng, std::size_t len) {
  std::vector<std::uint8_t> seq(len);
  for (auto& c : seq) c = static_cast<std::uint8_t>(rng.below(20));
  return seq;
}

/// Mutates ~rate of the residues (keeps homology detectable).
std::vector<std::uint8_t> mutate(util::Rng& rng,
                                 const std::vector<std::uint8_t>& parent,
                                 double rate) {
  auto child = parent;
  for (auto& c : child)
    if (rng.uniform() < rate) c = static_cast<std::uint8_t>(rng.below(20));
  return child;
}

/// Reference: full (unpruned) anchored affine-gap DP for the forward
/// extension from (0,0) with no leading gaps — the exact optimum that
/// extend_gapped must reach when the X-drop never prunes. Gap of length k
/// costs open + k * extend (NCBI convention).
int reference_extension_score(const std::vector<std::uint8_t>& q,
                              const std::vector<std::uint8_t>& s,
                              const ScoringMatrix& m, int open, int extend) {
  const std::size_t rows = q.size();
  const std::size_t cols = s.size();
  const int open_cost = open + extend;
  std::vector<std::vector<int>> H(rows + 1, std::vector<int>(cols + 1, kNegInf));
  std::vector<std::vector<int>> E = H, F = H;
  H[0][0] = 0;
  int best = 0;
  for (std::size_t i = 0; i <= rows; ++i) {
    for (std::size_t j = 0; j <= cols; ++j) {
      if (i == 0 && j == 0) continue;
      int e = kNegInf, f = kNegInf, h = kNegInf;
      if (j > 0) {
        if (H[i][j - 1] != kNegInf) e = H[i][j - 1] - open_cost;
        if (E[i][j - 1] != kNegInf) e = std::max(e, E[i][j - 1] - extend);
      }
      if (i > 0) {
        if (H[i - 1][j] != kNegInf) f = H[i - 1][j] - open_cost;
        if (F[i - 1][j] != kNegInf) f = std::max(f, F[i - 1][j] - extend);
      }
      if (i > 0 && j > 0 && H[i - 1][j - 1] != kNegInf)
        h = H[i - 1][j - 1] + m.score(q[i - 1], s[j - 1]);
      h = std::max({h, e, f});
      E[i][j] = e;
      F[i][j] = f;
      H[i][j] = h;
      best = std::max(best, h);
    }
  }
  return best;
}

class ExtensionProperties : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ExtensionProperties, HugeXdropMatchesExactDp) {
  util::Rng rng(GetParam());
  const auto m = ScoringMatrix::blosum62();
  for (int trial = 0; trial < 8; ++trial) {
    const auto q = random_protein(rng, 12 + rng.below(30));
    const auto s = mutate(rng, q, 0.3);
    const int expect = reference_extension_score(q, s, m, 11, 1);
    const auto got = extend_gapped(q, s, 0, 0, m, 11, 1, /*xdrop=*/1 << 20);
    EXPECT_EQ(got.score, expect) << "trial " << trial;
  }
}

TEST_P(ExtensionProperties, XdropNeverBeatsExactDp) {
  util::Rng rng(GetParam() ^ 0xABCD);
  const auto m = ScoringMatrix::blosum62();
  for (int trial = 0; trial < 8; ++trial) {
    const auto q = random_protein(rng, 10 + rng.below(40));
    const auto s = random_protein(rng, 10 + rng.below(40));
    const int exact = reference_extension_score(q, s, m, 11, 1);
    const auto pruned = extend_gapped(q, s, 0, 0, m, 11, 1, /*xdrop=*/20);
    EXPECT_LE(pruned.score, exact);
    EXPECT_GE(pruned.score, 0);
  }
}

TEST_P(ExtensionProperties, TracebackReplaysToReportedScore) {
  util::Rng rng(GetParam() ^ 0x1234);
  const auto m = ScoringMatrix::blosum62();
  for (int trial = 0; trial < 10; ++trial) {
    const auto q = random_protein(rng, 30 + rng.below(100));
    auto s = mutate(rng, q, 0.15);
    // Occasionally delete a small block to force gaps.
    if (s.size() > 20 && rng.uniform() < 0.7) {
      const auto cut = 5 + rng.below(5);
      const auto at = rng.below(s.size() - cut);
      s.erase(s.begin() + static_cast<std::ptrdiff_t>(at),
              s.begin() + static_cast<std::ptrdiff_t>(at + cut));
    }
    const std::uint32_t anchor = static_cast<std::uint32_t>(rng.below(8));
    const auto ext = extend_gapped(q, s, anchor, anchor, m, 11, 1, 38);

    int replay = 0;
    std::uint32_t qi = ext.qstart;
    std::uint64_t si = ext.sstart;
    bool in_gap = false;
    for (AlignOp op : ext.ops) {
      if (op == AlignOp::kMatch) {
        replay += m.score(q[qi], s[si]);
        ++qi;
        ++si;
        in_gap = false;
      } else {
        replay -= in_gap ? 1 : 12;
        in_gap = true;
        if (op == AlignOp::kInsert) ++qi;
        else ++si;
      }
    }
    EXPECT_EQ(qi, ext.qend);
    EXPECT_EQ(si, ext.send);
    EXPECT_EQ(replay, ext.score);
  }
}

TEST_P(ExtensionProperties, UngappedMatchesDiagonalBruteForce) {
  util::Rng rng(GetParam() ^ 0x77);
  const auto m = ScoringMatrix::blosum62();
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t len = 20 + rng.below(60);
    const auto q = random_protein(rng, len);
    const auto s = mutate(rng, q, 0.4);
    const std::uint32_t seed_pos = static_cast<std::uint32_t>(rng.below(len - 3));
    const auto ext = extend_ungapped(q, s, seed_pos, seed_pos, 3, m,
                                     /*xdrop=*/1 << 20);
    // With an unbounded X-drop, the result must be the best-scoring run on
    // the diagonal containing [seed, seed+3).
    int best = kNegInf;
    for (std::size_t a = 0; a <= seed_pos; ++a) {
      int run = 0;
      int local_best = kNegInf;
      for (std::size_t b = a; b < len; ++b) {
        run += m.score(q[b], s[b]);
        if (b + 1 >= seed_pos + 3 && run > local_best) local_best = run;
      }
      best = std::max(best, local_best);
    }
    EXPECT_EQ(ext.score, best);
    EXPECT_LE(ext.qstart, seed_pos);
    EXPECT_GE(ext.qend, seed_pos + 3);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExtensionProperties,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 42u));

}  // namespace
}  // namespace pioblast::blast
