// Tests for the BLAST engine's building blocks: scoring matrices,
// Karlin–Altschul statistics, word indexes, and seed extension.
#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "blast/extend.h"
#include "blast/scoring.h"
#include "blast/seed.h"
#include "blast/stats.h"
#include "seqdb/alphabet.h"

namespace pioblast::blast {
namespace {

using seqdb::SeqType;

std::vector<std::uint8_t> prot(const std::string& s) {
  return seqdb::encode_sequence(SeqType::kProtein, s);
}
std::vector<std::uint8_t> dna(const std::string& s) {
  return seqdb::encode_sequence(SeqType::kNucleotide, s);
}

int score_of(const ScoringMatrix& m, char a, char b) {
  return m.score(seqdb::encode_residue(SeqType::kProtein, a),
                 seqdb::encode_residue(SeqType::kProtein, b));
}

// ---------- scoring ------------------------------------------------------

TEST(Blosum62, KnownEntries) {
  const auto m = ScoringMatrix::blosum62();
  EXPECT_EQ(score_of(m, 'W', 'W'), 11);
  EXPECT_EQ(score_of(m, 'A', 'A'), 4);
  EXPECT_EQ(score_of(m, 'C', 'C'), 9);
  EXPECT_EQ(score_of(m, 'A', 'W'), -3);
  EXPECT_EQ(score_of(m, 'E', 'Q'), 2);
  EXPECT_EQ(score_of(m, 'I', 'L'), 2);
}

TEST(Blosum62, IsSymmetric) {
  const auto m = ScoringMatrix::blosum62();
  for (std::uint8_t a = 0; a < 24; ++a)
    for (std::uint8_t b = 0; b < 24; ++b) EXPECT_EQ(m.score(a, b), m.score(b, a));
}

TEST(Blosum62, DiagonalIsRowMaxForStandardResidues) {
  const auto m = ScoringMatrix::blosum62();
  for (std::uint8_t a = 0; a < 20; ++a) {
    EXPECT_EQ(m.row_max(a), m.score(a, a)) << "residue " << int(a);
  }
}

TEST(Blosum62, KarlinParamsArePublishedValues) {
  const auto m = ScoringMatrix::blosum62();
  EXPECT_NEAR(m.ungapped().lambda, 0.3176, 1e-6);
  EXPECT_NEAR(m.gapped().lambda, 0.267, 1e-6);
  EXPECT_NEAR(m.gapped().K, 0.041, 1e-6);
}

TEST(DnaMatrix, MatchMismatchStructure) {
  const auto m = ScoringMatrix::dna(1, -3);
  const auto A = seqdb::encode_residue(SeqType::kNucleotide, 'A');
  const auto C = seqdb::encode_residue(SeqType::kNucleotide, 'C');
  const auto N = seqdb::encode_residue(SeqType::kNucleotide, 'N');
  EXPECT_EQ(m.score(A, A), 1);
  EXPECT_EQ(m.score(A, C), -3);
  EXPECT_EQ(m.score(N, N), -3);  // N never matches
  EXPECT_EQ(m.score(A, N), -3);
}

// ---------- stats --------------------------------------------------------

TEST(Stats, BitScoreFormula) {
  const KarlinParams kp{0.267, 0.041, 0.14};
  // bits = (lambda*S - ln K) / ln 2
  EXPECT_NEAR(bit_score(kp, 100), (0.267 * 100 - std::log(0.041)) / std::log(2.0),
              1e-9);
}

TEST(Stats, EvalueDecreasesWithScore) {
  const KarlinParams kp{0.267, 0.041, 0.14};
  const GlobalDbStats db{4'000'000, 10'000};
  const auto adjust = length_adjustment(kp, 300, db);
  double prev = 1e300;
  for (int s = 30; s <= 300; s += 30) {
    const double e = evalue(kp, s, 300, db, adjust);
    EXPECT_LT(e, prev);
    prev = e;
  }
}

TEST(Stats, EvalueScalesWithDbSize) {
  const KarlinParams kp{0.267, 0.041, 0.14};
  const GlobalDbStats small{1'000'000, 3'000};
  const GlobalDbStats big{100'000'000, 300'000};
  const auto adj_small = length_adjustment(kp, 300, small);
  const auto adj_big = length_adjustment(kp, 300, big);
  EXPECT_LT(evalue(kp, 80, 300, small, adj_small),
            evalue(kp, 80, 300, big, adj_big));
}

TEST(Stats, LengthAdjustmentReasonable) {
  const KarlinParams kp{0.267, 0.041, 0.14};
  const GlobalDbStats db{1'000'000'000, 2'000'000};  // nr-scale
  const auto l = length_adjustment(kp, 300, db);
  EXPECT_GT(l, 50u);   // substantial for gapped BLOSUM62
  EXPECT_LT(l, 299u);  // never consumes the whole query
}

TEST(Stats, LengthAdjustmentMonotoneInQueryLength) {
  const KarlinParams kp{0.267, 0.041, 0.14};
  const GlobalDbStats db{10'000'000, 30'000};
  EXPECT_LE(length_adjustment(kp, 100, db), length_adjustment(kp, 10000, db));
}

// ---------- word index ----------------------------------------------------

TEST(WordIndex, SelfWordsAlwaysIndexed) {
  // Every query 3-mer scores at least T=11 against itself... not all do
  // (e.g. AAA scores 12, but e.g. "AGS" = 4+6+4 = 14). Use a word with a
  // high self-score and check its own position is found.
  const auto q = prot("WWWCCC");
  const auto m = ScoringMatrix::blosum62();
  WordIndex idx(q, m, SearchParams::blastp_defaults());
  const auto* hits = idx.probe(q.data());  // WWW, self-score 33
  ASSERT_NE(hits, nullptr);
  EXPECT_NE(std::find(hits->begin(), hits->end(), 0u), hits->end());
}

TEST(WordIndex, NeighborhoodContainsSimilarWords) {
  const auto q = prot("ILV");  // hydrophobic triple
  const auto m = ScoringMatrix::blosum62();
  WordIndex idx(q, m, SearchParams::blastp_defaults());
  // VLV scores 3+4+4 = 11 >= T: should be in ILV's neighborhood.
  const auto w = prot("VLV");
  const auto* hits = idx.probe(w.data());
  ASSERT_NE(hits, nullptr);
  EXPECT_EQ((*hits)[0], 0u);
}

TEST(WordIndex, DissimilarWordsExcluded) {
  const auto q = prot("WWW");
  const auto m = ScoringMatrix::blosum62();
  WordIndex idx(q, m, SearchParams::blastp_defaults());
  const auto w = prot("GGG");  // scores -2*3 against WWW
  EXPECT_EQ(idx.probe(w.data()), nullptr);
}

TEST(WordIndex, HigherThresholdShrinksNeighborhood) {
  const auto q = prot("MKVLAWGGSTNDQERHILKF");
  const auto m = ScoringMatrix::blosum62();
  auto params = SearchParams::blastp_defaults();
  params.threshold = 11;
  WordIndex loose(q, m, params);
  params.threshold = 13;
  WordIndex tight(q, m, params);
  EXPECT_GT(loose.total_entries(), tight.total_entries());
}

TEST(WordIndex, ShortQueryYieldsNothing) {
  const auto q = prot("MK");
  const auto m = ScoringMatrix::blosum62();
  WordIndex idx(q, m, SearchParams::blastp_defaults());
  EXPECT_EQ(idx.total_entries(), 0u);
}

TEST(WordIndex, DnaExactWordsOnly) {
  const std::string text = "ACGTACGTACGTAAA";
  const auto q = dna(text);
  const auto m = ScoringMatrix::dna();
  WordIndex idx(q, m, SearchParams::blastn_defaults());
  // The word starting at 0 must be found at position 0 (and also at 4, 8
  // for this periodic sequence... position 4 shifts the word, still equal).
  const auto* hits = idx.probe(q.data());
  ASSERT_NE(hits, nullptr);
  EXPECT_NE(std::find(hits->begin(), hits->end(), 0u), hits->end());
  // A word absent from the query probes null.
  const auto other = dna("TTTTTTTTTTT");
  EXPECT_EQ(idx.probe(other.data()), nullptr);
}

TEST(WordIndex, DnaWordsWithNAreSkipped) {
  const auto q = dna("ACGTACGTACGNACGTACGTACG");
  const auto m = ScoringMatrix::dna();
  WordIndex idx(q, m, SearchParams::blastn_defaults());
  // Words overlapping the N (positions 1..11) are not indexed; with 23
  // bases and w=11 there would be 13 words, 11 of which straddle the N.
  EXPECT_EQ(idx.total_entries(), 2u);
  const auto n_word = dna("CGTACGTACGN");
  EXPECT_EQ(idx.probe(n_word.data()), nullptr);
}

// ---------- ungapped extension ---------------------------------------------

TEST(UngappedExtension, PerfectMatchExtendsFully) {
  const auto q = prot("MKVLAWERTYHHGG");
  const auto s = prot("MKVLAWERTYHHGG");
  const auto m = ScoringMatrix::blosum62();
  const auto ext = extend_ungapped(q, s, 5, 5, 3, m, 16);
  EXPECT_EQ(ext.qstart, 0u);
  EXPECT_EQ(ext.qend, q.size());
  EXPECT_EQ(ext.sstart, 0u);
  EXPECT_EQ(ext.send, s.size());
  int self = 0;
  for (auto c : q) self += m.score(c, c);
  EXPECT_EQ(ext.score, self);
}

TEST(UngappedExtension, StopsAtXDrop) {
  // A strong core flanked by hostile residues: extension must not cross
  // the junk once the score has dropped by more than X.
  const auto q = prot("WWWWWW" "GGGGGGGGGG" "WWWWWW");
  const auto s = prot("WWWWWW" "PPPPPPPPPP" "WWWWWW");
  const auto m = ScoringMatrix::blosum62();
  const auto ext = extend_ungapped(q, s, 0, 0, 3, m, 16);
  // G vs P is -2: after ~8 columns the drop exceeds 16.
  EXPECT_LE(ext.qend, 6u + 9u);
  EXPECT_EQ(ext.qstart, 0u);
  EXPECT_EQ(ext.score, 6 * 11);
}

TEST(UngappedExtension, LeftAndRightSymmetric) {
  const auto q = prot("GGGGGWWWWWWGGGGG");
  const auto s = prot("PPPPPWWWWWWPPPPP");
  const auto m = ScoringMatrix::blosum62();
  const auto ext = extend_ungapped(q, s, 6, 6, 3, m, 16);
  EXPECT_EQ(ext.qstart, 5u);
  EXPECT_EQ(ext.qend, 11u);
  EXPECT_EQ(ext.score, 6 * 11);
}

TEST(UngappedExtension, CountsCells) {
  const auto q = prot("MKVLAWERTY");
  const auto s = prot("MKVLAWERTY");
  const auto m = ScoringMatrix::blosum62();
  const auto ext = extend_ungapped(q, s, 3, 3, 3, m, 16);
  EXPECT_GT(ext.cells, 3u);
}

// ---------- gapped extension -------------------------------------------------

GappedExtension run_gapped(const std::string& qs, const std::string& ss,
                           std::uint32_t aq, std::uint64_t as) {
  const auto q = prot(qs);
  const auto s = prot(ss);
  const auto m = ScoringMatrix::blosum62();
  return extend_gapped(q, s, aq, as, m, 11, 1, 38);
}

TEST(GappedExtension, IdenticalSequencesAlignEndToEnd) {
  const std::string seq = "MKVLAWERTYHISPQNDCFGMKVLAWERTYHISPQNDCFG";
  const auto ext = run_gapped(seq, seq, 20, 20);
  EXPECT_EQ(ext.qstart, 0u);
  EXPECT_EQ(ext.qend, seq.size());
  EXPECT_EQ(ext.sstart, 0u);
  EXPECT_EQ(ext.send, seq.size());
  EXPECT_EQ(ext.ops.size(), seq.size());
  for (auto op : ext.ops) EXPECT_EQ(op, AlignOp::kMatch);
}

TEST(GappedExtension, ScoreMatchesTracebackReplay) {
  const std::string a = "MKVLAWERTYHISPQNDCFGAAAA";
  const std::string b = "MKVLAWERTYISPQNDCFGAAAA";  // H deleted
  const auto ext = run_gapped(a, b, 2, 2);
  const auto q = prot(a);
  const auto s = prot(b);
  const auto m = ScoringMatrix::blosum62();
  // Replay the ops and recompute the score with NCBI gap costs.
  int replay = 0;
  std::uint32_t qi = ext.qstart;
  std::uint64_t si = ext.sstart;
  bool in_gap = false;
  for (auto op : ext.ops) {
    if (op == AlignOp::kMatch) {
      replay += m.score(q[qi], s[si]);
      ++qi;
      ++si;
      in_gap = false;
    } else {
      replay -= in_gap ? 1 : 12;  // open 11 + extend 1, then 1 per extra
      in_gap = true;
      if (op == AlignOp::kInsert) ++qi; else ++si;
    }
  }
  EXPECT_EQ(qi, ext.qend);
  EXPECT_EQ(si, ext.send);
  EXPECT_EQ(replay, ext.score);
}

TEST(GappedExtension, BridgesASmallGap) {
  const std::string a = "WWWWWWCCCCCCWWWWWW";
  const std::string b = "WWWWWWCCKKCCCCWWWWWW";  // two inserted residues
  const auto ext = run_gapped(a, b, 3, 3);
  // The alignment should span both W-blocks, paying one 2-long gap.
  EXPECT_EQ(ext.qstart, 0u);
  EXPECT_EQ(ext.qend, a.size());
  EXPECT_EQ(ext.send, b.size());
  int deletes = 0;
  for (auto op : ext.ops)
    if (op == AlignOp::kDelete) ++deletes;
  EXPECT_EQ(deletes, 2);
}

TEST(GappedExtension, AnchorInsideHomologousCore) {
  // Anchoring mid-core must recover the full core even with noisy flanks.
  const std::string core = "WCWCWCWCWCWC";
  const std::string a = "GGGG" + core + "GGGG";
  const std::string b = "PPPP" + core + "PPPP";
  const auto ext = run_gapped(a, b, 8, 8);
  EXPECT_LE(ext.qstart, 4u);
  EXPECT_GE(ext.qend, 4u + core.size());
}

TEST(GappedExtension, EmptyLeftContext) {
  const std::string seq = "MKVLAWERTY";
  const auto ext = run_gapped(seq, seq, 0, 0);
  EXPECT_EQ(ext.qstart, 0u);
  EXPECT_EQ(ext.qend, seq.size());
}

TEST(GappedExtension, CellsCounted) {
  const std::string seq = "MKVLAWERTYHISPQNDCFG";
  const auto ext = run_gapped(seq, seq, 10, 10);
  EXPECT_GT(ext.cells, seq.size());
}

}  // namespace
}  // namespace pioblast::blast
