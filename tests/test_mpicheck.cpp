// Tests for mpicheck (ctest label: mpicheck): the deterministic
// cooperative scheduler, schedule traces and replay, the systematic
// explorer (seeded random, preemption-bounded, sleep-set DPOR-lite) with
// failing-trace shrinking, and the happens-before + lockset race
// detector.
//
// The two seeded interleaving bugs required by the roadmap live here: a
// reordered collective and a lost-wakeup serve-loop variant. Both pass
// the canonical baseline schedule — a single default run misses them —
// and both are found, shrunk, and replayed by the explorer.
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <set>
#include <string>
#include <vector>

#include "driver/metrics.h"
#include "driver/scheduler.h"
#include "driver/work_queue.h"
#include "mpiblast/mpiblast.h"
#include "mpicheck/coop.h"
#include "mpicheck/explore.h"
#include "mpicheck/race.h"
#include "mpicheck/schedule.h"
#include "mpisim/fault.h"
#include "mpisim/mailbox.h"
#include "mpisim/runtime.h"
#include "seqdb/generator.h"
#include "seqdb/partition.h"
#include "util/error.h"

namespace pioblast::mpicheck {
namespace {

sim::ClusterConfig test_cluster() { return sim::ClusterConfig::ornl_altix(); }

using RankFn = std::function<void(mpisim::Process&)>;

/// Wraps a plain rank function as a re-runnable Checker job.
Checker::Job job_of(int nranks, RankFn fn, mpisim::FaultPlan faults = {}) {
  return [nranks, fn = std::move(fn), faults = std::move(faults)](
             mpisim::ScheduleHook* schedule, mpisim::RaceHook* race) {
    mpisim::RunOptions opts;
    opts.faults = faults;
    opts.schedule = schedule;
    opts.race = race;
    mpisim::run(nranks, test_cluster(), fn, opts);
  };
}

/// The chosen-rank sequence of a completed coop run.
std::vector<int> chosen_of(const CoopScheduler& coop) {
  std::vector<int> out;
  for (const DecisionRecord& d : coop.records()) out.push_back(d.chosen);
  return out;
}

// ---------- schedule traces ------------------------------------------------

TEST(ScheduleTrace, FormatParseRoundTrip) {
  Schedule s;
  s.push_back(Decision{0, {}});
  s.push_back(Decision{2, {}});
  s.push_back(Decision{1, {}});
  const std::string text = format_schedule(s);
  EXPECT_EQ(text, "0,2,1");
  const Schedule back = parse_schedule(text);
  ASSERT_EQ(back.size(), 3u);
  EXPECT_EQ(back[0].rank, 0);
  EXPECT_EQ(back[1].rank, 2);
  EXPECT_EQ(back[2].rank, 1);
}

TEST(ScheduleTrace, ParseRejectsGarbage) {
  EXPECT_THROW(parse_schedule("0,x,1"), util::RuntimeError);
  EXPECT_THROW(parse_schedule("0,,1"), util::RuntimeError);
  EXPECT_THROW(parse_schedule("-3"), util::RuntimeError);
}

// ---------- cooperative scheduler: determinism and replay ------------------

/// Two workers race their messages to an any-source master; every
/// interleaving is legal, so this job only probes determinism.
void fan_in_job(mpisim::Process& p) {
  constexpr int kTag = 7;
  if (p.rank() == 0) {
    p.recv(mpisim::kAnySource, kTag);
    p.recv(mpisim::kAnySource, kTag);
  } else {
    p.send(0, kTag, {});
  }
  p.barrier();
}

std::vector<int> run_fan_in(const CoopScheduler::Chooser& chooser) {
  CoopScheduler coop(chooser);
  mpisim::RunOptions opts;
  opts.schedule = &coop;
  mpisim::run(3, test_cluster(), fan_in_job, opts);
  return chosen_of(coop);
}

TEST(CoopScheduler, SameSeedSameTrace) {
  const auto a = run_fan_in(CoopScheduler::random(42));
  const auto b = run_fan_in(CoopScheduler::random(42));
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, b);
}

TEST(CoopScheduler, ForcedReplayReproducesEveryDecision) {
  CoopScheduler first(CoopScheduler::random(5));
  mpisim::RunOptions opts;
  opts.schedule = &first;
  mpisim::run(3, test_cluster(), fan_in_job, opts);
  ASSERT_FALSE(first.records().empty());

  CoopScheduler replay(CoopScheduler::forced(first.schedule()));
  opts.schedule = &replay;
  mpisim::run(3, test_cluster(), fan_in_job, opts);
  EXPECT_EQ(chosen_of(first), chosen_of(replay));
}

TEST(CoopScheduler, RecordsOnlyMultiChoicePoints) {
  CoopScheduler coop;  // baseline: lowest runnable rank
  mpisim::RunOptions opts;
  opts.schedule = &coop;
  mpisim::run(3, test_cluster(), fan_in_job, opts);
  for (const DecisionRecord& d : coop.records()) {
    EXPECT_GE(d.enabled.size(), 2u);
    EXPECT_EQ(d.enabled.size(), d.ops.size());
    EXPECT_TRUE(std::find(d.enabled.begin(), d.enabled.end(), d.chosen) !=
                d.enabled.end());
  }
}

TEST(CoopScheduler, StuckHandlerFiresOnDeadlockWithVerifierOff) {
  // A receive cycle with the verifier disabled: only the scheduler's
  // no-runnable-but-blocked backstop can unwedge the run.
  CoopScheduler coop;
  mpisim::RunOptions opts;
  opts.schedule = &coop;
  opts.verify.enabled = false;
  EXPECT_THROW(mpisim::run(
                   2, test_cluster(),
                   [](mpisim::Process& p) {
                     p.recv(1 - p.rank(), 3);
                   },
                   opts),
               mpisim::VerifyError);
  EXPECT_TRUE(coop.went_stuck());
}

// ---------- seeded bug 1: reordered collective -----------------------------

/// The master derives its collective order from the *arrival order* of
/// any-source messages: if worker 2's hello overtakes worker 1's, the
/// master issues barrier-before-bcast while every worker issues
/// bcast-before-barrier. Classic nondeterministic protocol bug — latent
/// under the baseline schedule, where worker 1 always runs first.
void reordered_collective_job(mpisim::Process& p) {
  constexpr int kTagHello = 7;
  std::vector<std::uint8_t> blob;
  if (p.rank() == 0) {
    const mpisim::Message first = p.recv(mpisim::kAnySource, kTagHello);
    p.recv(mpisim::kAnySource, kTagHello);
    if (first.src == 1) {
      p.bcast(blob, 0);
      p.barrier();
    } else {
      p.barrier();  // BUG: collective order depends on message arrival
      p.bcast(blob, 0);
    }
  } else {
    p.send(0, kTagHello, {});
    p.bcast(blob, 0);
    p.barrier();
  }
}

TEST(SeededBugs, ReorderedCollectivePassesTheBaselineSchedule) {
  CoopScheduler coop;  // canonical baseline: lowest runnable rank
  mpisim::RunOptions opts;
  opts.schedule = &coop;
  EXPECT_NO_THROW(
      mpisim::run(3, test_cluster(), reordered_collective_job, opts));
}

TEST(SeededBugs, ReorderedCollectiveFoundShrunkAndReplayed) {
  CheckOptions copts;
  copts.random_schedules = 20;
  copts.seed = 3;
  copts.preemption_bound = 2;
  copts.dpor = true;
  copts.max_schedules = 200;
  Checker checker(job_of(3, reordered_collective_job), copts);
  const CheckResult res = checker.run();

  ASSERT_TRUE(res.failed) << summary(res);
  EXPECT_EQ(res.failure_kind, "verify");
  EXPECT_NE(res.error.find("collective order mismatch"), std::string::npos)
      << res.error;
  ASSERT_FALSE(res.failing_trace.empty());
  // The shrunk witness is tiny: one early boost of worker 2 suffices.
  EXPECT_LE(res.failing.size(), 4u) << res.failing_trace;

  // The minimized trace replays to the same failure, deterministically.
  CheckOptions ropts;
  ropts.replay_trace = res.failing_trace;
  Checker replayer(job_of(3, reordered_collective_job), ropts);
  const CheckResult replay = replayer.run();
  EXPECT_EQ(replay.schedules_explored, 1);
  ASSERT_TRUE(replay.failed);
  EXPECT_EQ(replay.failure_kind, "verify");
  EXPECT_NE(replay.error.find("collective order mismatch"), std::string::npos);
}

// ---------- seeded bug 2: lost-wakeup serve loop ---------------------------

/// A deliberately buggy miniature of driver::serve_work's wait loop: the
/// master blocks for worker 2's request but only *polls* for worker 1's
/// instead of blocking until every worker is answered. When the poll runs
/// before worker 1's send, the master retires early: worker 1's request
/// leaks and worker 1 waits forever for a reply — a lost wakeup.
void lost_wakeup_serve_job(mpisim::Process& p) {
  constexpr int kTagReq = 9;
  constexpr int kTagRetire = 10;
  if (p.rank() == 0) {
    p.recv(2, kTagReq);
    // BUG: check-then-exit instead of a blocking receive.
    const auto early = p.world().mailbox(0).try_pop(1, kTagReq);
    p.send(2, kTagRetire, {});
    if (early.has_value()) p.send(1, kTagRetire, {});
  } else {
    p.send(0, kTagReq, {});
    p.recv(0, kTagRetire);
  }
}

TEST(SeededBugs, LostWakeupPassesTheBaselineSchedule) {
  CoopScheduler coop;
  mpisim::RunOptions opts;
  opts.schedule = &coop;
  EXPECT_NO_THROW(mpisim::run(3, test_cluster(), lost_wakeup_serve_job, opts));
}

TEST(SeededBugs, LostWakeupFoundByPreemptionSweepAndReplayed) {
  // Random phase off: the preemption-bounded sweep alone must catch this
  // (one forced boost of worker 2 at the first decision triggers it).
  CheckOptions copts;
  copts.random_schedules = 0;
  copts.preemption_bound = 1;
  copts.dpor = false;
  copts.max_schedules = 100;
  Checker checker(job_of(3, lost_wakeup_serve_job), copts);
  const CheckResult res = checker.run();

  ASSERT_TRUE(res.failed) << summary(res);
  EXPECT_EQ(res.failure_kind, "verify");
  ASSERT_FALSE(res.failing_trace.empty());

  CheckOptions ropts;
  ropts.replay_trace = res.failing_trace;
  Checker replayer(job_of(3, lost_wakeup_serve_job), ropts);
  const CheckResult replay = replayer.run();
  ASSERT_TRUE(replay.failed);
  EXPECT_EQ(replay.failure_kind, "verify");
}

// ---------- race detector --------------------------------------------------

int g_shared = 0;  // address identity for annotations; value unused

TEST(RaceDetection, FlagsUnorderedConflictingWrites) {
  CoopScheduler coop;
  RaceDetector det;
  mpisim::RunOptions opts;
  opts.schedule = &coop;
  opts.race = &det;
  EXPECT_THROW(mpisim::run(
                   2, test_cluster(),
                   [](mpisim::Process& p) {
                     p.annotate_write(&g_shared, p.rank() == 0
                                                     ? "left write"
                                                     : "right write");
                     p.barrier();  // synchronizes too late
                   },
                   opts),
               RaceError);
  EXPECT_GE(det.races_found(), 1u);
  const std::vector<std::string> reports = det.reports();
  ASSERT_FALSE(reports.empty());
  const std::string& report = reports.front();
  EXPECT_NE(report.find("race"), std::string::npos) << report;
  EXPECT_NE(report.find("write"), std::string::npos) << report;
}

TEST(RaceDetection, MessageEdgeOrdersTheAccesses) {
  CoopScheduler coop;
  RaceDetector det;
  mpisim::RunOptions opts;
  opts.schedule = &coop;
  opts.race = &det;
  EXPECT_NO_THROW(mpisim::run(
      2, test_cluster(),
      [](mpisim::Process& p) {
        constexpr int kTag = 5;
        if (p.rank() == 0) {
          p.annotate_write(&g_shared, "producer");
          p.send(1, kTag, {});
        } else {
          p.recv(0, kTag);
          p.annotate_write(&g_shared, "consumer");
        }
      },
      opts));
  EXPECT_EQ(det.races_found(), 0u);
  EXPECT_GE(det.accesses(), 2u);
}

TEST(RaceDetection, BarrierOrdersPreFromPostAccesses) {
  CoopScheduler coop;
  RaceDetector det;
  mpisim::RunOptions opts;
  opts.schedule = &coop;
  opts.race = &det;
  EXPECT_NO_THROW(mpisim::run(
      3, test_cluster(),
      [](mpisim::Process& p) {
        if (p.rank() == 0) p.annotate_write(&g_shared, "before barrier");
        p.barrier();
        if (p.rank() == 2) p.annotate_write(&g_shared, "after barrier");
      },
      opts));
  EXPECT_EQ(det.races_found(), 0u);
}

TEST(RaceDetection, SharedLockExemptsUnorderedAccesses) {
  // RunMetrics counters are bumped from every rank with no message edge;
  // the mutex identity passed by its annotations is what keeps that legal
  // (the claim documented in driver/metrics.cpp).
  driver::RunMetrics metrics;
  CoopScheduler coop;
  RaceDetector det;
  mpisim::RunOptions opts;
  opts.schedule = &coop;
  opts.race = &det;
  EXPECT_NO_THROW(mpisim::run(
      3, test_cluster(),
      [&metrics](mpisim::Process& p) {
        metrics.add("bumps", static_cast<std::uint64_t>(p.rank()) + 1);
        p.barrier();
      },
      opts));
  EXPECT_EQ(det.races_found(), 0u);
  EXPECT_EQ(metrics.get("bumps"), 6u);
}

TEST(RaceDetection, CountingModeCollectsWithoutThrowing) {
  RaceDetector::Options dopts;
  dopts.throw_on_race = false;
  RaceDetector det(dopts);
  CoopScheduler coop;
  mpisim::RunOptions opts;
  opts.schedule = &coop;
  opts.race = &det;
  EXPECT_NO_THROW(mpisim::run(
      2, test_cluster(),
      [](mpisim::Process& p) {
        p.annotate_write(&g_shared, "unsynchronized");
        p.barrier();
      },
      opts));
  EXPECT_GE(det.races_found(), 1u);
}

// ---------- explorer: DPOR pruning and clean sweeps ------------------------

TEST(Explorer, DporPrunesIndependentInterleavingsAndExhaustsTheTree) {
  // A relay with two concurrently-pending sends into different mailboxes:
  // interleavings that only swap them are provably equivalent, so the
  // sleep-set sweep must skip some siblings and still cover the whole
  // tree well under the schedule cap.
  auto job = job_of(3, [](mpisim::Process& p) {
    constexpr int kTag = 4;
    if (p.rank() == 0) p.recv(1, kTag);
    if (p.rank() == 1) {
      p.send(0, kTag, {});
      p.recv(2, kTag);
    }
    if (p.rank() == 2) p.send(1, kTag, {});
  });
  CheckOptions copts;
  copts.random_schedules = 0;
  copts.preemption_bound = -1;
  copts.dpor = true;
  copts.max_schedules = 600;
  const CheckResult res = Checker(job, copts).run();
  EXPECT_FALSE(res.failed) << res.error;
  EXPECT_GT(res.schedules_pruned, 0) << summary(res);
  EXPECT_GT(res.schedules_explored, 1);
  // The sweep terminated because the tree was exhausted, not the budget.
  EXPECT_LT(res.schedules_explored, copts.max_schedules) << summary(res);
  EXPECT_EQ(res.races_found, 0u);
}

TEST(Explorer, SummaryIsOneStableLine) {
  CheckResult res;
  res.schedules_explored = 12;
  res.schedules_pruned = 3;
  res.max_decisions = 40;
  res.races_found = 0;
  EXPECT_EQ(summary(res),
            "CHECK schedules=12 pruned=3 max_decisions=40 races=0 result=ok");
  res.failed = true;
  res.failure_kind = "verify";
  res.failing_trace = "2,2";
  EXPECT_EQ(summary(res),
            "CHECK schedules=12 pruned=3 max_decisions=40 races=0 "
            "result=verify trace=2,2");
}

// ---------- verifier exoneration under forced schedules --------------------

/// A worker crash racing the master's any-source wait: the failure
/// detector's notice may land between the master's match check and its
/// block registration under adversarial schedules. The verifier's
/// has_match exoneration must keep every interleaving free of false
/// deadlock reports.
void crash_during_wait_job(mpisim::Process& p) {
  constexpr int kTagData = 11;
  static constexpr int kWait[] = {kTagData, mpisim::kTagFaultNotice};
  if (p.rank() == 0) {
    bool data = false;
    bool notice = false;
    while (!data || !notice) {
      const mpisim::Message m = p.recv_any_of(kWait);
      (m.tag == kTagData ? data : notice) = true;
    }
  } else {
    p.send(0, kTagData, {});  // rank 2 dies instead of this send
  }
}

TEST(Explorer, CrashRacingAnySourceWaitIsExoneratedOnEverySchedule) {
  mpisim::FaultPlan faults;
  faults.at(2).crash_at = 1;
  CheckOptions copts;
  copts.random_schedules = 25;
  copts.seed = 11;
  copts.preemption_bound = 1;
  copts.dpor = false;
  copts.max_schedules = 150;
  const CheckResult res =
      Checker(job_of(3, crash_during_wait_job, faults), copts).run();
  EXPECT_FALSE(res.failed) << res.error;
  EXPECT_EQ(res.races_found, 0u);
  EXPECT_GE(res.schedules_explored, 26);  // baseline + 25 random + sweep
}

TEST(Explorer, CrashRacingAnySourceWaitReplaysCleanUnderForcedTrace) {
  mpisim::FaultPlan faults;
  faults.at(2).crash_at = 1;
  CheckOptions copts;
  copts.replay_trace = "2,2,0,1";  // boost the dying rank first
  const CheckResult res =
      Checker(job_of(3, crash_during_wait_job, faults), copts).run();
  EXPECT_FALSE(res.failed) << res.error;
  EXPECT_EQ(res.schedules_explored, 1);
}

// ---------- serve_work under the checker -----------------------------------

/// The real master/worker queue (driver/work_queue.h) with a mid-protocol
/// worker crash, model-checked: requeue, parking, and the stray-request
/// guard must hold on every explored interleaving, race-free.
TEST(Explorer, ServeWorkWithWorkerCrashIsScheduleClean) {
  auto job = [](mpisim::ScheduleHook* schedule, mpisim::RaceHook* race) {
    mpisim::RunOptions opts;
    opts.faults.at(2).crash_at = 3;  // dies holding one completed task
    opts.schedule = schedule;
    opts.race = race;
    driver::RunMetrics metrics;
    mpisim::run(
        4, test_cluster(),
        [&metrics](mpisim::Process& p) {
          if (p.is_root()) {
            auto sched = driver::make_scheduler(
                driver::SchedulerKind::kGreedyDynamic);
            driver::WorkerTopology topo;
            topo.nworkers = 3;
            topo.speed.assign(3, 1.0);
            driver::serve_work(p, *sched, 6, topo, {}, &metrics);
            p.drain(mpisim::kTagFaultNotice);
          } else {
            while (driver::request_work<std::uint32_t>(
                p, [](std::uint32_t id, mpisim::Decoder&) { return id; })) {
            }
          }
        },
        opts);
  };
  CheckOptions copts;
  copts.random_schedules = 20;
  copts.seed = 7;
  copts.preemption_bound = 1;
  copts.dpor = false;
  copts.max_schedules = 120;
  const CheckResult res = Checker(job, copts).run();
  EXPECT_FALSE(res.failed) << res.error;
  EXPECT_EQ(res.races_found, 0u);
  EXPECT_GT(res.max_decisions, 0u);
}

// ---------- whole driver under the checker ---------------------------------

/// A miniature mpiBLAST job is race-free and protocol-clean under the
/// baseline plus 50 seeded random schedules — the roadmap's acceptance
/// bar for the driver stack.
TEST(DriverCheck, MpiBlastCleanUnderFiftyRandomSchedules) {
  seqdb::GeneratorConfig gen;
  gen.target_residues = 4u << 10;
  gen.seed = 77;
  const auto db = seqdb::generate_database(gen);
  const auto queries = seqdb::sample_queries(db, 512, 5);
  const std::string query_fasta = seqdb::write_fasta(queries);

  blast::JobConfig jobcfg;
  jobcfg.db_base = "nr";
  jobcfg.db_title = "tiny nr";
  jobcfg.query_path = "queries.fa";
  jobcfg.output_path = "out.checked.txt";
  jobcfg.params = blast::SearchParams::blastp_defaults();
  jobcfg.params.hitlist_size = 10;

  const auto cluster = test_cluster();
  auto job = [&](mpisim::ScheduleHook* schedule, mpisim::RaceHook* race) {
    pario::ClusterStorage storage(cluster, 3);
    storage.shared().write_all(
        jobcfg.query_path,
        std::span(reinterpret_cast<const std::uint8_t*>(query_fasta.data()),
                  query_fasta.size()));
    const auto parts = seqdb::mpiformatdb(storage.shared(), db, jobcfg.db_base,
                                          jobcfg.params.type, jobcfg.db_title,
                                          2);
    mpiblast::MpiBlastOptions opts;
    opts.job = jobcfg;
    opts.fragment_bases = parts.fragment_bases;
    opts.fragment_ranges = parts.ranges;
    opts.global_index = parts.global_index;
    opts.schedule = schedule;
    opts.race = race;
    mpiblast::run_mpiblast(cluster, 3, storage, opts);
  };

  CheckOptions copts;
  copts.random_schedules = 50;
  copts.seed = 1;
  copts.preemption_bound = -1;
  copts.dpor = false;
  copts.max_schedules = 60;
  const CheckResult res = Checker(job, copts).run();
  EXPECT_FALSE(res.failed) << res.error;
  EXPECT_EQ(res.schedules_explored, 51);  // baseline + 50 random
  EXPECT_EQ(res.races_found, 0u);
  EXPECT_GT(res.max_decisions, 0u);
}

// ---------- mailbox leak-report ordering -----------------------------------

TEST(MailboxPendingInfo, SortedBySrcTagThenArrival) {
  mpisim::Mailbox mb;
  auto make = [](int src, int tag) {
    mpisim::Message m;
    m.src = src;
    m.tag = tag;
    return m;
  };
  mb.push(make(2, 5));
  mb.push(make(1, 9));
  mb.push(make(2, 5));
  mb.push(make(1, 3));
  const auto infos = mb.pending_info();
  ASSERT_EQ(infos.size(), 4u);
  EXPECT_EQ(infos[0].src, 1);
  EXPECT_EQ(infos[0].tag, 3);
  EXPECT_EQ(infos[1].src, 1);
  EXPECT_EQ(infos[1].tag, 9);
  EXPECT_EQ(infos[2].src, 2);
  EXPECT_EQ(infos[2].tag, 5);
  EXPECT_EQ(infos[3].src, 2);
  EXPECT_EQ(infos[3].tag, 5);
  // Same (src, tag): arrival order breaks the tie, stably.
  EXPECT_LT(infos[2].seq, infos[3].seq);
}

}  // namespace
}  // namespace pioblast::mpicheck
