// Unit tests for the sim substrate: clocks, network/storage cost models,
// the compute cost model, and cluster presets.
#include <gtest/gtest.h>

#include "sim/cluster.h"
#include "sim/cost_model.h"
#include "sim/network.h"
#include "sim/storage.h"
#include "sim/time.h"
#include "util/error.h"

namespace pioblast::sim {
namespace {

TEST(Clock, AdvancesMonotonically) {
  Clock c;
  EXPECT_DOUBLE_EQ(c.now(), 0.0);
  c.advance(1.5);
  c.advance(-3.0);  // negative durations are ignored
  EXPECT_DOUBLE_EQ(c.now(), 1.5);
  c.advance_to(1.0);  // never moves backwards
  EXPECT_DOUBLE_EQ(c.now(), 1.5);
  c.advance_to(2.0);
  EXPECT_DOUBLE_EQ(c.now(), 2.0);
}

TEST(Network, SendCostScalesWithBytes) {
  const NetworkModel net = NetworkModel::altix_numalink();
  EXPECT_LT(net.send_cost(1), net.send_cost(1 << 20));
  const Time small = net.send_cost(0);
  EXPECT_DOUBLE_EQ(small, net.params().send_overhead);
}

TEST(Network, TransferDecomposition) {
  const NetworkModel net = NetworkModel::gigabit_ethernet();
  const std::uint64_t n = 1 << 20;
  EXPECT_DOUBLE_EQ(net.transfer_time(n),
                   net.send_cost(n) + net.wire_latency() + net.recv_cost(n));
}

TEST(Network, AltixIsFasterThanEthernet) {
  const NetworkModel altix = NetworkModel::altix_numalink();
  const NetworkModel gige = NetworkModel::gigabit_ethernet();
  EXPECT_LT(altix.transfer_time(1 << 20), gige.transfer_time(1 << 20));
  EXPECT_LT(altix.wire_latency(), gige.wire_latency());
}

TEST(Storage, ReadScalesDownWithConcurrencyOnSharedDevices) {
  const StorageModel xfs = StorageModel::xfs_parallel();
  // One client cannot exceed its own link; many clients share the ceiling.
  EXPECT_LE(xfs.effective_read_bandwidth(1), xfs.params().client_read_bw);
  EXPECT_LT(xfs.effective_read_bandwidth(64), xfs.effective_read_bandwidth(4));
}

TEST(Storage, LocalDiskIgnoresConcurrency) {
  const StorageModel disk = StorageModel::local_disk();
  EXPECT_DOUBLE_EQ(disk.effective_read_bandwidth(1),
                   disk.effective_read_bandwidth(64));
}

TEST(Storage, NfsLatencyGrowsWithClients) {
  const StorageModel nfs = StorageModel::nfs_server();
  EXPECT_LT(nfs.read_seconds(0, 1), nfs.read_seconds(0, 8));
}

TEST(Storage, ParallelFsLatencyConstant) {
  const StorageModel xfs = StorageModel::xfs_parallel();
  EXPECT_DOUBLE_EQ(xfs.read_seconds(0, 1), xfs.read_seconds(0, 8));
}

TEST(Storage, XfsReadsMuchFasterThanWritesAggregate) {
  const StorageModel xfs = StorageModel::xfs_parallel();
  const std::uint64_t gb = 1ull << 30;
  // The paper's asymmetry: a 1 GB parallel read is sub-second-scale, a
  // concurrent 1 GB write to shared scratch is tens of seconds.
  EXPECT_LT(xfs.read_seconds(gb, 30) * 10, xfs.write_seconds(gb, 30));
}

TEST(Storage, InvalidConcurrencyThrows) {
  const StorageModel xfs = StorageModel::xfs_parallel();
  EXPECT_THROW(xfs.read_seconds(1, 0), util::ContractViolation);
}

TEST(CostModel, SearchSecondsLinearInCounters) {
  const CostModel cost;
  SearchCounters c;
  c.db_residues_scanned = 1000;
  const Time t1 = cost.search_seconds(c);
  c.db_residues_scanned = 2000;
  EXPECT_NEAR(cost.search_seconds(c), 2 * t1, 1e-12);
}

TEST(CostModel, ScaleMultipliesEverything) {
  CostModel::Params p;
  p.scale = 3.0;
  const CostModel scaled(p);
  const CostModel plain;
  SearchCounters c;
  c.gapped_cells = 12345;
  EXPECT_NEAR(scaled.search_seconds(c), 3 * plain.search_seconds(c), 1e-12);
  EXPECT_NEAR(scaled.merge_seconds(10), 3 * plain.merge_seconds(10), 1e-15);
  EXPECT_NEAR(scaled.format_seconds(10), 3 * plain.format_seconds(10), 1e-15);
}

TEST(CostModel, CountersAccumulate) {
  SearchCounters a, b;
  a.seed_hits = 3;
  a.gapped_cells = 10;
  b.seed_hits = 4;
  b.hsps_found = 2;
  a += b;
  EXPECT_EQ(a.seed_hits, 7u);
  EXPECT_EQ(a.gapped_cells, 10u);
  EXPECT_EQ(a.hsps_found, 2u);
}

TEST(Cluster, AltixPresetHasNoLocalDisks) {
  const ClusterConfig altix = ClusterConfig::ornl_altix();
  EXPECT_FALSE(altix.has_local_disks());
  EXPECT_EQ(altix.shared_storage.name(), "xfs");
}

TEST(Cluster, BladePresetHasLocalDisksAndNfs) {
  const ClusterConfig blade = ClusterConfig::ncsu_blade();
  EXPECT_TRUE(blade.has_local_disks());
  EXPECT_EQ(blade.shared_storage.name(), "nfs");
  EXPECT_EQ(blade.local_disks->kind(), StorageKind::kLocalDisk);
}

TEST(Cluster, BladeSharedFsIsSlowerThanAltix) {
  const ClusterConfig altix = ClusterConfig::ornl_altix();
  const ClusterConfig blade = ClusterConfig::ncsu_blade();
  const std::uint64_t mb = 1 << 20;
  EXPECT_LT(altix.shared_storage.read_seconds(mb, 8),
            blade.shared_storage.read_seconds(mb, 8));
}

}  // namespace
}  // namespace pioblast::sim
