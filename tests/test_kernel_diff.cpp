// Differential harness for the fast search kernel (ctest label: kernel).
//
// The fast kernel (FragmentIndex + FlatNeighborhood + SWAR/arena
// extensions) must be bit-identical to the scalar oracle: same HSP lists
// (every field, including tracebacks and E-value bits), same counters
// (virtual time), same driver output bytes. This suite checks that claim
// from four angles:
//
//   * corpus diffs — realistic family databases, protein and DNA;
//   * deterministic fuzz — randomized corpora and parameter sets, with a
//     reproduction dump to stderr on the first mismatch;
//   * properties — FlatNeighborhood vs WordIndex under random scoring
//     matrices and thresholds, FragmentIndex codes vs scalar packing,
//     extension scores vs traceback replay;
//   * drivers — byte-identical mpiBLAST/pioBLAST reports across kernels,
//     fault-free and across a worker crash, plus committed golden
//     fixtures both kernels must reproduce (tests/data/; regenerate with
//     PIOBLAST_UPDATE_GOLDEN=1).
#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "blast/engine.h"
#include "blast/extend.h"
#include "blast/fragment_index.h"
#include "blast/seed.h"
#include "mpiblast/mpiblast.h"
#include "pario/vfs.h"
#include "pioblast/pioblast.h"
#include "seqdb/generator.h"
#include "seqdb/partition.h"

namespace pioblast::blast {
namespace {

using seqdb::SeqType;

// ---------- shared helpers -------------------------------------------------

seqdb::LoadedFragment whole_db(const std::vector<seqdb::FastaRecord>& records,
                               SeqType type = SeqType::kProtein) {
  pario::VirtualFS fs;
  seqdb::format_db(fs, records, "db", type, "t");
  return seqdb::load_volumes(fs, "db", type, 0);
}

GlobalDbStats stats_of(const std::vector<seqdb::FastaRecord>& records) {
  GlobalDbStats s;
  s.num_seqs = records.size();
  for (const auto& r : records) s.total_residues += r.sequence.size();
  return s;
}

std::vector<seqdb::FastaRecord> family_db(std::uint64_t residues,
                                          std::uint64_t seed,
                                          SeqType type = SeqType::kProtein) {
  seqdb::GeneratorConfig cfg;
  cfg.type = type;
  cfg.target_residues = residues;
  cfg.seed = seed;
  cfg.family_fraction = 0.5;
  return seqdb::generate_database(cfg);
}

/// Bitwise double equality: identical computations must produce identical
/// bits, which EXPECT_DOUBLE_EQ (ULP tolerance) would paper over.
bool same_bits(double a, double b) {
  return std::memcmp(&a, &b, sizeof a) == 0;
}

void expect_hsps_identical(const std::vector<Hsp>& a, const std::vector<Hsp>& b,
                           const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const Hsp& x = a[i];
    const Hsp& y = b[i];
    EXPECT_EQ(x.query_id, y.query_id) << what << " hsp " << i;
    EXPECT_EQ(x.subject_global_id, y.subject_global_id) << what << " hsp " << i;
    EXPECT_EQ(x.qstart, y.qstart) << what << " hsp " << i;
    EXPECT_EQ(x.qend, y.qend) << what << " hsp " << i;
    EXPECT_EQ(x.sstart, y.sstart) << what << " hsp " << i;
    EXPECT_EQ(x.send, y.send) << what << " hsp " << i;
    EXPECT_EQ(x.score, y.score) << what << " hsp " << i;
    EXPECT_TRUE(same_bits(x.bits, y.bits)) << what << " hsp " << i;
    EXPECT_TRUE(same_bits(x.evalue, y.evalue)) << what << " hsp " << i;
    EXPECT_EQ(x.identities, y.identities) << what << " hsp " << i;
    EXPECT_EQ(x.positives, y.positives) << what << " hsp " << i;
    EXPECT_EQ(x.gaps, y.gaps) << what << " hsp " << i;
    EXPECT_EQ(x.align_len, y.align_len) << what << " hsp " << i;
    EXPECT_EQ(x.ops, y.ops) << what << " hsp " << i;
  }
}

void expect_results_identical(const FragmentSearchResult& scalar,
                              const FragmentSearchResult& fast,
                              const char* what) {
  expect_hsps_identical(scalar.hsps, fast.hsps, what);
  EXPECT_EQ(scalar.counters.db_residues_scanned,
            fast.counters.db_residues_scanned) << what;
  EXPECT_EQ(scalar.counters.seed_hits, fast.counters.seed_hits) << what;
  EXPECT_EQ(scalar.counters.two_hit_triggers, fast.counters.two_hit_triggers)
      << what;
  EXPECT_EQ(scalar.counters.ungapped_cells, fast.counters.ungapped_cells)
      << what;
  EXPECT_EQ(scalar.counters.gapped_cells, fast.counters.gapped_cells) << what;
  EXPECT_EQ(scalar.counters.traceback_cells, fast.counters.traceback_cells)
      << what;
  EXPECT_EQ(scalar.counters.hsps_found, fast.counters.hsps_found) << what;
}

// ---------- corpus differential tests --------------------------------------

TEST(KernelDiff, ProteinFamilyCorpus) {
  const auto db = family_db(60'000, 101);
  const auto frag = whole_db(db);
  const auto gstats = stats_of(db);
  const auto m = ScoringMatrix::blosum62();
  const auto params = SearchParams::blastp_defaults();
  for (std::size_t i = 0; i < db.size(); i += 5) {
    const auto query = seqdb::encode_sequence(SeqType::kProtein, db[i].sequence);
    QueryContext ctx(0, query, params, m, gstats);
    const auto scalar = search_fragment(ctx, frag);
    const auto fast = search_fragment_fast(ctx, frag);
    expect_results_identical(scalar, fast, db[i].id.c_str());
  }
}

TEST(KernelDiff, DnaFamilyCorpus) {
  const auto db = family_db(60'000, 103, SeqType::kNucleotide);
  const auto frag = whole_db(db, SeqType::kNucleotide);
  const auto gstats = stats_of(db);
  auto params = SearchParams::blastn_defaults();
  const auto m = make_matrix(params);
  for (std::size_t i = 0; i < db.size(); i += 5) {
    const auto query =
        seqdb::encode_sequence(SeqType::kNucleotide, db[i].sequence);
    QueryContext ctx(0, query, params, m, gstats);
    const auto scalar = search_fragment(ctx, frag);
    const auto fast = search_fragment_fast(ctx, frag);
    expect_results_identical(scalar, fast, db[i].id.c_str());
  }
}

TEST(KernelDiff, BatchMatchesPerQueryScalar) {
  const auto db = family_db(40'000, 107);
  const auto frag = whole_db(db);
  const auto gstats = stats_of(db);
  const auto m = ScoringMatrix::blosum62();
  const auto params = SearchParams::blastp_defaults();

  std::vector<QueryContext> contexts;
  for (std::size_t i = 0; i < db.size() && contexts.size() < 8; i += 3) {
    const auto q = seqdb::encode_sequence(SeqType::kProtein, db[i].sequence);
    contexts.emplace_back(static_cast<std::uint32_t>(contexts.size()), q,
                          params, m, gstats);
  }
  // Degenerate members ride in the same batch: shorter than the word size
  // and empty. The scalar kernel returns an empty result with zero
  // counters for them; the batch must too.
  const std::vector<std::uint8_t> tiny{1, 2};
  contexts.emplace_back(static_cast<std::uint32_t>(contexts.size()), tiny,
                        params, m, gstats);
  contexts.emplace_back(static_cast<std::uint32_t>(contexts.size()),
                        std::vector<std::uint8_t>{}, params, m, gstats);

  const auto batch = search_fragment_batch(contexts, frag, KernelKind::kFast);
  ASSERT_EQ(batch.size(), contexts.size());
  for (std::size_t i = 0; i < contexts.size(); ++i) {
    const auto scalar = search_fragment(contexts[i], frag);
    expect_results_identical(scalar, batch[i],
                             ("batch member " + std::to_string(i)).c_str());
  }

  // The batch API's scalar arm must equal per-query scalar calls too.
  const auto scalar_batch =
      search_fragment_batch(contexts, frag, KernelKind::kScalar);
  for (std::size_t i = 0; i < contexts.size(); ++i) {
    expect_results_identical(search_fragment(contexts[i], frag),
                             scalar_batch[i], "scalar batch");
  }
}

TEST(KernelDiff, DegenerateProteinInputs) {
  // Subjects include lengths below, at, and just above the word size.
  std::vector<seqdb::FastaRecord> db = {
      {"s0", "", "A"},
      {"s1", "", "AR"},
      {"s2", "", "ARN"},
      {"s3", "", "ARND"},
      {"s4", "", "XXXXXXXXXXXXXXXXXXXXXXXXXXXXXXXX"},
      {"s5", "", "MKVLAARNDCQEGHILKMFPSTWYVMKVLAARNDCQEGHILKMFPSTWYV"},
      {"s6", "", std::string(64, 'L')},
  };
  const auto frag = whole_db(db);
  const auto gstats = stats_of(db);
  const auto m = ScoringMatrix::blosum62();
  auto params = SearchParams::blastp_defaults();
  params.evalue_cutoff = 1e9;  // let weak hits through the statistics
  params.cutoff_score_min = 1;

  const std::vector<std::string> queries = {
      "",                      // empty
      "A",                     // below word size
      "AR",                    // below word size
      "ARN",                   // exactly one word
      "XXXXXXXXXXXXXXXXXXXX",  // all wildcard
      "MKVLAARNDCQEGHILKMFPSTWYVMKVLAARNDCQEGHILKMFPSTWYV",  // = subject s5
      std::string(8, 'L'),     // one SWAR block exactly
      std::string(16, 'L'),    // two blocks
      std::string(17, 'L'),    // blocks + tail
  };
  for (const std::string& qs : queries) {
    const auto q = seqdb::encode_sequence(SeqType::kProtein, qs);
    QueryContext ctx(0, q, params, m, gstats);
    const auto scalar = search_fragment(ctx, frag);
    const auto fast = search_fragment_fast(ctx, frag);
    expect_results_identical(scalar, fast, qs.empty() ? "<empty>" : qs.c_str());
  }
}

TEST(KernelDiff, DegenerateDnaInputs) {
  std::vector<seqdb::FastaRecord> db = {
      {"s0", "", "ACGT"},
      {"s1", "", "NNNNNNNNNNNNNNNNNNNNNNNN"},
      {"s2", "", "ACGTACGTACGTNACGTACGTACGTACGT"},
      {"s3", "", "ACGTACGTACGTACGTACGTACGTACGTACGTACGTACGT"},
  };
  const auto frag = whole_db(db, SeqType::kNucleotide);
  const auto gstats = stats_of(db);
  auto params = SearchParams::blastn_defaults();
  params.evalue_cutoff = 1e9;
  params.cutoff_score_min = 1;
  const auto m = make_matrix(params);

  const std::vector<std::string> queries = {
      "",
      "ACGT",                                       // below word size
      "NNNNNNNNNNNNNNNNNNNN",                       // all ambiguous
      "ACGTACGTACG",                                // exactly one word
      "ACGTACGTACGTNACGTACGTACGTACGT",              // interior N
      "ACGTACGTACGTACGTACGTACGTACGTACGTACGTACGT",   // = subject s3
  };
  for (const std::string& qs : queries) {
    const auto q = seqdb::encode_sequence(SeqType::kNucleotide, qs);
    QueryContext ctx(0, q, params, m, gstats);
    const auto scalar = search_fragment(ctx, frag);
    const auto fast = search_fragment_fast(ctx, frag);
    expect_results_identical(scalar, fast, qs.empty() ? "<empty>" : qs.c_str());
  }
}

// ---------- deterministic fuzz ---------------------------------------------

std::string random_sequence(std::mt19937& rng, SeqType type, std::size_t len,
                            double wildcard_rate) {
  const std::string_view letters = type == SeqType::kProtein
                                       ? seqdb::kProteinLetters
                                       : seqdb::kDnaLetters;
  // The last letter of each alphabet view region is the wildcard-ish end;
  // draw wildcards explicitly so degenerate residues are well represented.
  std::uniform_int_distribution<std::size_t> pick(0, letters.size() - 1);
  std::bernoulli_distribution wild(wildcard_rate);
  std::string s;
  s.reserve(len);
  for (std::size_t i = 0; i < len; ++i) {
    if (wild(rng)) {
      s.push_back(type == SeqType::kProtein ? 'X' : 'N');
    } else {
      s.push_back(letters[pick(rng)]);
    }
  }
  return s;
}

/// Dumps a failing fuzz case to stderr so it can be replayed by hand.
void dump_case(std::uint64_t iter, const SearchParams& params,
               const std::vector<seqdb::FastaRecord>& db,
               const std::string& query) {
  std::ostringstream os;
  os << "=== kernel fuzz mismatch (iteration " << iter << ") ===\n"
     << "params: word=" << params.word_size << " T=" << params.threshold
     << " A=" << params.two_hit_window << " xu=" << params.xdrop_ungapped
     << " xg=" << params.xdrop_gapped << " open=" << params.gap_open
     << " ext=" << params.gap_extend << " trig=" << params.gap_trigger
     << "\nquery: " << (query.empty() ? "<empty>" : query) << "\n";
  for (const auto& r : db) os << ">" << r.id << "\n" << r.sequence << "\n";
  std::cerr << os.str();
}

TEST(KernelDiff, FuzzProteinCorpora) {
  std::mt19937 rng(0xC0FFEEu);  // fixed seed: deterministic, replayable
  std::uniform_int_distribution<int> nseq(1, 12);
  std::uniform_int_distribution<std::size_t> slen(0, 160);
  std::uniform_int_distribution<int> thr(8, 13);
  std::uniform_int_distribution<int> window(0, 2);
  std::uniform_int_distribution<int> xdrop_u(4, 30);
  std::uniform_int_distribution<int> xdrop_g(5, 60);
  std::uniform_int_distribution<int> open(5, 12);
  std::uniform_int_distribution<int> extend(1, 3);
  std::uniform_int_distribution<int> trigger(12, 45);

  const auto m = ScoringMatrix::blosum62();
  for (std::uint64_t iter = 0; iter < 60; ++iter) {
    auto params = SearchParams::blastp_defaults();
    params.threshold = thr(rng);
    params.two_hit_window = window(rng) * 20;  // 0 (single-hit), 20, 40
    params.xdrop_ungapped = xdrop_u(rng);
    params.xdrop_gapped = xdrop_g(rng);
    params.gap_open = open(rng);
    params.gap_extend = extend(rng);
    params.gap_trigger = trigger(rng);
    params.cutoff_score_min = 5;
    params.evalue_cutoff = 1e6;

    std::vector<seqdb::FastaRecord> db;
    const int n = nseq(rng);
    for (int i = 0; i < n; ++i) {
      std::string s = random_sequence(rng, SeqType::kProtein, slen(rng), 0.05);
      if (s.empty()) s = "A";  // formatted volumes hold non-empty sequences
      db.push_back({"f" + std::to_string(i), "", std::move(s)});
    }
    // Half the queries are mutated copies of a database sequence (long
    // identical runs exercise the SWAR skip); half are fresh random.
    std::string qs;
    if (iter % 2 == 0) {
      qs = db[static_cast<std::size_t>(iter / 2) % db.size()].sequence;
      std::uniform_int_distribution<std::size_t> pos(0, qs.empty() ? 0 : qs.size() - 1);
      for (int k = 0; k < 3 && !qs.empty(); ++k)
        qs[pos(rng)] = seqdb::kProteinLetters[rng() % 20];
    } else {
      qs = random_sequence(rng, SeqType::kProtein, slen(rng), 0.05);
    }

    const auto frag = whole_db(db);
    const auto gstats = stats_of(db);
    const auto q = seqdb::encode_sequence(SeqType::kProtein, qs);
    QueryContext ctx(0, q, params, m, gstats);
    const auto scalar = search_fragment(ctx, frag);
    const auto fast = search_fragment_fast(ctx, frag);
    expect_results_identical(scalar, fast, "fuzz");
    if (::testing::Test::HasNonfatalFailure() ||
        ::testing::Test::HasFatalFailure()) {
      dump_case(iter, params, db, qs);
      FAIL() << "fast kernel diverged from scalar oracle at iteration " << iter;
    }
  }
}

TEST(KernelDiff, FuzzDnaCorpora) {
  std::mt19937 rng(0xD15EA5Eu);
  std::uniform_int_distribution<int> nseq(1, 10);
  std::uniform_int_distribution<std::size_t> slen(0, 200);
  std::uniform_int_distribution<int> word(4, 12);
  std::uniform_int_distribution<int> xdrop_u(4, 30);
  std::uniform_int_distribution<int> xdrop_g(5, 50);
  std::uniform_int_distribution<int> open(3, 8);
  std::uniform_int_distribution<int> extend(1, 3);
  std::uniform_int_distribution<int> trigger(8, 25);

  for (std::uint64_t iter = 0; iter < 40; ++iter) {
    auto params = SearchParams::blastn_defaults();
    params.word_size = word(rng);
    params.xdrop_ungapped = xdrop_u(rng);
    params.xdrop_gapped = xdrop_g(rng);
    params.gap_open = open(rng);
    params.gap_extend = extend(rng);
    params.gap_trigger = trigger(rng);
    params.cutoff_score_min = 5;
    params.evalue_cutoff = 1e6;
    const auto m = make_matrix(params);

    std::vector<seqdb::FastaRecord> db;
    const int n = nseq(rng);
    for (int i = 0; i < n; ++i) {
      std::string s = random_sequence(rng, SeqType::kNucleotide, slen(rng), 0.08);
      if (s.empty()) s = "A";
      db.push_back({"f" + std::to_string(i), "", std::move(s)});
    }
    std::string qs;
    if (iter % 2 == 0) {
      qs = db[static_cast<std::size_t>(iter / 2) % db.size()].sequence;
    } else {
      qs = random_sequence(rng, SeqType::kNucleotide, slen(rng), 0.08);
    }

    const auto frag = whole_db(db, SeqType::kNucleotide);
    const auto gstats = stats_of(db);
    const auto q = seqdb::encode_sequence(SeqType::kNucleotide, qs);
    QueryContext ctx(0, q, params, m, gstats);
    const auto scalar = search_fragment(ctx, frag);
    const auto fast = search_fragment_fast(ctx, frag);
    expect_results_identical(scalar, fast, "dna fuzz");
    if (::testing::Test::HasNonfatalFailure() ||
        ::testing::Test::HasFatalFailure()) {
      dump_case(iter, params, db, qs);
      FAIL() << "fast kernel diverged from scalar oracle at iteration " << iter;
    }
  }
}

// ---------- FlatNeighborhood / FragmentIndex properties ---------------------

TEST(FlatNeighborhoodProperty, MatchesWordIndexUnderRandomMatrices) {
  std::mt19937 rng(0xF1A7u);
  std::uniform_int_distribution<int> cell(-5, 7);
  std::uniform_int_distribution<int> thr(-2, 18);
  std::uniform_int_distribution<std::size_t> qlen(0, 80);

  const KarlinParams kp{0.27, 0.04, 0.25};
  for (int round = 0; round < 20; ++round) {
    std::vector<int> scores(24 * 24);
    for (int& v : scores) v = cell(rng);
    const auto m = ScoringMatrix::custom(24, scores, kp, kp);

    auto params = SearchParams::blastp_defaults();
    params.threshold = thr(rng);
    const std::string qs =
        random_sequence(rng, SeqType::kProtein, qlen(rng), 0.05);
    const auto q = seqdb::encode_sequence(SeqType::kProtein, qs);

    const WordIndex oracle(q, m, params);
    const FlatNeighborhood flat(q, m, params);

    EXPECT_EQ(flat.total_entries(), oracle.total_entries());
    // Every packed word's bucket must equal the oracle's position list —
    // same contents, same (query-position-ascending) order.
    for (std::uint32_t code = 0; code < 24u * 24u * 24u; ++code) {
      const std::uint8_t word[3] = {
          static_cast<std::uint8_t>(code / (24 * 24)),
          static_cast<std::uint8_t>((code / 24) % 24),
          static_cast<std::uint8_t>(code % 24)};
      const PositionList* expected = q.size() >= 3 ? oracle.probe(word) : nullptr;
      const auto got = flat.neighbors(code);
      if (expected == nullptr) {
        EXPECT_TRUE(got.empty()) << "code " << code;
      } else {
        ASSERT_EQ(got.size(), expected->size()) << "code " << code;
        for (std::size_t k = 0; k < got.size(); ++k)
          EXPECT_EQ(got[k], (*expected)[k]) << "code " << code << " entry " << k;
      }
    }
  }
}

TEST(FlatNeighborhoodProperty, OffsetsMonotoneAndCovering) {
  std::mt19937 rng(0x0FF5E75u);
  const auto m = ScoringMatrix::blosum62();
  const auto params = SearchParams::blastp_defaults();
  for (int round = 0; round < 10; ++round) {
    const std::string qs = random_sequence(
        rng, SeqType::kProtein, 20 + static_cast<std::size_t>(rng() % 120), 0.05);
    const auto q = seqdb::encode_sequence(SeqType::kProtein, qs);
    const FlatNeighborhood flat(q, m, params);
    const auto offsets = flat.offsets();
    ASSERT_EQ(offsets.size(), 24u * 24u * 24u + 1);
    EXPECT_EQ(offsets.front(), 0u);
    for (std::size_t i = 1; i < offsets.size(); ++i)
      EXPECT_LE(offsets[i - 1], offsets[i]) << "offset " << i;
    EXPECT_EQ(offsets.back(), flat.entries().size());
    // Every entry is a valid word start position.
    for (const std::uint32_t pos : flat.entries())
      EXPECT_LE(pos + 3, q.size());
  }
}

TEST(FlatNeighborhoodProperty, DnaMatchesWordIndex) {
  std::mt19937 rng(0xD7A5u);
  for (int round = 0; round < 15; ++round) {
    auto params = SearchParams::blastn_defaults();
    params.word_size = 4 + static_cast<int>(rng() % 9);
    const auto m = make_matrix(params);
    const std::string qs = random_sequence(
        rng, SeqType::kNucleotide, static_cast<std::size_t>(rng() % 200), 0.1);
    const auto q = seqdb::encode_sequence(SeqType::kNucleotide, qs);

    const WordIndex oracle(q, m, params);
    const FlatNeighborhood flat(q, m, params);
    EXPECT_EQ(flat.total_entries(), oracle.total_entries());

    // Keys sorted strictly ascending.
    const auto keys = flat.keys();
    for (std::size_t i = 1; i < keys.size(); ++i)
      EXPECT_LT(keys[i - 1], keys[i]);

    // Probe every subject position of the query against both structures.
    const std::size_t w = static_cast<std::size_t>(params.word_size);
    if (q.size() < w) continue;
    for (std::size_t pos = 0; pos + w <= q.size(); ++pos) {
      const PositionList* expected = oracle.probe(q.data() + pos);
      bool valid = true;
      std::uint64_t packed = 0;
      for (std::size_t k = 0; k < w; ++k) {
        if (q[pos + k] >= 4) { valid = false; break; }
        packed = (packed << 2) | q[pos + k];
      }
      const auto got = valid ? flat.neighbors_packed(packed)
                             : std::span<const std::uint32_t>{};
      if (expected == nullptr) {
        EXPECT_TRUE(got.empty()) << "pos " << pos;
      } else {
        ASSERT_EQ(got.size(), expected->size()) << "pos " << pos;
        for (std::size_t k = 0; k < got.size(); ++k)
          EXPECT_EQ(got[k], (*expected)[k]) << "pos " << pos;
      }
    }
  }
}

TEST(FragmentIndexProperty, CodesMatchScalarPacking) {
  const auto db = family_db(20'000, 113);
  const auto frag = whole_db(db);
  const auto params = SearchParams::blastp_defaults();
  const FragmentIndex index(frag, params);
  ASSERT_EQ(index.num_seqs(), frag.num_seqs());
  for (std::uint64_t local = 0; local < frag.num_seqs(); ++local) {
    const auto s = frag.sequence(local);
    const auto codes = index.codes32(local);
    const std::size_t nwords = s.size() >= 3 ? s.size() - 2 : 0;
    ASSERT_EQ(codes.size(), nwords);
    for (std::size_t pos = 0; pos < nwords; ++pos) {
      const std::uint32_t expected =
          (static_cast<std::uint32_t>(s[pos]) * 24u + s[pos + 1]) * 24u +
          s[pos + 2];
      ASSERT_EQ(codes[pos], expected) << "seq " << local << " pos " << pos;
    }
  }
}

TEST(FragmentIndexProperty, DnaCodesFlagAmbiguousWindows) {
  std::vector<seqdb::FastaRecord> db = {
      {"s0", "", "ACGTACGTNACGTACGTACGT"},
      {"s1", "", "NNNNNN"},
      {"s2", "", "ACGTACGTACGTACGTACGT"},
  };
  const auto frag = whole_db(db, SeqType::kNucleotide);
  auto params = SearchParams::blastn_defaults();
  params.word_size = 5;
  const FragmentIndex index(frag, params);
  const std::size_t w = 5;
  for (std::uint64_t local = 0; local < frag.num_seqs(); ++local) {
    const auto s = frag.sequence(local);
    const auto codes = index.codes64(local);
    ASSERT_EQ(codes.size(), s.size() >= w ? s.size() - w + 1 : 0);
    for (std::size_t pos = 0; pos < codes.size(); ++pos) {
      bool ambiguous = false;
      std::uint64_t packed = 0;
      for (std::size_t k = 0; k < w; ++k) {
        if (s[pos + k] >= 4) { ambiguous = true; break; }
        packed = (packed << 2) | s[pos + k];
      }
      if (ambiguous) {
        EXPECT_EQ(codes[pos], FragmentIndex::kInvalidWord)
            << "seq " << local << " pos " << pos;
      } else {
        EXPECT_EQ(codes[pos], packed) << "seq " << local << " pos " << pos;
      }
    }
  }
}

// ---------- extension edge cases -------------------------------------------

/// Replays a gapped traceback and recomputes the raw score independently
/// (affine costs: each maximal gap run costs open + k*extend). A mismatch
/// means the DP and its traceback disagree — the strongest single invariant
/// over the extension code.
int replay_gapped_score(const GappedExtension& g,
                        std::span<const std::uint8_t> q,
                        std::span<const std::uint8_t> s,
                        const ScoringMatrix& m, int gap_open, int gap_extend) {
  int score = 0;
  std::uint32_t qi = g.qstart;
  std::uint64_t si = g.sstart;
  AlignOp prev = AlignOp::kMatch;
  for (const AlignOp op : g.ops) {
    switch (op) {
      case AlignOp::kMatch:
        score += m.score(q[qi++], s[si++]);
        break;
      case AlignOp::kInsert:
        if (prev != AlignOp::kInsert) score -= gap_open;
        score -= gap_extend;
        ++qi;
        break;
      case AlignOp::kDelete:
        if (prev != AlignOp::kDelete) score -= gap_open;
        score -= gap_extend;
        ++si;
        break;
    }
    prev = op;
  }
  EXPECT_EQ(qi, g.qend);
  EXPECT_EQ(si, g.send);
  return score;
}

void expect_gapped_identical(const GappedExtension& a, const GappedExtension& b) {
  EXPECT_EQ(a.score, b.score);
  EXPECT_EQ(a.qstart, b.qstart);
  EXPECT_EQ(a.qend, b.qend);
  EXPECT_EQ(a.sstart, b.sstart);
  EXPECT_EQ(a.send, b.send);
  EXPECT_EQ(a.cells, b.cells);
  EXPECT_EQ(a.ops, b.ops);
}

TEST(ExtendEdge, UngappedSeedAtSequenceBoundaries) {
  const auto m = ScoringMatrix::blosum62();
  const auto q = seqdb::encode_sequence(SeqType::kProtein,
                                        "MKVLAARNDCQEGHILKMFPSTWYV");
  const auto s = seqdb::encode_sequence(SeqType::kProtein,
                                        "MKVLAARNDCQEGHILKMFPSTWYV");
  const SelfScoreProfile self(q, m);
  // Seed at the very start, middle, and last possible position; the
  // extension must terminate cleanly at both sequence ends.
  for (const std::uint32_t pos : {0u, 10u, 22u}) {
    const auto a = extend_ungapped(q, s, pos, pos, 3, m, 16);
    const auto b = extend_ungapped_fast(q, s, pos, pos, 3, m, 16, self);
    EXPECT_EQ(a.score, b.score);
    EXPECT_EQ(a.qstart, b.qstart);
    EXPECT_EQ(a.qend, b.qend);
    EXPECT_EQ(a.sstart, b.sstart);
    EXPECT_EQ(a.send, b.send);
    EXPECT_EQ(a.cells, b.cells);
    // Full-identity pair: the extension must span both sequences.
    EXPECT_EQ(a.qstart, 0u);
    EXPECT_EQ(a.qend, q.size());
    EXPECT_LE(a.qend, q.size());
    EXPECT_LE(a.send, s.size());
  }
}

TEST(ExtendEdge, UngappedXdropStopsInsideMismatchRun) {
  const auto m = ScoringMatrix::blosum62();
  // Identical prefix, then a long mismatch tail: the X-drop must stop the
  // rightward pass inside the tail, not at the sequence end.
  const auto q = seqdb::encode_sequence(
      SeqType::kProtein, "MKVLAARNDC" + std::string(30, 'W'));
  const auto s = seqdb::encode_sequence(
      SeqType::kProtein, "MKVLAARNDC" + std::string(30, 'P'));
  const SelfScoreProfile self(q, m);
  const auto a = extend_ungapped(q, s, 0, 0, 3, m, 16);
  const auto b = extend_ungapped_fast(q, s, 0, 0, 3, m, 16, self);
  EXPECT_EQ(a.score, b.score);
  EXPECT_EQ(a.qend, b.qend);
  EXPECT_EQ(a.cells, b.cells);
  EXPECT_EQ(a.qend, 10u);  // best prefix is exactly the identical run
  EXPECT_LT(a.cells, q.size() + 3);  // pruned well before the end
}

TEST(ExtendEdge, GappedBandExceedsShorterSequence) {
  const auto m = ScoringMatrix::blosum62();
  // Long query against a 4-residue subject with an effectively unbounded
  // X-drop: the DP band is clamped by the subject length every row and the
  // walk must terminate without touching out-of-band cells.
  const auto q = seqdb::encode_sequence(SeqType::kProtein, std::string(60, 'L'));
  const auto s = seqdb::encode_sequence(SeqType::kProtein, "LLLL");
  GappedScratch scratch;
  const auto a = extend_gapped(q, s, 0, 0, m, 11, 1, 1'000'000);
  const auto b = extend_gapped_fast(q, s, 0, 0, m, 11, 1, 1'000'000, scratch);
  expect_gapped_identical(a, b);
  EXPECT_LE(a.send, s.size());
  EXPECT_EQ(replay_gapped_score(a, q, s, m, 11, 1), a.score);
}

TEST(ExtendEdge, GappedAnchorAtCorners) {
  const auto m = ScoringMatrix::blosum62();
  const auto q = seqdb::encode_sequence(SeqType::kProtein,
                                        "MKVLAARNDCQEGHILKMFPSTWYV");
  const auto s = seqdb::encode_sequence(SeqType::kProtein,
                                        "MKVLAARNDCQEGHILKMFPSTWYV");
  GappedScratch scratch;
  for (const std::uint32_t anchor :
       {0u, static_cast<std::uint32_t>(q.size() - 1)}) {
    const auto a = extend_gapped(q, s, anchor, anchor, m, 11, 1, 38);
    const auto b = extend_gapped_fast(q, s, anchor, anchor, m, 11, 1, 38,
                                      scratch);
    expect_gapped_identical(a, b);
    EXPECT_EQ(replay_gapped_score(a, q, s, m, 11, 1), a.score);
    EXPECT_EQ(a.qstart, 0u);
    EXPECT_EQ(a.qend, q.size());
  }
}

TEST(ExtendEdge, GappedScoreMatchesTracebackReplay) {
  // Randomized gapped extensions: the reported score must equal an
  // independent replay of the traceback under affine gap costs, and the
  // fast path must agree bit for bit. Catches latent DP/traceback
  // disagreements at window boundaries.
  std::mt19937 rng(0xE27E7Du);
  const auto m = ScoringMatrix::blosum62();
  GappedScratch scratch;
  for (int round = 0; round < 200; ++round) {
    const std::size_t qn = 2 + rng() % 60;
    const std::size_t sn = 2 + rng() % 60;
    const auto qs = random_sequence(rng, SeqType::kProtein, qn, 0.05);
    std::string ss;
    if (round % 2 == 0) {
      // Mutated copy: long near-identical stretches with indels.
      ss = qs;
      if (ss.size() > 4) {
        ss.erase(ss.begin() + static_cast<std::ptrdiff_t>(rng() % ss.size()));
        ss[rng() % ss.size()] = 'A';
      }
    } else {
      ss = random_sequence(rng, SeqType::kProtein, sn, 0.05);
    }
    const auto q = seqdb::encode_sequence(SeqType::kProtein, qs);
    const auto s = seqdb::encode_sequence(SeqType::kProtein, ss);
    const std::uint32_t anchor_q = rng() % q.size();
    const std::uint64_t anchor_s = rng() % s.size();
    const int open = 5 + static_cast<int>(rng() % 8);
    const int extend = 1 + static_cast<int>(rng() % 3);
    const int xdrop = 5 + static_cast<int>(rng() % 60);

    const auto a = extend_gapped(q, s, anchor_q, anchor_s, m, open, extend, xdrop);
    const auto b = extend_gapped_fast(q, s, anchor_q, anchor_s, m, open,
                                      extend, xdrop, scratch);
    expect_gapped_identical(a, b);
    EXPECT_EQ(replay_gapped_score(a, q, s, m, open, extend), a.score)
        << "round " << round << " q=" << qs << " s=" << ss
        << " anchor=(" << anchor_q << "," << anchor_s << ") open=" << open
        << " ext=" << extend << " xdrop=" << xdrop;
  }
}

// ---------- driver-level byte identity and golden fixtures ------------------

struct DriverWorkload {
  std::vector<seqdb::FastaRecord> db;
  std::string query_fasta;
  blast::JobConfig job;
};

DriverWorkload make_workload(SeqType type, std::uint64_t seed) {
  DriverWorkload w;
  seqdb::GeneratorConfig gen;
  gen.type = type;
  gen.target_residues = 100u << 10;
  gen.seed = seed;
  gen.family_fraction = 0.55;
  w.db = seqdb::generate_database(gen);
  w.query_fasta = seqdb::write_fasta(seqdb::sample_queries(w.db, 3u << 10, seed + 1));
  w.job.db_base = "db";
  w.job.db_title = "kernel diff db";
  w.job.query_path = "queries.fa";
  w.job.params = type == SeqType::kProtein ? SearchParams::blastp_defaults()
                                           : SearchParams::blastn_defaults();
  w.job.params.hitlist_size = 25;
  return w;
}

void stage_queries(pario::ClusterStorage& storage, const DriverWorkload& w) {
  storage.shared().write_all(
      w.job.query_path,
      std::span(reinterpret_cast<const std::uint8_t*>(w.query_fasta.data()),
                w.query_fasta.size()));
}

std::vector<std::uint8_t> run_mpi_kernel(const DriverWorkload& w, int nprocs,
                                         KernelKind kernel) {
  const auto cluster = sim::ClusterConfig::ornl_altix();
  pario::ClusterStorage storage(cluster, nprocs);
  stage_queries(storage, w);
  const auto parts =
      seqdb::mpiformatdb(storage.shared(), w.db, w.job.db_base,
                         w.job.params.type, w.job.db_title, nprocs - 1);
  mpiblast::MpiBlastOptions opts;
  opts.job = w.job;
  opts.job.output_path = "out.mpi.txt";
  opts.fragment_bases = parts.fragment_bases;
  opts.fragment_ranges = parts.ranges;
  opts.global_index = parts.global_index;
  opts.kernel = kernel;
  mpiblast::run_mpiblast(cluster, nprocs, storage, opts);
  return storage.shared().read_all("out.mpi.txt");
}

std::vector<std::uint8_t> run_pio_kernel(const DriverWorkload& w, int nprocs,
                                         KernelKind kernel,
                                         const mpisim::FaultPlan& faults = {},
                                         mpisim::Tracer* tracer = nullptr,
                                         bool dynamic = false) {
  const auto cluster = sim::ClusterConfig::ornl_altix();
  pario::ClusterStorage storage(cluster, nprocs);
  stage_queries(storage, w);
  seqdb::format_db(storage.shared(), w.db, w.job.db_base, w.job.params.type,
                   w.job.db_title);
  pio::PioBlastOptions opts;
  opts.job = w.job;
  opts.job.output_path = "out.pio.txt";
  opts.kernel = kernel;
  opts.faults = faults;
  opts.tracer = tracer;
  if (dynamic) {
    opts.dynamic_scheduling = true;
    opts.job.nfragments = 6;
  }
  pio::run_pioblast(cluster, nprocs, storage, opts);
  return storage.shared().read_all("out.pio.txt");
}

TEST(KernelDriverDiff, BothDriversByteIdenticalAcrossKernels) {
  const auto w = make_workload(SeqType::kProtein, 2024);
  const auto mpi_scalar = run_mpi_kernel(w, 4, KernelKind::kScalar);
  const auto mpi_fast = run_mpi_kernel(w, 4, KernelKind::kFast);
  ASSERT_FALSE(mpi_scalar.empty());
  EXPECT_EQ(mpi_scalar, mpi_fast);

  const auto pio_scalar = run_pio_kernel(w, 4, KernelKind::kScalar);
  const auto pio_fast = run_pio_kernel(w, 4, KernelKind::kFast);
  ASSERT_FALSE(pio_scalar.empty());
  EXPECT_EQ(pio_scalar, pio_fast);
  EXPECT_EQ(mpi_scalar, pio_scalar);  // drivers agree too
}

/// The 1-based comm-event ordinal of `rank`'s `nth` work request, read off
/// a probe run's trace (same idiom as the fault suite).
std::uint64_t nth_work_request_event(const mpisim::Tracer& tracer, int rank,
                                     int nth) {
  std::uint64_t events = 0;
  int requests = 0;
  for (const auto& e : tracer.for_rank(rank)) {
    if (e.kind != mpisim::TraceKind::kSend &&
        e.kind != mpisim::TraceKind::kRecv) {
      continue;
    }
    ++events;
    if (e.kind == mpisim::TraceKind::kSend &&
        e.detail.find("tag=1 b") != std::string::npos) {
      if (++requests == nth) return events;
    }
  }
  ADD_FAILURE() << "rank " << rank << " sent only " << requests
                << " work requests";
  return 0;
}

TEST(KernelDriverDiff, IdenticalAcrossKernelsUnderWorkerCrash) {
  const auto w = make_workload(SeqType::kProtein, 2025);
  const int nprocs = 4, victim = 3;

  // Probe (fast kernel, armed detector) to find a mid-serve-loop crash
  // point. Comm structure is kernel-independent — both kernels charge
  // identical virtual time — so the same ordinal crashes both runs at the
  // same protocol step.
  mpisim::FaultPlan armed;
  armed.arm_detector = true;
  mpisim::Tracer probe;
  const auto baseline =
      run_pio_kernel(w, nprocs, KernelKind::kFast, armed, &probe, true);
  ASSERT_FALSE(baseline.empty());
  const std::uint64_t crash_at = nth_work_request_event(probe, victim, 2);
  ASSERT_GT(crash_at, 0u);

  mpisim::FaultPlan faults;
  faults.at(victim).crash_at = crash_at;
  const auto crashed_fast =
      run_pio_kernel(w, nprocs, KernelKind::kFast, faults, nullptr, true);
  const auto crashed_scalar =
      run_pio_kernel(w, nprocs, KernelKind::kScalar, faults, nullptr, true);
  EXPECT_EQ(crashed_fast, crashed_scalar);
  EXPECT_EQ(crashed_fast, baseline);  // recovery preserves the report
}

// Golden fixtures: committed reports both kernels must reproduce exactly.
// Regenerate (after an intentional output change) with
//   PIOBLAST_UPDATE_GOLDEN=1 ./test_kernel_diff --gtest_filter='KernelGolden.*'
void check_golden(const char* name, const std::vector<std::uint8_t>& bytes) {
  const std::string path = std::string(PIOBLAST_TEST_DATA_DIR "/") + name;
  if (std::getenv("PIOBLAST_UPDATE_GOLDEN") != nullptr) {
    std::ofstream f(path, std::ios::binary);
    f.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
    ASSERT_TRUE(f.good()) << "failed to write " << path;
    GTEST_SKIP() << "updated golden fixture " << path;
  }
  std::ifstream f(path, std::ios::binary);
  ASSERT_TRUE(f.good()) << "missing golden fixture " << path
                        << " (run with PIOBLAST_UPDATE_GOLDEN=1 to create)";
  std::vector<std::uint8_t> expected(
      (std::istreambuf_iterator<char>(f)), std::istreambuf_iterator<char>());
  EXPECT_EQ(bytes, expected) << "report diverged from " << path;
}

TEST(KernelGolden, ProteinReportBothKernels) {
  const auto w = make_workload(SeqType::kProtein, 777);
  check_golden("golden_protein_report.txt",
               run_pio_kernel(w, 3, KernelKind::kFast));
  check_golden("golden_protein_report.txt",
               run_pio_kernel(w, 3, KernelKind::kScalar));
  check_golden("golden_protein_report.txt",
               run_mpi_kernel(w, 3, KernelKind::kFast));
}

TEST(KernelGolden, DnaReportBothKernels) {
  const auto w = make_workload(SeqType::kNucleotide, 778);
  check_golden("golden_dna_report.txt", run_pio_kernel(w, 3, KernelKind::kFast));
  check_golden("golden_dna_report.txt",
               run_pio_kernel(w, 3, KernelKind::kScalar));
}

}  // namespace
}  // namespace pioblast::blast
