// Engine-level tests: query contexts, fragment search, self-hits, homolog
// detection, hit-list caps, E-value filtering, DNA mode, and the keystone
// property — search results are invariant to database partitioning.
#include <gtest/gtest.h>

#include <map>

#include "blast/engine.h"
#include "pario/vfs.h"
#include "seqdb/generator.h"
#include "seqdb/partition.h"

namespace pioblast::blast {
namespace {

using seqdb::SeqType;

/// Formats a database in-memory and returns one whole-database fragment.
seqdb::LoadedFragment whole_db(const std::vector<seqdb::FastaRecord>& records,
                               SeqType type = SeqType::kProtein) {
  pario::VirtualFS fs;
  seqdb::format_db(fs, records, "db", type, "t");
  return seqdb::load_volumes(fs, "db", type, 0);
}

GlobalDbStats stats_of(const std::vector<seqdb::FastaRecord>& records) {
  GlobalDbStats s;
  s.num_seqs = records.size();
  for (const auto& r : records) s.total_residues += r.sequence.size();
  return s;
}

std::vector<seqdb::FastaRecord> family_db(std::uint64_t residues,
                                          std::uint64_t seed,
                                          SeqType type = SeqType::kProtein) {
  seqdb::GeneratorConfig cfg;
  cfg.type = type;
  cfg.target_residues = residues;
  cfg.seed = seed;
  cfg.family_fraction = 0.5;
  return seqdb::generate_database(cfg);
}

TEST(QueryContext, CutoffScoreReflectsEvalue) {
  const auto m = ScoringMatrix::blosum62();
  const auto params = SearchParams::blastp_defaults();
  const GlobalDbStats db{4'000'000, 12'000};
  const auto q = seqdb::encode_sequence(SeqType::kProtein,
                                        std::string(300, 'A'));
  QueryContext strict_ctx(0, q, params, m, db);
  auto loose = params;
  loose.evalue_cutoff = 1e6;
  QueryContext loose_ctx(0, q, loose, m, db);
  EXPECT_GT(strict_ctx.cutoff_score(), loose_ctx.cutoff_score());
}

TEST(Engine, QueryFindsItselfWithMaximalScore) {
  const auto db = family_db(60'000, 11);
  const auto frag = whole_db(db);
  const auto gstats = stats_of(db);
  const auto m = ScoringMatrix::blosum62();
  const auto params = SearchParams::blastp_defaults();

  // Query = database sequence #5, so a full-length self-hit must exist.
  const auto query =
      seqdb::encode_sequence(SeqType::kProtein, db[5].sequence);
  QueryContext ctx(0, query, params, m, gstats);
  const auto result = search_fragment(ctx, frag);
  ASSERT_FALSE(result.hsps.empty());
  const Hsp& top = result.hsps.front();
  EXPECT_EQ(top.subject_global_id, 5u);
  EXPECT_EQ(top.qstart, 0u);
  EXPECT_EQ(top.qend, query.size());
  EXPECT_EQ(top.identities, top.align_len);
  EXPECT_EQ(top.gaps, 0u);
  // Self E-value of a few-hundred-residue identity is essentially zero.
  EXPECT_LT(top.evalue, 1e-50);
}

TEST(Engine, HomologsAreFound) {
  // Build a tiny database with one explicit homolog pair.
  std::vector<seqdb::FastaRecord> db = family_db(40'000, 13);
  // Count how many queries sampled from large families hit >1 subject.
  const auto frag = whole_db(db);
  const auto gstats = stats_of(db);
  const auto m = ScoringMatrix::blosum62();
  const auto params = SearchParams::blastp_defaults();
  int multi_hit_queries = 0;
  for (std::size_t i = 0; i < db.size(); i += 7) {
    const auto query =
        seqdb::encode_sequence(SeqType::kProtein, db[i].sequence);
    QueryContext ctx(0, query, params, m, gstats);
    if (search_fragment(ctx, frag).hsps.size() > 1) ++multi_hit_queries;
  }
  EXPECT_GT(multi_hit_queries, 3);
}

TEST(Engine, CountersArePopulated) {
  const auto db = family_db(30'000, 17);
  const auto frag = whole_db(db);
  const auto gstats = stats_of(db);
  const auto m = ScoringMatrix::blosum62();
  const auto query = seqdb::encode_sequence(SeqType::kProtein, db[0].sequence);
  QueryContext ctx(0, query, SearchParams::blastp_defaults(), m, gstats);
  const auto result = search_fragment(ctx, frag);
  EXPECT_EQ(result.counters.db_residues_scanned, gstats.total_residues);
  EXPECT_GT(result.counters.seed_hits, 0u);
  EXPECT_GT(result.counters.two_hit_triggers, 0u);
  EXPECT_GT(result.counters.ungapped_cells, 0u);
  EXPECT_GT(result.counters.gapped_cells, 0u);
  EXPECT_EQ(result.counters.hsps_found, result.hsps.size());
}

TEST(Engine, HitlistCapIsEnforced) {
  const auto db = family_db(80'000, 19);
  const auto frag = whole_db(db);
  const auto gstats = stats_of(db);
  const auto m = ScoringMatrix::blosum62();
  auto params = SearchParams::blastp_defaults();
  params.hitlist_size = 2;
  // A query from a big family would exceed 2 hits without the cap.
  int capped_seen = 0;
  for (std::size_t i = 0; i < db.size(); i += 5) {
    const auto query =
        seqdb::encode_sequence(SeqType::kProtein, db[i].sequence);
    QueryContext ctx(0, query, params, m, gstats);
    const auto result = search_fragment(ctx, frag);
    EXPECT_LE(result.hsps.size(), 2u);
    if (result.hsps.size() == 2) ++capped_seen;
  }
  EXPECT_GT(capped_seen, 0);
}

TEST(Engine, ResultsSortedByRank) {
  const auto db = family_db(50'000, 23);
  const auto frag = whole_db(db);
  const auto gstats = stats_of(db);
  const auto m = ScoringMatrix::blosum62();
  const auto query = seqdb::encode_sequence(SeqType::kProtein, db[3].sequence);
  QueryContext ctx(0, query, SearchParams::blastp_defaults(), m, gstats);
  const auto result = search_fragment(ctx, frag);
  for (std::size_t i = 1; i < result.hsps.size(); ++i) {
    EXPECT_FALSE(Hsp::better(result.hsps[i], result.hsps[i - 1]));
  }
}

TEST(Engine, EvalueCutoffFilters) {
  const auto db = family_db(50'000, 29);
  const auto frag = whole_db(db);
  const auto gstats = stats_of(db);
  const auto m = ScoringMatrix::blosum62();
  auto params = SearchParams::blastp_defaults();
  params.evalue_cutoff = 1e-30;  // keep only near-identical alignments
  const auto query = seqdb::encode_sequence(SeqType::kProtein, db[8].sequence);
  QueryContext ctx(0, query, params, m, gstats);
  for (const Hsp& h : search_fragment(ctx, frag).hsps) {
    EXPECT_LE(h.evalue, 1e-30);
  }
}

TEST(Engine, DnaSelfHit) {
  const auto db = family_db(40'000, 31, SeqType::kNucleotide);
  const auto frag = whole_db(db, SeqType::kNucleotide);
  const auto gstats = stats_of(db);
  auto params = SearchParams::blastn_defaults();
  const auto m = make_matrix(params);
  const auto query =
      seqdb::encode_sequence(SeqType::kNucleotide, db[2].sequence);
  QueryContext ctx(0, query, params, m, gstats);
  const auto result = search_fragment(ctx, frag);
  ASSERT_FALSE(result.hsps.empty());
  EXPECT_EQ(result.hsps.front().subject_global_id, 2u);
  EXPECT_EQ(result.hsps.front().identities, result.hsps.front().align_len);
}

/// The keystone invariant (paper §3.1): searching F fragments and merging
/// must produce exactly the same global hit set as searching the whole
/// database, for any F — E-values use global statistics and the merge
/// order is a strict total order.
class PartitionInvariance : public ::testing::TestWithParam<int> {};

TEST_P(PartitionInvariance, MergedFragmentsEqualWholeDatabase) {
  const int nfragments = GetParam();
  const auto db = family_db(60'000, 37);
  const auto gstats = stats_of(db);
  const auto m = ScoringMatrix::blosum62();
  auto params = SearchParams::blastp_defaults();
  params.hitlist_size = 20;

  pario::VirtualFS fs;
  const auto fmt = seqdb::format_db(fs, db, "db", SeqType::kProtein, "t");
  const seqdb::VolumeNames names = seqdb::volume_names("db", SeqType::kProtein);

  for (std::size_t qi = 0; qi < db.size(); qi += 17) {
    const auto query =
        seqdb::encode_sequence(SeqType::kProtein, db[qi].sequence);
    QueryContext ctx(0, query, params, m, gstats);

    // Whole-database reference.
    const auto whole = search_fragment(ctx, whole_db(db));

    // Fragmented search + merge.
    std::vector<Hsp> merged;
    for (const auto& fr : seqdb::virtual_partition(fmt.index, nfragments)) {
      auto slice = [&](const pario::Region& r, const std::string& file) {
        return fs.pread(file, r.offset, r.length);
      };
      seqdb::DbIndex hdr;
      hdr.type = SeqType::kProtein;
      const auto frag = seqdb::fragment_from_slices(
          hdr, fr, slice(fr.pin_seq_off, names.index),
          slice(fr.pin_hdr_off, names.index), slice(fr.psq, names.sequence),
          slice(fr.phr, names.header));
      auto part = search_fragment(ctx, frag);
      merged.insert(merged.end(), part.hsps.begin(), part.hsps.end());
    }
    std::sort(merged.begin(), merged.end(), Hsp::better);
    if (merged.size() > static_cast<std::size_t>(params.hitlist_size))
      merged.resize(static_cast<std::size_t>(params.hitlist_size));

    ASSERT_EQ(merged.size(), whole.hsps.size()) << "query " << qi;
    for (std::size_t i = 0; i < merged.size(); ++i) {
      EXPECT_EQ(merged[i].subject_global_id, whole.hsps[i].subject_global_id);
      EXPECT_EQ(merged[i].score, whole.hsps[i].score);
      EXPECT_EQ(merged[i].qstart, whole.hsps[i].qstart);
      EXPECT_EQ(merged[i].qend, whole.hsps[i].qend);
      EXPECT_EQ(merged[i].sstart, whole.hsps[i].sstart);
      EXPECT_DOUBLE_EQ(merged[i].evalue, whole.hsps[i].evalue);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(FragmentCounts, PartitionInvariance,
                         ::testing::Values(2, 3, 5, 8, 13));

TEST(Engine, DeterministicAcrossRepeatedSearches) {
  const auto db = family_db(40'000, 41);
  const auto frag = whole_db(db);
  const auto gstats = stats_of(db);
  const auto m = ScoringMatrix::blosum62();
  const auto query = seqdb::encode_sequence(SeqType::kProtein, db[1].sequence);
  QueryContext ctx(0, query, SearchParams::blastp_defaults(), m, gstats);
  const auto a = search_fragment(ctx, frag);
  const auto b = search_fragment(ctx, frag);
  ASSERT_EQ(a.hsps.size(), b.hsps.size());
  for (std::size_t i = 0; i < a.hsps.size(); ++i) {
    EXPECT_EQ(a.hsps[i].score, b.hsps[i].score);
    EXPECT_EQ(a.hsps[i].subject_global_id, b.hsps[i].subject_global_id);
  }
  EXPECT_EQ(a.counters.seed_hits, b.counters.seed_hits);
  EXPECT_EQ(a.counters.gapped_cells, b.counters.gapped_cells);
}

}  // namespace
}  // namespace pioblast::blast
