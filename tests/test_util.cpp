// Unit tests for util: RNG determinism, tables, unit formatting, phase
// accounting, and the contract-check macros.
#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "util/error.h"
#include "util/phase_timer.h"
#include "util/rng.h"
#include "util/table.h"
#include "util/units.h"

namespace pioblast::util {
namespace {

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a() == b()) ++same;
  EXPECT_EQ(same, 0);
}

TEST(Rng, ReseedRestoresStream) {
  Rng a(77);
  const auto first = a();
  a.reseed(77);
  EXPECT_EQ(a(), first);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
  }
}

TEST(Rng, BelowOneIsAlwaysZero) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, BetweenIsInclusive) {
  Rng rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 5000; ++i) seen.insert(rng.between(3, 6));
  EXPECT_EQ(seen.size(), 4u);
  EXPECT_EQ(*seen.begin(), 3u);
  EXPECT_EQ(*seen.rbegin(), 6u);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanIsPlausible) {
  Rng rng(13);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, ForkedStreamsAreIndependent) {
  Rng parent(42);
  Rng c0 = parent.fork(0);
  Rng c1 = parent.fork(1);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (c0() == c1()) ++same;
  EXPECT_EQ(same, 0);
}

TEST(Rng, BelowZeroThrows) {
  Rng rng(1);
  EXPECT_THROW(rng.below(0), ContractViolation);
}

TEST(Checks, CheckMsgCarriesContext) {
  try {
    PIOBLAST_CHECK_MSG(1 == 2, "custom " << 42);
    FAIL() << "expected throw";
  } catch (const ContractViolation& e) {
    EXPECT_NE(std::string(e.what()).find("custom 42"), std::string::npos);
  }
}

TEST(Checks, PassingCheckDoesNotThrow) {
  EXPECT_NO_THROW(PIOBLAST_CHECK(2 + 2 == 4));
}

TEST(Units, FormatBytes) {
  EXPECT_EQ(format_bytes(512), "512 B");
  EXPECT_EQ(format_bytes(1536), "1.50 KiB");
  EXPECT_EQ(format_bytes(3 * kMiB), "3.00 MiB");
  EXPECT_EQ(format_bytes(5 * kGiB), "5.00 GiB");
}

TEST(Units, FormatSeconds) {
  EXPECT_EQ(format_seconds(0.5e-6), "0.50 us");
  EXPECT_EQ(format_seconds(2.5e-3), "2.50 ms");
  EXPECT_EQ(format_seconds(1.5), "1.50 s");
  EXPECT_EQ(format_seconds(125.0), "2m05.0s");
  EXPECT_EQ(format_seconds(-1.0), "0.00 us");
}

TEST(Units, FormatPercent) {
  EXPECT_EQ(format_percent(0.956), "95.6%");
  EXPECT_EQ(format_percent(0.0), "0.0%");
}

TEST(Table, AlignsColumnsAndCountsRows) {
  Table t({"a", "bbb"});
  t.add_row({"xx", "y"});
  t.add_row({"1", "22222"});
  EXPECT_EQ(t.row_count(), 2u);
  std::ostringstream os;
  t.print(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("a   bbb"), std::string::npos);
  EXPECT_NE(text.find("-----"), std::string::npos);
}

TEST(Table, RejectsMismatchedRow) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), ContractViolation);
}

TEST(Table, CsvQuotesSpecialCells) {
  Table t({"name", "value"});
  t.add_row({"with,comma", "with\"quote"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_NE(os.str().find("\"with,comma\""), std::string::npos);
  EXPECT_NE(os.str().find("\"with\"\"quote\""), std::string::npos);
}

TEST(Table, FixedFormatsPrecision) {
  EXPECT_EQ(fixed(3.14159, 2), "3.14");
  EXPECT_EQ(fixed(2.0, 0), "2");
}

TEST(PhaseTimer, AccumulatesAndTotals) {
  PhaseTimer t;
  t.add("search", 1.5);
  t.add("search", 0.5);
  t.add("output", 3.0);
  EXPECT_DOUBLE_EQ(t.get("search"), 2.0);
  EXPECT_DOUBLE_EQ(t.get("output"), 3.0);
  EXPECT_DOUBLE_EQ(t.get("missing"), 0.0);
  EXPECT_DOUBLE_EQ(t.total(), 5.0);
}

TEST(PhaseTimer, IgnoresNonPositiveDurations) {
  PhaseTimer t;
  t.add("x", -1.0);
  t.add("x", 0.0);
  EXPECT_DOUBLE_EQ(t.get("x"), 0.0);
}

TEST(PhaseTimer, ClearResets) {
  PhaseTimer t;
  t.add("x", 1.0);
  t.clear();
  EXPECT_DOUBLE_EQ(t.total(), 0.0);
}

}  // namespace
}  // namespace pioblast::util
