// Tests for the run tracer: event capture, ordering, rendering, and the
// runtime integration.
#include <gtest/gtest.h>

#include <sstream>

#include "mpisim/runtime.h"
#include "mpisim/trace.h"

namespace pioblast::mpisim {
namespace {

TEST(Tracer, RecordsAndSortsByTime) {
  Tracer t;
  t.record(1, 2.0, TraceKind::kSend, "b");
  t.record(0, 1.0, TraceKind::kPhase, "a");
  t.record(2, 2.0, TraceKind::kRecv, "c");
  const auto sorted = t.sorted();
  ASSERT_EQ(sorted.size(), 3u);
  EXPECT_EQ(sorted[0].detail, "a");
  EXPECT_EQ(sorted[1].rank, 1);  // tie at t=2.0 broken by rank
  EXPECT_EQ(sorted[2].rank, 2);
  EXPECT_DOUBLE_EQ(t.span(), 1.0);
}

TEST(Tracer, ForRankFilters) {
  Tracer t;
  t.record(0, 1.0, TraceKind::kMark, "x");
  t.record(1, 2.0, TraceKind::kMark, "y");
  t.record(0, 3.0, TraceKind::kMark, "z");
  const auto rank0 = t.for_rank(0);
  ASSERT_EQ(rank0.size(), 2u);
  EXPECT_EQ(rank0[0].detail, "x");
  EXPECT_EQ(rank0[1].detail, "z");
}

TEST(Tracer, RenderTruncates) {
  Tracer t;
  for (int i = 0; i < 10; ++i)
    t.record(0, i, TraceKind::kMark, "e" + std::to_string(i));
  std::ostringstream os;
  t.render(os, 3);
  EXPECT_NE(os.str().find("e0"), std::string::npos);
  EXPECT_NE(os.str().find("7 more events"), std::string::npos);
  EXPECT_EQ(os.str().find("e5"), std::string::npos);
}

TEST(Tracer, KindNames) {
  EXPECT_STREQ(to_string(TraceKind::kPhase), "PHASE");
  EXPECT_STREQ(to_string(TraceKind::kSend), "SEND");
  EXPECT_STREQ(to_string(TraceKind::kRecv), "RECV");
  EXPECT_STREQ(to_string(TraceKind::kMark), "MARK");
}

TEST(Tracer, RuntimeIntegrationCapturesProtocol) {
  Tracer tracer;
  run(
      3, sim::ClusterConfig::ornl_altix(),
      [](Process& p) {
        p.set_phase("work");
        if (p.rank() == 0) {
          const std::vector<std::uint8_t> payload{1, 2, 3};
          for (int w = 1; w < p.size(); ++w) p.send(w, 5, payload);
        } else {
          p.recv(0, 5);
          p.mark("got it");
        }
      },
      &tracer);
  // 3 phase events, 2 sends, 2 recvs, 2 marks.
  EXPECT_EQ(tracer.size(), 9u);
  const auto rank1 = tracer.for_rank(1);
  ASSERT_EQ(rank1.size(), 3u);
  EXPECT_EQ(rank1[0].kind, TraceKind::kPhase);
  EXPECT_EQ(rank1[1].kind, TraceKind::kRecv);
  EXPECT_NE(rank1[1].detail.find("bytes=3"), std::string::npos);
  EXPECT_EQ(rank1[2].detail, "got it");
  // Causality: each receive happens at or after the matching send.
  sim::Time send_time = -1;
  for (const auto& e : tracer.sorted()) {
    if (e.kind == TraceKind::kSend && send_time < 0) send_time = e.time;
    if (e.kind == TraceKind::kRecv) {
      EXPECT_GE(e.time, send_time);
    }
  }
}

TEST(Tracer, NullTracerIsHarmless) {
  const auto report = run(2, sim::ClusterConfig::ornl_altix(), [](Process& p) {
    p.set_phase("x");
    if (p.rank() == 0) p.send(1, 1, {});
    else p.recv(0, 1);
    p.mark("ignored");
  });
  EXPECT_EQ(report.ranks.size(), 2u);
}

}  // namespace
}  // namespace pioblast::mpisim
