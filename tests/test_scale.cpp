// Large-world smoke tests (ctest label: scale).
//
// These exist to keep the event backend honest at the scale it was built
// for: worlds of 1024+ ranks in one process, where the thread-per-rank
// backend would need more kernel threads than most CI containers allow.
// Kept in their own binary so `ctest -L scale` runs exactly this file —
// CI's scale job pairs it with a 1024-rank fig3a tiny sweep.
#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <vector>

#include "driver/scheduler.h"
#include "driver/work_queue.h"
#include "mpisim/exec.h"
#include "mpisim/runtime.h"

namespace pioblast {
namespace {

sim::ClusterConfig altix() { return sim::ClusterConfig::ornl_altix(); }

mpisim::RunOptions event_opts() {
  mpisim::RunOptions opts;
  opts.exec_model = mpisim::ExecModel::kEvents;
  return opts;
}

#define REQUIRE_EVENTS()                                       \
  if (!mpisim::events_supported())                             \
  GTEST_SKIP() << "stackful fibers unavailable on this platform"

TEST(Scale, ThousandRankCollectives) {
  REQUIRE_EVENTS();
  const int nranks = 1024;
  std::vector<sim::Time> reduced(static_cast<std::size_t>(nranks), -1);
  const auto report = mpisim::run(
      nranks, altix(),
      [&](mpisim::Process& p) {
        p.compute(1e-6 * (p.rank() % 17));
        p.barrier();
        std::vector<std::uint8_t> blob;
        if (p.is_root()) blob.assign(32, 0x5A);
        p.bcast(blob, 0);
        ASSERT_EQ(blob.size(), 32u) << "rank " << p.rank();
        reduced[static_cast<std::size_t>(p.rank())] =
            p.allreduce_max(static_cast<sim::Time>(p.rank()));
      },
      event_opts());
  ASSERT_EQ(report.ranks.size(), static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) {
    EXPECT_EQ(reduced[static_cast<std::size_t>(r)],
              static_cast<sim::Time>(nranks - 1))
        << "rank " << r;
    EXPECT_GT(report.ranks[static_cast<std::size_t>(r)].final_clock, 0.0);
  }
}

TEST(Scale, ThousandRankWorkQueueDrains) {
  REQUIRE_EVENTS();
  const int nranks = 1024;
  const std::uint32_t ntasks = 4096;
  std::vector<std::vector<std::uint32_t>> served(
      static_cast<std::size_t>(nranks));
  mpisim::run(
      nranks, altix(),
      [&](mpisim::Process& p) {
        if (p.is_root()) {
          auto sched =
              driver::make_scheduler(driver::SchedulerKind::kGreedyDynamic);
          driver::WorkerTopology topo;
          topo.nworkers = nranks - 1;
          topo.speed.assign(static_cast<std::size_t>(nranks - 1), 1.0);
          driver::serve_work(p, *sched, ntasks, topo, {}, nullptr);
        } else {
          while (auto task = driver::request_work<std::uint32_t>(
                     p,
                     [](std::uint32_t id, mpisim::Decoder&) { return id; })) {
            served[static_cast<std::size_t>(p.rank())].push_back(*task);
          }
        }
      },
      event_opts());
  std::set<std::uint32_t> all;
  std::size_t total = 0;
  for (const auto& v : served) {
    all.insert(v.begin(), v.end());
    total += v.size();
  }
  EXPECT_EQ(all.size(), static_cast<std::size_t>(ntasks));  // every task once
  EXPECT_EQ(total, static_cast<std::size_t>(ntasks));       // no duplicates
}

TEST(Scale, FourThousandRankBarrierTree) {
  REQUIRE_EVENTS();
  // Pure tree traffic at the headline world size: O(P log P) messages on
  // one thread. Completing at all (and quickly) is the assertion.
  const int nranks = 4096;
  const auto report = mpisim::run(
      nranks, altix(), [](mpisim::Process& p) { p.barrier(); }, event_opts());
  EXPECT_EQ(report.ranks.size(), static_cast<std::size_t>(nranks));
  EXPECT_GT(report.makespan(), 0.0);
}

}  // namespace
}  // namespace pioblast
