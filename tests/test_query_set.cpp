// Tests for QuerySet preparation, run summaries, and generator family
// controls added for the benchmark workloads.
#include <gtest/gtest.h>

#include "blast/driver.h"
#include "blast/query_set.h"
#include "seqdb/generator.h"

namespace pioblast {
namespace {

TEST(QuerySet, BuildsOneContextPerQuery) {
  const std::string fasta = ">q0\nMKVLAWERTYMKVLAWERTY\n>q1\nACDEFGHIKLMNPQRS\n";
  const blast::GlobalDbStats stats{1'000'000, 3'000};
  const auto set = blast::QuerySet::build(
      fasta, blast::SearchParams::blastp_defaults(), stats);
  ASSERT_EQ(set->size(), 2u);
  EXPECT_EQ(set->queries()[0].id, "q0");
  EXPECT_EQ(set->contexts()[0].query_id(), 0u);
  EXPECT_EQ(set->contexts()[1].query_id(), 1u);
  EXPECT_EQ(set->contexts()[0].residues().size(), 20u);
  EXPECT_EQ(set->stats().num_seqs, 3000u);
}

TEST(QuerySet, ContextsShareOneMatrix) {
  const std::string fasta = ">a\nMKVLAW\n>b\nMKVLAW\n";
  const blast::GlobalDbStats stats{1000, 10};
  const auto set = blast::QuerySet::build(
      fasta, blast::SearchParams::blastp_defaults(), stats);
  EXPECT_EQ(&set->contexts()[0].matrix(), &set->contexts()[1].matrix());
  EXPECT_EQ(&set->contexts()[0].matrix(), &set->matrix());
}

TEST(QuerySet, MalformedFastaThrows) {
  const blast::GlobalDbStats stats{1000, 10};
  EXPECT_THROW(blast::QuerySet::build("garbage, no defline",
                                      blast::SearchParams::blastp_defaults(),
                                      stats),
               util::ContractViolation);
}

TEST(SummarizeRun, UsesWorkerMaxAndMasterOutput) {
  mpisim::RunReport report;
  report.ranks.resize(3);
  auto& master = report.ranks[0];
  master.rank = 0;
  master.phases.add("output", 5.0);
  master.final_clock = 20.0;
  auto& w1 = report.ranks[1];
  w1.rank = 1;
  w1.phases.add("copy", 1.0);
  w1.phases.add("search", 10.0);
  w1.final_clock = 20.0;
  auto& w2 = report.ranks[2];
  w2.rank = 2;
  w2.phases.add("input", 2.0);
  w2.phases.add("search", 12.0);
  w2.final_clock = 20.0;

  const auto ph = blast::summarize_run(report);
  EXPECT_DOUBLE_EQ(ph.total, 20.0);
  EXPECT_DOUBLE_EQ(ph.copy_input, 2.0);  // max over workers of copy+input
  EXPECT_DOUBLE_EQ(ph.search, 12.0);
  EXPECT_DOUBLE_EQ(ph.output, 5.0);
  EXPECT_DOUBLE_EQ(ph.other, 20.0 - 2.0 - 12.0 - 5.0);
  EXPECT_NEAR(ph.search_fraction(), 0.6, 1e-12);
}

TEST(Generator, MaxRootsCapsDeNovoSequences) {
  seqdb::GeneratorConfig cfg;
  cfg.target_residues = 100'000;
  cfg.max_roots = 5;
  cfg.family_fraction = 0.0;  // without the cap nothing would derive
  const auto db = seqdb::generate_database(cfg);
  int roots = 0;
  for (const auto& r : db)
    if (r.description.rfind("homolog of", 0) != 0) ++roots;
  EXPECT_EQ(roots, 5);
}

TEST(Generator, MaxRootsCreatesLargeFamilies) {
  seqdb::GeneratorConfig cfg;
  cfg.target_residues = 300'000;
  cfg.max_roots = 4;
  cfg.family_fraction = 0.9;
  const auto db = seqdb::generate_database(cfg);
  // With 4 roots and ~1000 sequences, the average family exceeds 200.
  EXPECT_GT(db.size() / 4, 100u);
}

TEST(CostModel, HspResultChargeIsPerRecord) {
  sim::CostModel::Params p;
  p.sec_per_hsp_result = 1e-3;
  const sim::CostModel cost(p);
  EXPECT_DOUBLE_EQ(cost.hsp_result_seconds(100), 0.1);
  EXPECT_DOUBLE_EQ(cost.hsp_result_seconds(0), 0.0);
}

TEST(CostModel, MergeBytesSeparateFromRecords) {
  sim::CostModel::Params p;
  p.sec_per_merge_record = 1e-6;
  p.sec_per_merge_byte = 1e-7;
  const sim::CostModel cost(p);
  EXPECT_DOUBLE_EQ(cost.merge_seconds(10, 0), 1e-5);
  EXPECT_DOUBLE_EQ(cost.merge_seconds(0, 100), 1e-5);
  EXPECT_DOUBLE_EQ(cost.merge_seconds(10, 100), 2e-5);
}

}  // namespace
}  // namespace pioblast
