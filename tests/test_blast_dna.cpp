// Deeper nucleotide-mode (blastn-style) engine coverage: exact-word
// seeding, N handling, single-hit triggering, scoring, and partition
// invariance for DNA databases.
#include <gtest/gtest.h>

#include "blast/engine.h"
#include "pario/vfs.h"
#include "seqdb/generator.h"
#include "seqdb/partition.h"
#include "util/rng.h"

namespace pioblast::blast {
namespace {

using seqdb::SeqType;

std::vector<std::uint8_t> nt(const std::string& s) {
  return seqdb::encode_sequence(SeqType::kNucleotide, s);
}

seqdb::LoadedFragment frag_of(const std::vector<seqdb::FastaRecord>& records) {
  pario::VirtualFS fs;
  seqdb::format_db(fs, records, "nt", SeqType::kNucleotide, "t");
  return seqdb::load_volumes(fs, "nt", SeqType::kNucleotide, 0);
}

GlobalDbStats stats_of(const std::vector<seqdb::FastaRecord>& records) {
  GlobalDbStats s;
  s.num_seqs = records.size();
  for (const auto& r : records) s.total_residues += r.sequence.size();
  return s;
}

/// A deterministic pseudo-random DNA string (no fixed repeats).
std::string random_dna(std::uint64_t seed, std::size_t len) {
  util::Rng rng(seed);
  std::string s;
  s.reserve(len);
  for (std::size_t i = 0; i < len; ++i) s.push_back("ACGT"[rng.below(4)]);
  return s;
}

TEST(BlastnEngine, FindsEmbeddedExactMatch) {
  // A 60-base query planted inside a longer subject.
  const std::string core = random_dna(1, 60);
  const std::string subject =
      random_dna(2, 100) + core + random_dna(3, 100);
  std::vector<seqdb::FastaRecord> db{{"s0", "", subject},
                                     {"s1", "", random_dna(4, 300)}};
  const auto frag = frag_of(db);
  const auto gstats = stats_of(db);
  auto params = SearchParams::blastn_defaults();
  const auto m = make_matrix(params);
  QueryContext ctx(0, nt(core), params, m, gstats);
  const auto result = search_fragment(ctx, frag);
  ASSERT_FALSE(result.hsps.empty());
  const Hsp& top = result.hsps.front();
  EXPECT_EQ(top.subject_global_id, 0u);
  EXPECT_EQ(top.qstart, 0u);
  EXPECT_EQ(top.qend, 60u);
  EXPECT_EQ(top.sstart, 100u);
  EXPECT_EQ(top.send, 160u);
  EXPECT_EQ(top.identities, 60u);
  EXPECT_EQ(top.score, 60);  // +1 per match
}

TEST(BlastnEngine, NoSeedsBelowWordSize) {
  // A 10-base exact match cannot seed an 11-mer word scan.
  const std::string core = random_dna(5, 10);
  std::vector<seqdb::FastaRecord> db{
      {"s0", "", random_dna(6, 150) + core + random_dna(7, 150)}};
  const auto frag = frag_of(db);
  const auto gstats = stats_of(db);
  auto params = SearchParams::blastn_defaults();
  const auto m = make_matrix(params);
  QueryContext ctx(0, nt(core), params, m, gstats);
  EXPECT_TRUE(search_fragment(ctx, frag).hsps.empty());
}

TEST(BlastnEngine, NsBlockSeedingButNotExtension) {
  // The query matches the subject except one N in the middle of the
  // subject's copy; seeds exist on both sides and extension crosses the N
  // as a mismatch.
  std::string core = random_dna(8, 60);
  std::string subject_core = core;
  subject_core[30] = 'N';
  std::vector<seqdb::FastaRecord> db{
      {"s0", "", random_dna(9, 80) + subject_core + random_dna(10, 80)}};
  const auto frag = frag_of(db);
  const auto gstats = stats_of(db);
  auto params = SearchParams::blastn_defaults();
  const auto m = make_matrix(params);
  QueryContext ctx(0, nt(core), params, m, gstats);
  const auto result = search_fragment(ctx, frag);
  ASSERT_FALSE(result.hsps.empty());
  const Hsp& top = result.hsps.front();
  EXPECT_GE(top.identities, 59u);
  EXPECT_EQ(top.align_len - top.identities - top.gaps, 1u);  // one mismatch
}

TEST(BlastnEngine, MismatchPenaltyAppliedInScore) {
  std::string core = random_dna(11, 50);
  std::string mutated = core;
  mutated[25] = mutated[25] == 'A' ? 'C' : 'A';
  std::vector<seqdb::FastaRecord> db{
      {"s0", "", random_dna(12, 60) + mutated + random_dna(13, 60)}};
  const auto frag = frag_of(db);
  const auto gstats = stats_of(db);
  auto params = SearchParams::blastn_defaults();
  const auto m = make_matrix(params);
  QueryContext ctx(0, nt(core), params, m, gstats);
  const auto result = search_fragment(ctx, frag);
  ASSERT_FALSE(result.hsps.empty());
  // 49 matches (+1 each) and 1 mismatch (-3): full-length alignment scores
  // 46; a truncated 25-base one-sided alignment scores 25 or 24.
  EXPECT_EQ(result.hsps.front().score, 49 - 3);
}

TEST(BlastnEngine, GapBridgedByGappedExtension) {
  std::string core = random_dna(14, 80);
  std::string subject_core = core;
  subject_core.erase(40, 3);  // 3-base deletion
  std::vector<seqdb::FastaRecord> db{
      {"s0", "", random_dna(15, 50) + subject_core + random_dna(16, 50)}};
  const auto frag = frag_of(db);
  const auto gstats = stats_of(db);
  auto params = SearchParams::blastn_defaults();
  const auto m = make_matrix(params);
  QueryContext ctx(0, nt(core), params, m, gstats);
  const auto result = search_fragment(ctx, frag);
  ASSERT_FALSE(result.hsps.empty());
  const Hsp& top = result.hsps.front();
  EXPECT_EQ(top.gaps, 3u);
  EXPECT_EQ(top.qend - top.qstart, 80u);  // full query covered
}

class DnaPartitionInvariance : public ::testing::TestWithParam<int> {};

TEST_P(DnaPartitionInvariance, MergedEqualsWhole) {
  seqdb::GeneratorConfig cfg;
  cfg.type = SeqType::kNucleotide;
  cfg.target_residues = 150'000;
  cfg.seed = 17;
  cfg.family_fraction = 0.5;
  const auto db = seqdb::generate_database(cfg);
  const auto gstats = stats_of(db);
  auto params = SearchParams::blastn_defaults();
  params.hitlist_size = 15;
  const auto m = make_matrix(params);

  pario::VirtualFS fs;
  const auto fmt = seqdb::format_db(fs, db, "nt", SeqType::kNucleotide, "t");
  const auto names = seqdb::volume_names("nt", SeqType::kNucleotide);
  const auto query = nt(db[4].sequence);
  QueryContext ctx(0, query, params, m, gstats);
  const auto whole = search_fragment(ctx, frag_of(db));

  std::vector<Hsp> merged;
  for (const auto& fr : seqdb::virtual_partition(fmt.index, GetParam())) {
    seqdb::DbIndex hdr;
    hdr.type = SeqType::kNucleotide;
    const auto frag = seqdb::fragment_from_slices(
        hdr, fr,
        fs.pread(names.index, fr.pin_seq_off.offset, fr.pin_seq_off.length),
        fs.pread(names.index, fr.pin_hdr_off.offset, fr.pin_hdr_off.length),
        fs.pread(names.sequence, fr.psq.offset, fr.psq.length),
        fs.pread(names.header, fr.phr.offset, fr.phr.length));
    auto part = search_fragment(ctx, frag);
    merged.insert(merged.end(), part.hsps.begin(), part.hsps.end());
  }
  std::sort(merged.begin(), merged.end(), Hsp::better);
  if (merged.size() > static_cast<std::size_t>(params.hitlist_size))
    merged.resize(static_cast<std::size_t>(params.hitlist_size));

  ASSERT_EQ(merged.size(), whole.hsps.size());
  for (std::size_t i = 0; i < merged.size(); ++i) {
    EXPECT_EQ(merged[i].subject_global_id, whole.hsps[i].subject_global_id);
    EXPECT_EQ(merged[i].score, whole.hsps[i].score);
  }
}

INSTANTIATE_TEST_SUITE_P(FragmentCounts, DnaPartitionInvariance,
                         ::testing::Values(2, 5, 9));

}  // namespace
}  // namespace pioblast::blast
