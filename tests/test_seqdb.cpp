// Tests for the sequence-database toolkit: alphabets, FASTA, formatdb
// volume layout, index serialization, partitioning (physical and virtual),
// the synthetic generator, and query sampling.
#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "pario/vfs.h"
#include "seqdb/alphabet.h"
#include "seqdb/fasta.h"
#include "seqdb/formatdb.h"
#include "seqdb/generator.h"
#include "seqdb/partition.h"
#include "util/error.h"

namespace pioblast::seqdb {
namespace {

// ---------- alphabet ---------------------------------------------------

TEST(Alphabet, ProteinRoundTrip) {
  for (char c : kProteinLetters) {
    const auto code = encode_residue(SeqType::kProtein, c);
    EXPECT_EQ(decode_residue(SeqType::kProtein, code), c);
  }
}

TEST(Alphabet, DnaRoundTrip) {
  for (char c : kDnaLetters) {
    const auto code = encode_residue(SeqType::kNucleotide, c);
    EXPECT_EQ(decode_residue(SeqType::kNucleotide, code), c);
  }
}

TEST(Alphabet, LowercaseEncodesLikeUppercase) {
  EXPECT_EQ(encode_residue(SeqType::kProtein, 'a'),
            encode_residue(SeqType::kProtein, 'A'));
  EXPECT_EQ(encode_residue(SeqType::kNucleotide, 'g'),
            encode_residue(SeqType::kNucleotide, 'G'));
}

TEST(Alphabet, UnknownMapsToWildcard) {
  EXPECT_EQ(decode_residue(SeqType::kProtein,
                           encode_residue(SeqType::kProtein, 'J')),
            'X');
  EXPECT_EQ(decode_residue(SeqType::kNucleotide,
                           encode_residue(SeqType::kNucleotide, 'R')),
            'N');
}

TEST(Alphabet, SequenceRoundTrip) {
  const std::string seq = "MKVLAW";
  const auto codes = encode_sequence(SeqType::kProtein, seq);
  EXPECT_EQ(decode_sequence(SeqType::kProtein, codes), seq);
}

TEST(Alphabet, SizesMatchLetterSets) {
  EXPECT_EQ(alphabet_size(SeqType::kProtein),
            static_cast<int>(kProteinLetters.size()));
  EXPECT_EQ(alphabet_size(SeqType::kNucleotide),
            static_cast<int>(kDnaLetters.size()));
}

TEST(Alphabet, ValidLetterChecks) {
  EXPECT_TRUE(is_valid_letter(SeqType::kProtein, 'w'));
  EXPECT_FALSE(is_valid_letter(SeqType::kProtein, '1'));
  EXPECT_TRUE(is_valid_letter(SeqType::kNucleotide, 't'));
  EXPECT_FALSE(is_valid_letter(SeqType::kNucleotide, 'Q'));
}

// ---------- FASTA -------------------------------------------------------

TEST(Fasta, ParsesMultipleRecords) {
  const auto recs = parse_fasta(">a desc one\nMKV\nLAW\n>b\nACDE\n");
  ASSERT_EQ(recs.size(), 2u);
  EXPECT_EQ(recs[0].id, "a");
  EXPECT_EQ(recs[0].description, "desc one");
  EXPECT_EQ(recs[0].sequence, "MKVLAW");
  EXPECT_EQ(recs[1].id, "b");
  EXPECT_TRUE(recs[1].description.empty());
}

TEST(Fasta, ToleratesCrlfAndBlankLines) {
  const auto recs = parse_fasta(">a\r\nMKV\r\n\r\nLAW\r\n");
  ASSERT_EQ(recs.size(), 1u);
  EXPECT_EQ(recs[0].sequence, "MKVLAW");
}

TEST(Fasta, RejectsDataBeforeDefline) {
  EXPECT_THROW(parse_fasta("MKV\n>a\nLAW\n"), util::ContractViolation);
}

TEST(Fasta, RejectsEmptyRecord) {
  EXPECT_THROW(parse_fasta(">a\n>b\nMKV\n"), util::ContractViolation);
}

TEST(Fasta, RejectsEmptyDefline) {
  EXPECT_THROW(parse_fasta(">\nMKV\n"), util::ContractViolation);
}

TEST(Fasta, WriteParseRoundTrip) {
  std::vector<FastaRecord> recs{{"id1", "a description", std::string(150, 'M')},
                                {"id2", "", "ACDEFGHIK"}};
  const auto parsed = parse_fasta(write_fasta(recs, 60));
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_EQ(parsed[0].id, recs[0].id);
  EXPECT_EQ(parsed[0].description, recs[0].description);
  EXPECT_EQ(parsed[0].sequence, recs[0].sequence);
  EXPECT_EQ(parsed[1].sequence, recs[1].sequence);
}

TEST(Fasta, WrapWidthRespected) {
  std::vector<FastaRecord> recs{{"x", "", std::string(100, 'A')}};
  const std::string text = write_fasta(recs, 25);
  std::size_t longest = 0, current = 0;
  for (char c : text) {
    if (c == '\n') {
      longest = std::max(longest, current);
      current = 0;
    } else {
      ++current;
    }
  }
  EXPECT_LE(longest, 25u);
}

// ---------- formatdb ------------------------------------------------------

std::vector<FastaRecord> tiny_db() {
  return {{"s0", "first", "MKVLAWGG"},
          {"s1", "second", "ACDEFGHIKLMNPQRSTVWY"},
          {"s2", "", "WWWW"}};
}

TEST(FormatDb, WritesThreeVolumes) {
  pario::VirtualFS fs;
  const auto result =
      format_db(fs, tiny_db(), "db", SeqType::kProtein, "test db");
  EXPECT_TRUE(fs.exists("db.pin"));
  EXPECT_TRUE(fs.exists("db.psq"));
  EXPECT_TRUE(fs.exists("db.phr"));
  EXPECT_EQ(result.index.num_seqs, 3u);
  EXPECT_EQ(result.index.total_residues, 8u + 20u + 4u);
  EXPECT_EQ(result.index.max_seq_len, 20u);
}

TEST(FormatDb, NucleotideVolumesUseNinNames) {
  pario::VirtualFS fs;
  std::vector<FastaRecord> db{{"n0", "", "ACGTACGTACGTAGG"}};
  format_db(fs, db, "nt", SeqType::kNucleotide, "nt db");
  EXPECT_TRUE(fs.exists("nt.nin"));
  EXPECT_TRUE(fs.exists("nt.nsq"));
  EXPECT_TRUE(fs.exists("nt.nhr"));
}

TEST(FormatDb, IndexSerializationRoundTrip) {
  pario::VirtualFS fs;
  const auto result = format_db(fs, tiny_db(), "db", SeqType::kProtein, "title!");
  const auto idx = DbIndex::deserialize(fs.read_all("db.pin"));
  EXPECT_EQ(idx.num_seqs, result.index.num_seqs);
  EXPECT_EQ(idx.title, "title!");
  EXPECT_EQ(idx.seq_offsets, result.index.seq_offsets);
  EXPECT_EQ(idx.hdr_offsets, result.index.hdr_offsets);
}

TEST(FormatDb, HeaderOnlyDeserialization) {
  pario::VirtualFS fs;
  format_db(fs, tiny_db(), "db", SeqType::kProtein, "hdr");
  const auto pin = fs.read_all("db.pin");
  const auto hdr = DbIndex::deserialize_header(
      std::span(pin.data(), DbIndex::kHeaderBytes));
  EXPECT_EQ(hdr.num_seqs, 3u);
  EXPECT_EQ(hdr.title, "hdr");
  EXPECT_TRUE(hdr.seq_offsets.empty());
}

TEST(FormatDb, OffsetPositionsMatchSerializedLayout) {
  pario::VirtualFS fs;
  const auto result = format_db(fs, tiny_db(), "db", SeqType::kProtein, "t");
  const auto pin = fs.read_all("db.pin");
  const auto n = result.index.num_seqs;
  for (std::uint64_t i = 0; i <= n; ++i) {
    std::uint64_t seq_off, hdr_off;
    std::memcpy(&seq_off, pin.data() + DbIndex::seq_offsets_pos(i), 8);
    std::memcpy(&hdr_off, pin.data() + DbIndex::hdr_offsets_pos(n, i), 8);
    EXPECT_EQ(seq_off, result.index.seq_offsets[i]);
    EXPECT_EQ(hdr_off, result.index.hdr_offsets[i]);
  }
}

TEST(FormatDb, CorruptIndexRejected) {
  std::vector<std::uint8_t> junk(200, 0xAB);
  EXPECT_THROW(DbIndex::deserialize(junk), util::ContractViolation);
  EXPECT_THROW(DbIndex::deserialize_header(std::span(junk.data(), 10)),
               util::ContractViolation);
}

TEST(FormatDb, EmptyDatabaseRejected) {
  pario::VirtualFS fs;
  EXPECT_THROW(format_db(fs, {}, "db", SeqType::kProtein, "t"),
               util::ContractViolation);
}

TEST(FormatDb, FromFileFlow) {
  pario::VirtualFS fs;
  const std::string fasta = write_fasta(tiny_db());
  fs.write_all("raw.fa",
               std::span(reinterpret_cast<const std::uint8_t*>(fasta.data()),
                         fasta.size()));
  const auto result =
      format_db_from_file(fs, "raw.fa", "db", SeqType::kProtein, "t");
  EXPECT_EQ(result.raw_bytes, fasta.size());
  EXPECT_EQ(result.index.num_seqs, 3u);
}

TEST(LoadedFragment, ExposesSequencesAndDeflines) {
  pario::VirtualFS fs;
  format_db(fs, tiny_db(), "db", SeqType::kProtein, "t");
  const auto frag = load_volumes(fs, "db", SeqType::kProtein, 100);
  EXPECT_EQ(frag.num_seqs(), 3u);
  EXPECT_EQ(frag.global_id(1), 101u);
  EXPECT_EQ(decode_sequence(SeqType::kProtein,
                            {frag.sequence(0).begin(), frag.sequence(0).end()}),
            "MKVLAWGG");
  EXPECT_EQ(frag.defline(0), "s0 first");
  EXPECT_EQ(frag.defline(2), "s2");
  EXPECT_EQ(frag.residues(), 32u);
}

// ---------- partitioning -----------------------------------------------------

std::vector<FastaRecord> sized_db(int n, int len_step) {
  std::vector<FastaRecord> db;
  for (int i = 0; i < n; ++i) {
    db.push_back({"s" + std::to_string(i), "",
                  std::string(static_cast<std::size_t>(20 + (i % 7) * len_step),
                              'A')});
  }
  return db;
}

TEST(Partition, BalancedSplitCoversAllSequencesOnce) {
  pario::VirtualFS fs;
  const auto result =
      format_db(fs, sized_db(100, 30), "db", SeqType::kProtein, "t");
  for (int f : {1, 2, 3, 7, 31, 100}) {
    const auto ranges = balanced_split(result.index, f);
    ASSERT_EQ(ranges.size(), static_cast<std::size_t>(f));
    std::uint64_t next = 0;
    for (const auto& r : ranges) {
      EXPECT_EQ(r.first, next);
      EXPECT_GE(r.count, 1u);
      next += r.count;
    }
    EXPECT_EQ(next, result.index.num_seqs);
  }
}

TEST(Partition, BalancedSplitEvensOutResidues) {
  pario::VirtualFS fs;
  const auto result =
      format_db(fs, sized_db(500, 40), "db", SeqType::kProtein, "t");
  const int f = 10;
  const auto ranges = balanced_split(result.index, f);
  const double target =
      static_cast<double>(result.index.total_residues) / f;
  for (const auto& r : ranges) {
    const std::uint64_t residues = result.index.seq_offsets[r.first + r.count] -
                                   result.index.seq_offsets[r.first];
    EXPECT_NEAR(static_cast<double>(residues), target, target * 0.25);
  }
}

TEST(Partition, TooManyFragmentsRejected) {
  pario::VirtualFS fs;
  const auto result = format_db(fs, tiny_db(), "db", SeqType::kProtein, "t");
  EXPECT_THROW(balanced_split(result.index, 4), util::ContractViolation);
  EXPECT_THROW(balanced_split(result.index, 0), util::ContractViolation);
}

TEST(Partition, VirtualRangesMatchIndexByteLayout) {
  pario::VirtualFS fs;
  const auto result =
      format_db(fs, sized_db(64, 25), "db", SeqType::kProtein, "t");
  const auto frs = virtual_partition(result.index, 5);
  ASSERT_EQ(frs.size(), 5u);
  std::uint64_t psq_cursor = 0;
  for (const auto& fr : frs) {
    EXPECT_EQ(fr.psq.offset, psq_cursor);
    psq_cursor += fr.psq.length;
    EXPECT_EQ(fr.pin_seq_off.length, (fr.seqs.count + 1) * 8);
    EXPECT_EQ(fr.pin_hdr_off.length, (fr.seqs.count + 1) * 8);
  }
  EXPECT_EQ(psq_cursor, result.index.total_residues);
}

TEST(Partition, FragmentFromSlicesEqualsDirectLoad) {
  // Reconstructing a virtual fragment from byte slices must produce the
  // same sequences/deflines as loading a physical fragment would.
  pario::VirtualFS fs;
  const auto db = sized_db(40, 15);
  const auto result = format_db(fs, db, "db", SeqType::kProtein, "t");
  const VolumeNames names = volume_names("db", SeqType::kProtein);
  const auto pin = fs.read_all(names.index);

  for (const auto& fr : virtual_partition(result.index, 7)) {
    auto slice = [&](const pario::Region& r, const std::string& file) {
      return fs.pread(file, r.offset, r.length);
    };
    DbIndex hdr;
    hdr.type = SeqType::kProtein;
    const auto frag = fragment_from_slices(
        hdr, fr, slice(fr.pin_seq_off, names.index),
        slice(fr.pin_hdr_off, names.index), slice(fr.psq, names.sequence),
        slice(fr.phr, names.header));
    EXPECT_EQ(frag.num_seqs(), fr.seqs.count);
    for (std::uint64_t i = 0; i < frag.num_seqs(); ++i) {
      const auto& rec = db[fr.seqs.first + i];
      EXPECT_EQ(decode_sequence(SeqType::kProtein, {frag.sequence(i).begin(),
                                                    frag.sequence(i).end()}),
                rec.sequence);
      EXPECT_EQ(frag.defline(i), rec.defline());
      EXPECT_EQ(frag.global_id(i), fr.seqs.first + i);
    }
  }
}

TEST(Partition, MpiformatdbWritesFragmentVolumes) {
  pario::VirtualFS fs;
  const auto db = sized_db(50, 20);
  const auto parts = mpiformatdb(fs, db, "db", SeqType::kProtein, "t", 6);
  ASSERT_EQ(parts.fragment_bases.size(), 6u);
  std::uint64_t total_seqs = 0;
  for (std::size_t f = 0; f < parts.fragment_bases.size(); ++f) {
    const auto frag = load_volumes(fs, parts.fragment_bases[f],
                                   SeqType::kProtein, parts.ranges[f].first);
    total_seqs += frag.num_seqs();
    EXPECT_EQ(frag.num_seqs(), parts.ranges[f].count);
  }
  EXPECT_EQ(total_seqs, db.size());
  EXPECT_GT(parts.bytes_written, 0u);
}

// ---------- generator ---------------------------------------------------------

TEST(Generator, DeterministicForSameSeed) {
  GeneratorConfig cfg;
  cfg.target_residues = 50000;
  const auto a = generate_database(cfg);
  const auto b = generate_database(cfg);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, b[i].id);
    EXPECT_EQ(a[i].sequence, b[i].sequence);
  }
}

TEST(Generator, DifferentSeedsDiffer) {
  GeneratorConfig cfg;
  cfg.target_residues = 20000;
  auto a = generate_database(cfg);
  cfg.seed ^= 0xDEADBEEF;
  auto b = generate_database(cfg);
  EXPECT_NE(a[0].sequence, b[0].sequence);
}

TEST(Generator, ReachesTargetResidues) {
  GeneratorConfig cfg;
  cfg.target_residues = 100000;
  const auto db = generate_database(cfg);
  std::uint64_t total = 0;
  for (const auto& r : db) total += r.sequence.size();
  EXPECT_GE(total, cfg.target_residues);
  EXPECT_LT(total, cfg.target_residues + cfg.max_len + 16);
}

TEST(Generator, LengthsRespectBounds) {
  GeneratorConfig cfg;
  cfg.target_residues = 100000;
  cfg.min_len = 50;
  cfg.max_len = 700;
  cfg.family_fraction = 0.0;  // homolog indels may drift outside bounds
  for (const auto& r : generate_database(cfg)) {
    EXPECT_GE(r.sequence.size(), 50u);
    EXPECT_LE(r.sequence.size(), 700u);
  }
}

TEST(Generator, ProducesValidResidues) {
  GeneratorConfig cfg;
  cfg.target_residues = 30000;
  for (const auto& r : generate_database(cfg)) {
    for (char c : r.sequence) EXPECT_TRUE(is_valid_letter(SeqType::kProtein, c));
  }
}

TEST(Generator, DnaModeProducesDna) {
  GeneratorConfig cfg;
  cfg.type = SeqType::kNucleotide;
  cfg.target_residues = 30000;
  for (const auto& r : generate_database(cfg)) {
    for (char c : r.sequence)
      EXPECT_TRUE(is_valid_letter(SeqType::kNucleotide, c));
  }
}

TEST(Generator, FamiliesCreateHomologs) {
  GeneratorConfig cfg;
  cfg.target_residues = 100000;
  cfg.family_fraction = 0.5;
  int homologs = 0;
  for (const auto& r : generate_database(cfg)) {
    if (r.description.rfind("homolog of", 0) == 0) ++homologs;
  }
  EXPECT_GT(homologs, 10);
}

TEST(Generator, UniqueIds) {
  GeneratorConfig cfg;
  cfg.target_residues = 50000;
  std::set<std::string> ids;
  for (const auto& r : generate_database(cfg)) ids.insert(r.id);
  EXPECT_EQ(ids.size(), generate_database(cfg).size());
}

// ---------- query sampling ------------------------------------------------------

TEST(QuerySampling, ReachesTargetBytes) {
  GeneratorConfig cfg;
  cfg.target_residues = 100000;
  const auto db = generate_database(cfg);
  const auto queries = sample_queries(db, 10000, 1);
  std::uint64_t bytes = 0;
  for (const auto& q : queries) bytes += q.sequence.size();
  EXPECT_GE(bytes + 64 * queries.size(), 10000u);
}

TEST(QuerySampling, DeterministicAndSeedSensitive) {
  GeneratorConfig cfg;
  cfg.target_residues = 60000;
  const auto db = generate_database(cfg);
  const auto a = sample_queries(db, 5000, 3);
  const auto b = sample_queries(db, 5000, 3);
  const auto c = sample_queries(db, 5000, 4);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_EQ(a[i].sequence, b[i].sequence);
  bool differs = a.size() != c.size();
  for (std::size_t i = 0; !differs && i < a.size(); ++i)
    differs = a[i].sequence != c[i].sequence;
  EXPECT_TRUE(differs);
}

TEST(QuerySampling, SequencesComeFromDatabase) {
  GeneratorConfig cfg;
  cfg.target_residues = 40000;
  const auto db = generate_database(cfg);
  std::set<std::string> db_seqs;
  for (const auto& r : db) db_seqs.insert(r.sequence);
  for (const auto& q : sample_queries(db, 3000, 9)) {
    EXPECT_TRUE(db_seqs.count(q.sequence)) << q.id;
  }
}

TEST(QuerySampling, EmptyDatabaseRejected) {
  EXPECT_THROW(sample_queries({}, 100, 1), util::ContractViolation);
}

}  // namespace
}  // namespace pioblast::seqdb
