// Unit tests of the shared driver framework (src/driver): scheduler
// policies, the RunMetrics registry, summarize_run invariants, and the
// WireCodec round trips behind the typed channels.
#include <gtest/gtest.h>

#include <numeric>
#include <set>
#include <vector>

#include "blast/driver.h"
#include "blast/serialize.h"
#include "driver/channel.h"
#include "driver/messages.h"
#include "driver/metrics.h"
#include "driver/scheduler.h"
#include "driver/tags.h"
#include "mpisim/wire.h"
#include "seqdb/partition.h"
#include "util/error.h"

namespace pioblast {
namespace {

driver::WorkerTopology topo_with_speeds(std::vector<double> speeds) {
  driver::WorkerTopology topo;
  topo.nworkers = static_cast<int>(speeds.size());
  topo.speed = std::move(speeds);
  return topo;
}

/// Every task in [0, ntasks) appears exactly once across the plan.
void expect_covers_all(const std::vector<std::vector<std::uint32_t>>& plan,
                       std::uint32_t ntasks) {
  std::set<std::uint32_t> seen;
  for (const auto& q : plan)
    for (std::uint32_t t : q) EXPECT_TRUE(seen.insert(t).second) << t;
  EXPECT_EQ(seen.size(), ntasks);
}

TEST(SchedulerKind, NameRoundTrip) {
  for (auto kind : {driver::SchedulerKind::kGreedyDynamic,
                    driver::SchedulerKind::kStaticRoundRobin,
                    driver::SchedulerKind::kSpeedWeighted}) {
    EXPECT_EQ(driver::parse_scheduler(driver::to_string(kind)), kind);
  }
  EXPECT_THROW(driver::parse_scheduler("fifo"), util::RuntimeError);
}

TEST(Scheduler, GreedyHandsOutTasksInOrderToAnyWorker) {
  auto sched = driver::make_scheduler(driver::SchedulerKind::kGreedyDynamic);
  EXPECT_FALSE(sched->is_static());
  sched->reset(3, topo_with_speeds({1.0, 1.0}));
  EXPECT_EQ(sched->next(1), 0);
  EXPECT_EQ(sched->next(0), 1);
  EXPECT_EQ(sched->next(1), 2);
  EXPECT_EQ(sched->next(0), driver::Scheduler::kNoTask);
  EXPECT_EQ(sched->next(1), driver::Scheduler::kNoTask);
}

TEST(Scheduler, GreedyRefusesToPlan) {
  auto sched = driver::make_scheduler(driver::SchedulerKind::kGreedyDynamic);
  EXPECT_THROW(sched->plan(4, topo_with_speeds({1.0, 1.0})),
               util::ContractViolation);
}

TEST(Scheduler, RoundRobinPlanIsModular) {
  auto sched = driver::make_scheduler(driver::SchedulerKind::kStaticRoundRobin);
  EXPECT_TRUE(sched->is_static());
  const auto plan = sched->plan(7, topo_with_speeds({1.0, 1.0, 1.0}));
  ASSERT_EQ(plan.size(), 3u);
  EXPECT_EQ(plan[0], (std::vector<std::uint32_t>{0, 3, 6}));
  EXPECT_EQ(plan[1], (std::vector<std::uint32_t>{1, 4}));
  EXPECT_EQ(plan[2], (std::vector<std::uint32_t>{2, 5}));
  expect_covers_all(plan, 7);
}

TEST(Scheduler, SpeedWeightedDegeneratesToRoundRobinWhenHomogeneous) {
  auto rr = driver::make_scheduler(driver::SchedulerKind::kStaticRoundRobin);
  auto sw = driver::make_scheduler(driver::SchedulerKind::kSpeedWeighted);
  const auto topo = topo_with_speeds({1.0, 1.0, 1.0, 1.0});
  EXPECT_EQ(sw->plan(10, topo), rr->plan(10, topo));
}

TEST(Scheduler, SpeedWeightedApportionsProportionally) {
  auto sched = driver::make_scheduler(driver::SchedulerKind::kSpeedWeighted);
  // D'Hondt over speeds 2:1 must split 9 tasks 6:3.
  const auto plan = sched->plan(9, topo_with_speeds({2.0, 1.0}));
  ASSERT_EQ(plan.size(), 2u);
  EXPECT_EQ(plan[0].size(), 6u);
  EXPECT_EQ(plan[1].size(), 3u);
  expect_covers_all(plan, 9);
}

TEST(Scheduler, SpeedWeightedIsDeterministicAndComplete) {
  const auto topo = topo_with_speeds({1.3, 0.4, 2.2, 1.0, 0.9});
  auto a = driver::make_scheduler(driver::SchedulerKind::kSpeedWeighted);
  auto b = driver::make_scheduler(driver::SchedulerKind::kSpeedWeighted);
  const auto plan_a = a->plan(23, topo);
  const auto plan_b = b->plan(23, topo);
  EXPECT_EQ(plan_a, plan_b);
  expect_covers_all(plan_a, 23);
  // The fastest worker holds the most tasks.
  std::size_t max_tasks = 0;
  for (const auto& q : plan_a) max_tasks = std::max(max_tasks, q.size());
  EXPECT_EQ(plan_a[2].size(), max_tasks);
}

TEST(Scheduler, SpeedWeightedBreaksTiesTowardLowestWorker) {
  auto sched = driver::make_scheduler(driver::SchedulerKind::kSpeedWeighted);
  const auto plan = sched->plan(2, topo_with_speeds({1.0, 1.0, 1.0}));
  EXPECT_EQ(plan[0], (std::vector<std::uint32_t>{0}));
  EXPECT_EQ(plan[1], (std::vector<std::uint32_t>{1}));
  EXPECT_TRUE(plan[2].empty());
}

TEST(RunMetrics, AddAccumulatesAndSetOverwrites) {
  driver::RunMetrics m;
  EXPECT_EQ(m.get("x"), 0u);
  m.add("x", 2);
  m.add("x", 3);
  EXPECT_EQ(m.get("x"), 5u);
  m.set("x", 7);
  EXPECT_EQ(m.get("x"), 7u);
}

TEST(RunMetrics, SnapshotAndJsonAreNameOrdered) {
  driver::RunMetrics m;
  m.set("zeta", 1);
  m.set("alpha", 2);
  m.add(driver::kMetricHspsCached, 9);
  const auto snap = m.snapshot();
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_EQ(snap.begin()->first, "alpha");
  EXPECT_EQ(m.to_json(), "{\"alpha\":2,\"hsps_cached\":9,\"zeta\":1}");
}

mpisim::RankReport make_rank(int rank, sim::Time clock,
                             std::vector<std::pair<std::string, sim::Time>>
                                 buckets) {
  mpisim::RankReport r;
  r.rank = rank;
  r.final_clock = clock;
  for (const auto& [name, secs] : buckets) r.phases.add(name, secs);
  return r;
}

void expect_breakdown_invariants(const blast::PhaseBreakdown& b) {
  EXPECT_GE(b.copy_input, 0.0);
  EXPECT_GE(b.search, 0.0);
  EXPECT_GE(b.output, 0.0);
  EXPECT_GE(b.other, 0.0);
  EXPECT_LE(b.copy_input + b.search + b.output + b.other, b.total + 1e-9);
  EXPECT_GE(b.search_fraction(), 0.0);
  EXPECT_LE(b.search_fraction(), 1.0);
}

TEST(SummarizeRun, NormalReportSplitsPhases) {
  mpisim::RunReport report;
  report.ranks.push_back(make_rank(0, 10.0, {{"output", 3.0}}));
  report.ranks.push_back(
      make_rank(1, 10.0, {{"copy", 2.0}, {"search", 4.0}}));
  report.ranks.push_back(
      make_rank(2, 9.0, {{"input", 1.0}, {"search", 5.0}}));
  const auto b = blast::summarize_run(report);
  EXPECT_DOUBLE_EQ(b.total, 10.0);
  EXPECT_DOUBLE_EQ(b.copy_input, 2.0);  // max over workers
  EXPECT_DOUBLE_EQ(b.search, 5.0);
  EXPECT_DOUBLE_EQ(b.output, 3.0);
  expect_breakdown_invariants(b);
}

TEST(SummarizeRun, ClampsWhenRankBucketsExceedMakespan) {
  // copy/search come from the slowest worker, output from the master:
  // different ranks, so the raw sum can beat the makespan under extreme
  // imbalance. The summary must clamp rather than report an over-full
  // breakdown.
  mpisim::RunReport report;
  report.ranks.push_back(make_rank(0, 5.0, {{"output", 4.0}}));
  report.ranks.push_back(
      make_rank(1, 5.0, {{"copy", 3.0}, {"search", 4.0}}));
  const auto b = blast::summarize_run(report);
  EXPECT_DOUBLE_EQ(b.total, 5.0);
  EXPECT_DOUBLE_EQ(b.copy_input, 3.0);
  EXPECT_DOUBLE_EQ(b.search, 2.0);   // clamped to total - copy
  EXPECT_DOUBLE_EQ(b.output, 0.0);   // nothing left
  expect_breakdown_invariants(b);
}

TEST(SummarizeRun, EmptyReportIsAllZero) {
  const auto b = blast::summarize_run(mpisim::RunReport{});
  EXPECT_DOUBLE_EQ(b.total, 0.0);
  EXPECT_DOUBLE_EQ(b.search_fraction(), 0.0);
  expect_breakdown_invariants(b);
}

seqdb::FragmentRange sample_range() {
  seqdb::FragmentRange r;
  r.fragment_id = 7;
  r.seqs = {11, 22};
  r.psq = {100, 200};
  r.phr = {300, 400};
  r.pin_seq_off = {500, 184};
  r.pin_hdr_off = {700, 184};
  return r;
}

TEST(WireCodecs, FragmentRangeRoundTripsWithoutPadding) {
  mpisim::Encoder enc;
  enc.put_obj(sample_range());
  // 1 int + 10 u64 fields, no struct padding on the wire.
  EXPECT_EQ(enc.size(), 4u + 10u * 8u);
  mpisim::Decoder dec(enc.bytes());
  const auto r = dec.get_obj<seqdb::FragmentRange>();
  EXPECT_TRUE(dec.exhausted());
  EXPECT_EQ(r.fragment_id, 7);
  EXPECT_EQ(r.seqs.first, 11u);
  EXPECT_EQ(r.seqs.count, 22u);
  EXPECT_EQ(r.psq.offset, 100u);
  EXPECT_EQ(r.phr.length, 400u);
  EXPECT_EQ(r.pin_seq_off.offset, 500u);
  EXPECT_EQ(r.pin_hdr_off.length, 184u);
}

TEST(WireCodecs, HspRoundTripsThroughCodec) {
  blast::Hsp h;
  h.query_id = 3;
  h.subject_global_id = 99;
  h.qstart = 5;
  h.qend = 25;
  h.sstart = 7;
  h.send = 27;
  h.score = 61;
  h.bits = 28.1;
  h.evalue = 1e-5;
  h.identities = 18;
  h.positives = 19;
  h.gaps = 1;
  h.align_len = 21;
  h.ops = {blast::AlignOp::kMatch, blast::AlignOp::kInsert,
           blast::AlignOp::kMatch};
  mpisim::Encoder enc;
  enc.put_obj(h);
  mpisim::Decoder dec(enc.bytes());
  const auto back = dec.get_obj<blast::Hsp>();
  EXPECT_TRUE(dec.exhausted());
  EXPECT_EQ(back.subject_global_id, 99u);
  EXPECT_EQ(back.score, 61);
  EXPECT_DOUBLE_EQ(back.evalue, 1e-5);
  EXPECT_EQ(back.ops, h.ops);
}

TEST(WireCodecs, CandidateMetaIsFixedSizeOnTheWire) {
  blast::CandidateMeta c;
  c.query_id = 1;
  c.local_index = 2;
  c.subject_global_id = 3;
  c.score = 44;
  c.owner = 5;
  c.evalue = 0.25;
  c.output_size = 1234;
  c.qstart = 6;
  c.sstart32 = 7;
  mpisim::Encoder enc;
  enc.put_obj(c);
  EXPECT_EQ(enc.size(), 48u);  // the §3.2 lean record, padding-free
  mpisim::Decoder dec(enc.bytes());
  const auto back = dec.get_obj<blast::CandidateMeta>();
  EXPECT_TRUE(dec.exhausted());
  EXPECT_EQ(back.owner, 5);
  EXPECT_EQ(back.output_size, 1234u);
  EXPECT_DOUBLE_EQ(back.evalue, 0.25);
}

TEST(WireCodecs, RangeAssignmentCarriesRoundsAndRanges) {
  driver::RangeAssignment a;
  a.total_fragments = 9;
  a.rounds = 4;
  a.ranges = {sample_range(), sample_range()};
  a.ranges[1].fragment_id = 8;
  mpisim::Encoder enc;
  enc.put_obj(a);
  mpisim::Decoder dec(enc.bytes());
  const auto back = dec.get_obj<driver::RangeAssignment>();
  EXPECT_TRUE(dec.exhausted());
  EXPECT_EQ(back.total_fragments, 9u);
  EXPECT_EQ(back.rounds, 4u);
  ASSERT_EQ(back.ranges.size(), 2u);
  EXPECT_EQ(back.ranges[0].fragment_id, 7);
  EXPECT_EQ(back.ranges[1].fragment_id, 8);
}

TEST(WireCodecs, FetchMessagesAndSelectionRoundTrip) {
  driver::FetchRequest req{17};
  EXPECT_FALSE(req.end_of_query());
  EXPECT_TRUE(driver::FetchRequest{driver::kEndOfQuery}.end_of_query());
  // The lean request is a single u32 — the redundant query id of the
  // historical wire format is gone.
  EXPECT_EQ(driver::wire_size(req), 4u);

  driver::FetchResponse resp;
  resp.defline = "sp|TEST|demo";
  resp.subject_len = 321;
  resp.residues = {1, 2, 3, 4};
  mpisim::Encoder enc;
  enc.put_obj(resp);
  mpisim::Decoder dec(enc.bytes());
  const auto back = dec.get_obj<driver::FetchResponse>();
  EXPECT_TRUE(dec.exhausted());
  EXPECT_EQ(back.defline, resp.defline);
  EXPECT_EQ(back.subject_len, 321u);
  EXPECT_EQ(back.residues, resp.residues);

  driver::OutputSelection sel;
  sel.slots.push_back({2, 1000});
  sel.slots.push_back({0, 2048});
  mpisim::Encoder senc;
  senc.put_obj(sel);
  // u32 count + per slot u32 index + u64 offset (the historical layout).
  EXPECT_EQ(senc.size(), 4u + 2u * 12u);
  mpisim::Decoder sdec(senc.bytes());
  const auto sback = sdec.get_obj<driver::OutputSelection>();
  EXPECT_TRUE(sdec.exhausted());
  ASSERT_EQ(sback.slots.size(), 2u);
  EXPECT_EQ(sback.slots[0].local_index, 2u);
  EXPECT_EQ(sback.slots[1].offset, 2048u);
}

TEST(Tags, RegistryStaysBelowInternalBand) {
  EXPECT_LT(driver::kTagFetchResp, mpisim::kDriverTagLimit);
  EXPECT_LT(driver::kTagSelect, mpisim::kDriverTagLimit);
  // Numeric stability matters: trace files grep for tag=3 fetch traffic.
  EXPECT_EQ(static_cast<int>(driver::kTagFetchReq), 3);
  EXPECT_EQ(static_cast<int>(driver::kTagWorkReq), 1);
}

}  // namespace
}  // namespace pioblast
