// Tests for the command-line argument parser used by the tools.
#include <gtest/gtest.h>

#include "util/args.h"
#include "util/error.h"

namespace pioblast::util {
namespace {

ArgParser make() {
  ArgParser p("prog", "test program");
  p.add("count", "5", "a number")
      .add("name", "default", "a string")
      .add("rate", "1.5", "a double")
      .add_flag("verbose", "a flag");
  return p;
}

bool parse(ArgParser& p, std::initializer_list<const char*> args) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return p.parse(static_cast<int>(argv.size()), argv.data());
}

TEST(Args, DefaultsApply) {
  auto p = make();
  ASSERT_TRUE(parse(p, {}));
  EXPECT_EQ(p.get("name"), "default");
  EXPECT_EQ(p.get_int("count"), 5);
  EXPECT_DOUBLE_EQ(p.get_double("rate"), 1.5);
  EXPECT_FALSE(p.get_flag("verbose"));
}

TEST(Args, EqualsAndSpaceForms) {
  auto p = make();
  ASSERT_TRUE(parse(p, {"--count=9", "--name", "zig"}));
  EXPECT_EQ(p.get_int("count"), 9);
  EXPECT_EQ(p.get("name"), "zig");
}

TEST(Args, FlagsAndPositionals) {
  auto p = make();
  ASSERT_TRUE(parse(p, {"--verbose", "input.fa", "more.fa"}));
  EXPECT_TRUE(p.get_flag("verbose"));
  ASSERT_EQ(p.positional().size(), 2u);
  EXPECT_EQ(p.positional()[0], "input.fa");
}

TEST(Args, UnknownOptionFails) {
  auto p = make();
  EXPECT_FALSE(parse(p, {"--bogus=1"}));
  EXPECT_NE(p.error().find("unknown option --bogus"), std::string::npos);
  EXPECT_NE(p.error().find("usage:"), std::string::npos);
}

TEST(Args, MissingValueFails) {
  auto p = make();
  EXPECT_FALSE(parse(p, {"--count"}));
  EXPECT_NE(p.error().find("needs a value"), std::string::npos);
}

TEST(Args, HelpProducesUsage) {
  auto p = make();
  EXPECT_FALSE(parse(p, {"--help"}));
  EXPECT_EQ(p.error().rfind("usage:", 0), 0u);
  EXPECT_NE(p.error().find("--verbose"), std::string::npos);
}

TEST(Args, BadIntegerThrows) {
  auto p = make();
  ASSERT_TRUE(parse(p, {"--count=abc"}));
  EXPECT_THROW(p.get_int("count"), ContractViolation);
}

TEST(Args, BadDoubleThrows) {
  auto p = make();
  ASSERT_TRUE(parse(p, {"--rate=xyz"}));
  EXPECT_THROW(p.get_double("rate"), ContractViolation);
}

TEST(Args, UnregisteredAccessThrows) {
  auto p = make();
  ASSERT_TRUE(parse(p, {}));
  EXPECT_THROW(p.get("nope"), ContractViolation);
}

TEST(Args, DuplicateRegistrationThrows) {
  ArgParser p("prog");
  p.add("x", "1", "h");
  EXPECT_THROW(p.add("x", "2", "h"), ContractViolation);
}

TEST(Args, FlagWithExplicitValue) {
  auto p = make();
  ASSERT_TRUE(parse(p, {"--verbose=false"}));
  EXPECT_FALSE(p.get_flag("verbose"));
  ASSERT_TRUE(parse(p, {"--verbose=yes"}));
  EXPECT_TRUE(p.get_flag("verbose"));
}

TEST(Args, ReparseResetsState) {
  auto p = make();
  ASSERT_TRUE(parse(p, {"--count=9", "pos"}));
  ASSERT_TRUE(parse(p, {}));
  EXPECT_EQ(p.get_int("count"), 5);
  EXPECT_TRUE(p.positional().empty());
}

}  // namespace
}  // namespace pioblast::util
