// Integration tests of the two parallel BLAST drivers.
//
// The central correctness claim of the paper — "given the same input query
// and database, pioBLAST and mpiBLAST generate the same output" — is
// asserted byte-for-byte here, across process counts, fragment counts,
// cluster types, sequence types, and the optional pioBLAST extensions.
// Phase-structure claims (copy stage vs input stage, serialized vs
// parallel output) are asserted on the virtual-time breakdowns.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <tuple>

#include "blast/job.h"
#include "driver/scheduler.h"
#include "mpiblast/mpiblast.h"
#include "pioblast/pioblast.h"
#include "seqdb/generator.h"
#include "seqdb/partition.h"

namespace pioblast {
namespace {

struct Workload {
  std::vector<seqdb::FastaRecord> db;
  std::vector<seqdb::FastaRecord> queries;
  std::string query_fasta;
  blast::JobConfig job;
};

/// Builds the (expensive) protein workload once for the whole suite.
const Workload& protein_workload() {
  static const Workload* w = [] {
    auto* wl = new Workload();
    seqdb::GeneratorConfig gen;
    gen.target_residues = 300u << 10;
    gen.seed = 1234;
    gen.family_fraction = 0.55;
    wl->db = seqdb::generate_database(gen);
    wl->queries = seqdb::sample_queries(wl->db, 6u << 10, 99);
    wl->query_fasta = seqdb::write_fasta(wl->queries);
    wl->job.db_base = "nr";
    wl->job.db_title = "synthetic nr";
    wl->job.query_path = "queries.fa";
    wl->job.params = blast::SearchParams::blastp_defaults();
    wl->job.params.hitlist_size = 30;
    return wl;
  }();
  return *w;
}

void stage_queries(pario::ClusterStorage& storage, const Workload& w) {
  storage.shared().write_all(
      w.job.query_path,
      std::span(reinterpret_cast<const std::uint8_t*>(w.query_fasta.data()),
                w.query_fasta.size()));
}

blast::DriverResult run_mpi(
    const sim::ClusterConfig& cluster, int nprocs,
    pario::ClusterStorage& storage, const Workload& w, int nfragments,
    driver::SchedulerKind sched = driver::SchedulerKind::kGreedyDynamic) {
  const auto parts =
      seqdb::mpiformatdb(storage.shared(), w.db, w.job.db_base,
                         w.job.params.type, w.job.db_title, nfragments);
  mpiblast::MpiBlastOptions opts;
  opts.job = w.job;
  opts.job.output_path = "out.mpi.txt";
  opts.fragment_bases = parts.fragment_bases;
  opts.fragment_ranges = parts.ranges;
  opts.global_index = parts.global_index;
  opts.scheduler = sched;
  return mpiblast::run_mpiblast(cluster, nprocs, storage, opts);
}

blast::DriverResult run_pio(const sim::ClusterConfig& cluster, int nprocs,
                            pario::ClusterStorage& storage, const Workload& w,
                            pio::PioBlastOptions opts = {}) {
  seqdb::format_db(storage.shared(), w.db, w.job.db_base, w.job.params.type,
                   w.job.db_title);
  opts.job = w.job;
  opts.job.nfragments = opts.job.nfragments ? opts.job.nfragments : 0;
  opts.job.output_path = "out.pio.txt";
  return pio::run_pioblast(cluster, nprocs, storage, opts);
}

// The byte-identity matrix: every (process count, scheduler policy) pair
// must produce the same report from both drivers. Output is partition- and
// schedule-invariant because the merge orders (Hsp::better,
// CandidateMeta::better) are total.
class DriverEquivalence
    : public ::testing::TestWithParam<std::tuple<int, driver::SchedulerKind>> {
};

TEST_P(DriverEquivalence, IdenticalOutputAcrossProcessCounts) {
  const int nprocs = std::get<0>(GetParam());
  const driver::SchedulerKind sched = std::get<1>(GetParam());
  const auto& w = protein_workload();
  const auto cluster = sim::ClusterConfig::ornl_altix();
  pario::ClusterStorage storage(cluster, nprocs);
  stage_queries(storage, w);

  const auto mpi = run_mpi(cluster, nprocs, storage, w, nprocs - 1, sched);
  pio::PioBlastOptions popts;
  popts.scheduler = sched;
  const auto pio = run_pio(cluster, nprocs, storage, w, popts);

  const auto a = storage.shared().read_all("out.mpi.txt");
  const auto b = storage.shared().read_all("out.pio.txt");
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a, b);
  EXPECT_EQ(mpi.output_bytes, pio.output_bytes);
  EXPECT_EQ(mpi.alignments_reported, pio.alignments_reported);
}

INSTANTIATE_TEST_SUITE_P(
    ProcCounts, DriverEquivalence,
    ::testing::Combine(::testing::Values(2, 3, 5, 9),
                       ::testing::Values(driver::SchedulerKind::kGreedyDynamic,
                                         driver::SchedulerKind::kStaticRoundRobin,
                                         driver::SchedulerKind::kSpeedWeighted)),
    [](const ::testing::TestParamInfo<std::tuple<int, driver::SchedulerKind>>&
           info) {
      std::string name = "np" + std::to_string(std::get<0>(info.param)) + "_" +
                         std::string(driver::to_string(std::get<1>(info.param)));
      for (char& c : name)
        if (c == '-') c = '_';
      return name;
    });

TEST(Drivers, OutputInvariantToFragmentCount) {
  const auto& w = protein_workload();
  const auto cluster = sim::ClusterConfig::ornl_altix();
  const int nprocs = 5;

  std::vector<std::uint8_t> reference;
  for (int f : {4, 8, 11}) {
    pario::ClusterStorage storage(cluster, nprocs);
    stage_queries(storage, w);
    run_mpi(cluster, nprocs, storage, w, f);
    pio::PioBlastOptions opts;
    opts.job.nfragments = f;
    run_pio(cluster, nprocs, storage, w, opts);
    const auto a = storage.shared().read_all("out.mpi.txt");
    const auto b = storage.shared().read_all("out.pio.txt");
    EXPECT_EQ(a, b) << "fragments=" << f;
    if (reference.empty()) {
      reference = a;
    } else {
      EXPECT_EQ(a, reference) << "fragments=" << f;
    }
  }
}

TEST(Drivers, IdenticalOutputOnBladeCluster) {
  const auto& w = protein_workload();
  const auto cluster = sim::ClusterConfig::ncsu_blade();
  const int nprocs = 5;
  pario::ClusterStorage storage(cluster, nprocs);
  stage_queries(storage, w);
  run_mpi(cluster, nprocs, storage, w, nprocs - 1);
  run_pio(cluster, nprocs, storage, w);
  EXPECT_EQ(storage.shared().read_all("out.mpi.txt"),
            storage.shared().read_all("out.pio.txt"));
}

TEST(Drivers, EarlyScoreBroadcastPreservesOutput) {
  const auto& w = protein_workload();
  const auto cluster = sim::ClusterConfig::ornl_altix();
  const int nprocs = 5;
  pario::ClusterStorage storage(cluster, nprocs);
  stage_queries(storage, w);

  const auto plain = run_pio(cluster, nprocs, storage, w);
  const auto baseline = storage.shared().read_all("out.pio.txt");

  pio::PioBlastOptions opts;
  opts.early_score_broadcast = true;
  const auto pruned = run_pio(cluster, nprocs, storage, w, opts);
  EXPECT_EQ(storage.shared().read_all("out.pio.txt"), baseline);
  // Pruning can only shrink what the master screens.
  EXPECT_LE(pruned.candidates_merged, plain.candidates_merged);
}

TEST(Drivers, DynamicSchedulingPreservesOutput) {
  const auto& w = protein_workload();
  const auto cluster = sim::ClusterConfig::ornl_altix();
  const int nprocs = 5;
  pario::ClusterStorage storage(cluster, nprocs);
  stage_queries(storage, w);

  run_pio(cluster, nprocs, storage, w);
  const auto baseline = storage.shared().read_all("out.pio.txt");

  pio::PioBlastOptions opts;
  opts.dynamic_scheduling = true;
  opts.job.nfragments = 11;  // finer granularity than workers
  const auto result = run_pio(cluster, nprocs, storage, w, opts);
  EXPECT_EQ(storage.shared().read_all("out.pio.txt"), baseline);
  EXPECT_GT(result.phases.search, 0.0);
}

TEST(Drivers, DynamicSchedulingRejectsCollectiveInput) {
  const auto& w = protein_workload();
  const auto cluster = sim::ClusterConfig::ornl_altix();
  pario::ClusterStorage storage(cluster, 3);
  stage_queries(storage, w);
  pio::PioBlastOptions opts;
  opts.dynamic_scheduling = true;
  opts.collective_input = true;
  EXPECT_THROW(run_pio(cluster, 3, storage, w, opts), util::ContractViolation);
}

TEST(Drivers, QueryBatchingPreservesOutput) {
  const auto& w = protein_workload();
  const auto cluster = sim::ClusterConfig::ornl_altix();
  const int nprocs = 5;
  pario::ClusterStorage storage(cluster, nprocs);
  stage_queries(storage, w);

  run_pio(cluster, nprocs, storage, w);
  const auto baseline = storage.shared().read_all("out.pio.txt");

  for (std::uint32_t batch : {1u, 3u, 7u}) {
    pio::PioBlastOptions opts;
    opts.query_batch = batch;
    run_pio(cluster, nprocs, storage, w, opts);
    EXPECT_EQ(storage.shared().read_all("out.pio.txt"), baseline)
        << "batch=" << batch;
  }
}

TEST(Drivers, CollectiveInputPreservesOutput) {
  const auto& w = protein_workload();
  const auto cluster = sim::ClusterConfig::ornl_altix();
  const int nprocs = 5;
  pario::ClusterStorage storage(cluster, nprocs);
  stage_queries(storage, w);

  run_pio(cluster, nprocs, storage, w);
  const auto baseline = storage.shared().read_all("out.pio.txt");

  pio::PioBlastOptions opts;
  opts.collective_input = true;
  run_pio(cluster, nprocs, storage, w, opts);
  EXPECT_EQ(storage.shared().read_all("out.pio.txt"), baseline);
}

TEST(Drivers, TabularOutputIdenticalAcrossDrivers) {
  auto w = protein_workload();  // copy: we change the output format
  w.job.output_format = blast::OutputFormat::kTabular;
  const auto cluster = sim::ClusterConfig::ornl_altix();
  const int nprocs = 5;
  pario::ClusterStorage storage(cluster, nprocs);
  stage_queries(storage, w);
  run_mpi(cluster, nprocs, storage, w, nprocs - 1);
  run_pio(cluster, nprocs, storage, w);
  const auto a = storage.shared().read_all("out.mpi.txt");
  const auto b = storage.shared().read_all("out.pio.txt");
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a, b);
  // Tab-separated hit lines with 12 fields are present.
  const std::string text(a.begin(), a.end());
  const auto line_start = text.find("\nquery_");
  ASSERT_NE(line_start, std::string::npos);
  const auto line_end = text.find('\n', line_start + 1);
  const std::string line = text.substr(line_start + 1, line_end - line_start - 1);
  EXPECT_EQ(std::count(line.begin(), line.end(), '\t'), 11) << line;
  // Tabular reports are far smaller than pairwise ones.
  pario::ClusterStorage storage2(cluster, nprocs);
  stage_queries(storage2, protein_workload());
  run_pio(cluster, nprocs, storage2, protein_workload());
  EXPECT_LT(a.size(), storage2.shared().read_all("out.pio.txt").size() / 4);
}

TEST(Drivers, NucleotideModeIdenticalOutput) {
  Workload w;
  seqdb::GeneratorConfig gen;
  gen.type = seqdb::SeqType::kNucleotide;
  gen.target_residues = 400u << 10;
  gen.seed = 777;
  gen.family_fraction = 0.5;
  w.db = seqdb::generate_database(gen);
  w.queries = seqdb::sample_queries(w.db, 4u << 10, 5);
  w.query_fasta = seqdb::write_fasta(w.queries);
  w.job.db_base = "nt";
  w.job.db_title = "synthetic nt";
  w.job.query_path = "queries.fa";
  w.job.params = blast::SearchParams::blastn_defaults();
  w.job.params.hitlist_size = 30;

  const auto cluster = sim::ClusterConfig::ornl_altix();
  const int nprocs = 4;
  pario::ClusterStorage storage(cluster, nprocs);
  stage_queries(storage, w);
  run_mpi(cluster, nprocs, storage, w, nprocs - 1);
  run_pio(cluster, nprocs, storage, w);
  const auto a = storage.shared().read_all("out.mpi.txt");
  const auto b = storage.shared().read_all("out.pio.txt");
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a, b);
}

TEST(Drivers, PhaseStructureMatchesPaper) {
  const auto& w = protein_workload();
  const auto cluster = sim::ClusterConfig::ornl_altix();
  const int nprocs = 9;
  pario::ClusterStorage storage(cluster, nprocs);
  stage_queries(storage, w);

  const auto mpi = run_mpi(cluster, nprocs, storage, w, nprocs - 1);
  const auto pio = run_pio(cluster, nprocs, storage, w);

  // mpiBLAST has a copy stage; pioBLAST's parallel input stage is faster.
  EXPECT_GT(mpi.phases.copy_input, 0.0);
  EXPECT_GT(pio.phases.copy_input, 0.0);
  EXPECT_LT(pio.phases.copy_input, mpi.phases.copy_input);
  // Search times are comparable (same kernel); pioBLAST's can only be
  // lower because no I/O is embedded in its search phase.
  EXPECT_LE(pio.phases.search, mpi.phases.search * 1.01);
  // The serialized merge/output path dominates the parallel one.
  EXPECT_LT(pio.phases.output, mpi.phases.output);
  // And the overall run is faster.
  EXPECT_LT(pio.phases.total, mpi.phases.total);
}

TEST(Drivers, SearchTimeDropsWithMoreWorkers) {
  const auto& w = protein_workload();
  const auto cluster = sim::ClusterConfig::ornl_altix();
  double prev = 1e300;
  for (int nprocs : {3, 5, 9}) {
    pario::ClusterStorage storage(cluster, nprocs);
    stage_queries(storage, w);
    const auto pio = run_pio(cluster, nprocs, storage, w);
    EXPECT_LT(pio.phases.search, prev);
    prev = pio.phases.search;
  }
}

TEST(Drivers, DeterministicVirtualTimes) {
  const auto& w = protein_workload();
  const auto cluster = sim::ClusterConfig::ornl_altix();
  const int nprocs = 4;
  pario::ClusterStorage s1(cluster, nprocs), s2(cluster, nprocs);
  stage_queries(s1, w);
  stage_queries(s2, w);
  const auto a = run_pio(cluster, nprocs, s1, w);
  const auto b = run_pio(cluster, nprocs, s2, w);
  EXPECT_DOUBLE_EQ(a.phases.total, b.phases.total);
  EXPECT_DOUBLE_EQ(a.phases.search, b.phases.search);
  EXPECT_DOUBLE_EQ(a.phases.output, b.phases.output);
}

TEST(Drivers, RejectSingleProcess) {
  const auto& w = protein_workload();
  const auto cluster = sim::ClusterConfig::ornl_altix();
  pario::ClusterStorage storage(cluster, 1);
  stage_queries(storage, w);
  pio::PioBlastOptions opts;
  opts.job = w.job;
  EXPECT_THROW(pio::run_pioblast(cluster, 1, storage, opts),
               util::ContractViolation);
}

TEST(Drivers, DynamicSchedulingHelpsOnHeterogeneousNodes) {
  // §5: "ideal for scenarios where we have heterogeneous nodes". With two
  // half-speed workers, static round-robin assignment is bound by the
  // stragglers; greedy dynamic scheduling with finer fragments lets fast
  // workers absorb the slack.
  const auto& w = protein_workload();
  auto cluster = sim::ClusterConfig::ornl_altix();
  const int nprocs = 5;
  cluster.node_speed = {1.0, 0.5, 1.0, 0.5, 1.0};  // rank 0 = master

  pario::ClusterStorage s1(cluster, nprocs), s2(cluster, nprocs);
  stage_queries(s1, w);
  stage_queries(s2, w);

  pio::PioBlastOptions stat;
  stat.job.nfragments = 16;
  const auto static_run = run_pio(cluster, nprocs, s1, w, stat);

  pio::PioBlastOptions dyn;
  dyn.dynamic_scheduling = true;
  dyn.job.nfragments = 16;
  const auto dynamic_run = run_pio(cluster, nprocs, s2, w, dyn);

  EXPECT_EQ(s1.shared().read_all("out.pio.txt"),
            s2.shared().read_all("out.pio.txt"));
  EXPECT_LT(dynamic_run.phases.total, static_run.phases.total);
}

TEST(Drivers, SpeedWeightedStaticHelpsOnHeterogeneousNodes) {
  // The heterogeneity-aware static policy apportions fragments to node
  // speeds up front: a half-speed worker gets ~half the fragments. It must
  // beat blind round-robin on a heterogeneous cluster while producing the
  // identical report.
  const auto& w = protein_workload();
  auto cluster = sim::ClusterConfig::ornl_altix();
  const int nprocs = 5;
  cluster.node_speed = {1.0, 0.5, 1.0, 0.5, 1.0};  // rank 0 = master

  pario::ClusterStorage s1(cluster, nprocs), s2(cluster, nprocs);
  stage_queries(s1, w);
  stage_queries(s2, w);

  pio::PioBlastOptions rr;
  rr.scheduler = driver::SchedulerKind::kStaticRoundRobin;
  rr.job.nfragments = 16;
  const auto rr_run = run_pio(cluster, nprocs, s1, w, rr);

  pio::PioBlastOptions sw;
  sw.scheduler = driver::SchedulerKind::kSpeedWeighted;
  sw.job.nfragments = 16;
  const auto sw_run = run_pio(cluster, nprocs, s2, w, sw);

  EXPECT_EQ(s1.shared().read_all("out.pio.txt"),
            s2.shared().read_all("out.pio.txt"));
  EXPECT_LT(sw_run.phases.total, rr_run.phases.total);
}

TEST(Drivers, CollectiveInputSpeedWeightedPreservesOutput) {
  // Speed-weighted plans are uneven, so a worker can hold more ranges than
  // ceil(total/nworkers); the collective-input round count travels in the
  // RangeAssignment so no rank drops out of the collective early.
  const auto& w = protein_workload();
  auto cluster = sim::ClusterConfig::ornl_altix();
  const int nprocs = 5;
  cluster.node_speed = {1.0, 0.25, 1.0, 1.0, 1.0};

  pario::ClusterStorage s1(cluster, nprocs), s2(cluster, nprocs);
  stage_queries(s1, w);
  stage_queries(s2, w);

  pio::PioBlastOptions plain;
  plain.scheduler = driver::SchedulerKind::kSpeedWeighted;
  plain.job.nfragments = 13;
  run_pio(cluster, nprocs, s1, w, plain);

  pio::PioBlastOptions coll = plain;
  coll.collective_input = true;
  run_pio(cluster, nprocs, s2, w, coll);

  const auto a = s1.shared().read_all("out.pio.txt");
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a, s2.shared().read_all("out.pio.txt"));
}

TEST(Drivers, SlowNodesSlowTheJob) {
  const auto& w = protein_workload();
  auto slow_cluster = sim::ClusterConfig::ornl_altix();
  slow_cluster.node_speed.assign(4, 0.5);
  const auto fast = sim::ClusterConfig::ornl_altix();

  pario::ClusterStorage s1(fast, 4), s2(slow_cluster, 4);
  stage_queries(s1, w);
  stage_queries(s2, w);
  const auto a = run_pio(fast, 4, s1, w);
  const auto b = run_pio(slow_cluster, 4, s2, w);
  EXPECT_GT(b.phases.total, a.phases.total * 1.5);
  // Output bytes are unaffected by node speed.
  EXPECT_EQ(a.output_bytes, b.output_bytes);
}

TEST(Drivers, CandidateVolumeMatchesBetweenDrivers) {
  // Without pruning both drivers screen exactly the same candidate set.
  const auto& w = protein_workload();
  const auto cluster = sim::ClusterConfig::ornl_altix();
  const int nprocs = 5;
  pario::ClusterStorage storage(cluster, nprocs);
  stage_queries(storage, w);
  const auto mpi = run_mpi(cluster, nprocs, storage, w, nprocs - 1);
  const auto pio = run_pio(cluster, nprocs, storage, w);
  EXPECT_EQ(mpi.candidates_merged, pio.candidates_merged);
}

}  // namespace
}  // namespace pioblast
