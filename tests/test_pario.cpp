// Tests for the parallel I/O layer: virtual file system semantics, timed
// individual I/O, file views, and the two-phase collective read/write —
// including property-style sweeps over rank counts, aggregator counts, and
// exchange-buffer sizes — plus the pario v2 pieces: hint parsing, domain
// splitting, request merging, and data-sieving list reads.
#include <gtest/gtest.h>

#include <numeric>

#include "mpisim/runtime.h"
#include "pario/collective.h"
#include "pario/env.h"
#include "pario/file.h"
#include "pario/vfs.h"
#include "util/error.h"
#include "util/rng.h"

namespace pioblast::pario {
namespace {

sim::ClusterConfig altix() { return sim::ClusterConfig::ornl_altix(); }

std::vector<std::uint8_t> pattern(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<std::uint8_t> out(n);
  for (auto& b : out) b = static_cast<std::uint8_t>(rng());
  return out;
}

// ---------- VirtualFS -----------------------------------------------------

TEST(Vfs, CreateWriteReadRoundTrip) {
  VirtualFS fs;
  const auto data = pattern(1000, 1);
  fs.write_all("a/b.txt", data);
  EXPECT_TRUE(fs.exists("a/b.txt"));
  EXPECT_EQ(fs.size("a/b.txt"), 1000u);
  EXPECT_EQ(fs.read_all("a/b.txt"), data);
}

TEST(Vfs, PwriteExtendsWithZeroFill) {
  VirtualFS fs;
  const std::vector<std::uint8_t> chunk{9, 9, 9};
  fs.pwrite("f", 5, chunk);
  EXPECT_EQ(fs.size("f"), 8u);
  const auto all = fs.read_all("f");
  EXPECT_EQ(all[0], 0);
  EXPECT_EQ(all[4], 0);
  EXPECT_EQ(all[5], 9);
}

TEST(Vfs, PreadRange) {
  VirtualFS fs;
  fs.write_all("f", pattern(100, 2));
  const auto all = fs.read_all("f");
  const auto mid = fs.pread("f", 10, 20);
  EXPECT_TRUE(std::equal(mid.begin(), mid.end(), all.begin() + 10));
}

TEST(Vfs, PreadPastEofThrows) {
  VirtualFS fs;
  fs.write_all("f", pattern(10, 3));
  EXPECT_THROW(fs.pread("f", 5, 10), util::ContractViolation);
}

TEST(Vfs, PreadUptoShortReadAtEof) {
  VirtualFS fs;
  const auto data = pattern(10, 3);
  fs.write_all("f", data);
  const auto tail = fs.pread_upto("f", 6, 100);
  ASSERT_EQ(tail.size(), 4u);
  EXPECT_TRUE(std::equal(tail.begin(), tail.end(), data.begin() + 6));
  EXPECT_TRUE(fs.pread_upto("f", 10, 5).empty());
  EXPECT_TRUE(fs.pread_upto("f", 42, 5).empty());
  // Fully in-range requests behave exactly like pread.
  EXPECT_EQ(fs.pread_upto("f", 2, 5), fs.pread("f", 2, 5));
}

TEST(Vfs, MissingFileThrows) {
  VirtualFS fs;
  EXPECT_THROW(fs.size("nope"), util::ContractViolation);
  EXPECT_THROW(fs.read_all("nope"), util::ContractViolation);
}

TEST(Vfs, RemoveAndCreateTruncate) {
  VirtualFS fs;
  fs.write_all("f", pattern(10, 4));
  fs.remove("f");
  EXPECT_FALSE(fs.exists("f"));
  fs.write_all("g", pattern(10, 5));
  fs.create("g");
  EXPECT_EQ(fs.size("g"), 0u);
}

TEST(Vfs, ListAndTotalBytes) {
  VirtualFS fs;
  fs.write_all("b", pattern(10, 6));
  fs.write_all("a", pattern(5, 7));
  EXPECT_EQ(fs.list(), (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(fs.total_bytes(), 15u);
}

// ---------- ClusterStorage -------------------------------------------------

TEST(ClusterStorage, AltixFallsBackToSharedScratch) {
  ClusterStorage storage(altix(), 4);
  EXPECT_FALSE(storage.has_local_disks());
  EXPECT_EQ(&storage.local_for(2), &storage.shared());
}

TEST(ClusterStorage, BladeHasPrivateDisks) {
  ClusterStorage storage(sim::ClusterConfig::ncsu_blade(), 4);
  EXPECT_TRUE(storage.has_local_disks());
  EXPECT_NE(&storage.local_for(1), &storage.shared());
  EXPECT_NE(&storage.local_for(1), &storage.local_for(2));
  // Files on one node's disk are invisible to another's.
  storage.local_for(1).write_all("x", pattern(4, 8));
  EXPECT_FALSE(storage.local_for(2).exists("x"));
}

// ---------- timed individual I/O -------------------------------------------

TEST(TimedIo, ChargesClockAndMovesBytes) {
  VirtualFS fs(sim::StorageModel::xfs_parallel());
  const auto data = pattern(1 << 20, 9);
  fs.write_all("f", data);
  const auto report = mpisim::run(1, altix(), [&](mpisim::Process& p) {
    const auto read = timed_read_all(p, fs, "f", 1);
    EXPECT_EQ(read, data);
    EXPECT_GT(p.now(), 0.0);
  });
  EXPECT_GT(report.makespan(), 0.0);
}

TEST(TimedIo, CopyBetweenFileSystems) {
  VirtualFS src(sim::StorageModel::xfs_parallel());
  VirtualFS dst(sim::StorageModel::local_disk());
  const auto data = pattern(4096, 10);
  src.write_all("f", data);
  mpisim::run(1, altix(), [&](mpisim::Process& p) {
    timed_copy(p, src, "f", dst, "g", 1);
  });
  EXPECT_EQ(dst.read_all("g"), data);
}

// ---------- FileView --------------------------------------------------------

TEST(FileView, ExtentSumsRegions) {
  FileView v({{0, 10}, {20, 5}});
  EXPECT_EQ(v.extent(), 15u);
}

TEST(FileView, RejectsOverlapsAndDisorder) {
  EXPECT_THROW(FileView({{10, 10}, {5, 2}}), util::ContractViolation);
  EXPECT_THROW(FileView({{0, 10}, {5, 10}}), util::ContractViolation);
}

TEST(FileView, AppendEnforcesOrder) {
  FileView v;
  v.append({0, 10});
  v.append({10, 1});  // adjacent is legal
  EXPECT_THROW(v.append({5, 1}), util::ContractViolation);
}

// ---------- collective write -------------------------------------------------

/// Interleaved regions across ranks: rank r owns blocks r, r+P, r+2P, ...
/// of a file of `blocks` fixed-size blocks — the access pattern of
/// pioBLAST's alignment output.
void run_interleaved_collective_write(int nprocs, int blocks, int block_size,
                                      int aggregators,
                                      std::uint64_t buffer_size = 256 * 1024) {
  VirtualFS fs(sim::StorageModel::xfs_parallel());
  const auto expect =
      pattern(static_cast<std::size_t>(blocks) * block_size, 77);
  const auto report = mpisim::run(nprocs, altix(), [&](mpisim::Process& p) {
    FileView view;
    std::vector<std::uint8_t> mine;
    for (int b = p.rank(); b < blocks; b += p.size()) {
      const std::uint64_t off = static_cast<std::uint64_t>(b) * block_size;
      view.append({off, static_cast<std::uint64_t>(block_size)});
      mine.insert(mine.end(), expect.begin() + off,
                  expect.begin() + off + block_size);
    }
    CollectiveConfig cfg;
    cfg.aggregators = aggregators;
    cfg.buffer_size = buffer_size;
    collective_write(p, fs, "out", view, mine, cfg);
  });
  EXPECT_EQ(fs.read_all("out"), expect);
  EXPECT_GT(report.makespan(), 0.0);
}

struct CollectiveCase {
  int nprocs;
  int blocks;
  int block_size;
  int aggregators;
  std::uint64_t buffer_size = 256 * 1024;
};

class CollectiveWriteSweep : public ::testing::TestWithParam<CollectiveCase> {};

TEST_P(CollectiveWriteSweep, ReassemblesInterleavedRegions) {
  const auto c = GetParam();
  run_interleaved_collective_write(c.nprocs, c.blocks, c.block_size,
                                   c.aggregators, c.buffer_size);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, CollectiveWriteSweep,
    ::testing::Values(CollectiveCase{2, 8, 100, 1}, CollectiveCase{3, 10, 64, 2},
                      CollectiveCase{4, 16, 256, 4}, CollectiveCase{5, 7, 33, 3},
                      CollectiveCase{8, 64, 128, 4}, CollectiveCase{8, 64, 128, 8},
                      CollectiveCase{6, 5, 1, 4}, CollectiveCase{9, 100, 17, 2}));

// Small cb_buffer_size values force the two-phase exchange into many
// rounds (including buffer sizes that do not divide the domain span, and
// buffer_size=1 — one round per byte of the widest domain). 0 is the
// unbounded single-round legacy shape.
INSTANTIATE_TEST_SUITE_P(
    BufferRounds, CollectiveWriteSweep,
    ::testing::Values(CollectiveCase{4, 16, 256, 4, 1},
                      CollectiveCase{4, 16, 256, 4, 100},
                      CollectiveCase{4, 16, 256, 2, 300},
                      CollectiveCase{3, 10, 64, 2, 7},
                      CollectiveCase{8, 64, 128, 4, 1024},
                      CollectiveCase{5, 7, 33, 3, 0},
                      CollectiveCase{9, 100, 17, 2, 64}));

TEST(CollectiveWrite, EmptyViewsEverywhereIsANoOp) {
  VirtualFS fs(sim::StorageModel::xfs_parallel());
  mpisim::run(3, altix(), [&](mpisim::Process& p) {
    collective_write(p, fs, "out", FileView{}, {}, {});
  });
  // The file may or may not exist, but it must hold no data.
  if (fs.exists("out")) {
    EXPECT_EQ(fs.size("out"), 0u);
  }
}

TEST(CollectiveWrite, SingleRankHoldsAllData) {
  VirtualFS fs(sim::StorageModel::xfs_parallel());
  const auto data = pattern(1000, 12);
  mpisim::run(4, altix(), [&](mpisim::Process& p) {
    if (p.rank() == 2) {
      collective_write(p, fs, "out", FileView({{0, 1000}}), data, {});
    } else {
      collective_write(p, fs, "out", FileView{}, {}, {});
    }
  });
  EXPECT_EQ(fs.read_all("out"), data);
}

TEST(CollectiveWrite, MismatchedBufferThrows) {
  VirtualFS fs;
  EXPECT_THROW(
      mpisim::run(2, altix(),
                  [&](mpisim::Process& p) {
                    collective_write(p, fs, "out", FileView({{0, 10}}),
                                     std::vector<std::uint8_t>(5), {});
                  }),
      util::ContractViolation);
}

TEST(CollectiveWrite, WritesAtLargeOffsets) {
  VirtualFS fs(sim::StorageModel::xfs_parallel());
  const std::uint64_t base = 1ull << 22;
  const auto data = pattern(100, 13);
  mpisim::run(2, altix(), [&](mpisim::Process& p) {
    if (p.rank() == 0) {
      collective_write(p, fs, "out", FileView({{base, 100}}), data, {});
    } else {
      collective_write(p, fs, "out", FileView{}, {}, {});
    }
  });
  EXPECT_EQ(fs.size("out"), base + 100);
  EXPECT_EQ(fs.pread("out", base, 100), data);
}

// ---------- collective read ---------------------------------------------------

class CollectiveReadSweep : public ::testing::TestWithParam<CollectiveCase> {};

TEST_P(CollectiveReadSweep, EachRankReadsItsInterleavedBlocks) {
  const auto c = GetParam();
  VirtualFS fs(sim::StorageModel::xfs_parallel());
  const auto file =
      pattern(static_cast<std::size_t>(c.blocks) * c.block_size, 99);
  fs.write_all("db", file);
  mpisim::run(c.nprocs, altix(), [&](mpisim::Process& p) {
    FileView view;
    std::vector<std::uint8_t> expect;
    for (int b = p.rank(); b < c.blocks; b += p.size()) {
      const std::uint64_t off = static_cast<std::uint64_t>(b) * c.block_size;
      view.append({off, static_cast<std::uint64_t>(c.block_size)});
      expect.insert(expect.end(), file.begin() + off,
                    file.begin() + off + c.block_size);
    }
    CollectiveConfig cfg;
    cfg.aggregators = c.aggregators;
    cfg.buffer_size = c.buffer_size;
    const auto got = collective_read(p, fs, "db", view, cfg);
    EXPECT_EQ(got, expect);
  });
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, CollectiveReadSweep,
    ::testing::Values(CollectiveCase{2, 8, 100, 1}, CollectiveCase{3, 9, 50, 2},
                      CollectiveCase{4, 32, 64, 4}, CollectiveCase{7, 13, 21, 3},
                      CollectiveCase{8, 40, 512, 8}));

INSTANTIATE_TEST_SUITE_P(
    BufferRounds, CollectiveReadSweep,
    ::testing::Values(CollectiveCase{4, 32, 64, 4, 1},
                      CollectiveCase{4, 32, 64, 4, 100},
                      CollectiveCase{3, 9, 50, 2, 7},
                      CollectiveCase{8, 40, 512, 8, 1000},
                      CollectiveCase{7, 13, 21, 3, 0}));

TEST(CollectiveRead, ContiguousRangePerRank) {
  // The pioBLAST input pattern: each rank reads one contiguous slice.
  VirtualFS fs(sim::StorageModel::xfs_parallel());
  const auto file = pattern(10000, 21);
  fs.write_all("db", file);
  mpisim::run(5, altix(), [&](mpisim::Process& p) {
    const std::uint64_t chunk = 2000;
    const std::uint64_t off = static_cast<std::uint64_t>(p.rank()) * chunk;
    const auto got = collective_read(p, fs, "db", FileView({{off, chunk}}), {});
    EXPECT_TRUE(std::equal(got.begin(), got.end(), file.begin() + off));
  });
}

// ---------- domain split + effective aggregators (v2 regressions) ------------

TEST(DomainSplit, SpreadsRemainderAcrossLeadingDomains) {
  // Non-power-of-two span: 101 bytes over 4 domains -> 26,25,25,25, never
  // a division-rounded runt last domain.
  const auto b = domain_split(0, 101, 4);
  ASSERT_EQ(b.size(), 5u);
  EXPECT_EQ(b.front(), 0u);
  EXPECT_EQ(b.back(), 101u);
  std::vector<std::uint64_t> widths;
  for (std::size_t d = 0; d + 1 < b.size(); ++d) widths.push_back(b[d + 1] - b[d]);
  EXPECT_EQ(widths, (std::vector<std::uint64_t>{26, 25, 25, 25}));
}

TEST(DomainSplit, NonPow2SpansCoverExactlyAndDifferByAtMostOne) {
  for (const std::uint64_t span : {1ull, 7ull, 97ull, 1000ull, 12345ull}) {
    for (const int n : {1, 2, 3, 4, 7, 16}) {
      const std::uint64_t lo = 1000;
      const auto b = domain_split(lo, lo + span, n);
      ASSERT_EQ(b.size(), static_cast<std::size_t>(n) + 1);
      EXPECT_EQ(b.front(), lo);
      EXPECT_EQ(b.back(), lo + span);
      std::uint64_t wmin = ~0ull, wmax = 0;
      for (int d = 0; d < n; ++d) {
        ASSERT_LE(b[static_cast<std::size_t>(d)],
                  b[static_cast<std::size_t>(d) + 1]);
        const std::uint64_t w = b[static_cast<std::size_t>(d) + 1] -
                                b[static_cast<std::size_t>(d)];
        wmin = std::min(wmin, w);
        wmax = std::max(wmax, w);
      }
      EXPECT_LE(wmax - wmin, 1u) << "span=" << span << " n=" << n;
    }
  }
}

TEST(DomainSplit, SpanSmallerThanDomainCountLeavesTrailingDomainsEmpty) {
  // The old division-based split degenerated here; now the first `span`
  // domains get one byte each and the rest are zero-width.
  const auto b = domain_split(10, 13, 8);
  ASSERT_EQ(b.size(), 9u);
  EXPECT_EQ(b, (std::vector<std::uint64_t>{10, 11, 12, 13, 13, 13, 13, 13, 13}));
}

TEST(DomainSplit, RejectsBadArguments) {
  EXPECT_THROW(domain_split(0, 10, 0), util::ContractViolation);
  EXPECT_THROW(domain_split(10, 5, 2), util::ContractViolation);
}

TEST(EffectiveAggregators, ClampsToWorldSizeAndRejectsNonPositive) {
  CollectiveConfig cfg;
  cfg.aggregators = 8;
  EXPECT_EQ(effective_aggregators(cfg, 4), 4);
  EXPECT_EQ(effective_aggregators(cfg, 16), 8);
  cfg.aggregators = 0;
  EXPECT_THROW(effective_aggregators(cfg, 4), util::ContractViolation);
  cfg.aggregators = -3;
  EXPECT_THROW(effective_aggregators(cfg, 4), util::ContractViolation);
}

// A collective whose byte span is smaller than the aggregator count used
// to produce degenerate domains; it must still round-trip.
TEST(CollectiveWrite, SpanSmallerThanAggregatorCount) {
  run_interleaved_collective_write(/*nprocs=*/6, /*blocks=*/3, /*block_size=*/1,
                                   /*aggregators=*/5);
}

// ---------- Hints parsing ----------------------------------------------------

TEST(Hints, ParsesFullSpecWithSizeSuffixes) {
  const auto h = Hints::parse(
      "cb_nodes=8,cb_buffer_size=1m,ds_read=enable,ds_buffer_size=4k,"
      "ds_density=0.5,list=off");
  EXPECT_EQ(h.cb_nodes, 8);
  EXPECT_EQ(h.cb_buffer_size, 1u << 20);
  EXPECT_EQ(h.ds_read, SieveMode::kEnable);
  EXPECT_EQ(h.ds_buffer_size, 4u << 10);
  EXPECT_DOUBLE_EQ(h.ds_density, 0.5);
  EXPECT_FALSE(h.list_io);
}

TEST(Hints, EmptySpecKeepsDefaults) {
  const auto h = Hints::parse("");
  EXPECT_EQ(h.cb_nodes, 4);
  EXPECT_EQ(h.cb_buffer_size, 256u << 10);
  EXPECT_EQ(h.ds_read, SieveMode::kAuto);
  EXPECT_TRUE(h.list_io);
}

TEST(Hints, DescribeRoundTrips) {
  Hints h;
  h.cb_nodes = 3;
  h.cb_buffer_size = 123;  // no exact suffix
  h.ds_read = SieveMode::kDisable;
  h.ds_buffer_size = 2u << 30;
  h.ds_density = 0.25;
  const auto back = Hints::parse(h.describe());
  EXPECT_EQ(back.cb_nodes, h.cb_nodes);
  EXPECT_EQ(back.cb_buffer_size, h.cb_buffer_size);
  EXPECT_EQ(back.ds_read, h.ds_read);
  EXPECT_EQ(back.ds_buffer_size, h.ds_buffer_size);
  EXPECT_DOUBLE_EQ(back.ds_density, h.ds_density);
  EXPECT_EQ(back.list_io, h.list_io);
}

TEST(Hints, RejectsMalformedSpecs) {
  EXPECT_THROW(Hints::parse("wat=1"), util::RuntimeError);
  EXPECT_THROW(Hints::parse("cb_nodes"), util::RuntimeError);
  EXPECT_THROW(Hints::parse("cb_nodes=zero"), util::RuntimeError);
  EXPECT_THROW(Hints::parse("cb_nodes=0"), util::RuntimeError);
  EXPECT_THROW(Hints::parse("cb_buffer_size=1q"), util::RuntimeError);
  EXPECT_THROW(Hints::parse("ds_density=1.5"), util::RuntimeError);
  EXPECT_THROW(Hints::parse("ds_read=sometimes"), util::RuntimeError);
  EXPECT_THROW(Hints::parse("list=maybe"), util::RuntimeError);
}

// ---------- merge_regions ----------------------------------------------------

TEST(MergeRegions, CoalescesAdjacentAndOverlappingUnsortedInput) {
  const std::vector<Region> in{{30, 10}, {0, 10}, {10, 5}, {35, 10}, {100, 1}};
  const auto runs = merge_regions(in);
  ASSERT_EQ(runs.size(), 3u);
  EXPECT_EQ(runs[0].offset, 0u);
  EXPECT_EQ(runs[0].length, 15u);  // {0,10} + adjacent {10,5}
  EXPECT_EQ(runs[1].offset, 30u);
  EXPECT_EQ(runs[1].length, 15u);  // {30,10} + overlapping {35,10}
  EXPECT_EQ(runs[2].offset, 100u);
}

TEST(MergeRegions, DropsZeroLengthAndHandlesContainment) {
  const std::vector<Region> in{{10, 100}, {20, 5}, {50, 0}};
  const auto runs = merge_regions(in);
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_EQ(runs[0].offset, 10u);
  EXPECT_EQ(runs[0].length, 100u);
  EXPECT_TRUE(merge_regions(std::vector<Region>{}).empty());
}

// ---------- list_read --------------------------------------------------------

/// Runs list_read single-rank against `file` staged on an NFS-model FS and
/// returns (buffers, stats, virtual seconds).
struct ListReadRun {
  std::vector<std::vector<std::uint8_t>> bufs;
  ListIoStats stats;
  double seconds = 0;
};

ListReadRun run_list_read(const std::vector<std::uint8_t>& file,
                          const std::vector<Region>& regions,
                          const Hints& hints) {
  VirtualFS fs(sim::StorageModel::nfs_server());
  fs.write_all("f", file);
  ListReadRun out;
  const auto report =
      mpisim::run(1, sim::ClusterConfig::ncsu_blade(), [&](mpisim::Process& p) {
        out.bufs = list_read(p, fs, "f", regions, hints, 1, &out.stats);
      });
  out.seconds = report.makespan();
  return out;
}

std::vector<std::uint8_t> slice(const std::vector<std::uint8_t>& file,
                                const Region& r) {
  return {file.begin() + static_cast<std::ptrdiff_t>(r.offset),
          file.begin() + static_cast<std::ptrdiff_t>(r.offset + r.length)};
}

TEST(ListRead, NaiveAndV2ReturnIdenticalBytes) {
  const auto file = pattern(4096, 51);
  // Unsorted, overlapping, hole-y request list.
  const std::vector<Region> regions{{512, 64}, {0, 128}, {600, 64},
                                    {540, 80}, {3000, 100}, {128, 64}};
  Hints naive;
  naive.list_io = false;
  Hints v2;
  v2.ds_read = SieveMode::kEnable;
  const auto a = run_list_read(file, regions, naive);
  const auto b = run_list_read(file, regions, v2);
  ASSERT_EQ(a.bufs.size(), regions.size());
  EXPECT_EQ(a.bufs, b.bufs);
  for (std::size_t i = 0; i < regions.size(); ++i)
    EXPECT_EQ(a.bufs[i], slice(file, regions[i])) << "region " << i;
  EXPECT_EQ(a.stats.reads_issued, regions.size());
  EXPECT_LT(b.stats.reads_issued, a.stats.reads_issued);
  // Fewer NFS round trips must show up as less virtual I/O time.
  EXPECT_LT(b.seconds, a.seconds);
}

TEST(ListRead, MergesAdjacentRequestsWithoutSieving) {
  const auto file = pattern(1024, 52);
  const std::vector<Region> regions{{0, 100}, {100, 100}, {200, 56}};
  Hints h;
  h.ds_read = SieveMode::kDisable;
  const auto r = run_list_read(file, regions, h);
  EXPECT_EQ(r.stats.reads_issued, 1u);
  EXPECT_EQ(r.stats.merged_runs, 2u);
  EXPECT_EQ(r.stats.sieved_reads, 0u);
  EXPECT_EQ(r.stats.bytes_read, 256u);
  EXPECT_EQ(r.stats.bytes_wanted, 256u);
}

TEST(ListRead, SievesAcrossSmallHoles) {
  const auto file = pattern(4096, 53);
  // 4 x 256-byte blocks with 256-byte holes: density 0.5 >= default 0.3.
  std::vector<Region> regions;
  for (int b = 0; b < 4; ++b)
    regions.push_back({static_cast<std::uint64_t>(b) * 512, 256});
  Hints h;  // auto sieving
  const auto r = run_list_read(file, regions, h);
  EXPECT_EQ(r.stats.reads_issued, 1u);
  EXPECT_EQ(r.stats.sieved_reads, 1u);
  EXPECT_EQ(r.stats.bytes_wanted, 1024u);
  EXPECT_EQ(r.stats.bytes_read, 1792u);  // covering span bridges 3 holes
  for (std::size_t i = 0; i < regions.size(); ++i)
    EXPECT_EQ(r.bufs[i], slice(file, regions[i]));
}

TEST(ListRead, AutoModeFallsBackOnSparseRequests) {
  const auto file = pattern(1 << 16, 54);
  // 64-byte blocks 4 KiB apart: density ~1.6%, far below ds_density.
  std::vector<Region> regions;
  for (int b = 0; b < 8; ++b)
    regions.push_back({static_cast<std::uint64_t>(b) * 4096, 64});
  Hints h;  // auto
  const auto r = run_list_read(file, regions, h);
  EXPECT_EQ(r.stats.reads_issued, 8u);  // no bridging
  EXPECT_EQ(r.stats.sieved_reads, 0u);
  EXPECT_EQ(r.stats.bytes_read, r.stats.bytes_wanted);
  // Forced sieving bridges anyway (the window still fits the buffer).
  Hints force;
  force.ds_read = SieveMode::kEnable;
  const auto f = run_list_read(file, regions, force);
  EXPECT_EQ(f.stats.reads_issued, 1u);
  EXPECT_EQ(f.bufs, r.bufs);
}

TEST(ListRead, SieveBufferCapSplitsWindows) {
  const auto file = pattern(8192, 55);
  std::vector<Region> regions;
  for (int b = 0; b < 8; ++b)
    regions.push_back({static_cast<std::uint64_t>(b) * 1024, 512});
  Hints h;
  h.ds_read = SieveMode::kEnable;
  h.ds_buffer_size = 2048;  // at most two strided blocks per window
  const auto r = run_list_read(file, regions, h);
  EXPECT_EQ(r.stats.reads_issued, 4u);
  for (std::size_t i = 0; i < regions.size(); ++i)
    EXPECT_EQ(r.bufs[i], slice(file, regions[i]));
}

TEST(ListRead, OverReachingRequestGetsShortBufferAndHonestCharge) {
  const auto file = pattern(1000, 56);
  Hints h;
  const std::vector<Region> over{{900, 500}};
  const auto r = run_list_read(file, over, h);
  ASSERT_EQ(r.bufs.size(), 1u);
  EXPECT_EQ(r.bufs[0], slice(file, {900, 100}));
  EXPECT_EQ(r.stats.bytes_read, 100u);  // billed for transferred bytes only
  // The virtual-clock charge matches a 100-byte read, not a 500-byte one.
  const auto exact = run_list_read(file, {{900, 100}}, h);
  EXPECT_DOUBLE_EQ(r.seconds, exact.seconds);
}

TEST(ListRead, ZeroLengthRegionsYieldEmptyBuffers) {
  const auto file = pattern(100, 57);
  Hints h;
  const auto r = run_list_read(file, {{10, 0}, {20, 10}, {50, 0}}, h);
  ASSERT_EQ(r.bufs.size(), 3u);
  EXPECT_TRUE(r.bufs[0].empty());
  EXPECT_EQ(r.bufs[1], slice(file, {20, 10}));
  EXPECT_TRUE(r.bufs[2].empty());
  EXPECT_EQ(r.stats.requests, 1u);
}

TEST(TimedIo, ReadUptoChargesActualBytes) {
  VirtualFS fs(sim::StorageModel::nfs_server());
  fs.write_all("f", pattern(1000, 58));
  double t_over = 0, t_exact = 0;
  mpisim::run(1, sim::ClusterConfig::ncsu_blade(), [&](mpisim::Process& p) {
    const double t0 = p.now();
    const auto got = timed_read_upto(p, fs, "f", 900, 500, 1);
    EXPECT_EQ(got.size(), 100u);
    t_over = p.now() - t0;
    const double t1 = p.now();
    (void)timed_read_upto(p, fs, "f", 900, 100, 1);
    t_exact = p.now() - t1;
  });
  EXPECT_DOUBLE_EQ(t_over, t_exact);
}

TEST(Collective, WriteThenReadRoundTripsThroughSharedFile) {
  VirtualFS fs(sim::StorageModel::nfs_server());
  const auto data = pattern(3000, 31);
  mpisim::run(3, sim::ClusterConfig::ncsu_blade(), [&](mpisim::Process& p) {
    const std::uint64_t chunk = 1000;
    const std::uint64_t off = static_cast<std::uint64_t>(p.rank()) * chunk;
    std::vector<std::uint8_t> mine(data.begin() + off,
                                   data.begin() + off + chunk);
    collective_write(p, fs, "f", FileView({{off, chunk}}), mine, {});
    const auto back = collective_read(p, fs, "f", FileView({{off, chunk}}), {});
    EXPECT_EQ(back, mine);
  });
  EXPECT_EQ(fs.read_all("f"), data);
}

}  // namespace
}  // namespace pioblast::pario
