// Tests for the parallel I/O layer: virtual file system semantics, timed
// individual I/O, file views, and the two-phase collective read/write —
// including property-style sweeps over rank counts and aggregator counts.
#include <gtest/gtest.h>

#include <numeric>

#include "mpisim/runtime.h"
#include "pario/collective.h"
#include "pario/env.h"
#include "pario/file.h"
#include "pario/vfs.h"
#include "util/error.h"
#include "util/rng.h"

namespace pioblast::pario {
namespace {

sim::ClusterConfig altix() { return sim::ClusterConfig::ornl_altix(); }

std::vector<std::uint8_t> pattern(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<std::uint8_t> out(n);
  for (auto& b : out) b = static_cast<std::uint8_t>(rng());
  return out;
}

// ---------- VirtualFS -----------------------------------------------------

TEST(Vfs, CreateWriteReadRoundTrip) {
  VirtualFS fs;
  const auto data = pattern(1000, 1);
  fs.write_all("a/b.txt", data);
  EXPECT_TRUE(fs.exists("a/b.txt"));
  EXPECT_EQ(fs.size("a/b.txt"), 1000u);
  EXPECT_EQ(fs.read_all("a/b.txt"), data);
}

TEST(Vfs, PwriteExtendsWithZeroFill) {
  VirtualFS fs;
  const std::vector<std::uint8_t> chunk{9, 9, 9};
  fs.pwrite("f", 5, chunk);
  EXPECT_EQ(fs.size("f"), 8u);
  const auto all = fs.read_all("f");
  EXPECT_EQ(all[0], 0);
  EXPECT_EQ(all[4], 0);
  EXPECT_EQ(all[5], 9);
}

TEST(Vfs, PreadRange) {
  VirtualFS fs;
  fs.write_all("f", pattern(100, 2));
  const auto all = fs.read_all("f");
  const auto mid = fs.pread("f", 10, 20);
  EXPECT_TRUE(std::equal(mid.begin(), mid.end(), all.begin() + 10));
}

TEST(Vfs, PreadPastEofThrows) {
  VirtualFS fs;
  fs.write_all("f", pattern(10, 3));
  EXPECT_THROW(fs.pread("f", 5, 10), util::ContractViolation);
}

TEST(Vfs, MissingFileThrows) {
  VirtualFS fs;
  EXPECT_THROW(fs.size("nope"), util::ContractViolation);
  EXPECT_THROW(fs.read_all("nope"), util::ContractViolation);
}

TEST(Vfs, RemoveAndCreateTruncate) {
  VirtualFS fs;
  fs.write_all("f", pattern(10, 4));
  fs.remove("f");
  EXPECT_FALSE(fs.exists("f"));
  fs.write_all("g", pattern(10, 5));
  fs.create("g");
  EXPECT_EQ(fs.size("g"), 0u);
}

TEST(Vfs, ListAndTotalBytes) {
  VirtualFS fs;
  fs.write_all("b", pattern(10, 6));
  fs.write_all("a", pattern(5, 7));
  EXPECT_EQ(fs.list(), (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(fs.total_bytes(), 15u);
}

// ---------- ClusterStorage -------------------------------------------------

TEST(ClusterStorage, AltixFallsBackToSharedScratch) {
  ClusterStorage storage(altix(), 4);
  EXPECT_FALSE(storage.has_local_disks());
  EXPECT_EQ(&storage.local_for(2), &storage.shared());
}

TEST(ClusterStorage, BladeHasPrivateDisks) {
  ClusterStorage storage(sim::ClusterConfig::ncsu_blade(), 4);
  EXPECT_TRUE(storage.has_local_disks());
  EXPECT_NE(&storage.local_for(1), &storage.shared());
  EXPECT_NE(&storage.local_for(1), &storage.local_for(2));
  // Files on one node's disk are invisible to another's.
  storage.local_for(1).write_all("x", pattern(4, 8));
  EXPECT_FALSE(storage.local_for(2).exists("x"));
}

// ---------- timed individual I/O -------------------------------------------

TEST(TimedIo, ChargesClockAndMovesBytes) {
  VirtualFS fs(sim::StorageModel::xfs_parallel());
  const auto data = pattern(1 << 20, 9);
  fs.write_all("f", data);
  const auto report = mpisim::run(1, altix(), [&](mpisim::Process& p) {
    const auto read = timed_read_all(p, fs, "f", 1);
    EXPECT_EQ(read, data);
    EXPECT_GT(p.now(), 0.0);
  });
  EXPECT_GT(report.makespan(), 0.0);
}

TEST(TimedIo, CopyBetweenFileSystems) {
  VirtualFS src(sim::StorageModel::xfs_parallel());
  VirtualFS dst(sim::StorageModel::local_disk());
  const auto data = pattern(4096, 10);
  src.write_all("f", data);
  mpisim::run(1, altix(), [&](mpisim::Process& p) {
    timed_copy(p, src, "f", dst, "g", 1);
  });
  EXPECT_EQ(dst.read_all("g"), data);
}

// ---------- FileView --------------------------------------------------------

TEST(FileView, ExtentSumsRegions) {
  FileView v({{0, 10}, {20, 5}});
  EXPECT_EQ(v.extent(), 15u);
}

TEST(FileView, RejectsOverlapsAndDisorder) {
  EXPECT_THROW(FileView({{10, 10}, {5, 2}}), util::ContractViolation);
  EXPECT_THROW(FileView({{0, 10}, {5, 10}}), util::ContractViolation);
}

TEST(FileView, AppendEnforcesOrder) {
  FileView v;
  v.append({0, 10});
  v.append({10, 1});  // adjacent is legal
  EXPECT_THROW(v.append({5, 1}), util::ContractViolation);
}

// ---------- collective write -------------------------------------------------

/// Interleaved regions across ranks: rank r owns blocks r, r+P, r+2P, ...
/// of a file of `blocks` fixed-size blocks — the access pattern of
/// pioBLAST's alignment output.
void run_interleaved_collective_write(int nprocs, int blocks, int block_size,
                                      int aggregators) {
  VirtualFS fs(sim::StorageModel::xfs_parallel());
  const auto expect =
      pattern(static_cast<std::size_t>(blocks) * block_size, 77);
  const auto report = mpisim::run(nprocs, altix(), [&](mpisim::Process& p) {
    FileView view;
    std::vector<std::uint8_t> mine;
    for (int b = p.rank(); b < blocks; b += p.size()) {
      const std::uint64_t off = static_cast<std::uint64_t>(b) * block_size;
      view.append({off, static_cast<std::uint64_t>(block_size)});
      mine.insert(mine.end(), expect.begin() + off,
                  expect.begin() + off + block_size);
    }
    CollectiveConfig cfg;
    cfg.aggregators = aggregators;
    collective_write(p, fs, "out", view, mine, cfg);
  });
  EXPECT_EQ(fs.read_all("out"), expect);
  EXPECT_GT(report.makespan(), 0.0);
}

struct CollectiveCase {
  int nprocs;
  int blocks;
  int block_size;
  int aggregators;
};

class CollectiveWriteSweep : public ::testing::TestWithParam<CollectiveCase> {};

TEST_P(CollectiveWriteSweep, ReassemblesInterleavedRegions) {
  const auto c = GetParam();
  run_interleaved_collective_write(c.nprocs, c.blocks, c.block_size,
                                   c.aggregators);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, CollectiveWriteSweep,
    ::testing::Values(CollectiveCase{2, 8, 100, 1}, CollectiveCase{3, 10, 64, 2},
                      CollectiveCase{4, 16, 256, 4}, CollectiveCase{5, 7, 33, 3},
                      CollectiveCase{8, 64, 128, 4}, CollectiveCase{8, 64, 128, 8},
                      CollectiveCase{6, 5, 1, 4}, CollectiveCase{9, 100, 17, 2}));

TEST(CollectiveWrite, EmptyViewsEverywhereIsANoOp) {
  VirtualFS fs(sim::StorageModel::xfs_parallel());
  mpisim::run(3, altix(), [&](mpisim::Process& p) {
    collective_write(p, fs, "out", FileView{}, {}, {});
  });
  // The file may or may not exist, but it must hold no data.
  if (fs.exists("out")) {
    EXPECT_EQ(fs.size("out"), 0u);
  }
}

TEST(CollectiveWrite, SingleRankHoldsAllData) {
  VirtualFS fs(sim::StorageModel::xfs_parallel());
  const auto data = pattern(1000, 12);
  mpisim::run(4, altix(), [&](mpisim::Process& p) {
    if (p.rank() == 2) {
      collective_write(p, fs, "out", FileView({{0, 1000}}), data, {});
    } else {
      collective_write(p, fs, "out", FileView{}, {}, {});
    }
  });
  EXPECT_EQ(fs.read_all("out"), data);
}

TEST(CollectiveWrite, MismatchedBufferThrows) {
  VirtualFS fs;
  EXPECT_THROW(
      mpisim::run(2, altix(),
                  [&](mpisim::Process& p) {
                    collective_write(p, fs, "out", FileView({{0, 10}}),
                                     std::vector<std::uint8_t>(5), {});
                  }),
      util::ContractViolation);
}

TEST(CollectiveWrite, WritesAtLargeOffsets) {
  VirtualFS fs(sim::StorageModel::xfs_parallel());
  const std::uint64_t base = 1ull << 22;
  const auto data = pattern(100, 13);
  mpisim::run(2, altix(), [&](mpisim::Process& p) {
    if (p.rank() == 0) {
      collective_write(p, fs, "out", FileView({{base, 100}}), data, {});
    } else {
      collective_write(p, fs, "out", FileView{}, {}, {});
    }
  });
  EXPECT_EQ(fs.size("out"), base + 100);
  EXPECT_EQ(fs.pread("out", base, 100), data);
}

// ---------- collective read ---------------------------------------------------

class CollectiveReadSweep : public ::testing::TestWithParam<CollectiveCase> {};

TEST_P(CollectiveReadSweep, EachRankReadsItsInterleavedBlocks) {
  const auto c = GetParam();
  VirtualFS fs(sim::StorageModel::xfs_parallel());
  const auto file =
      pattern(static_cast<std::size_t>(c.blocks) * c.block_size, 99);
  fs.write_all("db", file);
  mpisim::run(c.nprocs, altix(), [&](mpisim::Process& p) {
    FileView view;
    std::vector<std::uint8_t> expect;
    for (int b = p.rank(); b < c.blocks; b += p.size()) {
      const std::uint64_t off = static_cast<std::uint64_t>(b) * c.block_size;
      view.append({off, static_cast<std::uint64_t>(c.block_size)});
      expect.insert(expect.end(), file.begin() + off,
                    file.begin() + off + c.block_size);
    }
    CollectiveConfig cfg;
    cfg.aggregators = c.aggregators;
    const auto got = collective_read(p, fs, "db", view, cfg);
    EXPECT_EQ(got, expect);
  });
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, CollectiveReadSweep,
    ::testing::Values(CollectiveCase{2, 8, 100, 1}, CollectiveCase{3, 9, 50, 2},
                      CollectiveCase{4, 32, 64, 4}, CollectiveCase{7, 13, 21, 3},
                      CollectiveCase{8, 40, 512, 8}));

TEST(CollectiveRead, ContiguousRangePerRank) {
  // The pioBLAST input pattern: each rank reads one contiguous slice.
  VirtualFS fs(sim::StorageModel::xfs_parallel());
  const auto file = pattern(10000, 21);
  fs.write_all("db", file);
  mpisim::run(5, altix(), [&](mpisim::Process& p) {
    const std::uint64_t chunk = 2000;
    const std::uint64_t off = static_cast<std::uint64_t>(p.rank()) * chunk;
    const auto got = collective_read(p, fs, "db", FileView({{off, chunk}}), {});
    EXPECT_TRUE(std::equal(got.begin(), got.end(), file.begin() + off));
  });
}

TEST(Collective, WriteThenReadRoundTripsThroughSharedFile) {
  VirtualFS fs(sim::StorageModel::nfs_server());
  const auto data = pattern(3000, 31);
  mpisim::run(3, sim::ClusterConfig::ncsu_blade(), [&](mpisim::Process& p) {
    const std::uint64_t chunk = 1000;
    const std::uint64_t off = static_cast<std::uint64_t>(p.rank()) * chunk;
    std::vector<std::uint8_t> mine(data.begin() + off,
                                   data.begin() + off + chunk);
    collective_write(p, fs, "f", FileView({{off, chunk}}), mine, {});
    const auto back = collective_read(p, fs, "f", FileView({{off, chunk}}), {});
    EXPECT_EQ(back, mine);
  });
  EXPECT_EQ(fs.read_all("f"), data);
}

}  // namespace
}  // namespace pioblast::pario
