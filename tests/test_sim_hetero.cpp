// Tests for heterogeneous-node support and the compute/IO time split.
#include <gtest/gtest.h>

#include "mpisim/runtime.h"
#include "pario/file.h"
#include "pario/vfs.h"
#include "sim/cluster.h"

namespace pioblast {
namespace {

TEST(Hetero, SpeedOfDefaultsToNominal) {
  sim::ClusterConfig c = sim::ClusterConfig::ornl_altix();
  EXPECT_DOUBLE_EQ(c.speed_of(0), 1.0);
  EXPECT_DOUBLE_EQ(c.speed_of(100), 1.0);
  c.node_speed = {1.0, 0.5};
  EXPECT_DOUBLE_EQ(c.speed_of(1), 0.5);
  EXPECT_DOUBLE_EQ(c.speed_of(2), 1.0);  // beyond the vector: nominal
  EXPECT_DOUBLE_EQ(c.speed_of(-1), 1.0);
}

TEST(Hetero, ZeroSpeedTreatedAsNominal) {
  sim::ClusterConfig c = sim::ClusterConfig::ornl_altix();
  c.node_speed = {0.0, -2.0};
  EXPECT_DOUBLE_EQ(c.speed_of(0), 1.0);
  EXPECT_DOUBLE_EQ(c.speed_of(1), 1.0);
}

TEST(Hetero, ComputeScalesWithNodeSpeed) {
  sim::ClusterConfig c = sim::ClusterConfig::ornl_altix();
  c.node_speed = {1.0, 0.5, 2.0};
  const auto report = mpisim::run(3, c, [](mpisim::Process& p) {
    p.compute(10.0);
  });
  EXPECT_DOUBLE_EQ(report.ranks[0].final_clock, 10.0);
  EXPECT_DOUBLE_EQ(report.ranks[1].final_clock, 20.0);  // half speed
  EXPECT_DOUBLE_EQ(report.ranks[2].final_clock, 5.0);   // double speed
}

TEST(Hetero, IoWaitIgnoresNodeSpeed) {
  sim::ClusterConfig c = sim::ClusterConfig::ornl_altix();
  c.node_speed = {0.5, 0.5};
  pario::VirtualFS fs(c.shared_storage);
  fs.write_all("f", std::vector<std::uint8_t>(1 << 20));
  double fast_time = 0;
  {
    const auto nominal = sim::ClusterConfig::ornl_altix();
    const auto report = mpisim::run(1, nominal, [&](mpisim::Process& p) {
      (void)pario::timed_read_all(p, fs, "f", 1);
    });
    fast_time = report.makespan();
  }
  const auto report = mpisim::run(2, c, [&](mpisim::Process& p) {
    (void)pario::timed_read_all(p, fs, "f", 1);
  });
  // I/O duration is a device property, not a CPU property.
  EXPECT_DOUBLE_EQ(report.ranks[0].final_clock, fast_time);
  EXPECT_DOUBLE_EQ(report.ranks[1].final_clock, fast_time);
}

TEST(Hetero, MessagingUnaffectedByNodeSpeed) {
  sim::ClusterConfig slow = sim::ClusterConfig::ornl_altix();
  slow.node_speed = {0.25, 0.25};
  const auto fast = sim::ClusterConfig::ornl_altix();
  auto job = [](mpisim::Process& p) {
    if (p.rank() == 0) {
      p.send(1, 1, std::vector<std::uint8_t>(1000));
    } else {
      p.recv(0, 1);
    }
  };
  const auto a = mpisim::run(2, fast, job);
  const auto b = mpisim::run(2, slow, job);
  EXPECT_DOUBLE_EQ(a.ranks[1].final_clock, b.ranks[1].final_clock);
}

}  // namespace
}  // namespace pioblast
