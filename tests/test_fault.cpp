// Fault-injection and fault-tolerance tests (ctest label: fault).
//
// Covers the FaultPlan grammar and validation, the mpisim-level injections
// (crash-at-event, stragglers, message drops) and their verifier
// integration, the fault-tolerant serve_work loop (crash before the first
// request, crash with tasks in flight, the stray-duplicate-request
// regression), scheduler requeue/validation edges, the degraded pario
// collective-write path (including a crash mid-shuffle under multi-round
// cb_buffer_size exchanges), and the end-to-end fault matrix on both
// drivers: a crashed or straggling worker — under naive or v2 pario hints
// — must never change the merged report.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <set>
#include <string>
#include <vector>

#include "blast/job.h"
#include "driver/metrics.h"
#include "driver/scheduler.h"
#include "driver/work_queue.h"
#include "mpiblast/mpiblast.h"
#include "mpisim/fault.h"
#include "mpisim/runtime.h"
#include "mpisim/trace.h"
#include "pario/collective.h"
#include "pario/env.h"
#include "pioblast/pioblast.h"
#include "seqdb/generator.h"
#include "seqdb/partition.h"
#include "util/error.h"

namespace pioblast {
namespace {

sim::ClusterConfig altix() { return sim::ClusterConfig::ornl_altix(); }

// ---------- FaultPlan grammar and validation -------------------------------

TEST(FaultPlan, ParsesInjectionsAndPlanWideKeys) {
  const auto plan = mpisim::FaultPlan::parse(
      "rank=2,crash_at=9;rank=1,slow=4;rank=3,drop_send=2,drop_send=5;"
      "detect=0.01;arm");
  EXPECT_TRUE(plan.active());
  EXPECT_TRUE(plan.has_crash());
  EXPECT_TRUE(plan.arm_detector);
  EXPECT_DOUBLE_EQ(plan.detection_delay, 0.01);
  ASSERT_NE(plan.find(2), nullptr);
  EXPECT_EQ(plan.find(2)->crash_at, 9u);
  ASSERT_NE(plan.find(1), nullptr);
  EXPECT_DOUBLE_EQ(plan.find(1)->slow, 4.0);
  ASSERT_NE(plan.find(3), nullptr);
  EXPECT_EQ(plan.find(3)->drop_sends,
            (std::vector<std::uint64_t>{2, 5}));
  EXPECT_EQ(plan.find(7), nullptr);
}

TEST(FaultPlan, EmptySpecIsInert) {
  const auto plan = mpisim::FaultPlan::parse("");
  EXPECT_FALSE(plan.active());
  EXPECT_FALSE(plan.has_crash());
  EXPECT_EQ(plan.describe(), "no faults");
}

TEST(FaultPlan, MalformedSpecsRejected) {
  EXPECT_THROW(mpisim::FaultPlan::parse("crash_at=3"), util::RuntimeError);
  EXPECT_THROW(mpisim::FaultPlan::parse("rank=1,bogus=2"), util::RuntimeError);
  EXPECT_THROW(mpisim::FaultPlan::parse("rank=1,crash_at=zero"),
               util::RuntimeError);
  EXPECT_THROW(mpisim::FaultPlan::parse("rank=,slow=2"), util::RuntimeError);
}

TEST(FaultPlan, ValidateRejectsBadPlans) {
  {
    mpisim::FaultPlan plan;  // crash on the master/detector rank
    plan.at(0).crash_at = 1;
    EXPECT_THROW(plan.validate(4), util::ContractViolation);
  }
  {
    mpisim::FaultPlan plan;  // out-of-range rank
    plan.at(9).slow = 2.0;
    EXPECT_THROW(plan.validate(4), util::ContractViolation);
  }
  {
    mpisim::FaultPlan plan;  // non-positive slowdown
    plan.at(1).slow = 0.0;
    EXPECT_THROW(plan.validate(4), util::ContractViolation);
  }
  {
    mpisim::FaultPlan plan;  // valid plan passes
    plan.at(1).crash_at = 3;
    plan.at(2).slow = 2.5;
    EXPECT_NO_THROW(plan.validate(4));
  }
}

TEST(FaultPlan, RandomCrashIsDeterministicAndInRange) {
  const auto a = mpisim::FaultPlan::random_crash(7, 8, 100);
  const auto b = mpisim::FaultPlan::random_crash(7, 8, 100);
  ASSERT_EQ(a.injections.size(), 1u);
  EXPECT_EQ(a.injections[0].rank, b.injections[0].rank);
  EXPECT_EQ(a.injections[0].crash_at, b.injections[0].crash_at);
  EXPECT_GE(a.injections[0].rank, 1);
  EXPECT_LT(a.injections[0].rank, 8);
  EXPECT_GE(a.injections[0].crash_at, 1u);
  EXPECT_LE(a.injections[0].crash_at, 100u);
  EXPECT_NO_THROW(a.validate(8));
}

// ---------- mpisim-level injections ----------------------------------------

TEST(MpisimFault, CrashedRankRetiresAndSurvivorsFinish) {
  mpisim::RunOptions opts;
  opts.faults.at(2).crash_at = 1;  // dies at its gather send
  std::vector<std::vector<std::uint8_t>> gathered;
  const auto report = mpisim::run(
      3, altix(),
      [&](mpisim::Process& p) {
        const std::uint8_t byte = static_cast<std::uint8_t>(0x40 + p.rank());
        auto slots = p.gather(std::span(&byte, 1), 0);
        if (p.is_root()) gathered = std::move(slots);
        p.barrier();
      },
      opts);
  ASSERT_EQ(report.ranks.size(), 3u);
  EXPECT_FALSE(report.ranks[0].crashed);
  EXPECT_FALSE(report.ranks[1].crashed);
  EXPECT_TRUE(report.ranks[2].crashed);
  ASSERT_EQ(gathered.size(), 3u);
  EXPECT_EQ(gathered[1], (std::vector<std::uint8_t>{0x41}));
  EXPECT_TRUE(gathered[2].empty());  // the lost rank's slot stays empty
}

TEST(MpisimFault, RecvFromCrashedRankThrowsPeerLost) {
  mpisim::RunOptions opts;
  opts.faults.at(2).crash_at = 1;
  std::vector<int> lost_peer(3, -1);
  mpisim::run(
      3, altix(),
      [&](mpisim::Process& p) {
        if (p.rank() == 2) {
          p.send(1, 5, {});  // never happens: comm event 1 is the crash
        } else if (p.rank() == 1) {
          try {
            p.recv(2, 5);
            ADD_FAILURE() << "recv from crashed rank returned a message";
          } catch (const mpisim::PeerLostError& e) {
            lost_peer[1] = e.peer();
          }
        }
      },
      opts);
  EXPECT_EQ(lost_peer[1], 2);
}

TEST(MpisimFault, SlowdownMultipliesComputeTime) {
  mpisim::RunOptions opts;
  opts.faults.at(1).slow = 3.0;
  const auto report = mpisim::run(
      2, altix(), [](mpisim::Process& p) { p.compute(0.01); }, opts);
  EXPECT_GT(report.ranks[0].final_clock, 0.0);
  EXPECT_NEAR(report.ranks[1].final_clock, 3.0 * report.ranks[0].final_clock,
              1e-12);
}

TEST(MpisimFault, DroppedSendIsATrueDeadlockPositive) {
  // The drop vanishes the message after charging the sender, so the
  // receiver waits forever — exactly the failure the verifier exists to
  // report. A dropped message must NOT be exonerated like a crash.
  mpisim::RunOptions opts;
  opts.faults.at(1).drop_sends = {1};
  EXPECT_THROW(mpisim::run(
                   2, altix(),
                   [](mpisim::Process& p) {
                     if (p.rank() == 1) {
                       p.send(0, 5, {});
                     } else {
                       p.recv(1, 5);
                     }
                   },
                   opts),
               mpisim::VerifyError);
}

TEST(MpisimFault, CrashAndRecoveryEventsAreTraced) {
  mpisim::Tracer tracer;
  mpisim::RunOptions opts;
  opts.tracer = &tracer;
  opts.faults.at(1).crash_at = 1;
  mpisim::run(
      3, altix(), [](mpisim::Process& p) { p.barrier(); }, opts);
  bool saw_fault = false;
  for (const auto& e : tracer.sorted()) {
    if (e.kind == mpisim::TraceKind::kFault &&
        e.detail.find("crashed") != std::string::npos) {
      saw_fault = true;
    }
  }
  EXPECT_TRUE(saw_fault);
}

// ---------- collectives with crashed participants --------------------------

TEST(CollectiveFault, CrashedInteriorRankDoesNotStrandCollectives) {
  // Non-power-of-two world with a mid-tree rank dead: under a fault plan
  // the collectives fall back to flat survivor-aware topologies, so no
  // survivor ever waits on a non-root peer. Barrier, bcast, and the
  // allreduce must all complete, with the victim simply absent from the
  // reduction.
  const int nranks = 6, victim = 3;
  mpisim::RunOptions opts;
  opts.faults.at(victim).crash_at = 1;  // dies at its first collective send
  std::vector<sim::Time> reduced(static_cast<std::size_t>(nranks), -1);
  std::vector<std::size_t> bcast_len(static_cast<std::size_t>(nranks), 0);
  const auto report = mpisim::run(
      nranks, altix(),
      [&](mpisim::Process& p) {
        try {
          p.barrier();
        } catch (const mpisim::PeerLostError&) {
          ADD_FAILURE() << "barrier raised PeerLostError on rank "
                        << p.rank();
        }
        std::vector<std::uint8_t> blob;
        if (p.is_root()) blob.assign(16, 0xC3);
        p.bcast(blob, 0);
        bcast_len[static_cast<std::size_t>(p.rank())] = blob.size();
        reduced[static_cast<std::size_t>(p.rank())] =
            p.allreduce_max(static_cast<sim::Time>(10 + p.rank()));
      },
      opts);
  EXPECT_TRUE(report.ranks[victim].crashed);
  for (int r = 0; r < nranks; ++r) {
    if (r == victim) continue;
    EXPECT_EQ(bcast_len[static_cast<std::size_t>(r)], 16u) << "rank " << r;
    // Max over survivors: the victim's 13 never contributes, 15 wins.
    EXPECT_EQ(reduced[static_cast<std::size_t>(r)],
              static_cast<sim::Time>(10 + nranks - 1))
        << "rank " << r;
  }
}

TEST(CollectiveFault, CrashedReductionWinnerDropsOutOfMax) {
  // The victim would have held the maximum; survivors must agree on the
  // runner-up, not hang waiting for the dead contributor.
  const int nranks = 5, victim = 4;
  mpisim::RunOptions opts;
  opts.faults.at(victim).crash_at = 1;
  std::vector<sim::Time> reduced(static_cast<std::size_t>(nranks), -1);
  mpisim::run(
      nranks, altix(),
      [&](mpisim::Process& p) {
        reduced[static_cast<std::size_t>(p.rank())] =
            p.allreduce_max(static_cast<sim::Time>(p.rank()));
      },
      opts);
  for (int r = 0; r < nranks - 1; ++r) {
    EXPECT_EQ(reduced[static_cast<std::size_t>(r)],
              static_cast<sim::Time>(victim - 1))
        << "rank " << r;
  }
}

TEST(CollectiveFault, CrashedBcastRootSurfacesPeerLostNotDeadlock) {
  // A dead root is unrecoverable for a bcast — there is nothing to
  // broadcast — but the failure mode must be a clean PeerLostError at
  // every receiver, never a hang. (FaultPlan forbids killing rank 0, so
  // the root here is rank 1.)
  const int nranks = 4, root = 1;
  mpisim::RunOptions opts;
  opts.faults.at(root).crash_at = 1;  // dies at its first bcast send
  std::vector<int> lost_peer(static_cast<std::size_t>(nranks), -1);
  const auto report = mpisim::run(
      nranks, altix(),
      [&](mpisim::Process& p) {
        std::vector<std::uint8_t> blob;
        if (p.rank() == root) blob.assign(8, 0x7E);
        try {
          p.bcast(blob, root);
          if (p.rank() != root)
            ADD_FAILURE() << "rank " << p.rank()
                          << " got a bcast from a dead root";
        } catch (const mpisim::PeerLostError& e) {
          lost_peer[static_cast<std::size_t>(p.rank())] = e.peer();
        }
      },
      opts);
  EXPECT_TRUE(report.ranks[root].crashed);
  for (int r = 0; r < nranks; ++r) {
    if (r == root) continue;
    EXPECT_EQ(lost_peer[static_cast<std::size_t>(r)], root) << "rank " << r;
  }
}

TEST(CollectiveFault, CrashedGatherRootLeavesSendersUnblocked) {
  // Sends to a sealed mailbox vanish, so contributors to a dead gather
  // root must sail through (their send is non-blocking) and the job must
  // terminate cleanly.
  const int nranks = 5, root = 2;
  mpisim::RunOptions opts;
  opts.faults.at(root).crash_at = 1;
  const auto report = mpisim::run(
      nranks, altix(),
      [&](mpisim::Process& p) {
        const std::uint8_t byte = static_cast<std::uint8_t>(p.rank());
        p.gather(std::span(&byte, 1), root);
      },
      opts);
  EXPECT_TRUE(report.ranks[root].crashed);
  for (int r = 0; r < nranks; ++r) {
    if (r == root) continue;
    EXPECT_FALSE(report.ranks[static_cast<std::size_t>(r)].crashed);
  }
}

// ---------- fault-tolerant serve_work --------------------------------------

struct ServeWorkRun {
  std::vector<std::vector<std::uint32_t>> served;  // per rank
  driver::RunMetrics metrics;  // not movable: filled via out-param
  mpisim::RunReport report;
};

void run_serve_work(ServeWorkRun& out, int nranks, std::uint32_t ntasks,
                    const mpisim::FaultPlan& faults,
                    driver::SchedulerKind kind =
                        driver::SchedulerKind::kGreedyDynamic) {
  out.served.resize(static_cast<std::size_t>(nranks));
  mpisim::RunOptions opts;
  opts.faults = faults;
  out.report = mpisim::run(
      nranks, altix(),
      [&](mpisim::Process& p) {
        if (p.is_root()) {
          auto sched = driver::make_scheduler(kind);
          driver::WorkerTopology topo;
          topo.nworkers = nranks - 1;
          topo.speed.assign(static_cast<std::size_t>(nranks - 1), 1.0);
          driver::serve_work(p, *sched, ntasks, topo, {}, &out.metrics);
          p.drain(mpisim::kTagFaultNotice);
        } else {
          while (auto task = driver::request_work<std::uint32_t>(
                     p, [](std::uint32_t id, mpisim::Decoder&) { return id; })) {
            out.served[static_cast<std::size_t>(p.rank())].push_back(*task);
          }
        }
      },
      opts);
}

/// Tasks served to workers that survived the run.
std::set<std::uint32_t> survivor_tasks(const ServeWorkRun& r) {
  std::set<std::uint32_t> tasks;
  for (std::size_t rank = 1; rank < r.served.size(); ++rank) {
    if (r.report.ranks[rank].crashed) continue;
    tasks.insert(r.served[rank].begin(), r.served[rank].end());
  }
  return tasks;
}

TEST(ServeWork, CompletesWhenWorkerCrashesBeforeFirstRequest) {
  mpisim::FaultPlan faults;
  faults.at(2).crash_at = 1;  // dies sending its first work request
  ServeWorkRun r;
  run_serve_work(r, 4, 6, faults);
  EXPECT_TRUE(r.report.ranks[2].crashed);
  EXPECT_EQ(survivor_tasks(r), (std::set<std::uint32_t>{0, 1, 2, 3, 4, 5}));
  EXPECT_EQ(r.metrics.get(driver::kMetricTasksAssigned), 6u);
  // Nothing was ever assigned to the victim, so nothing is reassigned.
  EXPECT_EQ(r.metrics.get(driver::kMetricTasksReassigned), 0u);
}

TEST(ServeWork, ReassignsTasksOfWorkerLostWithWorkInFlight) {
  mpisim::FaultPlan faults;
  // Comm events: send req (1), recv assignment (2), send req (3) — the
  // victim dies holding one completed-but-unreported task.
  faults.at(2).crash_at = 3;
  ServeWorkRun r;
  run_serve_work(r, 4, 6, faults);
  EXPECT_TRUE(r.report.ranks[2].crashed);
  // Every task reaches a survivor, including the victim's requeued one.
  EXPECT_EQ(survivor_tasks(r), (std::set<std::uint32_t>{0, 1, 2, 3, 4, 5}));
  EXPECT_EQ(r.metrics.get(driver::kMetricTasksReassigned), 1u);
  // Recovery time is recorded (it may be 0 in virtual time: a parked
  // worker can absorb the requeued task in the same event step as the
  // death notice).
  EXPECT_EQ(r.metrics.snapshot().count(std::string(driver::kMetricRecoveryUsec)),
            1u);
  // 6 fresh assignments + 1 reassignment.
  EXPECT_EQ(r.metrics.get(driver::kMetricTasksAssigned), 7u);
}

TEST(ServeWork, StragglerStillDrainsTheQueue) {
  mpisim::FaultPlan faults;
  faults.at(1).slow = 8.0;
  ServeWorkRun r;
  run_serve_work(r, 4, 9, faults);
  std::set<std::uint32_t> all;
  for (const auto& v : r.served) all.insert(v.begin(), v.end());
  EXPECT_EQ(all.size(), 9u);
  EXPECT_EQ(r.metrics.get(driver::kMetricTasksReassigned), 0u);
}

TEST(ServeWork, StrayDuplicateRequestDoesNotDoubleRetire) {
  // Regression: a retired worker's stray kTagWorkReq used to decrement
  // `active` a second time, ending the serve loop while another worker
  // still waited for its reply — observed as a deadlock. The master must
  // answer the stray with another retirement and keep serving.
  const int nranks = 3;
  std::vector<int> retirements(static_cast<std::size_t>(nranks), 0);
  mpisim::run(nranks, altix(), [&](mpisim::Process& p) {
    if (p.is_root()) {
      auto sched =
          driver::make_scheduler(driver::SchedulerKind::kGreedyDynamic);
      driver::WorkerTopology topo;
      topo.nworkers = nranks - 1;
      topo.speed.assign(static_cast<std::size_t>(nranks - 1), 1.0);
      driver::serve_work(p, *sched, 0, topo, {}, nullptr);
    } else if (p.rank() == 1) {
      // Retire, then confusedly ask again. Both replies must be
      // retirements (has_task = 0).
      for (int round = 0; round < 2; ++round) {
        p.send(0, driver::kTagWorkReq, {});
        mpisim::Message reply = p.recv(0, driver::kTagAssign);
        mpisim::Decoder dec(reply.payload);
        ASSERT_EQ(dec.get<std::uint8_t>(), 0u);
        ++retirements[1];
      }
      p.send(2, 5, {});  // release rank 2 only after the stray exchange
    } else {
      // Request only after rank 1's stray was answered, so with the
      // historical double decrement the serve loop has already exited
      // and this request deadlocks.
      p.recv(1, 5);
      p.send(0, driver::kTagWorkReq, {});
      mpisim::Message reply = p.recv(0, driver::kTagAssign);
      mpisim::Decoder dec(reply.payload);
      ASSERT_EQ(dec.get<std::uint8_t>(), 0u);
      ++retirements[2];
    }
  });
  EXPECT_EQ(retirements[1], 2);
  EXPECT_EQ(retirements[2], 1);
}

// ---------- scheduler requeue + validation edges ---------------------------

driver::WorkerTopology topo_with_speeds(std::vector<double> speeds) {
  driver::WorkerTopology topo;
  topo.nworkers = static_cast<int>(speeds.size());
  topo.speed = std::move(speeds);
  return topo;
}

TEST(SchedulerRequeue, GreedyNeverReoffersToExcludedWorker) {
  auto sched = driver::make_scheduler(driver::SchedulerKind::kGreedyDynamic);
  sched->reset(2, topo_with_speeds({1.0, 1.0}));
  EXPECT_EQ(sched->next(0), 0);
  EXPECT_EQ(sched->next(1), 1);
  sched->requeue(0, /*excluded_worker=*/0);
  EXPECT_EQ(sched->next(0), driver::Scheduler::kNoTask);
  EXPECT_EQ(sched->next(1), 0);  // the survivor picks it up
  EXPECT_EQ(sched->next(1), driver::Scheduler::kNoTask);
}

TEST(SchedulerRequeue, StaticPoliciesServeRequeuedTasksAfterOwnPlan) {
  for (auto kind : {driver::SchedulerKind::kStaticRoundRobin,
                    driver::SchedulerKind::kSpeedWeighted}) {
    auto sched = driver::make_scheduler(kind);
    sched->reset(4, topo_with_speeds({1.0, 1.0}));
    // Hand out both workers' own plans.
    std::vector<std::int64_t> w0_tasks;
    for (std::int64_t t = sched->next(0); t != driver::Scheduler::kNoTask;
         t = sched->next(0)) {
      w0_tasks.push_back(t);
    }
    while (sched->next(1) != driver::Scheduler::kNoTask) {
    }
    ASSERT_FALSE(w0_tasks.empty());
    // Worker 0 dies holding its first task; worker 1 must absorb it
    // while worker 0's ghost never gets it back.
    const auto lost = static_cast<std::uint32_t>(w0_tasks.front());
    sched->requeue(lost, /*excluded_worker=*/0);
    EXPECT_EQ(sched->next(0), driver::Scheduler::kNoTask);
    EXPECT_EQ(sched->next(1), static_cast<std::int64_t>(lost));
    EXPECT_EQ(sched->next(1), driver::Scheduler::kNoTask);
  }
}

TEST(SchedulerValidation, SpeedWeightedRejectsInvalidSpeeds) {
  auto sched = driver::make_scheduler(driver::SchedulerKind::kSpeedWeighted);
  EXPECT_THROW(sched->reset(4, topo_with_speeds({1.0, 0.0})),
               util::ContractViolation);
  EXPECT_THROW(sched->reset(4, topo_with_speeds({-2.0, 1.0})),
               util::ContractViolation);
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(sched->reset(4, topo_with_speeds({nan, 1.0})),
               util::ContractViolation);
  // Regression: the ntasks=0 early-out used to skip validation entirely.
  EXPECT_THROW(sched->reset(0, topo_with_speeds({1.0, 0.0})),
               util::ContractViolation);
}

TEST(SchedulerValidation, ZeroTasksRetiresEveryWorkerImmediately) {
  for (auto kind : {driver::SchedulerKind::kGreedyDynamic,
                    driver::SchedulerKind::kStaticRoundRobin,
                    driver::SchedulerKind::kSpeedWeighted}) {
    auto sched = driver::make_scheduler(kind);
    sched->reset(0, topo_with_speeds({1.0, 2.0, 0.5}));
    for (int w = 0; w < 3; ++w) {
      EXPECT_EQ(sched->next(w), driver::Scheduler::kNoTask)
          << to_string(kind) << " worker " << w;
    }
  }
}

// ---------- degraded pario collective write --------------------------------

TEST(ParioFault, CollectiveWriteFallsBackWhenParticipantIsLost) {
  // Rank 2 owns the middle block and dies before the collective; the
  // survivors must detect the loss and land their blocks via independent
  // writes instead of hanging in the two-phase exchange.
  const int nprocs = 4;
  const std::uint64_t block = 128;
  pario::VirtualFS fs(sim::StorageModel::xfs_parallel());
  mpisim::RunOptions opts;
  opts.faults.at(2).crash_at = 1;  // first barrier send
  mpisim::Tracer tracer;
  opts.tracer = &tracer;
  mpisim::run(
      nprocs, altix(),
      [&](mpisim::Process& p) {
        p.barrier();  // the victim dies here, before the collective
        const std::uint64_t off = static_cast<std::uint64_t>(p.rank()) * block;
        std::vector<std::uint8_t> mine(
            block, static_cast<std::uint8_t>(0xA0 + p.rank()));
        pario::collective_write(p, fs, "out",
                                pario::FileView({{off, block}}), mine, {});
      },
      opts);
  // Survivors' regions all landed; the dead rank's region reads back as a
  // zero-filled hole.
  for (int r = 0; r < nprocs; ++r) {
    const auto got = fs.pread("out", static_cast<std::uint64_t>(r) * block,
                              block);
    const std::uint8_t want =
        r == 2 ? 0x00 : static_cast<std::uint8_t>(0xA0 + r);
    EXPECT_EQ(got, std::vector<std::uint8_t>(block, want)) << "rank " << r;
  }
  bool saw_degrade = false;
  for (const auto& e : tracer.sorted()) {
    if (e.kind == mpisim::TraceKind::kRecovery &&
        e.detail.find("independent writes") != std::string::npos) {
      saw_degrade = true;
    }
  }
  EXPECT_TRUE(saw_degrade);
}

TEST(ParioFault, MultiRoundShuffleCrashStillLandsSurvivorData) {
  // Interleaved blocks (so every rank's data crosses every aggregator
  // domain) with a small cb_buffer_size (so each domain exchanges in
  // several rounds). The victim dies in the middle of its shuffle sends —
  // AFTER the liveness sync declared everyone alive — so the survivors
  // cannot take the degraded independent-write path and must instead
  // absorb the loss recv-by-recv inside the round loop.
  // The victim is NOT an aggregator (aggregators are ranks 0..2): a dead
  // aggregator necessarily loses its whole file domain, but a dead
  // contributor must cost only its own unsent chunks.
  const int nprocs = 4, victim = 3;
  const std::uint64_t block = 32;
  const int nblocks = 16;  // 4 per rank, striped round-robin
  pario::CollectiveConfig cfg;
  cfg.aggregators = 3;
  cfg.buffer_size = 48;  // domain span ~171 -> 4 exchange rounds per domain

  const auto run = [&](pario::VirtualFS& fs, const mpisim::RunOptions& opts) {
    mpisim::run(
        nprocs, altix(),
        [&](mpisim::Process& p) {
          std::vector<pario::Region> mine;
          for (int b = p.rank(); b < nblocks; b += nprocs)
            mine.push_back({static_cast<std::uint64_t>(b) * block, block});
          std::vector<std::uint8_t> data(
              mine.size() * block, static_cast<std::uint8_t>(0xA0 + p.rank()));
          pario::collective_write(p, fs, "out", pario::FileView(mine), data,
                                  cfg);
        },
        opts);
  };

  // Probe: armed detector (same fault-tolerant comm structure, no crash)
  // to locate the victim's second shuffle send.
  mpisim::RunOptions popts;
  popts.faults.arm_detector = true;
  mpisim::Tracer probe;
  popts.tracer = &probe;
  pario::VirtualFS probe_fs(sim::StorageModel::xfs_parallel());
  run(probe_fs, popts);
  for (int b = 0; b < nblocks; ++b) {
    const auto got =
        probe_fs.pread("out", static_cast<std::uint64_t>(b) * block, block);
    EXPECT_EQ(got, std::vector<std::uint8_t>(
                       block, static_cast<std::uint8_t>(0xA0 + b % nprocs)))
        << "probe block " << b;
  }
  // collective_internal_tags()[0] is the shuffle tag.
  const std::string shuffle_tag =
      "tag=" + std::to_string(pario::collective_internal_tags()[0]);
  std::uint64_t events = 0, crash_at = 0;
  int shuffle_sends = 0;
  for (const auto& e : probe.for_rank(victim)) {
    if (e.kind != mpisim::TraceKind::kSend &&
        e.kind != mpisim::TraceKind::kRecv) {
      continue;
    }
    ++events;
    if (e.kind == mpisim::TraceKind::kSend &&
        e.detail.find(shuffle_tag) != std::string::npos) {
      ++shuffle_sends;
      if (shuffle_sends == 2 && crash_at == 0) crash_at = events;
    }
  }
  ASSERT_GT(crash_at, 0u);
  // 4 rounds to each of the 3 aggregators — the exchange really is
  // multi-round, not one batch per aggregator.
  EXPECT_EQ(shuffle_sends, 12);

  mpisim::RunOptions copts;
  copts.faults.at(victim).crash_at = crash_at;
  mpisim::Tracer tracer;
  copts.tracer = &tracer;
  pario::VirtualFS fs(sim::StorageModel::xfs_parallel());
  run(fs, copts);

  // Survivors' blocks all landed byte-exact; each of the victim's blocks
  // either landed (its round was sent before the crash) or stayed a
  // zero-filled hole — never garbage.
  for (int b = 0; b < nblocks; ++b) {
    const int owner = b % nprocs;
    if (owner != victim) {
      const auto got =
          fs.pread("out", static_cast<std::uint64_t>(b) * block, block);
      EXPECT_EQ(got, std::vector<std::uint8_t>(
                         block, static_cast<std::uint8_t>(0xA0 + owner)))
          << "survivor block " << b;
    } else {
      // An unsent trailing chunk may leave the file short — read what's
      // there rather than asserting the block exists at all.
      const auto got =
          fs.pread_upto("out", static_cast<std::uint64_t>(b) * block, block);
      for (std::size_t i = 0; i < got.size(); ++i) {
        EXPECT_TRUE(got[i] == 0x00 ||
                    got[i] == static_cast<std::uint8_t>(0xA0 + victim))
            << "victim block " << b << " byte " << i;
      }
    }
  }
  // The liveness snapshot predates the crash, so the collective must NOT
  // have degraded to independent writes — the round loop absorbed it.
  for (const auto& e : tracer.sorted()) {
    if (e.kind == mpisim::TraceKind::kRecovery) {
      EXPECT_EQ(e.detail.find("independent writes"), std::string::npos)
          << e.detail;
    }
  }
}

// ---------- end-to-end driver fault matrix ---------------------------------

struct Tiny {
  std::vector<seqdb::FastaRecord> db;
  std::string queries;
};

const Tiny& tiny() {
  static const Tiny* t = [] {
    auto* out = new Tiny();
    seqdb::GeneratorConfig gen;
    gen.target_residues = 60u << 10;
    gen.seed = 9;
    out->db = seqdb::generate_database(gen);
    out->queries = seqdb::write_fasta(seqdb::sample_queries(out->db, 1024, 3));
    return out;
  }();
  return *t;
}

void stage_queries(pario::ClusterStorage& storage) {
  const std::string& fasta = tiny().queries;
  storage.shared().write_all(
      "queries.fa",
      std::span(reinterpret_cast<const std::uint8_t*>(fasta.data()),
                fasta.size()));
}

blast::JobConfig tiny_job() {
  blast::JobConfig job;
  job.db_base = "db";
  job.db_title = "tiny";
  job.query_path = "queries.fa";
  job.params = blast::SearchParams::blastp_defaults();
  return job;
}

blast::DriverResult run_mpi(pario::ClusterStorage& storage, int nprocs,
                            int nfragments, const mpisim::FaultPlan& faults,
                            mpisim::Tracer* tracer = nullptr,
                            driver::SchedulerKind sched =
                                driver::SchedulerKind::kGreedyDynamic) {
  const auto parts =
      seqdb::mpiformatdb(storage.shared(), tiny().db, "db",
                         seqdb::SeqType::kProtein, "tiny", nfragments);
  mpiblast::MpiBlastOptions opts;
  opts.job = tiny_job();
  opts.job.output_path = "out.mpi.txt";
  opts.fragment_bases = parts.fragment_bases;
  opts.fragment_ranges = parts.ranges;
  opts.global_index = parts.global_index;
  opts.scheduler = sched;
  opts.faults = faults;
  opts.tracer = tracer;
  return mpiblast::run_mpiblast(altix(), nprocs, storage, opts);
}

blast::DriverResult run_pio(pario::ClusterStorage& storage, int nprocs,
                            const mpisim::FaultPlan& faults,
                            mpisim::Tracer* tracer = nullptr,
                            pio::PioBlastOptions opts = {}) {
  seqdb::format_db(storage.shared(), tiny().db, "db", seqdb::SeqType::kProtein,
                   "tiny");
  opts.job = tiny_job();
  opts.job.nfragments = opts.job.nfragments ? opts.job.nfragments : 0;
  opts.job.output_path = "out.pio.txt";
  opts.faults = faults;
  opts.tracer = tracer;
  return pio::run_pioblast(altix(), nprocs, storage, opts);
}

/// The 1-based comm-event ordinal at which `rank` sends its `nth` work
/// request, read off a probe run's trace. Crashing at that ordinal kills
/// the worker inside the serve loop, after it has banked n-1 assignments.
std::uint64_t nth_work_request_event(const mpisim::Tracer& tracer, int rank,
                                     int nth) {
  std::uint64_t events = 0;
  int requests = 0;
  for (const auto& e : tracer.for_rank(rank)) {
    if (e.kind != mpisim::TraceKind::kSend &&
        e.kind != mpisim::TraceKind::kRecv) {
      continue;
    }
    ++events;
    // "tag=1 b" avoids matching tag=10/tag=11 range/select traffic.
    if (e.kind == mpisim::TraceKind::kSend &&
        e.detail.find("tag=1 b") != std::string::npos) {
      if (++requests == nth) return events;
    }
  }
  ADD_FAILURE() << "rank " << rank << " sent only " << requests
                << " work requests";
  return 0;
}

/// The 1-based ordinal of `rank`'s first comm event inside its output
/// phase (0 when the rank has no output-phase communication).
std::uint64_t first_output_phase_event(const mpisim::Tracer& tracer,
                                       int rank) {
  std::uint64_t events = 0;
  bool in_output = false;
  for (const auto& e : tracer.for_rank(rank)) {
    if (e.kind == mpisim::TraceKind::kPhase) {
      in_output = e.detail == "output";
      continue;
    }
    if (e.kind != mpisim::TraceKind::kSend &&
        e.kind != mpisim::TraceKind::kRecv) {
      continue;
    }
    ++events;
    if (in_output) return events;
  }
  return 0;
}

TEST(FaultMatrix, MpiBlastSurvivesCrashWithIdenticalOutput) {
  const int nprocs = 4, nfragments = 6, victim = 2;
  pario::ClusterStorage clean(altix(), nprocs);
  stage_queries(clean);
  run_mpi(clean, nprocs, nfragments, {});
  const auto baseline = clean.shared().read_all("out.mpi.txt");
  ASSERT_FALSE(baseline.empty());

  // Probe: armed detector (same fault-tolerant comm structure as the
  // crash run, no injection) to find a mid-serve-loop crash point.
  mpisim::FaultPlan armed;
  armed.arm_detector = true;
  mpisim::Tracer probe;
  pario::ClusterStorage probe_storage(altix(), nprocs);
  stage_queries(probe_storage);
  run_mpi(probe_storage, nprocs, nfragments, armed, &probe);
  EXPECT_EQ(probe_storage.shared().read_all("out.mpi.txt"), baseline);
  const std::uint64_t crash_at = nth_work_request_event(probe, victim, 2);
  ASSERT_GT(crash_at, 0u);

  mpisim::FaultPlan faults;
  faults.at(victim).crash_at = crash_at;
  pario::ClusterStorage storage(altix(), nprocs);
  stage_queries(storage);
  const auto result = run_mpi(storage, nprocs, nfragments, faults);
  EXPECT_EQ(storage.shared().read_all("out.mpi.txt"), baseline);
  EXPECT_EQ(result.metrics.at("ranks_lost"), 1u);
  EXPECT_GE(result.metrics.at("tasks_reassigned"), 1u);
  // Recorded even when recovery completes in the same virtual instant
  // (a parked survivor absorbing the requeued fragment).
  EXPECT_EQ(result.metrics.count("recovery_usec"), 1u);
}

TEST(FaultMatrix, PioBlastDynamicSurvivesCrashWithIdenticalOutput) {
  const int nprocs = 4, victim = 3;
  pio::PioBlastOptions dyn;
  dyn.dynamic_scheduling = true;
  dyn.job.nfragments = 6;

  pario::ClusterStorage clean(altix(), nprocs);
  stage_queries(clean);
  run_pio(clean, nprocs, {}, nullptr, dyn);
  const auto baseline = clean.shared().read_all("out.pio.txt");
  ASSERT_FALSE(baseline.empty());

  mpisim::FaultPlan armed;
  armed.arm_detector = true;
  mpisim::Tracer probe;
  pario::ClusterStorage probe_storage(altix(), nprocs);
  stage_queries(probe_storage);
  run_pio(probe_storage, nprocs, armed, &probe, dyn);
  EXPECT_EQ(probe_storage.shared().read_all("out.pio.txt"), baseline);
  const std::uint64_t crash_at = nth_work_request_event(probe, victim, 2);
  ASSERT_GT(crash_at, 0u);

  mpisim::FaultPlan faults;
  faults.at(victim).crash_at = crash_at;
  pario::ClusterStorage storage(altix(), nprocs);
  stage_queries(storage);
  const auto result = run_pio(storage, nprocs, faults, nullptr, dyn);
  EXPECT_EQ(storage.shared().read_all("out.pio.txt"), baseline);
  EXPECT_EQ(result.metrics.at("ranks_lost"), 1u);
  EXPECT_GE(result.metrics.at("tasks_reassigned"), 1u);
}

TEST(FaultMatrix, BufferedRoundsAndSievingPreserveOutputAcrossCrash) {
  // pario v2 hints (small cb_buffer_size so the collective output write
  // exchanges in many rounds; sieving/list-merging on the input path) must
  // be invisible in the merged report: byte-identical to the naive
  // per-request hints, both fault-free and with a worker crashed
  // mid-search, where the requeue plus the degraded survivor-only
  // collective write carry the output.
  const int nprocs = 4, victim = 3;
  pio::PioBlastOptions v2;
  v2.dynamic_scheduling = true;
  v2.hints.cb_buffer_size = 512;  // force several exchange rounds
  pio::PioBlastOptions naive = v2;
  naive.hints.list_io = false;
  naive.hints.ds_read = pario::SieveMode::kDisable;
  naive.hints.cb_buffer_size = 0;  // one unbounded round (pre-v2 shape)

  pario::ClusterStorage clean(altix(), nprocs);
  stage_queries(clean);
  run_pio(clean, nprocs, {}, nullptr, v2);
  const auto baseline = clean.shared().read_all("out.pio.txt");
  ASSERT_FALSE(baseline.empty());

  pario::ClusterStorage naive_storage(altix(), nprocs);
  stage_queries(naive_storage);
  run_pio(naive_storage, nprocs, {}, nullptr, naive);
  EXPECT_EQ(naive_storage.shared().read_all("out.pio.txt"), baseline)
      << "naive hints changed the fault-free report";

  mpisim::FaultPlan armed;
  armed.arm_detector = true;
  mpisim::Tracer probe;
  pario::ClusterStorage probe_storage(altix(), nprocs);
  stage_queries(probe_storage);
  run_pio(probe_storage, nprocs, armed, &probe, v2);
  EXPECT_EQ(probe_storage.shared().read_all("out.pio.txt"), baseline);
  const std::uint64_t crash_at = nth_work_request_event(probe, victim, 2);
  ASSERT_GT(crash_at, 0u);

  mpisim::FaultPlan faults;
  faults.at(victim).crash_at = crash_at;
  pario::ClusterStorage v2_crash(altix(), nprocs);
  stage_queries(v2_crash);
  const auto v2_result = run_pio(v2_crash, nprocs, faults, nullptr, v2);
  EXPECT_EQ(v2_crash.shared().read_all("out.pio.txt"), baseline)
      << "v2 hints + crash changed the report";
  EXPECT_EQ(v2_result.metrics.at("ranks_lost"), 1u);
  EXPECT_GE(v2_result.metrics.at("tasks_reassigned"), 1u);

  pario::ClusterStorage naive_crash(altix(), nprocs);
  stage_queries(naive_crash);
  run_pio(naive_crash, nprocs, faults, nullptr, naive);
  EXPECT_EQ(naive_crash.shared().read_all("out.pio.txt"), baseline)
      << "naive hints + crash changed the report";
}

TEST(FaultMatrix, StragglerPreservesOutputUnderEverySchedulerBothDrivers) {
  const int nprocs = 4;
  mpisim::FaultPlan straggler;
  straggler.at(2).slow = 4.0;
  for (auto kind : {driver::SchedulerKind::kGreedyDynamic,
                    driver::SchedulerKind::kStaticRoundRobin,
                    driver::SchedulerKind::kSpeedWeighted}) {
    pario::ClusterStorage clean(altix(), nprocs);
    stage_queries(clean);
    const auto clean_mpi = run_mpi(clean, nprocs, 6, {}, nullptr, kind);
    const auto mpi_baseline = clean.shared().read_all("out.mpi.txt");
    pio::PioBlastOptions popts;
    popts.scheduler = kind;
    run_pio(clean, nprocs, {}, nullptr, popts);
    const auto pio_baseline = clean.shared().read_all("out.pio.txt");

    pario::ClusterStorage storage(altix(), nprocs);
    stage_queries(storage);
    const auto slow_mpi =
        run_mpi(storage, nprocs, 6, straggler, nullptr, kind);
    EXPECT_EQ(storage.shared().read_all("out.mpi.txt"), mpi_baseline)
        << "mpiblast " << driver::to_string(kind);
    EXPECT_GT(slow_mpi.phases.total, clean_mpi.phases.total)
        << driver::to_string(kind);
    run_pio(storage, nprocs, straggler, nullptr, popts);
    EXPECT_EQ(storage.shared().read_all("out.pio.txt"), pio_baseline)
        << "pioblast " << driver::to_string(kind);
  }
}

TEST(FaultMatrix, PioBlastStaticWriterLostDuringOutputTerminates) {
  // Static pioBLAST with a worker lost at the start of its output phase:
  // its cached result text dies with it, so the report cannot be
  // reproduced byte-for-byte — but the job must still terminate cleanly
  // (degraded collective write, no verifier false positives) with the
  // loss accounted in the metrics.
  const int nprocs = 4, victim = 2;
  mpisim::FaultPlan armed;
  armed.arm_detector = true;
  mpisim::Tracer probe;
  pario::ClusterStorage probe_storage(altix(), nprocs);
  stage_queries(probe_storage);
  run_pio(probe_storage, nprocs, armed, &probe);
  const std::uint64_t crash_at = first_output_phase_event(probe, victim);
  ASSERT_GT(crash_at, 0u);

  mpisim::FaultPlan faults;
  faults.at(victim).crash_at = crash_at;
  pario::ClusterStorage storage(altix(), nprocs);
  stage_queries(storage);
  const auto result = run_pio(storage, nprocs, faults);
  EXPECT_EQ(result.metrics.at("ranks_lost"), 1u);
  EXPECT_FALSE(storage.shared().read_all("out.pio.txt").empty());
}

}  // namespace
}  // namespace pioblast
