// Stress and edge-case tests for the message-passing runtime: many ranks,
// randomized traffic patterns, tag isolation, repeated collectives, and
// mailbox behaviour under concurrency.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>

#include "mpisim/runtime.h"
#include "util/rng.h"

namespace pioblast::mpisim {
namespace {

sim::ClusterConfig cluster() { return sim::ClusterConfig::ornl_altix(); }

TEST(Stress, ManyRanksBarrierStorm) {
  const auto report = run(48, cluster(), [](Process& p) {
    for (int i = 0; i < 20; ++i) p.barrier();
  });
  // The flat barrier releases workers one send apart, so final clocks
  // agree only to within the per-message overheads.
  const double t0 = report.ranks[0].final_clock;
  for (const auto& r : report.ranks) EXPECT_NEAR(r.final_clock, t0, 1e-3);
}

TEST(Stress, RingPassesTokenAroundManyTimes) {
  const int n = 16;
  const auto report = run(n, cluster(), [n](Process& p) {
    const int next = (p.rank() + 1) % n;
    const int prev = (p.rank() + n - 1) % n;
    std::uint64_t token = 0;
    for (int lap = 0; lap < 10; ++lap) {
      if (p.rank() == 0) {
        p.send_value(next, 1, token + 1);
        token = p.recv_value<std::uint64_t>(prev, 1);
      } else {
        token = p.recv_value<std::uint64_t>(prev, 1);
        p.send_value(next, 1, token + 1);
      }
    }
    if (p.rank() == 0) {
      // Each lap adds n increments.
      EXPECT_EQ(token, static_cast<std::uint64_t>(10 * n));
    }
  });
  EXPECT_GT(report.makespan(), 0.0);
}

TEST(Stress, TagsIsolateConcurrentStreams) {
  run(2, cluster(), [](Process& p) {
    constexpr int kCount = 200;
    if (p.rank() == 0) {
      // Interleave two tag streams out of order.
      for (int i = 0; i < kCount; ++i) {
        p.send_value(1, /*tag=*/7, i);
        p.send_value(1, /*tag=*/9, i * 100);
      }
    } else {
      // Drain tag 9 first, then tag 7: FIFO per (src, tag) must hold.
      for (int i = 0; i < kCount; ++i)
        EXPECT_EQ(p.recv_value<int>(0, 9), i * 100);
      for (int i = 0; i < kCount; ++i) EXPECT_EQ(p.recv_value<int>(0, 7), i);
    }
  });
}

TEST(Stress, AllToAllPersonalizedExchange) {
  const int n = 8;
  run(n, cluster(), [n](Process& p) {
    // Everyone sends rank*100+dst to everyone else.
    for (int dst = 0; dst < n; ++dst) {
      if (dst == p.rank()) continue;
      p.send_value(dst, 3, p.rank() * 100 + dst);
    }
    for (int src = 0; src < n; ++src) {
      if (src == p.rank()) continue;
      EXPECT_EQ(p.recv_value<int>(src, 3), src * 100 + p.rank());
    }
  });
}

TEST(Stress, MasterWorkerRandomWorkloads) {
  // Randomized greedy scheduling with uneven task costs completes and
  // dispatches every task exactly once.
  const int n = 9;
  std::atomic<int> tasks_done{0};
  run(n, cluster(), [&](Process& p) {
    constexpr int kTasks = 64;
    if (p.rank() == 0) {
      int next = 0, retired = 0;
      while (retired < n - 1) {
        const Message req = p.recv(kAnySource, 1);
        if (next < kTasks) {
          p.send_value(req.src, 2, next++);
        } else {
          p.send_value(req.src, 2, -1);
          ++retired;
        }
      }
      EXPECT_EQ(next, kTasks);
    } else {
      util::Rng rng(static_cast<std::uint64_t>(p.rank()));
      while (true) {
        p.send(0, 1, {});
        const int task = p.recv_value<int>(0, 2);
        if (task < 0) break;
        p.compute(rng.uniform() * 0.01);
        tasks_done.fetch_add(1);
      }
    }
  });
  EXPECT_EQ(tasks_done.load(), 64);
}

TEST(Stress, RepeatedBcastGatherCycles) {
  run(12, cluster(), [](Process& p) {
    for (int round = 0; round < 25; ++round) {
      std::vector<std::uint8_t> data;
      if (p.rank() == round % p.size())
        data.assign(static_cast<std::size_t>(round + 1), static_cast<std::uint8_t>(round));
      p.bcast(data, round % p.size());
      ASSERT_EQ(data.size(), static_cast<std::size_t>(round + 1));
      auto gathered = p.gather(data, 0);
      if (p.rank() == 0) {
        for (const auto& g : gathered) ASSERT_EQ(g.size(), data.size());
      }
    }
  });
}

TEST(Stress, LargeMessageVolume) {
  run(4, cluster(), [](Process& p) {
    const std::size_t mb = 1 << 20;
    if (p.rank() == 0) {
      std::vector<std::uint8_t> big(8 * mb, 0x5A);
      for (int w = 1; w < p.size(); ++w) p.send(w, 1, big);
    } else {
      const Message m = p.recv(0, 1);
      EXPECT_EQ(m.payload.size(), 8u << 20);
      EXPECT_EQ(m.payload[12345], 0x5A);
    }
  });
}

TEST(Stress, MailboxConcurrentProducers) {
  Mailbox mb;
  constexpr int kPerProducer = 500;
  std::vector<std::thread> producers;
  for (int src = 1; src <= 4; ++src) {
    producers.emplace_back([&mb, src] {
      for (int i = 0; i < kPerProducer; ++i) {
        mb.push({src, 1, static_cast<double>(i), {}});
      }
    });
  }
  int received = 0;
  for (int i = 0; i < 4 * kPerProducer; ++i) {
    (void)mb.pop(kAnySource, 1);
    ++received;
  }
  for (auto& t : producers) t.join();
  EXPECT_EQ(received, 4 * kPerProducer);
  EXPECT_EQ(mb.pending(), 0u);
}

}  // namespace
}  // namespace pioblast::mpisim
