// Tests for the protocol verifier (mpisim/verifier.h): deadlock detection
// with wait-for-cycle reports, collective-order cross-validation, tag
// registry auditing, typed-payload conformance, and message-leak checks —
// plus the seeded-bug regressions the verifier exists to catch. Every
// failing job here must terminate with a VerifyError instead of hanging.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "driver/channel.h"
#include "driver/messages.h"
#include "driver/tags.h"
#include "mpisim/runtime.h"
#include "mpisim/trace.h"
#include "mpisim/verify.h"
#include "util/error.h"

namespace pioblast::mpisim {
namespace {

sim::ClusterConfig test_cluster() { return sim::ClusterConfig::ornl_altix(); }

/// Runs `fn` expecting a VerifyError; returns its report text.
std::string verify_failure(int nranks, const std::function<void(Process&)>& fn,
                           const RunOptions& opts = {}) {
  try {
    run(nranks, test_cluster(), fn, opts);
  } catch (const VerifyError& e) {
    return e.what();
  }
  ADD_FAILURE() << "job completed without a VerifyError";
  return {};
}

// ---------- type stamps ---------------------------------------------------

TEST(TypeStamp, DistinctTypesGetDistinctFingerprints) {
  constexpr TypeStamp a = type_stamp<std::uint32_t>();
  constexpr TypeStamp b = type_stamp<float>();
  constexpr TypeStamp c = type_stamp<std::uint64_t>();
  EXPECT_NE(a.fp, 0u);
  EXPECT_NE(a.fp, b.fp);
  EXPECT_NE(a.fp, c.fp);
  EXPECT_NE(b.fp, c.fp);
}

TEST(TypeStamp, NameIsHumanReadable) {
  constexpr TypeStamp s = type_stamp<float>();
  EXPECT_EQ(s.name, "float");
}

TEST(TypeStamp, SameTypeSameFingerprint) {
  EXPECT_EQ(type_stamp<double>().fp, type_stamp<double>().fp);
}

// ---------- tag registry --------------------------------------------------

TEST(TagRegistry, LabelsRegisteredTagsByName) {
  EXPECT_EQ(driver::tag_label(driver::kTagAssign), "kTagAssign(2)");
  EXPECT_EQ(driver::tag_label(driver::kTagRanges), "kTagRanges(10)");
  EXPECT_EQ(driver::tag_label(999), "999");
  EXPECT_EQ(driver::tag_name(12345), nullptr);
}

TEST(TagRegistry, ExportsAllTags) {
  const auto tags = driver::registered_tags();
  EXPECT_EQ(tags.size(), 6u);
  for (const int t : tags) EXPECT_NE(driver::tag_name(t), nullptr);
}

// ---------- deadlock detection --------------------------------------------

TEST(VerifierDeadlock, CycleOfFourRanksReported) {
  const std::string report = verify_failure(4, [](Process& p) {
    // Classic ring wait: every rank receives from its successor, nobody
    // sends. Without the verifier this job hangs forever.
    p.recv((p.rank() + 1) % 4, 5);
  });
  EXPECT_NE(report.find("deadlock"), std::string::npos) << report;
  EXPECT_NE(report.find("all 4 live ranks blocked"), std::string::npos)
      << report;
  EXPECT_NE(report.find("wait-for cycle: 0 -> 1 -> 2 -> 3 -> 0"),
            std::string::npos)
      << report;
}

TEST(VerifierDeadlock, TwoRankMutualWaitReported) {
  const std::string report = verify_failure(2, [](Process& p) {
    p.recv(1 - p.rank(), 7);
  });
  EXPECT_NE(report.find("wait-for cycle: 0 -> 1 -> 0"), std::string::npos)
      << report;
}

TEST(VerifierDeadlock, AnySourceWaitAfterPeersExitReported) {
  // Rank 1 waits on a message that no still-running rank can send: the
  // deadlock is discovered when rank 0 retires, not via a wait cycle.
  const std::string report = verify_failure(2, [](Process& p) {
    if (p.rank() == 1) p.recv(kAnySource, 7);
  });
  EXPECT_NE(report.find("deadlock"), std::string::npos) << report;
  EXPECT_NE(report.find("any source"), std::string::npos) << report;
}

TEST(VerifierDeadlock, DeliverableMessageIsNotADeadlock) {
  // The register-vs-arrival race: rank 1 may register as blocked just as
  // rank 0's message lands. The scan must exonerate it via has_match.
  EXPECT_NO_THROW(run(2, test_cluster(), [](Process& p) {
    if (p.rank() == 0) p.send(1, 7, std::vector<std::uint8_t>(8));
    if (p.rank() == 1) p.recv(0, 7);
  }));
}

// ---------- collective order ----------------------------------------------

TEST(VerifierCollectives, MisorderedOpsRejected) {
  const std::string report = verify_failure(2, [](Process& p) {
    if (p.rank() == 0) {
      p.barrier();
    } else {
      std::vector<std::uint8_t> buf;
      p.bcast(buf, 0);
    }
  });
  EXPECT_NE(report.find("collective order mismatch"), std::string::npos)
      << report;
  EXPECT_NE(report.find("barrier"), std::string::npos) << report;
  EXPECT_NE(report.find("bcast"), std::string::npos) << report;
}

TEST(VerifierCollectives, RootMismatchRejected) {
  const std::string report = verify_failure(2, [](Process& p) {
    std::vector<std::uint8_t> buf{1};
    p.bcast(buf, p.rank());  // every rank claims a different root
  });
  EXPECT_NE(report.find("collective order mismatch"), std::string::npos)
      << report;
  EXPECT_NE(report.find("root="), std::string::npos) << report;
}

TEST(VerifierCollectives, MatchingSequencePassesAndIsTraced) {
  Tracer tracer;
  RunOptions opts;
  opts.tracer = &tracer;
  EXPECT_NO_THROW(run(3, test_cluster(),
                      [](Process& p) {
                        p.barrier();
                        std::vector<std::uint8_t> buf{42};
                        p.bcast(buf, 0);
                        p.allreduce_max(1.0);
                      },
                      opts));
  int collectives = 0;
  for (const auto& ev : tracer.sorted())
    if (ev.kind == TraceKind::kCollective) ++collectives;
  // 3 ranks x (barrier + bcast + allreduce_max + allreduce's inner bcast).
  EXPECT_EQ(collectives, 12);
}

// ---------- tag audit -----------------------------------------------------

TEST(VerifierTags, UnregisteredDriverTagRejected) {
  RunOptions opts;
  opts.verify.registered_tags = {1, 2};
  opts.verify.tag_name = [](int tag) { return driver::tag_label(tag); };
  const std::string report = verify_failure(
      2,
      [](Process& p) {
        // Tag typo: 99 is not in the registry the job declared.
        if (p.rank() == 0) p.send(1, 99, std::vector<std::uint8_t>(4));
        if (p.rank() == 1) p.recv(0, 99);
      },
      opts);
  EXPECT_NE(report.find("unregistered driver tag 99"), std::string::npos)
      << report;
  EXPECT_NE(report.find("driver/tags.h"), std::string::npos) << report;
}

TEST(VerifierTags, InternalBandMisuseRejected) {
  RunOptions opts;
  opts.verify.registered_tags = {1};
  const std::string report = verify_failure(
      2,
      [](Process& p) {
        // A driver sneaking into the runtime's reserved band.
        if (p.rank() == 0)
          p.send(1, kDriverTagLimit + 999, std::vector<std::uint8_t>(4));
        if (p.rank() == 1) p.recv(0, kDriverTagLimit + 999);
      },
      opts);
  EXPECT_NE(report.find("runtime-internal band"), std::string::npos) << report;
}

TEST(VerifierTags, RegisteredTagsAndCollectivesPass) {
  RunOptions opts;
  opts.verify.registered_tags = {1, 2};
  EXPECT_NO_THROW(run(2, test_cluster(),
                      [](Process& p) {
                        if (p.rank() == 0) p.send_value<int>(1, 2, 11);
                        if (p.rank() == 1) {
                          EXPECT_EQ(p.recv_value<int>(0, 2), 11);
                        }
                        p.barrier();  // internal tags stay legal
                      },
                      opts));
}

TEST(VerifierTags, AuditInactiveWithoutARegistry) {
  // Standalone mpisim programs pick tags freely; the audit only arms when
  // a job declares its registry.
  EXPECT_NO_THROW(run(2, test_cluster(), [](Process& p) {
    if (p.rank() == 0) p.send(1, 424242, std::vector<std::uint8_t>(1));
    if (p.rank() == 1) p.recv(0, 424242);
  }));
}

// ---------- typed payload conformance -------------------------------------

TEST(VerifierTypes, ValueTypeConfusionCaught) {
  // Same size on the wire (4 bytes), so only the stamp can catch it.
  const std::string report = verify_failure(2, [](Process& p) {
    if (p.rank() == 0) p.send_value<std::uint32_t>(1, 5, 77u);
    if (p.rank() == 1) p.recv_value<float>(0, 5);
  });
  EXPECT_NE(report.find("typed payload mismatch"), std::string::npos) << report;
  EXPECT_NE(report.find("float"), std::string::npos) << report;
}

TEST(VerifierTypes, ChannelTypeConfusionCaught) {
  // Two channels accidentally bound to the same tag: the receive must fail
  // on the stamp, not corrupt fields in the decoder.
  const std::string report = verify_failure(2, [](Process& p) {
    constexpr driver::Channel<driver::FetchRequest> req{driver::kTagFetchReq};
    constexpr driver::Channel<driver::FetchResponse> resp{driver::kTagFetchReq};
    if (p.rank() == 0) req.send(p, 1, driver::FetchRequest{3});
    if (p.rank() == 1) resp.recv(p, 0);
  });
  EXPECT_NE(report.find("typed payload mismatch"), std::string::npos) << report;
  EXPECT_NE(report.find("FetchRequest"), std::string::npos) << report;
  EXPECT_NE(report.find("FetchResponse"), std::string::npos) << report;
}

TEST(VerifierTypes, RawByteSendsStayUnchecked) {
  // Untyped sends carry no stamp; a typed receive still size-checks but
  // must not trip the stamp comparison.
  EXPECT_NO_THROW(run(2, test_cluster(), [](Process& p) {
    if (p.rank() == 0) {
      const std::uint32_t v = 9;
      p.send(1, 5,
             std::span(reinterpret_cast<const std::uint8_t*>(&v), sizeof(v)));
    }
    if (p.rank() == 1) {
      EXPECT_EQ(p.recv_value<std::uint32_t>(0, 5), 9u);
    }
  }));
}

TEST(VerifierTypes, SizeMismatchDiagnosticsNameSourceAndType) {
  try {
    run(2, test_cluster(), [](Process& p) {
      if (p.rank() == 0) p.send(1, 5, std::vector<std::uint8_t>(3));
      if (p.rank() == 1) p.recv_value<std::uint32_t>(0, 5);
    });
    FAIL() << "size mismatch not detected";
  } catch (const util::ContractViolation& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("got 3 bytes, want 4"), std::string::npos) << msg;
    EXPECT_NE(msg.find("from rank 0"), std::string::npos) << msg;
    EXPECT_NE(msg.find("tag 5"), std::string::npos) << msg;
  }
}

// ---------- message leaks -------------------------------------------------

TEST(VerifierLeaks, OrphanedSendReported) {
  const std::string report = verify_failure(2, [](Process& p) {
    // Sent but never received: invisible to the job, caught at the end.
    if (p.rank() == 0) p.send(1, 7, std::vector<std::uint8_t>(16));
  });
  EXPECT_NE(report.find("left undrained"), std::string::npos) << report;
  EXPECT_NE(report.find("rank 1 mailbox holds 1 message"), std::string::npos)
      << report;
  EXPECT_NE(report.find("from rank 0 tag=7 (16 bytes)"), std::string::npos)
      << report;
}

TEST(VerifierLeaks, FullyDrainedJobPasses) {
  EXPECT_NO_THROW(run(2, test_cluster(), [](Process& p) {
    if (p.rank() == 0) p.send(1, 7, std::vector<std::uint8_t>(16));
    if (p.rank() == 1) p.recv(0, 7);
    p.barrier();
  }));
}

// ---------- opt-out -------------------------------------------------------

TEST(VerifierOff, SkipsAllChecks) {
  RunOptions opts;
  opts.verify.enabled = false;
  opts.verify.registered_tags = {1};
  // An orphaned send on an unregistered tag: two violations (tag audit,
  // leak check), both ignored with the verifier off.
  EXPECT_NO_THROW(run(2, test_cluster(),
                      [](Process& p) {
                        if (p.rank() == 0)
                          p.send(1, 99, std::vector<std::uint8_t>(4));
                      },
                      opts));
}

}  // namespace
}  // namespace pioblast::mpisim
