// Protospec suite (ctest label: protospec): the declarative protocol
// specs, the exhaustive model checker, and the runtime conformance
// monitor.
//
// Covers the static tag-coverage audit, model checking of every spec at
// small worlds with and without a crash budget, detection of seeded spec
// bugs (a dropped fault-notice edge, a dropped end-of-query edge), trace
// parsing, end-to-end conformance of real driver runs (both drivers, both
// exec models, crash faults, forced mpicheck schedules), detection of a
// seeded runtime divergence, and the serve_work crash-notice/final-request
// ordering regression the model checker originally found.
#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "blast/job.h"
#include "driver/scheduler.h"
#include "driver/work_queue.h"
#include "mpiblast/mpiblast.h"
#include "mpicheck/explore.h"
#include "mpisim/fault.h"
#include "mpisim/runtime.h"
#include "mpisim/trace.h"
#include "mpisim/verify.h"
#include "pioblast/pioblast.h"
#include "protospec/check.h"
#include "protospec/conform.h"
#include "protospec/spec.h"
#include "seqdb/generator.h"
#include "seqdb/partition.h"

namespace pioblast::protospec {
namespace {

sim::ClusterConfig altix() { return sim::ClusterConfig::ornl_altix(); }

/// Small model-checking params for a spec by name.
SpecParams small_params(const std::string& name, int nranks) {
  SpecParams p;
  p.nranks = nranks;
  if (name == "pario_write" || name == "pario_read") {
    p.naggs = nranks >= 2 ? 2 : 1;
    p.rounds = 2;
  } else {
    p.tasks = nranks - 1;
    p.queries = 2;
    if (name == "mpiblast") p.fetch_cap = 1;
    if (name == "pioblast") p.batch = 1;
  }
  return p;
}

/// Removes the uniquely named edge from a role's table; asserts it existed.
void drop_edge(Role& role, std::string_view name) {
  const auto before = role.edges.size();
  std::erase_if(role.edges, [name](const Edge& e) {
    return std::string_view(e.name) == name;
  });
  ASSERT_LT(role.edges.size(), before) << "no edge named " << name;
}

// ---------- static audit ---------------------------------------------------

TEST(ProtospecAudit, RegistryAndSpecsAgree) {
  const AuditResult res = audit_tag_coverage();
  for (const std::string& p : res.problems) ADD_FAILURE() << p;
  EXPECT_TRUE(res.ok);
}

// ---------- model checking -------------------------------------------------

TEST(ProtospecModel, AllSpecsPassSmallWorlds) {
  for (const ProtocolSpec* spec : all_specs()) {
    for (int nranks = 2; nranks <= 4; ++nranks) {
      SpecParams p = small_params(spec->name, nranks);
      for (int crashes = 0; crashes <= 1; ++crashes) {
        p.fault_tolerant = crashes > 0;
        ModelCheckOptions opts;
        opts.max_crashes = crashes;
        const ModelCheckResult res = model_check(*spec, p, opts);
        EXPECT_TRUE(res.ok) << spec->name << " nranks=" << nranks
                            << " crashes=" << crashes << ": " << res.error;
        EXPECT_GT(res.stats.states_explored, 0u);
      }
    }
  }
}

TEST(ProtospecModel, PorAndFullExplorationAgree) {
  SpecParams p = small_params("mpiblast", 3);
  p.fault_tolerant = true;
  ModelCheckOptions with;
  with.max_crashes = 1;
  ModelCheckOptions without = with;
  without.por = false;
  const ModelCheckResult a = model_check(*spec_by_name("mpiblast"), p, with);
  const ModelCheckResult b = model_check(*spec_by_name("mpiblast"), p, without);
  EXPECT_TRUE(a.ok) << a.error;
  EXPECT_TRUE(b.ok) << b.error;
  EXPECT_GT(a.stats.states_pruned, 0u);
}

TEST(ProtospecModel, RejectsInvalidParams) {
  {
    SpecParams p = small_params("mpiblast", 1);  // needs >= 2 ranks
    const ModelCheckResult res = model_check(*spec_by_name("mpiblast"), p);
    EXPECT_FALSE(res.ok);
    EXPECT_NE(res.error.find("nranks"), std::string::npos) << res.error;
  }
  {
    SpecParams p = small_params("mpiblast", 3);
    p.tasks = -1;  // the "unbounded" sentinel is conformance-only
    const ModelCheckResult res = model_check(*spec_by_name("mpiblast"), p);
    EXPECT_FALSE(res.ok);
  }
  {
    SpecParams p = small_params("mpiblast", 3);  // crash budget needs ft
    ModelCheckOptions opts;
    opts.max_crashes = 1;
    const ModelCheckResult res =
        model_check(*spec_by_name("mpiblast"), p, opts);
    EXPECT_FALSE(res.ok);
  }
}

/// Seeded spec bug: without the master's fault-notice edge the crash
/// recovery path disappears and a single crash wedges the model.
TEST(ProtospecModel, DroppedFaultNoticeEdgeIsCaught) {
  ProtocolSpec spec = mpiblast_spec();
  drop_edge(spec.roles[0], "serve_notice");

  SpecParams p = small_params("mpiblast", 3);
  p.fault_tolerant = true;
  ModelCheckOptions opts;
  opts.max_crashes = 1;
  const ModelCheckResult res = model_check(spec, p, opts);
  EXPECT_FALSE(res.ok);

  // The same mutilated spec still passes crash-free: the bug is precisely
  // in the recovery path, which the crash budget is what exercises.
  opts.max_crashes = 0;
  p.fault_tolerant = false;
  EXPECT_TRUE(model_check(spec, p, opts).ok);
}

/// Seeded spec bug: dropping the worker's end-of-query edge leaves the
/// master's fan-out message unconsumed — caught without any crash.
TEST(ProtospecModel, DroppedFetchEndEdgeIsCaught) {
  ProtocolSpec spec = mpiblast_spec();
  drop_edge(spec.roles[1], "fetch_end");
  const SpecParams p = small_params("mpiblast", 3);
  const ModelCheckResult res = model_check(spec, p, {});
  EXPECT_FALSE(res.ok);
}

// ---------- trace parsing --------------------------------------------------

TEST(TraceParse, SendRecvCollFault) {
  mpisim::ParsedEvent ev;
  mpisim::TraceEvent e;
  e.rank = 1;
  e.time = 2.5;

  e.kind = mpisim::TraceKind::kSend;
  e.detail = "dst=0 tag=1 bytes=0";
  ASSERT_TRUE(mpisim::parse_trace_event(e, ev));
  EXPECT_EQ(ev.peer, 0);
  EXPECT_EQ(ev.tag, 1);
  EXPECT_EQ(ev.bytes, 0u);

  e.kind = mpisim::TraceKind::kRecv;
  e.detail = "src=3 tag=4 bytes=128";
  ASSERT_TRUE(mpisim::parse_trace_event(e, ev));
  EXPECT_EQ(ev.peer, 3);
  EXPECT_EQ(ev.tag, 4);
  EXPECT_EQ(ev.bytes, 128u);

  e.kind = mpisim::TraceKind::kCollective;
  e.detail = "gather root=0 seq=7";
  ASSERT_TRUE(mpisim::parse_trace_event(e, ev));
  EXPECT_EQ(ev.op, "gather");
  EXPECT_EQ(ev.root, 0);

  e.kind = mpisim::TraceKind::kFault;
  e.detail = "rank 2 crashed";
  ASSERT_TRUE(mpisim::parse_trace_event(e, ev));
  EXPECT_EQ(ev.crashed_rank, 2);
  EXPECT_FALSE(ev.drop);

  e.detail = "drop send #3 dst=0 tag=1 bytes=0";
  ASSERT_TRUE(mpisim::parse_trace_event(e, ev));
  EXPECT_TRUE(ev.drop);
  EXPECT_EQ(ev.peer, 0);
  EXPECT_EQ(ev.tag, 1);

  e.kind = mpisim::TraceKind::kSend;
  e.detail = "dst=zero tag=?";
  EXPECT_FALSE(mpisim::parse_trace_event(e, ev));
}

// ---------- end-to-end conformance -----------------------------------------

struct Tiny {
  std::vector<seqdb::FastaRecord> db;
  std::string queries;
};

const Tiny& tiny() {
  static const Tiny* t = [] {
    auto* out = new Tiny();
    seqdb::GeneratorConfig gen;
    gen.target_residues = 60u << 10;
    gen.seed = 9;
    out->db = seqdb::generate_database(gen);
    out->queries = seqdb::write_fasta(seqdb::sample_queries(out->db, 1024, 3));
    return out;
  }();
  return *t;
}

void stage_queries(pario::ClusterStorage& storage) {
  const std::string& fasta = tiny().queries;
  storage.shared().write_all(
      "queries.fa",
      std::span(reinterpret_cast<const std::uint8_t*>(fasta.data()),
                fasta.size()));
}

blast::JobConfig tiny_job() {
  blast::JobConfig job;
  job.db_base = "db";
  job.db_title = "tiny";
  job.query_path = "queries.fa";
  job.params = blast::SearchParams::blastp_defaults();
  return job;
}

blast::DriverResult run_mpi(pario::ClusterStorage& storage, int nprocs,
                            int nfragments, mpiblast::MpiBlastOptions opts) {
  stage_queries(storage);
  const auto parts =
      seqdb::mpiformatdb(storage.shared(), tiny().db, "db",
                         seqdb::SeqType::kProtein, "tiny", nfragments);
  opts.job = tiny_job();
  opts.job.output_path = "out.mpi.txt";
  opts.fragment_bases = parts.fragment_bases;
  opts.fragment_ranges = parts.ranges;
  opts.global_index = parts.global_index;
  return mpiblast::run_mpiblast(altix(), nprocs, storage, opts);
}

blast::DriverResult run_pio(pario::ClusterStorage& storage, int nprocs,
                            pio::PioBlastOptions opts) {
  stage_queries(storage);
  seqdb::format_db(storage.shared(), tiny().db, "db", seqdb::SeqType::kProtein,
                   "tiny");
  opts.job = tiny_job();
  opts.job.output_path = "out.pio.txt";
  return pio::run_pioblast(altix(), nprocs, storage, opts);
}

TEST(ProtospecConform, MpiblastConformsBothExecModels) {
  for (const auto exec :
       {mpisim::ExecModel::kThreads, mpisim::ExecModel::kEvents}) {
    pario::ClusterStorage storage(altix(), 4);
    mpiblast::MpiBlastOptions opts;
    opts.conformance = true;
    opts.exec = exec;
    const auto result = run_mpi(storage, 4, 3, opts);
    EXPECT_NE(result.conformance.find("result=ok"), std::string::npos)
        << result.conformance;
  }
}

TEST(ProtospecConform, MpiblastCrashTraceConforms) {
  for (const auto exec :
       {mpisim::ExecModel::kThreads, mpisim::ExecModel::kEvents}) {
    pario::ClusterStorage storage(altix(), 4);
    mpiblast::MpiBlastOptions opts;
    opts.conformance = true;
    opts.exec = exec;
    opts.faults.at(2).crash_at = 9;
    const auto result = run_mpi(storage, 4, 3, opts);
    EXPECT_NE(result.conformance.find("result=ok"), std::string::npos)
        << result.conformance;
  }
}

TEST(ProtospecConform, PioblastVariantsConform) {
  struct Variant {
    bool dynamic;
    bool early;
    std::uint32_t batch;
  };
  for (const Variant v : {Variant{false, false, 0}, Variant{true, false, 0},
                          Variant{true, true, 0}, Variant{false, true, 1}}) {
    pario::ClusterStorage storage(altix(), 4);
    pio::PioBlastOptions opts;
    opts.conformance = true;
    opts.dynamic_scheduling = v.dynamic;
    opts.early_score_broadcast = v.early;
    opts.query_batch = v.batch;
    const auto result = run_pio(storage, 4, opts);
    EXPECT_NE(result.conformance.find("result=ok"), std::string::npos)
        << "dynamic=" << v.dynamic << " early=" << v.early
        << " batch=" << v.batch << ": " << result.conformance;
  }
}

TEST(ProtospecConform, PioblastCrashTraceConformsBothExecModels) {
  for (const auto exec :
       {mpisim::ExecModel::kThreads, mpisim::ExecModel::kEvents}) {
    pario::ClusterStorage storage(altix(), 4);
    pio::PioBlastOptions opts;
    opts.conformance = true;
    opts.dynamic_scheduling = true;
    opts.exec = exec;
    opts.faults.at(3).crash_at = 9;
    const auto result = run_pio(storage, 4, opts);
    EXPECT_NE(result.conformance.find("result=ok"), std::string::npos)
        << result.conformance;
  }
}

/// Seeded runtime divergence: a spec stripped of the worker's fetch-reply
/// edge must reject a real mpiblast trace at that worker's first reply —
/// and the intact spec must accept the very same trace.
TEST(ProtospecConform, SeededDivergenceIsCaught) {
  pario::ClusterStorage storage(altix(), 3);
  mpisim::Tracer tracer;
  mpiblast::MpiBlastOptions opts;
  opts.tracer = &tracer;
  (void)run_mpi(storage, 3, 2, opts);

  ProtocolSpec broken = mpiblast_spec();
  drop_edge(broken.roles[1], "fetch_resp");
  SpecParams sp;
  sp.nranks = 3;
  sp.tasks = 2;
  sp.queries = -1;    // data-dependent bounds: permissive, like the
  sp.fetch_cap = -1;  // driver's own --conformance wiring
  const ConformResult res = check_conformance(broken, sp, tracer.sorted());
  EXPECT_FALSE(res.ok);
  EXPECT_NE(res.error.find("rank"), std::string::npos) << res.error;

  const ConformResult good =
      check_conformance(*spec_by_name("mpiblast"), sp, tracer.sorted());
  EXPECT_TRUE(good.ok) << good.error;

  // The driver-facing wrapper fails like any protocol-verifier violation.
  EXPECT_THROW(enforce_conformance(broken, sp, tracer.sorted()),
               mpisim::VerifyError);
}

/// Conformance holds on every forced schedule mpicheck explores, not just
/// the default interleaving: the monitor runs inside the job, so any
/// schedule-dependent divergence fails the checker as "verify".
TEST(ProtospecConform, HoldsUnderForcedCrashSchedules) {
  mpicheck::CheckOptions copts;
  copts.random_schedules = 10;
  copts.preemption_bound = 1;
  copts.max_schedules = 30;
  copts.detect_races = false;
  copts.shrink = false;
  mpicheck::Checker checker(
      [](mpisim::ScheduleHook* s, mpisim::RaceHook* r) {
        pario::ClusterStorage storage(altix(), 3);
        mpiblast::MpiBlastOptions opts;
        opts.conformance = true;
        opts.schedule = s;
        opts.race = r;
        opts.faults.at(1).crash_at = 6;
        (void)run_mpi(storage, 3, 2, opts);
      },
      copts);
  const mpicheck::CheckResult res = checker.run();
  EXPECT_FALSE(res.failed) << res.failure_kind << ": " << res.error
                           << " trace=" << res.failing_trace;
  EXPECT_GT(res.schedules_explored, 1);
}

// ---------- the serve_work ordering regression -----------------------------

/// The model checker's first real catch: a crashed worker's final work
/// request can still be in flight when the failure detector's notice ends
/// the serve loop (the notice pays detection delay but no wire latency).
/// serve_work must drain the stray request or the verifier reports a
/// leaked driver message. Exhaustively explored with mpicheck; before the
/// drain fix in serve_work this failed as "verify: … left undrained".
TEST(ServeWorkRegression, NoticeOvertakingFinalRequestLeaksNothing) {
  const auto serve_job = [](mpisim::ScheduleHook* s, mpisim::RaceHook* r) {
    mpisim::RunOptions ropts;
    ropts.faults.at(1).crash_at = 6;  // dies sending a later work request
    ropts.faults.detection_delay = 1e-7;  // below the wire latency
    ropts.schedule = s;
    ropts.race = r;
    mpisim::run(
        3, altix(),
        [](mpisim::Process& p) {
          if (p.is_root()) {
            auto sched =
                driver::make_scheduler(driver::SchedulerKind::kGreedyDynamic);
            const auto topo = driver::WorkerTopology::from_cluster(altix(), 3);
            driver::serve_work(p, *sched, 4, topo, {}, nullptr);
          } else {
            while (driver::request_work<std::uint32_t>(
                p, [](std::uint32_t id, mpisim::Decoder&) { return id; })) {
            }
          }
        },
        ropts);
  };
  mpicheck::CheckOptions copts;
  copts.random_schedules = 200;
  copts.seed = 11;
  copts.preemption_bound = 2;
  copts.max_schedules = 500;
  copts.detect_races = false;
  mpicheck::Checker checker(serve_job, copts);
  const mpicheck::CheckResult res = checker.run();
  EXPECT_FALSE(res.failed) << res.failure_kind << ": " << res.error
                           << " trace=" << res.failing_trace;
  EXPECT_GT(res.schedules_explored, 1);
}

}  // namespace
}  // namespace pioblast::protospec
