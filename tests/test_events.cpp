// Event-backend tests (ctest label: events).
//
// The contract under test: ExecModel::kEvents (stackful fibers on one
// scheduler thread, mpisim/event_loop.h) is observationally identical to
// the thread-per-rank backend. That means byte-identical virtual clocks,
// message counters, and driver output files; the protocol verifier, fault
// injection, and the stuck handler behaving the same; and a CoopScheduler
// driven through the inline chooser protocol producing the very same
// decision records — so mpicheck schedules record on one backend and
// replay on the other, and the explorer's statistics are backend-blind.
//
// Also here: correctness of the binomial-tree collectives (barrier, bcast,
// allreduce_max) at non-power-of-two world sizes, on both backends.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "blast/job.h"
#include "driver/scheduler.h"
#include "driver/work_queue.h"
#include "mpicheck/coop.h"
#include "mpicheck/explore.h"
#include "mpisim/event_loop.h"
#include "mpisim/exec.h"
#include "mpisim/fault.h"
#include "mpisim/runtime.h"
#include "pario/env.h"
#include "pioblast/pioblast.h"
#include "seqdb/formatdb.h"
#include "seqdb/generator.h"
#include "util/error.h"

namespace pioblast {
namespace {

sim::ClusterConfig altix() { return sim::ClusterConfig::ornl_altix(); }

constexpr auto kThreads = mpisim::ExecModel::kThreads;
constexpr auto kEvents = mpisim::ExecModel::kEvents;

#define REQUIRE_EVENTS()                                       \
  if (!mpisim::events_supported())                             \
  GTEST_SKIP() << "stackful fibers unavailable on this platform"

// ---------- ExecModel plumbing ---------------------------------------------

TEST(ExecModel, ParseAndFormatRoundTrip) {
  EXPECT_EQ(mpisim::parse_exec_model("threads"), kThreads);
  EXPECT_EQ(mpisim::parse_exec_model("events"), kEvents);
  EXPECT_STREQ(mpisim::to_string(kThreads), "threads");
  EXPECT_STREQ(mpisim::to_string(kEvents), "events");
  EXPECT_THROW(mpisim::parse_exec_model("fibers"), util::RuntimeError);
  EXPECT_THROW(mpisim::parse_exec_model(""), util::RuntimeError);
}

// ---------- cross-backend equivalence --------------------------------------

/// A mixed workload touching every suspension path: point-to-point rings,
/// fan-in at the root, all four collectives, and per-rank compute skew.
/// Deliberately free of any-source receives: with kAnySource the match
/// order — and therefore the receiver's virtual clock — depends on
/// real-time message-arrival order, which no backend guarantees. Exact
/// cross-backend clock equality is only promised for jobs whose virtual
/// time is schedule-independent (driver *output* is byte-identical either
/// way; the any-source decision stream is pinned down by the
/// CoopScheduler parity tests below).
void mixed_job(mpisim::Process& p) {
  const int n = p.size();
  p.compute(1e-4 * (p.rank() + 1));
  // Ring: everyone sends right, receives from the left.
  const std::uint8_t byte = static_cast<std::uint8_t>(p.rank());
  p.send((p.rank() + 1) % n, 5, std::span(&byte, 1));
  p.recv((p.rank() - 1 + n) % n, 5);
  // Fan-in at rank 0, matched per source.
  if (p.is_root()) {
    for (int i = 1; i < n; ++i) p.recv(i, 6);
  } else {
    p.send(0, 6, {});
  }
  p.barrier();
  std::vector<std::uint8_t> blob;
  if (p.rank() == 1 % n) blob.assign(64, 0xAB);
  p.bcast(blob, 1 % n);
  p.gather(std::span(&byte, 1), 0);
  p.allreduce_max(static_cast<sim::Time>(p.rank()));
}

mpisim::RunReport run_mixed(int nranks, mpisim::ExecModel exec) {
  mpisim::RunOptions opts;
  opts.exec_model = exec;
  return mpisim::run(nranks, altix(), mixed_job, opts);
}

TEST(EventBackend, ClocksAndCountersMatchThreadsExactly) {
  REQUIRE_EVENTS();
  // Non-power-of-two and power-of-two worlds: the binomial trees take
  // different shapes, the equivalence must hold for both.
  for (int nranks : {2, 3, 5, 7, 8, 13}) {
    const auto threads = run_mixed(nranks, kThreads);
    const auto events = run_mixed(nranks, kEvents);
    ASSERT_EQ(events.ranks.size(), threads.ranks.size()) << nranks;
    for (int r = 0; r < nranks; ++r) {
      const auto& t = threads.ranks[static_cast<std::size_t>(r)];
      const auto& e = events.ranks[static_cast<std::size_t>(r)];
      // Exact, not NEAR: both backends must execute the identical event
      // sequence, so the floating-point clocks agree bit for bit.
      EXPECT_EQ(e.final_clock, t.final_clock) << nranks << " rank " << r;
      EXPECT_EQ(e.bytes_sent, t.bytes_sent) << nranks << " rank " << r;
      EXPECT_EQ(e.messages_sent, t.messages_sent) << nranks << " rank " << r;
    }
    EXPECT_EQ(events.makespan(), threads.makespan()) << nranks;
  }
}

TEST(EventBackend, PioBlastOutputBytesMatchThreads) {
  REQUIRE_EVENTS();
  seqdb::GeneratorConfig gen;
  gen.target_residues = 60u << 10;
  gen.seed = 11;
  const auto db = seqdb::generate_database(gen);
  const std::string queries =
      seqdb::write_fasta(seqdb::sample_queries(db, 1024, 3));
  auto run_one = [&](mpisim::ExecModel exec) {
    pario::ClusterStorage storage(altix(), 4);
    storage.shared().write_all(
        "queries.fa",
        std::span(reinterpret_cast<const std::uint8_t*>(queries.data()),
                  queries.size()));
    seqdb::format_db(storage.shared(), db, "db", seqdb::SeqType::kProtein,
                     "tiny");
    pio::PioBlastOptions opts;
    opts.exec = exec;
    opts.job.db_base = "db";
    opts.job.query_path = "queries.fa";
    opts.job.output_path = "out.txt";
    opts.job.params = blast::SearchParams::blastp_defaults();
    pio::run_pioblast(altix(), 4, storage, opts);
    return storage.shared().read_all("out.txt");
  };
  const auto baseline = run_one(kThreads);
  ASSERT_FALSE(baseline.empty());
  EXPECT_EQ(run_one(kEvents), baseline);
}

// ---------- tree collectives at non-power-of-two sizes ---------------------

TEST(TreeCollectives, CorrectAtAwkwardWorldSizes) {
  for (const auto exec : {kThreads, kEvents}) {
    if (exec == kEvents && !mpisim::events_supported()) continue;
    for (int nranks : {2, 3, 5, 6, 7, 9, 12, 17}) {
      const int root = nranks - 1;  // non-zero root exercises renumbering
      std::vector<std::vector<std::uint8_t>> bcast_got(
          static_cast<std::size_t>(nranks));
      std::vector<sim::Time> reduce_got(static_cast<std::size_t>(nranks), -1);
      mpisim::RunOptions opts;
      opts.exec_model = exec;
      mpisim::run(
          nranks, altix(),
          [&](mpisim::Process& p) {
            p.barrier();
            std::vector<std::uint8_t> blob;
            if (p.rank() == root) blob = {1, 2, 3, 4};
            p.bcast(blob, root);
            bcast_got[static_cast<std::size_t>(p.rank())] = blob;
            // Skewed clocks make the max distinctive before the reduce.
            p.compute(1e-3 * (p.rank() + 1));
            reduce_got[static_cast<std::size_t>(p.rank())] =
                p.allreduce_max(static_cast<sim::Time>(100 + p.rank()));
          },
          opts);
      for (int r = 0; r < nranks; ++r) {
        EXPECT_EQ(bcast_got[static_cast<std::size_t>(r)],
                  (std::vector<std::uint8_t>{1, 2, 3, 4}))
            << "bcast " << nranks << " rank " << r;
        EXPECT_EQ(reduce_got[static_cast<std::size_t>(r)],
                  static_cast<sim::Time>(100 + nranks - 1))
            << "allreduce " << nranks << " rank " << r;
      }
    }
  }
}

TEST(TreeCollectives, BarrierSynchronizesSkewedClocks) {
  // After a barrier no rank's clock may precede the latest pre-barrier
  // clock: the slowest rank gates the release on the tree as on the flat
  // topology.
  for (int nranks : {3, 6, 11}) {
    std::vector<sim::Time> before(static_cast<std::size_t>(nranks));
    std::vector<sim::Time> after(static_cast<std::size_t>(nranks));
    mpisim::run(nranks, altix(), [&](mpisim::Process& p) {
      p.compute(1e-3 * (nranks - p.rank()));  // rank 0 is the straggler
      before[static_cast<std::size_t>(p.rank())] = p.now();
      p.barrier();
      after[static_cast<std::size_t>(p.rank())] = p.now();
    });
    const sim::Time slowest = *std::max_element(before.begin(), before.end());
    for (int r = 0; r < nranks; ++r) {
      EXPECT_GE(after[static_cast<std::size_t>(r)], slowest)
          << nranks << " rank " << r;
    }
  }
}

// ---------- verifier, faults, and the stuck path on events -----------------

void deadlock_job(mpisim::Process& p) {
  if (p.rank() == 1) p.recv(0, 5);  // nobody ever sends
}

TEST(EventBackend, VerifierReportsDeadlock) {
  REQUIRE_EVENTS();
  mpisim::RunOptions opts;
  opts.exec_model = kEvents;
  EXPECT_THROW(mpisim::run(2, altix(), deadlock_job, opts),
               mpisim::VerifyError);
}

TEST(EventBackend, StuckHandlerUnwindsWedgeWithVerifierOff) {
  REQUIRE_EVENTS();
  // With the verifier off a wedged job has nobody to call deadlock; the
  // event loop's stuck handler must poison the blocked receives so the
  // job unwinds with a report instead of spinning forever.
  mpisim::RunOptions opts;
  opts.exec_model = kEvents;
  opts.verify.enabled = false;
  try {
    mpisim::run(2, altix(), deadlock_job, opts);
    FAIL() << "wedged job returned";
  } catch (const mpisim::VerifyError& e) {
    EXPECT_NE(std::string(e.what()).find("scheduler stuck"),
              std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("rank 1"), std::string::npos)
        << e.what();
  }
}

TEST(EventBackend, CrashFaultRetiresRankAndSurvivorsFinish) {
  REQUIRE_EVENTS();
  mpisim::RunOptions opts;
  opts.exec_model = kEvents;
  opts.faults.at(2).crash_at = 1;  // dies at its gather send
  std::vector<std::vector<std::uint8_t>> gathered;
  const auto report = mpisim::run(
      3, altix(),
      [&](mpisim::Process& p) {
        const std::uint8_t byte = static_cast<std::uint8_t>(0x40 + p.rank());
        auto slots = p.gather(std::span(&byte, 1), 0);
        if (p.is_root()) gathered = std::move(slots);
        p.barrier();
      },
      opts);
  ASSERT_EQ(report.ranks.size(), 3u);
  EXPECT_FALSE(report.ranks[0].crashed);
  EXPECT_TRUE(report.ranks[2].crashed);
  ASSERT_EQ(gathered.size(), 3u);
  EXPECT_EQ(gathered[1], (std::vector<std::uint8_t>{0x41}));
  EXPECT_TRUE(gathered[2].empty());
}

TEST(EventBackend, FaultRunClocksMatchThreads) {
  REQUIRE_EVENTS();
  auto run_one = [&](mpisim::ExecModel exec) {
    mpisim::RunOptions opts;
    opts.exec_model = exec;
    opts.faults.at(2).crash_at = 2;
    opts.faults.at(1).slow = 3.0;
    return mpisim::run(
        4, altix(),
        [](mpisim::Process& p) {
          p.compute(1e-4);
          p.barrier();
          p.gather({}, 0);
        },
        opts);
  };
  const auto threads = run_one(kThreads);
  const auto events = run_one(kEvents);
  for (int r = 0; r < 4; ++r) {
    const auto& t = threads.ranks[static_cast<std::size_t>(r)];
    const auto& e = events.ranks[static_cast<std::size_t>(r)];
    EXPECT_EQ(e.crashed, t.crashed) << "rank " << r;
    EXPECT_EQ(e.final_clock, t.final_clock) << "rank " << r;
  }
}

// ---------- CoopScheduler as the event loop's chooser ----------------------

/// Two workers race their messages to an any-source master; every
/// interleaving is legal, so the decision stream is pure scheduler state.
void fan_in_job(mpisim::Process& p) {
  constexpr int kTag = 7;
  if (p.rank() == 0) {
    p.recv(mpisim::kAnySource, kTag);
    p.recv(mpisim::kAnySource, kTag);
  } else {
    p.send(0, kTag, {});
  }
  p.barrier();
}

std::vector<mpicheck::DecisionRecord> coop_records(
    mpisim::ExecModel exec, const mpicheck::CoopScheduler::Chooser& chooser) {
  mpicheck::CoopScheduler coop(chooser);
  mpisim::RunOptions opts;
  opts.exec_model = exec;
  opts.schedule = &coop;
  mpisim::run(3, altix(), fan_in_job, opts);
  return coop.records();
}

void expect_same_records(const std::vector<mpicheck::DecisionRecord>& a,
                         const std::vector<mpicheck::DecisionRecord>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].chosen, b[i].chosen) << "decision " << i;
    EXPECT_EQ(a[i].enabled, b[i].enabled) << "decision " << i;
    ASSERT_EQ(a[i].ops.size(), b[i].ops.size()) << "decision " << i;
    for (std::size_t j = 0; j < a[i].ops.size(); ++j) {
      EXPECT_EQ(a[i].ops[j].rank, b[i].ops[j].rank) << i << "," << j;
      EXPECT_EQ(a[i].ops[j].kind, b[i].ops[j].kind) << i << "," << j;
      EXPECT_EQ(a[i].ops[j].peer, b[i].ops[j].peer) << i << "," << j;
      EXPECT_EQ(a[i].ops[j].tag, b[i].ops[j].tag) << i << "," << j;
    }
  }
}

TEST(CoopOnEvents, DecisionRecordsMatchThreadedBackend) {
  REQUIRE_EVENTS();
  {
    const auto t = coop_records(kThreads, mpicheck::CoopScheduler::first_enabled());
    const auto e = coop_records(kEvents, mpicheck::CoopScheduler::first_enabled());
    ASSERT_FALSE(t.empty());
    expect_same_records(t, e);
  }
  const std::uint64_t seeds[] = {1, 42, 2026};
  for (std::uint64_t seed : seeds) {
    const auto t = coop_records(kThreads, mpicheck::CoopScheduler::random(seed));
    const auto e = coop_records(kEvents, mpicheck::CoopScheduler::random(seed));
    ASSERT_FALSE(t.empty()) << "seed " << seed;
    expect_same_records(t, e);
  }
}

TEST(CoopOnEvents, ScheduleRecordedOnThreadsReplaysOnEvents) {
  REQUIRE_EVENTS();
  mpicheck::CoopScheduler recorder(mpicheck::CoopScheduler::random(7));
  mpisim::RunOptions opts;
  opts.schedule = &recorder;
  mpisim::run(3, altix(), fan_in_job, opts);
  ASSERT_FALSE(recorder.records().empty());

  mpicheck::CoopScheduler replayer(
      mpicheck::CoopScheduler::forced(recorder.schedule()));
  opts.exec_model = kEvents;
  opts.schedule = &replayer;
  mpisim::run(3, altix(), fan_in_job, opts);
  expect_same_records(recorder.records(), replayer.records());
}

TEST(CoopOnEvents, CheckerStatisticsAreBackendBlind) {
  REQUIRE_EVENTS();
  // The explorer's whole decision tree — random sweep, preemption sweep,
  // DPOR pruning — must be identical on either backend, because the
  // decision streams feeding it are.
  auto job_for = [&](mpisim::ExecModel exec) -> mpicheck::Checker::Job {
    return [exec](mpisim::ScheduleHook* schedule, mpisim::RaceHook* race) {
      mpisim::RunOptions opts;
      opts.schedule = schedule;
      opts.race = race;
      opts.exec_model = exec;
      mpisim::run(3, altix(), fan_in_job, opts);
    };
  };
  mpicheck::CheckOptions copts;
  copts.random_schedules = 25;
  copts.preemption_bound = 1;
  copts.max_schedules = 300;
  const auto threads = mpicheck::Checker(job_for(kThreads), copts).run();
  const auto events = mpicheck::Checker(job_for(kEvents), copts).run();
  EXPECT_EQ(mpicheck::summary(events), mpicheck::summary(threads));
  EXPECT_FALSE(threads.failed);
  EXPECT_GT(threads.schedules_explored, 0);
}

// ---------- direct EventLoop edge: stuck fires once ------------------------

TEST(EventLoopUnit, WentStuckReflectsWedge) {
  REQUIRE_EVENTS();
  // went_stuck() is the loop's own flag (exposed for the runtime and
  // tests); a clean job must leave it false.
  mpisim::RunOptions opts;
  opts.exec_model = kEvents;
  mpisim::run(3, altix(), fan_in_job, opts);  // completes: no stuck
  mpicheck::CoopScheduler coop;  // observes inline_stuck on a wedge
  opts.schedule = &coop;
  opts.verify.enabled = false;
  EXPECT_THROW(mpisim::run(2, altix(), deadlock_job, opts),
               mpisim::VerifyError);
  EXPECT_TRUE(coop.went_stuck());
}

}  // namespace
}  // namespace pioblast
