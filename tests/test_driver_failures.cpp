// Failure-injection and instrumentation tests for the drivers: bad
// configurations must fail loudly (never hang the simulated job), and the
// tracer must capture the protocol structure.
#include <gtest/gtest.h>

#include "blast/job.h"
#include "mpiblast/mpiblast.h"
#include "mpisim/trace.h"
#include "pioblast/pioblast.h"
#include "seqdb/generator.h"
#include "seqdb/partition.h"

namespace pioblast {
namespace {

struct Tiny {
  std::vector<seqdb::FastaRecord> db;
  std::string queries;
};

const Tiny& tiny() {
  static const Tiny* t = [] {
    auto* out = new Tiny();
    seqdb::GeneratorConfig gen;
    gen.target_residues = 60u << 10;
    gen.seed = 9;
    out->db = seqdb::generate_database(gen);
    out->queries = seqdb::write_fasta(seqdb::sample_queries(out->db, 1024, 3));
    return out;
  }();
  return *t;
}

void stage(pario::ClusterStorage& storage, const std::string& fasta,
           const std::string& path = "queries.fa") {
  storage.shared().write_all(
      path, std::span(reinterpret_cast<const std::uint8_t*>(fasta.data()),
                      fasta.size()));
}

TEST(DriverFailures, PioMissingDatabaseThrows) {
  const auto cluster = sim::ClusterConfig::ornl_altix();
  pario::ClusterStorage storage(cluster, 3);
  stage(storage, tiny().queries);
  pio::PioBlastOptions opts;
  opts.job.db_base = "no-such-db";
  opts.job.query_path = "queries.fa";
  EXPECT_THROW(pio::run_pioblast(cluster, 3, storage, opts),
               util::ContractViolation);
}

TEST(DriverFailures, PioMissingQueryFileThrows) {
  const auto cluster = sim::ClusterConfig::ornl_altix();
  pario::ClusterStorage storage(cluster, 3);
  seqdb::format_db(storage.shared(), tiny().db, "db", seqdb::SeqType::kProtein,
                   "t");
  pio::PioBlastOptions opts;
  opts.job.db_base = "db";
  opts.job.query_path = "missing.fa";
  EXPECT_THROW(pio::run_pioblast(cluster, 3, storage, opts),
               util::ContractViolation);
}

TEST(DriverFailures, MpiEmptyFragmentsThrows) {
  const auto cluster = sim::ClusterConfig::ornl_altix();
  pario::ClusterStorage storage(cluster, 3);
  stage(storage, tiny().queries);
  mpiblast::MpiBlastOptions opts;
  opts.job.query_path = "queries.fa";
  EXPECT_THROW(mpiblast::run_mpiblast(cluster, 3, storage, opts),
               util::ContractViolation);
}

TEST(DriverFailures, MpiMismatchedRangesThrows) {
  const auto cluster = sim::ClusterConfig::ornl_altix();
  pario::ClusterStorage storage(cluster, 3);
  stage(storage, tiny().queries);
  const auto parts = seqdb::mpiformatdb(storage.shared(), tiny().db, "db",
                                        seqdb::SeqType::kProtein, "t", 2);
  mpiblast::MpiBlastOptions opts;
  opts.job.query_path = "queries.fa";
  opts.fragment_bases = parts.fragment_bases;
  opts.fragment_ranges = {};  // wrong on purpose
  opts.global_index = parts.global_index;
  EXPECT_THROW(mpiblast::run_mpiblast(cluster, 3, storage, opts),
               util::ContractViolation);
}

TEST(DriverFailures, MalformedQueryFileThrows) {
  const auto cluster = sim::ClusterConfig::ornl_altix();
  pario::ClusterStorage storage(cluster, 3);
  seqdb::format_db(storage.shared(), tiny().db, "db", seqdb::SeqType::kProtein,
                   "t");
  stage(storage, "this is not FASTA at all");
  pio::PioBlastOptions opts;
  opts.job.db_base = "db";
  opts.job.query_path = "queries.fa";
  EXPECT_THROW(pio::run_pioblast(cluster, 3, storage, opts),
               util::ContractViolation);
}

TEST(DriverTracing, PioRunCapturesPhaseStructure) {
  const auto cluster = sim::ClusterConfig::ornl_altix();
  const int nprocs = 3;
  pario::ClusterStorage storage(cluster, nprocs);
  stage(storage, tiny().queries);
  seqdb::format_db(storage.shared(), tiny().db, "db", seqdb::SeqType::kProtein,
                   "t");
  mpisim::Tracer tracer;
  pio::PioBlastOptions opts;
  opts.job.db_base = "db";
  opts.job.query_path = "queries.fa";
  opts.tracer = &tracer;
  pio::run_pioblast(cluster, nprocs, storage, opts);

  EXPECT_GT(tracer.size(), 10u);
  // Every worker passes through other -> input -> search -> output.
  for (int rank = 1; rank < nprocs; ++rank) {
    std::vector<std::string> phases;
    for (const auto& e : tracer.for_rank(rank))
      if (e.kind == mpisim::TraceKind::kPhase) phases.push_back(e.detail);
    ASSERT_GE(phases.size(), 4u) << "rank " << rank;
    EXPECT_EQ(phases[0], "other");
    EXPECT_EQ(phases[1], "input");
    EXPECT_NE(std::find(phases.begin(), phases.end(), "search"), phases.end());
    EXPECT_EQ(phases.back(), "output");
  }
}

TEST(DriverTracing, MpiRunCapturesFetchTraffic) {
  const auto cluster = sim::ClusterConfig::ornl_altix();
  const int nprocs = 3;
  pario::ClusterStorage storage(cluster, nprocs);
  stage(storage, tiny().queries);
  const auto parts = seqdb::mpiformatdb(storage.shared(), tiny().db, "db",
                                        seqdb::SeqType::kProtein, "t", 2);
  mpisim::Tracer tracer;
  mpiblast::MpiBlastOptions opts;
  opts.job.query_path = "queries.fa";
  opts.fragment_bases = parts.fragment_bases;
  opts.fragment_ranges = parts.ranges;
  opts.global_index = parts.global_index;
  opts.tracer = &tracer;
  const auto result = mpiblast::run_mpiblast(cluster, nprocs, storage, opts);

  // The master's serialized result fetching shows up as tag-3 sends.
  std::size_t fetch_requests = 0;
  for (const auto& e : tracer.for_rank(0)) {
    if (e.kind == mpisim::TraceKind::kSend &&
        e.detail.find("tag=3") != std::string::npos) {
      ++fetch_requests;
    }
  }
  // One fetch per reported alignment plus one end-of-query sentinel per
  // worker per query.
  EXPECT_GE(fetch_requests, result.alignments_reported);
}

}  // namespace
}  // namespace pioblast
