// Output-formatting tests: E-value rendering, query headers, alignment
// panels, and serialization of HSPs / candidate metadata.
#include <gtest/gtest.h>

#include "blast/engine.h"
#include "blast/format.h"
#include "blast/serialize.h"
#include "seqdb/alphabet.h"

namespace pioblast::blast {
namespace {

using seqdb::SeqType;

TEST(EvalueFormat, Regimes) {
  EXPECT_EQ(format_evalue(0.0), "0.0");
  EXPECT_EQ(format_evalue(1e-200), "0.0");
  EXPECT_EQ(format_evalue(3.2e-31), "3e-31");
  EXPECT_EQ(format_evalue(0.001), "0.001");
  EXPECT_EQ(format_evalue(2.54), "2.5");
  EXPECT_EQ(format_evalue(42.0), "42");
}

TEST(EvalueFormat, NoPaddedExponent) {
  EXPECT_EQ(format_evalue(1e-5), "1e-5");
  EXPECT_EQ(format_evalue(9.6e-100), "1e-99");
}

TEST(QueryHeader, ContainsStatsAndCommas) {
  seqdb::FastaRecord q{"query_1", "sampled from x", std::string(1234, 'A')};
  const GlobalDbStats db{987'654'321, 1'986'684};
  const std::string h = format_query_header(q, "synthetic nr", db, 7);
  EXPECT_NE(h.find("Query= query_1 sampled from x"), std::string::npos);
  EXPECT_NE(h.find("(1,234 letters)"), std::string::npos);
  EXPECT_NE(h.find("1,986,684 sequences"), std::string::npos);
  EXPECT_NE(h.find("987,654,321 total letters"), std::string::npos);
  EXPECT_NE(h.find("significant alignments: 7"), std::string::npos);
}

TEST(NoHits, Marker) {
  EXPECT_NE(format_no_hits().find("No hits found"), std::string::npos);
}

/// Builds a small identity HSP by hand.
Hsp identity_hsp(std::size_t len) {
  Hsp h;
  h.qstart = 0;
  h.qend = static_cast<std::uint32_t>(len);
  h.sstart = 0;
  h.send = len;
  h.score = static_cast<int>(4 * len);
  h.bits = 50.0;
  h.evalue = 1e-20;
  h.identities = static_cast<std::uint32_t>(len);
  h.positives = static_cast<std::uint32_t>(len);
  h.align_len = static_cast<std::uint32_t>(len);
  h.ops.assign(len, AlignOp::kMatch);
  return h;
}

TEST(AlignmentFormat, IdentityPanel) {
  const std::string seq = "MKVLAWERTY";
  const auto codes = seqdb::encode_sequence(SeqType::kProtein, seq);
  const auto m = ScoringMatrix::blosum62();
  const auto text = format_alignment(identity_hsp(seq.size()),
                                     SeqType::kProtein, codes, codes,
                                     "subj desc", 10, m);
  EXPECT_NE(text.find(">subj desc"), std::string::npos);
  EXPECT_NE(text.find("Length = 10"), std::string::npos);
  EXPECT_NE(text.find("Expect = 1e-20"), std::string::npos);
  EXPECT_NE(text.find("Identities = 10/10 (100%)"), std::string::npos);
  EXPECT_NE(text.find("Query: 1     " + seq + " 10"), std::string::npos);
  EXPECT_NE(text.find("Sbjct: 1     " + seq + " 10"), std::string::npos);
  // Identity midline repeats the residues for protein.
  EXPECT_NE(text.find("             " + seq), std::string::npos);
}

TEST(AlignmentFormat, GapColumnsRendered) {
  // Query MKVLAW vs subject MKAW with "VL" deleted from the subject.
  const auto q = seqdb::encode_sequence(SeqType::kProtein, "MKVLAW");
  const auto s = seqdb::encode_sequence(SeqType::kProtein, "MKAW");
  Hsp h;
  h.qstart = 0;
  h.qend = 6;
  h.sstart = 0;
  h.send = 4;
  h.score = 10;
  h.bits = 8.0;
  h.evalue = 0.5;
  h.align_len = 6;
  h.identities = 4;
  h.positives = 4;
  h.gaps = 2;
  h.ops = {AlignOp::kMatch, AlignOp::kMatch, AlignOp::kInsert, AlignOp::kInsert,
           AlignOp::kMatch, AlignOp::kMatch};
  const auto m = ScoringMatrix::blosum62();
  const auto text =
      format_alignment(h, SeqType::kProtein, q, s, "subj", 4, m);
  EXPECT_NE(text.find("Query: 1     MKVLAW 6"), std::string::npos);
  EXPECT_NE(text.find("Sbjct: 1     MK--AW 4"), std::string::npos);
  EXPECT_NE(text.find("Gaps = 2/6"), std::string::npos);
}

TEST(AlignmentFormat, WrapsAtSixtyColumns) {
  const std::string seq(150, 'M');
  const auto codes = seqdb::encode_sequence(SeqType::kProtein, seq);
  const auto m = ScoringMatrix::blosum62();
  const auto text = format_alignment(identity_hsp(150), SeqType::kProtein,
                                     codes, codes, "s", 150, m);
  // Three panels: 60 + 60 + 30.
  EXPECT_NE(text.find("Query: 1     "), std::string::npos);
  EXPECT_NE(text.find("Query: 61    "), std::string::npos);
  EXPECT_NE(text.find("Query: 121   "), std::string::npos);
  EXPECT_NE(text.find(" 150\n"), std::string::npos);
}

TEST(AlignmentFormat, DnaMidlineUsesBars) {
  const auto q = seqdb::encode_sequence(SeqType::kNucleotide, "ACGTACGT");
  const auto m = ScoringMatrix::dna();
  const auto text = format_alignment(identity_hsp(8), SeqType::kNucleotide, q,
                                     q, "nt subj", 8, m);
  EXPECT_NE(text.find("||||||||"), std::string::npos);
}

TEST(AlignmentFormat, PositiveSubstitutionGetsPlus) {
  // I vs L scores +2: midline shows '+'.
  const auto q = seqdb::encode_sequence(SeqType::kProtein, "WWWIWWW");
  const auto s = seqdb::encode_sequence(SeqType::kProtein, "WWWLWWW");
  Hsp h = identity_hsp(7);
  h.identities = 6;
  h.positives = 7;
  const auto m = ScoringMatrix::blosum62();
  const auto text = format_alignment(h, SeqType::kProtein, q, s, "s", 7, m);
  EXPECT_NE(text.find("WWW+WWW"), std::string::npos);
}

// ---------- tabular format ----------------------------------------------------

TEST(TabularFormat, DeflineIdTakesFirstToken) {
  EXPECT_EQ(defline_id("abc|123 some description"), "abc|123");
  EXPECT_EQ(defline_id("bare"), "bare");
  EXPECT_EQ(defline_id("tabbed\tdesc"), "tabbed");
}

TEST(TabularFormat, LineFieldsMatchHsp) {
  Hsp h = identity_hsp(10);
  h.evalue = 2e-9;
  h.bits = 42.35;
  const std::string line =
      format_tabular_line(h, "query_7", "subj|9 a homolog");
  // qid sid pident len mism gapopen qs qe ss se evalue bits
  EXPECT_EQ(line,
            "query_7\tsubj|9\t100.00\t10\t0\t0\t1\t10\t1\t10\t2e-9\t42.4\n");
}

TEST(TabularFormat, GapOpeningsCountRuns) {
  Hsp h = identity_hsp(8);
  h.ops = {AlignOp::kMatch,  AlignOp::kInsert, AlignOp::kInsert,
           AlignOp::kMatch,  AlignOp::kDelete, AlignOp::kMatch,
           AlignOp::kInsert, AlignOp::kMatch};
  h.align_len = 8;
  h.gaps = 4;
  h.identities = 4;
  const std::string line = format_tabular_line(h, "q", "s");
  // Fields: ... length=8, mismatches=0, gap openings=3 (maximal indel runs).
  EXPECT_NE(line.find("\t8\t0\t3\t"), std::string::npos) << line;
}

TEST(TabularFormat, QueryHeaderHasFieldsComment) {
  seqdb::FastaRecord q{"q1", "", "MKV"};
  const std::string h = format_tabular_query_header(q, "mydb", 3);
  EXPECT_NE(h.find("# Query: q1"), std::string::npos);
  EXPECT_NE(h.find("# Database: mydb"), std::string::npos);
  EXPECT_NE(h.find("# Fields:"), std::string::npos);
  EXPECT_NE(h.find("# 3 hits found"), std::string::npos);
}

// ---------- serialization ----------------------------------------------------

TEST(Serialize, HspRoundTrip) {
  Hsp h = identity_hsp(12);
  h.query_id = 3;
  h.subject_global_id = 42;
  h.evalue = 1.5e-7;
  h.ops = {AlignOp::kMatch, AlignOp::kInsert, AlignOp::kDelete, AlignOp::kMatch};
  mpisim::Encoder enc;
  encode_hsp(enc, h);
  mpisim::Decoder dec(enc.bytes());
  const Hsp back = decode_hsp(dec);
  EXPECT_EQ(back.query_id, h.query_id);
  EXPECT_EQ(back.subject_global_id, h.subject_global_id);
  EXPECT_EQ(back.score, h.score);
  EXPECT_DOUBLE_EQ(back.evalue, h.evalue);
  EXPECT_EQ(back.ops, h.ops);
  EXPECT_TRUE(dec.exhausted());
}

TEST(Serialize, CandidateRoundTripAndSize) {
  CandidateMeta c;
  c.query_id = 1;
  c.local_index = 9;
  c.subject_global_id = 77;
  c.score = 1234;
  c.owner = 5;
  c.evalue = 2e-9;
  c.output_size = 1536;
  c.qstart = 10;
  c.sstart32 = 20;
  mpisim::Encoder enc;
  encode_candidate(enc, c);
  // The lean record must stay small and fixed-size — this is the paper's
  // message-volume reduction.
  EXPECT_EQ(enc.size(), 48u);
  mpisim::Decoder dec(enc.bytes());
  const CandidateMeta back = decode_candidate(dec);
  EXPECT_EQ(back.local_index, c.local_index);
  EXPECT_EQ(back.output_size, c.output_size);
  EXPECT_EQ(back.owner, c.owner);
  EXPECT_DOUBLE_EQ(back.evalue, c.evalue);
}

TEST(Serialize, CandidateIsMuchSmallerThanHsp) {
  Hsp h = identity_hsp(400);  // realistic alignment length
  mpisim::Encoder full;
  encode_hsp(full, h);
  CandidateMeta c;
  mpisim::Encoder lean;
  encode_candidate(lean, c);
  EXPECT_GT(full.size(), 5 * lean.size());
}

TEST(Serialize, CandidateOrderMatchesHspOrder) {
  auto meta_of = [](const Hsp& h) {
    CandidateMeta c;
    c.score = h.score;
    c.evalue = h.evalue;
    c.subject_global_id = h.subject_global_id;
    c.qstart = h.qstart;
    c.sstart32 = static_cast<std::uint32_t>(h.sstart);
    return c;
  };
  Hsp a = identity_hsp(10);
  Hsp b = identity_hsp(10);
  b.score = a.score - 1;
  EXPECT_EQ(Hsp::better(a, b), CandidateMeta::better(meta_of(a), meta_of(b)));
  b.score = a.score;
  b.subject_global_id = a.subject_global_id + 1;
  EXPECT_EQ(Hsp::better(a, b), CandidateMeta::better(meta_of(a), meta_of(b)));
}

}  // namespace
}  // namespace pioblast::blast
