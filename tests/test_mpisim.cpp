// Tests for the message-passing runtime: mailbox matching, wire
// serialization, point-to-point timing semantics, collectives, failure
// poisoning, and virtual-clock behaviour under communication.
#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <numeric>
#include <thread>

#include "mpisim/mailbox.h"
#include "mpisim/runtime.h"
#include "mpisim/wire.h"
#include "util/error.h"

namespace pioblast::mpisim {
namespace {

sim::ClusterConfig test_cluster() { return sim::ClusterConfig::ornl_altix(); }

std::vector<std::uint8_t> bytes_of(const std::string& s) {
  return {s.begin(), s.end()};
}

// ---------- wire --------------------------------------------------------

TEST(Wire, RoundTripsScalarsStringsVectors) {
  Encoder enc;
  enc.put<std::uint32_t>(7).put<double>(2.5).put_string("hello");
  enc.put_vector(std::vector<std::uint64_t>{1, 2, 3});
  Decoder dec(enc.bytes());
  EXPECT_EQ(dec.get<std::uint32_t>(), 7u);
  EXPECT_DOUBLE_EQ(dec.get<double>(), 2.5);
  EXPECT_EQ(dec.get_string(), "hello");
  EXPECT_EQ(dec.get_vector<std::uint64_t>(), (std::vector<std::uint64_t>{1, 2, 3}));
  EXPECT_TRUE(dec.exhausted());
}

TEST(Wire, DecodePastEndThrows) {
  Encoder enc;
  enc.put<std::uint16_t>(1);
  Decoder dec(enc.bytes());
  EXPECT_THROW(dec.get<std::uint64_t>(), util::ContractViolation);
}

TEST(Wire, EmptyBytesRoundTrip) {
  Encoder enc;
  enc.put_bytes({});
  Decoder dec(enc.bytes());
  EXPECT_TRUE(dec.get_bytes().empty());
}

TEST(Wire, RemainingTracksPosition) {
  Encoder enc;
  enc.put<std::uint32_t>(1).put<std::uint32_t>(2);
  Decoder dec(enc.bytes());
  EXPECT_EQ(dec.remaining(), 8u);
  dec.get<std::uint32_t>();
  EXPECT_EQ(dec.remaining(), 4u);
}

// ---------- mailbox ------------------------------------------------------

TEST(Mailbox, MatchesByTagAndSource) {
  Mailbox mb;
  mb.push({1, 10, 0.0, bytes_of("a")});
  mb.push({2, 20, 0.0, bytes_of("b")});
  const Message m = mb.pop(2, 20);
  EXPECT_EQ(m.src, 2);
  EXPECT_EQ(mb.pending(), 1u);
}

TEST(Mailbox, AnySourcePicksEarliestArrival) {
  Mailbox mb;
  mb.push({1, 5, 3.0, {}});
  mb.push({2, 5, 1.0, {}});
  mb.push({3, 5, 2.0, {}});
  EXPECT_EQ(mb.pop(kAnySource, 5).src, 2);
  EXPECT_EQ(mb.pop(kAnySource, 5).src, 3);
  EXPECT_EQ(mb.pop(kAnySource, 5).src, 1);
}

TEST(Mailbox, AnySourceTieBreaksBySenderRank) {
  Mailbox mb;
  mb.push({7, 5, 1.0, {}});
  mb.push({3, 5, 1.0, {}});
  EXPECT_EQ(mb.pop(kAnySource, 5).src, 3);
}

TEST(Mailbox, PerSenderFifoOrderPreserved) {
  Mailbox mb;
  mb.push({1, 5, 2.0, bytes_of("first")});
  mb.push({1, 5, 1.0, bytes_of("second")});  // arrival out of order
  // Point-to-point matching takes the first *queued* message (MPI FIFO).
  const Message m = mb.pop(1, 5);
  EXPECT_EQ(std::string(m.payload.begin(), m.payload.end()), "first");
}

TEST(Mailbox, TryPopReturnsNulloptWhenNoMatch) {
  Mailbox mb;
  mb.push({1, 5, 0.0, {}});
  EXPECT_FALSE(mb.try_pop(1, 99).has_value());
  EXPECT_TRUE(mb.try_pop(1, 5).has_value());
}

TEST(Mailbox, PoisonUnblocksWithError) {
  Mailbox mb;
  mb.poison();
  EXPECT_THROW(mb.pop(1, 1), util::RuntimeError);
}

TEST(Mailbox, TryPopMissLeavesQueueIntactAndHitDrains) {
  Mailbox mb;
  mb.push({1, 5, 0.0, bytes_of("x")});
  EXPECT_FALSE(mb.try_pop(2, 5).has_value());  // wrong source
  EXPECT_FALSE(mb.try_pop(1, 6).has_value());  // wrong tag
  EXPECT_EQ(mb.pending(), 1u);
  const auto m = mb.try_pop(kAnySource, 5);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->src, 1);
  EXPECT_EQ(mb.pending(), 0u);
  EXPECT_FALSE(mb.try_pop(kAnySource, 5).has_value());  // now empty
}

TEST(Mailbox, PoisonRacesBlockedPop) {
  // The poison must wake a pop that is already asleep in the cv wait, not
  // just reject future calls.
  Mailbox mb;
  std::thread receiver([&] {
    EXPECT_THROW(mb.pop(1, 1), util::RuntimeError);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  mb.poison();
  receiver.join();
}

TEST(Mailbox, VerifyPoisonCarriesReasonAsVerifyError) {
  Mailbox mb;
  mb.poison("protocol verifier: test report", /*verify_failure=*/true);
  try {
    mb.pop(1, 1);
    FAIL() << "poisoned pop returned";
  } catch (const VerifyError& e) {
    EXPECT_STREQ(e.what(), "protocol verifier: test report");
  }
}

TEST(Mailbox, FirstPoisonReasonWins) {
  Mailbox mb;
  mb.poison("first reason");
  mb.poison("second reason");
  try {
    mb.pop(1, 1);
    FAIL() << "poisoned pop returned";
  } catch (const util::RuntimeError& e) {
    EXPECT_STREQ(e.what(), "first reason");
  }
}

TEST(Mailbox, AnySourceEqualArrivalPrefersLowestSender) {
  Mailbox mb;
  mb.push({4, 5, 2.0, {}});
  mb.push({2, 5, 2.0, {}});
  mb.push({3, 5, 2.0, {}});
  EXPECT_EQ(mb.pop(kAnySource, 5).src, 2);
  EXPECT_EQ(mb.pop(kAnySource, 5).src, 3);
  EXPECT_EQ(mb.pop(kAnySource, 5).src, 4);
}

TEST(Mailbox, AnySourceEqualArrivalSameSenderIsFifo) {
  Mailbox mb;
  mb.push({1, 5, 2.0, bytes_of("first")});
  mb.push({1, 5, 2.0, bytes_of("second")});
  const Message m = mb.pop(kAnySource, 5);
  EXPECT_EQ(std::string(m.payload.begin(), m.payload.end()), "first");
}

TEST(Mailbox, PendingInfoDescribesQueuedMessages) {
  Mailbox mb;
  mb.push({1, 5, 0.0, bytes_of("abc")});
  mb.push({2, 9, 0.0, bytes_of("defgh")});
  const auto infos = mb.pending_info();
  ASSERT_EQ(infos.size(), 2u);
  EXPECT_EQ(infos[0].src, 1);
  EXPECT_EQ(infos[0].tag, 5);
  EXPECT_EQ(infos[0].bytes, 3u);
  EXPECT_EQ(infos[1].src, 2);
  EXPECT_EQ(infos[1].tag, 9);
  EXPECT_EQ(infos[1].bytes, 5u);
}

TEST(Mailbox, HasMatchChecksWithoutDraining) {
  Mailbox mb;
  mb.push({1, 5, 0.0, {}});
  EXPECT_TRUE(mb.has_match(1, 5));
  EXPECT_TRUE(mb.has_match(kAnySource, 5));
  EXPECT_FALSE(mb.has_match(2, 5));
  EXPECT_FALSE(mb.has_match(1, 6));
  EXPECT_EQ(mb.pending(), 1u);
}

// ---------- runtime / process --------------------------------------------

TEST(Runtime, SingleRankRuns) {
  const auto report = run(1, test_cluster(), [](Process& p) {
    p.compute(2.0);
    EXPECT_EQ(p.rank(), 0);
    EXPECT_EQ(p.size(), 1);
  });
  EXPECT_DOUBLE_EQ(report.makespan(), 2.0);
}

TEST(Runtime, SendRecvMovesDataAndAdvancesClocks) {
  const auto report = run(2, test_cluster(), [](Process& p) {
    if (p.rank() == 0) {
      p.compute(1.0);
      const std::string msg = "payload";
      p.send(1, 7, std::span(reinterpret_cast<const std::uint8_t*>(msg.data()),
                             msg.size()));
    } else {
      const Message m = p.recv(0, 7);
      EXPECT_EQ(std::string(m.payload.begin(), m.payload.end()), "payload");
      // The receiver cannot complete before the sender's injection time
      // plus wire latency.
      EXPECT_GT(p.now(), 1.0);
    }
  });
  EXPECT_GT(report.ranks[1].final_clock, report.ranks[0].final_clock);
}

TEST(Runtime, RecvWaitsForVirtualArrival) {
  const auto report = run(2, test_cluster(), [](Process& p) {
    if (p.rank() == 0) {
      p.compute(5.0);  // sender is virtually late
      p.send_value<int>(1, 1, 42);
    } else {
      EXPECT_EQ(p.recv_value<int>(0, 1), 42);
      EXPECT_GE(p.now(), 5.0);  // clock max-merged with arrival
    }
  });
  (void)report;
}

TEST(Runtime, TypedSendRecvRoundTrips) {
  run(2, test_cluster(), [](Process& p) {
    struct Payload {
      int a;
      double b;
    };
    if (p.rank() == 0) {
      p.send_value(1, 3, Payload{5, 1.25});
    } else {
      const auto v = p.recv_value<Payload>(0, 3);
      EXPECT_EQ(v.a, 5);
      EXPECT_DOUBLE_EQ(v.b, 1.25);
    }
  });
}

TEST(Runtime, SendToSelfIsRejected) {
  EXPECT_THROW(run(2, test_cluster(),
                   [](Process& p) {
                     if (p.rank() == 0) p.send(0, 1, {});
                   }),
               util::ContractViolation);
}

TEST(Runtime, BarrierSynchronizesClocks) {
  const auto report = run(4, test_cluster(), [](Process& p) {
    p.compute(p.rank() * 1.0);  // ranks arrive at different times
    p.barrier();
    EXPECT_GE(p.now(), 3.0);  // nobody leaves before the slowest arrival
  });
  for (const auto& r : report.ranks) EXPECT_GE(r.final_clock, 3.0);
}

TEST(Runtime, BcastDeliversToAllRanksFromAnyRoot) {
  for (int root = 0; root < 3; ++root) {
    run(5, test_cluster(), [root](Process& p) {
      std::vector<std::uint8_t> data;
      if (p.rank() == root) data = {1, 2, 3, 4};
      p.bcast(data, root);
      EXPECT_EQ(data, (std::vector<std::uint8_t>{1, 2, 3, 4}));
    });
  }
}

TEST(Runtime, BcastLargePayload) {
  run(7, test_cluster(), [](Process& p) {
    std::vector<std::uint8_t> data;
    if (p.rank() == 0) {
      data.resize(1 << 20);
      for (std::size_t i = 0; i < data.size(); ++i)
        data[i] = static_cast<std::uint8_t>(i * 31);
    }
    p.bcast(data, 0);
    ASSERT_EQ(data.size(), 1u << 20);
    EXPECT_EQ(data[12345], static_cast<std::uint8_t>(12345 * 31));
  });
}

TEST(Runtime, GatherCollectsRankOrdered) {
  run(4, test_cluster(), [](Process& p) {
    const std::uint8_t mine = static_cast<std::uint8_t>(p.rank() * 10);
    auto gathered = p.gather(std::span(&mine, 1), 0);
    if (p.rank() == 0) {
      ASSERT_EQ(gathered.size(), 4u);
      for (int r = 0; r < 4; ++r) {
        ASSERT_EQ(gathered[static_cast<std::size_t>(r)].size(), 1u);
        EXPECT_EQ(gathered[static_cast<std::size_t>(r)][0], r * 10);
      }
    } else {
      EXPECT_TRUE(gathered.empty());
    }
  });
}

TEST(Runtime, AllreduceMaxAgreesEverywhere) {
  run(6, test_cluster(), [](Process& p) {
    const double result = p.allreduce_max(static_cast<double>(p.rank()));
    EXPECT_DOUBLE_EQ(result, 5.0);
  });
}

TEST(Runtime, WorkerExceptionPropagatesAndUnblocksPeers) {
  EXPECT_THROW(run(3, test_cluster(),
                   [](Process& p) {
                     if (p.rank() == 2) {
                       throw util::RuntimeError("worker exploded");
                     }
                     // Other ranks block forever on a message that will
                     // never come; poisoning must unblock them.
                     p.recv(2, 99);
                   }),
               util::RuntimeError);
}

TEST(Runtime, PhaseAccountingSplitsTimeline) {
  const auto report = run(1, test_cluster(), [](Process& p) {
    p.set_phase("alpha");
    p.compute(2.0);
    p.set_phase("beta");
    p.compute(3.0);
  });
  EXPECT_DOUBLE_EQ(report.ranks[0].phases.get("alpha"), 2.0);
  EXPECT_DOUBLE_EQ(report.ranks[0].phases.get("beta"), 3.0);
}

TEST(Runtime, MessageAccountingCounts) {
  const auto report = run(2, test_cluster(), [](Process& p) {
    if (p.rank() == 0) {
      p.send(1, 1, std::vector<std::uint8_t>(100));
      p.send(1, 1, std::vector<std::uint8_t>(50));
    } else {
      p.recv(0, 1);
      p.recv(0, 1);
    }
  });
  EXPECT_EQ(report.ranks[0].messages_sent, 2u);
  EXPECT_EQ(report.ranks[0].bytes_sent, 150u);
}

TEST(Runtime, DeterministicTimingsAcrossRuns) {
  auto job = [](Process& p) {
    p.compute(0.001 * (p.rank() + 1));
    p.barrier();
    std::vector<std::uint8_t> data(10000);
    p.bcast(data, 0);
    auto g = p.gather(std::span(data.data(), 100), 0);
    p.barrier();
  };
  const auto a = run(8, test_cluster(), job);
  const auto b = run(8, test_cluster(), job);
  for (int r = 0; r < 8; ++r) {
    EXPECT_DOUBLE_EQ(a.ranks[static_cast<std::size_t>(r)].final_clock,
                     b.ranks[static_cast<std::size_t>(r)].final_clock);
  }
}

TEST(RunReport, PhaseQueriesAggregate) {
  const auto report = run(3, test_cluster(), [](Process& p) {
    p.set_phase("work");
    p.compute(1.0 + p.rank());
  });
  EXPECT_DOUBLE_EQ(report.phase_total("work"), 1.0 + 2.0 + 3.0);
  EXPECT_DOUBLE_EQ(report.phase_of(2, "work"), 3.0);
  EXPECT_DOUBLE_EQ(report.phase_of(2, "missing"), 0.0);
  EXPECT_DOUBLE_EQ(report.makespan(), 3.0);
}

}  // namespace
}  // namespace pioblast::mpisim
