// The protocol spec tables: mpiBLAST, pioBLAST, and the two pario
// exchange cores, written against the implementations in
// driver/work_queue.h, mpiblast/mpiblast.cpp, pioblast/pioblast.cpp, and
// pario/collective.cpp. Every observable action of those code paths (in
// the driver tag band, plus the fault notice) appears here as an edge;
// tests/test_protospec.cpp holds the machines to account by replaying
// real traces against them.
#include "protospec/spec.h"

#include <map>
#include <set>
#include <string>

#include "driver/messages.h"
#include "driver/tags.h"
#include "mpisim/fault.h"
#include "pario/collective.h"

namespace pioblast::protospec {
namespace {

using driver::kTagAssign;
using driver::kTagFetchReq;
using driver::kTagFetchResp;
using driver::kTagRanges;
using driver::kTagSelect;
using driver::kTagWorkReq;

constexpr std::uint64_t kStampFetchReq =
    mpisim::type_stamp<driver::FetchRequest>().fp;
constexpr std::uint64_t kStampFetchResp =
    mpisim::type_stamp<driver::FetchResponse>().fp;
constexpr std::uint64_t kStampRanges =
    mpisim::type_stamp<driver::RangeAssignment>().fp;
constexpr std::uint64_t kStampSelect =
    mpisim::type_stamp<driver::OutputSelection>().fp;

// Wire sizes (driver/work_queue.h, driver/messages.h): a retirement reply
// is exactly one byte (u8 0); a task reply is u8 1 + u32 id + optional
// payload; a FetchRequest is one u32 in both flavors.
constexpr std::uint32_t kRetireBytes = 1;
constexpr std::uint32_t kTaskMinBytes = 5;
constexpr std::uint32_t kFetchReqBytes = 4;

// --------------------------------------------------------------------------
// Shared guard/effect helpers.

bool flag(const Ctx& c, int rank, std::uint8_t bit) {
  return (c.env->f[rank] & bit) != 0;
}

int last_src(const Ctx& c) { return c.env->c[kCLastSrc]; }

bool unbounded_tasks(const Ctx& c) { return c.params->tasks < 0; }

bool has_tasks(const Ctx& c) {
  return unbounded_tasks(c) || c.env->c[kCTasks] > 0;
}

// "The scheduler had nothing for this worker." With exact bounds that is
// `tasks left == 0`; the permissive monitor also allows it earlier, since
// a non-greedy scheduler may withhold tasks from a specific worker.
bool out_of_tasks(const Ctx& c) {
  if (!c.strict) return true;
  return !unbounded_tasks(c) && c.env->c[kCTasks] <= 0;
}

bool any_busy_except(const Ctx& c, int w) {
  for (int v = 1; v < c.nranks; ++v)
    if (v != w && flag(c, v, kFBusy) && !flag(c, v, kFDead)) return true;
  return false;
}

bool any_crashed(const Ctx& c) {
  if (c.crashed == nullptr) return false;
  for (int r = 1; r < c.nranks; ++r)
    if (c.crashed[r] != 0) return true;
  return false;
}

void do_assign(Ctx& c, int w) {
  c.env->hist[w] = static_cast<std::int16_t>(c.env->hist[w] + 1);
  c.env->f[w] |= kFBusy;
  --c.env->c[kCTasks];
}

void do_retire(Ctx& c, int w) {
  c.env->f[w] |= kFRetired;
  --c.env->c[kCActive];
}

// work_queue.h handle_death: mark dead, unpark, clear busy, drop from the
// active count unless already retired, and requeue the full history (the
// worker's results die with it even after retirement).
void do_handle_death(Ctx& c, int w) {
  if (flag(c, w, kFDead)) return;
  c.env->f[w] |= kFDead;
  c.env->f[w] &= static_cast<std::uint8_t>(~(kFBusy | kFParked));
  if (!flag(c, w, kFRetired)) --c.env->c[kCActive];
  c.env->c[kCTasks] += c.env->hist[w];
  c.env->hist[w] = 0;
}

bool more_queries(const Ctx& c) {
  return c.params->queries < 0 || c.env->c[kCQuery] < c.params->queries;
}

bool queries_done(const Ctx& c) {
  if (c.params->queries < 0) return !c.strict;
  return c.env->c[kCQuery] >= c.params->queries;
}

// --------------------------------------------------------------------------
// serve_work master segment (work_queue.h): states loop -> dispatch ->
// drain, shared verbatim between the mpiBLAST master and the pioBLAST
// dynamic master.

void e_serve_req(Ctx& c) {
  c.env->c[kCLastSrc] = c.peer;
  c.env->f[c.peer] &= static_cast<std::uint8_t>(~kFBusy);
}

void e_serve_notice(Ctx& c) { do_handle_death(c, c.peer); }

bool g_disp_dead(const Ctx& c) { return flag(c, last_src(c), kFDead); }

bool g_disp_stray(const Ctx& c) {
  return !flag(c, last_src(c), kFDead) && flag(c, last_src(c), kFRetired);
}

bool g_disp_assign(const Ctx& c) {
  return !flag(c, last_src(c), kFDead) && !flag(c, last_src(c), kFRetired) &&
         has_tasks(c);
}

bool g_disp_park(const Ctx& c) {
  return !flag(c, last_src(c), kFDead) && !flag(c, last_src(c), kFRetired) &&
         out_of_tasks(c) && c.params->fault_tolerant &&
         any_busy_except(c, last_src(c));
}

bool g_disp_retire(const Ctx& c) {
  return !flag(c, last_src(c), kFDead) && !flag(c, last_src(c), kFRetired) &&
         out_of_tasks(c) &&
         !(c.params->fault_tolerant && any_busy_except(c, last_src(c)));
}

void e_disp_assign(Ctx& c) { do_assign(c, last_src(c)); }
void e_disp_park(Ctx& c) { c.env->f[last_src(c)] |= kFParked; }
void e_disp_retire(Ctx& c) { do_retire(c, last_src(c)); }

bool g_drain_assign(const Ctx& c) {
  return flag(c, c.peer, kFParked) && has_tasks(c);
}

bool g_drain_retire(const Ctx& c) {
  return flag(c, c.peer, kFParked) && out_of_tasks(c) &&
         !any_busy_except(c, c.peer);
}

void e_drain_assign(Ctx& c) {
  c.env->f[c.peer] &= static_cast<std::uint8_t>(~kFParked);
  do_assign(c, c.peer);
}

void e_drain_retire(Ctx& c) {
  c.env->f[c.peer] &= static_cast<std::uint8_t>(~kFParked);
  do_retire(c, c.peer);
}

bool g_drain_done(const Ctx& c) {
  if (!c.strict) return true;
  for (int w = 1; w < c.nranks; ++w) {
    if (!flag(c, w, kFParked)) continue;
    if (has_tasks(c) || !any_busy_except(c, w)) return false;
  }
  return true;
}

bool g_serve_exit(const Ctx& c) { return c.env->c[kCActive] <= 0; }

// Appends the serve_work trio to a master role. `task_min` is the minimum
// task-reply size (the driver may append a task payload).
void append_serve_work(std::vector<Edge>& e, int s_loop, int s_dispatch,
                       int s_drain, int s_exit, std::uint32_t task_min) {
  const auto loop = static_cast<std::int16_t>(s_loop);
  const auto disp = static_cast<std::int16_t>(s_dispatch);
  const auto drain = static_cast<std::int16_t>(s_drain);
  const auto exit = static_cast<std::int16_t>(s_exit);
  e.push_back({.name = "serve_req", .from = loop, .to = disp, .op = Op::kRecv,
               .tag = kTagWorkReq, .flavor = kAnyFlavor,
               .peer = PeerSel::kAnyWorker, .max_bytes = 0,
               .effect = e_serve_req});
  e.push_back({.name = "serve_notice", .from = loop, .to = drain,
               .op = Op::kRecv, .tag = mpisim::kTagFaultNotice,
               .flavor = kAnyFlavor, .peer = PeerSel::kAnyWorker,
               .effect = e_serve_notice});
  e.push_back({.name = "serve_exit", .from = loop, .to = exit, .op = Op::kTau,
               .guard = g_serve_exit});
  e.push_back({.name = "disp_dead", .from = disp, .to = loop, .op = Op::kTau,
               .guard = g_disp_dead});
  e.push_back({.name = "disp_stray_retire", .from = disp, .to = loop,
               .op = Op::kSend, .tag = kTagAssign, .flavor = kAssignRetire,
               .peer = PeerSel::kLastSrc, .min_bytes = kRetireBytes,
               .max_bytes = kRetireBytes, .guard = g_disp_stray});
  e.push_back({.name = "disp_assign", .from = disp, .to = drain,
               .op = Op::kSend, .tag = kTagAssign, .flavor = kAssignTask,
               .peer = PeerSel::kLastSrc, .min_bytes = task_min,
               .guard = g_disp_assign, .effect = e_disp_assign});
  e.push_back({.name = "disp_park", .from = disp, .to = drain, .op = Op::kTau,
               .guard = g_disp_park, .effect = e_disp_park});
  e.push_back({.name = "disp_retire", .from = disp, .to = drain,
               .op = Op::kSend, .tag = kTagAssign, .flavor = kAssignRetire,
               .peer = PeerSel::kLastSrc, .min_bytes = kRetireBytes,
               .max_bytes = kRetireBytes, .guard = g_disp_retire,
               .effect = e_disp_retire});
  e.push_back({.name = "drain_assign", .from = drain, .to = drain,
               .op = Op::kSend, .tag = kTagAssign, .flavor = kAssignTask,
               .peer = PeerSel::kAnyWorker, .min_bytes = task_min,
               .guard = g_drain_assign, .effect = e_drain_assign});
  e.push_back({.name = "drain_retire", .from = drain, .to = drain,
               .op = Op::kSend, .tag = kTagAssign, .flavor = kAssignRetire,
               .peer = PeerSel::kAnyWorker, .min_bytes = kRetireBytes,
               .max_bytes = kRetireBytes, .guard = g_drain_retire,
               .effect = e_drain_retire});
  e.push_back({.name = "drain_done", .from = drain, .to = loop, .op = Op::kTau,
               .guard = g_drain_done});
}

// Worker request/assign loop (work_queue.h request_work).
void append_request_loop(std::vector<Edge>& e, int s_req, int s_assign,
                         int s_exit, std::uint32_t task_min) {
  const auto req = static_cast<std::int16_t>(s_req);
  const auto asg = static_cast<std::int16_t>(s_assign);
  const auto exit = static_cast<std::int16_t>(s_exit);
  e.push_back({.name = "work_req", .from = req, .to = asg, .op = Op::kSend,
               .tag = kTagWorkReq, .peer = PeerSel::kMaster, .max_bytes = 0});
  e.push_back({.name = "assign_task", .from = asg, .to = req, .op = Op::kRecv,
               .tag = kTagAssign, .flavor = kAssignTask,
               .peer = PeerSel::kMaster, .min_bytes = task_min});
  e.push_back({.name = "assign_retire", .from = asg, .to = exit,
               .op = Op::kRecv, .tag = kTagAssign, .flavor = kAssignRetire,
               .peer = PeerSel::kMaster, .min_bytes = kRetireBytes,
               .max_bytes = kRetireBytes});
}

// --------------------------------------------------------------------------
// mpiBLAST (paper Figure 2): serve_work scheduling, then per query a
// candidate gather, serialized fetch round trips, and an end-of-query
// fan-out to every worker.

enum MState : int {
  kMInit, kMLoop, kMDispatch, kMDrain, kMQLoop, kMFetch, kMFetchWait,
  kMFanout, kMFinal, kMAccept, kMCount,
};

const char* m_state_name(int s) {
  static constexpr const char* kNames[kMCount] = {
      "init_bcast", "serve_loop", "serve_dispatch", "serve_drain",
      "query_loop", "fetch", "fetch_wait", "end_fanout", "final_barrier",
      "accept"};
  return s >= 0 && s < kMCount ? kNames[s] : nullptr;
}

void m_init_env(Env& e, const SpecParams& p, int /*self*/) {
  e.c[kCTasks] = p.tasks < 0 ? 0 : p.tasks;
  e.c[kCActive] = p.nranks - 1;
}

void e_begin_output(Ctx& c) {
  c.env->c[kCQuery] = 0;
  c.env->c[kCAux] = 0;
}

bool g_fetch_more(const Ctx& c) {
  return c.params->fetch_cap < 0 || c.env->c[kCAux] < c.params->fetch_cap;
}

bool g_fetch_done(const Ctx& c) {
  if (c.params->fetch_cap < 0) return !c.strict;
  return c.env->c[kCAux] >= c.params->fetch_cap;
}

void e_fetch(Ctx& c) {
  c.env->c[kCLastSrc] = c.peer;
  ++c.env->c[kCAux];
}

void e_fanout_begin(Ctx& c) { c.env->c[kCIter] = 1; }

bool g_iter_more(const Ctx& c) { return c.env->c[kCIter] < c.nranks; }
bool g_iter_done(const Ctx& c) { return c.env->c[kCIter] >= c.nranks; }
void e_iter_next(Ctx& c) { ++c.env->c[kCIter]; }

void e_next_query(Ctx& c) {
  ++c.env->c[kCQuery];
  c.env->c[kCAux] = 0;
}

Role mpiblast_master() {
  Role r;
  r.name = "master";
  r.nstates = kMCount;
  r.initial = kMInit;
  r.accept = kMAccept;
  r.init_env = m_init_env;
  r.state_name = m_state_name;
  r.edges.push_back({.name = "init_bcast", .from = kMInit, .to = kMLoop,
                     .op = Op::kCollective, .coll = "bcast"});
  append_serve_work(r.edges, kMLoop, kMDispatch, kMDrain, kMQLoop,
                    kTaskMinBytes);
  // The serve_exit edge lands in kMQLoop; reset the output counters there.
  for (Edge& e : r.edges)
    if (std::string(e.name) == "serve_exit") e.effect = e_begin_output;
  r.edges.push_back({.name = "query_gather", .from = kMQLoop, .to = kMFetch,
                     .op = Op::kCollective, .coll = "gather",
                     .guard = more_queries});
  r.edges.push_back({.name = "queries_done", .from = kMQLoop, .to = kMFinal,
                     .op = Op::kTau, .guard = queries_done});
  r.edges.push_back({.name = "fetch_req", .from = kMFetch, .to = kMFetchWait,
                     .op = Op::kSend, .tag = kTagFetchReq,
                     .flavor = kFetchData, .peer = PeerSel::kAnyWorker,
                     .stamp = kStampFetchReq, .min_bytes = kFetchReqBytes,
                     .max_bytes = kFetchReqBytes, .guard = g_fetch_more,
                     .effect = e_fetch});
  r.edges.push_back({.name = "fetch_done", .from = kMFetch, .to = kMFanout,
                     .op = Op::kTau, .guard = g_fetch_done,
                     .effect = e_fanout_begin});
  r.edges.push_back({.name = "fetch_resp", .from = kMFetchWait, .to = kMFetch,
                     .op = Op::kRecv, .tag = kTagFetchResp,
                     .flavor = kAnyFlavor, .peer = PeerSel::kLastSrc,
                     .stamp = kStampFetchResp});
  r.edges.push_back({.name = "fetch_lost", .from = kMFetchWait, .to = kMFetch,
                     .op = Op::kTau, .tag = kTagFetchResp,
                     .peer = PeerSel::kLastSrc, .lost_peer_escape = true});
  r.edges.push_back({.name = "end_fanout", .from = kMFanout, .to = kMFanout,
                     .op = Op::kSend, .tag = kTagFetchReq, .flavor = kFetchEnd,
                     .peer = PeerSel::kIter, .stamp = kStampFetchReq,
                     .min_bytes = kFetchReqBytes, .max_bytes = kFetchReqBytes,
                     .guard = g_iter_more, .effect = e_iter_next});
  r.edges.push_back({.name = "fanout_done", .from = kMFanout, .to = kMQLoop,
                     .op = Op::kTau, .guard = g_iter_done,
                     .effect = e_next_query});
  r.edges.push_back({.name = "final_drain", .from = kMFinal, .to = kMFinal,
                     .op = Op::kRecv, .tag = mpisim::kTagFaultNotice,
                     .flavor = kAnyFlavor, .peer = PeerSel::kAnyWorker,
                     .silent = true});
  r.edges.push_back({.name = "final_barrier", .from = kMFinal, .to = kMAccept,
                     .op = Op::kCollective, .coll = "barrier"});
  return r;
}

enum WState : int {
  kWInit, kWReq, kWAssign, kWQLoop, kWServe, kWResp, kWFinal, kWAccept,
  kWCount,
};

const char* w_state_name(int s) {
  static constexpr const char* kNames[kWCount] = {
      "init_bcast", "work_req", "assign_wait", "query_loop", "serve_fetch",
      "send_resp", "final_barrier", "accept"};
  return s >= 0 && s < kWCount ? kNames[s] : nullptr;
}

void e_w_next_query(Ctx& c) { ++c.env->c[kCQuery]; }

Role mpiblast_worker() {
  Role r;
  r.name = "worker";
  r.nstates = kWCount;
  r.initial = kWInit;
  r.accept = kWAccept;
  r.state_name = w_state_name;
  r.edges.push_back({.name = "init_bcast", .from = kWInit, .to = kWReq,
                     .op = Op::kCollective, .coll = "bcast"});
  append_request_loop(r.edges, kWReq, kWAssign, kWQLoop, kTaskMinBytes);
  r.edges.push_back({.name = "query_gather", .from = kWQLoop, .to = kWServe,
                     .op = Op::kCollective, .coll = "gather",
                     .guard = more_queries});
  r.edges.push_back({.name = "queries_done", .from = kWQLoop, .to = kWFinal,
                     .op = Op::kTau, .guard = queries_done});
  r.edges.push_back({.name = "fetch_data", .from = kWServe, .to = kWResp,
                     .op = Op::kRecv, .tag = kTagFetchReq,
                     .flavor = kFetchData, .peer = PeerSel::kMaster,
                     .stamp = kStampFetchReq, .min_bytes = kFetchReqBytes,
                     .max_bytes = kFetchReqBytes});
  r.edges.push_back({.name = "fetch_end", .from = kWServe, .to = kWQLoop,
                     .op = Op::kRecv, .tag = kTagFetchReq,
                     .flavor = kFetchEnd, .peer = PeerSel::kMaster,
                     .stamp = kStampFetchReq, .min_bytes = kFetchReqBytes,
                     .max_bytes = kFetchReqBytes, .effect = e_w_next_query});
  r.edges.push_back({.name = "fetch_resp", .from = kWResp, .to = kWServe,
                     .op = Op::kSend, .tag = kTagFetchResp,
                     .peer = PeerSel::kMaster, .stamp = kStampFetchResp});
  r.edges.push_back({.name = "final_barrier", .from = kWFinal, .to = kWAccept,
                     .op = Op::kCollective, .coll = "barrier"});
  return r;
}

// --------------------------------------------------------------------------
// pioBLAST: range plans (static) or serve_work (dynamic), a stats
// broadcast, a search barrier, then the batched collective-output stage
// with per-flush degraded-path agreement (pario/collective.cpp).

enum PState : int {
  kPInit, kPRanges, kPStats, kPGate, kPLoop, kPDispatch, kPDrain,
  kPSearchBar, kPQLoop, kPEarlyB, kPCand, kPSel, kPMaybeFlush, kPFlush,
  kPFlush2, kPFlushB, kPFlushBar, kPAfter, kPFinalBar, kPAccept, kPCount,
};

const char* p_state_name(int s) {
  static constexpr const char* kNames[kPCount] = {
      "init_bcast", "range_fanout", "stats_bcast", "input_gate",
      "serve_loop", "serve_dispatch", "serve_drain", "search_barrier",
      "query_loop", "early_bcast", "cand_gather", "select_fanout",
      "maybe_flush", "flush_sync", "flush_branch", "flush_bcast",
      "flush_barrier", "after_flush", "final_barrier", "accept"};
  return s >= 0 && s < kPCount ? kNames[s] : nullptr;
}

void p_init_env(Env& e, const SpecParams& p, int /*self*/) {
  e.c[kCTasks] = p.tasks < 0 ? 0 : p.tasks;
  e.c[kCActive] = p.nranks - 1;
  e.c[kCIter] = 1;
}

bool g_static(const Ctx& c) { return !c.params->dynamic; }
bool g_dynamic(const Ctx& c) { return c.params->dynamic; }

bool g_range_more(const Ctx& c) {
  return !c.params->dynamic && c.env->c[kCIter] < c.nranks;
}

bool g_range_done(const Ctx& c) {
  return c.params->dynamic || c.env->c[kCIter] >= c.nranks;
}

bool g_early(const Ctx& c) { return more_queries(c) && c.params->early_score; }
bool g_plain(const Ctx& c) { return more_queries(c) && !c.params->early_score; }

void e_sel_begin(Ctx& c) { c.env->c[kCIter] = 1; }

void e_sel_done(Ctx& c) { ++c.env->c[kCQuery]; }

int flush_batch(const Ctx& c) {
  if (c.params->batch > 0) return c.params->batch;
  return c.params->queries > 0 ? c.params->queries : 1;
}

bool g_flush_now(const Ctx& c) {
  const int q = c.env->c[kCQuery];
  return q % flush_batch(c) == 0 ||
         (c.params->queries >= 0 && q >= c.params->queries);
}

bool g_no_flush(const Ctx& c) { return !g_flush_now(c); }

bool g_ft(const Ctx& c) { return c.params->fault_tolerant; }
bool g_not_ft(const Ctx& c) { return !c.params->fault_tolerant; }

// The pario liveness sync (kTagFaultSync, internal band): rank 0's crash
// snapshot is broadcast so every rank takes the same flush path. Modeled
// as a silent collective whose effect records the agreed decision.
void e_flush_sync(Ctx& c) {
  if (any_crashed(c))
    c.env->f[0] |= kFDegraded;
  else
    c.env->f[0] &= static_cast<std::uint8_t>(~kFDegraded);
}

bool g_flush_degraded(const Ctx& c) {
  if (!c.params->fault_tolerant) return false;
  return c.strict ? flag(c, 0, kFDegraded) : true;
}

bool g_flush_normal(const Ctx& c) {
  if (!c.params->fault_tolerant) return true;
  return c.strict ? !flag(c, 0, kFDegraded) : true;
}

bool g_after_more(const Ctx& c) { return more_queries(c); }

// Appends the shared output stage (query loop + flush) used identically by
// the pioBLAST master and worker; only the per-query select leg differs.
void append_output_stage(std::vector<Edge>& e, int s_qloop, int s_earlyb,
                         int s_cand, int s_sel, int s_maybe, int s_flush,
                         int s_flush2, int s_flushb, int s_flushbar,
                         int s_after, int s_final) {
  const auto ql = static_cast<std::int16_t>(s_qloop);
  const auto eb = static_cast<std::int16_t>(s_earlyb);
  const auto ca = static_cast<std::int16_t>(s_cand);
  const auto se = static_cast<std::int16_t>(s_sel);
  const auto mf = static_cast<std::int16_t>(s_maybe);
  const auto fl = static_cast<std::int16_t>(s_flush);
  const auto f2 = static_cast<std::int16_t>(s_flush2);
  const auto fb = static_cast<std::int16_t>(s_flushb);
  const auto fr = static_cast<std::int16_t>(s_flushbar);
  const auto af = static_cast<std::int16_t>(s_after);
  const auto fi = static_cast<std::int16_t>(s_final);
  e.push_back({.name = "early_gather", .from = ql, .to = eb,
               .op = Op::kCollective, .coll = "gather", .guard = g_early});
  e.push_back({.name = "early_bcast", .from = eb, .to = ca,
               .op = Op::kCollective, .coll = "bcast"});
  e.push_back({.name = "cand_gather_early", .from = ca, .to = se,
               .op = Op::kCollective, .coll = "gather",
               .effect = e_sel_begin});
  e.push_back({.name = "cand_gather", .from = ql, .to = se,
               .op = Op::kCollective, .coll = "gather", .guard = g_plain,
               .effect = e_sel_begin});
  e.push_back({.name = "queries_done", .from = ql, .to = fi, .op = Op::kTau,
               .guard = queries_done});
  e.push_back({.name = "flush", .from = mf, .to = fl, .op = Op::kTau,
               .guard = g_flush_now});
  e.push_back({.name = "no_flush", .from = mf, .to = ql, .op = Op::kTau,
               .guard = g_no_flush});
  e.push_back({.name = "flush_sync", .from = fl, .to = f2,
               .op = Op::kCollective, .coll = "fault_sync", .silent = true,
               .guard = g_ft, .effect = e_flush_sync});
  e.push_back({.name = "flush_nosync", .from = fl, .to = f2, .op = Op::kTau,
               .guard = g_not_ft});
  e.push_back({.name = "flush_degraded", .from = f2, .to = fr, .op = Op::kTau,
               .guard = g_flush_degraded});
  e.push_back({.name = "flush_gather", .from = f2, .to = fb,
               .op = Op::kCollective, .coll = "gather",
               .guard = g_flush_normal});
  e.push_back({.name = "flush_bcast", .from = fb, .to = fr,
               .op = Op::kCollective, .coll = "bcast"});
  e.push_back({.name = "flush_barrier", .from = fr, .to = af,
               .op = Op::kCollective, .coll = "barrier"});
  e.push_back({.name = "after_more", .from = af, .to = ql, .op = Op::kTau,
               .guard = g_after_more});
  e.push_back({.name = "after_done", .from = af, .to = fi, .op = Op::kTau,
               .guard = queries_done});
}

Role pioblast_master() {
  Role r;
  r.name = "master";
  r.nstates = kPCount;
  r.initial = kPInit;
  r.accept = kPAccept;
  r.init_env = p_init_env;
  r.state_name = p_state_name;
  r.edges.push_back({.name = "init_bcast", .from = kPInit, .to = kPRanges,
                     .op = Op::kCollective, .coll = "bcast"});
  r.edges.push_back({.name = "range_send", .from = kPRanges, .to = kPRanges,
                     .op = Op::kSend, .tag = kTagRanges,
                     .peer = PeerSel::kIter, .stamp = kStampRanges,
                     .guard = g_range_more, .effect = e_iter_next});
  r.edges.push_back({.name = "range_done", .from = kPRanges, .to = kPStats,
                     .op = Op::kTau, .guard = g_range_done});
  r.edges.push_back({.name = "stats_bcast", .from = kPStats, .to = kPGate,
                     .op = Op::kCollective, .coll = "bcast"});
  r.edges.push_back({.name = "gate_static", .from = kPGate, .to = kPSearchBar,
                     .op = Op::kTau, .guard = g_static});
  r.edges.push_back({.name = "gate_dynamic", .from = kPGate, .to = kPLoop,
                     .op = Op::kTau, .guard = g_dynamic});
  append_serve_work(r.edges, kPLoop, kPDispatch, kPDrain, kPSearchBar,
                    kTaskMinBytes);
  r.edges.push_back({.name = "search_barrier", .from = kPSearchBar,
                     .to = kPQLoop, .op = Op::kCollective, .coll = "barrier",
                     .effect = e_begin_output});
  append_output_stage(r.edges, kPQLoop, kPEarlyB, kPCand, kPSel, kPMaybeFlush,
                      kPFlush, kPFlush2, kPFlushB, kPFlushBar, kPAfter,
                      kPFinalBar);
  r.edges.push_back({.name = "select_send", .from = kPSel, .to = kPSel,
                     .op = Op::kSend, .tag = kTagSelect,
                     .peer = PeerSel::kIter, .stamp = kStampSelect,
                     .guard = g_iter_more, .effect = e_iter_next});
  r.edges.push_back({.name = "select_done", .from = kPSel, .to = kPMaybeFlush,
                     .op = Op::kTau, .guard = g_iter_done,
                     .effect = e_sel_done});
  r.edges.push_back({.name = "final_drain", .from = kPFinalBar,
                     .to = kPFinalBar, .op = Op::kRecv,
                     .tag = mpisim::kTagFaultNotice, .flavor = kAnyFlavor,
                     .peer = PeerSel::kAnyWorker, .silent = true});
  r.edges.push_back({.name = "final_barrier", .from = kPFinalBar,
                     .to = kPAccept, .op = Op::kCollective,
                     .coll = "barrier"});
  return r;
}

enum QState : int {
  kQInit, kQRanges, kQStats, kQGate, kQReq, kQAssign, kQSearchBar, kQQLoop,
  kQEarlyB, kQCand, kQSelWait, kQMaybeFlush, kQFlush, kQFlush2, kQFlushB,
  kQFlushBar, kQAfter, kQFinalBar, kQAccept, kQCount,
};

const char* q_state_name(int s) {
  static constexpr const char* kNames[kQCount] = {
      "init_bcast", "range_wait", "stats_bcast", "input_gate", "work_req",
      "assign_wait", "search_barrier", "query_loop", "early_bcast",
      "cand_gather", "select_wait", "maybe_flush", "flush_sync",
      "flush_branch", "flush_bcast", "flush_barrier", "after_flush",
      "final_barrier", "accept"};
  return s >= 0 && s < kQCount ? kNames[s] : nullptr;
}

void e_q_begin_output(Ctx& c) { c.env->c[kCQuery] = 0; }

void e_q_select(Ctx& c) { ++c.env->c[kCQuery]; }

Role pioblast_worker() {
  Role r;
  r.name = "worker";
  r.nstates = kQCount;
  r.initial = kQInit;
  r.accept = kQAccept;
  r.state_name = q_state_name;
  r.edges.push_back({.name = "init_bcast", .from = kQInit, .to = kQRanges,
                     .op = Op::kCollective, .coll = "bcast"});
  r.edges.push_back({.name = "range_recv", .from = kQRanges, .to = kQStats,
                     .op = Op::kRecv, .tag = kTagRanges, .flavor = kAnyFlavor,
                     .peer = PeerSel::kMaster, .stamp = kStampRanges,
                     .guard = g_static});
  r.edges.push_back({.name = "range_skip", .from = kQRanges, .to = kQStats,
                     .op = Op::kTau, .guard = g_dynamic});
  r.edges.push_back({.name = "stats_bcast", .from = kQStats, .to = kQGate,
                     .op = Op::kCollective, .coll = "bcast"});
  r.edges.push_back({.name = "gate_static", .from = kQGate, .to = kQSearchBar,
                     .op = Op::kTau, .guard = g_static});
  r.edges.push_back({.name = "gate_dynamic", .from = kQGate, .to = kQReq,
                     .op = Op::kTau, .guard = g_dynamic});
  append_request_loop(r.edges, kQReq, kQAssign, kQSearchBar, kTaskMinBytes);
  r.edges.push_back({.name = "search_barrier", .from = kQSearchBar,
                     .to = kQQLoop, .op = Op::kCollective, .coll = "barrier",
                     .effect = e_q_begin_output});
  append_output_stage(r.edges, kQQLoop, kQEarlyB, kQCand, kQSelWait,
                      kQMaybeFlush, kQFlush, kQFlush2, kQFlushB, kQFlushBar,
                      kQAfter, kQFinalBar);
  r.edges.push_back({.name = "select_recv", .from = kQSelWait,
                     .to = kQMaybeFlush, .op = Op::kRecv, .tag = kTagSelect,
                     .flavor = kAnyFlavor, .peer = PeerSel::kMaster,
                     .stamp = kStampSelect, .effect = e_q_select});
  r.edges.push_back({.name = "final_barrier", .from = kQFinalBar,
                     .to = kQAccept, .op = Op::kCollective,
                     .coll = "barrier"});
  return r;
}

// --------------------------------------------------------------------------
// pario exchanges (pario/collective.cpp): the shuffle into aggregators
// (collective_write) and the request/response rounds (collective_read).
// Modeled with uniform per-domain rounds; these machines are verified by
// the model checker only — their tags live in the runtime-internal band,
// which the conformance monitor filters out.

int pario_tag(int idx) { return pario::collective_internal_tags()[
    static_cast<std::size_t>(idx)]; }
int tag_shuffle() { return pario_tag(0); }
int tag_read_req() { return pario_tag(1); }
int tag_read_resp() { return pario_tag(2); }

// j-th element of 0..n-1 with `self` removed.
int nth_excluding(int j, int self) { return j < self ? j : j + 1; }

enum XState : int { kXSend, kXRecv, kXBar, kXAccept, kXCount };

const char* x_state_name(int s) {
  static constexpr const char* kNames[kXCount] = {"shuffle_send",
                                                  "shuffle_recv", "barrier",
                                                  "accept"};
  return s >= 0 && s < kXCount ? kNames[s] : nullptr;
}

// Send iterator: c[kCAux] is the linear (domain, round) index; c[kCIter]
// the current target domain.
int x_send_total(const Ctx& c) { return c.params->naggs * c.params->rounds; }

bool g_x_send(const Ctx& c) {
  const int i = c.env->c[kCAux];
  return i < x_send_total(c) && i / c.params->rounds != c.self;
}

bool g_x_send_local(const Ctx& c) {
  const int i = c.env->c[kCAux];
  return i < x_send_total(c) && i / c.params->rounds == c.self;
}

void e_x_send_adv(Ctx& c) {
  const int i = ++c.env->c[kCAux];
  c.env->c[kCIter] = i / c.params->rounds;
}

bool g_x_send_done_agg(const Ctx& c) {
  return c.env->c[kCAux] >= x_send_total(c) && c.self < c.params->naggs;
}

bool g_x_send_done_cli(const Ctx& c) {
  return c.env->c[kCAux] >= x_send_total(c) && c.self >= c.params->naggs;
}

// Recv iterator: c[kCQuery] counts consumed messages; the peer sequence is
// round-major over all ranks but self (the recv order in the aggregator's
// drain loop).
int x_recv_peer(const Ctx& c, int j) {
  return nth_excluding(j % (c.nranks - 1), c.self);
}

int x_recv_total(const Ctx& c) { return (c.nranks - 1) * c.params->rounds; }

void e_x_recv_begin(Ctx& c) {
  c.env->c[kCQuery] = 0;
  c.env->c[kCIter] = x_recv_peer(c, 0);
}

bool g_x_recv(const Ctx& c) { return c.env->c[kCQuery] < x_recv_total(c); }

void e_x_recv_adv(Ctx& c) {
  const int j = ++c.env->c[kCQuery];
  if (j < x_recv_total(c)) c.env->c[kCIter] = x_recv_peer(c, j);
}

bool g_x_recv_done(const Ctx& c) {
  return c.env->c[kCQuery] >= x_recv_total(c);
}

Role pario_write_role() {
  Role r;
  r.name = "exchange";
  r.nstates = kXCount;
  r.initial = kXSend;
  r.accept = kXAccept;
  r.state_name = x_state_name;
  r.edges.push_back({.name = "shuffle_send", .from = kXSend, .to = kXSend,
                     .op = Op::kSend, .tag = tag_shuffle(),
                     .peer = PeerSel::kIter, .guard = g_x_send,
                     .effect = e_x_send_adv});
  r.edges.push_back({.name = "shuffle_local", .from = kXSend, .to = kXSend,
                     .op = Op::kTau, .guard = g_x_send_local,
                     .effect = e_x_send_adv});
  r.edges.push_back({.name = "send_done_agg", .from = kXSend, .to = kXRecv,
                     .op = Op::kTau, .guard = g_x_send_done_agg,
                     .effect = e_x_recv_begin});
  r.edges.push_back({.name = "send_done_cli", .from = kXSend, .to = kXBar,
                     .op = Op::kTau, .guard = g_x_send_done_cli});
  r.edges.push_back({.name = "shuffle_recv", .from = kXRecv, .to = kXRecv,
                     .op = Op::kRecv, .tag = tag_shuffle(),
                     .flavor = kAnyFlavor, .peer = PeerSel::kIter,
                     .guard = g_x_recv, .effect = e_x_recv_adv});
  r.edges.push_back({.name = "shuffle_lost", .from = kXRecv, .to = kXRecv,
                     .op = Op::kTau, .tag = tag_shuffle(),
                     .peer = PeerSel::kIter, .lost_peer_escape = true,
                     .guard = g_x_recv, .effect = e_x_recv_adv});
  r.edges.push_back({.name = "recv_done", .from = kXRecv, .to = kXBar,
                     .op = Op::kTau, .guard = g_x_recv_done});
  r.edges.push_back({.name = "exchange_barrier", .from = kXBar,
                     .to = kXAccept, .op = Op::kCollective,
                     .coll = "barrier"});
  return r;
}

enum RState : int {
  kRReq, kRSrvRecv, kRSrvSend, kRCollect, kRBar, kRAccept, kRCount,
};

const char* r_state_name(int s) {
  static constexpr const char* kNames[kRCount] = {
      "read_req", "server_recv", "server_send", "collect", "barrier",
      "accept"};
  return s >= 0 && s < kRCount ? kNames[s] : nullptr;
}

// Request iterator: c[kCAux] = domain index.
bool g_r_req(const Ctx& c) {
  const int i = c.env->c[kCAux];
  return i < c.params->naggs && i != c.self;
}

bool g_r_req_local(const Ctx& c) {
  const int i = c.env->c[kCAux];
  return i < c.params->naggs && i == c.self;
}

void e_r_req_adv(Ctx& c) {
  const int i = ++c.env->c[kCAux];
  c.env->c[kCIter] = i;
}

bool g_r_req_done_agg(const Ctx& c) {
  return c.env->c[kCAux] >= c.params->naggs && c.self < c.params->naggs;
}

bool g_r_req_done_cli(const Ctx& c) {
  return c.env->c[kCAux] >= c.params->naggs && c.self >= c.params->naggs;
}

// Server recv: one request from every other rank.
void e_r_srv_begin(Ctx& c) {
  c.env->c[kCQuery] = 0;
  c.env->c[kCIter] = nth_excluding(0, c.self);
}

bool g_r_srv_recv(const Ctx& c) { return c.env->c[kCQuery] < c.nranks - 1; }

void e_r_srv_adv(Ctx& c) {
  const int j = ++c.env->c[kCQuery];
  if (j < c.nranks - 1) c.env->c[kCIter] = nth_excluding(j, c.self);
}

bool g_r_srv_recv_done(const Ctx& c) {
  return c.env->c[kCQuery] >= c.nranks - 1;
}

// Server send: rounds * (nranks - 1) responses, round-major.
void e_r_send_begin(Ctx& c) {
  c.env->c[kCAux] = 0;
  c.env->c[kCIter] = nth_excluding(0, c.self);
}

int r_send_total(const Ctx& c) { return (c.nranks - 1) * c.params->rounds; }

bool g_r_srv_send(const Ctx& c) { return c.env->c[kCAux] < r_send_total(c); }

void e_r_send_adv(Ctx& c) {
  const int j = ++c.env->c[kCAux];
  if (j < r_send_total(c))
    c.env->c[kCIter] = nth_excluding(j % (c.nranks - 1), c.self);
}

bool g_r_srv_send_done(const Ctx& c) {
  return c.env->c[kCAux] >= r_send_total(c);
}

// Collect: `rounds` responses from each foreign aggregator, domain-major.
int r_collect_aggs(const Ctx& c) {
  return c.self < c.params->naggs ? c.params->naggs - 1 : c.params->naggs;
}

int r_collect_peer(const Ctx& c, int j) {
  const int a = j / c.params->rounds;
  return c.self < c.params->naggs ? nth_excluding(a, c.self) : a;
}

int r_collect_total(const Ctx& c) {
  return r_collect_aggs(c) * c.params->rounds;
}

void e_r_collect_begin(Ctx& c) {
  c.env->c[kCQuery] = 0;
  if (r_collect_total(c) > 0) c.env->c[kCIter] = r_collect_peer(c, 0);
}

bool g_r_collect(const Ctx& c) {
  return c.env->c[kCQuery] < r_collect_total(c);
}

void e_r_collect_adv(Ctx& c) {
  const int j = ++c.env->c[kCQuery];
  if (j < r_collect_total(c)) c.env->c[kCIter] = r_collect_peer(c, j);
}

bool g_r_collect_done(const Ctx& c) {
  return c.env->c[kCQuery] >= r_collect_total(c);
}

Role pario_read_role() {
  Role r;
  r.name = "exchange";
  r.nstates = kRCount;
  r.initial = kRReq;
  r.accept = kRAccept;
  r.state_name = r_state_name;
  r.edges.push_back({.name = "read_req", .from = kRReq, .to = kRReq,
                     .op = Op::kSend, .tag = tag_read_req(),
                     .peer = PeerSel::kIter, .guard = g_r_req,
                     .effect = e_r_req_adv});
  r.edges.push_back({.name = "read_req_local", .from = kRReq, .to = kRReq,
                     .op = Op::kTau, .guard = g_r_req_local,
                     .effect = e_r_req_adv});
  r.edges.push_back({.name = "req_done_agg", .from = kRReq, .to = kRSrvRecv,
                     .op = Op::kTau, .guard = g_r_req_done_agg,
                     .effect = e_r_srv_begin});
  r.edges.push_back({.name = "req_done_cli", .from = kRReq, .to = kRCollect,
                     .op = Op::kTau, .guard = g_r_req_done_cli,
                     .effect = e_r_collect_begin});
  r.edges.push_back({.name = "srv_recv", .from = kRSrvRecv, .to = kRSrvRecv,
                     .op = Op::kRecv, .tag = tag_read_req(),
                     .flavor = kAnyFlavor, .peer = PeerSel::kIter,
                     .guard = g_r_srv_recv, .effect = e_r_srv_adv});
  r.edges.push_back({.name = "srv_recv_lost", .from = kRSrvRecv,
                     .to = kRSrvRecv, .op = Op::kTau, .tag = tag_read_req(),
                     .peer = PeerSel::kIter, .lost_peer_escape = true,
                     .guard = g_r_srv_recv, .effect = e_r_srv_adv});
  r.edges.push_back({.name = "srv_recv_done", .from = kRSrvRecv,
                     .to = kRSrvSend, .op = Op::kTau,
                     .guard = g_r_srv_recv_done, .effect = e_r_send_begin});
  r.edges.push_back({.name = "srv_send", .from = kRSrvSend, .to = kRSrvSend,
                     .op = Op::kSend, .tag = tag_read_resp(),
                     .peer = PeerSel::kIter, .guard = g_r_srv_send,
                     .effect = e_r_send_adv});
  r.edges.push_back({.name = "srv_send_done", .from = kRSrvSend,
                     .to = kRCollect, .op = Op::kTau,
                     .guard = g_r_srv_send_done, .effect = e_r_collect_begin});
  r.edges.push_back({.name = "collect", .from = kRCollect, .to = kRCollect,
                     .op = Op::kRecv, .tag = tag_read_resp(),
                     .flavor = kAnyFlavor, .peer = PeerSel::kIter,
                     .guard = g_r_collect, .effect = e_r_collect_adv});
  r.edges.push_back({.name = "collect_lost", .from = kRCollect,
                     .to = kRCollect, .op = Op::kTau, .tag = tag_read_resp(),
                     .peer = PeerSel::kIter, .lost_peer_escape = true,
                     .guard = g_r_collect, .effect = e_r_collect_adv});
  r.edges.push_back({.name = "collect_done", .from = kRCollect, .to = kRBar,
                     .op = Op::kTau, .guard = g_r_collect_done});
  r.edges.push_back({.name = "exchange_barrier", .from = kRBar,
                     .to = kRAccept, .op = Op::kCollective,
                     .coll = "barrier"});
  return r;
}

int master_worker_role_of(int rank, const SpecParams&) {
  return rank == 0 ? 0 : 1;
}

int uniform_role_of(int, const SpecParams&) { return 0; }

}  // namespace

std::string state_label(const Role& role, int state) {
  if (role.state_name != nullptr)
    if (const char* n = role.state_name(state)) return n;
  return std::to_string(state);
}

ProtocolSpec mpiblast_spec() {
  ProtocolSpec s;
  s.name = "mpiblast";
  s.roles = {mpiblast_master(), mpiblast_worker()};
  s.role_of = master_worker_role_of;
  return s;
}

ProtocolSpec pioblast_spec() {
  ProtocolSpec s;
  s.name = "pioblast";
  s.roles = {pioblast_master(), pioblast_worker()};
  s.role_of = master_worker_role_of;
  return s;
}

ProtocolSpec pario_write_exchange_spec() {
  ProtocolSpec s;
  s.name = "pario_write";
  s.roles = {pario_write_role()};
  s.role_of = uniform_role_of;
  return s;
}

ProtocolSpec pario_read_exchange_spec() {
  ProtocolSpec s;
  s.name = "pario_read";
  s.roles = {pario_read_role()};
  s.role_of = uniform_role_of;
  return s;
}

std::vector<const ProtocolSpec*> all_specs() {
  static const ProtocolSpec kMpi = mpiblast_spec();
  static const ProtocolSpec kPio = pioblast_spec();
  static const ProtocolSpec kWrite = pario_write_exchange_spec();
  static const ProtocolSpec kRead = pario_read_exchange_spec();
  return {&kMpi, &kPio, &kWrite, &kRead};
}

const ProtocolSpec* spec_by_name(const std::string& name) {
  for (const ProtocolSpec* s : all_specs())
    if (name == s->name) return s;
  return nullptr;
}

AuditResult audit_tag_coverage() {
  AuditResult result;
  auto fail = [&result](std::string msg) {
    result.ok = false;
    result.problems.push_back(std::move(msg));
  };

  const auto internal = pario::collective_internal_tags();
  auto tag_known = [&internal](int tag) {
    if (driver::tag_name(tag) != nullptr) return true;
    if (tag == mpisim::kTagFaultNotice) return true;
    for (const int t : internal)
      if (t == tag) return true;
    return false;
  };

  std::set<int> covered;
  std::map<int, std::set<std::uint64_t>> send_stamps;
  std::map<int, std::set<std::uint64_t>> recv_stamps;
  for (const ProtocolSpec* spec : all_specs()) {
    for (const Role& role : spec->roles) {
      for (const Edge& e : role.edges) {
        if (e.op != Op::kSend && e.op != Op::kRecv) continue;
        covered.insert(e.tag);
        if (!tag_known(e.tag))
          fail(std::string(spec->name) + "/" + role.name + " edge " + e.name +
               ": tag " + std::to_string(e.tag) +
               " is not registered in driver/tags.h, not the fault notice, "
               "and not a pario-internal tag");
        (e.op == Op::kSend ? send_stamps : recv_stamps)[e.tag].insert(e.stamp);
      }
    }
  }
  for (const int tag : driver::registered_tags()) {
    if (!covered.contains(tag))
      fail("registered tag " + driver::tag_label(tag) +
           " is covered by no spec edge");
  }
  for (const auto& [tag, stamps] : send_stamps) {
    const auto it = recv_stamps.find(tag);
    if (it != recv_stamps.end() && it->second != stamps)
      fail("tag " + driver::tag_label(tag) +
           ": send-side and recv-side TypeStamps disagree");
  }
  return result;
}

}  // namespace pioblast::protospec
