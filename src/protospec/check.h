// Explicit-state exhaustive model checker over a ProtocolSpec.
//
// The product of the role machines is explored state by state: per-rank
// (control state, Env), one FIFO queue per (src, dst, tag) channel, and an
// optional crash budget that nondeterministically kills any worker rank at
// any point (covering every single-crash placement a FaultPlan could
// produce, and more interleavings than any concrete detection delay).
// Verified properties:
//
//   * deadlock freedom — some transition is enabled until every live rank
//     reaches its accept state (crash branches do not count as progress);
//   * no orphan messages — terminal states have empty channels, except
//     fault notices (the runtime's leak check makes the same exemption);
//   * tag-type consistency — a received message's TypeStamp matches the
//     recv edge's declared stamp;
//   * collective-order agreement — when all live ranks block in
//     collectives, they must be in the *same* collective;
//   * recovery termination — the state space is finite and fully explored
//     under every crash placement, so recovery always reaches accept.
//
// Sleep-set partial-order reduction (mpicheck/por.h, sharing the
// explorer's mpisim::independent dependence notion) prunes commuting
// interleavings; the visited set is hash-compacted (64-bit FNV-1a state
// fingerprints), the standard explicit-state trade of a vanishingly small
// collision probability for an order of magnitude less memory.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "protospec/spec.h"

namespace pioblast::protospec {

struct ModelCheckOptions {
  /// Crash budget: the checker may kill up to this many worker ranks
  /// (rank 0 never crashes, matching FaultPlan). Requires
  /// SpecParams::fault_tolerant when nonzero.
  int max_crashes = 0;
  /// Hard bound on distinct states; exceeding it is an error, not silence.
  std::uint64_t max_states = 4'000'000;
  /// Sleep-set POR on by default; off explores the full product (tests
  /// use it to validate that pruning does not change the verdict).
  bool por = true;
};

struct CheckStats {
  std::uint64_t states_explored = 0;  ///< distinct states expanded
  std::uint64_t states_pruned = 0;    ///< sleep-set + covered-revisit skips
  std::uint64_t transitions = 0;      ///< transitions applied
  std::uint64_t terminal_states = 0;  ///< clean all-accepted endpoints
  std::uint64_t crash_branches = 0;   ///< crash transitions taken
  std::size_t max_queue_depth = 0;    ///< deepest per-channel FIFO seen
  std::size_t max_depth = 0;          ///< deepest DFS path
};

struct ModelCheckResult {
  bool ok = true;
  std::string error;  ///< first violation, with a full state dump
  CheckStats stats;
};

/// Exhaustively checks `spec` at the world described by `params`. The
/// checker requires concrete bounds: nranks in [2, Env::kMaxRanks], and
/// tasks / queries / fetch_cap >= 0 (the -1 "unbounded" sentinel is for
/// the conformance monitor only).
ModelCheckResult model_check(const ProtocolSpec& spec,
                             const SpecParams& params,
                             const ModelCheckOptions& opts = {});

}  // namespace pioblast::protospec
