#include "protospec/check.h"

#include <map>
#include <optional>
#include <set>
#include <sstream>
#include <unordered_map>
#include <utility>
#include <vector>

#include "driver/tags.h"
#include "mpicheck/por.h"
#include "mpisim/fault.h"
#include "mpisim/hooks.h"

namespace pioblast::protospec {
namespace {

struct Msg {
  std::int16_t flavor = 0;
  std::uint64_t stamp = 0;
};

struct ChanKey {
  int src = 0;
  int dst = 0;
  int tag = 0;
  friend auto operator<=>(const ChanKey&, const ChanKey&) = default;
};

struct RankState {
  std::int16_t state = 0;
  std::int16_t coll_edge = -1;  ///< edge index while blocked in a collective
  std::uint8_t crashed = 0;
  Env env;
};

struct GState {
  std::vector<RankState> ranks;
  std::map<ChanKey, std::vector<Msg>> chans;  ///< front = index 0
  int crashes = 0;
};

struct Trans {
  enum Kind : std::uint8_t { kEdge, kCrash } kind = kEdge;
  int rank = -1;
  int edge = -1;  ///< index into the rank's role edges (kEdge only)
  int peer = -1;  ///< resolved concrete peer, -1 if none
  mpisim::YieldPoint yp;
  std::uint64_t sig = 0;  ///< stable identity for sleep sets
};

// The dependence notion for sleep-set pruning. The runtime's relation
// (mpisim::independent) works at mailbox granularity because a rank has
// one mailbox; the checker's queues are per (src, dst, tag) channel, so
// the faithful relation here is finer — two workers' sends to the master
// land in different queues and commute, with the genuine race captured
// at the master's recv *choice*, which same-rank dependence keeps fully
// explored. Independence must also preserve enabledness: every true
// branch below leaves the other action enabled with an identical effect
// in either order (the deterministic tau/collective closure after each
// step is confluent, so closing in either order reaches the same state).
bool edges_independent(const Trans& a, const Trans& b) {
  // Two actions of one rank never commute: taking either moves the
  // control state (or, for a crash, kills the rank) that the other was
  // enabled in. This also pins every crash placement relative to the
  // victim's own steps, as the single-crash sweep requires.
  if (a.rank == b.rank) return false;
  const bool ac = a.kind == Trans::kCrash;
  const bool bc = b.kind == Trans::kCrash;
  if (ac || bc) {
    if (ac && bc) return false;  // both push onto rank 0's notice channel
    const Trans& o = ac ? b : a;
    // crash(v) seals channels INTO v and pushes the fault notice. A send
    // into v commutes: the message is erased by the seal in one order and
    // dropped at apply() in the other — same state either way. A recv
    // FROM a sealed channel would be v's own op (same-rank, above).
    // Still dependent: collectives (their completion condition counts
    // live ranks) and anything touching the notice channel (the master's
    // fault-notice recvs).
    if (o.yp.kind == mpisim::YieldPoint::Kind::kCollective) return false;
    if (o.yp.tag == mpisim::kTagFaultNotice) return false;
    return true;
  }
  if (a.yp.kind == mpisim::YieldPoint::Kind::kCollective ||
      b.yp.kind == mpisim::YieldPoint::Kind::kCollective)
    return false;  // collectives synchronize every live rank
  // P2p ops commute iff they touch different (src, dst, tag) queues.
  const auto chan_of = [](const Trans& t) {
    return t.yp.kind == mpisim::YieldPoint::Kind::kSend
               ? ChanKey{t.rank, t.peer, t.yp.tag}
               : ChanKey{t.peer, t.rank, t.yp.tag};
  };
  return chan_of(a) != chan_of(b);
}

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

void fnv_bytes(std::uint64_t& h, const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
}

template <typename T>
void fnv_val(std::uint64_t& h, const T& v) {
  fnv_bytes(h, &v, sizeof(v));
}

class ModelChecker {
 public:
  ModelChecker(const ProtocolSpec& spec, const SpecParams& params,
               const ModelCheckOptions& opts)
      : spec_(spec), params_(params), opts_(opts), n_(params.nranks) {}

  ModelCheckResult run();

 private:
  const Role& role(int rank) const { return spec_.role_for(rank, params_); }

  Ctx make_ctx(GState& g, int rank, int peer, int flavor) {
    refresh_crashed(g);
    Ctx c;
    c.params = &params_;
    c.env = &g.ranks[static_cast<std::size_t>(rank)].env;
    c.self = rank;
    c.nranks = n_;
    c.peer = peer;
    c.flavor = flavor;
    c.crashed = crashed_.data();
    c.strict = true;
    return c;
  }

  void refresh_crashed(const GState& g) {
    crashed_.resize(static_cast<std::size_t>(n_));
    for (int r = 0; r < n_; ++r)
      crashed_[static_cast<std::size_t>(r)] =
          g.ranks[static_cast<std::size_t>(r)].crashed;
  }

  bool done(const GState& g, int rank) const {
    const RankState& rs = g.ranks[static_cast<std::size_t>(rank)];
    return rs.crashed == 0 && rs.state == role(rank).accept;
  }

  bool live(const GState& g, int rank) const {
    return g.ranks[static_cast<std::size_t>(rank)].crashed == 0;
  }

  const std::vector<Msg>* chan(const GState& g, int src, int dst,
                               int tag) const {
    const auto it = g.chans.find(ChanKey{src, dst, tag});
    return it == g.chans.end() || it->second.empty() ? nullptr : &it->second;
  }

  // True when `e`'s lost-peer escape can fire for `rank` with peer `p`:
  // the peer is gone and nothing it sent on this tag is still in flight.
  bool escape_enabled(GState& g, int rank, const Edge& e, int p) {
    if (p < 0 || p >= n_) return false;
    if (g.ranks[static_cast<std::size_t>(p)].crashed == 0) return false;
    if (chan(g, p, rank, e.tag) != nullptr) return false;
    const Ctx c = make_ctx(g, rank, p, 0);
    return guard_ok(e, c);
  }

  // Enabled tau edges of one rank (lost-peer escapes included).
  std::vector<int> enabled_taus(GState& g, int rank) {
    std::vector<int> out;
    const Role& ro = role(rank);
    const RankState& rs = g.ranks[static_cast<std::size_t>(rank)];
    for (std::size_t i = 0; i < ro.edges.size(); ++i) {
      const Edge& e = ro.edges[i];
      if (e.from != rs.state || e.op != Op::kTau) continue;
      if (e.lost_peer_escape) {
        const int p = resolve_peer(e, rs.env);
        if (escape_enabled(g, rank, e, p)) out.push_back(static_cast<int>(i));
        continue;
      }
      const Ctx c = make_ctx(g, rank, -1, 0);
      if (guard_ok(e, c)) out.push_back(static_cast<int>(i));
    }
    return out;
  }

  // Fires deterministic internal steps until quiescence: collective
  // completion (all live unfinished ranks blocked in the same collective)
  // and tau edges. Both are local/commuting, so eager application is a
  // sound reduction. Returns a violation message or nullopt.
  std::optional<std::string> close_internal(GState& g) {
    for (int iter = 0; iter < 100000; ++iter) {
      bool progress = false;
      // Collective completion.
      std::vector<int> waiting;
      bool all_blocked = true;
      for (int r = 0; r < n_; ++r) {
        if (!live(g, r) || done(g, r)) continue;
        if (g.ranks[static_cast<std::size_t>(r)].coll_edge < 0) {
          all_blocked = false;
          break;
        }
        waiting.push_back(r);
      }
      if (all_blocked && !waiting.empty()) {
        const Edge& first =
            role(waiting[0]).edges[static_cast<std::size_t>(
                g.ranks[static_cast<std::size_t>(waiting[0])].coll_edge)];
        for (const int r : waiting) {
          const Edge& e = role(r).edges[static_cast<std::size_t>(
              g.ranks[static_cast<std::size_t>(r)].coll_edge)];
          if (std::string_view(e.coll) != std::string_view(first.coll)) {
            return "collective-order mismatch: rank " +
                   std::to_string(waiting[0]) + " entered '" + first.coll +
                   "' but rank " + std::to_string(r) + " entered '" + e.coll +
                   "'";
          }
        }
        for (const int r : waiting) {
          RankState& rs = g.ranks[static_cast<std::size_t>(r)];
          const Edge& e =
              role(r).edges[static_cast<std::size_t>(rs.coll_edge)];
          rs.coll_edge = -1;
          Ctx c = make_ctx(g, r, -1, 0);
          if (e.effect != nullptr) e.effect(c);
          rs.state = e.to;
        }
        progress = true;
      }
      // Tau closure.
      for (int r = 0; r < n_; ++r) {
        if (!live(g, r) || done(g, r)) continue;
        RankState& rs = g.ranks[static_cast<std::size_t>(r)];
        if (rs.coll_edge >= 0) continue;
        const std::vector<int> taus = enabled_taus(g, r);
        if (taus.size() > 1) {
          return "nondeterministic internal choice at rank " +
                 std::to_string(r) + " state " +
                 state_label(role(r), rs.state) + " (" +
                 std::to_string(taus.size()) + " tau edges enabled)";
        }
        if (taus.empty()) continue;
        const Edge& e = role(r).edges[static_cast<std::size_t>(taus[0])];
        const int p =
            e.lost_peer_escape ? resolve_peer(e, rs.env) : -1;
        Ctx c = make_ctx(g, r, p, 0);
        if (e.effect != nullptr) e.effect(c);
        rs.state = e.to;
        progress = true;
      }
      if (!progress) return std::nullopt;
    }
    return std::string("internal-step closure did not converge (tau cycle)");
  }

  std::uint64_t trans_sig(const Trans& t) const {
    std::uint64_t h = kFnvOffset;
    fnv_val(h, t.kind);
    fnv_val(h, t.rank);
    fnv_val(h, t.edge);
    fnv_val(h, t.peer);
    return h;
  }

  Trans make_edge_trans(int rank, int edge_idx, const Edge& e, int peer) {
    Trans t;
    t.kind = Trans::kEdge;
    t.rank = rank;
    t.edge = edge_idx;
    t.peer = peer;
    t.yp.rank = rank;
    switch (e.op) {
      case Op::kSend:
        t.yp.kind = mpisim::YieldPoint::Kind::kSend;
        break;
      case Op::kRecv:
        t.yp.kind = mpisim::YieldPoint::Kind::kRecv;
        break;
      default:
        t.yp.kind = mpisim::YieldPoint::Kind::kCollective;
        break;
    }
    t.yp.peer = peer;
    t.yp.tag = e.tag;
    t.yp.detail = e.coll;
    t.sig = trans_sig(t);
    return t;
  }

  void enumerate_rank(GState& g, int rank, std::vector<Trans>& out) {
    if (!live(g, rank) || done(g, rank)) return;
    const RankState& rs = g.ranks[static_cast<std::size_t>(rank)];
    if (rs.coll_edge >= 0) return;  // blocked in a collective
    const Role& ro = role(rank);
    for (std::size_t i = 0; i < ro.edges.size(); ++i) {
      const Edge& e = ro.edges[i];
      if (e.from != rs.state) continue;
      std::vector<int> peers;
      switch (e.op) {
        case Op::kTau:
          continue;  // drained by close_internal
        case Op::kCollective: {
          const Ctx c = make_ctx(g, rank, -1, 0);
          if (guard_ok(e, c)) out.push_back(make_edge_trans(
              rank, static_cast<int>(i), e, -1));
          continue;
        }
        case Op::kSend:
        case Op::kRecv: {
          const int p = resolve_peer(e, rs.env);
          if (p == kPeerAny) {
            for (int w = 1; w < n_; ++w) peers.push_back(w);
          } else if (p >= 0 && p < n_) {
            peers.push_back(p);
          }
          break;
        }
      }
      for (const int p : peers) {
        if (e.op == Op::kSend) {
          const Ctx c = make_ctx(g, rank, p, 0);
          if (guard_ok(e, c))
            out.push_back(make_edge_trans(rank, static_cast<int>(i), e, p));
        } else {
          const std::vector<Msg>* q = chan(g, p, rank, e.tag);
          if (q == nullptr) continue;
          const Msg& front = q->front();
          if (e.flavor != kAnyFlavor && e.flavor != front.flavor) continue;
          const Ctx c = make_ctx(g, rank, p, front.flavor);
          if (guard_ok(e, c))
            out.push_back(make_edge_trans(rank, static_cast<int>(i), e, p));
        }
      }
    }
  }

  std::vector<Trans> enumerate(GState& g) {
    std::vector<Trans> out;
    for (int r = 0; r < n_; ++r) enumerate_rank(g, r, out);
    if (g.crashes < opts_.max_crashes) {
      for (int v = 1; v < n_; ++v) {
        if (!live(g, v) || done(g, v)) continue;
        Trans t;
        t.kind = Trans::kCrash;
        t.rank = v;
        t.yp.rank = v;
        // The YieldPoint is descriptive; what a crash commutes with is
        // decided structurally by edges_independent.
        t.yp.kind = mpisim::YieldPoint::Kind::kFault;
        t.sig = trans_sig(t);
        out.push_back(t);
      }
    }
    return out;
  }

  std::optional<std::string> apply(GState& g, const Trans& t) {
    if (t.kind == Trans::kCrash) {
      RankState& rs = g.ranks[static_cast<std::size_t>(t.rank)];
      rs.crashed = 1;
      rs.coll_edge = -1;
      ++g.crashes;
      // Sealed mailbox: everything already queued for the victim is gone.
      for (auto it = g.chans.begin(); it != g.chans.end();) {
        if (it->first.dst == t.rank)
          it = g.chans.erase(it);
        else
          ++it;
      }
      // The failure detector's notice to rank 0.
      g.chans[ChanKey{t.rank, 0, mpisim::kTagFaultNotice}].push_back(Msg{});
      return close_internal(g);
    }
    RankState& rs = g.ranks[static_cast<std::size_t>(t.rank)];
    const Edge& e = role(t.rank).edges[static_cast<std::size_t>(t.edge)];
    switch (e.op) {
      case Op::kSend: {
        if (t.peer >= 0 &&
            g.ranks[static_cast<std::size_t>(t.peer)].crashed == 0)
          g.chans[ChanKey{t.rank, t.peer, e.tag}].push_back(
              Msg{e.flavor, e.stamp});
        Ctx c = make_ctx(g, t.rank, t.peer, 0);
        if (e.effect != nullptr) e.effect(c);
        rs.state = e.to;
        break;
      }
      case Op::kRecv: {
        auto& q = g.chans[ChanKey{t.peer, t.rank, e.tag}];
        const Msg front = q.front();
        q.erase(q.begin());
        if (q.empty()) g.chans.erase(ChanKey{t.peer, t.rank, e.tag});
        if (front.stamp != e.stamp) {
          return "tag-type mismatch on " + driver::tag_label(e.tag) +
                 " at rank " + std::to_string(t.rank) + " edge " + e.name +
                 ": sent stamp " + std::to_string(front.stamp) +
                 ", spec expects " + std::to_string(e.stamp);
        }
        Ctx c = make_ctx(g, t.rank, t.peer, front.flavor);
        if (e.effect != nullptr) e.effect(c);
        rs.state = e.to;
        break;
      }
      case Op::kCollective:
        rs.coll_edge = static_cast<std::int16_t>(t.edge);
        break;
      case Op::kTau:
        break;  // unreachable: taus never become Trans
    }
    return close_internal(g);
  }

  std::uint64_t state_hash(const GState& g) const {
    std::uint64_t h = kFnvOffset;
    fnv_val(h, g.crashes);
    for (const RankState& rs : g.ranks) {
      fnv_val(h, rs.state);
      fnv_val(h, rs.coll_edge);
      fnv_val(h, rs.crashed);
      fnv_bytes(h, rs.env.c, sizeof(rs.env.c));
      fnv_bytes(h, rs.env.hist, sizeof(rs.env.hist[0]) *
                                    static_cast<std::size_t>(n_));
      fnv_bytes(h, rs.env.f, static_cast<std::size_t>(n_));
    }
    for (const auto& [key, q] : g.chans) {
      fnv_val(h, key.src);
      fnv_val(h, key.dst);
      fnv_val(h, key.tag);
      for (const Msg& m : q) fnv_val(h, m.flavor);
    }
    return h;
  }

  std::string dump(const GState& g) {
    std::ostringstream os;
    for (int r = 0; r < n_; ++r) {
      const RankState& rs = g.ranks[static_cast<std::size_t>(r)];
      os << "\n  rank " << r << " [" << role(r).name << "]";
      if (rs.crashed != 0) {
        os << " crashed";
        continue;
      }
      os << " state=" << state_label(role(r), rs.state);
      if (rs.coll_edge >= 0)
        os << " blocked-in="
           << role(r).edges[static_cast<std::size_t>(rs.coll_edge)].coll;
      os << " c=[";
      for (int i = 0; i < 6; ++i) os << (i != 0 ? "," : "") << rs.env.c[i];
      os << "]";
    }
    for (const auto& [key, q] : g.chans) {
      if (q.empty()) continue;
      os << "\n  channel " << key.src << "->" << key.dst << " "
         << driver::tag_label(key.tag) << ": " << q.size() << " message(s)";
    }
    return os.str();
  }

  void note_queues(const GState& g, CheckStats& st) const {
    for (const auto& [key, q] : g.chans)
      if (q.size() > st.max_queue_depth) st.max_queue_depth = q.size();
  }

  const ProtocolSpec& spec_;
  SpecParams params_;
  ModelCheckOptions opts_;
  int n_;
  std::vector<std::uint8_t> crashed_;
};

ModelCheckResult ModelChecker::run() {
  ModelCheckResult res;
  auto fail = [&res](std::string msg) {
    res.ok = false;
    res.error = std::move(msg);
  };

  if (n_ < 2 || n_ > Env::kMaxRanks) {
    fail("nranks must be in [2, " + std::to_string(Env::kMaxRanks) + "]");
    return res;
  }
  if (params_.tasks < 0 || params_.queries < 0 || params_.fetch_cap < 0) {
    fail("model_check requires concrete bounds (tasks/queries/fetch_cap)");
    return res;
  }
  if (opts_.max_crashes > 0 && !params_.fault_tolerant) {
    fail("a crash budget requires fault_tolerant params (a FaultPlan "
         "implies a fault-tolerant world)");
    return res;
  }
  if (params_.naggs < 1 || params_.naggs > n_ || params_.rounds < 1) {
    fail("pario exchange params out of range (naggs in [1, nranks], "
         "rounds >= 1)");
    return res;
  }

  struct Node {
    GState g;
    std::vector<Trans> trans;
    std::set<std::uint64_t> sleep;
    std::set<std::uint64_t> done;
  };

  // Visited states (hash-compacted) with the sleep sets they were
  // expanded under; a revisit is skippable iff a stored set covers it.
  std::unordered_map<std::uint64_t, std::vector<std::set<std::uint64_t>>>
      visited;

  GState root;
  root.ranks.resize(static_cast<std::size_t>(n_));
  for (int r = 0; r < n_; ++r) {
    RankState& rs = root.ranks[static_cast<std::size_t>(r)];
    const Role& ro = role(r);
    rs.state = static_cast<std::int16_t>(ro.initial);
    if (ro.init_env != nullptr) rs.env = Env{}, ro.init_env(rs.env, params_, r);
  }
  if (auto v = close_internal(root)) {
    fail(*v + dump(root));
    return res;
  }

  std::vector<Node> stack;
  auto enter = [&](GState&& g, std::set<std::uint64_t>&& sleep) -> bool {
    // Returns false when the state was pruned or is terminal; true when
    // it was pushed. Sets res on violation.
    const std::uint64_t h = state_hash(g);
    auto& seen = visited[h];
    for (const auto& old : seen) {
      if (mpicheck::sleep_covers(old, sleep)) {
        ++res.stats.states_pruned;
        return false;
      }
    }
    seen.push_back(sleep);
    ++res.stats.states_explored;
    if (res.stats.states_explored > opts_.max_states) {
      fail("state space exceeded max_states=" +
           std::to_string(opts_.max_states) +
           " (raise the bound or shrink the params)");
      return false;
    }
    note_queues(g, res.stats);
    Node node;
    node.g = std::move(g);
    node.trans = enumerate(node.g);
    node.sleep = std::move(sleep);
    bool progress_possible = false;
    for (const Trans& t : node.trans)
      if (t.kind != Trans::kCrash) progress_possible = true;
    if (!progress_possible) {
      bool all_done = true;
      for (int r = 0; r < n_; ++r)
        if (live(node.g, r) && !done(node.g, r)) all_done = false;
      if (!all_done) {
        fail("deadlock: no transition enabled" + dump(node.g));
        return false;
      }
      for (const auto& [key, q] : node.g.chans) {
        if (q.empty() || key.tag == mpisim::kTagFaultNotice) continue;
        // serve_work drains dead workers' stray requests at loop exit
        // (the notice-overtakes-final-request ordering), so they are not
        // orphans — exactly as the runtime's leak check never sees them.
        if (key.tag == driver::kTagWorkReq &&
            node.g.ranks[static_cast<std::size_t>(key.src)].crashed != 0)
          continue;
        fail("orphan message(s) at termination on channel " +
             std::to_string(key.src) + "->" + std::to_string(key.dst) + " " +
             driver::tag_label(key.tag) + dump(node.g));
        return false;
      }
      ++res.stats.terminal_states;
      if (node.trans.empty()) return false;
    }
    stack.push_back(std::move(node));
    if (stack.size() > res.stats.max_depth) res.stats.max_depth = stack.size();
    return true;
  };

  enter(std::move(root), {});
  while (!stack.empty() && res.ok) {
    Node& top = stack.back();
    const Trans* pick = nullptr;
    for (const Trans& t : top.trans) {
      if (top.done.contains(t.sig)) continue;
      if (opts_.por && top.sleep.contains(t.sig)) {
        ++res.stats.states_pruned;
        top.done.insert(t.sig);
        continue;
      }
      pick = &t;
      break;
    }
    if (pick == nullptr) {
      stack.pop_back();
      continue;
    }
    const Trans t = *pick;
    top.done.insert(t.sig);
    GState child = top.g;
    ++res.stats.transitions;
    if (t.kind == Trans::kCrash) ++res.stats.crash_branches;
    if (auto v = apply(child, t)) {
      fail(*v + dump(child));
      break;
    }
    std::set<std::uint64_t> sleep;
    if (opts_.por) {
      // op_of looks the signature up among the child's still-pending
      // transitions; computing them twice is avoided by enumerating into
      // a map first. An action absent from the child (no longer enabled)
      // drops out of the sleep set and stays awake — the sound direction.
      std::vector<Trans> child_trans = enumerate(child);
      std::map<std::uint64_t, const Trans*> pending;
      for (const Trans& ct : child_trans) pending[ct.sig] = &ct;
      sleep = mpicheck::inherit_sleep(
          top.sleep, top.done, t.sig, &t,
          [&pending](std::uint64_t sig) -> const Trans* {
            const auto it = pending.find(sig);
            return it == pending.end() ? nullptr : it->second;
          },
          edges_independent);
    }
    enter(std::move(child), std::move(sleep));
  }
  return res;
}

}  // namespace

ModelCheckResult model_check(const ProtocolSpec& spec,
                             const SpecParams& params,
                             const ModelCheckOptions& opts) {
  return ModelChecker(spec, params, opts).run();
}

}  // namespace pioblast::protospec
