// Runtime conformance monitor: replays a real mpisim trace against a
// ProtocolSpec and reports the first divergent transition.
//
// The monitor runs one NFA per rank over that rank's time-ordered event
// stream. A frontier of (control state, Env) configurations is kept;
// internal (tau) and silent edges are followed as epsilon moves, and each
// observable event — a driver-band SEND/RECV, a fault notice, a COLL
// entry, a crash — must be consumed by at least one edge out of some
// frontier configuration. An empty frontier is a divergence: the report
// names the rank, the offending event, and the candidate states the spec
// allowed at that point.
//
// Guards run permissively (Ctx::strict = false): the monitor sees only one
// rank's events, so data-dependent branch bounds (fetch round trips, task
// counts) are treated as nondeterministic and the frontier branches
// instead. Because the automaton is run as an NFA, permissiveness can only
// cause missed divergences in corner cases, never false alarms.
#pragma once

#include <string>
#include <vector>

#include "mpisim/trace.h"
#include "protospec/spec.h"

namespace pioblast::protospec {

struct ConformResult {
  bool ok = true;
  std::string error;  ///< first divergence, with candidate-state detail
  std::size_t events_checked = 0;  ///< observable events consumed
  std::size_t events_skipped = 0;  ///< filtered (internal band, timing, ...)
  int ranks_checked = 0;

  /// One-line summary for CLI output:
  ///   CONFORM spec=<name> ranks=<n> events=<n> skipped=<n> result=ok
  std::string summary(const std::string& spec_name) const;
};

/// Replays `events` (a Tracer::sorted() stream) against `spec` at the
/// world described by `params` (nranks from params; -1 sentinels make the
/// data-dependent guards permissive).
ConformResult check_conformance(const ProtocolSpec& spec,
                                const SpecParams& params,
                                const std::vector<mpisim::TraceEvent>& events);

/// Driver-side hook behind the --conformance flag: runs the monitor and
/// throws mpisim::VerifyError on divergence, so a nonconforming run fails
/// exactly like any other protocol-verifier violation. Returns the
/// summary line on success.
std::string enforce_conformance(const ProtocolSpec& spec,
                                const SpecParams& params,
                                const std::vector<mpisim::TraceEvent>& events);

}  // namespace pioblast::protospec
