#include "protospec/conform.h"

#include <algorithm>
#include <cstddef>
#include <sstream>
#include <string_view>
#include <utility>

#include "driver/tags.h"
#include "mpisim/fault.h"
#include "mpisim/message.h"
#include "mpisim/verify.h"

namespace pioblast::protospec {
namespace {

constexpr std::size_t kMaxFrontier = 512;

/// One NFA configuration: a control state plus its environment.
struct Config {
  std::int16_t state = 0;
  Env env;
  friend bool operator==(const Config&, const Config&) = default;
};

void add_config(std::vector<Config>& frontier, Config c) {
  if (std::find(frontier.begin(), frontier.end(), c) == frontier.end())
    frontier.push_back(std::move(c));
}

/// Observable events the monitor consumes; everything else is skipped.
bool observable_tag(int tag) {
  return tag < mpisim::kDriverTagLimit || tag == mpisim::kTagFaultNotice;
}

class Monitor {
 public:
  Monitor(const ProtocolSpec& spec, const SpecParams& params)
      : spec_(spec), params_(params), n_(params.nranks) {}

  ConformResult run(const std::vector<mpisim::TraceEvent>& events);

 private:
  Ctx make_ctx(Env& env, int self, int peer, int flavor) const {
    Ctx c;
    c.params = &params_;
    c.env = &env;
    c.self = self;
    c.nranks = n_;
    c.peer = peer;
    c.flavor = flavor;
    c.crashed = crashed_;
    c.strict = false;
    return c;
  }

  /// Epsilon closure: follows tau edges and silent edges until no new
  /// configuration appears (frontier is deduplicated, so cycles stop).
  bool closure(const Role& role, int self, std::vector<Config>& frontier) {
    for (std::size_t i = 0; i < frontier.size(); ++i) {
      if (frontier.size() > kMaxFrontier) return false;
      const Config cur = frontier[i];
      for (const Edge& e : role.edges) {
        if (e.from != cur.state) continue;
        if (e.op != Op::kTau && !e.silent) continue;
        int peer = resolve_peer(e, cur.env);
        if (e.lost_peer_escape) {
          if (peer < 0 || peer >= n_ || crashed_[peer] == 0) continue;
        }
        if (peer == kPeerAny) peer = -1;
        Config next = cur;
        Ctx c = make_ctx(next.env, self, peer,
                         e.flavor >= 0 ? e.flavor : 0);
        if (!guard_ok(e, c)) continue;
        if (e.effect != nullptr) e.effect(c);
        next.state = e.to;
        add_config(frontier, std::move(next));
      }
    }
    return true;
  }

  /// Consumes one observable event; returns the successor frontier (empty
  /// on divergence) and fills `candidates` with the states that were
  /// available.
  std::vector<Config> step(const Role& role, int self,
                           const std::vector<Config>& frontier,
                           const mpisim::ParsedEvent& ev,
                           std::string& candidates) {
    std::vector<Config> next;
    std::ostringstream cand;
    const char* sep = "";
    for (const Config& cur : frontier) {
      cand << sep << state_label(role, cur.state);
      sep = ", ";
      for (const Edge& e : role.edges) {
        if (e.from != cur.state) continue;
        switch (ev.kind) {
          case mpisim::TraceKind::kSend:
          case mpisim::TraceKind::kFault:  // drop-send, pre-filtered
            if (e.op != Op::kSend) continue;
            break;
          case mpisim::TraceKind::kRecv:
            if (e.op != Op::kRecv) continue;
            break;
          case mpisim::TraceKind::kCollective:
            if (e.op != Op::kCollective) continue;
            break;
          default:
            continue;
        }
        if (e.op == Op::kCollective) {
          if (std::string_view(e.coll == nullptr ? "" : e.coll) != ev.op)
            continue;
        } else {
          if (e.tag != ev.tag) continue;
          if (ev.bytes < e.min_bytes || ev.bytes > e.max_bytes) continue;
          const int rp = resolve_peer(e, cur.env);
          if (rp == kPeerAny) {
            if (ev.peer < 1 || ev.peer >= n_) continue;
          } else if (rp != ev.peer) {
            continue;
          }
        }
        Config succ = cur;
        Ctx c = make_ctx(succ.env, self, ev.peer,
                         e.flavor >= 0 ? e.flavor : 0);
        if (!guard_ok(e, c)) continue;
        if (e.effect != nullptr) e.effect(c);
        succ.state = e.to;
        add_config(next, std::move(succ));
      }
    }
    candidates = cand.str();
    return next;
  }

  const ProtocolSpec& spec_;
  SpecParams params_;
  int n_;
  std::uint8_t crashed_[Env::kMaxRanks]{};
};

std::string describe(const mpisim::TraceEvent& e) {
  return std::string(mpisim::to_string(e.kind)) + " " + e.detail;
}

ConformResult Monitor::run(const std::vector<mpisim::TraceEvent>& events) {
  ConformResult res;
  auto fail = [&res](std::string msg) {
    res.ok = false;
    res.error = std::move(msg);
  };
  if (n_ < 2 || n_ > Env::kMaxRanks) {
    fail("conformance requires nranks in [2, " +
         std::to_string(Env::kMaxRanks) + "]");
    return res;
  }

  // The monitor's failure view is time-free: a rank counts as crashed for
  // lost-peer escapes if it crashes anywhere in the trace. Permissive, and
  // sound for an NFA monitor.
  for (const mpisim::TraceEvent& e : events) {
    mpisim::ParsedEvent p;
    if (e.kind == mpisim::TraceKind::kFault && parse_trace_event(e, p) &&
        p.crashed_rank >= 0 && p.crashed_rank < n_)
      crashed_[p.crashed_rank] = 1;
  }

  for (int rank = 0; rank < n_ && res.ok; ++rank) {
    const Role& role = spec_.role_for(rank, params_);
    std::vector<Config> frontier;
    {
      Config init;
      init.state = static_cast<std::int16_t>(role.initial);
      if (role.init_env != nullptr) role.init_env(init.env, params_, rank);
      frontier.push_back(std::move(init));
    }
    bool crashed_here = false;
    std::size_t index = 0;  // per-rank observable event index
    for (const mpisim::TraceEvent& e : events) {
      if (e.rank != rank) continue;
      mpisim::ParsedEvent ev;
      const bool parsed = parse_trace_event(e, ev);
      bool observable = false;
      switch (e.kind) {
        case mpisim::TraceKind::kSend:
        case mpisim::TraceKind::kRecv:
          observable = parsed && observable_tag(ev.tag);
          break;
        case mpisim::TraceKind::kCollective:
          observable = parsed;
          break;
        case mpisim::TraceKind::kFault:
          if (parsed && ev.crashed_rank == rank) {
            crashed_here = true;  // terminal: the rank is gone
            observable = false;
          } else {
            // A dropped send still left the sender's send edge: replay it
            // as the SEND it would have been.
            observable = parsed && ev.drop && observable_tag(ev.tag);
          }
          break;
        default:
          break;  // phases, compute, io, marks, recovery notes
      }
      if (!observable) {
        ++res.events_skipped;
        continue;
      }
      if (crashed_here) {
        fail("spec " + std::string(spec_.name) + ": rank " +
             std::to_string(rank) + " produced " + describe(e) +
             " after its crash");
        break;
      }
      if (!closure(role, rank, frontier)) {
        fail("spec " + std::string(spec_.name) + ": rank " +
             std::to_string(rank) + " frontier exceeded " +
             std::to_string(kMaxFrontier) +
             " configurations (spec too permissive?)");
        break;
      }
      std::string candidates;
      std::vector<Config> next = step(role, rank, frontier, ev, candidates);
      if (next.empty()) {
        fail("spec " + std::string(spec_.name) + ": rank " +
             std::to_string(rank) + " [" + role.name + "] diverged at its " +
             "observable event #" + std::to_string(index) + ": " +
             describe(e) + "; spec allowed states: {" + candidates + "}");
        break;
      }
      frontier = std::move(next);
      ++res.events_checked;
      ++index;
    }
    if (!res.ok) break;
    if (!crashed_here) {
      if (!closure(role, rank, frontier)) {
        fail("spec " + std::string(spec_.name) + ": rank " +
             std::to_string(rank) + " frontier exceeded " +
             std::to_string(kMaxFrontier) + " configurations at end of trace");
        break;
      }
      const bool accepted =
          std::any_of(frontier.begin(), frontier.end(),
                      [&role](const Config& c) {
                        return c.state == role.accept;
                      });
      if (!accepted) {
        std::ostringstream states;
        const char* sep = "";
        for (const Config& c : frontier) {
          states << sep << state_label(role, c.state);
          sep = ", ";
        }
        fail("spec " + std::string(spec_.name) + ": rank " +
             std::to_string(rank) + " [" + role.name +
             "] ended without reaching accept; final states: {" +
             states.str() + "}");
        break;
      }
    }
    ++res.ranks_checked;
  }
  return res;
}

}  // namespace

std::string ConformResult::summary(const std::string& spec_name) const {
  std::string out = "CONFORM spec=" + spec_name +
                    " ranks=" + std::to_string(ranks_checked) +
                    " events=" + std::to_string(events_checked) +
                    " skipped=" + std::to_string(events_skipped) +
                    " result=" + (ok ? "ok" : "diverged");
  if (!ok) out += " error=" + error;
  return out;
}

ConformResult check_conformance(const ProtocolSpec& spec,
                                const SpecParams& params,
                                const std::vector<mpisim::TraceEvent>& events) {
  return Monitor(spec, params).run(events);
}

std::string enforce_conformance(const ProtocolSpec& spec,
                                const SpecParams& params,
                                const std::vector<mpisim::TraceEvent>& events) {
  const ConformResult res = check_conformance(spec, params, events);
  if (!res.ok) throw mpisim::VerifyError(res.summary(spec.name));
  return res.summary(spec.name);
}

}  // namespace pioblast::protospec
