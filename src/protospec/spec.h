// Declarative protocol specifications for the driver message protocols.
//
// Each driver role (mpiBLAST master/worker, pioBLAST master/worker, pario
// exchange participant) is described as a communicating state machine: a
// plain C++ table of `Edge`s, each labelled with an operation (send /
// recv / collective / internal tau), a tag from driver/tags.h, a payload
// TypeStamp, byte bounds, a peer selector, and guard/effect functions over
// a small fixed-layout environment. No codegen: the tables are ordinary
// constant data built by the factory functions below.
//
// Two consumers read the same tables:
//   * check.h    — an explicit-state exhaustive model checker over the
//                  product of the machines (all schedules, bounded worlds,
//                  optional single-crash injection);
//   * conform.h  — a runtime conformance monitor that replays a real
//                  mpisim trace against the machines and reports the first
//                  divergent transition.
//
// The split between `strict` and permissive guard evaluation exists
// because the checker knows the exact global state (scheduler bounds,
// candidate counts) while the monitor sees only one rank's event stream:
// data-dependent branches (how many fetch round trips, whether the
// scheduler parks a worker) are explored nondeterministically when
// `Ctx::strict` is false.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "mpisim/verify.h"

namespace pioblast::protospec {

/// Bounds instantiating a spec for one concrete world. The model checker
/// requires every count to be concrete (>= 0); the conformance monitor may
/// pass -1 for data-dependent quantities (tasks, fetch round trips), which
/// makes the guards that consult them permissive.
struct SpecParams {
  int nranks = 2;       ///< total ranks including the master
  int tasks = 1;        ///< work-queue tasks handed out by serve_work
  int queries = 1;      ///< queries in the output stage
  int fetch_cap = 1;    ///< mpiBLAST per-query fetch round-trip bound
  int batch = 0;        ///< pioBLAST query_batch (0 = one flush at the end)
  bool fault_tolerant = false;  ///< run carries an active fault plan
  bool dynamic = false;         ///< pioBLAST greedy (serve_work) input mode
  bool early_score = false;     ///< pioBLAST early-score gather+bcast
  int naggs = 1;        ///< pario exchange: aggregator count
  int rounds = 1;       ///< pario exchange: buffer rounds per domain
};

/// Mutable per-role protocol state. Fixed POD layout so the model checker
/// can hash and compare states bytewise; the meaning of each counter slot
/// is per-machine but the conventional roles below cover all of them.
struct Env {
  static constexpr int kMaxRanks = 33;  ///< spec world bound (master + 32)
  std::int32_t c[6]{};                  ///< counters (kC* slots below)
  std::int16_t hist[kMaxRanks]{};       ///< master: per-worker history size
  std::uint8_t f[kMaxRanks]{};          ///< per-worker flag bits (kF* below)
  friend bool operator==(const Env&, const Env&) = default;
};

// Conventional counter slots.
inline constexpr int kCTasks = 0;    ///< tasks left (serve_work)
inline constexpr int kCActive = 1;   ///< unretired live workers
inline constexpr int kCQuery = 2;    ///< output-stage query index
inline constexpr int kCAux = 3;      ///< fetch / exchange round counter
inline constexpr int kCIter = 4;     ///< PeerSel::kIter target rank
inline constexpr int kCLastSrc = 5;  ///< PeerSel::kLastSrc target rank

// Flag bits in Env::f (master planes index workers by their rank).
inline constexpr std::uint8_t kFBusy = 1;      ///< assignment outstanding
inline constexpr std::uint8_t kFRetired = 2;   ///< has_task=0 reply sent
inline constexpr std::uint8_t kFDead = 4;      ///< failure detector said so
inline constexpr std::uint8_t kFParked = 8;    ///< request held, no reply
inline constexpr std::uint8_t kFDegraded = 16; ///< flush agreed degraded

/// Edge operation kind.
enum class Op : std::uint8_t {
  kSend,        ///< inject one message (asynchronous, never blocks)
  kRecv,        ///< consume one matching message (blocks until available)
  kCollective,  ///< enter a named collective (blocks until all live ranks)
  kTau,         ///< internal step, no communication
};

/// How an edge's concrete peer rank is resolved.
enum class PeerSel : std::uint8_t {
  kNone,       ///< no peer (tau / collective)
  kMaster,     ///< rank 0
  kAnyWorker,  ///< any rank in 1..nranks-1 (nondeterministic)
  kIter,       ///< Env::c[kCIter] (loop fan-outs; effects advance it)
  kLastSrc,    ///< Env::c[kCLastSrc] (reply to the remembered sender)
};

/// Matches any message flavor on a recv edge.
inline constexpr int kAnyFlavor = -1;

// Message flavors (meaningful per tag; 0 = the tag's only flavor). The
// checker matches them against what the send edge declared; the monitor
// tells them apart by the byte bounds (an Assign retirement is exactly one
// byte, a task reply at least five).
inline constexpr int kAssignTask = 1;    ///< kTagAssign: has_task=1 + id
inline constexpr int kAssignRetire = 2;  ///< kTagAssign: has_task=0
inline constexpr int kFetchData = 1;     ///< kTagFetchReq: subject index
inline constexpr int kFetchEnd = 2;      ///< kTagFetchReq: kEndOfQuery

/// Guard/effect evaluation context. `peer` is the resolved concrete peer
/// for the transition under evaluation (-1 if none), `flavor` the flavor
/// of the message being consumed on recv edges.
struct Ctx {
  const SpecParams* params = nullptr;
  Env* env = nullptr;
  int self = 0;
  int nranks = 0;
  int peer = -1;
  int flavor = 0;
  const std::uint8_t* crashed = nullptr;  ///< per-rank crashed view
  bool strict = true;  ///< checker: exact guards; monitor: permissive
};

/// One transition of a role machine.
struct Edge {
  const char* name = "";        ///< short label for diagnostics
  std::int16_t from = 0;        ///< source state
  std::int16_t to = 0;          ///< target state
  Op op = Op::kTau;
  int tag = 0;                  ///< message tag (send/recv)
  std::int16_t flavor = 0;      ///< sent flavor / required recv flavor
  PeerSel peer = PeerSel::kNone;
  const char* coll = nullptr;   ///< collective op name ("barrier", ...)
  std::uint64_t stamp = 0;      ///< payload TypeStamp fingerprint (0 = raw)
  std::uint32_t min_bytes = 0;  ///< wire-size bounds: the monitor uses
  std::uint32_t max_bytes = 0xFFFF'FFFFu;  ///< them to tell flavors apart
  bool silent = false;          ///< produces no trace event (drains, the
                                ///< pario liveness sync)
  bool lost_peer_escape = false;  ///< models PeerLostError: enabled when
                                  ///< the peer crashed and its channel to
                                  ///< this rank holds no pending message
  bool (*guard)(const Ctx&) = nullptr;   ///< nullptr = always enabled
  void (*effect)(Ctx&) = nullptr;        ///< nullptr = no state change
};

/// One role's complete machine.
struct Role {
  const char* name = "";
  int nstates = 0;
  int initial = 0;
  int accept = 0;  ///< terminal state; a rank here is done
  std::vector<Edge> edges;
  void (*init_env)(Env&, const SpecParams&, int self) = nullptr;
  const char* (*state_name)(int) = nullptr;
};

/// A protocol: a set of roles plus the rank -> role mapping.
struct ProtocolSpec {
  const char* name = "";
  std::vector<Role> roles;
  int (*role_of)(int rank, const SpecParams&) = nullptr;

  const Role& role_for(int rank, const SpecParams& params) const {
    return roles[static_cast<std::size_t>(role_of(rank, params))];
  }
};

/// Resolves an edge's peer selector against an environment. Returns the
/// concrete rank, kPeerAny for kAnyWorker, or -1 for no peer.
inline constexpr int kPeerAny = -2;
inline int resolve_peer(const Edge& e, const Env& env) {
  switch (e.peer) {
    case PeerSel::kNone: return -1;
    case PeerSel::kMaster: return 0;
    case PeerSel::kAnyWorker: return kPeerAny;
    case PeerSel::kIter: return env.c[kCIter];
    case PeerSel::kLastSrc: return env.c[kCLastSrc];
  }
  return -1;
}

/// State label helper ("serve_loop" or the bare number).
std::string state_label(const Role& role, int state);

/// Evaluates an edge guard (nullptr = enabled).
inline bool guard_ok(const Edge& e, const Ctx& ctx) {
  return e.guard == nullptr || e.guard(ctx);
}

// ---------------------------------------------------------------------------
// The specs. Factories return fresh copies so tests can seed bugs by
// mutating the edge tables; `all_specs()` serves shared immutable copies.

/// mpiBLAST: serve_work scheduling + per-query gather / fetch round trips /
/// end-of-query fan-out (paper Figure 2).
ProtocolSpec mpiblast_spec();

/// pioBLAST: static range plans or dynamic serve_work, stats broadcast,
/// batched collective-output flushes with the fault-degraded path.
ProtocolSpec pioblast_spec();

/// pario collective-write core: the shuffle exchange into aggregators.
ProtocolSpec pario_write_exchange_spec();

/// pario collective-read core: read-request / read-response rounds.
ProtocolSpec pario_read_exchange_spec();

/// All specs, for audits and tooling (pointers to shared static copies).
std::vector<const ProtocolSpec*> all_specs();

/// Looks up a spec by name ("mpiblast", "pioblast", "pario_write",
/// "pario_read"); nullptr when unknown.
const ProtocolSpec* spec_by_name(const std::string& name);

// ---------------------------------------------------------------------------
// Cross-audits (tentpole item 4).

struct AuditResult {
  bool ok = true;
  std::vector<std::string> problems;
};

/// Static spec audit: every tag in driver::detail::kAllTags is covered by
/// at least one spec edge; every send/recv edge's tag is either a
/// registered driver tag, the fault notice, or a pario-internal tag; and
/// for each tag the send-side and recv-side TypeStamps agree.
AuditResult audit_tag_coverage();

}  // namespace pioblast::protospec
