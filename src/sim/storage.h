// Storage device models for the simulated shared and local file systems.
//
// The paper's experiments span three storage regimes:
//   * SGI Altix + XFS: a parallel file system where many clients sustain
//     high aggregate *read* bandwidth (pioBLAST's 1 GB input stage takes
//     under half a second) while concurrent small writes are far slower
//     (mpiBLAST's fragment copy to shared scratch takes ~17 s);
//   * blade cluster + NFS: a single server that serializes concurrent
//     clients (Section 4.2, Figure 4);
//   * node-local disks used by mpiBLAST's fragment copy stage.
//
// Cost functions are pure: they take the byte count and a *concurrency
// hint* (how many clients are streaming simultaneously, known to the
// drivers from protocol structure) and return a duration. Keeping the
// model stateless makes simulated timings deterministic under arbitrary
// host thread interleavings.
#pragma once

#include <cstdint>
#include <string>

#include "sim/time.h"

namespace pioblast::sim {

/// How a device behaves under concurrent clients.
enum class StorageKind {
  kParallel,      ///< striped parallel FS: aggregate bandwidth shared evenly
  kSingleServer,  ///< NFS-like: one server, clients time-share its bandwidth
  kLocalDisk,     ///< per-node disk: no cross-client sharing
};

/// Immutable storage parameter set with pure cost functions.
class StorageModel {
 public:
  struct Params {
    StorageKind kind = StorageKind::kParallel;
    Time access_latency = 0.5e-3;         ///< per-operation setup/seek (s)
    double client_read_bw = 400e6;        ///< one client streaming reads (B/s)
    double client_write_bw = 200e6;       ///< one client streaming writes (B/s)
    double aggregate_read_bw = 4e9;       ///< device-wide read ceiling (B/s)
    double aggregate_write_bw = 500e6;    ///< device-wide write ceiling (B/s)
    std::string name = "storage";
  };

  StorageModel() = default;
  explicit StorageModel(const Params& p) : p_(p) {}

  const Params& params() const { return p_; }
  const std::string& name() const { return p_.name; }
  StorageKind kind() const { return p_.kind; }

  /// Effective streaming bandwidth seen by one client when `concurrency`
  /// clients access the device at once.
  double effective_read_bandwidth(int concurrency) const;
  double effective_write_bandwidth(int concurrency) const;

  /// Duration of one read/write of `bytes` by a single client while
  /// `concurrency` clients (including this one) access the device.
  Time read_seconds(std::uint64_t bytes, int concurrency = 1) const;
  Time write_seconds(std::uint64_t bytes, int concurrency = 1) const;

  // ---- presets ----------------------------------------------------------

  /// XFS on the ORNL Altix: reads scale to many clients; writes are much
  /// slower in aggregate (2004-era RAID behind the parallel FS).
  static StorageModel xfs_parallel();

  /// NFS on the NCSU blade cluster: single server, modest bandwidth.
  static StorageModel nfs_server();

  /// Commodity node-local disk (40 GB blade-era drive).
  static StorageModel local_disk();

 private:
  double shared_rate(double client_bw, double aggregate_bw, int concurrency) const;

  Params p_{};
};

}  // namespace pioblast::sim
