// LogGP-style network model.
//
// Point-to-point message cost is decomposed, following the LogGP family of
// models, into sender overhead (o), per-byte injection gap (G = 1/bandwidth),
// wire latency (L), and receiver overhead (o + per-byte copy cost). The
// sender pays o + n*G on its own clock; the message arrives L later; the
// receiver pays its overhead when it picks the message up. Incast contention
// at a busy receiver (e.g. the mpiBLAST master collecting results from every
// worker) emerges naturally because the receiver's clock serializes the
// per-message receive processing.
#pragma once

#include <cstdint>

#include "sim/time.h"

namespace pioblast::sim {

/// Immutable network parameter set. All cost functions are pure so that
/// simulated timings are independent of host thread scheduling.
class NetworkModel {
 public:
  struct Params {
    Time latency = 5e-6;            ///< L: wire + switch latency (s).
    Time send_overhead = 1e-6;      ///< o_s: fixed CPU cost to inject a message.
    Time recv_overhead = 1e-6;      ///< o_r: fixed CPU cost to receive a message.
    double bandwidth = 1.0e9;       ///< B: per-link bandwidth (bytes/s).
    double recv_copy_bandwidth = 4.0e9;  ///< memory copy rate at receiver (bytes/s).
  };

  NetworkModel() = default;
  explicit NetworkModel(const Params& p) : p_(p) {}

  const Params& params() const { return p_; }

  /// Time the sender's clock advances to inject an n-byte message.
  Time send_cost(std::uint64_t bytes) const {
    return p_.send_overhead + static_cast<double>(bytes) / p_.bandwidth;
  }

  /// Wire latency between injection completion and arrival at the receiver.
  Time wire_latency() const { return p_.latency; }

  /// Time the receiver's clock advances to drain an n-byte message.
  Time recv_cost(std::uint64_t bytes) const {
    return p_.recv_overhead +
           static_cast<double>(bytes) / p_.recv_copy_bandwidth;
  }

  /// End-to-end unloaded transfer time (used by analytic collective bounds).
  Time transfer_time(std::uint64_t bytes) const {
    return send_cost(bytes) + wire_latency() + recv_cost(bytes);
  }

  // ---- presets ----------------------------------------------------------

  /// SGI Altix NUMAlink-class fabric: very low latency, high bandwidth.
  static NetworkModel altix_numalink();

  /// Gigabit-Ethernet cluster interconnect (NCSU blade cluster era).
  static NetworkModel gigabit_ethernet();

 private:
  Params p_{};
};

}  // namespace pioblast::sim
