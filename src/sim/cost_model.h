// Deterministic compute-cost model.
//
// BLAST computation runs for real (the engine produces real hit lists and
// real formatted output), but its *duration* is charged to the virtual clock
// from the engine's operation counters multiplied by per-operation costs.
// This keeps 64-rank simulations meaningful on a single-core host and makes
// every bench bit-reproducible. Constants are calibrated to a ~1.5 GHz
// Itanium2-class node (the ORNL Altix of the paper); absolute values only
// set the scale — the experiments' conclusions come from relative shapes.
#pragma once

#include <cstdint>

#include "sim/time.h"

namespace pioblast::sim {

/// Operation counters reported by one BLAST search invocation. The engine
/// fills these; the cost model converts them to virtual seconds.
struct SearchCounters {
  std::uint64_t db_residues_scanned = 0;   ///< residues passed through the word scanner
  std::uint64_t seed_hits = 0;             ///< lookup-table hits examined
  std::uint64_t two_hit_triggers = 0;      ///< seed pairs that triggered extension
  std::uint64_t ungapped_cells = 0;        ///< cells touched by ungapped X-drop extension
  std::uint64_t gapped_cells = 0;          ///< DP cells touched by gapped extension
  std::uint64_t traceback_cells = 0;       ///< DP cells touched during traceback
  std::uint64_t hsps_found = 0;            ///< HSPs surviving score/E-value cutoffs

  SearchCounters& operator+=(const SearchCounters& o) {
    db_residues_scanned += o.db_residues_scanned;
    seed_hits += o.seed_hits;
    two_hit_triggers += o.two_hit_triggers;
    ungapped_cells += o.ungapped_cells;
    gapped_cells += o.gapped_cells;
    traceback_cells += o.traceback_cells;
    hsps_found += o.hsps_found;
    return *this;
  }
};

/// Per-operation virtual costs. All pure functions of counters/sizes.
class CostModel {
 public:
  struct Params {
    // --- BLAST search kernel -------------------------------------------
    double sec_per_db_residue = 4e-9;     ///< word scan + lookup probe
    double sec_per_seed_hit = 12e-9;      ///< diagonal bookkeeping per hit
    double sec_per_ungapped_cell = 3e-9;
    double sec_per_gapped_cell = 9e-9;
    double sec_per_traceback_cell = 12e-9;
    Time fragment_setup = 0.05;           ///< per-fragment kernel (re)initialisation
    Time process_init = 1.2;              ///< NCBI-toolkit-style startup per process
    // --- result processing ----------------------------------------------
    double sec_per_merge_record = 2.5e-6;     ///< master screening/sorting one candidate record
    double sec_per_merge_byte = 0.1e-6;       ///< master processing per byte of submitted result data
    /// Master-side cost of routing one *full alignment record* through the
    /// NCBI result structures — paid by mpiBLAST, whose workers submit
    /// entire HSPs; pioBLAST's metadata records skip this entirely (§3.2).
    double sec_per_hsp_result = 100e-6;
    double sec_per_format_byte = 60e-9;       ///< alignment -> human-readable text
    double sec_per_memcpy_byte = 0.5e-9;      ///< in-memory buffer copies
    Time per_alignment_fetch_handling = 8e-6; ///< bookkeeping per serialized fetch round
    // --- database preparation -------------------------------------------
    double sec_per_formatdb_byte = 360e-9;    ///< formatdb parse+index per raw byte
    // --- global scale ----------------------------------------------------
    double scale = 1.0;  ///< multiplies every compute charge (workload scaling knob)
  };

  CostModel() = default;
  explicit CostModel(const Params& p) : p_(p) {}

  const Params& params() const { return p_; }

  /// Virtual seconds of BLAST kernel compute for one search invocation.
  Time search_seconds(const SearchCounters& c) const {
    const double s = static_cast<double>(c.db_residues_scanned) * p_.sec_per_db_residue +
                     static_cast<double>(c.seed_hits) * p_.sec_per_seed_hit +
                     static_cast<double>(c.ungapped_cells) * p_.sec_per_ungapped_cell +
                     static_cast<double>(c.gapped_cells) * p_.sec_per_gapped_cell +
                     static_cast<double>(c.traceback_cells) * p_.sec_per_traceback_cell;
    return s * p_.scale;
  }

  Time fragment_setup_seconds() const { return p_.fragment_setup * p_.scale; }
  Time process_init_seconds() const { return p_.process_init * p_.scale; }

  /// Master-side screening cost: a per-record charge plus a per-byte
  /// charge on the submitted result data. The byte term is what separates
  /// mpiBLAST (full alignment records) from pioBLAST (48-byte metadata) —
  /// the paper's message-volume reduction (§3.2).
  Time merge_seconds(std::uint64_t records, std::uint64_t bytes = 0) const {
    return (static_cast<double>(records) * p_.sec_per_merge_record +
            static_cast<double>(bytes) * p_.sec_per_merge_byte) *
           p_.scale;
  }

  /// Per-record cost of full-HSP result processing (mpiBLAST master only).
  Time hsp_result_seconds(std::uint64_t records) const {
    return static_cast<double>(records) * p_.sec_per_hsp_result * p_.scale;
  }

  Time format_seconds(std::uint64_t output_bytes) const {
    return static_cast<double>(output_bytes) * p_.sec_per_format_byte * p_.scale;
  }

  Time memcpy_seconds(std::uint64_t bytes) const {
    return static_cast<double>(bytes) * p_.sec_per_memcpy_byte * p_.scale;
  }

  Time fetch_handling_seconds(std::uint64_t rounds) const {
    return static_cast<double>(rounds) * p_.per_alignment_fetch_handling * p_.scale;
  }

  Time formatdb_seconds(std::uint64_t raw_bytes) const {
    return static_cast<double>(raw_bytes) * p_.sec_per_formatdb_byte * p_.scale;
  }

 private:
  Params p_{};
};

}  // namespace pioblast::sim
