// Cluster configuration: the machine a simulated run executes on.
//
// A cluster bundles the network model, the shared file system model, the
// optional node-local disks, and the compute cost model. The two presets
// mirror the paper's test platforms (Section 4).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "sim/cost_model.h"
#include "sim/network.h"
#include "sim/storage.h"

namespace pioblast::sim {

/// Everything the runtime needs to know about the simulated machine.
struct ClusterConfig {
  std::string name = "cluster";
  NetworkModel network{};
  StorageModel shared_storage{};            ///< shared FS holding DB + output
  std::optional<StorageModel> local_disks{};///< per-node scratch, if any
  CostModel cost{};
  /// Per-rank relative compute speed (1.0 = nominal; 0.5 = half speed).
  /// Empty means a homogeneous machine. Ranks beyond the vector's size run
  /// at nominal speed. This models the paper's §5 scenario of
  /// "heterogeneous nodes or skewed search" that motivates dynamic
  /// load balancing.
  std::vector<double> node_speed{};

  bool has_local_disks() const { return local_disks.has_value(); }

  /// Compute-speed factor of `rank` (>= epsilon; misconfigured zero or
  /// negative entries are treated as nominal).
  double speed_of(int rank) const {
    if (rank < 0 || static_cast<std::size_t>(rank) >= node_speed.size())
      return 1.0;
    const double s = node_speed[static_cast<std::size_t>(rank)];
    return s > 0 ? s : 1.0;
  }

  /// ORNL SGI Altix "Ram": NUMAlink fabric, XFS parallel FS, and — as the
  /// paper notes — *no* node-local storage open to user jobs, so mpiBLAST's
  /// copy stage targets shared job scratch space on XFS.
  static ClusterConfig ornl_altix();

  /// NCSU IBM Blade Cluster: gigabit Ethernet, NFS shared FS, 40 GB local
  /// disks on every blade.
  static ClusterConfig ncsu_blade();
};

}  // namespace pioblast::sim
