#include "sim/storage.h"

#include <algorithm>

#include "util/error.h"

namespace pioblast::sim {

double StorageModel::shared_rate(double client_bw, double aggregate_bw,
                                 int concurrency) const {
  PIOBLAST_CHECK(concurrency >= 1);
  if (p_.kind == StorageKind::kLocalDisk) {
    // Each node owns its disk; cross-client sharing never applies.
    return client_bw;
  }
  // Parallel FS and single-server FS both divide their aggregate ceiling
  // across concurrent clients; the difference is in the ceilings (and in
  // the per-request latency handling below).
  return std::min(client_bw, aggregate_bw / static_cast<double>(concurrency));
}

double StorageModel::effective_read_bandwidth(int concurrency) const {
  return shared_rate(p_.client_read_bw, p_.aggregate_read_bw, concurrency);
}

double StorageModel::effective_write_bandwidth(int concurrency) const {
  return shared_rate(p_.client_write_bw, p_.aggregate_write_bw, concurrency);
}

Time StorageModel::read_seconds(std::uint64_t bytes, int concurrency) const {
  PIOBLAST_CHECK(concurrency >= 1);
  // A single-server file system also serializes *request handling*, so the
  // per-operation latency grows with the number of concurrent clients.
  Time setup = p_.access_latency;
  if (p_.kind == StorageKind::kSingleServer) setup *= concurrency;
  return setup +
         static_cast<double>(bytes) / effective_read_bandwidth(concurrency);
}

Time StorageModel::write_seconds(std::uint64_t bytes, int concurrency) const {
  PIOBLAST_CHECK(concurrency >= 1);
  Time setup = p_.access_latency;
  if (p_.kind == StorageKind::kSingleServer) setup *= concurrency;
  return setup +
         static_cast<double>(bytes) / effective_write_bandwidth(concurrency);
}

StorageModel StorageModel::xfs_parallel() {
  Params p;
  p.kind = StorageKind::kParallel;
  p.access_latency = 0.3e-3;
  p.client_read_bw = 500e6;
  p.client_write_bw = 80e6;
  p.aggregate_read_bw = 4e9;    // parallel reads scale (1 GB in < 0.5 s)
  p.aggregate_write_bw = 130e6; // shared scratch writes are the bottleneck
  p.name = "xfs";
  return StorageModel(p);
}

StorageModel StorageModel::nfs_server() {
  Params p;
  p.kind = StorageKind::kSingleServer;
  p.access_latency = 2e-3;
  p.client_read_bw = 60e6;
  p.client_write_bw = 30e6;
  p.aggregate_read_bw = 80e6;  // one NFS server's disk+net ceiling
  p.aggregate_write_bw = 35e6;
  p.name = "nfs";
  return StorageModel(p);
}

StorageModel StorageModel::local_disk() {
  Params p;
  p.kind = StorageKind::kLocalDisk;
  p.access_latency = 5e-3;  // seek-dominated commodity drive
  p.client_read_bw = 45e6;
  p.client_write_bw = 35e6;
  p.aggregate_read_bw = 45e6;
  p.aggregate_write_bw = 35e6;
  p.name = "local-disk";
  return StorageModel(p);
}

}  // namespace pioblast::sim
