// Virtual time base for the cluster simulation.
//
// The reproduction runs real protocol code (messages, file bytes, BLAST
// computation) on threads, but *time* is simulated: every rank owns a virtual
// clock that advances according to analytic cost models. This gives
// deterministic, machine-independent timings on a single-core host while the
// data flow itself stays real.
#pragma once

namespace pioblast::sim {

/// Virtual time in seconds. Double precision is ample: runs span minutes of
/// virtual time with microsecond-scale increments.
using Time = double;

/// A monotone virtual clock owned by one simulated process.
class Clock {
 public:
  Time now() const { return now_; }

  /// Advances by a non-negative duration.
  void advance(Time seconds) {
    if (seconds > 0) now_ += seconds;
  }

  /// Jumps forward to `t` if `t` is later (used when synchronizing with
  /// message arrivals and collective completions); never moves backwards.
  void advance_to(Time t) {
    if (t > now_) now_ = t;
  }

 private:
  Time now_ = 0.0;
};

}  // namespace pioblast::sim
