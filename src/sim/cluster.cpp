#include "sim/cluster.h"

namespace pioblast::sim {

ClusterConfig ClusterConfig::ornl_altix() {
  ClusterConfig c;
  c.name = "ornl-altix";
  c.network = NetworkModel::altix_numalink();
  c.shared_storage = StorageModel::xfs_parallel();
  c.local_disks = std::nullopt;  // user jobs have no local storage on Ram
  c.cost = CostModel{};
  return c;
}

ClusterConfig ClusterConfig::ncsu_blade() {
  ClusterConfig c;
  c.name = "ncsu-blade";
  c.network = NetworkModel::gigabit_ethernet();
  c.shared_storage = StorageModel::nfs_server();
  c.local_disks = StorageModel::local_disk();
  c.cost = CostModel{};
  return c;
}

}  // namespace pioblast::sim
