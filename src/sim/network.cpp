#include "sim/network.h"

namespace pioblast::sim {

NetworkModel NetworkModel::altix_numalink() {
  Params p;
  p.latency = 1.5e-6;             // NUMAlink4-class latency
  p.send_overhead = 0.5e-6;
  p.recv_overhead = 0.5e-6;
  p.bandwidth = 3.2e9;            // ~3.2 GB/s per link
  p.recv_copy_bandwidth = 6.4e9;  // local memory copy
  return NetworkModel(p);
}

NetworkModel NetworkModel::gigabit_ethernet() {
  Params p;
  p.latency = 50e-6;              // GigE + switch
  p.send_overhead = 10e-6;        // TCP/IP stack traversal
  p.recv_overhead = 10e-6;
  p.bandwidth = 110e6;            // ~110 MB/s effective
  p.recv_copy_bandwidth = 2.0e9;
  return NetworkModel(p);
}

}  // namespace pioblast::sim
