#include "util/units.h"

#include <cmath>
#include <cstdio>

namespace pioblast::util {

std::string format_bytes(std::uint64_t bytes) {
  char buf[64];
  if (bytes >= kGiB) {
    std::snprintf(buf, sizeof buf, "%.2f GiB", static_cast<double>(bytes) / kGiB);
  } else if (bytes >= kMiB) {
    std::snprintf(buf, sizeof buf, "%.2f MiB", static_cast<double>(bytes) / kMiB);
  } else if (bytes >= kKiB) {
    std::snprintf(buf, sizeof buf, "%.2f KiB", static_cast<double>(bytes) / kKiB);
  } else {
    std::snprintf(buf, sizeof buf, "%llu B", static_cast<unsigned long long>(bytes));
  }
  return buf;
}

std::string format_seconds(double seconds) {
  char buf[64];
  if (seconds < 0) seconds = 0;
  if (seconds >= 120.0) {
    const int minutes = static_cast<int>(seconds / 60.0);
    const double rem = seconds - 60.0 * minutes;
    std::snprintf(buf, sizeof buf, "%dm%04.1fs", minutes, rem);
  } else if (seconds >= 1.0) {
    std::snprintf(buf, sizeof buf, "%.2f s", seconds);
  } else if (seconds >= 1e-3) {
    std::snprintf(buf, sizeof buf, "%.2f ms", seconds * 1e3);
  } else {
    std::snprintf(buf, sizeof buf, "%.2f us", seconds * 1e6);
  }
  return buf;
}

std::string format_percent(double fraction) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.1f%%", fraction * 100.0);
  return buf;
}

}  // namespace pioblast::util
