#include "util/args.h"

#include <cstdlib>
#include <sstream>

#include "util/error.h"

namespace pioblast::util {

ArgParser::ArgParser(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description)) {}

ArgParser& ArgParser::add(const std::string& name, const std::string& default_value,
                          const std::string& help) {
  PIOBLAST_CHECK_MSG(find(name) == nullptr, "duplicate option --" << name);
  options_.push_back({name, default_value, help, false});
  return *this;
}

ArgParser& ArgParser::add_flag(const std::string& name, const std::string& help) {
  PIOBLAST_CHECK_MSG(find(name) == nullptr, "duplicate option --" << name);
  options_.push_back({name, "false", help, true});
  return *this;
}

const ArgParser::Option* ArgParser::find(const std::string& name) const {
  for (const Option& opt : options_)
    if (opt.name == name) return &opt;
  return nullptr;
}

bool ArgParser::parse(int argc, const char* const* argv) {
  values_.clear();
  positional_.clear();
  error_.clear();
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg.erase(0, 2);
    if (arg == "help") {
      error_ = usage();
      return false;
    }
    std::string value;
    bool has_value = false;
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      value = arg.substr(eq + 1);
      arg.erase(eq);
      has_value = true;
    }
    const Option* opt = find(arg);
    if (opt == nullptr) {
      error_ = "unknown option --" + arg + "\n" + usage();
      return false;
    }
    if (opt->is_flag) {
      values_[arg] = has_value ? value : "true";
      continue;
    }
    if (!has_value) {
      if (i + 1 >= argc) {
        error_ = "option --" + arg + " needs a value\n" + usage();
        return false;
      }
      value = argv[++i];
    }
    values_[arg] = value;
  }
  return true;
}

std::string ArgParser::get(const std::string& name) const {
  const Option* opt = find(name);
  PIOBLAST_CHECK_MSG(opt != nullptr, "unregistered option --" << name);
  const auto it = values_.find(name);
  return it == values_.end() ? opt->default_value : it->second;
}

std::int64_t ArgParser::get_int(const std::string& name) const {
  const std::string v = get(name);
  char* end = nullptr;
  const long long parsed = std::strtoll(v.c_str(), &end, 10);
  PIOBLAST_CHECK_MSG(end != v.c_str() && *end == '\0',
                     "option --" << name << " expects an integer, got '" << v
                                 << "'");
  return parsed;
}

double ArgParser::get_double(const std::string& name) const {
  const std::string v = get(name);
  char* end = nullptr;
  const double parsed = std::strtod(v.c_str(), &end);
  PIOBLAST_CHECK_MSG(end != v.c_str() && *end == '\0',
                     "option --" << name << " expects a number, got '" << v
                                 << "'");
  return parsed;
}

bool ArgParser::get_flag(const std::string& name) const {
  const std::string v = get(name);
  return v == "true" || v == "1" || v == "yes";
}

std::string ArgParser::usage() const {
  std::ostringstream os;
  os << "usage: " << program_ << " [options]\n";
  if (!description_.empty()) os << description_ << "\n";
  os << "options:\n";
  for (const Option& opt : options_) {
    os << "  --" << opt.name;
    if (!opt.is_flag) os << "=<" << (opt.default_value.empty() ? "value" : opt.default_value) << ">";
    os << "\n      " << opt.help << "\n";
  }
  return os.str();
}

}  // namespace pioblast::util
