// Minimal command-line argument parser for the tools and examples.
//
// Supports --key=value, --key value, and boolean --flag forms, with typed
// accessors, defaults, and a generated usage string. Unknown options are
// rejected so typos fail loudly.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace pioblast::util {

class ArgParser {
 public:
  /// `spec` entries register options up front: name (without "--"),
  /// default value ("" = required-less flag), and help text.
  struct Option {
    std::string name;
    std::string default_value;
    std::string help;
    bool is_flag = false;
  };

  explicit ArgParser(std::string program, std::string description = "");

  /// Registers a value option with a default.
  ArgParser& add(const std::string& name, const std::string& default_value,
                 const std::string& help);

  /// Registers a boolean flag (false unless present).
  ArgParser& add_flag(const std::string& name, const std::string& help);

  /// Parses argv. Returns false (and fills error()) on unknown options,
  /// missing values, or --help (which also fills usage into error()).
  bool parse(int argc, const char* const* argv);

  const std::string& error() const { return error_; }

  std::string get(const std::string& name) const;
  std::int64_t get_int(const std::string& name) const;
  double get_double(const std::string& name) const;
  bool get_flag(const std::string& name) const;

  /// Positional arguments (everything not starting with "--").
  const std::vector<std::string>& positional() const { return positional_; }

  std::string usage() const;

 private:
  const Option* find(const std::string& name) const;

  std::string program_;
  std::string description_;
  std::vector<Option> options_;
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
  std::string error_;
};

}  // namespace pioblast::util
