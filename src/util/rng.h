// Deterministic pseudo-random number generation.
//
// Every stochastic component of the reproduction (database generation, query
// sampling) draws from this generator so that benches and tests are
// bit-reproducible across runs and platforms. xoshiro256** seeded via
// splitmix64, per the reference implementations by Blackman & Vigna.
#pragma once

#include <array>
#include <cstdint>
#include <limits>

#include "util/error.h"

namespace pioblast::util {

/// splitmix64 step; used for seeding and as a cheap stateless mixer.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** — fast, high-quality, deterministic 64-bit PRNG.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5eedULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return std::numeric_limits<result_type>::max(); }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound) with Lemire's multiply-shift reduction.
  std::uint64_t below(std::uint64_t bound) {
    PIOBLAST_CHECK(bound > 0);
    const auto x = (*this)();
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(x) * bound) >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::uint64_t between(std::uint64_t lo, std::uint64_t hi) {
    PIOBLAST_CHECK(lo <= hi);
    return lo + below(hi - lo + 1);
  }

  /// Uniform double in [0, 1).
  double uniform() { return static_cast<double>((*this)() >> 11) * 0x1.0p-53; }

  /// Derives an independent child stream; children of distinct indices are
  /// decorrelated (seeded through splitmix64 of the parent state).
  Rng fork(std::uint64_t stream_index) {
    std::uint64_t mix = state_[0] ^ (stream_index * 0x9e3779b97f4a7c15ULL);
    return Rng(splitmix64(mix));
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace pioblast::util
