// Per-process accounting of virtual time into named execution phases.
//
// The drivers mirror the paper's instrumentation: every stretch of a rank's
// virtual timeline is attributed to the phase the rank is currently in
// ("copy", "input", "search", "output", "other"), and run reports aggregate
// these buckets into the tables/figures of Section 4.
#pragma once

#include <map>
#include <string>

#include "sim/time.h"

namespace pioblast::util {

/// Accumulates seconds into named buckets. Not thread-safe; one per rank.
class PhaseTimer {
 public:
  /// Adds `seconds` to phase `name` (no-op for non-positive durations).
  void add(const std::string& name, sim::Time seconds) {
    if (seconds > 0) buckets_[name] += seconds;
  }

  /// Seconds accumulated for `name` (0 if the phase never ran).
  sim::Time get(const std::string& name) const {
    auto it = buckets_.find(name);
    return it == buckets_.end() ? 0.0 : it->second;
  }

  /// Sum over all phases.
  sim::Time total() const {
    sim::Time t = 0;
    for (const auto& [_, v] : buckets_) t += v;
    return t;
  }

  const std::map<std::string, sim::Time>& buckets() const { return buckets_; }

  void clear() { buckets_.clear(); }

 private:
  std::map<std::string, sim::Time> buckets_;
};

}  // namespace pioblast::util
