// Error-handling helpers shared across the pioBLAST codebase.
//
// We favour exceptions for unrecoverable misuse (contract violations carry a
// message with file/line) because the library is used from long-running
// drivers where an abort would lose the simulation state being debugged.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace pioblast::util {

/// Exception thrown when a PIOBLAST_CHECK contract is violated.
class ContractViolation : public std::logic_error {
 public:
  explicit ContractViolation(const std::string& what) : std::logic_error(what) {}
};

/// Exception thrown for runtime failures (bad input files, protocol errors).
class RuntimeError : public std::runtime_error {
 public:
  explicit RuntimeError(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] inline void check_failed(const char* expr, const char* file, int line,
                                      const std::string& msg) {
  std::ostringstream os;
  os << "contract violation: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw ContractViolation(os.str());
}
}  // namespace detail

}  // namespace pioblast::util

/// Checks a precondition/invariant; throws ContractViolation on failure.
#define PIOBLAST_CHECK(expr)                                                     \
  do {                                                                           \
    if (!(expr)) ::pioblast::util::detail::check_failed(#expr, __FILE__, __LINE__, ""); \
  } while (0)

/// Checked with an explanatory message streamed into the exception text.
#define PIOBLAST_CHECK_MSG(expr, msg)                                            \
  do {                                                                           \
    if (!(expr)) {                                                               \
      std::ostringstream pioblast_check_os_;                                     \
      pioblast_check_os_ << msg;                                                 \
      ::pioblast::util::detail::check_failed(#expr, __FILE__, __LINE__,          \
                                             pioblast_check_os_.str());          \
    }                                                                            \
  } while (0)
