// Minimal fixed-width table printer used by the bench harnesses to emit
// paper-style tables (Table 1, Table 2) and figure series to stdout/CSV.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace pioblast::util {

/// Column-aligned text table with an optional CSV rendering.
///
/// Usage:
///   Table t({"Program", "Copy/Input", "Search", "Output"});
///   t.add_row({"mpiBLAST", "17.1", "318.5", "1007.2"});
///   t.print(std::cout);
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);

  /// Number of data rows (excluding the header).
  std::size_t row_count() const { return rows_.size(); }

  /// Renders with padded columns, a rule under the header.
  void print(std::ostream& os) const;

  /// Renders as RFC-4180-ish CSV (fields containing commas are quoted).
  void print_csv(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with the given precision (bench convenience).
std::string fixed(double value, int precision = 1);

}  // namespace pioblast::util
