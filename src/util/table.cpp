#include "util/table.h"

#include <algorithm>
#include <cstdio>
#include <ostream>

#include "util/error.h"

namespace pioblast::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  PIOBLAST_CHECK(!header_.empty());
}

void Table::add_row(std::vector<std::string> cells) {
  PIOBLAST_CHECK_MSG(cells.size() == header_.size(),
                     "row has " << cells.size() << " cells, header has "
                                << header_.size());
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << row[c];
      if (c + 1 < row.size())
        os << std::string(width[c] - row[c].size() + 2, ' ');
    }
    os << '\n';
  };

  emit(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c)
    total += width[c] + (c + 1 < width.size() ? 2 : 0);
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
}

void Table::print_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      const std::string& cell = row[c];
      const bool quote = cell.find_first_of(",\"\n") != std::string::npos;
      if (quote) {
        os << '"';
        for (char ch : cell) {
          if (ch == '"') os << '"';
          os << ch;
        }
        os << '"';
      } else {
        os << cell;
      }
      if (c + 1 < row.size()) os << ',';
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
}

std::string fixed(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, value);
  return buf;
}

}  // namespace pioblast::util
