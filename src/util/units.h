// Size/time unit helpers used by drivers and bench harnesses.
#pragma once

#include <cstdint>
#include <string>

namespace pioblast::util {

inline constexpr std::uint64_t kKiB = 1024ULL;
inline constexpr std::uint64_t kMiB = 1024ULL * kKiB;
inline constexpr std::uint64_t kGiB = 1024ULL * kMiB;

/// Renders a byte count with a binary-unit suffix, e.g. "1.5 MiB".
std::string format_bytes(std::uint64_t bytes);

/// Renders seconds with adaptive precision, e.g. "0.42 s", "12.3 s", "3m05s".
std::string format_seconds(double seconds);

/// Renders a ratio as a percentage with one decimal, e.g. "95.6%".
std::string format_percent(double fraction);

}  // namespace pioblast::util
