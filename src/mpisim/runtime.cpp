#include "mpisim/runtime.h"

#include <exception>
#include <future>
#include <memory>
#include <mutex>
#include <system_error>
#include <thread>
#include <utility>

#include "mpisim/event_loop.h"
#include "mpisim/verifier.h"
#include "mpisim/world.h"

namespace pioblast::mpisim {

sim::Time RunReport::makespan() const {
  sim::Time t = 0;
  for (const auto& r : ranks) t = std::max(t, r.final_clock);
  return t;
}

sim::Time RunReport::phase_total(const std::string& phase) const {
  sim::Time t = 0;
  for (const auto& r : ranks) t += r.phases.get(phase);
  return t;
}

sim::Time RunReport::phase_of(int rank, const std::string& phase) const {
  for (const auto& r : ranks)
    if (r.rank == rank) return r.phases.get(phase);
  return 0.0;
}

namespace {

/// State shared by the per-rank bodies of one job, on either backend.
struct JobState {
  World& world;
  const std::function<void(Process&)>& rank_fn;
  RunReport& report;
  std::mutex error_mu;
  std::exception_ptr first_error;
};

/// One rank's whole life, backend-independent. `gate` is the threaded
/// cooperative scheduler (rank_begin/finish pair) or null under the event
/// backend, where being resumed is being scheduled. Never throws: rank
/// errors land in `job.first_error` and poison the world.
void rank_body(JobState& job, int rank, ScheduleHook* gate) {
  World& world = job.world;
  set_thread_check_context(world.race(), rank);
  if (gate != nullptr) gate->rank_begin(rank);
  Process proc(rank, world);
  bool crashed = false;
  try {
    job.rank_fn(proc);
  } catch (const RankCrash& c) {
    // An injected crash is a simulated event, not a job error: retire
    // the rank (seals its mailbox, notifies rank 0 and the verifier)
    // and let the survivors run on.
    crashed = true;
    world.crash_rank(rank, c.when);
  } catch (...) {
    {
      std::lock_guard lock(job.error_mu);
      if (!job.first_error) job.first_error = std::current_exception();
    }
    world.abort();
  }
  // The rank is no longer live; the verifier may now find the remaining
  // ranks deadlocked (it poisons them with the report — this path must
  // not throw, as it runs outside the try block above). A crashed rank
  // was already retired by crash_rank.
  if (!crashed) {
    if (ProtocolVerifier* v = world.verifier()) v->on_rank_done(rank);
  }
  auto& rr = job.report.ranks[static_cast<std::size_t>(rank)];
  rr.rank = rank;
  rr.phases = proc.phases();  // flushes the open phase
  rr.final_clock = proc.now();
  rr.bytes_sent = proc.bytes_sent();
  rr.messages_sent = proc.messages_sent();
  rr.crashed = crashed;
  // Release the run token last: everything above runs scheduled, so the
  // whole body — including error paths — stays deterministic.
  if (gate != nullptr) gate->finish(rank);
  clear_thread_check_context();
}

/// Thread-per-rank backend: one OS thread per rank, go/no-go gated so a
/// failed thread creation cancels cleanly before any rank body runs
/// (otherwise a partial world wedges — rank 0 blocks forever on peers
/// that never existed, and a cooperative scheduler's start gate never
/// opens).
void run_threads(int nranks, JobState& job, const RunOptions& opts) {
  std::promise<bool> gate;
  std::shared_future<bool> go = gate.get_future().share();
  auto thread_main = [&job, &opts, go](int rank) {
    if (!go.get()) return;
    rank_body(job, rank, opts.schedule);
  };
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(nranks));
  try {
    for (int r = 0; r < nranks; ++r) threads.emplace_back(thread_main, r);
  } catch (const std::system_error& e) {
    const int created = static_cast<int>(threads.size());
    gate.set_value(false);
    for (auto& t : threads) t.join();
    throw util::RuntimeError(
        "mpisim: could not create the thread for rank " +
        std::to_string(created) + " of a " + std::to_string(nranks) +
        "-rank world (" + e.what() +
        "): the thread-per-rank backend needs one OS thread per rank and "
        "likely hit a process/system thread limit (see `ulimit -u`, "
        "/proc/sys/kernel/threads-max, or cgroup pids.max) — rerun with "
        "exec_model=events (--exec-model events), which multiplexes every "
        "rank onto one thread");
  }
  gate.set_value(true);
  for (auto& t : threads) t.join();
}

/// Event backend: every rank is a stackful fiber on this thread; a
/// ScheduleHook in opts.schedule becomes the loop's decision delegate.
void run_events(int nranks, JobState& job, const RunOptions& opts) {
  EventLoop::Options lo;
  lo.stack_bytes = opts.fiber_stack_bytes;
  lo.delegate = opts.schedule;
  lo.race = opts.race;
  EventLoop loop(nranks, lo);
  World& world = job.world;
  loop.start(nranks, [&world](const std::string& why) {
    for (int r = 0; r < world.size(); ++r)
      world.mailbox(r).poison(why, /*verify_failure=*/true);
  });
  // The loop replaces opts.schedule as the World's hook: mailboxes route
  // block/wake to it and Process yields through it.
  world.set_schedule(&loop);
  loop.run([&job](int rank) { rank_body(job, rank, /*gate=*/nullptr); });
}

}  // namespace

RunReport run(int nranks, const sim::ClusterConfig& cluster,
              const std::function<void(Process&)>& rank_fn,
              const RunOptions& opts) {
  PIOBLAST_CHECK(nranks >= 1);
  World world(nranks, cluster);
  world.set_tracer(opts.tracer);
  world.set_fault_plan(opts.faults);
  const bool events = opts.exec_model == ExecModel::kEvents;
  if (opts.schedule != nullptr && !events) {
    // The stuck handler covers the verifier-off case: when the scheduler
    // finds no runnable rank but blocked ones remain, it wakes them all
    // with the report so the job unwinds instead of hanging. (Under the
    // event backend the loop owns this and the hook is only a chooser —
    // run_events wires it.)
    opts.schedule->start(nranks, [&world](const std::string& why) {
      for (int r = 0; r < world.size(); ++r)
        world.mailbox(r).poison(why, /*verify_failure=*/true);
    });
    world.set_schedule(opts.schedule);
  }
  if (opts.race != nullptr) {
    opts.race->start(nranks);
    world.set_race(opts.race);
  }
  if (opts.verify.enabled) {
    auto internal = Process::internal_tags();
    world.install_verifier(std::make_unique<ProtocolVerifier>(
        opts.verify, opts.tracer,
        std::vector<int>(internal.begin(), internal.end())));
  }
  RunReport report;
  report.ranks.resize(static_cast<std::size_t>(nranks));
  JobState job{world, rank_fn, report, {}, nullptr};

  if (events) {
    run_events(nranks, job, opts);
  } else {
    run_threads(nranks, job, opts);
  }

  if (job.first_error) std::rethrow_exception(job.first_error);
  if (ProtocolVerifier* v = world.verifier()) v->check_leaks();
  return report;
}

RunReport run(int nranks, const sim::ClusterConfig& cluster,
              const std::function<void(Process&)>& rank_fn, Tracer* tracer) {
  RunOptions opts;
  opts.tracer = tracer;
  return run(nranks, cluster, rank_fn, opts);
}

}  // namespace pioblast::mpisim
