#include "mpisim/runtime.h"

#include <exception>
#include <memory>
#include <mutex>
#include <thread>

#include "mpisim/verifier.h"
#include "mpisim/world.h"

namespace pioblast::mpisim {

sim::Time RunReport::makespan() const {
  sim::Time t = 0;
  for (const auto& r : ranks) t = std::max(t, r.final_clock);
  return t;
}

sim::Time RunReport::phase_total(const std::string& phase) const {
  sim::Time t = 0;
  for (const auto& r : ranks) t += r.phases.get(phase);
  return t;
}

sim::Time RunReport::phase_of(int rank, const std::string& phase) const {
  for (const auto& r : ranks)
    if (r.rank == rank) return r.phases.get(phase);
  return 0.0;
}

RunReport run(int nranks, const sim::ClusterConfig& cluster,
              const std::function<void(Process&)>& rank_fn,
              const RunOptions& opts) {
  PIOBLAST_CHECK(nranks >= 1);
  World world(nranks, cluster);
  world.set_tracer(opts.tracer);
  world.set_fault_plan(opts.faults);
  if (opts.schedule != nullptr) {
    // The stuck handler covers the verifier-off case: when the scheduler
    // finds no runnable rank but blocked ones remain, it wakes them all
    // with the report so the job unwinds instead of hanging.
    opts.schedule->start(nranks, [&world](const std::string& why) {
      for (int r = 0; r < world.size(); ++r)
        world.mailbox(r).poison(why, /*verify_failure=*/true);
    });
    world.set_schedule(opts.schedule);
  }
  if (opts.race != nullptr) {
    opts.race->start(nranks);
    world.set_race(opts.race);
  }
  if (opts.verify.enabled) {
    auto internal = Process::internal_tags();
    world.install_verifier(std::make_unique<ProtocolVerifier>(
        opts.verify, opts.tracer,
        std::vector<int>(internal.begin(), internal.end())));
  }
  RunReport report;
  report.ranks.resize(static_cast<std::size_t>(nranks));

  std::mutex error_mu;
  std::exception_ptr first_error;

  auto body = [&](int rank) {
    set_thread_check_context(opts.race, rank);
    if (opts.schedule != nullptr) opts.schedule->rank_begin(rank);
    Process proc(rank, world);
    bool crashed = false;
    try {
      rank_fn(proc);
    } catch (const RankCrash& c) {
      // An injected crash is a simulated event, not a job error: retire
      // the rank (seals its mailbox, notifies rank 0 and the verifier)
      // and let the survivors run on.
      crashed = true;
      world.crash_rank(rank, c.when);
    } catch (...) {
      {
        std::lock_guard lock(error_mu);
        if (!first_error) first_error = std::current_exception();
      }
      world.abort();
    }
    // The rank is no longer live; the verifier may now find the remaining
    // ranks deadlocked (it poisons them with the report — this path must
    // not throw, as it runs outside the try block above). A crashed rank
    // was already retired by crash_rank.
    if (!crashed) {
      if (ProtocolVerifier* v = world.verifier()) v->on_rank_done(rank);
    }
    auto& rr = report.ranks[static_cast<std::size_t>(rank)];
    rr.rank = rank;
    rr.phases = proc.phases();  // flushes the open phase
    rr.final_clock = proc.now();
    rr.bytes_sent = proc.bytes_sent();
    rr.messages_sent = proc.messages_sent();
    rr.crashed = crashed;
    // Release the run token last: everything above runs scheduled, so the
    // whole body — including error paths — stays deterministic.
    if (opts.schedule != nullptr) opts.schedule->finish(rank);
    clear_thread_check_context();
  };

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) threads.emplace_back(body, r);
  for (auto& t : threads) t.join();

  if (first_error) std::rethrow_exception(first_error);
  if (ProtocolVerifier* v = world.verifier()) v->check_leaks();
  return report;
}

RunReport run(int nranks, const sim::ClusterConfig& cluster,
              const std::function<void(Process&)>& rank_fn, Tracer* tracer) {
  RunOptions opts;
  opts.tracer = tracer;
  return run(nranks, cluster, rank_fn, opts);
}

}  // namespace pioblast::mpisim
