#include "mpisim/exec.h"

#include "util/error.h"

namespace pioblast::mpisim {

namespace detail {
bool fibers_supported();  // defined in fiber.cpp
}  // namespace detail

const char* to_string(ExecModel model) {
  switch (model) {
    case ExecModel::kThreads: return "threads";
    case ExecModel::kEvents: return "events";
  }
  return "?";
}

ExecModel parse_exec_model(std::string_view text) {
  if (text == "threads") return ExecModel::kThreads;
  if (text == "events") return ExecModel::kEvents;
  throw util::RuntimeError("unknown exec model '" + std::string(text) +
                           "' (want threads | events)");
}

bool events_supported() { return detail::fibers_supported(); }

}  // namespace pioblast::mpisim
