// Per-rank thread-safe mailbox with (source, tag) matching.
//
// Receives block the host thread until a matching message exists, which is
// how the simulated ranks synchronize for real; virtual-time ordering is
// layered on top by Process (receiver clocks max-merge with arrivals).
#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>

#include "mpisim/message.h"

namespace pioblast::mpisim {

class Mailbox {
 public:
  /// Enqueues a delivered message and wakes any blocked receiver.
  void push(Message msg);

  /// Blocks until a message matching (src, tag) is available and removes it.
  /// `src == kAnySource` matches any sender; among the currently pending
  /// matches the one with the smallest virtual arrival time is chosen
  /// (ties broken by sender rank), approximating earliest-message-first
  /// scheduling for dynamic work distribution.
  Message pop(int src, int tag);

  /// Non-blocking variant; returns nullopt when nothing matches.
  std::optional<Message> try_pop(int src, int tag);

  /// Number of currently queued messages (diagnostics/tests).
  std::size_t pending() const;

  /// Marks the mailbox as poisoned: current and future blocking pops with
  /// no matching message throw RuntimeError. Used to unwind all rank
  /// threads when one rank fails.
  void poison();

 private:
  /// Index of best match in queue_, or npos. Caller holds the lock.
  std::size_t find_match(int src, int tag) const;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Message> queue_;
  bool poisoned_ = false;
};

}  // namespace pioblast::mpisim
