// Per-rank thread-safe mailbox with (source, tag) matching.
//
// Receives block the host thread until a matching message exists, which is
// how the simulated ranks synchronize for real; virtual-time ordering is
// layered on top by Process (receiver clocks max-merge with arrivals).
//
// When a ProtocolVerifier is bound (see verifier.h), every blocking pop
// that finds no match registers the rank as blocked, which is the event
// stream the verifier's deadlock detection runs on.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <set>
#include <span>
#include <string>
#include <vector>

#include "mpisim/message.h"

namespace pioblast::mpisim {

class ProtocolVerifier;
class ScheduleHook;

class Mailbox {
 public:
  /// Enqueues a delivered message and wakes any blocked receiver.
  void push(Message msg);

  /// Blocks until a message matching (src, tag) is available and removes it.
  /// `src == kAnySource` matches any sender; among the currently pending
  /// matches the one with the smallest virtual arrival time is chosen
  /// (ties broken by sender rank), approximating earliest-message-first
  /// scheduling for dynamic work distribution.
  Message pop(int src, int tag);

  /// Blocks until a message matching `src` and any tag in `tags` is
  /// available (earliest arrival across all listed tags wins). Used by
  /// fault-aware server loops that must wake for either work requests or
  /// failure-detector notices.
  Message pop_any(int src, std::span<const int> tags);

  /// Non-blocking variant; returns nullopt when nothing matches.
  std::optional<Message> try_pop(int src, int tag);

  /// Number of currently queued messages (diagnostics/tests).
  std::size_t pending() const;

  /// True when a blocking pop(src, tag) would return without waiting.
  /// Used by the verifier's deadlock scan to exonerate a rank whose
  /// matching message arrived between its match check and its blocked
  /// registration.
  bool has_match(int src, int tag) const;

  /// Multi-tag variant of has_match (used for waits registered by
  /// pop_any).
  bool has_match_any(int src, std::span<const int> tags) const;

  /// Provenance of every still-queued message, for the verifier's
  /// end-of-job leak report. `seq` is the message's arrival ordinal in
  /// this mailbox; entries are sorted by (src, tag, seq) so the report is
  /// byte-stable across schedules that deliver the same message set.
  struct PendingInfo {
    int src = 0;
    int tag = 0;
    std::uint64_t bytes = 0;
    std::uint64_t seq = 0;
  };
  std::vector<PendingInfo> pending_info() const;

  /// Marks the mailbox as poisoned: current and future blocking pops with
  /// no matching message throw RuntimeError. Used to unwind all rank
  /// threads when one rank fails.
  void poison();

  /// Poison with an explanatory reason; when `verify_failure` is set the
  /// unblocked pops throw VerifyError so a verifier report survives the
  /// unwind as the job's error regardless of which rank records it first.
  void poison(std::string reason, bool verify_failure = false);

  /// Binds the protocol verifier (not owned) and this mailbox's rank.
  /// Must happen before any rank thread starts popping.
  void bind_verifier(ProtocolVerifier* verifier, int rank);

  /// Binds the cooperative scheduler (not owned): blocking pops park on
  /// the scheduler instead of the condition variable, and every event that
  /// could unblock the owner (push, poison, seal, peer death) wakes it
  /// through the hook. Must happen before any rank thread starts.
  void bind_schedule(ScheduleHook* schedule, int rank);

  // ---- fault support ------------------------------------------------------

  /// Marks the owning rank as crashed: discards all queued messages and
  /// silently drops every future push (a dead rank can neither read its
  /// mail nor leak it).
  void seal();

  /// Records that `rank` has crashed and wakes any blocked receiver: a
  /// pop waiting specifically on a dead rank throws PeerLostError instead
  /// of blocking forever.
  void notify_dead(int rank);

 private:
  /// Index of best match in queue_, or npos. Caller holds the lock.
  std::size_t find_match(int src, std::span<const int> tags) const;

  /// Removes and returns queue_[idx]. Caller holds the lock.
  Message take_at(std::size_t idx);

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Message> queue_;
  std::deque<std::uint64_t> seq_;  ///< arrival ordinal of queue_[i]
  std::uint64_t next_seq_ = 0;
  std::set<int> dead_;  ///< crashed peers (see notify_dead)
  bool sealed_ = false;
  bool poisoned_ = false;
  bool verify_poison_ = false;
  std::string poison_reason_;
  ProtocolVerifier* verifier_ = nullptr;
  ScheduleHook* schedule_ = nullptr;
  int rank_ = -1;
};

}  // namespace pioblast::mpisim
