// Job launcher: runs a rank function on N simulated processes sharing one
// World.
//
// This is the simulated analogue of `mpirun -np N`: each rank executes the
// same function with its own Process context; the runtime collects final
// clocks and phase buckets into a RunReport. If any rank throws, the job is
// poisoned (all blocked receives unwind) and the first exception is
// rethrown to the caller.
//
// Ranks execute under one of two backends (RunOptions::exec_model): one OS
// thread per rank, or stackful fibers multiplexed on one scheduler thread
// (see exec.h and event_loop.h). Both produce identical driver output; the
// event backend is what makes multi-thousand-rank worlds practical.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "mpisim/exec.h"
#include "mpisim/fault.h"
#include "mpisim/process.h"
#include "mpisim/verify.h"
#include "sim/cluster.h"
#include "util/phase_timer.h"

namespace pioblast::mpisim {

/// Runtime configuration beyond the job function itself.
struct RunOptions {
  /// Optional event tracer (not owned; must outlive the run).
  Tracer* tracer = nullptr;
  /// Protocol-verifier configuration; enabled by default, so every run —
  /// and therefore every test — doubles as a protocol audit (deadlock,
  /// collective order, tag registry, typed payloads, message leaks).
  VerifyOptions verify{};
  /// Fault injections (crashes, stragglers, message drops); empty and
  /// inert by default. See fault.h.
  FaultPlan faults{};
  /// Cooperative scheduler (not owned; must outlive the run). When set,
  /// exactly one rank runs at a time and every send/recv/collective/fault
  /// is a yield point — the foundation of mpicheck's schedule exploration.
  ScheduleHook* schedule = nullptr;
  /// Happens-before race detector (not owned; must outlive the run).
  RaceHook* race = nullptr;
  /// Rank execution backend. kThreads spawns one OS thread per rank;
  /// kEvents multiplexes every rank as a stackful fiber on the calling
  /// thread (required in practice beyond a few hundred ranks). Under
  /// kEvents a ScheduleHook in `schedule` is driven through its
  /// inline_*() protocol as a decision chooser over the native loop.
  ExecModel exec_model = ExecModel::kThreads;
  /// Per-rank fiber stack reservation under kEvents (lazily committed).
  std::size_t fiber_stack_bytes = kDefaultFiberStackBytes;
};

/// Per-rank results collected after the rank function returns.
struct RankReport {
  int rank = 0;
  sim::Time final_clock = 0.0;
  util::PhaseTimer phases;
  std::uint64_t bytes_sent = 0;
  std::uint64_t messages_sent = 0;
  /// The rank was killed by an injected crash fault; its clock and phases
  /// reflect the moment of death.
  bool crashed = false;
};

/// Whole-job results.
struct RunReport {
  std::vector<RankReport> ranks;

  /// Job completion time: the latest rank clock (all drivers end with a
  /// barrier, so in practice every rank finishes at the makespan).
  sim::Time makespan() const;

  /// Sum of a phase bucket over all ranks.
  sim::Time phase_total(const std::string& phase) const;

  /// Phase bucket of one rank.
  sim::Time phase_of(int rank, const std::string& phase) const;
};

/// Runs `rank_fn` on `nranks` simulated processes over `cluster`.
/// Blocks until every rank finishes; rethrows the first rank exception.
/// When `opts.tracer` is non-null, every rank records phase/message
/// events into it (see trace.h). When `opts.verify.enabled` (the
/// default), a ProtocolVerifier watches the whole job and a VerifyError
/// is thrown on deadlock, misordered collectives, tag misuse, typed
/// payload confusion, or messages left undrained at job end.
RunReport run(int nranks, const sim::ClusterConfig& cluster,
              const std::function<void(Process&)>& rank_fn,
              const RunOptions& opts);

/// Convenience overload with default verification.
RunReport run(int nranks, const sim::ClusterConfig& cluster,
              const std::function<void(Process&)>& rank_fn,
              Tracer* tracer = nullptr);

}  // namespace pioblast::mpisim
