// Wire (de)serialization for structured messages.
//
// The drivers exchange typed records (fragment assignments, candidate-hit
// metadata, output offsets). Encoder/Decoder implement a simple
// little-endian byte-stream format; everything that crosses a simulated
// message or file boundary goes through here so message *sizes* are real
// and the cost models see honest byte counts.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <type_traits>
#include <vector>

#include "util/error.h"

namespace pioblast::mpisim {

class Encoder;
class Decoder;

/// Customization point: how a value of type T crosses the wire.
///
/// Specialize WireCodec<T> next to T's definition (e.g. the FragmentRange
/// codec lives in seqdb/partition.h, the Hsp codec in blast/serialize.h) so
/// both drivers — and the typed driver::Channel<T> layer — share one
/// encoding. The primary template covers arithmetic and enum types only;
/// aggregate structs must be specialized field-by-field so struct padding
/// never leaks into (and inflates) simulated message sizes.
template <typename T>
struct WireCodec {
  static_assert(std::is_arithmetic_v<T> || std::is_enum_v<T>,
                "specialize WireCodec<T> next to T's definition (aggregates "
                "are encoded field-by-field, never memcpy'd with padding)");
  static void encode(Encoder& enc, const T& value);
  static T decode(Decoder& dec);
};

/// Appends plain-old-data values, strings, and vectors to a byte buffer.
class Encoder {
 public:
  Encoder() = default;

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  Encoder& put(const T& value) {
    const auto* bytes = reinterpret_cast<const std::uint8_t*>(&value);
    buf_.insert(buf_.end(), bytes, bytes + sizeof(T));
    return *this;
  }

  Encoder& put_string(const std::string& s) {
    put<std::uint64_t>(s.size());
    buf_.insert(buf_.end(), s.begin(), s.end());
    return *this;
  }

  Encoder& put_bytes(std::span<const std::uint8_t> data) {
    put<std::uint64_t>(data.size());
    buf_.insert(buf_.end(), data.begin(), data.end());
    return *this;
  }

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  Encoder& put_vector(const std::vector<T>& v) {
    put<std::uint64_t>(v.size());
    const auto* bytes = reinterpret_cast<const std::uint8_t*>(v.data());
    buf_.insert(buf_.end(), bytes, bytes + v.size() * sizeof(T));
    return *this;
  }

  /// Encodes `value` through its WireCodec specialization.
  template <typename T>
  Encoder& put_obj(const T& value) {
    WireCodec<T>::encode(*this, value);
    return *this;
  }

  const std::vector<std::uint8_t>& bytes() const { return buf_; }
  std::vector<std::uint8_t> take() { return std::move(buf_); }
  std::size_t size() const { return buf_.size(); }

 private:
  std::vector<std::uint8_t> buf_;
};

/// Reads values back in the order they were encoded.
class Decoder {
 public:
  explicit Decoder(std::span<const std::uint8_t> data) : data_(data) {}

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  T get() {
    PIOBLAST_CHECK_MSG(pos_ + sizeof(T) <= data_.size(), "decode past end");
    T value;
    std::memcpy(&value, data_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return value;
  }

  std::string get_string() {
    const auto n = get<std::uint64_t>();
    PIOBLAST_CHECK_MSG(pos_ + n <= data_.size(), "decode past end");
    std::string s(reinterpret_cast<const char*>(data_.data() + pos_), n);
    pos_ += n;
    return s;
  }

  std::vector<std::uint8_t> get_bytes() {
    const auto n = get<std::uint64_t>();
    PIOBLAST_CHECK_MSG(pos_ + n <= data_.size(), "decode past end");
    std::vector<std::uint8_t> out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
                                  data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
    pos_ += n;
    return out;
  }

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  std::vector<T> get_vector() {
    const auto n = get<std::uint64_t>();
    PIOBLAST_CHECK_MSG(pos_ + n * sizeof(T) <= data_.size(), "decode past end");
    std::vector<T> out(n);
    std::memcpy(out.data(), data_.data() + pos_, n * sizeof(T));
    pos_ += n * sizeof(T);
    return out;
  }

  /// Decodes a value through its WireCodec specialization.
  template <typename T>
  T get_obj() {
    return WireCodec<T>::decode(*this);
  }

  bool exhausted() const { return pos_ == data_.size(); }
  std::size_t remaining() const { return data_.size() - pos_; }

 private:
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

// Out-of-line so the primary WireCodec template can reference the complete
// Encoder/Decoder types.
template <typename T>
void WireCodec<T>::encode(Encoder& enc, const T& value) {
  enc.put(value);
}

template <typename T>
T WireCodec<T>::decode(Decoder& dec) {
  return dec.get<T>();
}

}  // namespace pioblast::mpisim
