// Fault injection for simulated runs.
//
// A FaultPlan describes deterministic failures to inject into a job:
// per-rank crash-at-event (the rank dies instead of performing its Nth
// point-to-point operation), message drops (the Nth send from a rank is
// charged and traced but never delivered), and compute slowdowns
// (stragglers). The plan travels through RunOptions; the runtime arms the
// World with it before any rank thread starts, so every injection is a
// pure function of the plan — same plan, same failure, every run.
//
// Failure detection is modeled as a perfect detector with configurable
// latency: when a rank crashes, the World delivers a zero-byte notice
// (tag kTagFaultNotice, from the crashed rank) to the detector rank
// (rank 0, the master) with virtual arrival = crash time +
// detection_delay. This stands in for a heartbeat timeout on the
// simulated clock without modeling the heartbeat traffic itself.
//
// A plan with any injection — or with arm_detector set — puts the run in
// fault-tolerant mode: Process collectives switch to flat survivor-aware
// topologies and pario collectives synchronize liveness before choosing
// an exchange plan. Failure-free runs with an inactive plan are entirely
// unchanged.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "mpisim/message.h"
#include "sim/time.h"
#include "util/error.h"

namespace pioblast::mpisim {

/// Internal-band tag of the failure-detector notice the World pushes to
/// the detector rank when a rank crashes. Registered alongside the
/// Process collective tags (see Process::internal_tags).
inline constexpr int kTagFaultNotice = kDriverTagLimit + 32;

/// Control-flow object thrown inside a rank to simulate its death. Not a
/// std::exception on purpose: only the runtime's dedicated handler may
/// catch it; a stray catch (const std::exception&) in rank code cannot
/// swallow a crash.
struct RankCrash {
  int rank = -1;
  std::uint64_t event = 0;  ///< the 1-based comm event that never happened
  sim::Time when = 0.0;     ///< the rank's clock at the point of death
};

/// Thrown by a blocking receive whose specific source rank has crashed
/// and can never send the awaited message. Survivor code catches this to
/// continue in degraded mode (e.g. a gather recording an empty
/// contribution for the lost rank).
class PeerLostError : public util::RuntimeError {
 public:
  PeerLostError(int peer, const std::string& what)
      : util::RuntimeError(what), peer_(peer) {}
  int peer() const { return peer_; }

 private:
  int peer_;
};

/// Injections targeting one rank.
struct RankFault {
  int rank = -1;
  /// Die instead of performing this 1-based send/recv event (0 = never).
  std::uint64_t crash_at = 0;
  /// Compute-time multiplier; 4.0 makes the rank a 4x straggler.
  double slow = 1.0;
  /// 1-based send ordinals whose messages vanish after injection.
  std::vector<std::uint64_t> drop_sends;
};

/// Deterministic failure schedule for one run.
struct FaultPlan {
  std::vector<RankFault> injections;
  /// Virtual latency between a crash and the detector rank's notice —
  /// the heartbeat-timeout stand-in. Must exceed the network wire
  /// latency so pre-crash messages causally precede the notice.
  sim::Time detection_delay = 0.005;
  /// Arms fault-tolerant mode (flat collectives, liveness sync) even
  /// with no injections — the fair baseline for recovery-overhead
  /// benches.
  bool arm_detector = false;

  /// True when the runtime must run in fault-tolerant mode.
  bool active() const { return arm_detector || !injections.empty(); }

  bool has_crash() const;

  /// The injection record for `rank`, created on first use.
  RankFault& at(int rank);

  /// The injection record for `rank`, or null.
  const RankFault* find(int rank) const;

  /// Rejects malformed plans: out-of-range ranks, a crash on rank 0 (the
  /// master/detector rank cannot be crash-injected), non-positive
  /// slowdowns, zero event/send ordinals.
  void validate(int nranks) const;

  /// Parses ';'-separated injection specs, each a comma-separated list of
  /// key=value pairs: "rank=2,crash_at=9", "rank=1,slow=4",
  /// "rank=3,drop_send=2". Plan-wide keys: "detect=<seconds>" and the
  /// bare word "arm". Throws util::RuntimeError on malformed input.
  static FaultPlan parse(std::string_view specs);

  /// Seeded helper: a deterministic single-worker crash derived from
  /// `seed` (victim in [1, nranks), event in [1, max_event]).
  static FaultPlan random_crash(std::uint64_t seed, int nranks,
                                std::uint64_t max_event);

  /// One-line human-readable summary ("no faults" for an empty plan).
  std::string describe() const;
};

}  // namespace pioblast::mpisim
