// Scheduling and race-detection hooks for the simulated runtime.
//
// The mpicheck subsystem (src/mpicheck) plugs into the runtime through two
// abstract interfaces so mpisim itself stays dependency-free:
//
//   * ScheduleHook — a deterministic cooperative scheduler. When installed
//     (RunOptions::schedule), exactly one rank thread runs at a time; every
//     send, receive attempt, collective entry, and injected-fault event is
//     a yield point where the hook picks the next rank to run. This turns
//     the job into a deterministic function of the hook's choices, which
//     is what makes systematic schedule exploration and failing-schedule
//     replay possible.
//
//   * RaceHook — a happens-before observer. The runtime reports message
//     edges (send/recv carry a token through Message::hb) and instrumented
//     shared-state accesses; the hook maintains vector clocks and flags
//     conflicting accesses no edge orders (see mpicheck/race.h).
//
// Both hooks are borrowed pointers owned by the caller of mpisim::run and
// must outlive the job.
#pragma once

#include <cstdint>
#include <functional>
#include <initializer_list>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace pioblast::mpisim {

/// One scheduling-relevant operation a rank is parked at. The cooperative
/// scheduler records these per decision point; the explorer's DPOR-lite
/// mode uses them to decide which interleavings are provably equivalent.
struct YieldPoint {
  enum class Kind : std::uint8_t {
    kBegin = 0,   ///< rank function about to start
    kSend,        ///< about to inject a message (peer = destination rank)
    kRecv,        ///< about to attempt a receive (peer = source or kAnySource)
    kCollective,  ///< entering a collective (peer = root, detail = op name)
    kFault,       ///< about to die at an injected crash point
  };
  int rank = -1;
  Kind kind = Kind::kBegin;
  int peer = -1;
  int tag = 0;
  const char* detail = nullptr;  ///< optional static label (collective op)
};

const char* to_string(YieldPoint::Kind kind);

/// True when the two pending operations commute: executing them in either
/// order reaches the same state, so an explorer needs only one of the two
/// interleavings. Conservative: collectives, faults, and not-yet-started
/// ranks are dependent with everything; two point-to-point ops commute only
/// when they touch different mailboxes (a send touches its destination's
/// mailbox, a receive its own).
bool independent(const YieldPoint& a, const YieldPoint& b);

/// Deterministic cooperative scheduler interface. Under the threaded
/// backend the runtime calls start() before any rank thread exists,
/// rank_begin()/finish() around each rank body, yield() at every
/// scheduling-relevant operation, and block()/wake() around blocking
/// receives. All calls except start() and wake() are made from rank
/// threads; rank_begin/yield/block return only when the hook has
/// scheduled that rank to run.
///
/// Under the event backend (ExecModel::kEvents) ranks are fibers on one
/// scheduler thread, which serializes them natively — so the hook is
/// driven through the non-blocking inline_*() protocol below instead, and
/// a CoopScheduler degrades to a thin chooser over the native event loop.
class ScheduleHook {
 public:
  /// Called when the scheduler finds no runnable rank while some are still
  /// blocked (a wedged job the protocol verifier did not claim first, e.g.
  /// with verification off). The handler must wake every blocked receive
  /// with the given report — the runtime wires it to poison all mailboxes.
  using StuckHandler = std::function<void(const std::string&)>;

  virtual ~ScheduleHook() = default;

  virtual void start(int nranks, StuckHandler on_stuck) = 0;
  /// Rank body entry: blocks until this rank is scheduled.
  virtual void rank_begin(int rank) = 0;
  /// Yield point: reports the pending op, blocks until rescheduled.
  virtual void yield(const YieldPoint& op) = 0;
  /// The rank found no matching message and is blocking: releases the run
  /// token and returns once wake(rank) made it runnable and the scheduler
  /// picked it again. The caller re-checks its predicate and may block
  /// again.
  virtual void block(int rank) = 0;
  /// Makes a blocked rank runnable (new message, poison, peer death).
  /// Called by the running rank (or the stuck handler) under both
  /// backends.
  virtual void wake(int rank) = 0;
  /// Rank body exit: releases the run token for good.
  virtual void finish(int rank) = 0;

  // ---- inline (event-backend) protocol -----------------------------------
  //
  // The event loop mirrors the threaded CoopScheduler's state machine —
  // every yield point is a decision point, wakes never preempt the
  // running rank — so the decision records a hook accumulates here replay
  // on either backend. Defaults make any hook a valid no-op chooser.

  /// Called once before any rank runs (the inline analogue of start()).
  virtual void inline_start(int nranks);

  /// Decision point: picks the next rank out of `enabled` (ascending,
  /// at least two entries; `ops` is parallel). Returning a non-member
  /// falls back to the lowest. Single-choice points are forced and never
  /// reported. Default: enabled[0].
  virtual int inline_choose(const std::vector<int>& enabled,
                            const std::vector<YieldPoint>& ops);

  /// The event loop found no runnable rank while some were still blocked
  /// and fired its stuck handler (the wedge the threaded scheduler
  /// detects in-band).
  virtual void inline_stuck();
};

/// Happens-before observer interface (see mpicheck/race.h for the
/// implementation). on_send returns a token the runtime stores in
/// Message::hb; the receiving side hands it back through on_recv, which is
/// how message edges advance the receiver's vector clock.
class RaceHook {
 public:
  virtual ~RaceHook() = default;

  virtual void start(int nranks) = 0;
  virtual std::uint64_t on_send(int src) = 0;
  virtual void on_recv(int dst, std::uint64_t hb) = 0;
  /// An instrumented access to shared state. `obj` identifies the state,
  /// `what` labels the access site for reports, `locks` is the set of
  /// lock identities protecting the access (two unordered accesses that
  /// share a lock are exempt — the lockset half of the detector).
  virtual void on_access(int rank, const void* obj, std::string_view what,
                         bool write, std::span<const void* const> locks) = 0;
};

// ---- thread-local annotation context --------------------------------------
//
// Library code that has no Process& at hand (RunMetrics, Mailbox) reports
// accesses through a thread-local {RaceHook*, rank} context the runtime
// installs around each rank body. Outside a checked run every annotation
// is a no-op, so instrumentation costs one thread-local load.

/// Installs/clears the calling thread's race context (runtime only).
void set_thread_check_context(RaceHook* race, int rank);
void clear_thread_check_context();

/// Reports an access to `obj` on behalf of the calling rank thread.
/// `extra_locks` augments the thread's held-lock set (for code that
/// annotates just outside its critical section).
void annotate_access(const void* obj, std::string_view what, bool write,
                     std::initializer_list<const void*> extra_locks = {});

}  // namespace pioblast::mpisim
