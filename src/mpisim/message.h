// Message representation for the simulated message-passing runtime.
#pragma once

#include <cstdint>
#include <vector>

#include "mpisim/verify.h"
#include "sim/time.h"

namespace pioblast::mpisim {

/// Wildcard source rank for receives (analogue of MPI_ANY_SOURCE).
inline constexpr int kAnySource = -1;

/// Tags at or above this value are reserved for the runtime's internal
/// collectives and infrastructure protocols; driver-level tags must stay
/// below it (the central registry in driver/tags.h static-asserts this,
/// and the protocol verifier audits it at run time).
inline constexpr int kDriverTagLimit = 1 << 24;

/// One in-flight or delivered message. `arrival` is the virtual time at
/// which the message becomes visible to the receiver (sender completion
/// plus wire latency); the receiver's clock is max-merged with it.
struct Message {
  int src = -1;
  int tag = 0;
  sim::Time arrival = 0.0;
  std::vector<std::uint8_t> payload;

  /// Sender-side type identity for typed payloads (fp == 0 for raw byte
  /// sends). Not part of the simulated wire size — it models the static
  /// type knowledge both ends of a correct protocol already share.
  TypeStamp stamp{};

  /// Happens-before token issued by the race detector at send time and
  /// joined into the receiver's vector clock (0 = no detector attached).
  /// Like `stamp`, bookkeeping — not part of the simulated wire size.
  std::uint64_t hb = 0;

  std::uint64_t size() const { return payload.size(); }
};

}  // namespace pioblast::mpisim
