// Message representation for the simulated message-passing runtime.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/time.h"

namespace pioblast::mpisim {

/// Wildcard source rank for receives (analogue of MPI_ANY_SOURCE).
inline constexpr int kAnySource = -1;

/// One in-flight or delivered message. `arrival` is the virtual time at
/// which the message becomes visible to the receiver (sender completion
/// plus wire latency); the receiver's clock is max-merged with it.
struct Message {
  int src = -1;
  int tag = 0;
  sim::Time arrival = 0.0;
  std::vector<std::uint8_t> payload;

  std::uint64_t size() const { return payload.size(); }
};

}  // namespace pioblast::mpisim
