// ProtocolVerifier: runtime checking of the simulated message-passing
// protocol.
//
// Four checks, all free of false positives on a correct program:
//
//   1. Deadlock detection — every blocking Mailbox::pop with no match
//      registers the rank in a wait-for table; whenever the last live rank
//      blocks (or a rank finishes while the rest are blocked), the
//      verifier scans all blocked ranks' mailboxes and, if no registered
//      wait is deliverable, poisons the job with a readable wait-for-cycle
//      report instead of letting ctest hang.
//   2. Collective-order checking — every collective entry records an
//      (op, root) fingerprint at the rank's next sequence number; the
//      first rank to reach sequence #n defines the expectation and any
//      rank disagreeing fails the job immediately (the same-order rule
//      process.h documents but previously nothing enforced).
//   3. Tag audit — when a driver-tag registry is installed (see
//      VerifyOptions::registered_tags), every point-to-point send/recv tag
//      must be a registered driver tag or a known runtime-internal tag.
//   4. Typed-payload conformance — typed sends stamp the message with a
//      TypeStamp; typed receives verify it, catching size-coincidence type
//      confusion (see Process::send_value / driver::Channel<T>).
//
// A fifth check runs after the job: check_leaks() reports any message
// still sitting in a mailbox, with sender/tag provenance.
//
// Failures poison every mailbox with the report (so all ranks unwind with
// it), record a kVerify trace event, and throw VerifyError in the
// detecting rank. The verifier is created by the runtime when
// RunOptions::verify.enabled is set (the default).
#pragma once

#include <cstdint>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "mpisim/mailbox.h"
#include "mpisim/trace.h"
#include "mpisim/verify.h"

namespace pioblast::mpisim {

class ProtocolVerifier {
 public:
  /// `internal_tags` is the runtime's own tag allowlist (the Process
  /// collective tags); opts.internal_tags extends it.
  ProtocolVerifier(VerifyOptions opts, Tracer* tracer,
                   std::vector<int> internal_tags);

  ProtocolVerifier(const ProtocolVerifier&) = delete;
  ProtocolVerifier& operator=(const ProtocolVerifier&) = delete;

  /// Binds the job's mailboxes (one per rank, not owned) and sets the
  /// live-rank count. Called by World before rank threads start.
  void attach(const std::vector<Mailbox*>& mailboxes);

  // ---- lifecycle (called by the runtime) ---------------------------------

  /// A rank's function returned; the rank no longer counts as live. May
  /// flag a deadlock among the remaining ranks (never throws: poisons).
  void on_rank_done(int rank);

  /// A rank crashed under fault injection: it is retired, not deadlocked.
  /// Ranks later found blocked waiting specifically on a crashed rank are
  /// exonerated by the deadlock scan — they will wake with PeerLostError,
  /// not hang. Never throws (called from the crashing rank's unwind).
  void on_rank_crashed(int rank);

  /// The job is being aborted for an unrelated error: disable all checks
  /// so the unwinding ranks cannot trigger cascading reports.
  void on_abort();

  // ---- point-to-point hooks (called by Process / Mailbox) ----------------

  /// Audits the tag of an outgoing message. Throws VerifyError on a tag
  /// outside the registry.
  void on_send(int src, int dst, int tag);

  /// Audits the tag of a posted receive (catches a typo'd recv tag with a
  /// precise report before deadlock detection has to).
  void on_recv_posted(int rank, int src, int tag);

  /// Registers `rank` as blocked waiting for (src, tag); runs the
  /// deadlock scan. Throws VerifyError when this block completes a
  /// deadlock. Called without the mailbox lock held.
  void on_block(int rank, int src, int tag);

  /// Multi-tag variant for waits registered by Mailbox::pop_any: the rank
  /// is blocked until a message with any of `tags` arrives from `src`.
  void on_block(int rank, int src, std::span<const int> tags);

  /// Clears the blocked registration after the wait returns.
  void on_unblock(int rank);

  // ---- collectives -------------------------------------------------------

  /// Records rank's next collective fingerprint and cross-validates it
  /// against the job-wide sequence. Throws VerifyError on mismatch.
  void on_collective(int rank, std::string_view op, int root);

  // ---- typed payloads ----------------------------------------------------

  /// Verifies a received message's type stamp against the receiver's
  /// expectation; unstamped messages pass. Throws VerifyError on mismatch.
  void check_stamp(int rank, int tag, const Message& msg,
                   const TypeStamp& expected);

  // ---- end of job --------------------------------------------------------

  /// Reports messages left undrained in any mailbox. Called by the
  /// runtime after all ranks joined cleanly. Throws VerifyError.
  void check_leaks();

  /// "kTagAssign(2)" when a tag namer is installed, else the bare number.
  std::string tag_label(int tag) const;

 private:
  struct Wait {
    bool blocked = false;
    int src = 0;
    std::vector<int> tags;  ///< acceptable tags (usually one)
  };
  struct CollectiveRecord {
    std::string op;
    int root = 0;
    int first_rank = 0;
  };

  /// Scans for a deadlock among the currently blocked ranks. Returns the
  /// report ("" when progress is still possible). Caller holds mu_.
  std::string deadlock_report_locked() const;

  /// Renders the wait-for cycle (or the blocked set when any-source waits
  /// make the cycle non-unique). Caller holds mu_.
  std::string render_cycle_locked() const;

  /// Poisons every mailbox with `report`, records a kVerify trace event,
  /// and throws VerifyError. Caller holds mu_.
  [[noreturn]] void fail_locked(const std::string& report);

  /// Same, but poisons without throwing (for contexts that must not
  /// throw, e.g. a finished rank's thread). Caller holds mu_.
  void flag_locked(const std::string& report);

  bool tag_registered(int tag) const;

  VerifyOptions opts_;
  Tracer* tracer_;
  std::vector<int> internal_tags_;

  mutable std::mutex mu_;
  bool disabled_ = false;
  int live_ranks_ = 0;
  std::vector<Mailbox*> mailboxes_;
  std::vector<Wait> waits_;
  std::vector<bool> done_;
  std::vector<bool> crashed_;
  std::vector<std::uint64_t> collective_seq_;
  std::vector<CollectiveRecord> collective_log_;
};

}  // namespace pioblast::mpisim
