#include "mpisim/trace.h"

#include <algorithm>
#include <cstdio>
#include <ostream>

namespace pioblast::mpisim {

const char* to_string(TraceKind kind) {
  switch (kind) {
    case TraceKind::kPhase:
      return "PHASE";
    case TraceKind::kSend:
      return "SEND";
    case TraceKind::kRecv:
      return "RECV";
    case TraceKind::kCompute:
      return "COMP";
    case TraceKind::kIo:
      return "IO";
    case TraceKind::kMark:
      return "MARK";
    case TraceKind::kCollective:
      return "COLL";
    case TraceKind::kVerify:
      return "VRFY";
    case TraceKind::kFault:
      return "FAULT";
    case TraceKind::kRecovery:
      return "RECOV";
  }
  return "?";
}

void Tracer::record(int rank, sim::Time time, TraceKind kind, std::string detail) {
  std::lock_guard lock(mu_);
  events_.push_back({rank, time, kind, std::move(detail)});
}

std::vector<TraceEvent> Tracer::sorted() const {
  std::vector<TraceEvent> out;
  {
    std::lock_guard lock(mu_);
    out = events_;
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     if (a.time != b.time) return a.time < b.time;
                     return a.rank < b.rank;
                   });
  return out;
}

std::size_t Tracer::size() const {
  std::lock_guard lock(mu_);
  return events_.size();
}

void Tracer::render(std::ostream& os, std::size_t max_events) const {
  const auto events = sorted();
  char buf[64];
  std::size_t shown = 0;
  for (const TraceEvent& e : events) {
    if (shown++ >= max_events) {
      os << "... (" << events.size() - max_events << " more events)\n";
      break;
    }
    std::snprintf(buf, sizeof buf, "[%12.6fs] r%-3d %-5s ", e.time, e.rank,
                  to_string(e.kind));
    os << buf << e.detail << '\n';
  }
}

std::vector<TraceEvent> Tracer::for_rank(int rank) const {
  std::vector<TraceEvent> out;
  for (const TraceEvent& e : sorted())
    if (e.rank == rank) out.push_back(e);
  return out;
}

sim::Time Tracer::span() const {
  sim::Time lo = 0, hi = 0;
  bool first = true;
  std::lock_guard lock(mu_);
  for (const TraceEvent& e : events_) {
    if (first) {
      lo = hi = e.time;
      first = false;
    } else {
      lo = std::min(lo, e.time);
      hi = std::max(hi, e.time);
    }
  }
  return hi - lo;
}

}  // namespace pioblast::mpisim
