#include "mpisim/trace.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <ostream>

namespace pioblast::mpisim {

const char* to_string(TraceKind kind) {
  switch (kind) {
    case TraceKind::kPhase:
      return "PHASE";
    case TraceKind::kSend:
      return "SEND";
    case TraceKind::kRecv:
      return "RECV";
    case TraceKind::kCompute:
      return "COMP";
    case TraceKind::kIo:
      return "IO";
    case TraceKind::kMark:
      return "MARK";
    case TraceKind::kCollective:
      return "COLL";
    case TraceKind::kVerify:
      return "VRFY";
    case TraceKind::kFault:
      return "FAULT";
    case TraceKind::kRecovery:
      return "RECOV";
  }
  return "?";
}

void Tracer::record(int rank, sim::Time time, TraceKind kind, std::string detail) {
  std::lock_guard lock(mu_);
  events_.push_back({rank, time, kind, std::move(detail)});
}

std::vector<TraceEvent> Tracer::sorted() const {
  std::vector<TraceEvent> out;
  {
    std::lock_guard lock(mu_);
    out = events_;
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     if (a.time != b.time) return a.time < b.time;
                     return a.rank < b.rank;
                   });
  return out;
}

std::size_t Tracer::size() const {
  std::lock_guard lock(mu_);
  return events_.size();
}

void Tracer::render(std::ostream& os, std::size_t max_events) const {
  const auto events = sorted();
  char buf[64];
  std::size_t shown = 0;
  for (const TraceEvent& e : events) {
    if (shown++ >= max_events) {
      os << "... (" << events.size() - max_events << " more events)\n";
      break;
    }
    std::snprintf(buf, sizeof buf, "[%12.6fs] r%-3d %-5s ", e.time, e.rank,
                  to_string(e.kind));
    os << buf << e.detail << '\n';
  }
}

std::vector<TraceEvent> Tracer::for_rank(int rank) const {
  std::vector<TraceEvent> out;
  for (const TraceEvent& e : sorted())
    if (e.rank == rank) out.push_back(e);
  return out;
}

namespace {

// Reads "<key>=<number>" starting at `pos` in `s`; advances past it.
bool scan_kv(const std::string& s, std::size_t& pos, const char* key,
             long long& value) {
  const std::string want = std::string(key) + "=";
  const std::size_t at = s.find(want, pos);
  if (at == std::string::npos) return false;
  std::size_t end = at + want.size();
  errno = 0;
  char* after = nullptr;
  value = std::strtoll(s.c_str() + end, &after, 10);
  if (after == s.c_str() + end || errno != 0) return false;
  pos = static_cast<std::size_t>(after - s.c_str());
  return true;
}

}  // namespace

bool parse_trace_event(const TraceEvent& event, ParsedEvent& out) {
  out = ParsedEvent{};
  out.kind = event.kind;
  out.rank = event.rank;
  out.time = event.time;
  const std::string& d = event.detail;
  long long v = 0;
  std::size_t pos = 0;
  switch (event.kind) {
    case TraceKind::kSend:
    case TraceKind::kRecv: {
      const char* peer_key = event.kind == TraceKind::kSend ? "dst" : "src";
      if (!scan_kv(d, pos, peer_key, v)) return false;
      out.peer = static_cast<int>(v);
      if (!scan_kv(d, pos, "tag", v)) return false;
      out.tag = static_cast<int>(v);
      if (!scan_kv(d, pos, "bytes", v)) return false;
      out.bytes = static_cast<std::uint64_t>(v);
      return true;
    }
    case TraceKind::kCollective: {
      const std::size_t sp = d.find(' ');
      if (sp == std::string::npos) return false;
      out.op = d.substr(0, sp);
      if (!scan_kv(d, pos, "root", v)) return false;
      out.root = static_cast<int>(v);
      return true;
    }
    case TraceKind::kFault: {
      if (d.rfind("drop send", 0) == 0) {
        out.drop = true;
        if (!scan_kv(d, pos, "dst", v)) return false;
        out.peer = static_cast<int>(v);
        if (!scan_kv(d, pos, "tag", v)) return false;
        out.tag = static_cast<int>(v);
        if (!scan_kv(d, pos, "bytes", v)) return false;
        out.bytes = static_cast<std::uint64_t>(v);
        return true;
      }
      if (d.rfind("rank ", 0) == 0 &&
          d.find(" crashed") != std::string::npos) {
        errno = 0;
        char* after = nullptr;
        v = std::strtoll(d.c_str() + 5, &after, 10);
        if (after == d.c_str() + 5 || errno != 0) return false;
        out.crashed_rank = static_cast<int>(v);
        return true;
      }
      return false;
    }
    default:
      return true;  // no structured payload for this kind
  }
}

sim::Time Tracer::span() const {
  sim::Time lo = 0, hi = 0;
  bool first = true;
  std::lock_guard lock(mu_);
  for (const TraceEvent& e : events_) {
    if (first) {
      lo = hi = e.time;
      first = false;
    } else {
      lo = std::min(lo, e.time);
      hi = std::max(hi, e.time);
    }
  }
  return hi - lo;
}

}  // namespace pioblast::mpisim
