#include "mpisim/hooks.h"

#include <vector>

namespace pioblast::mpisim {

const char* to_string(YieldPoint::Kind kind) {
  switch (kind) {
    case YieldPoint::Kind::kBegin: return "begin";
    case YieldPoint::Kind::kSend: return "send";
    case YieldPoint::Kind::kRecv: return "recv";
    case YieldPoint::Kind::kCollective: return "collective";
    case YieldPoint::Kind::kFault: return "fault";
  }
  return "?";
}

void ScheduleHook::inline_start(int) {}

int ScheduleHook::inline_choose(const std::vector<int>& enabled,
                                const std::vector<YieldPoint>&) {
  return enabled[0];
}

void ScheduleHook::inline_stuck() {}

bool independent(const YieldPoint& a, const YieldPoint& b) {
  using Kind = YieldPoint::Kind;
  // Collectives are checked against a job-global order, a fault retires a
  // rank everywhere at once, and a not-yet-started rank's first op is
  // unknown: all dependent with everything.
  auto global = [](const YieldPoint& p) {
    return p.kind == Kind::kBegin || p.kind == Kind::kCollective ||
           p.kind == Kind::kFault;
  };
  if (global(a) || global(b)) return false;
  // Point-to-point ops commute iff they touch different mailboxes. Two
  // sends into the same mailbox are kept dependent even though matching is
  // arrival-ordered — cheap insurance against matching-rule changes.
  auto mailbox_of = [](const YieldPoint& p) {
    return p.kind == Kind::kSend ? p.peer : p.rank;
  };
  return mailbox_of(a) != mailbox_of(b);
}

namespace {

struct ThreadCheckContext {
  RaceHook* race = nullptr;
  int rank = -1;
  std::vector<const void*> held_locks;
};

thread_local ThreadCheckContext t_check;

}  // namespace

void set_thread_check_context(RaceHook* race, int rank) {
  t_check.race = race;
  t_check.rank = rank;
  t_check.held_locks.clear();
}

void clear_thread_check_context() {
  t_check.race = nullptr;
  t_check.rank = -1;
  t_check.held_locks.clear();
}

void annotate_access(const void* obj, std::string_view what, bool write,
                     std::initializer_list<const void*> extra_locks) {
  if (t_check.race == nullptr || t_check.rank < 0) return;
  if (extra_locks.size() == 0) {
    t_check.race->on_access(t_check.rank, obj, what, write,
                            t_check.held_locks);
    return;
  }
  std::vector<const void*> locks = t_check.held_locks;
  locks.insert(locks.end(), extra_locks.begin(), extra_locks.end());
  t_check.race->on_access(t_check.rank, obj, what, write, locks);
}

}  // namespace pioblast::mpisim
