#include "mpisim/event_loop.h"

#include <string>
#include <utility>

#include "mpisim/fiber.h"
#include "util/error.h"

namespace pioblast::mpisim {

EventLoop::EventLoop(int nranks, Options opts)
    : nranks_(nranks), opts_(opts) {
  PIOBLAST_CHECK(nranks >= 1);
  PIOBLAST_CHECK_MSG(events_supported(),
                     "mpisim: the event backend needs <ucontext.h>, which "
                     "this build does not have — use ExecModel::kThreads");
}

EventLoop::~EventLoop() = default;

void EventLoop::start(int nranks, StuckHandler on_stuck) {
  PIOBLAST_CHECK(nranks == nranks_);
  on_stuck_ = std::move(on_stuck);
  stuck_fired_ = false;
  done_ = 0;
  // Every rank starts runnable at its kBegin point. This is the same
  // post-start-gate state the threaded CoopScheduler reaches once all
  // rank threads have checked in, so decision #0 sees the identical
  // (enabled, ops) set on both backends.
  states_.assign(static_cast<std::size_t>(nranks_), State::kRunnable);
  ops_.resize(static_cast<std::size_t>(nranks_));
  for (int r = 0; r < nranks_; ++r) {
    ops_[static_cast<std::size_t>(r)] =
        YieldPoint{r, YieldPoint::Kind::kBegin, -1, 0, nullptr};
  }
  ready_.clear();
  for (int r = 0; r < nranks_; ++r) ready_.push_back(r);
  if (opts_.delegate != nullptr) opts_.delegate->inline_start(nranks_);
  started_ = true;
}

void EventLoop::run(const std::function<void(int)>& body) {
  PIOBLAST_CHECK_MSG(started_, "EventLoop::run before start()");
  PIOBLAST_CHECK_MSG(Fiber::current() == nullptr,
                     "EventLoop::run from inside a fiber");
  fibers_.clear();
  fibers_.reserve(static_cast<std::size_t>(nranks_));
  for (int r = 0; r < nranks_; ++r) {
    fibers_.push_back(std::make_unique<Fiber>(
        opts_.stack_bytes, [&body, r] { body(r); }));
  }
  const bool checked = opts_.delegate != nullptr;
  while (done_ < nranks_) {
    int next = -1;
    if (checked) {
      next = choose_checked();
    } else {
      while (!ready_.empty()) {
        const int r = ready_.front();
        ready_.pop_front();
        if (states_[static_cast<std::size_t>(r)] == State::kRunnable) {
          next = r;
          break;
        }
      }
    }
    if (next == -1) {
      handle_stuck();
      continue;
    }
    resume_rank(next);
  }
  fibers_.clear();
}

int EventLoop::choose_checked() {
  std::vector<int> enabled;
  for (int r = 0; r < nranks_; ++r)
    if (states_[static_cast<std::size_t>(r)] == State::kRunnable)
      enabled.push_back(r);
  if (enabled.empty()) return -1;
  int chosen = enabled[0];
  if (enabled.size() >= 2) {
    std::vector<YieldPoint> ops;
    ops.reserve(enabled.size());
    for (const int r : enabled) ops.push_back(ops_[static_cast<std::size_t>(r)]);
    const int want = opts_.delegate->inline_choose(enabled, ops);
    for (const int r : enabled) {
      if (r == want) {
        chosen = want;
        break;
      }
    }
  }
  return chosen;
}

void EventLoop::resume_rank(int rank) {
  auto& fiber = fibers_[static_cast<std::size_t>(rank)];
  states_[static_cast<std::size_t>(rank)] = State::kRunning;
  // Thread-locals do not follow fibers: the race-detection context of
  // whichever rank ran last is still installed and must be replaced
  // before this rank touches instrumented state.
  set_thread_check_context(opts_.race, rank);
  fiber->resume();
  clear_thread_check_context();
  if (fiber->finished()) {
    states_[static_cast<std::size_t>(rank)] = State::kDone;
    ++done_;
  }
  // Otherwise yield()/block() already set kRunnable/kBlocked before
  // suspending.
}

void EventLoop::handle_stuck() {
  if (done_ == nranks_) return;
  PIOBLAST_CHECK_MSG(!stuck_fired_,
                     "mpisim: event loop still has blocked ranks after the "
                     "stuck handler poisoned every mailbox");
  stuck_fired_ = true;
  // Same report shape as the threaded CoopScheduler's, so verifier-off
  // deadlock tests read identically on either backend.
  std::string report =
      "mpisim: scheduler stuck — no runnable rank; blocked:";
  for (int r = 0; r < nranks_; ++r) {
    if (states_[static_cast<std::size_t>(r)] != State::kBlocked) continue;
    const YieldPoint& op = ops_[static_cast<std::size_t>(r)];
    report += " rank " + std::to_string(r) + " at " + to_string(op.kind);
    if (op.kind == YieldPoint::Kind::kRecv) {
      report += "(src=" + std::to_string(op.peer) +
                ", tag=" + std::to_string(op.tag) + ")";
    }
    report += ";";
  }
  report += " (deadlock not claimed by the protocol verifier)";
  if (opts_.delegate != nullptr) opts_.delegate->inline_stuck();
  // The handler poisons mailboxes, which calls back into wake() and
  // refills the ready set; the run loop then resumes the poisoned ranks
  // so they unwind.
  PIOBLAST_CHECK_MSG(on_stuck_ != nullptr,
                     "mpisim: event loop stuck with no handler installed");
  on_stuck_(report);
}

void EventLoop::rank_begin(int) {
  // Being resumed is being scheduled: the fiber only runs when chosen.
}

void EventLoop::yield(const YieldPoint& op) {
  const int rank = op.rank;
  ops_[static_cast<std::size_t>(rank)] = op;
  if (opts_.delegate == nullptr) return;  // run-to-block: no switch
  states_[static_cast<std::size_t>(rank)] = State::kRunnable;
  fibers_[static_cast<std::size_t>(rank)]->suspend();
}

void EventLoop::block(int rank) {
  // The rank stayed running from its failed match-check to here, so no
  // wake can have been missed: anything that could unblock it either
  // already sits in the mailbox (the caller's loop re-checks) or will be
  // pushed by a later-resumed rank, whose push calls wake().
  states_[static_cast<std::size_t>(rank)] = State::kBlocked;
  fibers_[static_cast<std::size_t>(rank)]->suspend();
}

void EventLoop::wake(int rank) {
  if (rank < 0 || rank >= nranks_) return;  // mailbox not bound to a rank
  if (states_[static_cast<std::size_t>(rank)] != State::kBlocked) return;
  states_[static_cast<std::size_t>(rank)] = State::kRunnable;
  if (opts_.delegate == nullptr) ready_.push_back(rank);
  // Never preempts: the waking rank (or the stuck handler) keeps running;
  // the loop picks the woken rank at a later decision point — the same
  // non-preemption rule as the threaded CoopScheduler.
}

void EventLoop::finish(int rank) {
  // Rank completion is observed by the run loop when the fiber's entry
  // returns; nothing to do here. (Kept callable so a shared rank body may
  // call finish() unconditionally on either backend.)
  (void)rank;
}

}  // namespace pioblast::mpisim
