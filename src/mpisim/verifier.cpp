#include "mpisim/verifier.h"

#include <algorithm>
#include <sstream>

#include "mpisim/fault.h"

namespace pioblast::mpisim {

ProtocolVerifier::ProtocolVerifier(VerifyOptions opts, Tracer* tracer,
                                   std::vector<int> internal_tags)
    : opts_(std::move(opts)), tracer_(tracer),
      internal_tags_(std::move(internal_tags)) {
  internal_tags_.insert(internal_tags_.end(), opts_.internal_tags.begin(),
                        opts_.internal_tags.end());
}

void ProtocolVerifier::attach(const std::vector<Mailbox*>& mailboxes) {
  std::lock_guard lock(mu_);
  mailboxes_ = mailboxes;
  live_ranks_ = static_cast<int>(mailboxes.size());
  waits_.assign(mailboxes.size(), {});
  done_.assign(mailboxes.size(), false);
  crashed_.assign(mailboxes.size(), false);
  collective_seq_.assign(mailboxes.size(), 0);
}

std::string ProtocolVerifier::tag_label(int tag) const {
  if (opts_.tag_name) {
    std::string name = opts_.tag_name(tag);
    if (!name.empty()) return name;
  }
  return std::to_string(tag);
}

bool ProtocolVerifier::tag_registered(int tag) const {
  if (tag >= kDriverTagLimit) {
    return std::find(internal_tags_.begin(), internal_tags_.end(), tag) !=
           internal_tags_.end();
  }
  return std::find(opts_.registered_tags.begin(), opts_.registered_tags.end(),
                   tag) != opts_.registered_tags.end();
}

void ProtocolVerifier::on_send(int src, int dst, int tag) {
  std::lock_guard lock(mu_);
  if (disabled_ || opts_.registered_tags.empty()) return;
  if (tag_registered(tag)) return;
  std::ostringstream os;
  os << "protocol verifier: ";
  if (tag >= kDriverTagLimit) {
    os << "send from rank " << src << " to rank " << dst << " uses tag " << tag
       << " inside the runtime-internal band (>= " << kDriverTagLimit
       << ") that no runtime protocol claims; driver tags must be registered "
          "in driver/tags.h below the band";
  } else {
    os << "unregistered driver tag " << tag_label(tag) << " in send from rank "
       << src << " to rank " << dst
       << "; every driver tag must be declared in driver/tags.h";
  }
  fail_locked(os.str());
}

void ProtocolVerifier::on_recv_posted(int rank, int src, int tag) {
  std::lock_guard lock(mu_);
  if (disabled_ || opts_.registered_tags.empty()) return;
  if (tag_registered(tag)) return;
  std::ostringstream os;
  os << "protocol verifier: rank " << rank << " posted a receive from "
     << (src == kAnySource ? std::string("any source")
                           : "rank " + std::to_string(src))
     << " on unregistered tag " << tag_label(tag)
     << "; every driver tag must be declared in driver/tags.h";
  fail_locked(os.str());
}

std::string ProtocolVerifier::render_cycle_locked() const {
  // Follow specific-source wait edges from the lowest blocked rank; a
  // revisited rank closes the cycle. Any-source waits have no unique
  // outgoing edge, so a walk reaching one just reports the chain so far.
  const int n = static_cast<int>(waits_.size());
  int start = -1;
  for (int r = 0; r < n; ++r) {
    if (waits_[static_cast<std::size_t>(r)].blocked) {
      start = r;
      break;
    }
  }
  if (start < 0) return "";
  std::vector<int> path;
  std::vector<bool> seen(static_cast<std::size_t>(n), false);
  int cur = start;
  while (cur >= 0 && cur < n && waits_[static_cast<std::size_t>(cur)].blocked &&
         !seen[static_cast<std::size_t>(cur)]) {
    seen[static_cast<std::size_t>(cur)] = true;
    path.push_back(cur);
    cur = waits_[static_cast<std::size_t>(cur)].src;  // kAnySource ends walk
  }
  std::ostringstream os;
  if (cur >= 0 && cur < n && seen[static_cast<std::size_t>(cur)]) {
    os << "  wait-for cycle: ";
    // Trim the lead-in so the rendered path starts at the cycle entry.
    const auto entry = std::find(path.begin(), path.end(), cur);
    for (auto it = entry; it != path.end(); ++it) os << *it << " -> ";
    os << cur << "\n";
  } else {
    os << "  wait-for chain: ";
    for (const int r : path) os << r << " -> ";
    os << (cur == kAnySource ? std::string("(any source)")
                             : std::to_string(cur))
       << "\n";
  }
  return os.str();
}

std::string ProtocolVerifier::deadlock_report_locked() const {
  if (live_ranks_ <= 0) return "";
  int blocked = 0;
  for (std::size_t r = 0; r < waits_.size(); ++r) {
    if (done_[r]) continue;
    if (!waits_[r].blocked) return "";  // somebody is still running
    ++blocked;
  }
  if (blocked == 0) return "";
  // Every live rank is registered blocked; exonerate any rank whose wait
  // became deliverable between its match check and its registration, and
  // any rank waiting specifically on a crashed peer (it will wake with
  // PeerLostError, not hang).
  for (std::size_t r = 0; r < waits_.size(); ++r) {
    if (done_[r]) continue;
    const Wait& w = waits_[r];
    if (w.src >= 0 && w.src < static_cast<int>(crashed_.size()) &&
        crashed_[static_cast<std::size_t>(w.src)])
      return "";
    if (mailboxes_[r]->has_match_any(w.src, w.tags)) return "";
  }
  std::ostringstream os;
  os << "protocol verifier: deadlock: all " << blocked
     << " live ranks blocked in recv with no deliverable message\n";
  for (std::size_t r = 0; r < waits_.size(); ++r) {
    if (done_[r]) continue;
    os << "  rank " << r << " waiting for "
       << (waits_[r].src == kAnySource
               ? std::string("any source")
               : "src=" + std::to_string(waits_[r].src))
       << " tag=";
    for (std::size_t t = 0; t < waits_[r].tags.size(); ++t)
      os << (t != 0 ? "/" : "") << tag_label(waits_[r].tags[t]);
    os << "\n";
  }
  os << render_cycle_locked();
  return os.str();
}

void ProtocolVerifier::flag_locked(const std::string& report) {
  disabled_ = true;  // one report per job; unwinding must not re-trigger
  if (tracer_ != nullptr) tracer_->record(0, 0.0, TraceKind::kVerify, report);
  for (Mailbox* mb : mailboxes_) mb->poison(report, /*verify_failure=*/true);
}

void ProtocolVerifier::fail_locked(const std::string& report) {
  flag_locked(report);
  throw VerifyError(report);
}

void ProtocolVerifier::on_block(int rank, int src, int tag) {
  const int tags[] = {tag};
  on_block(rank, src, std::span<const int>(tags));
}

void ProtocolVerifier::on_block(int rank, int src, std::span<const int> tags) {
  std::lock_guard lock(mu_);
  if (disabled_) return;
  auto& w = waits_[static_cast<std::size_t>(rank)];
  w.blocked = true;
  w.src = src;
  w.tags.assign(tags.begin(), tags.end());
  const std::string report = deadlock_report_locked();
  if (!report.empty()) fail_locked(report);
}

void ProtocolVerifier::on_unblock(int rank) {
  std::lock_guard lock(mu_);
  waits_[static_cast<std::size_t>(rank)].blocked = false;
}

void ProtocolVerifier::on_rank_done(int rank) {
  std::lock_guard lock(mu_);
  if (disabled_) return;
  done_[static_cast<std::size_t>(rank)] = true;
  --live_ranks_;
  const std::string report = deadlock_report_locked();
  // A finished rank's thread is outside the runtime's try block, so this
  // path must not throw; poisoning wakes the stuck ranks with the report.
  if (!report.empty()) flag_locked(report);
}

void ProtocolVerifier::on_rank_crashed(int rank) {
  std::lock_guard lock(mu_);
  if (disabled_) return;
  if (crashed_[static_cast<std::size_t>(rank)]) return;
  crashed_[static_cast<std::size_t>(rank)] = true;
  done_[static_cast<std::size_t>(rank)] = true;
  --live_ranks_;
  // World::crash_rank queued the failure-detector notice before calling
  // us, so a master blocked on any-source already has a deliverable
  // message and cannot be falsely declared deadlocked here.
  const std::string report = deadlock_report_locked();
  if (!report.empty()) flag_locked(report);  // crashing thread: never throw
}

void ProtocolVerifier::on_abort() {
  std::lock_guard lock(mu_);
  disabled_ = true;
}

void ProtocolVerifier::on_collective(int rank, std::string_view op, int root) {
  std::lock_guard lock(mu_);
  if (disabled_) return;
  const std::uint64_t seq = collective_seq_[static_cast<std::size_t>(rank)]++;
  if (seq == collective_log_.size()) {
    collective_log_.push_back({std::string(op), root, rank});
    return;
  }
  const CollectiveRecord& expect = collective_log_[static_cast<std::size_t>(seq)];
  if (expect.op == op && expect.root == root) return;
  std::ostringstream os;
  os << "protocol verifier: collective order mismatch at collective #" << seq
     << ": rank " << rank << " called " << op << "(root=" << root
     << ") but rank " << expect.first_rank << " called " << expect.op
     << "(root=" << expect.root
     << "); all ranks must issue collectives in the same order";
  fail_locked(os.str());
}

void ProtocolVerifier::check_stamp(int rank, int tag, const Message& msg,
                                   const TypeStamp& expected) {
  std::lock_guard lock(mu_);
  if (disabled_) return;
  if (msg.stamp.fp == 0 || expected.fp == 0) return;  // raw payload: unchecked
  if (msg.stamp.fp == expected.fp) return;
  std::ostringstream os;
  os << "protocol verifier: typed payload mismatch on tag " << tag_label(tag)
     << ": rank " << rank << " expects <" << expected.name << "> but rank "
     << msg.src << " sent <" << msg.stamp.name << "> (" << msg.size()
     << " bytes)";
  fail_locked(os.str());
}

void ProtocolVerifier::check_leaks() {
  std::lock_guard lock(mu_);
  if (disabled_) return;
  std::size_t leaked = 0;
  std::ostringstream os;
  for (std::size_t r = 0; r < mailboxes_.size(); ++r) {
    // A crashed rank's mailbox is sealed and its mail intentionally
    // vanishes; likewise an undrained failure-detector notice is runtime
    // bookkeeping, not a lost driver message.
    if (crashed_[r]) continue;
    const auto infos = mailboxes_[r]->pending_info();
    std::size_t shown = 0;
    std::ostringstream rank_os;
    for (const auto& info : infos) {
      if (info.tag == kTagFaultNotice) continue;
      rank_os << "    from rank " << info.src << " tag=" << tag_label(info.tag)
              << " (" << info.bytes << " bytes)\n";
      ++shown;
    }
    if (shown == 0) continue;
    os << "  rank " << r << " mailbox holds " << shown
       << (shown == 1 ? " message:" : " messages:") << "\n"
       << rank_os.str();
    leaked += shown;
  }
  if (leaked == 0) return;
  std::ostringstream head;
  head << "protocol verifier: " << leaked
       << (leaked == 1 ? " message" : " messages")
       << " left undrained at job end (sent but never received):\n"
       << os.str();
  const std::string report = head.str();
  if (tracer_ != nullptr) tracer_->record(0, 0.0, TraceKind::kVerify, report);
  throw VerifyError(report);
}

}  // namespace pioblast::mpisim
