// Protocol-verification vocabulary shared by the runtime and its users.
//
// The simulated MPI layer inherits real MPI's failure modes: a mismatched
// send/recv deadlocks the job forever, collectives called in different
// orders across ranks silently cross-match, and messages left in a mailbox
// at job end vanish without diagnosis. The ProtocolVerifier (verifier.h)
// turns each of those into a fast, readable failure; this header holds the
// types callers need to configure it or catch its reports.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "util/error.h"

namespace pioblast::mpisim {

/// Thrown when a protocol check fails: deadlock, misordered collective,
/// unregistered or misused tag, typed-payload confusion, or messages left
/// undrained at job end. The what() string is the full report.
class VerifyError : public util::RuntimeError {
 public:
  explicit VerifyError(const std::string& what) : util::RuntimeError(what) {}
};

/// Compile-time identity of a typed payload. Sends of typed values stamp
/// the outgoing message with one; typed receives verify it, so two types
/// that merely coincide in size can no longer be confused on the wire.
/// fp == 0 means "unstamped" (raw byte payload, not checked).
struct TypeStamp {
  std::uint64_t fp = 0;
  std::string_view name{};
};

namespace detail {

/// Human-readable name of T, parsed out of the compiler's pretty function
/// signature (static storage, so the view stays valid for the program).
template <typename T>
constexpr std::string_view raw_type_name() {
#if defined(__clang__) || defined(__GNUC__)
  constexpr std::string_view sig = __PRETTY_FUNCTION__;
  constexpr std::string_view key = "T = ";
  const auto start = sig.find(key) + key.size();
  const auto end = sig.find_first_of(";]", start);
  return sig.substr(start, end - start);
#else
  return "unknown-type";
#endif
}

constexpr std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = 1469598103934665603ull;
  for (const char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace detail

/// The stamp typed sends attach for T (see Process::send_value and
/// driver::Channel<T>).
template <typename T>
constexpr TypeStamp type_stamp() {
  constexpr std::string_view name = detail::raw_type_name<T>();
  return {detail::fnv1a(name), name};
}

/// Verifier configuration, passed to the runtime via RunOptions.
struct VerifyOptions {
  /// Master switch. On by default: deadlock, collective-order, leak, and
  /// type-stamp checks have no false positives on a correct program.
  bool enabled = true;

  /// Driver-band tag registry (tags below kDriverTagLimit). When
  /// non-empty, every point-to-point tag in the driver band must be in
  /// this set and internal-band tags must be known to the runtime — the
  /// driver layer passes driver::registered_tags(). Empty disables the
  /// tag audit (standalone mpisim programs pick tags freely).
  std::vector<int> registered_tags;

  /// Extra infrastructure tags above kDriverTagLimit that are legitimate
  /// besides the runtime's own collective tags (e.g. the pario two-phase
  /// I/O tags). Only consulted when `registered_tags` is non-empty.
  std::vector<int> internal_tags;

  /// Pretty-printer for driver tags in reports (falls back to the bare
  /// number when unset or when it returns an empty string).
  std::function<std::string(int)> tag_name;
};

}  // namespace pioblast::mpisim
