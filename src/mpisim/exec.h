// Rank execution models for the simulated runtime.
//
// The runtime can execute a job's ranks two ways:
//
//   * kThreads — one OS thread per rank (the historical model). Blocked
//     receives park the host thread on a condition variable. Simple and
//     sanitizer-friendly, but a 4096-rank world needs 4096 kernel threads,
//     which hits OS thread limits and makes large-world simulation
//     impractical.
//
//   * kEvents — one OS thread total. Every rank runs on a stackful fiber
//     (see fiber.h); a blocked rank parks on the event loop's ready queue
//     instead of holding a kernel thread, and the loop resumes whichever
//     rank became runnable. The ScheduleHook yield points that mpicheck
//     already uses are the complete set of suspension points, so the same
//     code paths drive both backends and they produce identical driver
//     output.
//
// The switch travels through RunOptions::exec_model; drivers and the CLI
// expose it as --exec-model.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>

namespace pioblast::mpisim {

enum class ExecModel {
  kThreads,  ///< one OS thread per rank (default)
  kEvents,   ///< one scheduler thread; ranks are stackful fibers
};

/// "threads" | "events".
const char* to_string(ExecModel model);

/// Parses "threads" / "events" (case-sensitive). Throws util::RuntimeError
/// on anything else.
ExecModel parse_exec_model(std::string_view text);

/// True when this build can run the event backend (requires <ucontext.h>;
/// all POSIX targets we build on have it). parse_exec_model still accepts
/// "events" on unsupported builds; the runtime fails with a clear error.
bool events_supported();

/// Default stack size for rank fibers under the event backend. Stacks are
/// lazily committed (mmap), so a 4096-rank world reserves virtual address
/// space only; the touched pages are what it actually costs.
inline constexpr std::size_t kDefaultFiberStackBytes = 256 * 1024;

}  // namespace pioblast::mpisim
