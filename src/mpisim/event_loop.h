// Event-driven rank execution backend.
//
// The EventLoop runs every rank of a job as a stackful fiber (fiber.h) on
// one scheduler thread. It implements ScheduleHook, so the existing yield
// (Process::yield_point) and block/wake (Mailbox::pop_any/push/poison/
// seal/notify_dead) call sites — already the complete set of suspension
// points under the cooperative threaded scheduler — become fiber
// park/resume points with no changes to their call structure. A blocked
// rank costs one parked fiber (a few KB of touched stack) instead of a
// kernel thread, which is what lets one process host a 4096-rank world.
//
// Two modes:
//
//   * Fast (no delegate): yield() returns immediately — a rank runs until
//     it actually blocks or finishes (run-to-block) — and the ready queue
//     is a FIFO deque. One fiber switch per block instead of one per
//     operation. Everything is single-threaded, so there is no locking.
//
//   * Checked (delegate != nullptr): every yield point suspends and the
//     loop consults the delegate ScheduleHook through its non-blocking
//     inline_*() protocol at each multi-choice point. The loop mirrors the
//     threaded CoopScheduler's decision state machine exactly — all ranks
//     start runnable at kBegin, every yield is a decision point, wakes
//     never preempt the running rank, single-choice points are forced and
//     unrecorded — so the decision records a CoopScheduler accumulates
//     here replay byte-for-byte on either backend.
#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "mpisim/exec.h"
#include "mpisim/hooks.h"

namespace pioblast::mpisim {

class Fiber;

class EventLoop final : public ScheduleHook {
 public:
  struct Options {
    /// Per-rank fiber stack reservation (address space; pages commit
    /// lazily via MAP_NORESERVE).
    std::size_t stack_bytes = kDefaultFiberStackBytes;
    /// Decision chooser driven through the inline_*() protocol (borrowed;
    /// e.g. a CoopScheduler). Null selects the fast run-to-block mode.
    ScheduleHook* delegate = nullptr;
    /// Race detector whose thread-local context must be re-installed on
    /// every fiber resume (thread-locals do not follow fibers).
    RaceHook* race = nullptr;
  };

  EventLoop(int nranks, Options opts);
  ~EventLoop() override;

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Runs `body(rank)` for every rank to completion on the calling
  /// thread. start() must have been called first. The body must not let
  /// exceptions escape (it runs on a fiber stack with no OS frame to
  /// unwind into).
  void run(const std::function<void(int)>& body);

  // ---- ScheduleHook -------------------------------------------------------
  //
  // start() is called by the runtime before run(); yield/block/wake are
  // called from inside rank fibers through the World's schedule binding
  // (wake also from the stuck handler, on the scheduler thread).
  // rank_begin()/finish() are no-ops: being resumed *is* being scheduled,
  // and rank completion is observed from the fiber itself.

  void start(int nranks, StuckHandler on_stuck) override;
  void rank_begin(int rank) override;
  void yield(const YieldPoint& op) override;
  void block(int rank) override;
  void wake(int rank) override;
  void finish(int rank) override;

  /// True when the loop found no runnable rank while some were still
  /// blocked and fired the stuck handler.
  bool went_stuck() const { return stuck_fired_; }

 private:
  enum class State : std::uint8_t { kRunnable, kRunning, kBlocked, kDone };

  /// Picks the next rank in checked mode: lowest runnable, or the
  /// delegate's inline_choose() pick at multi-choice points. -1 when no
  /// rank is runnable.
  int choose_checked();

  /// Resumes one rank's fiber and folds its exit state back in.
  void resume_rank(int rank);

  /// No runnable rank, some still blocked: reports the wedge and fires
  /// the stuck handler (which pokes mailboxes and calls back into wake).
  void handle_stuck();

  int nranks_;
  Options opts_;
  StuckHandler on_stuck_;
  bool started_ = false;
  bool stuck_fired_ = false;
  int done_ = 0;
  std::vector<State> states_;
  std::vector<YieldPoint> ops_;  ///< pending op per rank (checked mode)
  std::deque<int> ready_;        ///< FIFO ready queue (fast mode)
  std::vector<std::unique_ptr<Fiber>> fibers_;
};

}  // namespace pioblast::mpisim
