// Per-rank execution context: the API rank code programs against.
//
// A Process wraps the rank's virtual clock, phase accounting, and the
// message-passing primitives. Costs follow the LogGP-style network model of
// the cluster the world was created with:
//
//   send:  sender clock += o_s + n/B;   arrival = sender clock + L
//   recv:  receiver clock = max(receiver clock, arrival) + o_r + n/B_copy
//
// Collectives are implemented on top of these primitives: binomial trees
// for broadcast, barrier, and the allreduce reduce phase (O(log P) depth,
// which is what keeps flat fan-in from dominating past a few hundred
// ranks), but a deliberately flat gather at the root — which faithfully
// reproduces master incast serialization. Under an active fault plan every
// collective falls back to flat survivor-aware topologies (a tree that
// forwards through a dead interior rank would strand its subtree). All
// ranks of a job must call collectives in the same order, as in MPI; with
// the protocol verifier on (the default), that rule — plus tag
// registration and typed-payload conformance — is enforced at run time
// (see verifier.h).
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "mpisim/fault.h"
#include "mpisim/message.h"
#include "mpisim/world.h"
#include "sim/time.h"
#include "util/phase_timer.h"

namespace pioblast::mpisim {

class Process {
 public:
  Process(int rank, World& world);

  Process(const Process&) = delete;
  Process& operator=(const Process&) = delete;

  int rank() const { return rank_; }
  int size() const { return world_.size(); }
  bool is_root() const { return rank_ == 0; }
  World& world() { return world_; }
  const sim::ClusterConfig& cluster() const { return world_.cluster(); }
  const sim::CostModel& cost() const { return world_.cluster().cost; }

  // ---- virtual time -----------------------------------------------------

  sim::Time now() const { return clock_.now(); }

  /// Charges `seconds` of nominal CPU work; on a slow node (see
  /// sim::ClusterConfig::node_speed) the clock advances proportionally
  /// more.
  void compute(sim::Time seconds);

  /// Charges `seconds` of device wait (file I/O): independent of the
  /// node's CPU speed.
  void io_wait(sim::Time seconds);

  /// Jumps the clock forward to `t` (never backwards).
  void sync_to(sim::Time t);

  // ---- phases -----------------------------------------------------------

  /// Attributes subsequent virtual time to phase `name` until the next call.
  void set_phase(const std::string& name);

  /// Records a driver-defined annotation in the attached tracer (no-op
  /// when tracing is off).
  void mark(const std::string& detail);

  /// Records an event of arbitrary kind in the attached tracer (drivers
  /// use this for kFault / kRecovery annotations).
  void trace(TraceKind kind, std::string detail);

  /// Flushes pending time into the current phase and returns the buckets.
  util::PhaseTimer& phases();

  // ---- point-to-point ----------------------------------------------------

  /// Sends `data` to rank `dst` with `tag`; charges injection cost. Typed
  /// sends attach a TypeStamp so the receiving end can verify the payload
  /// type (raw byte sends leave it empty — unchecked).
  void send(int dst, int tag, std::span<const std::uint8_t> data,
            TypeStamp stamp = {});

  /// Blocking receive; `src` may be kAnySource. Charges receive cost and
  /// max-merges the clock with the message's virtual arrival time.
  Message recv(int src, int tag);

  /// Blocking receive matching any tag in `tags` (from any source).
  /// Earliest virtual arrival across the listed tags wins. Fault-aware
  /// server loops use this to wake for either a work request or a
  /// failure-detector notice, whichever lands first.
  Message recv_any_of(std::span<const int> tags);

  /// Drains every already-delivered message with `tag` without blocking
  /// or charging receive cost. Returns the count. Used by the master to
  /// absorb late failure-detector notices before the final barrier.
  std::size_t drain(int tag);

  /// Sends a trivially-copyable value.
  template <typename T>
    requires std::is_trivially_copyable_v<T>
  void send_value(int dst, int tag, const T& value) {
    send(dst, tag,
         std::span(reinterpret_cast<const std::uint8_t*>(&value), sizeof(T)),
         type_stamp<T>());
  }

  /// Receives a trivially-copyable value from `src`.
  template <typename T>
    requires std::is_trivially_copyable_v<T>
  T recv_value(int src, int tag) {
    Message m = recv(src, tag);
    check_stamp(m, tag, type_stamp<T>());
    PIOBLAST_CHECK_MSG(m.payload.size() == sizeof(T),
                       "typed recv size mismatch: got "
                           << m.payload.size() << " bytes, want " << sizeof(T)
                           << " (" << type_stamp<T>().name << ") from rank "
                           << m.src << ", tag " << tag_label(tag));
    T value;
    std::memcpy(&value, m.payload.data(), sizeof(T));
    return value;
  }

  /// Verifies a received message's type stamp against the type this end
  /// expects (no-op when verification is off or the message is
  /// unstamped). Throws VerifyError on type confusion.
  void check_stamp(const Message& msg, int tag, TypeStamp expected);

  /// Registered name of `tag` ("kTagAssign(2)") when the verifier carries
  /// a tag namer, else the bare number.
  std::string tag_label(int tag) const;

  // ---- collectives (flat/binomial over p2p) ------------------------------

  /// Synchronizes all ranks; clocks converge to the barrier completion time.
  void barrier();

  /// Broadcasts root's buffer to every rank via a binomial tree.
  void bcast(std::vector<std::uint8_t>& data, int root);

  /// Gathers every rank's buffer at `root` (rank-ordered). Non-roots get {}.
  std::vector<std::vector<std::uint8_t>> gather(std::span<const std::uint8_t> data,
                                                int root);

  /// All ranks learn the maximum of `value` (barrier-like clock sync).
  sim::Time allreduce_max(sim::Time value);

  // ---- accounting ---------------------------------------------------------

  std::uint64_t bytes_sent() const { return bytes_sent_; }
  std::uint64_t messages_sent() const { return messages_sent_; }

  /// The runtime-internal tags the collectives above use; the verifier's
  /// internal-band audit treats them (plus VerifyOptions::internal_tags)
  /// as the only legitimate tags at or above kDriverTagLimit.
  static std::span<const int> internal_tags();

  // ---- race-detector annotations ------------------------------------------
  //
  // Reports an access to driver- or test-level shared state to the
  // attached race detector (no-op when none is installed). `obj` is the
  // identity of the shared state; `what` labels the access site in
  // reports.

  void annotate_read(const void* obj, std::string_view what);
  void annotate_write(const void* obj, std::string_view what);

 private:
  int rank_;
  World& world_;
  sim::Clock clock_;
  util::PhaseTimer phases_;
  std::string current_phase_ = "other";
  sim::Time phase_mark_ = 0.0;
  std::uint64_t bytes_sent_ = 0;
  std::uint64_t messages_sent_ = 0;
  std::uint64_t collectives_entered_ = 0;

  // Fault injections for this rank (from the world's FaultPlan; all
  // zero/neutral when no fault targets this rank).
  std::uint64_t crash_at_ = 0;    ///< crash at the Nth comm event (0 = never)
  std::uint64_t comm_events_ = 0; ///< send/recv calls so far
  double slow_ = 1.0;             ///< straggler compute multiplier
  std::vector<std::uint64_t> drop_sends_;  ///< 1-based send ordinals to drop
  std::uint64_t send_seq_ = 0;             ///< sends attempted so far

  /// Internal tag space for collectives (drivers must use tags below this).
  static constexpr int kInternalTagBase = kDriverTagLimit;
  static constexpr int kTagBarrierUp = kInternalTagBase + 0;
  static constexpr int kTagBarrierDown = kInternalTagBase + 1;
  static constexpr int kTagBcast = kInternalTagBase + 2;
  static constexpr int kTagGather = kInternalTagBase + 3;
  static constexpr int kTagReduce = kInternalTagBase + 4;

  void accrue_phase();

  /// Counts one communication event and throws RankCrash when this rank's
  /// scheduled crash point is reached. Called on entry to send and recv.
  void maybe_crash();

  /// Records the collective's trace fingerprint and runs the verifier's
  /// order check. Called on entry by every collective, on every rank.
  void enter_collective(const char* op, int root);

  /// Cooperative-scheduler yield point (no-op when no scheduler is
  /// installed): reports the pending operation and blocks until this rank
  /// is scheduled to run it.
  void yield_point(YieldPoint::Kind kind, int peer, int tag,
                   const char* detail = nullptr);
};

}  // namespace pioblast::mpisim
