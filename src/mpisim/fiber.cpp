#include "mpisim/fiber.h"

#include <cstdint>
#include <cstdlib>
#include <utility>

#include "util/error.h"

#if __has_include(<ucontext.h>) && __has_include(<sys/mman.h>)
#define PIOBLAST_HAS_FIBERS 1
#include <sys/mman.h>
#include <ucontext.h>
#include <unistd.h>
#endif

// Sanitizer fiber hooks. ASan tracks a fake stack per stack; TSan tracks a
// shadow stack per execution context. Both must be told about every stack
// switch, or they report false positives (ASan) or lose the happens-before
// graph (TSan).
#if defined(__SANITIZE_ADDRESS__)
#define PIOBLAST_ASAN_FIBERS 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define PIOBLAST_ASAN_FIBERS 1
#endif
#endif
#if defined(__SANITIZE_THREAD__)
#define PIOBLAST_TSAN_FIBERS 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define PIOBLAST_TSAN_FIBERS 1
#endif
#endif

#if defined(PIOBLAST_ASAN_FIBERS) && __has_include(<sanitizer/common_interface_defs.h>)
#include <sanitizer/common_interface_defs.h>
#else
#undef PIOBLAST_ASAN_FIBERS
#endif
#if defined(PIOBLAST_TSAN_FIBERS) && __has_include(<sanitizer/tsan_interface.h>)
#include <sanitizer/tsan_interface.h>
#else
#undef PIOBLAST_TSAN_FIBERS
#endif

namespace pioblast::mpisim {

#ifdef PIOBLAST_HAS_FIBERS

namespace {
thread_local Fiber* t_current_fiber = nullptr;
}  // namespace

struct Fiber::Impl {
  ucontext_t self{};  ///< the fiber's context while it is suspended
  ucontext_t link{};  ///< the scheduler's context while the fiber runs
  std::function<void()> entry;
  void* map_base = nullptr;  ///< mmap base (guard page + stack)
  std::size_t map_bytes = 0;
  void* stack_lo = nullptr;  ///< usable stack bottom (above the guard page)
  std::size_t stack_bytes = 0;
  bool started = false;
#ifdef PIOBLAST_ASAN_FIBERS
  /// The scheduler stack's bounds, learned from finish_switch_fiber when
  /// the fiber is entered; needed to announce the switch back.
  const void* sched_stack_bottom = nullptr;
  std::size_t sched_stack_size = 0;
  /// Fake-stack save slot for the fiber while it is suspended.
  void* fiber_fake_stack = nullptr;
#endif
#ifdef PIOBLAST_TSAN_FIBERS
  void* tsan_fiber = nullptr;
  void* tsan_sched = nullptr;
#endif
};

Fiber::Fiber(std::size_t stack_bytes, std::function<void()> entry)
    : impl_(new Impl) {
  PIOBLAST_CHECK(stack_bytes >= 16 * 1024);
  impl_->entry = std::move(entry);
  const auto page = static_cast<std::size_t>(sysconf(_SC_PAGESIZE));
  const std::size_t usable = (stack_bytes + page - 1) / page * page;
  impl_->map_bytes = usable + page;  // one guard page below the stack
  // MAP_NORESERVE + lazy commit: a 4096-rank world reserves address space
  // only; the pages a rank actually touches are what it costs.
  void* base = mmap(nullptr, impl_->map_bytes, PROT_READ | PROT_WRITE,
                    MAP_PRIVATE | MAP_ANONYMOUS | MAP_NORESERVE, -1, 0);
  PIOBLAST_CHECK_MSG(base != MAP_FAILED,
                     "fiber: mmap of " << impl_->map_bytes
                                       << "-byte stack failed");
  impl_->map_base = base;
  // Guard page: a rank that overruns its fiber stack faults loudly instead
  // of silently corrupting a neighbouring stack.
  (void)mprotect(base, page, PROT_NONE);
  impl_->stack_lo = static_cast<char*>(base) + page;
  impl_->stack_bytes = usable;
#ifdef PIOBLAST_TSAN_FIBERS
  impl_->tsan_fiber = __tsan_create_fiber(0);
#endif
}

Fiber::~Fiber() {
#ifdef PIOBLAST_TSAN_FIBERS
  if (impl_->tsan_fiber != nullptr) __tsan_destroy_fiber(impl_->tsan_fiber);
#endif
  if (impl_->map_base != nullptr) munmap(impl_->map_base, impl_->map_bytes);
}

Fiber* Fiber::current() { return t_current_fiber; }

void Fiber::trampoline(unsigned hi, unsigned lo) {
  auto* self = reinterpret_cast<Fiber*>(
      (static_cast<std::uintptr_t>(hi) << 32) |
      static_cast<std::uintptr_t>(lo));
#ifdef PIOBLAST_ASAN_FIBERS
  // Complete the inbound switch: no fake stack to restore (first entry),
  // and learn the scheduler stack's bounds for the switch back.
  __sanitizer_finish_switch_fiber(nullptr, &self->impl_->sched_stack_bottom,
                                  &self->impl_->sched_stack_size);
#endif
  self->run();
  self->finished_ = true;
  // Final switch out; the fiber never runs again. suspend() releases the
  // ASan fake stack (finished_ is set) and must not return.
  self->suspend();
  std::abort();  // unreachable: a finished fiber is never resumed
}

void Fiber::run() { impl_->entry(); }

void Fiber::resume() {
  PIOBLAST_CHECK_MSG(!finished_, "fiber: resume of a finished fiber");
  PIOBLAST_CHECK_MSG(t_current_fiber == nullptr,
                     "fiber: nested resume (fibers do not stack)");
  if (!impl_->started) {
    impl_->started = true;
    PIOBLAST_CHECK(getcontext(&impl_->self) == 0);
    impl_->self.uc_stack.ss_sp = impl_->stack_lo;
    impl_->self.uc_stack.ss_size = impl_->stack_bytes;
    // No uc_link: the trampoline suspends explicitly after the entry
    // returns, so the sanitizer annotations cover the final switch too.
    impl_->self.uc_link = nullptr;
    const auto ptr = reinterpret_cast<std::uintptr_t>(this);
    makecontext(&impl_->self, reinterpret_cast<void (*)()>(&Fiber::trampoline),
                2, static_cast<unsigned>(ptr >> 32),
                static_cast<unsigned>(ptr & 0xffffffffu));
  }
  t_current_fiber = this;
#ifdef PIOBLAST_TSAN_FIBERS
  impl_->tsan_sched = __tsan_get_current_fiber();
  __tsan_switch_to_fiber(impl_->tsan_fiber, 0);
#endif
#ifdef PIOBLAST_ASAN_FIBERS
  // `sched_fake` lives in this frame; swapcontext returns right here when
  // the fiber suspends, so the slot is still alive to restore from.
  void* sched_fake = nullptr;
  __sanitizer_start_switch_fiber(&sched_fake, impl_->stack_lo,
                                 impl_->stack_bytes);
#endif
  PIOBLAST_CHECK(swapcontext(&impl_->link, &impl_->self) == 0);
#ifdef PIOBLAST_ASAN_FIBERS
  __sanitizer_finish_switch_fiber(sched_fake, nullptr, nullptr);
#endif
  t_current_fiber = nullptr;
}

void Fiber::suspend() {
  PIOBLAST_CHECK_MSG(t_current_fiber == this,
                     "fiber: suspend from outside the fiber");
#ifdef PIOBLAST_TSAN_FIBERS
  __tsan_switch_to_fiber(impl_->tsan_sched, 0);
#endif
#ifdef PIOBLAST_ASAN_FIBERS
  // A finished fiber passes null so ASan frees its fake stack.
  __sanitizer_start_switch_fiber(
      finished_ ? nullptr : &impl_->fiber_fake_stack,
      impl_->sched_stack_bottom, impl_->sched_stack_size);
#endif
  PIOBLAST_CHECK(swapcontext(&impl_->self, &impl_->link) == 0);
#ifdef PIOBLAST_ASAN_FIBERS
  __sanitizer_finish_switch_fiber(impl_->fiber_fake_stack,
                                  &impl_->sched_stack_bottom,
                                  &impl_->sched_stack_size);
#endif
}

#else  // !PIOBLAST_HAS_FIBERS

struct Fiber::Impl {};

Fiber::Fiber(std::size_t, std::function<void()>) {
  PIOBLAST_CHECK_MSG(false,
                     "fiber: this build has no <ucontext.h>; the event "
                     "backend is unavailable — use ExecModel::kThreads");
}
Fiber::~Fiber() = default;
void Fiber::resume() {}
void Fiber::suspend() {}
Fiber* Fiber::current() { return nullptr; }
void Fiber::trampoline(unsigned, unsigned) {}
void Fiber::run() {}

#endif  // PIOBLAST_HAS_FIBERS

namespace detail {
bool fibers_supported() {
#ifdef PIOBLAST_HAS_FIBERS
  return true;
#else
  return false;
#endif
}
}  // namespace detail

}  // namespace pioblast::mpisim
