// Stackful fibers for the event-driven rank backend.
//
// A Fiber is a ucontext-based coroutine with its own mmap'd stack: the
// scheduler thread resume()s it, and code running inside it suspend()s
// back to the scheduler at blocking points. Exactly one fiber runs at a
// time on the scheduler thread — there is no preemption and no parallelism,
// which is what makes the event backend deterministic.
//
// Sanitizer support: stack switches confuse AddressSanitizer's fake-stack
// bookkeeping and ThreadSanitizer's shadow-stack tracking unless each
// switch is announced through their fiber APIs. fiber.cpp carries the
// __sanitizer_{start,finish}_switch_fiber and __tsan_*_fiber annotations
// behind feature guards, so the event backend stays clean under the CI
// sanitizer matrix.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>

namespace pioblast::mpisim {

class Fiber {
 public:
  /// Runs `entry` on a fresh `stack_bytes` stack on first resume(). The
  /// entry must not let exceptions escape (the stack has no OS frame to
  /// unwind into) — callers wrap the body in a catch-all.
  Fiber(std::size_t stack_bytes, std::function<void()> entry);
  ~Fiber();

  Fiber(const Fiber&) = delete;
  Fiber& operator=(const Fiber&) = delete;

  /// Switches the calling (scheduler) thread into the fiber; returns when
  /// the fiber suspends or its entry returns. Must not be called on a
  /// finished fiber.
  void resume();

  /// Switches from inside the fiber back to its scheduler. Must be called
  /// from within this fiber's entry.
  void suspend();

  /// True once the entry function has returned.
  bool finished() const { return finished_; }

  /// The fiber currently running on this thread, or null when the caller
  /// is the scheduler itself. Lets library code assert it is (not) on a
  /// fiber stack.
  static Fiber* current();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
  bool finished_ = false;

  static void trampoline(unsigned hi, unsigned lo);
  void run();
};

}  // namespace pioblast::mpisim
