// Event tracing for simulated runs.
//
// When a Tracer is attached to a World, every rank records timestamped
// events (phase changes, sends, receives, collective boundaries, custom
// marks). After the run the merged, time-ordered stream can be rendered as
// a text timeline — the tool of choice for understanding why a protocol
// serializes (e.g. watching the mpiBLAST master's per-alignment fetch
// round trips stack up).
//
// Tracing is off unless a Tracer is attached; the hot path then costs one
// branch.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>
#include <vector>

#include "sim/time.h"

namespace pioblast::mpisim {

/// Kinds of recorded events.
enum class TraceKind : std::uint8_t {
  kPhase,    ///< rank entered a named phase
  kSend,     ///< message injected (detail: "dst=<r> tag=<t> bytes=<n>")
  kRecv,     ///< message consumed (detail: "src=<r> tag=<t> bytes=<n>")
  kCompute,  ///< explicit compute charge
  kIo,       ///< timed file operation
  kMark,     ///< driver-defined annotation
  kCollective,  ///< collective entry (detail: "<op> root=<r> seq=<n>")
  kVerify,      ///< protocol-verifier report (failed check, full text)
  kFault,       ///< fault injection fired (crash, message drop)
  kRecovery,    ///< recovery action (requeue after loss, degraded I/O)
};

const char* to_string(TraceKind kind);

struct TraceEvent {
  int rank = 0;
  sim::Time time = 0.0;
  TraceKind kind = TraceKind::kMark;
  std::string detail;
};

/// Thread-safe event sink shared by all ranks of a run.
class Tracer {
 public:
  /// Appends one event (called by Process; usable from drivers too).
  void record(int rank, sim::Time time, TraceKind kind, std::string detail);

  /// All events, globally ordered by (time, rank); call after the run.
  std::vector<TraceEvent> sorted() const;

  /// Number of recorded events.
  std::size_t size() const;

  /// Renders a per-rank text timeline of the first `max_events` events:
  ///   [   0.000123s] r2 SEND  dst=0 tag=7 bytes=48
  void render(std::ostream& os, std::size_t max_events = 200) const;

  /// Events of one rank, time-ordered (for assertions in tests).
  std::vector<TraceEvent> for_rank(int rank) const;

  /// Total virtual time spanned by the recorded events.
  sim::Time span() const;

 private:
  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
};

/// A TraceEvent's detail string, decoded. The fields filled depend on the
/// kind: SEND/RECV set peer/tag/bytes, COLL sets op/root/seq, crash FAULT
/// sets crashed_rank, drop-send FAULT sets drop + peer/tag/bytes. Consumers
/// (the protospec conformance monitor) get structured access without
/// re-parsing the ad-hoc detail formats.
struct ParsedEvent {
  TraceKind kind = TraceKind::kMark;
  int rank = 0;
  sim::Time time = 0.0;
  int peer = -1;          ///< SEND: dst; RECV: src; drop FAULT: dst
  int tag = -1;           ///< SEND/RECV/drop FAULT
  std::uint64_t bytes = 0;
  std::string op;         ///< COLL: operation name
  int root = -1;          ///< COLL
  int crashed_rank = -1;  ///< crash FAULT: the rank that died
  bool drop = false;      ///< FAULT was a message drop, not a crash
};

/// Decodes one trace event. Returns false when the detail string does not
/// match the kind's known format (then only kind/rank/time are valid).
bool parse_trace_event(const TraceEvent& event, ParsedEvent& out);

}  // namespace pioblast::mpisim
