#include "mpisim/process.h"

#include <algorithm>

#include "mpisim/verifier.h"

namespace pioblast::mpisim {

Process::Process(int rank, World& world) : rank_(rank), world_(world) {
  PIOBLAST_CHECK(rank >= 0 && rank < world.size());
  if (const RankFault* f = world.faults().find(rank)) {
    crash_at_ = f->crash_at;
    slow_ = f->slow;
    drop_sends_ = f->drop_sends;
  }
}

void Process::yield_point(YieldPoint::Kind kind, int peer, int tag,
                          const char* detail) {
  if (ScheduleHook* s = world_.schedule())
    s->yield(YieldPoint{rank_, kind, peer, tag, detail});
}

void Process::maybe_crash() {
  if (crash_at_ != 0 && ++comm_events_ == crash_at_) {
    // The crash is itself a scheduling-relevant event: exploring where it
    // lands relative to other ranks' progress is how mpicheck exercises
    // detection/recovery interleavings.
    yield_point(YieldPoint::Kind::kFault, -1, 0, "crash");
    throw RankCrash{rank_, crash_at_, clock_.now()};
  }
}

void Process::annotate_read(const void* obj, std::string_view what) {
  if (RaceHook* r = world_.race()) r->on_access(rank_, obj, what, false, {});
}

void Process::annotate_write(const void* obj, std::string_view what) {
  if (RaceHook* r = world_.race()) r->on_access(rank_, obj, what, true, {});
}

void Process::accrue_phase() {
  phases_.add(current_phase_, clock_.now() - phase_mark_);
  phase_mark_ = clock_.now();
}

void Process::compute(sim::Time seconds) {
  // Heterogeneous machines: a half-speed node takes twice as long for the
  // same nominal work (sim::ClusterConfig::node_speed). An injected
  // straggler fault multiplies the cost on top of the configured speed.
  clock_.advance(seconds * slow_ / cluster().speed_of(rank_));
}

void Process::io_wait(sim::Time seconds) { clock_.advance(seconds); }

void Process::sync_to(sim::Time t) { clock_.advance_to(t); }

void Process::set_phase(const std::string& name) {
  accrue_phase();
  current_phase_ = name;
  if (Tracer* t = world_.tracer())
    t->record(rank_, clock_.now(), TraceKind::kPhase, name);
}

void Process::mark(const std::string& detail) {
  if (Tracer* t = world_.tracer())
    t->record(rank_, clock_.now(), TraceKind::kMark, detail);
}

void Process::trace(TraceKind kind, std::string detail) {
  if (Tracer* t = world_.tracer())
    t->record(rank_, clock_.now(), kind, std::move(detail));
}

util::PhaseTimer& Process::phases() {
  accrue_phase();
  return phases_;
}

void Process::send(int dst, int tag, std::span<const std::uint8_t> data,
                   TypeStamp stamp) {
  PIOBLAST_CHECK_MSG(dst >= 0 && dst < size(), "send to invalid rank " << dst);
  PIOBLAST_CHECK_MSG(dst != rank_, "send to self is not supported");
  yield_point(YieldPoint::Kind::kSend, dst, tag);
  maybe_crash();
  if (ProtocolVerifier* v = world_.verifier()) v->on_send(rank_, dst, tag);
  const auto& net = cluster().network;
  clock_.advance(net.send_cost(data.size()));
  ++send_seq_;
  const bool dropped = std::find(drop_sends_.begin(), drop_sends_.end(),
                                 send_seq_) != drop_sends_.end();
  bytes_sent_ += data.size();
  ++messages_sent_;
  if (Tracer* t = world_.tracer()) {
    if (dropped) {
      t->record(rank_, clock_.now(), TraceKind::kFault,
                "drop send #" + std::to_string(send_seq_) + " dst=" +
                    std::to_string(dst) + " tag=" + std::to_string(tag) +
                    " bytes=" + std::to_string(data.size()));
    } else {
      t->record(rank_, clock_.now(), TraceKind::kSend,
                "dst=" + std::to_string(dst) + " tag=" + std::to_string(tag) +
                    " bytes=" + std::to_string(data.size()));
    }
  }
  // The happens-before token is issued even for dropped sends (the send
  // itself still happened on this rank's timeline) but only a delivered
  // message carries it to the receiver.
  std::uint64_t hb = 0;
  if (RaceHook* r = world_.race()) hb = r->on_send(rank_);
  if (dropped) return;  // injection cost charged; the wire eats the message
  Message msg;
  msg.src = rank_;
  msg.tag = tag;
  msg.arrival = clock_.now() + net.wire_latency();
  msg.payload.assign(data.begin(), data.end());
  msg.stamp = stamp;
  msg.hb = hb;
  world_.mailbox(dst).push(std::move(msg));
}

Message Process::recv(int src, int tag) {
  yield_point(YieldPoint::Kind::kRecv, src, tag);
  if (ProtocolVerifier* v = world_.verifier()) v->on_recv_posted(rank_, src, tag);
  maybe_crash();
  Message msg = world_.mailbox(rank_).pop(src, tag);
  if (RaceHook* r = world_.race(); r != nullptr && msg.hb != 0)
    r->on_recv(rank_, msg.hb);
  clock_.advance_to(msg.arrival);
  clock_.advance(cluster().network.recv_cost(msg.size()));
  if (Tracer* t = world_.tracer()) {
    t->record(rank_, clock_.now(), TraceKind::kRecv,
              "src=" + std::to_string(msg.src) + " tag=" + std::to_string(tag) +
                  " bytes=" + std::to_string(msg.size()));
  }
  return msg;
}

Message Process::recv_any_of(std::span<const int> tags) {
  yield_point(YieldPoint::Kind::kRecv, kAnySource,
              tags.empty() ? 0 : tags[0]);
  if (ProtocolVerifier* v = world_.verifier()) {
    for (const int tag : tags) v->on_recv_posted(rank_, kAnySource, tag);
  }
  maybe_crash();
  Message msg = world_.mailbox(rank_).pop_any(kAnySource, tags);
  if (RaceHook* r = world_.race(); r != nullptr && msg.hb != 0)
    r->on_recv(rank_, msg.hb);
  clock_.advance_to(msg.arrival);
  clock_.advance(cluster().network.recv_cost(msg.size()));
  if (Tracer* t = world_.tracer()) {
    t->record(rank_, clock_.now(), TraceKind::kRecv,
              "src=" + std::to_string(msg.src) + " tag=" +
                  std::to_string(msg.tag) + " bytes=" +
                  std::to_string(msg.size()));
  }
  return msg;
}

std::size_t Process::drain(int tag) {
  std::size_t n = 0;
  while (auto msg = world_.mailbox(rank_).try_pop(kAnySource, tag)) {
    if (RaceHook* r = world_.race(); r != nullptr && msg->hb != 0)
      r->on_recv(rank_, msg->hb);
    ++n;
  }
  return n;
}

void Process::check_stamp(const Message& msg, int tag, TypeStamp expected) {
  if (ProtocolVerifier* v = world_.verifier())
    v->check_stamp(rank_, tag, msg, expected);
}

std::string Process::tag_label(int tag) const {
  if (ProtocolVerifier* v = world_.verifier()) return v->tag_label(tag);
  return std::to_string(tag);
}

std::span<const int> Process::internal_tags() {
  static constexpr int kTags[] = {kTagBarrierUp, kTagBarrierDown, kTagBcast,
                                  kTagGather,    kTagReduce,      kTagFaultNotice};
  return kTags;
}

void Process::enter_collective(const char* op, int root) {
  yield_point(YieldPoint::Kind::kCollective, root, 0, op);
  const std::uint64_t seq = collectives_entered_++;
  if (Tracer* t = world_.tracer()) {
    t->record(rank_, clock_.now(), TraceKind::kCollective,
              std::string(op) + " root=" + std::to_string(root) +
                  " seq=" + std::to_string(seq));
  }
  if (ProtocolVerifier* v = world_.verifier()) v->on_collective(rank_, op, root);
}

void Process::barrier() {
  enter_collective("barrier", 0);
  const int p = size();
  if (world_.fault_tolerant()) {
    // Flat barrier through rank 0: every rank reports in, rank 0 releases.
    // No rank depends on a non-root peer to forward, so a crashed interior
    // rank cannot strand a subtree. When a rank crashed mid-job its
    // report-in never arrives: rank 0 skips it (PeerLostError) and the
    // release to its sealed mailbox is a no-op, so the survivors still
    // converge.
    if (rank_ == 0) {
      for (int r = 1; r < p; ++r) {
        try {
          recv(r, kTagBarrierUp);
        } catch (const PeerLostError&) {
          // Crashed rank: will never report in.
        }
      }
      for (int r = 1; r < p; ++r) send(r, kTagBarrierDown, {});
    } else {
      send(0, kTagBarrierUp, {});
      recv(0, kTagBarrierDown);
    }
    return;
  }
  // Binomial reduce to rank 0, then binomial release — O(log P) depth
  // instead of the flat O(P) fan-in, which dominates past a few hundred
  // ranks. Up phase: a rank absorbs each child `rank + mask` below its
  // lowest set bit, then reports to parent `rank - lowbit(rank)`. Nobody
  // leaves before the slowest arrival: the release descends from rank 0,
  // which (transitively) waited for everyone, so a barrier still acts as
  // a virtual-clock synchronization point.
  for (int mask = 1; mask < p; mask <<= 1) {
    if ((rank_ & mask) != 0) {
      send(rank_ - mask, kTagBarrierUp, {});
      break;
    }
    if (rank_ + mask < p) recv(rank_ + mask, kTagBarrierUp);
  }
  // Down phase: the exact mirror. lowbit bounds this rank's subtree; the
  // root's bound is the smallest power of two covering the world.
  int top = 1;
  while (top < p) top <<= 1;
  const int lowbit = rank_ == 0 ? top : (rank_ & -rank_);
  if (rank_ != 0) recv(rank_ - lowbit, kTagBarrierDown);
  for (int mask = lowbit >> 1; mask >= 1; mask >>= 1) {
    if (rank_ + mask < p) send(rank_ + mask, kTagBarrierDown, {});
  }
}

void Process::bcast(std::vector<std::uint8_t>& data, int root) {
  PIOBLAST_CHECK(root >= 0 && root < size());
  enter_collective("bcast", root);
  const int p = size();
  if (world_.fault_tolerant()) {
    // Flat root-sends-to-all topology: no rank ever depends on a non-root
    // peer to forward, so a crashed interior rank cannot strand a
    // subtree. Gated on the static plan (not the dynamic dead set) so all
    // ranks agree on the topology. Sends to sealed mailboxes vanish.
    if (rank_ == root) {
      for (int r = 0; r < p; ++r)
        if (r != root) send(r, kTagBcast, data);
    } else {
      Message msg = recv(root, kTagBcast);
      data = std::move(msg.payload);
    }
    return;
  }
  // Binomial tree rooted at `root`, ranks renumbered relative to it.
  // A non-root rank `rel` receives from parent `rel - m` in round
  // log2(m), where m is the highest power of two not exceeding rel, then
  // forwards to `rel + mask` in every later round while that child exists.
  const int rel = (rank_ - root + p) % p;
  int first_send_mask = 1;
  if (rel != 0) {
    int m = 1;
    while (m * 2 <= rel) m <<= 1;
    const int parent = (rel - m + root) % p;
    Message msg = recv(parent, kTagBcast);
    data = std::move(msg.payload);
    first_send_mask = m << 1;
  }
  for (int mask = first_send_mask; mask < p; mask <<= 1) {
    const int target_rel = rel + mask;
    if (rel < mask && target_rel < p) {
      send((target_rel + root) % p, kTagBcast, data);
    }
  }
}

std::vector<std::vector<std::uint8_t>> Process::gather(
    std::span<const std::uint8_t> data, int root) {
  PIOBLAST_CHECK(root >= 0 && root < size());
  enter_collective("gather", root);
  std::vector<std::vector<std::uint8_t>> out;
  if (rank_ == root) {
    out.resize(static_cast<std::size_t>(size()));
    out[static_cast<std::size_t>(rank_)].assign(data.begin(), data.end());
    // Flat collection in rank order: the root's clock serializes the
    // per-message receive costs, reproducing real master-side incast. A
    // crashed contributor's slot stays empty (callers treat empty as
    // "no contribution").
    for (int r = 0; r < size(); ++r) {
      if (r == root) continue;
      try {
        Message m = recv(r, kTagGather);
        out[static_cast<std::size_t>(r)] = std::move(m.payload);
      } catch (const PeerLostError&) {
        // Crashed rank contributes nothing; impossible without faults.
      }
    }
  } else {
    send(root, kTagGather, data);
  }
  return out;
}

sim::Time Process::allreduce_max(sim::Time value) {
  enter_collective("allreduce_max", 0);
  // Reduce to rank 0, then broadcast the result (bcast picks its own
  // topology for the run mode). Crashed ranks simply drop out of the
  // maximum.
  const int p = size();
  sim::Time best = value;
  if (world_.fault_tolerant()) {
    // Flat reduce: only rank 0 is a fan-in point, so a crashed
    // contributor costs exactly its own value.
    if (rank_ == 0) {
      for (int r = 1; r < p; ++r) {
        try {
          best = std::max(best, recv_value<sim::Time>(r, kTagReduce));
        } catch (const PeerLostError&) {
          // Crashed rank: no contribution.
        }
      }
    } else {
      send_value(0, kTagReduce, value);
    }
  } else {
    // Binomial reduce along the barrier's tree: each rank folds in its
    // children's partial maxima before reporting one value upward.
    for (int mask = 1; mask < p; mask <<= 1) {
      if ((rank_ & mask) != 0) {
        send_value(rank_ - mask, kTagReduce, best);
        break;
      }
      if (rank_ + mask < p)
        best = std::max(best, recv_value<sim::Time>(rank_ + mask, kTagReduce));
    }
  }
  std::vector<std::uint8_t> buf(sizeof(best));
  if (rank_ == 0) std::memcpy(buf.data(), &best, sizeof(best));
  bcast(buf, 0);
  PIOBLAST_CHECK(buf.size() == sizeof(sim::Time));
  std::memcpy(&best, buf.data(), sizeof(best));
  return best;
}

}  // namespace pioblast::mpisim
