#include "mpisim/process.h"

#include <algorithm>

#include "mpisim/verifier.h"

namespace pioblast::mpisim {

Process::Process(int rank, World& world) : rank_(rank), world_(world) {
  PIOBLAST_CHECK(rank >= 0 && rank < world.size());
}

void Process::accrue_phase() {
  phases_.add(current_phase_, clock_.now() - phase_mark_);
  phase_mark_ = clock_.now();
}

void Process::compute(sim::Time seconds) {
  // Heterogeneous machines: a half-speed node takes twice as long for the
  // same nominal work (sim::ClusterConfig::node_speed).
  clock_.advance(seconds / cluster().speed_of(rank_));
}

void Process::io_wait(sim::Time seconds) { clock_.advance(seconds); }

void Process::sync_to(sim::Time t) { clock_.advance_to(t); }

void Process::set_phase(const std::string& name) {
  accrue_phase();
  current_phase_ = name;
  if (Tracer* t = world_.tracer())
    t->record(rank_, clock_.now(), TraceKind::kPhase, name);
}

void Process::mark(const std::string& detail) {
  if (Tracer* t = world_.tracer())
    t->record(rank_, clock_.now(), TraceKind::kMark, detail);
}

util::PhaseTimer& Process::phases() {
  accrue_phase();
  return phases_;
}

void Process::send(int dst, int tag, std::span<const std::uint8_t> data,
                   TypeStamp stamp) {
  PIOBLAST_CHECK_MSG(dst >= 0 && dst < size(), "send to invalid rank " << dst);
  PIOBLAST_CHECK_MSG(dst != rank_, "send to self is not supported");
  if (ProtocolVerifier* v = world_.verifier()) v->on_send(rank_, dst, tag);
  const auto& net = cluster().network;
  clock_.advance(net.send_cost(data.size()));
  Message msg;
  msg.src = rank_;
  msg.tag = tag;
  msg.arrival = clock_.now() + net.wire_latency();
  msg.payload.assign(data.begin(), data.end());
  msg.stamp = stamp;
  bytes_sent_ += data.size();
  ++messages_sent_;
  if (Tracer* t = world_.tracer()) {
    t->record(rank_, clock_.now(), TraceKind::kSend,
              "dst=" + std::to_string(dst) + " tag=" + std::to_string(tag) +
                  " bytes=" + std::to_string(data.size()));
  }
  world_.mailbox(dst).push(std::move(msg));
}

Message Process::recv(int src, int tag) {
  if (ProtocolVerifier* v = world_.verifier()) v->on_recv_posted(rank_, src, tag);
  Message msg = world_.mailbox(rank_).pop(src, tag);
  clock_.advance_to(msg.arrival);
  clock_.advance(cluster().network.recv_cost(msg.size()));
  if (Tracer* t = world_.tracer()) {
    t->record(rank_, clock_.now(), TraceKind::kRecv,
              "src=" + std::to_string(msg.src) + " tag=" + std::to_string(tag) +
                  " bytes=" + std::to_string(msg.size()));
  }
  return msg;
}

void Process::check_stamp(const Message& msg, int tag, TypeStamp expected) {
  if (ProtocolVerifier* v = world_.verifier())
    v->check_stamp(rank_, tag, msg, expected);
}

std::string Process::tag_label(int tag) const {
  if (ProtocolVerifier* v = world_.verifier()) return v->tag_label(tag);
  return std::to_string(tag);
}

std::span<const int> Process::internal_tags() {
  static constexpr int kTags[] = {kTagBarrierUp, kTagBarrierDown, kTagBcast,
                                  kTagGather, kTagReduce};
  return kTags;
}

void Process::enter_collective(const char* op, int root) {
  const std::uint64_t seq = collectives_entered_++;
  if (Tracer* t = world_.tracer()) {
    t->record(rank_, clock_.now(), TraceKind::kCollective,
              std::string(op) + " root=" + std::to_string(root) +
                  " seq=" + std::to_string(seq));
  }
  if (ProtocolVerifier* v = world_.verifier()) v->on_collective(rank_, op, root);
}

void Process::barrier() {
  enter_collective("barrier", 0);
  // Flat barrier through rank 0: every rank reports in, rank 0 releases.
  // Clocks converge to rank 0's post-collection time plus the release hop,
  // so a barrier also acts as a virtual-clock synchronization point.
  if (rank_ == 0) {
    for (int r = 1; r < size(); ++r) recv(r, kTagBarrierUp);
    for (int r = 1; r < size(); ++r) send(r, kTagBarrierDown, {});
  } else {
    send(0, kTagBarrierUp, {});
    recv(0, kTagBarrierDown);
  }
}

void Process::bcast(std::vector<std::uint8_t>& data, int root) {
  PIOBLAST_CHECK(root >= 0 && root < size());
  enter_collective("bcast", root);
  // Binomial tree rooted at `root`, ranks renumbered relative to it.
  // A non-root rank `rel` receives from parent `rel - m` in round
  // log2(m), where m is the highest power of two not exceeding rel, then
  // forwards to `rel + mask` in every later round while that child exists.
  const int p = size();
  const int rel = (rank_ - root + p) % p;
  int first_send_mask = 1;
  if (rel != 0) {
    int m = 1;
    while (m * 2 <= rel) m <<= 1;
    const int parent = (rel - m + root) % p;
    Message msg = recv(parent, kTagBcast);
    data = std::move(msg.payload);
    first_send_mask = m << 1;
  }
  for (int mask = first_send_mask; mask < p; mask <<= 1) {
    const int target_rel = rel + mask;
    if (rel < mask && target_rel < p) {
      send((target_rel + root) % p, kTagBcast, data);
    }
  }
}

std::vector<std::vector<std::uint8_t>> Process::gather(
    std::span<const std::uint8_t> data, int root) {
  PIOBLAST_CHECK(root >= 0 && root < size());
  enter_collective("gather", root);
  std::vector<std::vector<std::uint8_t>> out;
  if (rank_ == root) {
    out.resize(static_cast<std::size_t>(size()));
    out[static_cast<std::size_t>(rank_)].assign(data.begin(), data.end());
    // Flat collection in rank order: the root's clock serializes the
    // per-message receive costs, reproducing real master-side incast.
    for (int r = 0; r < size(); ++r) {
      if (r == root) continue;
      Message m = recv(r, kTagGather);
      out[static_cast<std::size_t>(r)] = std::move(m.payload);
    }
  } else {
    send(root, kTagGather, data);
  }
  return out;
}

sim::Time Process::allreduce_max(sim::Time value) {
  enter_collective("allreduce_max", 0);
  // Reduce to rank 0, then broadcast the result.
  if (rank_ == 0) {
    sim::Time best = value;
    for (int r = 1; r < size(); ++r)
      best = std::max(best, recv_value<sim::Time>(r, kTagReduce));
    std::vector<std::uint8_t> buf(sizeof(best));
    std::memcpy(buf.data(), &best, sizeof(best));
    bcast(buf, 0);
    return best;
  }
  send_value(0, kTagReduce, value);
  std::vector<std::uint8_t> buf;
  bcast(buf, 0);
  PIOBLAST_CHECK(buf.size() == sizeof(sim::Time));
  sim::Time best;
  std::memcpy(&best, buf.data(), sizeof(best));
  return best;
}

}  // namespace pioblast::mpisim
