// Shared state of one simulated parallel job.
//
// A World owns one mailbox per rank plus the cluster description and (when
// verification is on) the ProtocolVerifier every mailbox and Process
// reports into. It is created by the runtime (see runtime.h) and shared by
// every rank thread.
#pragma once

#include <atomic>
#include <memory>
#include <utility>
#include <vector>

#include "mpisim/mailbox.h"
#include "mpisim/trace.h"
#include "mpisim/verifier.h"
#include "sim/cluster.h"
#include "util/error.h"

namespace pioblast::mpisim {

class World {
 public:
  World(int size, sim::ClusterConfig cluster)
      : size_(size), cluster_(std::move(cluster)) {
    PIOBLAST_CHECK(size >= 1);
    mailboxes_.reserve(static_cast<std::size_t>(size));
    for (int i = 0; i < size; ++i) mailboxes_.push_back(std::make_unique<Mailbox>());
  }

  World(const World&) = delete;
  World& operator=(const World&) = delete;

  int size() const { return size_; }
  const sim::ClusterConfig& cluster() const { return cluster_; }

  Mailbox& mailbox(int rank) {
    PIOBLAST_CHECK(rank >= 0 && rank < size_);
    return *mailboxes_[static_cast<std::size_t>(rank)];
  }

  /// Signals a fatal error: every blocked receive throws, unwinding all
  /// rank threads so the runtime can report the original exception. The
  /// verifier (if any) is disabled first so the unwind cannot trigger
  /// cascading protocol reports.
  void abort() {
    aborted_.store(true, std::memory_order_release);
    if (verifier_) verifier_->on_abort();
    for (auto& mb : mailboxes_) mb->poison();
  }

  bool aborted() const { return aborted_.load(std::memory_order_acquire); }

  /// Attaches an event tracer (not owned; must outlive the run). Null
  /// disables tracing.
  void set_tracer(Tracer* tracer) { tracer_ = tracer; }
  Tracer* tracer() const { return tracer_; }

  /// Installs the protocol verifier (owned) and binds every mailbox to
  /// it. Must be called before rank threads start.
  void install_verifier(std::unique_ptr<ProtocolVerifier> verifier) {
    verifier_ = std::move(verifier);
    std::vector<Mailbox*> boxes;
    boxes.reserve(mailboxes_.size());
    for (auto& mb : mailboxes_) boxes.push_back(mb.get());
    verifier_->attach(boxes);
    for (int r = 0; r < size_; ++r)
      mailboxes_[static_cast<std::size_t>(r)]->bind_verifier(verifier_.get(), r);
  }

  /// The installed verifier, or null when verification is off.
  ProtocolVerifier* verifier() const { return verifier_.get(); }

 private:
  int size_;
  sim::ClusterConfig cluster_;
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
  std::atomic<bool> aborted_{false};
  Tracer* tracer_ = nullptr;
  std::unique_ptr<ProtocolVerifier> verifier_;
};

}  // namespace pioblast::mpisim
