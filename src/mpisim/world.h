// Shared state of one simulated parallel job.
//
// A World owns one mailbox per rank plus the cluster description. It is
// created by the runtime (see runtime.h) and shared by every rank thread.
#pragma once

#include <atomic>
#include <memory>
#include <vector>

#include "mpisim/mailbox.h"
#include "mpisim/trace.h"
#include "sim/cluster.h"
#include "util/error.h"

namespace pioblast::mpisim {

class World {
 public:
  World(int size, sim::ClusterConfig cluster)
      : size_(size), cluster_(std::move(cluster)) {
    PIOBLAST_CHECK(size >= 1);
    mailboxes_.reserve(static_cast<std::size_t>(size));
    for (int i = 0; i < size; ++i) mailboxes_.push_back(std::make_unique<Mailbox>());
  }

  World(const World&) = delete;
  World& operator=(const World&) = delete;

  int size() const { return size_; }
  const sim::ClusterConfig& cluster() const { return cluster_; }

  Mailbox& mailbox(int rank) {
    PIOBLAST_CHECK(rank >= 0 && rank < size_);
    return *mailboxes_[static_cast<std::size_t>(rank)];
  }

  /// Signals a fatal error: every blocked receive throws, unwinding all
  /// rank threads so the runtime can report the original exception.
  void abort() {
    aborted_.store(true, std::memory_order_release);
    for (auto& mb : mailboxes_) mb->poison();
  }

  bool aborted() const { return aborted_.load(std::memory_order_acquire); }

  /// Attaches an event tracer (not owned; must outlive the run). Null
  /// disables tracing.
  void set_tracer(Tracer* tracer) { tracer_ = tracer; }
  Tracer* tracer() const { return tracer_; }

 private:
  int size_;
  sim::ClusterConfig cluster_;
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
  std::atomic<bool> aborted_{false};
  Tracer* tracer_ = nullptr;
};

}  // namespace pioblast::mpisim
