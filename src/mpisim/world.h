// Shared state of one simulated parallel job.
//
// A World owns one mailbox per rank plus the cluster description and (when
// verification is on) the ProtocolVerifier every mailbox and Process
// reports into. It is created by the runtime (see runtime.h) and shared by
// every rank thread.
#pragma once

#include <atomic>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "mpisim/fault.h"
#include "mpisim/hooks.h"
#include "mpisim/mailbox.h"
#include "mpisim/trace.h"
#include "mpisim/verifier.h"
#include "sim/cluster.h"
#include "util/error.h"

namespace pioblast::mpisim {

class World {
 public:
  World(int size, sim::ClusterConfig cluster)
      : size_(size),
        cluster_(std::move(cluster)),
        dead_(std::make_unique<std::atomic<bool>[]>(
            static_cast<std::size_t>(size))) {
    PIOBLAST_CHECK(size >= 1);
    mailboxes_.reserve(static_cast<std::size_t>(size));
    for (int i = 0; i < size; ++i) mailboxes_.push_back(std::make_unique<Mailbox>());
  }

  World(const World&) = delete;
  World& operator=(const World&) = delete;

  int size() const { return size_; }
  const sim::ClusterConfig& cluster() const { return cluster_; }

  Mailbox& mailbox(int rank) {
    PIOBLAST_CHECK(rank >= 0 && rank < size_);
    return *mailboxes_[static_cast<std::size_t>(rank)];
  }

  /// Signals a fatal error: every blocked receive throws, unwinding all
  /// rank threads so the runtime can report the original exception. The
  /// verifier (if any) is disabled first so the unwind cannot trigger
  /// cascading protocol reports.
  void abort() {
    aborted_.store(true, std::memory_order_release);
    if (verifier_) verifier_->on_abort();
    for (auto& mb : mailboxes_) mb->poison();
  }

  bool aborted() const { return aborted_.load(std::memory_order_acquire); }

  /// Attaches an event tracer (not owned; must outlive the run). Null
  /// disables tracing.
  void set_tracer(Tracer* tracer) { tracer_ = tracer; }
  Tracer* tracer() const { return tracer_; }

  /// Installs the protocol verifier (owned) and binds every mailbox to
  /// it. Must be called before rank threads start.
  void install_verifier(std::unique_ptr<ProtocolVerifier> verifier) {
    verifier_ = std::move(verifier);
    std::vector<Mailbox*> boxes;
    boxes.reserve(mailboxes_.size());
    for (auto& mb : mailboxes_) boxes.push_back(mb.get());
    verifier_->attach(boxes);
    for (int r = 0; r < size_; ++r)
      mailboxes_[static_cast<std::size_t>(r)]->bind_verifier(verifier_.get(), r);
  }

  /// The installed verifier, or null when verification is off.
  ProtocolVerifier* verifier() const { return verifier_.get(); }

  /// Installs the cooperative scheduler (not owned; must outlive the run)
  /// and binds every mailbox to it. Must be called before rank threads
  /// start. Null leaves the job free-running.
  void set_schedule(ScheduleHook* schedule) {
    schedule_ = schedule;
    for (int r = 0; r < size_; ++r)
      mailboxes_[static_cast<std::size_t>(r)]->bind_schedule(schedule, r);
  }
  ScheduleHook* schedule() const { return schedule_; }

  /// Installs the race detector (not owned; must outlive the run). Null
  /// disables happens-before tracking.
  void set_race(RaceHook* race) { race_ = race; }
  RaceHook* race() const { return race_; }

  // ---- faults -------------------------------------------------------------

  /// Arms the fault plan (validated against the job size). Must be called
  /// before rank threads start; Process reads its injections from here.
  void set_fault_plan(FaultPlan plan) {
    plan.validate(size_);
    faults_ = std::move(plan);
  }
  const FaultPlan& faults() const { return faults_; }

  /// True when the run must tolerate failures: Process collectives use
  /// flat survivor-aware topologies and pario collectives synchronize
  /// liveness before picking an exchange plan.
  bool fault_tolerant() const { return faults_.active(); }

  bool is_dead(int rank) const {
    return dead_[static_cast<std::size_t>(rank)].load(std::memory_order_acquire);
  }

  int dead_count() const {
    int n = 0;
    for (int r = 0; r < size_; ++r)
      if (is_dead(r)) ++n;
    return n;
  }

  /// Retires a crashed rank: seals its mailbox, pushes the
  /// failure-detector notice (tag kTagFaultNotice, arrival = `when` +
  /// detection delay) to rank 0, wakes every receiver blocked on the dead
  /// rank, and tells the verifier the rank is retired — not deadlocked.
  /// Called by the runtime from the crashing rank's own thread; safe to
  /// call at most once per rank (later calls are no-ops).
  void crash_rank(int rank, sim::Time when) {
    bool expected = false;
    if (!dead_[static_cast<std::size_t>(rank)].compare_exchange_strong(
            expected, true, std::memory_order_acq_rel))
      return;
    mailbox(rank).seal();
    // The notice must be queued before the verifier learns of the crash:
    // its deadlock scan then sees the master's any-source wait as
    // deliverable instead of declaring the surviving ranks stuck.
    if (rank != 0) {
      Message notice;
      notice.src = rank;
      notice.tag = kTagFaultNotice;
      notice.arrival = when + faults_.detection_delay;
      // The crash edge orders everything the dead rank did before the
      // failure detector's notice, same as a regular message send.
      if (race_ != nullptr) notice.hb = race_->on_send(rank);
      mailbox(0).push(std::move(notice));
    }
    for (int r = 0; r < size_; ++r)
      if (r != rank) mailboxes_[static_cast<std::size_t>(r)]->notify_dead(rank);
    if (tracer_ != nullptr) {
      tracer_->record(rank, when, TraceKind::kFault,
                      "rank " + std::to_string(rank) + " crashed");
    }
    if (verifier_) verifier_->on_rank_crashed(rank);
  }

 private:
  int size_;
  sim::ClusterConfig cluster_;
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
  std::atomic<bool> aborted_{false};
  Tracer* tracer_ = nullptr;
  ScheduleHook* schedule_ = nullptr;
  RaceHook* race_ = nullptr;
  std::unique_ptr<ProtocolVerifier> verifier_;
  FaultPlan faults_;
  std::unique_ptr<std::atomic<bool>[]> dead_;
};

}  // namespace pioblast::mpisim
