#include "mpisim/mailbox.h"

#include <algorithm>
#include <limits>
#include <tuple>
#include <utility>

#include "mpisim/fault.h"
#include "mpisim/hooks.h"
#include "mpisim/verifier.h"
#include "util/error.h"

namespace pioblast::mpisim {

namespace {
constexpr std::size_t kNpos = std::numeric_limits<std::size_t>::max();
constexpr const char* kDefaultPoisonReason =
    "mpisim: receive aborted (job poisoned)";
}  // namespace

void Mailbox::push(Message msg) {
  // Annotated outside the critical section on purpose: the race detector
  // may poison mailboxes on a report, which would self-deadlock under mu_.
  // The mailbox's own lock identity is passed explicitly instead.
  annotate_access(this, "Mailbox::push", /*write=*/true, {this});
  {
    std::lock_guard lock(mu_);
    if (sealed_) return;  // the owning rank crashed; its mail vanishes
    queue_.push_back(std::move(msg));
    seq_.push_back(next_seq_++);
  }
  cv_.notify_all();
  if (schedule_ != nullptr) schedule_->wake(rank_);
}

std::size_t Mailbox::find_match(int src, std::span<const int> tags) const {
  std::size_t best = kNpos;
  for (std::size_t i = 0; i < queue_.size(); ++i) {
    const Message& m = queue_[i];
    if (std::find(tags.begin(), tags.end(), m.tag) == tags.end()) continue;
    if (src != kAnySource) {
      // Point-to-point matching preserves per-sender FIFO order: take the
      // first queued message from that sender with this tag.
      if (m.src == src) return i;
      continue;
    }
    // Wildcard: earliest virtual arrival wins; ties broken by sender rank
    // so the choice is stable.
    if (best == kNpos || m.arrival < queue_[best].arrival ||
        (m.arrival == queue_[best].arrival && m.src < queue_[best].src)) {
      best = i;
    }
  }
  return best;
}

Message Mailbox::take_at(std::size_t idx) {
  Message msg = std::move(queue_[idx]);
  queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(idx));
  seq_.erase(seq_.begin() + static_cast<std::ptrdiff_t>(idx));
  return msg;
}

Message Mailbox::pop(int src, int tag) {
  const int tags[] = {tag};
  return pop_any(src, tags);
}

Message Mailbox::pop_any(int src, std::span<const int> tags) {
  annotate_access(this, "Mailbox::pop", /*write=*/true, {this});
  for (;;) {
    {
      std::unique_lock lock(mu_);
      const std::size_t idx = find_match(src, tags);
      if (idx != kNpos) return take_at(idx);
      if (poisoned_) {
        if (verify_poison_) throw VerifyError(poison_reason_);
        throw util::RuntimeError(poison_reason_);
      }
      if (src != kAnySource && dead_.count(src) != 0) {
        throw PeerLostError(src, "mpisim: receive from rank " +
                                     std::to_string(src) +
                                     " failed: the rank crashed and the "
                                     "message can never arrive");
      }
    }
    // No match: this rank is now blocked. The verifier hooks run with the
    // mailbox lock released — its deadlock scan holds the verifier lock
    // while probing mailboxes, so calling it the other way around (mailbox
    // lock held, then verifier lock) would invert the lock order. A
    // message arriving in the unlocked window is safe: the wait predicate
    // re-checks before sleeping, and the scan consults has_match() before
    // declaring a registered rank truly stuck.
    if (verifier_ != nullptr) verifier_->on_block(rank_, src, tags);
    if (schedule_ != nullptr) {
      // Cooperative mode: park on the scheduler instead of the condition
      // variable. This rank still holds the run token between the match
      // check above and here, so no wakeup can be lost; block() returns
      // once a push/poison/seal/death woke the rank and the scheduler
      // picked it again, and the loop re-checks the predicate.
      schedule_->block(rank_);
    } else {
      std::unique_lock lock(mu_);
      cv_.wait(lock, [&] {
        return poisoned_ || find_match(src, tags) != kNpos ||
               (src != kAnySource && dead_.count(src) != 0);
      });
    }
    if (verifier_ != nullptr) verifier_->on_unblock(rank_);
  }
}

void Mailbox::seal() {
  {
    std::lock_guard lock(mu_);
    sealed_ = true;
    queue_.clear();
    seq_.clear();
  }
  cv_.notify_all();
  if (schedule_ != nullptr) schedule_->wake(rank_);
}

void Mailbox::notify_dead(int rank) {
  {
    std::lock_guard lock(mu_);
    dead_.insert(rank);
  }
  cv_.notify_all();
  if (schedule_ != nullptr) schedule_->wake(rank_);
}

void Mailbox::poison() { poison(kDefaultPoisonReason, false); }

void Mailbox::poison(std::string reason, bool verify_failure) {
  {
    std::lock_guard lock(mu_);
    if (!poisoned_) {  // first reason wins; later poisons keep it
      poisoned_ = true;
      verify_poison_ = verify_failure;
      poison_reason_ = std::move(reason);
    }
  }
  cv_.notify_all();
  if (schedule_ != nullptr) schedule_->wake(rank_);
}

void Mailbox::bind_verifier(ProtocolVerifier* verifier, int rank) {
  verifier_ = verifier;
  rank_ = rank;
}

void Mailbox::bind_schedule(ScheduleHook* schedule, int rank) {
  schedule_ = schedule;
  rank_ = rank;  // also set here: bind_verifier is skipped when verify is off
}

std::optional<Message> Mailbox::try_pop(int src, int tag) {
  std::lock_guard lock(mu_);
  const int tags[] = {tag};
  const std::size_t idx = find_match(src, tags);
  if (idx == kNpos) return std::nullopt;
  return take_at(idx);
}

std::size_t Mailbox::pending() const {
  std::lock_guard lock(mu_);
  return queue_.size();
}

bool Mailbox::has_match(int src, int tag) const {
  std::lock_guard lock(mu_);
  const int tags[] = {tag};
  return find_match(src, tags) != kNpos;
}

bool Mailbox::has_match_any(int src, std::span<const int> tags) const {
  std::lock_guard lock(mu_);
  return find_match(src, tags) != kNpos;
}

std::vector<Mailbox::PendingInfo> Mailbox::pending_info() const {
  std::lock_guard lock(mu_);
  std::vector<PendingInfo> out;
  out.reserve(queue_.size());
  for (std::size_t i = 0; i < queue_.size(); ++i) {
    out.push_back({queue_[i].src, queue_[i].tag, queue_[i].size(), seq_[i]});
  }
  // (src, tag, seq) order keeps leak reports byte-stable across schedules
  // that deliver the same message set in different arrival orders.
  std::sort(out.begin(), out.end(), [](const PendingInfo& a,
                                       const PendingInfo& b) {
    return std::tie(a.src, a.tag, a.seq) < std::tie(b.src, b.tag, b.seq);
  });
  return out;
}

}  // namespace pioblast::mpisim
