#include "mpisim/mailbox.h"

#include <limits>

#include "util/error.h"

namespace pioblast::mpisim {

namespace {
constexpr std::size_t kNpos = std::numeric_limits<std::size_t>::max();
}  // namespace

void Mailbox::push(Message msg) {
  {
    std::lock_guard lock(mu_);
    queue_.push_back(std::move(msg));
  }
  cv_.notify_all();
}

std::size_t Mailbox::find_match(int src, int tag) const {
  std::size_t best = kNpos;
  for (std::size_t i = 0; i < queue_.size(); ++i) {
    const Message& m = queue_[i];
    if (m.tag != tag) continue;
    if (src != kAnySource) {
      // Point-to-point matching preserves per-sender FIFO order: take the
      // first queued message from that sender with this tag.
      if (m.src == src) return i;
      continue;
    }
    // Wildcard: earliest virtual arrival wins; ties broken by sender rank
    // so the choice is stable.
    if (best == kNpos || m.arrival < queue_[best].arrival ||
        (m.arrival == queue_[best].arrival && m.src < queue_[best].src)) {
      best = i;
    }
  }
  return best;
}

Message Mailbox::pop(int src, int tag) {
  std::unique_lock lock(mu_);
  std::size_t idx = kNpos;
  cv_.wait(lock, [&] {
    return poisoned_ || (idx = find_match(src, tag)) != kNpos;
  });
  if (idx == kNpos) {
    // Poisoned with no matching message: unwind this rank.
    throw util::RuntimeError("mpisim: receive aborted (job poisoned)");
  }
  Message msg = std::move(queue_[idx]);
  queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(idx));
  return msg;
}

void Mailbox::poison() {
  {
    std::lock_guard lock(mu_);
    poisoned_ = true;
  }
  cv_.notify_all();
}

std::optional<Message> Mailbox::try_pop(int src, int tag) {
  std::lock_guard lock(mu_);
  const std::size_t idx = find_match(src, tag);
  if (idx == kNpos) return std::nullopt;
  Message msg = std::move(queue_[idx]);
  queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(idx));
  return msg;
}

std::size_t Mailbox::pending() const {
  std::lock_guard lock(mu_);
  return queue_.size();
}

}  // namespace pioblast::mpisim
