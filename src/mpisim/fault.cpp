#include "mpisim/fault.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/rng.h"

namespace pioblast::mpisim {

namespace {

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) s.remove_prefix(1);
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) s.remove_suffix(1);
  return s;
}

[[noreturn]] void bad_spec(std::string_view spec, const std::string& why) {
  throw util::RuntimeError("fault spec \"" + std::string(spec) + "\": " + why +
                           " (want e.g. rank=2,crash_at=9 | rank=1,slow=4 | "
                           "rank=3,drop_send=2 | detect=0.01 | arm)");
}

std::uint64_t parse_u64(std::string_view spec, std::string_view value) {
  try {
    std::size_t used = 0;
    const std::uint64_t v = std::stoull(std::string(value), &used);
    if (used != value.size()) bad_spec(spec, "trailing junk in number");
    return v;
  } catch (const util::RuntimeError&) {
    throw;
  } catch (...) {
    bad_spec(spec, "bad integer \"" + std::string(value) + "\"");
  }
}

double parse_f64(std::string_view spec, std::string_view value) {
  try {
    std::size_t used = 0;
    const double v = std::stod(std::string(value), &used);
    if (used != value.size()) bad_spec(spec, "trailing junk in number");
    return v;
  } catch (const util::RuntimeError&) {
    throw;
  } catch (...) {
    bad_spec(spec, "bad number \"" + std::string(value) + "\"");
  }
}

}  // namespace

bool FaultPlan::has_crash() const {
  return std::any_of(injections.begin(), injections.end(),
                     [](const RankFault& f) { return f.crash_at != 0; });
}

RankFault& FaultPlan::at(int rank) {
  for (RankFault& f : injections)
    if (f.rank == rank) return f;
  injections.push_back({});
  injections.back().rank = rank;
  return injections.back();
}

const RankFault* FaultPlan::find(int rank) const {
  for (const RankFault& f : injections)
    if (f.rank == rank) return &f;
  return nullptr;
}

void FaultPlan::validate(int nranks) const {
  PIOBLAST_CHECK_MSG(detection_delay > 0,
                     "fault plan: detection_delay must be > 0, got "
                         << detection_delay);
  for (const RankFault& f : injections) {
    PIOBLAST_CHECK_MSG(f.rank >= 0 && f.rank < nranks,
                       "fault plan: rank " << f.rank
                                           << " outside the job's 0.."
                                           << nranks - 1 << " range");
    PIOBLAST_CHECK_MSG(
        !(f.rank == 0 && f.crash_at != 0),
        "fault plan: rank 0 (the master/failure-detector rank) cannot be "
        "crash-injected");
    PIOBLAST_CHECK_MSG(std::isfinite(f.slow) && f.slow > 0,
                       "fault plan: rank " << f.rank << " slowdown " << f.slow
                                           << " must be finite and > 0");
    for (const std::uint64_t s : f.drop_sends) {
      PIOBLAST_CHECK_MSG(s >= 1, "fault plan: drop_send ordinals are 1-based; "
                                 "got 0 for rank "
                                     << f.rank);
    }
  }
}

FaultPlan FaultPlan::parse(std::string_view specs) {
  FaultPlan plan;
  std::size_t pos = 0;
  while (pos <= specs.size()) {
    const std::size_t sep = std::min(specs.find(';', pos), specs.size());
    const std::string_view spec = trim(specs.substr(pos, sep - pos));
    pos = sep + 1;
    if (spec.empty()) continue;

    if (spec == "arm") {
      plan.arm_detector = true;
      continue;
    }

    RankFault* target = nullptr;
    std::size_t kpos = 0;
    while (kpos <= spec.size()) {
      const std::size_t ksep = std::min(spec.find(',', kpos), spec.size());
      const std::string_view pair = trim(spec.substr(kpos, ksep - kpos));
      kpos = ksep + 1;
      if (pair.empty()) continue;
      const std::size_t eq = pair.find('=');
      if (eq == std::string_view::npos) bad_spec(spec, "expected key=value");
      const std::string_view key = trim(pair.substr(0, eq));
      const std::string_view value = trim(pair.substr(eq + 1));

      if (key == "detect") {
        plan.detection_delay = parse_f64(spec, value);
        continue;
      }
      if (key == "rank") {
        target = &plan.at(static_cast<int>(parse_u64(spec, value)));
        continue;
      }
      if (target == nullptr)
        bad_spec(spec, "rank=K must precede " + std::string(key));
      if (key == "crash_at") {
        const std::uint64_t event = parse_u64(spec, value);
        if (event == 0) bad_spec(spec, "crash_at events are 1-based");
        target->crash_at = event;
      } else if (key == "slow") {
        target->slow = parse_f64(spec, value);
      } else if (key == "drop_send") {
        target->drop_sends.push_back(parse_u64(spec, value));
      } else {
        bad_spec(spec, "unknown key \"" + std::string(key) + "\"");
      }
    }
  }
  return plan;
}

FaultPlan FaultPlan::random_crash(std::uint64_t seed, int nranks,
                                  std::uint64_t max_event) {
  PIOBLAST_CHECK_MSG(nranks >= 2, "random_crash needs a worker to kill");
  PIOBLAST_CHECK(max_event >= 1);
  util::Rng rng(seed);
  FaultPlan plan;
  RankFault& f =
      plan.at(1 + static_cast<int>(rng.below(static_cast<std::uint64_t>(nranks - 1))));
  f.crash_at = rng.between(1, max_event);
  return plan;
}

std::string FaultPlan::describe() const {
  if (!active()) return "no faults";
  std::ostringstream os;
  bool first = true;
  for (const RankFault& f : injections) {
    if (!first) os << "; ";
    first = false;
    os << "rank " << f.rank << ":";
    if (f.crash_at != 0) os << " crash@" << f.crash_at;
    if (f.slow != 1.0) os << " slow=" << f.slow;
    for (const std::uint64_t s : f.drop_sends) os << " drop#" << s;
  }
  if (injections.empty()) os << "detector armed";
  os << " (detect=" << detection_delay << "s)";
  return os.str();
}

}  // namespace pioblast::mpisim
