// Deterministic cooperative scheduler for mpisim.
//
// Installed via RunOptions::schedule, it serializes the rank threads: one
// run token, handed from rank to rank at yield points (send, recv attempt,
// collective entry, injected fault) and at blocking receives. The job's
// behaviour then depends only on the Chooser's picks, so a run can be
// reproduced exactly from its decision trace — the foundation for the
// explorer (explore.h) and for `--schedule` replay.
//
// Decisions are recorded only at points where two or more ranks were
// runnable; a single runnable rank is forced and recording it would bloat
// traces without adding information.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "mpicheck/schedule.h"
#include "mpisim/hooks.h"

namespace pioblast::mpicheck {

/// Full record of one multi-choice scheduling point: who was runnable,
/// what each runnable rank was about to do, who ran. The explorer's
/// DPOR-lite mode consumes `ops` to prune provably-equivalent siblings.
struct DecisionRecord {
  std::vector<int> enabled;                 ///< runnable ranks, ascending
  std::vector<mpisim::YieldPoint> ops;      ///< pending op per enabled rank
  int chosen = -1;
};

class CoopScheduler final : public mpisim::ScheduleHook {
 public:
  /// Picks the next rank to run out of `enabled` (must return a member;
  /// anything else falls back to the lowest). `decision_index` counts
  /// multi-choice points so far; `ops` is parallel to `enabled`.
  using Chooser = std::function<int(std::size_t decision_index,
                                    const std::vector<int>& enabled,
                                    const std::vector<mpisim::YieldPoint>& ops)>;

  /// A null chooser always picks the lowest runnable rank.
  explicit CoopScheduler(Chooser chooser = {});

  // ScheduleHook ------------------------------------------------------------
  void start(int nranks, StuckHandler on_stuck) override;
  void rank_begin(int rank) override;
  void yield(const mpisim::YieldPoint& op) override;
  void block(int rank) override;
  void wake(int rank) override;
  void finish(int rank) override;

  // Inline (event-backend) protocol: mpisim's EventLoop serializes ranks
  // natively and drives the scheduler through these instead — the
  // scheduler degrades to a thin chooser, but records the same
  // DecisionRecords, so schedules replay on either backend and the
  // explorer is backend-agnostic.
  void inline_start(int nranks) override;
  int inline_choose(const std::vector<int>& enabled,
                    const std::vector<mpisim::YieldPoint>& ops) override;
  void inline_stuck() override;

  // Run results (read after the job joined) ---------------------------------

  /// The multi-choice decisions of the completed run.
  const std::vector<DecisionRecord>& records() const { return records_; }

  /// records() reduced to a replayable Schedule.
  Schedule schedule() const;

  /// True when the scheduler found no runnable rank while some were still
  /// blocked and fired the stuck handler (verifier-off deadlock path).
  bool went_stuck() const { return stuck_fired_; }

  // Canned choosers ---------------------------------------------------------

  /// Lowest runnable rank, always (the canonical baseline schedule).
  static Chooser first_enabled();

  /// Seeded uniform pick — deterministic for a given seed.
  static Chooser random(std::uint64_t seed);

  /// Replays `forced` decision by decision. Past its end — or when the
  /// forced rank is not currently runnable (trace divergence) — falls
  /// back to the lowest runnable rank, or to continuing the previously
  /// chosen rank when `continue_after` is set (the non-preemptive
  /// default the preemption-bounded sweep perturbs).
  static Chooser forced(Schedule forced, bool continue_after = false);

 private:
  enum class State : std::uint8_t {
    kNotStarted,
    kRunnable,
    kRunning,
    kBlocked,
    kDone,
  };

  /// Picks and announces the next current_ rank if none is running and at
  /// least one is runnable. Records a DecisionRecord at multi-choice
  /// points. Caller holds mu_.
  void schedule_locked();

  /// Detects the no-runnable-but-blocked wedge and fires the stuck
  /// handler (with mu_ released — the handler pokes mailboxes, which call
  /// back into wake()).
  void maybe_stuck(std::unique_lock<std::mutex>& lock);

  /// Parks the calling rank thread until it holds the run token.
  void wait_for_turn(std::unique_lock<std::mutex>& lock, int rank);

  Chooser chooser_;
  StuckHandler on_stuck_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  int nranks_ = 0;
  int begun_ = 0;    ///< ranks that reached rank_begin (start gate)
  int current_ = -1; ///< rank holding the run token, -1 = none
  bool stuck_fired_ = false;
  std::vector<State> states_;
  std::vector<mpisim::YieldPoint> ops_;  ///< pending op per rank
  std::vector<DecisionRecord> records_;
};

}  // namespace pioblast::mpicheck
