#include "mpicheck/race.h"

#include <algorithm>
#include <sstream>

#include "util/error.h"

namespace pioblast::mpicheck {

RaceDetector::RaceDetector(Options opts) : opts_(opts) {}

void RaceDetector::start(int nranks) {
  std::lock_guard lock(mu_);
  PIOBLAST_CHECK(nranks >= 1);
  vc_.assign(static_cast<std::size_t>(nranks),
             std::vector<std::uint64_t>(static_cast<std::size_t>(nranks), 0));
  // Own components start at 1: an access made before any synchronization
  // must not look covered by another rank's all-zero initial clock.
  for (std::size_t r = 0; r < vc_.size(); ++r) vc_[r][r] = 1;
  next_token_ = 1;
  in_flight_.clear();
  objs_.clear();
  races_ = 0;
  accesses_ = 0;
  reports_.clear();
}

std::uint64_t RaceDetector::on_send(int src) {
  std::lock_guard lock(mu_);
  auto& vc = vc_[static_cast<std::size_t>(src)];
  ++vc[static_cast<std::size_t>(src)];
  const std::uint64_t token = next_token_++;
  in_flight_.emplace(token, vc);
  return token;
}

void RaceDetector::on_recv(int dst, std::uint64_t hb) {
  std::lock_guard lock(mu_);
  const auto it = in_flight_.find(hb);
  if (it == in_flight_.end()) return;  // duplicate join; nothing to add
  auto& vc = vc_[static_cast<std::size_t>(dst)];
  for (std::size_t i = 0; i < vc.size(); ++i)
    vc[i] = std::max(vc[i], it->second[i]);
  ++vc[static_cast<std::size_t>(dst)];
  in_flight_.erase(it);
}

bool RaceDetector::ordered_locked(const Epoch& prev, int rank) const {
  // prev's whole past is summarized by its own-clock component: rank has
  // seen it iff a message chain carried that component over.
  return prev.clock <=
         vc_[static_cast<std::size_t>(rank)][static_cast<std::size_t>(prev.rank)];
}

bool RaceDetector::locks_disjoint(const Epoch& prev,
                                  std::span<const void* const> locks) {
  for (const void* l : locks)
    if (std::find(prev.locks.begin(), prev.locks.end(), l) != prev.locks.end())
      return false;
  return true;
}

void RaceDetector::report_locked(const Epoch& prev, int rank,
                                 std::string_view what, bool write,
                                 const void* obj) {
  ++races_;
  std::ostringstream out;
  out << "mpicheck: data race on shared state " << obj << "\n  rank "
      << prev.rank << " "
      << (prev.what.empty() ? "access" : prev.what) << " is unordered with rank "
      << rank << " " << what << " (" << (write ? "write" : "read")
      << ")\n  no happens-before edge (message/collective) connects them and "
         "they share no lock";
  reports_.push_back(out.str());
  if (opts_.throw_on_race) throw RaceError(reports_.back());
}

void RaceDetector::on_access(int rank, const void* obj, std::string_view what,
                             bool write, std::span<const void* const> locks) {
  std::lock_guard lock(mu_);
  if (vc_.empty()) return;  // not started (job without a detector)
  ++accesses_;
  ObjState& st = objs_[obj];
  const Epoch cur{rank,
                  vc_[static_cast<std::size_t>(rank)][static_cast<std::size_t>(rank)],
                  {locks.begin(), locks.end()},
                  std::string(what)};
  // A write conflicts with the last write and with every rank's reads
  // since then; a read conflicts with the last write only.
  if (st.write.rank >= 0 && st.write.rank != rank &&
      !ordered_locked(st.write, rank) && locks_disjoint(st.write, locks)) {
    report_locked(st.write, rank, what, write, obj);
  }
  if (write) {
    for (const Epoch& rd : st.reads) {
      if (rd.rank == rank) continue;
      if (!ordered_locked(rd, rank) && locks_disjoint(rd, locks))
        report_locked(rd, rank, what, write, obj);
    }
    st.write = cur;
    st.reads.clear();
  } else {
    // Keep only the newest read per rank — older ones are ordered behind
    // it on the same rank's timeline.
    auto it = std::find_if(st.reads.begin(), st.reads.end(),
                           [rank](const Epoch& e) { return e.rank == rank; });
    if (it != st.reads.end())
      *it = cur;
    else
      st.reads.push_back(cur);
  }
}

std::uint64_t RaceDetector::races_found() const {
  std::lock_guard lock(mu_);
  return races_;
}

std::uint64_t RaceDetector::accesses() const {
  std::lock_guard lock(mu_);
  return accesses_;
}

std::vector<std::string> RaceDetector::reports() const {
  std::lock_guard lock(mu_);
  return reports_;
}

}  // namespace pioblast::mpicheck
