// Sleep-set partial-order reduction, shared between the schedule
// explorer's DPOR-lite sweep (explore.cpp) and the protospec model
// checker (protospec/check.cpp).
//
// Both tools walk a tree of nondeterministic choices and prune branches
// that provably commute with a branch already taken. The default
// dependence notion is mpisim::independent() over YieldPoints — the same
// relation the runtime uses — so a pruning decision here is exactly as
// strong as the explorer's; a caller whose semantics justify a finer
// relation (the protospec checker's per-channel queues, say) can supply
// its own. The inheritance rule is the classic one (Godefroid): an
// action stays asleep in the child state iff it was asleep or already
// explored in the parent and is independent of the action just taken.
#pragma once

#include <algorithm>
#include <set>

#include "mpisim/hooks.h"

namespace pioblast::mpicheck {

/// Computes a child state's sleep set.
///
/// `Key` identifies an alternative action at a choice point: a rank id in
/// the schedule explorer, an opaque transition signature in the protospec
/// checker. `op_of(key)` returns the pending `Op` of that action in the
/// *child* state, or nullptr when the action is no longer pending there
/// (it then drops out of the sleep set — waking is handled by not
/// inheriting). `indep(a, b)` is the independence relation over `Op`;
/// it must only return true for actions that commute and preserve each
/// other's enabledness.
template <typename Key, typename Op, typename OpOf, typename Indep>
std::set<Key> inherit_sleep(const std::set<Key>& parent_sleep,
                            const std::set<Key>& parent_done,
                            const Key& chosen, const Op* chosen_op,
                            OpOf&& op_of, Indep&& indep) {
  std::set<Key> out;
  if (chosen_op == nullptr) return out;
  std::set<Key> inherit = parent_sleep;
  for (const Key& k : parent_done)
    if (!(k == chosen)) inherit.insert(k);
  for (const Key& k : inherit) {
    if (k == chosen) continue;
    const Op* op = op_of(k);
    if (op == nullptr) continue;
    if (indep(*op, *chosen_op)) out.insert(k);
  }
  return out;
}

/// Overload with the runtime's own dependence notion over YieldPoints.
template <typename Key, typename OpOf>
std::set<Key> inherit_sleep(const std::set<Key>& parent_sleep,
                            const std::set<Key>& parent_done,
                            const Key& chosen,
                            const mpisim::YieldPoint* chosen_op,
                            OpOf&& op_of) {
  return inherit_sleep(
      parent_sleep, parent_done, chosen, chosen_op,
      std::forward<OpOf>(op_of),
      [](const mpisim::YieldPoint& a, const mpisim::YieldPoint& b) {
        return independent(a, b);
      });
}

/// Covering test for sleep-set state caching: revisiting a state with
/// sleep set S_new can be skipped iff some earlier visit explored it with
/// S_old ⊆ S_new — everything the new visit would skip, the old visit
/// skipped too (or explored), so the old visit's coverage subsumes it.
template <typename Key>
bool sleep_covers(const std::set<Key>& s_old, const std::set<Key>& s_new) {
  return std::includes(s_new.begin(), s_new.end(), s_old.begin(),
                       s_old.end());
}

}  // namespace pioblast::mpicheck
