// Systematic schedule exploration ("stateless model checking lite").
//
// A Checker re-runs one job under many cooperative schedules and reports
// the first failure together with a minimized, replayable decision trace:
//
//   1. the canonical baseline (lowest runnable rank),
//   2. `random_schedules` seeded random interleavings,
//   3. a preemption-bounded sweep: breadth-first over schedules that
//      deviate from the non-preemptive default in at most
//      `preemption_bound` places (most real concurrency bugs need only
//      one or two preemptions — Musuvathi & Qadeer's CHESS observation),
//   4. a sleep-set DPOR-lite sweep: depth-first over the decision tree,
//      skipping siblings whose pending ops are independent of the branch
//      already taken (they provably reach the same state).
//
// Failures are shrunk (suffix truncation, then single-decision removal)
// so the trace handed to `--schedule` is close to minimal. A RaceDetector
// rides along on every run when `detect_races` is set.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "mpicheck/coop.h"
#include "mpicheck/race.h"
#include "mpicheck/schedule.h"

namespace pioblast::mpicheck {

struct CheckOptions {
  /// Seeded-random phase: number of schedules (0 disables).
  int random_schedules = 50;
  std::uint64_t seed = 1;
  /// Preemption-bounded sweep: max forced deviations from the
  /// non-preemptive default per schedule (negative disables the sweep).
  int preemption_bound = 2;
  /// Sleep-set DPOR-lite sweep on/off.
  bool dpor = true;
  /// Overall cap on executed schedules across all phases.
  int max_schedules = 2000;
  /// Attach a RaceDetector to every run.
  bool detect_races = true;
  /// Minimize the failing trace before reporting it.
  bool shrink = true;
  /// When non-empty: skip exploration, run this one forced trace
  /// (the CLI's --schedule mode), and report its outcome.
  std::string replay_trace;
};

struct CheckResult {
  int schedules_explored = 0;  ///< jobs actually executed
  int schedules_pruned = 0;    ///< DPOR sleep-set skips
  std::size_t max_decisions = 0;
  std::uint64_t races_found = 0;
  bool failed = false;
  std::string failure_kind;  ///< "race" | "verify" | "error"
  std::string error;         ///< first failure's report
  Schedule failing;          ///< minimized failing decision trace
  std::string failing_trace; ///< format_schedule(failing)
};

class Checker {
 public:
  /// The job under test: must run the workload to completion under the
  /// given hooks (either may be null) and throw on any failure. Called
  /// once per explored schedule — it must be re-runnable.
  using Job = std::function<void(mpisim::ScheduleHook*, mpisim::RaceHook*)>;

  Checker(Job job, CheckOptions opts);

  /// Explores (or replays) and returns the aggregate result.
  CheckResult run();

 private:
  struct RunOutcome {
    bool ok = true;
    std::string kind;
    std::string error;
    std::vector<DecisionRecord> records;
    std::uint64_t races = 0;
    bool stuck = false;
  };

  RunOutcome run_one(const CoopScheduler::Chooser& chooser,
                     CheckResult& res);
  /// Records the failure in `res` (shrinking first when configured).
  void record_failure(const RunOutcome& out, CheckResult& res);
  bool fails_same(const Schedule& schedule, const std::string& kind,
                  CheckResult& res);
  Schedule shrink(Schedule failing, const std::string& kind,
                  CheckResult& res);
  void random_sweep(CheckResult& res);
  void preemption_sweep(CheckResult& res);
  void dpor_sweep(CheckResult& res);
  bool budget_left(const CheckResult& res) const;

  Job job_;
  CheckOptions opts_;
};

/// One-line metrics summary: "CHECK schedules=… pruned=… max_decisions=…
/// races=… result=ok|<kind> [trace=…]". Emitted by the CLI and asserted
/// on by tests.
std::string summary(const CheckResult& result);

}  // namespace pioblast::mpicheck
