// Schedule traces: the replayable record of a cooperative run.
//
// A trace is the sequence of scheduling decisions the CoopScheduler made at
// points where more than one rank was runnable (single-choice points are
// omitted — they are forced, so recording them would only bloat traces).
// The text form is a comma-separated rank list ("0,2,1,1,0"), accepted by
// the CLI's --schedule flag and printed in failure reports.
#pragma once

#include <string>
#include <vector>

namespace pioblast::mpicheck {

/// One recorded decision: at the `index`-th multi-choice point the
/// scheduler picked `rank` out of `enabled`.
struct Decision {
  int rank = -1;
  std::vector<int> enabled;  ///< runnable ranks at the decision, ascending
};

/// The decision sequence of one run (multi-choice points only).
using Schedule = std::vector<Decision>;

/// "0,2,1" — just the chosen ranks; enabled sets are not serialized
/// (replay re-derives them and falls back gracefully on divergence).
std::string format_schedule(const Schedule& schedule);

/// Parses the comma-separated rank list. Throws util::RuntimeError on
/// malformed input (non-integer fields, negative ranks).
Schedule parse_schedule(const std::string& text);

}  // namespace pioblast::mpicheck
