#include "mpicheck/explore.h"

#include <algorithm>
#include <deque>
#include <map>
#include <memory>
#include <set>
#include <utility>

#include "mpicheck/por.h"
#include "util/error.h"

namespace pioblast::mpicheck {

namespace {

Schedule schedule_of(const std::vector<DecisionRecord>& records) {
  Schedule out;
  out.reserve(records.size());
  for (const DecisionRecord& r : records)
    out.push_back(Decision{r.chosen, r.enabled});
  return out;
}

/// Forced-by-index directives on top of the non-preemptive default
/// (continue the previously chosen rank while it stays runnable).
CoopScheduler::Chooser directed_chooser(std::map<std::size_t, int> directives) {
  auto last = std::make_shared<int>(-1);
  return [directives = std::move(directives), last](
             std::size_t index, const std::vector<int>& enabled,
             const std::vector<mpisim::YieldPoint>&) {
    int pick = -1;
    const auto it = directives.find(index);
    if (it != directives.end() &&
        std::find(enabled.begin(), enabled.end(), it->second) != enabled.end())
      pick = it->second;
    if (pick == -1) {
      if (std::find(enabled.begin(), enabled.end(), *last) != enabled.end())
        pick = *last;
      else
        pick = enabled[0];
    }
    *last = pick;
    return pick;
  };
}

const mpisim::YieldPoint* op_of(const DecisionRecord& rec, int rank) {
  for (std::size_t i = 0; i < rec.enabled.size(); ++i)
    if (rec.enabled[i] == rank) return &rec.ops[i];
  return nullptr;
}

}  // namespace

Checker::Checker(Job job, CheckOptions opts)
    : job_(std::move(job)), opts_(opts) {
  PIOBLAST_CHECK(static_cast<bool>(job_));
}

bool Checker::budget_left(const CheckResult& res) const {
  return res.schedules_explored < opts_.max_schedules && !res.failed;
}

Checker::RunOutcome Checker::run_one(const CoopScheduler::Chooser& chooser,
                                     CheckResult& res) {
  CoopScheduler sched(chooser);
  RaceDetector race;
  RunOutcome out;
  try {
    job_(&sched, opts_.detect_races ? &race : nullptr);
  } catch (const RaceError& e) {
    out.ok = false;
    out.kind = "race";
    out.error = e.what();
  } catch (const mpisim::VerifyError& e) {
    out.ok = false;
    out.kind = "verify";
    out.error = e.what();
  } catch (const std::exception& e) {
    out.ok = false;
    out.kind = "error";
    out.error = e.what();
  }
  out.records = sched.records();
  out.races = race.races_found();
  out.stuck = sched.went_stuck();
  ++res.schedules_explored;
  res.races_found += out.races;
  res.max_decisions = std::max(res.max_decisions, out.records.size());
  return out;
}

bool Checker::fails_same(const Schedule& schedule, const std::string& kind,
                         CheckResult& res) {
  const RunOutcome out = run_one(CoopScheduler::forced(schedule), res);
  return !out.ok && out.kind == kind;
}

Schedule Checker::shrink(Schedule failing, const std::string& kind,
                         CheckResult& res) {
  // Budget for the whole minimization — shrinking is a convenience, not
  // worth more runs than the exploration itself.
  const int budget = res.schedules_explored + 200;
  // Phase 1: shortest failing prefix by binary search (failure is usually
  // monotone in prefix length because the fallback past the prefix is
  // deterministic; verified below, with the original kept on mismatch).
  std::size_t lo = 0;
  std::size_t hi = failing.size();
  while (lo < hi && res.schedules_explored < budget) {
    const std::size_t mid = lo + (hi - lo) / 2;
    Schedule prefix(failing.begin(),
                    failing.begin() + static_cast<std::ptrdiff_t>(mid));
    if (fails_same(prefix, kind, res))
      hi = mid;
    else
      lo = mid + 1;
  }
  {
    Schedule prefix(failing.begin(),
                    failing.begin() + static_cast<std::ptrdiff_t>(hi));
    if (res.schedules_explored < budget && fails_same(prefix, kind, res))
      failing = std::move(prefix);
  }
  // Phase 2: drop individual decisions, last to first (ddmin-lite).
  for (std::size_t i = failing.size(); i-- > 0;) {
    if (res.schedules_explored >= budget) break;
    Schedule cand = failing;
    cand.erase(cand.begin() + static_cast<std::ptrdiff_t>(i));
    if (fails_same(cand, kind, res)) failing = std::move(cand);
  }
  return failing;
}

void Checker::record_failure(const RunOutcome& out, CheckResult& res) {
  res.failed = true;
  res.failure_kind = out.kind;
  res.error = out.error;
  Schedule failing = schedule_of(out.records);
  if (opts_.shrink && !failing.empty()) {
    // shrink() executes replays; freeze failed so budget_left in other
    // sweeps stops, but let fails_same keep running via its own budget.
    failing = shrink(std::move(failing), out.kind, res);
  }
  res.failing = std::move(failing);
  res.failing_trace = format_schedule(res.failing);
}

void Checker::random_sweep(CheckResult& res) {
  for (int i = 0; i < opts_.random_schedules && budget_left(res); ++i) {
    const RunOutcome out =
        run_one(CoopScheduler::random(opts_.seed + static_cast<std::uint64_t>(i)),
                res);
    if (!out.ok) {
      record_failure(out, res);
      return;
    }
  }
}

void Checker::preemption_sweep(CheckResult& res) {
  if (opts_.preemption_bound < 0) return;
  struct Item {
    std::map<std::size_t, int> directives;
    int preemptions = 0;
  };
  std::deque<Item> queue;
  queue.push_back(Item{});
  while (!queue.empty() && budget_left(res)) {
    const Item item = queue.front();
    queue.pop_front();
    const RunOutcome out = run_one(directed_chooser(item.directives), res);
    if (!out.ok) {
      record_failure(out, res);
      return;
    }
    if (item.preemptions >= opts_.preemption_bound) continue;
    // Branch only past the deepest directive: every schedule is generated
    // by exactly one increasing directive sequence, so no duplicates.
    const std::size_t first = item.directives.empty()
                                  ? 0
                                  : item.directives.rbegin()->first + 1;
    for (std::size_t i = first; i < out.records.size(); ++i) {
      for (const int r : out.records[i].enabled) {
        if (r == out.records[i].chosen) continue;
        if (queue.size() >=
            static_cast<std::size_t>(opts_.max_schedules))
          return;  // bound the frontier along with the runs
        Item next = item;
        next.directives[i] = r;
        ++next.preemptions;
        queue.push_back(std::move(next));
      }
    }
  }
}

void Checker::dpor_sweep(CheckResult& res) {
  if (!opts_.dpor) return;
  struct Node {
    DecisionRecord rec;
    std::set<int> done;   ///< choices already explored here
    std::set<int> sleep;  ///< provably-redundant choices (skip + count)
    int chosen = -1;
  };
  std::vector<Node> path;
  bool first = true;
  while (budget_left(res)) {
    if (!first) {
      // Backtrack: deepest node with an unexplored, non-sleeping choice.
      while (!path.empty()) {
        Node& n = path.back();
        int cand = -1;
        for (const int r : n.rec.enabled) {
          if (n.done.count(r) != 0) continue;
          if (n.sleep.count(r) != 0) {
            // Will never be tried here: count it once, then retire it.
            ++res.schedules_pruned;
            n.done.insert(r);
            continue;
          }
          cand = r;
          break;
        }
        if (cand == -1) {
          path.pop_back();
          continue;
        }
        n.done.insert(cand);
        n.chosen = cand;
        break;
      }
      if (path.empty()) return;  // tree fully explored
    }
    first = false;
    Schedule forced;
    forced.reserve(path.size());
    for (const Node& n : path) forced.push_back(Decision{n.chosen, {}});
    const RunOutcome out = run_one(CoopScheduler::forced(forced), res);
    if (!out.ok) {
      record_failure(out, res);
      return;
    }
    // Guard against trace divergence (a forced rank that was not
    // runnable): truncate the tree at the first mismatch.
    for (std::size_t d = 0; d < path.size() && d < out.records.size(); ++d) {
      if (out.records[d].chosen != path[d].chosen) {
        path.resize(d);
        break;
      }
    }
    // Extend the tree with this run's new decisions. A fresh node's sleep
    // set: ranks the parent already explored (or was itself told to
    // sleep) whose pending op is independent of the branch taken — they
    // reach a state the other order already covers.
    for (std::size_t d = path.size(); d < out.records.size(); ++d) {
      const DecisionRecord& rec = out.records[d];
      Node node;
      node.rec = rec;
      node.chosen = rec.chosen;
      node.done.insert(rec.chosen);
      if (d > 0) {
        const Node& parent = path.back();
        node.sleep = inherit_sleep(
            parent.sleep, parent.done, parent.chosen,
            op_of(parent.rec, parent.chosen),
            [&rec](int r) { return op_of(rec, r); });
      }
      path.push_back(std::move(node));
    }
  }
}

CheckResult Checker::run() {
  CheckResult res;
  if (!opts_.replay_trace.empty()) {
    const Schedule forced = parse_schedule(opts_.replay_trace);
    const RunOutcome out = run_one(CoopScheduler::forced(forced), res);
    if (!out.ok) {
      // Replay reports the trace as-run, unshrunk — it is the user's.
      res.failed = true;
      res.failure_kind = out.kind;
      res.error = out.error;
      res.failing = schedule_of(out.records);
      res.failing_trace = format_schedule(res.failing);
    }
    return res;
  }
  // Baseline: the canonical single schedule a plain run would take.
  const RunOutcome base = run_one(CoopScheduler::first_enabled(), res);
  if (!base.ok) {
    record_failure(base, res);
    return res;
  }
  random_sweep(res);
  if (res.failed) return res;
  preemption_sweep(res);
  if (res.failed) return res;
  dpor_sweep(res);
  return res;
}

std::string summary(const CheckResult& result) {
  std::string out = "CHECK schedules=" + std::to_string(result.schedules_explored) +
                    " pruned=" + std::to_string(result.schedules_pruned) +
                    " max_decisions=" + std::to_string(result.max_decisions) +
                    " races=" + std::to_string(result.races_found) +
                    " result=" + (result.failed ? result.failure_kind : "ok");
  if (result.failed) out += " trace=" + result.failing_trace;
  return out;
}

}  // namespace pioblast::mpicheck
