// Happens-before + lockset race detector for simulated shared state.
//
// The runtime reports message edges (Process::send issues a token via
// RaceHook::on_send, carried in Message::hb; the receive joins it back via
// on_recv) and instrumented accesses to shared objects (Mailbox internals,
// RunMetrics accumulation, driver scheduler state, test shared variables).
// The detector keeps one vector clock per rank, advanced at send/recv
// edges, and remembers each object's last write and last read per rank as
// (rank, clock) epochs. Two conflicting accesses — same object, different
// ranks, at least one write — are a race when
//
//   * no happens-before edge orders them (the earlier epoch is not
//     covered by the later rank's vector clock), and
//   * their lockset intersection is empty (accesses that share a real
//     lock are synchronized by it even without a message edge; this is
//     what exempts the deliberately lock-protected RunMetrics counters).
//
// A detected race throws RaceError from the accessing thread; the runtime
// treats it like any rank failure (poison, unwind, rethrow), so the
// readable report reaches the caller as the job's error.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "mpisim/hooks.h"
#include "mpisim/verify.h"

namespace pioblast::mpicheck {

/// A data-race report. Derives from VerifyError so every layer that
/// already surfaces protocol failures surfaces races the same way.
class RaceError : public mpisim::VerifyError {
 public:
  explicit RaceError(const std::string& what) : mpisim::VerifyError(what) {}
};

class RaceDetector final : public mpisim::RaceHook {
 public:
  struct Options {
    /// Throw RaceError at the racy access (default). When off, races are
    /// only counted and collected in reports() — used by sweeps that want
    /// every race in a schedule, not just the first.
    bool throw_on_race = true;
  };

  RaceDetector() = default;
  explicit RaceDetector(Options opts);

  // RaceHook ----------------------------------------------------------------
  void start(int nranks) override;
  std::uint64_t on_send(int src) override;
  void on_recv(int dst, std::uint64_t hb) override;
  void on_access(int rank, const void* obj, std::string_view what, bool write,
                 std::span<const void* const> locks) override;

  // Results -----------------------------------------------------------------
  std::uint64_t races_found() const;
  std::uint64_t accesses() const;
  std::vector<std::string> reports() const;

 private:
  /// One remembered access: the accessor's (rank, own-clock) epoch plus
  /// the locks it held and a label for reports.
  struct Epoch {
    int rank = -1;
    std::uint64_t clock = 0;
    std::vector<const void*> locks;
    std::string what;
  };

  struct ObjState {
    Epoch write;               ///< last write (rank == -1: none yet)
    std::vector<Epoch> reads;  ///< last read per rank (since last write)
  };

  /// True when the remembered epoch happened-before rank's present.
  bool ordered_locked(const Epoch& prev, int rank) const;

  static bool locks_disjoint(const Epoch& prev,
                             std::span<const void* const> locks);

  void report_locked(const Epoch& prev, int rank, std::string_view what,
                     bool write, const void* obj);

  Options opts_{};
  mutable std::mutex mu_;
  std::vector<std::vector<std::uint64_t>> vc_;  ///< vector clock per rank
  std::uint64_t next_token_ = 1;
  std::unordered_map<std::uint64_t, std::vector<std::uint64_t>> in_flight_;
  std::map<const void*, ObjState> objs_;
  std::uint64_t races_ = 0;
  std::uint64_t accesses_ = 0;
  std::vector<std::string> reports_;
};

}  // namespace pioblast::mpicheck
