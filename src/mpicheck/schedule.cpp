#include "mpicheck/schedule.h"

#include <sstream>

#include "util/error.h"

namespace pioblast::mpicheck {

std::string format_schedule(const Schedule& schedule) {
  std::string out;
  for (const Decision& d : schedule) {
    if (!out.empty()) out += ',';
    out += std::to_string(d.rank);
  }
  return out;
}

Schedule parse_schedule(const std::string& text) {
  Schedule out;
  if (text.empty()) return out;
  std::istringstream in(text);
  std::string field;
  while (std::getline(in, field, ',')) {
    std::size_t pos = 0;
    int rank = -1;
    try {
      rank = std::stoi(field, &pos);
    } catch (const std::exception&) {
      throw util::RuntimeError("mpicheck: bad schedule field '" + field +
                               "' (want a rank number)");
    }
    if (pos != field.size() || rank < 0) {
      throw util::RuntimeError("mpicheck: bad schedule field '" + field +
                               "' (want a non-negative rank number)");
    }
    out.push_back(Decision{rank, {}});
  }
  return out;
}

}  // namespace pioblast::mpicheck
