#include "mpicheck/coop.h"

#include <algorithm>
#include <memory>
#include <random>
#include <utility>

#include "util/error.h"

namespace pioblast::mpicheck {

namespace {
bool contains(const std::vector<int>& v, int x) {
  return std::find(v.begin(), v.end(), x) != v.end();
}
}  // namespace

CoopScheduler::CoopScheduler(Chooser chooser) : chooser_(std::move(chooser)) {}

void CoopScheduler::start(int nranks, StuckHandler on_stuck) {
  PIOBLAST_CHECK(nranks >= 1);
  nranks_ = nranks;
  on_stuck_ = std::move(on_stuck);
  begun_ = 0;
  current_ = -1;
  stuck_fired_ = false;
  states_.assign(static_cast<std::size_t>(nranks), State::kNotStarted);
  ops_.assign(static_cast<std::size_t>(nranks), mpisim::YieldPoint{});
  records_.clear();
}

void CoopScheduler::schedule_locked() {
  if (current_ != -1) return;
  // Start gate: no rank runs until every rank has checked in, otherwise
  // the decision sequence would depend on OS thread-startup timing and
  // the whole run would stop being a function of the chooser.
  if (begun_ < nranks_) return;
  std::vector<int> enabled;
  for (int r = 0; r < nranks_; ++r)
    if (states_[static_cast<std::size_t>(r)] == State::kRunnable)
      enabled.push_back(r);
  if (enabled.empty()) return;
  int chosen = enabled[0];
  if (enabled.size() >= 2) {
    std::vector<mpisim::YieldPoint> ops;
    ops.reserve(enabled.size());
    for (const int r : enabled) ops.push_back(ops_[static_cast<std::size_t>(r)]);
    if (chooser_) {
      const int want = chooser_(records_.size(), enabled, ops);
      if (contains(enabled, want)) chosen = want;
    }
    records_.push_back(DecisionRecord{enabled, std::move(ops), chosen});
  }
  current_ = chosen;
  cv_.notify_all();
}

void CoopScheduler::maybe_stuck(std::unique_lock<std::mutex>& lock) {
  if (current_ != -1 || begun_ < nranks_ || stuck_fired_) return;
  bool any_blocked = false;
  for (int r = 0; r < nranks_; ++r) {
    const State s = states_[static_cast<std::size_t>(r)];
    if (s == State::kRunnable) return;  // schedule_locked will pick it
    if (s == State::kBlocked) any_blocked = true;
  }
  if (!any_blocked) return;  // everyone done — clean end
  stuck_fired_ = true;
  std::string report =
      "mpicheck: scheduler stuck — no runnable rank; blocked:";
  for (int r = 0; r < nranks_; ++r) {
    if (states_[static_cast<std::size_t>(r)] != State::kBlocked) continue;
    const mpisim::YieldPoint& op = ops_[static_cast<std::size_t>(r)];
    report += " rank " + std::to_string(r) + " at " + to_string(op.kind);
    if (op.kind == mpisim::YieldPoint::Kind::kRecv) {
      report += "(src=" + std::to_string(op.peer) +
                ", tag=" + std::to_string(op.tag) + ")";
    }
    report += ";";
  }
  report += " (deadlock not claimed by the protocol verifier)";
  // The handler poisons mailboxes, which calls back into wake() — run it
  // with the scheduler lock released.
  lock.unlock();
  on_stuck_(report);
  lock.lock();
  schedule_locked();
}

void CoopScheduler::wait_for_turn(std::unique_lock<std::mutex>& lock,
                                  int rank) {
  cv_.wait(lock, [&] { return current_ == rank; });
  states_[static_cast<std::size_t>(rank)] = State::kRunning;
}

void CoopScheduler::rank_begin(int rank) {
  std::unique_lock lock(mu_);
  states_[static_cast<std::size_t>(rank)] = State::kRunnable;
  ops_[static_cast<std::size_t>(rank)] =
      mpisim::YieldPoint{rank, mpisim::YieldPoint::Kind::kBegin, -1, 0, nullptr};
  ++begun_;
  if (begun_ == nranks_) schedule_locked();
  wait_for_turn(lock, rank);
}

void CoopScheduler::yield(const mpisim::YieldPoint& op) {
  std::unique_lock lock(mu_);
  const int rank = op.rank;
  ops_[static_cast<std::size_t>(rank)] = op;
  states_[static_cast<std::size_t>(rank)] = State::kRunnable;
  current_ = -1;
  schedule_locked();
  wait_for_turn(lock, rank);
}

void CoopScheduler::block(int rank) {
  std::unique_lock lock(mu_);
  // The rank held the token from its failed match-check to here, so no
  // wake can have been missed: any message that could unblock it is
  // either already in the mailbox (the caller's loop re-checks) or will
  // be pushed by a later-scheduled rank, whose push calls wake().
  states_[static_cast<std::size_t>(rank)] = State::kBlocked;
  current_ = -1;
  schedule_locked();
  maybe_stuck(lock);
  wait_for_turn(lock, rank);
}

void CoopScheduler::wake(int rank) {
  std::unique_lock lock(mu_);
  if (rank < 0 || rank >= nranks_) return;  // mailbox not bound to a rank
  if (states_[static_cast<std::size_t>(rank)] != State::kBlocked) return;
  states_[static_cast<std::size_t>(rank)] = State::kRunnable;
  // No scheduling here: wake is only ever called from the running rank or
  // from the stuck handler, and both paths re-run schedule_locked.
}

void CoopScheduler::finish(int rank) {
  std::unique_lock lock(mu_);
  states_[static_cast<std::size_t>(rank)] = State::kDone;
  if (current_ == rank) current_ = -1;
  schedule_locked();
  maybe_stuck(lock);
}

void CoopScheduler::inline_start(int nranks) {
  std::unique_lock lock(mu_);
  PIOBLAST_CHECK(nranks >= 1);
  nranks_ = nranks;
  // The event loop creates every fiber before resuming any, so the
  // threaded backend's start gate is satisfied by construction.
  begun_ = nranks;
  current_ = -1;
  stuck_fired_ = false;
  states_.assign(static_cast<std::size_t>(nranks), State::kNotStarted);
  ops_.assign(static_cast<std::size_t>(nranks), mpisim::YieldPoint{});
  records_.clear();
}

int CoopScheduler::inline_choose(const std::vector<int>& enabled,
                                 const std::vector<mpisim::YieldPoint>& ops) {
  std::unique_lock lock(mu_);
  int chosen = enabled[0];
  if (chooser_) {
    const int want = chooser_(records_.size(), enabled, ops);
    if (contains(enabled, want)) chosen = want;
  }
  // The loop only consults the delegate at multi-choice points, so
  // recording unconditionally keeps trace parity with schedule_locked().
  records_.push_back(DecisionRecord{enabled, ops, chosen});
  return chosen;
}

void CoopScheduler::inline_stuck() {
  std::unique_lock lock(mu_);
  stuck_fired_ = true;
}

Schedule CoopScheduler::schedule() const {
  Schedule out;
  out.reserve(records_.size());
  for (const DecisionRecord& r : records_)
    out.push_back(Decision{r.chosen, r.enabled});
  return out;
}

CoopScheduler::Chooser CoopScheduler::first_enabled() {
  return [](std::size_t, const std::vector<int>& enabled,
            const std::vector<mpisim::YieldPoint>&) { return enabled[0]; };
}

CoopScheduler::Chooser CoopScheduler::random(std::uint64_t seed) {
  // Modulo instead of uniform_int_distribution: the distribution's
  // algorithm is implementation-defined, and schedule seeds must replay
  // identically everywhere.
  auto rng = std::make_shared<std::mt19937_64>(seed);
  return [rng](std::size_t, const std::vector<int>& enabled,
               const std::vector<mpisim::YieldPoint>&) {
    return enabled[(*rng)() % enabled.size()];
  };
}

CoopScheduler::Chooser CoopScheduler::forced(Schedule forced,
                                             bool continue_after) {
  auto last = std::make_shared<int>(-1);
  return [forced = std::move(forced), continue_after, last](
             std::size_t index, const std::vector<int>& enabled,
             const std::vector<mpisim::YieldPoint>&) {
    int pick = -1;
    if (index < forced.size() && contains(enabled, forced[index].rank))
      pick = forced[index].rank;
    if (pick == -1) {
      if (continue_after && contains(enabled, *last))
        pick = *last;
      else
        pick = enabled[0];
    }
    *last = pick;
    return pick;
  };
}

}  // namespace pioblast::mpicheck
