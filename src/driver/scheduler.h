// Pluggable task schedulers for the master/worker drivers.
//
// A "task" is an opaque index (an mpiBLAST physical fragment, a pioBLAST
// virtual fragment range). The scheduler decides which task a given worker
// receives next; the delivery mechanism is shared (driver/work_queue.h for
// the online request loop, or an upfront plan() for drivers that pre-send
// their assignments, e.g. pioBLAST's static range distribution — the only
// mode compatible with collective input, whose round structure must be
// known before the run).
//
// Policies:
//   * GreedyDynamic      — the paper's §2.2/§5 first-come-first-served
//                          master loop: the next un-searched task goes to
//                          whichever worker asks first.
//   * StaticRoundRobin   — task t -> worker (t mod W), the historical
//                          pioBLAST static assignment.
//   * SpeedWeightedStatic — heterogeneity-aware: tasks are apportioned to
//                          workers proportionally to their node speeds
//                          (sim::ClusterConfig::node_speed) with a D'Hondt
//                          divisor sweep, so a half-speed node receives
//                          half the fragments. Fully deterministic.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "sim/cluster.h"

namespace pioblast::driver {

/// Selects the scheduling policy in MpiBlastOptions / PioBlastOptions.
enum class SchedulerKind {
  kGreedyDynamic = 0,
  kStaticRoundRobin = 1,
  kSpeedWeighted = 2,
};

std::string_view to_string(SchedulerKind kind);

/// Parses "greedy" | "roundrobin" | "speed-weighted" (throws on others).
SchedulerKind parse_scheduler(std::string_view name);

/// What a scheduler knows about the worker pool: count and relative node
/// speeds (speed[w] belongs to worker w, i.e. rank w+1).
struct WorkerTopology {
  int nworkers = 0;
  std::vector<double> speed;

  static WorkerTopology from_cluster(const sim::ClusterConfig& cluster,
                                     int nprocs);
};

/// Task-assignment policy. Stateful: reset() then next() per request.
class Scheduler {
 public:
  static constexpr std::int64_t kNoTask = -1;

  virtual ~Scheduler() = default;

  virtual std::string_view name() const = 0;

  /// True when the full assignment is a function of (ntasks, topology)
  /// alone — i.e. it can be computed and distributed before the run.
  virtual bool is_static() const = 0;

  /// Prepares for a run handing out tasks [0, ntasks).
  virtual void reset(std::uint32_t ntasks, const WorkerTopology& topo) = 0;

  /// Next task for `worker` (0-based), or kNoTask when it has drained.
  virtual std::int64_t next(int worker) = 0;

  /// Returns a previously handed-out task to the pool after its worker
  /// was lost. The task becomes eligible for any worker *except*
  /// `excluded_worker` (the dead one must never be offered its own work
  /// back). Used by the fault-tolerant serve loop; pass -1 to exclude
  /// nobody.
  virtual void requeue(std::uint32_t task, int excluded_worker) = 0;

  /// Upfront per-worker plans (ordered task lists). Only valid for static
  /// policies; resets internal state.
  std::vector<std::vector<std::uint32_t>> plan(std::uint32_t ntasks,
                                               const WorkerTopology& topo);
};

std::unique_ptr<Scheduler> make_scheduler(SchedulerKind kind);

}  // namespace pioblast::driver
