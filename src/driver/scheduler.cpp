#include "driver/scheduler.h"

#include <cmath>
#include <deque>
#include <utility>

#include "util/error.h"

namespace pioblast::driver {

std::string_view to_string(SchedulerKind kind) {
  switch (kind) {
    case SchedulerKind::kGreedyDynamic:
      return "greedy";
    case SchedulerKind::kStaticRoundRobin:
      return "roundrobin";
    case SchedulerKind::kSpeedWeighted:
      return "speed-weighted";
  }
  return "unknown";
}

SchedulerKind parse_scheduler(std::string_view name) {
  if (name == "greedy") return SchedulerKind::kGreedyDynamic;
  if (name == "roundrobin") return SchedulerKind::kStaticRoundRobin;
  if (name == "speed-weighted") return SchedulerKind::kSpeedWeighted;
  throw util::RuntimeError("unknown scheduler: " + std::string(name) +
                           " (want greedy | roundrobin | speed-weighted)");
}

WorkerTopology WorkerTopology::from_cluster(const sim::ClusterConfig& cluster,
                                            int nprocs) {
  WorkerTopology topo;
  topo.nworkers = nprocs - 1;
  topo.speed.reserve(static_cast<std::size_t>(topo.nworkers));
  for (int w = 0; w < topo.nworkers; ++w)
    topo.speed.push_back(cluster.speed_of(w + 1));  // rank 0 is the master
  return topo;
}

std::vector<std::vector<std::uint32_t>> Scheduler::plan(
    std::uint32_t ntasks, const WorkerTopology& topo) {
  PIOBLAST_CHECK_MSG(is_static(),
                     "plan() requires a static scheduler; " << name()
                                                            << " is dynamic");
  reset(ntasks, topo);
  std::vector<std::vector<std::uint32_t>> out(
      static_cast<std::size_t>(topo.nworkers));
  for (int w = 0; w < topo.nworkers; ++w) {
    for (std::int64_t t = next(w); t != kNoTask; t = next(w))
      out[static_cast<std::size_t>(w)].push_back(
          static_cast<std::uint32_t>(t));
  }
  return out;
}

namespace {

/// Tasks returned to the pool after their worker died, with the worker
/// each one must not be offered to again. Shared by all policies.
using RequeuePool = std::deque<std::pair<std::uint32_t, int>>;

/// Pops the first requeued task eligible for `worker`, or kNoTask.
std::int64_t take_requeued(RequeuePool& pool, int worker) {
  for (auto it = pool.begin(); it != pool.end(); ++it) {
    if (it->second == worker) continue;  // dead worker's own task
    const std::uint32_t t = it->first;
    pool.erase(it);
    return t;
  }
  return Scheduler::kNoTask;
}

/// First-come-first-served: the next un-assigned task goes to whichever
/// worker asks first (the paper's greedy master loop).
class GreedyDynamic final : public Scheduler {
 public:
  std::string_view name() const override { return "greedy"; }
  bool is_static() const override { return false; }

  void reset(std::uint32_t ntasks, const WorkerTopology&) override {
    ntasks_ = ntasks;
    next_ = 0;
    requeued_.clear();
  }

  std::int64_t next(int worker) override {
    // Recovered tasks first: they are the oldest work in the system and
    // gate job completion.
    const std::int64_t re = take_requeued(requeued_, worker);
    if (re != kNoTask) return re;
    return next_ < ntasks_ ? static_cast<std::int64_t>(next_++) : kNoTask;
  }

  void requeue(std::uint32_t task, int excluded_worker) override {
    requeued_.emplace_back(task, excluded_worker);
  }

 private:
  std::uint32_t ntasks_ = 0;
  std::uint32_t next_ = 0;
  RequeuePool requeued_;
};

/// Base for policies whose per-worker queues are precomputed in reset().
class PlannedScheduler : public Scheduler {
 public:
  bool is_static() const override { return true; }

  std::int64_t next(int worker) override {
    PIOBLAST_CHECK(worker >= 0 &&
                   static_cast<std::size_t>(worker) < queues_.size());
    auto& q = queues_[static_cast<std::size_t>(worker)];
    if (!q.empty()) {
      const std::uint32_t t = q.front();
      q.pop_front();
      return t;
    }
    // Own plan drained: pick up work orphaned by a dead worker (its
    // planned queue can no longer be served by its owner).
    return take_requeued(requeued_, worker);
  }

  void requeue(std::uint32_t task, int excluded_worker) override {
    requeued_.emplace_back(task, excluded_worker);
  }

 protected:
  std::vector<std::deque<std::uint32_t>> queues_;
  RequeuePool requeued_;
};

class StaticRoundRobin final : public PlannedScheduler {
 public:
  std::string_view name() const override { return "roundrobin"; }

  void reset(std::uint32_t ntasks, const WorkerTopology& topo) override {
    queues_.assign(static_cast<std::size_t>(topo.nworkers), {});
    requeued_.clear();
    for (std::uint32_t t = 0; t < ntasks; ++t)
      queues_[t % static_cast<std::uint32_t>(topo.nworkers)].push_back(t);
  }
};

/// D'Hondt apportionment over node speeds: each task goes to the worker
/// with the largest speed/(assigned+1) quotient (ties to the lowest rank),
/// so task counts converge to the speed proportions. With homogeneous
/// speeds this degenerates to round-robin.
class SpeedWeightedStatic final : public PlannedScheduler {
 public:
  std::string_view name() const override { return "speed-weighted"; }

  void reset(std::uint32_t ntasks, const WorkerTopology& topo) override {
    const auto n = static_cast<std::size_t>(topo.nworkers);
    queues_.assign(n, {});
    requeued_.clear();
    // A zero or negative speed makes every quotient non-positive and the
    // divisor sweep degenerates (all tasks pile onto worker 0), so reject
    // invalid speeds loudly instead of silently misassigning. Validated
    // even when ntasks == 0: a bad topology is a bug regardless of load.
    for (std::size_t w = 0; w < n; ++w) {
      const double speed = w < topo.speed.size() ? topo.speed[w] : 1.0;
      PIOBLAST_CHECK_MSG(std::isfinite(speed) && speed > 0.0,
                         "speed-weighted scheduler: worker "
                             << w << " has invalid node speed " << speed
                             << " (speeds must be finite and > 0)");
    }
    std::vector<std::uint32_t> assigned(n, 0);
    for (std::uint32_t t = 0; t < ntasks; ++t) {
      std::size_t best = 0;
      double best_q = -1.0;
      for (std::size_t w = 0; w < n; ++w) {
        const double speed = w < topo.speed.size() ? topo.speed[w] : 1.0;
        const double q = speed / static_cast<double>(assigned[w] + 1);
        if (q > best_q) {
          best_q = q;
          best = w;
        }
      }
      queues_[best].push_back(t);
      ++assigned[best];
    }
  }
};

}  // namespace

std::unique_ptr<Scheduler> make_scheduler(SchedulerKind kind) {
  switch (kind) {
    case SchedulerKind::kGreedyDynamic:
      return std::make_unique<GreedyDynamic>();
    case SchedulerKind::kStaticRoundRobin:
      return std::make_unique<StaticRoundRobin>();
    case SchedulerKind::kSpeedWeighted:
      return std::make_unique<SpeedWeightedStatic>();
  }
  throw util::RuntimeError("unknown SchedulerKind");
}

}  // namespace pioblast::driver
