#include "driver/master_worker.h"

#include <cstdint>
#include <vector>

#include "driver/tags.h"
#include "mpisim/runtime.h"
#include "pario/collective.h"
#include "pario/file.h"
#include "util/error.h"

namespace pioblast::driver {

MasterWorkerApp::MasterWorkerApp(const sim::ClusterConfig& cluster, int nprocs,
                                 pario::ClusterStorage& storage,
                                 const blast::JobConfig& job,
                                 std::shared_ptr<const blast::QuerySet> queries,
                                 mpisim::Tracer* tracer)
    : cluster_(cluster),
      nprocs_(nprocs),
      storage_(storage),
      job_(job),
      queries_(std::move(queries)),
      tracer_(tracer),
      topology_(WorkerTopology::from_cluster(cluster, nprocs)) {
  PIOBLAST_CHECK_MSG(nprocs >= 2, "drivers need a master and >= 1 worker");
  PIOBLAST_CHECK(queries_ != nullptr);
}

void MasterWorkerApp::init_stage(mpisim::Process& p) {
  p.set_phase("other");
  p.compute(p.cost().process_init_seconds());
  std::vector<std::uint8_t> query_bytes;
  if (p.is_root()) {
    query_bytes =
        pario::timed_read_all(p, storage_.shared(), job_.query_path, 1);
  }
  p.bcast(query_bytes, 0);
}

void MasterWorkerApp::body(mpisim::Process& p) {
  if (p.is_root()) {
    master(p);
  } else {
    worker(p);
  }
}

void MasterWorkerApp::master(mpisim::Process&) {
  PIOBLAST_CHECK_MSG(false, "driver overrides neither body() nor master()");
}

void MasterWorkerApp::worker(mpisim::Process&) {
  PIOBLAST_CHECK_MSG(false, "driver overrides neither body() nor worker()");
}

blast::DriverResult MasterWorkerApp::run() {
  mpisim::RunOptions opts;
  opts.tracer = tracer_;
  opts.verify.enabled = verify_;
  opts.faults = faults_;
  opts.schedule = schedule_;
  opts.race = race_;
  opts.exec_model = exec_;
  // Seed the tag audit with the driver registry and the pario two-phase
  // exchange's internal band; any other tag on the wire is a protocol bug.
  auto registered = registered_tags();
  opts.verify.registered_tags.assign(registered.begin(), registered.end());
  auto pario_tags = pario::collective_internal_tags();
  opts.verify.internal_tags.assign(pario_tags.begin(), pario_tags.end());
  opts.verify.tag_name = [](int tag) { return tag_label(tag); };

  blast::DriverResult result;
  result.report = mpisim::run(
      nprocs_, cluster_,
      [this](mpisim::Process& p) {
        init_stage(p);
        body(p);
        // A rank that crashed after the master stopped listening (e.g.
        // while receiving its retirement) leaves an unread
        // failure-detector notice; absorb it so the leak check stays
        // meaningful for driver traffic.
        if (p.is_root()) p.drain(mpisim::kTagFaultNotice);
        p.barrier();
        // Mirror the final counters into the trace stream so a trace file
        // is self-describing. After the barrier every rank has finished
        // counting, so the snapshot is complete.
        if (tracer_ != nullptr && p.is_root()) {
          for (const auto& [name, value] : metrics_.snapshot())
            p.mark("metric " + name + "=" + std::to_string(value));
        }
      },
      opts);
  result.phases = blast::summarize_run(result.report);

  std::uint64_t wire_bytes = 0;
  std::uint64_t wire_messages = 0;
  std::uint64_t ranks_lost = 0;
  for (const auto& rank : result.report.ranks) {
    wire_bytes += rank.bytes_sent;
    wire_messages += rank.messages_sent;
    if (rank.crashed) ++ranks_lost;
  }
  metrics_.set(kMetricWireBytes, wire_bytes);
  metrics_.set(kMetricWireMessages, wire_messages);
  // Only fault-tolerant runs carry the counter, so failure-free metric
  // snapshots are unchanged.
  if (faults_.active()) metrics_.set(kMetricRanksLost, ranks_lost);

  result.metrics = metrics_.snapshot();
  result.output_bytes = metrics_.get(kMetricOutputBytes);
  result.candidates_merged = metrics_.get(kMetricCandidatesMerged);
  result.alignments_reported = metrics_.get(kMetricAlignmentsReported);
  return result;
}

}  // namespace pioblast::driver
