#include "driver/search_stage.h"

#include <algorithm>
#include <utility>

#include "blast/engine.h"
#include "util/error.h"

namespace pioblast::driver {

SearchStage::SearchStage(const blast::QuerySet& queries, RunMetrics* metrics,
                         blast::KernelKind kernel)
    : queries_(queries),
      metrics_(metrics),
      kernel_(kernel),
      per_query_(static_cast<std::size_t>(queries.size())) {}

std::size_t SearchStage::add_fragment(seqdb::LoadedFragment frag) {
  fragments_.push_back(std::move(frag));
  return fragments_.size() - 1;
}

void SearchStage::search_slot(mpisim::Process& p, std::size_t slot) {
  PIOBLAST_CHECK(slot < fragments_.size());
  const seqdb::LoadedFragment& frag = fragments_[slot];
  const auto& contexts = queries_.contexts();
  p.compute(p.cost().fragment_setup_seconds());
  std::uint64_t cached = 0;
  // One batched call services every query (the fast kernel indexes the
  // fragment once); virtual time is still charged per query, in query
  // order, from the per-query counters — identical to the scalar loop.
  auto results = blast::search_fragment_batch(contexts, frag, kernel_);
  for (std::uint32_t q = 0; q < queries_.size(); ++q) {
    auto& result = results[q];
    p.compute(p.cost().search_seconds(result.counters));
    for (blast::Hsp& hsp : result.hsps) {
      // Result caching (§3.2): remember the subject's location so its
      // sequence data never needs to be re-fetched later.
      CachedHit hit;
      hit.frag_slot = slot;
      hit.local_id = hsp.subject_global_id - frag.first_global_seq();
      hit.hsp = std::move(hsp);
      per_query_[q].push_back(std::move(hit));
      ++cached;
    }
  }
  if (metrics_) {
    metrics_->add(kMetricFragmentsSearched, 1);
    metrics_->add(kMetricHspsCached, cached);
  }
}

void SearchStage::sort_hits() {
  for (auto& hits : per_query_) {
    std::sort(hits.begin(), hits.end(),
              [](const CachedHit& a, const CachedHit& b) {
                return blast::Hsp::better(a.hsp, b.hsp);
              });
  }
}

}  // namespace pioblast::driver
