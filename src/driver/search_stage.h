// The shared fragment-search stage: load fragments, run every query over
// each one, cache the resulting hits with enough location info to find the
// subject's sequence data again later (paper §3.2 "result caching").
//
// This is the single per-query search loop in the codebase — both drivers
// feed fragments in (mpiBLAST whole physical volumes, pioBLAST virtual
// ranges) and read per-query hit lists out.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "blast/engine.h"
#include "blast/hsp.h"
#include "blast/query_set.h"
#include "driver/metrics.h"
#include "mpisim/process.h"
#include "seqdb/formatdb.h"

namespace pioblast::driver {

/// One cached local result: the HSP, where its subject lives, and (for
/// drivers with buffered output) its formatted output buffer.
struct CachedHit {
  blast::Hsp hsp;
  std::size_t frag_slot = 0;   ///< index into the stage's loaded fragments
  std::uint64_t local_id = 0;  ///< sequence ordinal within that fragment
  std::string text;  ///< formatted alignment block (paper: "output buffers")
};

class SearchStage {
 public:
  /// `metrics` may be null; when set, fragments_searched / hsps_cached are
  /// counted as the search proceeds. `kernel` picks the search-kernel
  /// implementation (scalar reference or the batched fast path); both
  /// produce bit-identical hits and virtual-time charges.
  SearchStage(const blast::QuerySet& queries, RunMetrics* metrics,
              blast::KernelKind kernel = blast::KernelKind::kFast);

  /// Registers a loaded fragment; returns its slot.
  std::size_t add_fragment(seqdb::LoadedFragment frag);

  /// Runs every query against the fragment in `slot`, charging
  /// fragment-setup and per-query search time, and caches the hits.
  void search_slot(mpisim::Process& p, std::size_t slot);

  /// Convenience: search the most recently added fragment.
  void search_latest(mpisim::Process& p) { search_slot(p, fragments_.size() - 1); }

  /// Sorts each query's hits by blast::Hsp::better so local indices are
  /// deterministic regardless of fragment arrival order.
  void sort_hits();

  std::size_t fragment_count() const { return fragments_.size(); }
  const seqdb::LoadedFragment& fragment(std::size_t slot) const {
    return fragments_[slot];
  }

  std::vector<CachedHit>& hits(std::uint32_t q) {
    return per_query_[static_cast<std::size_t>(q)];
  }
  const std::vector<CachedHit>& hits(std::uint32_t q) const {
    return per_query_[static_cast<std::size_t>(q)];
  }

 private:
  const blast::QuerySet& queries_;
  RunMetrics* metrics_;
  blast::KernelKind kernel_;
  std::vector<seqdb::LoadedFragment> fragments_;
  std::vector<std::vector<CachedHit>> per_query_;
};

}  // namespace pioblast::driver
