// The online master/worker work queue shared by both drivers.
//
// Protocol (tags from driver/tags.h):
//   worker -> master  kTagWorkReq   empty payload ("give me work")
//   master -> worker  kTagAssign    u8 has_task; if 1: u32 task id followed
//                                   by an optional driver-specific payload
//                                   (pioBLAST appends the FragmentRange).
//
// The master keeps serving until every worker has been retired with a
// has_task=0 reply. Which worker gets which task is entirely the
// Scheduler's decision; this file only moves the bytes.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>

#include "driver/metrics.h"
#include "driver/scheduler.h"
#include "driver/tags.h"
#include "mpisim/process.h"
#include "mpisim/wire.h"
#include "util/error.h"

namespace pioblast::driver {

/// Master side: answer work requests until all workers are retired.
/// `payload(enc, task)` appends the driver-specific task body to an
/// affirmative reply (pass {} when the task id alone is the message).
/// Counts handed-out tasks into `metrics` under kMetricTasksAssigned.
inline void serve_work(
    mpisim::Process& p, Scheduler& sched, std::uint32_t ntasks,
    const WorkerTopology& topo,
    const std::function<void(mpisim::Encoder&, std::uint32_t)>& payload,
    RunMetrics* metrics) {
  sched.reset(ntasks, topo);
  int active = topo.nworkers;
  while (active > 0) {
    mpisim::Message req = p.recv(mpisim::kAnySource, kTagWorkReq);
    const int worker = req.src - 1;  // rank 0 is the master
    const std::int64_t task = sched.next(worker);
    mpisim::Encoder reply;
    if (task == Scheduler::kNoTask) {
      reply.put<std::uint8_t>(0);
      --active;
    } else {
      reply.put<std::uint8_t>(1).put(static_cast<std::uint32_t>(task));
      if (payload) payload(reply, static_cast<std::uint32_t>(task));
      if (metrics) metrics->add(kMetricTasksAssigned, 1);
    }
    p.send(req.src, kTagAssign, reply.bytes());
  }
}

/// Worker side: one request/reply round trip. Returns the decoded task, or
/// nullopt once the master retires this worker. `decode(task_id, dec)`
/// turns the reply body into the driver's task type; the decoder holds
/// only the optional payload appended by the master's `payload` hook.
template <typename T>
std::optional<T> request_work(
    mpisim::Process& p,
    const std::function<T(std::uint32_t, mpisim::Decoder&)>& decode) {
  p.send(0, kTagWorkReq, {});
  mpisim::Message reply = p.recv(0, kTagAssign);
  mpisim::Decoder dec(reply.payload);
  if (dec.get<std::uint8_t>() == 0) {
    PIOBLAST_CHECK(dec.exhausted());
    return std::nullopt;
  }
  const auto task_id = dec.get<std::uint32_t>();
  T task = decode(task_id, dec);
  PIOBLAST_CHECK_MSG(dec.exhausted(), "work reply: " << dec.remaining()
                                                     << " undecoded bytes");
  return task;
}

}  // namespace pioblast::driver
