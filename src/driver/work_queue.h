// The online master/worker work queue shared by both drivers.
//
// Protocol (tags from driver/tags.h):
//   worker -> master  kTagWorkReq   empty payload ("give me work")
//   master -> worker  kTagAssign    u8 has_task; if 1: u32 task id followed
//                                   by an optional driver-specific payload
//                                   (pioBLAST appends the FragmentRange).
//
// The master keeps serving until every worker has been retired with a
// has_task=0 reply. Which worker gets which task is entirely the
// Scheduler's decision; this file only moves the bytes.
//
// Fault tolerance: when the run carries a fault plan (World::
// fault_tolerant()), the master also listens for the simulator's
// failure-detector notices (mpisim::kTagFaultNotice). A dead worker's
// entire assignment history is returned to the scheduler via requeue() —
// results live in worker memory until the output phase, so every task the
// worker ever ran is lost with it — and a worker that would otherwise be
// retired while a peer still holds work in flight is parked (its reply
// withheld) so it can absorb requeued tasks if that peer dies.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "driver/metrics.h"
#include "driver/scheduler.h"
#include "driver/tags.h"
#include "mpisim/fault.h"
#include "mpisim/process.h"
#include "mpisim/wire.h"
#include "util/error.h"

namespace pioblast::driver {

/// Master side: answer work requests until all workers are retired or
/// lost. `payload(enc, task)` appends the driver-specific task body to an
/// affirmative reply (pass {} when the task id alone is the message).
/// Counts handed-out tasks into `metrics` under kMetricTasksAssigned and,
/// after losses, kMetricTasksReassigned / kMetricRecoveryUsec.
inline void serve_work(
    mpisim::Process& p, Scheduler& sched, std::uint32_t ntasks,
    const WorkerTopology& topo,
    const std::function<void(mpisim::Encoder&, std::uint32_t)>& payload,
    RunMetrics* metrics) {
  sched.reset(ntasks, topo);
  const int nworkers = topo.nworkers;
  const auto nw = static_cast<std::size_t>(nworkers);
  // Parking changes retirement timing, so it is gated on the static fault
  // plan: failure-free runs keep the historical retire-on-drain behavior
  // (and their exact virtual timings) unchanged.
  const bool fault_tolerant = p.world().fault_tolerant();
  int active = nworkers;

  std::vector<std::uint8_t> retired(nw, 0);  // got the has_task=0 reply
  std::vector<std::uint8_t> dead(nw, 0);     // failure detector said so
  std::vector<std::uint8_t> parked(nw, 0);   // request held, reply pending
  std::vector<std::uint8_t> busy(nw, 0);     // assignment outstanding
  // Every task a worker was ever given (not just the in-flight one): its
  // results stay in worker memory until the output phase, so losing the
  // worker loses them all.
  std::vector<std::vector<std::uint32_t>> history(nw);
  std::vector<std::uint8_t> task_requeued(ntasks, 0);
  std::size_t requeued_open = 0;  // requeued tasks not yet reassigned
  sim::Time recovery_start = 0;

  auto assign = [&](int w, std::uint32_t task) {
    // Scheduler state is master-private; the annotation documents that
    // claim to the race detector (any other rank touching it would be
    // flagged as an unordered conflicting access).
    p.annotate_write(&sched, "serve_work:assign");
    history[static_cast<std::size_t>(w)].push_back(task);
    busy[static_cast<std::size_t>(w)] = 1;
    mpisim::Encoder reply;
    reply.put<std::uint8_t>(1).put(task);
    if (payload) payload(reply, task);
    if (metrics) metrics->add(kMetricTasksAssigned, 1);
    if (task_requeued[task] != 0) {
      task_requeued[task] = 0;
      if (--requeued_open == 0 && metrics) {
        metrics->add(kMetricRecoveryUsec,
                     static_cast<std::uint64_t>((p.now() - recovery_start) *
                                                1e6));
      }
    }
    p.send(w + 1, kTagAssign, reply.bytes());
  };

  auto retire = [&](int w) {
    retired[static_cast<std::size_t>(w)] = 1;
    --active;
    mpisim::Encoder reply;
    reply.put<std::uint8_t>(0);
    p.send(w + 1, kTagAssign, reply.bytes());
  };

  auto any_busy_except = [&](int w) {
    for (int v = 0; v < nworkers; ++v)
      if (v != w && busy[static_cast<std::size_t>(v)] != 0 &&
          dead[static_cast<std::size_t>(v)] == 0)
        return true;
    return false;
  };

  // Answers one ready-to-serve worker: assign, retire, or (fault-tolerant
  // runs only) park while a peer's in-flight work could still come back.
  auto serve_one = [&](int w) {
    const std::int64_t task = sched.next(w);
    if (task != Scheduler::kNoTask) {
      assign(w, static_cast<std::uint32_t>(task));
    } else if (fault_tolerant && any_busy_except(w)) {
      parked[static_cast<std::size_t>(w)] = 1;
    } else {
      retire(w);
    }
  };

  // Re-examines parked workers until none can make progress; every state
  // change (death, assignment, completed request) can unpark someone.
  auto drain_parked = [&]() {
    bool progress = true;
    while (progress) {
      progress = false;
      for (int w = 0; w < nworkers; ++w) {
        const auto wi = static_cast<std::size_t>(w);
        if (parked[wi] == 0) continue;
        const std::int64_t task = sched.next(w);
        if (task != Scheduler::kNoTask) {
          parked[wi] = 0;
          assign(w, static_cast<std::uint32_t>(task));
          progress = true;
        } else if (!any_busy_except(w)) {
          parked[wi] = 0;
          retire(w);
          progress = true;
        }
      }
    }
  };

  auto handle_death = [&](int w) {
    const auto wi = static_cast<std::size_t>(w);
    if (dead[wi] != 0) return;
    dead[wi] = 1;
    parked[wi] = 0;
    busy[wi] = 0;
    if (retired[wi] == 0) --active;
    auto& lost = history[wi];
    if (!lost.empty()) {
      p.annotate_write(&sched, "serve_work:requeue");
      if (requeued_open == 0) recovery_start = p.now();
      for (const std::uint32_t t : lost) {
        sched.requeue(t, w);
        if (task_requeued[t] == 0) {
          task_requeued[t] = 1;
          ++requeued_open;
        }
      }
      if (metrics) metrics->add(kMetricTasksReassigned, lost.size());
      p.trace(mpisim::TraceKind::kRecovery,
              "worker " + std::to_string(w) + " (rank " +
                  std::to_string(w + 1) + ") lost; requeued " +
                  std::to_string(lost.size()) + " task(s)");
      lost.clear();
    }
  };

  static constexpr int kWaitTags[] = {kTagWorkReq, mpisim::kTagFaultNotice};
  while (active > 0) {
    mpisim::Message msg = p.recv_any_of(kWaitTags);
    if (msg.tag == mpisim::kTagFaultNotice) {
      handle_death(msg.src - 1);
      drain_parked();
      continue;
    }
    const int worker = msg.src - 1;  // rank 0 is the master
    PIOBLAST_CHECK_MSG(worker >= 0 && worker < nworkers,
                       "work request from invalid rank " << msg.src);
    const auto wi = static_cast<std::size_t>(worker);
    if (dead[wi] != 0) continue;  // request outran the notice; worker is gone
    if (retired[wi] != 0) {
      // A stray request after retirement must not decrement `active`
      // again: the first retirement already did, and a double decrement
      // ends the serve loop while another worker still waits for a reply
      // (observed as a deadlock). Answer with another retirement so the
      // confused worker still terminates.
      mpisim::Encoder reply;
      reply.put<std::uint8_t>(0);
      p.send(msg.src, kTagAssign, reply.bytes());
      continue;
    }
    busy[wi] = 0;  // its previous assignment (if any) is complete
    serve_one(worker);
    drain_parked();
  }
  // A dead worker's final request can still be undelivered here: when the
  // failure detector's notice overtakes the in-flight request (detection
  // delay under the wire latency, or a schedule that runs the crash
  // first), handle_death ends the loop before the request is consumed.
  // Every live worker's requests were answered above — assign, retire,
  // park, or the stray-after-retirement reply — so whatever is left on
  // kTagWorkReq is from a crashed worker; drain it or the verifier's leak
  // check reports it as a lost driver message.
  if (fault_tolerant) p.drain(kTagWorkReq);
}

/// Worker side: one request/reply round trip. Returns the decoded task, or
/// nullopt once the master retires this worker. `decode(task_id, dec)`
/// turns the reply body into the driver's task type; the decoder holds
/// only the optional payload appended by the master's `payload` hook.
template <typename T>
std::optional<T> request_work(
    mpisim::Process& p,
    const std::function<T(std::uint32_t, mpisim::Decoder&)>& decode) {
  p.send(0, kTagWorkReq, {});
  mpisim::Message reply = p.recv(0, kTagAssign);
  mpisim::Decoder dec(reply.payload);
  if (dec.get<std::uint8_t>() == 0) {
    PIOBLAST_CHECK_MSG(dec.exhausted(),
                       "retirement reply on " << p.tag_label(kTagAssign)
                                              << ": " << dec.remaining()
                                              << " trailing payload bytes");
    return std::nullopt;
  }
  const auto task_id = dec.get<std::uint32_t>();
  T task = decode(task_id, dec);
  PIOBLAST_CHECK_MSG(dec.exhausted(),
                     "work reply on " << p.tag_label(kTagAssign) << ": "
                                      << dec.remaining()
                                      << " undecoded trailing bytes");
  return task;
}

}  // namespace pioblast::driver
