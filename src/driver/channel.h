// Typed wire channels: one tag + one WireCodec<T> = one Channel<T>.
//
// Drivers used to hand-roll Encoder/Decoder sequences at every send/recv
// site, so the two ends of a protocol could silently drift apart. A
// Channel binds a message type to its registry tag (driver/tags.h); both
// ends go through the same codec, and every receive asserts the payload
// was consumed exactly — a framing bug throws instead of corrupting the
// next field.
#pragma once

#include "mpisim/process.h"
#include "mpisim/wire.h"
#include "util/error.h"

namespace pioblast::driver {

/// Encoded size of `value` on the wire — what a Channel<T>::send of it
/// would inject. Used by cost hooks that charge for marshalling.
template <typename T>
std::uint64_t wire_size(const T& value) {
  mpisim::Encoder enc;
  enc.put_obj(value);
  return enc.size();
}

template <typename T>
class Channel {
 public:
  constexpr explicit Channel(int tag) : tag_(tag) {}

  int tag() const { return tag_; }

  void send(mpisim::Process& p, int dst, const T& value) const {
    mpisim::Encoder enc;
    enc.put_obj(value);
    p.send(dst, tag_, enc.bytes(), mpisim::type_stamp<T>());
  }

  T recv(mpisim::Process& p, int src) const {
    mpisim::Message msg = p.recv(src, tag_);
    p.check_stamp(msg, tag_, mpisim::type_stamp<T>());
    return decode(std::move(msg));
  }

  struct From {
    int src = 0;
    T value{};
  };

  /// Receive from any rank; returns the sender alongside the value.
  From recv_any(mpisim::Process& p) const {
    mpisim::Message msg = p.recv(mpisim::kAnySource, tag_);
    p.check_stamp(msg, tag_, mpisim::type_stamp<T>());
    const int src = msg.src;
    return {src, decode(std::move(msg))};
  }

 private:
  T decode(mpisim::Message msg) const {
    mpisim::Decoder dec(msg.payload);
    T value = dec.get_obj<T>();
    PIOBLAST_CHECK_MSG(dec.exhausted(),
                       "channel tag " << tag_ << ": " << dec.remaining()
                                      << " undecoded payload bytes");
    return value;
  }

  int tag_;
};

}  // namespace pioblast::driver
