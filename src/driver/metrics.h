// Structured run metrics: one named-counter registry per driver run.
//
// Replaces the per-driver trios of ad-hoc std::atomic counters. Any rank
// thread can bump a counter by name during the run; after the run the
// snapshot flows into blast::DriverResult::metrics, is mirrored into the
// trace stream as `metric <name>=<value>` marks, and can be emitted as one
// machine-readable JSON line (CLI --metrics, bench METRICS lines).
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>

namespace pioblast::driver {

/// Canonical counter names shared by both drivers, so downstream tooling
/// can rely on them regardless of which driver produced a result.
inline constexpr std::string_view kMetricCandidatesMerged = "candidates_merged";
inline constexpr std::string_view kMetricAlignmentsReported =
    "alignments_reported";
inline constexpr std::string_view kMetricOutputBytes = "output_bytes";
inline constexpr std::string_view kMetricFragmentsSearched =
    "fragments_searched";
inline constexpr std::string_view kMetricHspsCached = "hsps_cached";
inline constexpr std::string_view kMetricTasksAssigned = "tasks_assigned";
inline constexpr std::string_view kMetricWireBytes = "wire_bytes_sent";
inline constexpr std::string_view kMetricWireMessages = "wire_messages_sent";

// pario v2 list-I/O counters (emitted by runs that fetch fragment ranges
// through driver::read_fragment_ranges): how many ranges were requested,
// how many device reads actually reached the storage model after request
// merging and data sieving, and the wanted-vs-transferred byte volumes
// (bytes_read > bytes_wanted means sieving paid for bridged holes).
inline constexpr std::string_view kMetricParioListRequests =
    "pario_list_requests";
inline constexpr std::string_view kMetricParioDeviceReads =
    "pario_device_reads";
inline constexpr std::string_view kMetricParioBytesWanted =
    "pario_bytes_wanted";
inline constexpr std::string_view kMetricParioBytesRead = "pario_bytes_read";

// Fault-tolerance counters (only emitted by fault-tolerant runs).
inline constexpr std::string_view kMetricTasksReassigned = "tasks_reassigned";
inline constexpr std::string_view kMetricRanksLost = "ranks_lost";
inline constexpr std::string_view kMetricRecoveryUsec = "recovery_usec";

/// Thread-safe named-counter registry. Counters spring into existence on
/// first touch; snapshots are name-ordered, so output is deterministic.
class RunMetrics {
 public:
  /// Accumulates `delta` into counter `name`.
  void add(std::string_view name, std::uint64_t delta);

  /// Overwrites counter `name` with `value`.
  void set(std::string_view name, std::uint64_t value);

  /// Current value (0 for counters never touched).
  std::uint64_t get(std::string_view name) const;

  /// Name-ordered copy of every counter.
  std::map<std::string, std::uint64_t> snapshot() const;

  /// One-line JSON object, keys sorted: {"alignments_reported":12,...}
  std::string to_json() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::uint64_t, std::less<>> counters_;
};

/// Renders a counter snapshot (e.g. DriverResult::metrics) as the same
/// one-line JSON object RunMetrics::to_json produces.
std::string metrics_json(const std::map<std::string, std::uint64_t>& counters);

}  // namespace pioblast::driver
