// Fragment-range fetching through the pario v2 list-I/O path.
//
// A worker's input stage is a request list against the three shared volume
// files: per virtual fragment, one psq range (residues), one phr range
// (deflines), and two pin ranges (the offset-table slices). Instead of one
// device read per range — four seeks per fragment, each billed the NFS
// per-op setup — the lists are handed to pario::list_read, which merges
// adjacent/overlapping ranges and (hints permitting) data-sieves across
// small holes, so fragments that are contiguous in the volumes cost one
// large sequential read per file. With `hints.list_io == false` the reads
// degenerate to the exact pre-v2 per-range pattern, byte- and
// virtual-time-identical — the baseline the benchmarks compare against.
#pragma once

#include <span>
#include <vector>

#include "driver/metrics.h"
#include "mpisim/process.h"
#include "pario/env.h"
#include "pario/file.h"
#include "seqdb/formatdb.h"
#include "seqdb/partition.h"

namespace pioblast::driver {

/// Reads every range of `ranges` from the shared volumes `names` on `fs`
/// and rebuilds one LoadedFragment per range, in input order.
/// `concurrency` is the driver's estimate of simultaneous readers (usually
/// the worker count). When `metrics` is non-null the pario_* counters are
/// accumulated into it.
std::vector<seqdb::LoadedFragment> read_fragment_ranges(
    mpisim::Process& p, const pario::VirtualFS& fs,
    const seqdb::VolumeNames& names, const seqdb::DbIndex& header_view,
    std::span<const seqdb::FragmentRange> ranges, const pario::Hints& hints,
    int concurrency, RunMetrics* metrics = nullptr);

}  // namespace pioblast::driver
