#include "driver/range_reader.h"

#include <utility>

namespace pioblast::driver {

std::vector<seqdb::LoadedFragment> read_fragment_ranges(
    mpisim::Process& p, const pario::VirtualFS& fs,
    const seqdb::VolumeNames& names, const seqdb::DbIndex& header_view,
    std::span<const seqdb::FragmentRange> ranges, const pario::Hints& hints,
    int concurrency, RunMetrics* metrics) {
  // One request list per volume file. The pin list interleaves each
  // range's two offset-table slices so the naive path preserves the
  // historical read order (pin_seq, pin_hdr, psq, phr per fragment sums
  // to the same virtual time either way; list_read answers in input
  // order regardless).
  std::vector<pario::Region> pin_regions;
  std::vector<pario::Region> psq_regions;
  std::vector<pario::Region> phr_regions;
  pin_regions.reserve(ranges.size() * 2);
  psq_regions.reserve(ranges.size());
  phr_regions.reserve(ranges.size());
  for (const seqdb::FragmentRange& r : ranges) {
    pin_regions.push_back(r.pin_seq_off);
    pin_regions.push_back(r.pin_hdr_off);
    psq_regions.push_back(r.psq);
    phr_regions.push_back(r.phr);
  }

  pario::ListIoStats stats;
  auto pin = pario::list_read(p, fs, names.index, pin_regions, hints,
                              concurrency, &stats);
  auto psq = pario::list_read(p, fs, names.sequence, psq_regions, hints,
                              concurrency, &stats);
  auto phr = pario::list_read(p, fs, names.header, phr_regions, hints,
                              concurrency, &stats);

  if (metrics != nullptr) {
    metrics->add(kMetricParioListRequests, stats.requests);
    metrics->add(kMetricParioDeviceReads, stats.reads_issued);
    metrics->add(kMetricParioBytesWanted, stats.bytes_wanted);
    metrics->add(kMetricParioBytesRead, stats.bytes_read);
  }

  std::vector<seqdb::LoadedFragment> out;
  out.reserve(ranges.size());
  for (std::size_t i = 0; i < ranges.size(); ++i) {
    out.push_back(seqdb::fragment_from_slices(
        header_view, ranges[i], std::move(pin[i * 2]), std::move(pin[i * 2 + 1]),
        std::move(psq[i]), std::move(phr[i])));
  }
  return out;
}

}  // namespace pioblast::driver
