// MasterWorkerApp: the shared scaffold of every driver.
//
// Owns what used to be duplicated boilerplate in src/mpiblast and
// src/pioblast: launching the simulated job, the init stage (process
// startup + query broadcast), the final barrier, run summarization, wire
// accounting, and the RunMetrics registry whose snapshot becomes
// DriverResult::metrics.
//
// A driver subclasses it and overrides either master()/worker() (the
// default body() dispatches on rank) or body() itself when the protocol
// interleaves master and worker code textually (pioBLAST does, to keep its
// collective ordering in one place).
#pragma once

#include <memory>
#include <utility>

#include "blast/driver.h"
#include "blast/job.h"
#include "blast/query_set.h"
#include "driver/metrics.h"
#include "driver/scheduler.h"
#include "mpisim/exec.h"
#include "mpisim/fault.h"
#include "mpisim/process.h"
#include "mpisim/trace.h"
#include "pario/env.h"
#include "sim/cluster.h"

namespace pioblast::driver {

class MasterWorkerApp {
 public:
  MasterWorkerApp(const sim::ClusterConfig& cluster, int nprocs,
                  pario::ClusterStorage& storage, const blast::JobConfig& job,
                  std::shared_ptr<const blast::QuerySet> queries,
                  mpisim::Tracer* tracer);

  virtual ~MasterWorkerApp() = default;

  MasterWorkerApp(const MasterWorkerApp&) = delete;
  MasterWorkerApp& operator=(const MasterWorkerApp&) = delete;

  /// Launches the simulated job: init stage, body, metric trace marks,
  /// final barrier; then summarizes phases, folds wire accounting into the
  /// metrics, and returns the DriverResult (metrics snapshot included).
  blast::DriverResult run();

  /// Toggles the protocol verifier for the simulated job (on by default).
  /// When on, the run is audited for deadlock, collective order, tag
  /// registry conformance, typed payloads, and message leaks.
  void set_verify(bool verify) { verify_ = verify; }

  /// Arms fault injections (crashes, stragglers, drops) for the run. An
  /// active plan also switches the runtime and drivers into their
  /// fault-tolerant paths (flat collectives, master liveness tracking,
  /// degraded collective I/O). See mpisim/fault.h.
  void set_faults(mpisim::FaultPlan faults) { faults_ = std::move(faults); }

  /// Attaches mpicheck hooks (either may be null; neither is owned and
  /// both must outlive run()): a cooperative scheduler serializing the
  /// rank threads deterministically, and a happens-before race detector
  /// observing message edges and annotated shared-state accesses. See
  /// mpisim/hooks.h and src/mpicheck.
  void set_check(mpisim::ScheduleHook* schedule, mpisim::RaceHook* race) {
    schedule_ = schedule;
    race_ = race;
  }

  /// Selects the rank execution backend (mpisim/exec.h): one OS thread
  /// per rank (default) or stackful fibers on one scheduler thread — the
  /// latter is what makes multi-thousand-rank worlds practical. Driver
  /// output is identical under both.
  void set_exec(mpisim::ExecModel exec) { exec_ = exec; }

 protected:
  /// Driver protocol. The default dispatches to master()/worker();
  /// override body() directly for interleaved protocols.
  virtual void body(mpisim::Process& p);
  virtual void master(mpisim::Process& p);
  virtual void worker(mpisim::Process& p);

  int nprocs() const { return nprocs_; }
  int nworkers() const { return nprocs_ - 1; }
  const sim::ClusterConfig& cluster() const { return cluster_; }
  pario::ClusterStorage& storage() { return storage_; }
  pario::VirtualFS& shared() { return storage_.shared(); }
  const blast::JobConfig& job() const { return job_; }
  const blast::QuerySet& queries() const { return *queries_; }
  RunMetrics& metrics() { return metrics_; }
  const WorkerTopology& topology() const { return topology_; }

 private:
  /// Init stage ("other"): process startup cost, then the master reads the
  /// query file and broadcasts it (all ranks participate).
  void init_stage(mpisim::Process& p);

  const sim::ClusterConfig& cluster_;
  int nprocs_;
  pario::ClusterStorage& storage_;
  const blast::JobConfig& job_;
  std::shared_ptr<const blast::QuerySet> queries_;
  mpisim::Tracer* tracer_;
  bool verify_ = true;
  mpisim::FaultPlan faults_;
  mpisim::ScheduleHook* schedule_ = nullptr;
  mpisim::RaceHook* race_ = nullptr;
  mpisim::ExecModel exec_ = mpisim::ExecModel::kThreads;
  WorkerTopology topology_;
  RunMetrics metrics_;
};

}  // namespace pioblast::driver
