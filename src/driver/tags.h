// Central registry of every driver-level message tag.
//
// Historically mpiBLAST and pioBLAST each declared their own anonymous tag
// constants (1–4 and 10–13 respectively) in their translation units, so
// nothing stopped a new tag in one driver from colliding with the other —
// or with the runtime's internal collective band. Every driver tag now
// lives here, uniqueness and band membership are enforced at compile time,
// and a new protocol (fault injection, new storage backends) claims its tag
// by adding one enumerator to this file.
#pragma once

#include <span>
#include <string>

#include "mpisim/process.h"

namespace pioblast::driver {

/// All point-to-point tags the drivers use. Values are part of the trace
/// format (tests and tooling grep `tag=<n>` in timelines), so existing
/// numbers are kept stable.
enum Tag : int {
  // Shared work-queue protocol (driver/work_queue.h): both drivers'
  // master/worker scheduling loops run over these two tags.
  kTagWorkReq = 1,  ///< worker -> master: request the next task
  kTagAssign = 2,   ///< master -> worker: task assignment or retirement

  // mpiBLAST's serialized per-alignment result fetching (paper Figure 2,
  // right).
  kTagFetchReq = 3,   ///< master -> worker: fetch one subject's data
  kTagFetchResp = 4,  ///< worker -> master: defline + residues

  // pioBLAST's range distribution and parallel-output offset protocol.
  kTagRanges = 10,  ///< master -> worker: static virtual-fragment plan
  kTagSelect = 11,  ///< master -> worker: output buffer selections+offsets
};

// Fault-tolerance tags live in the runtime-internal band (>=
// mpisim::kDriverTagLimit), not here: the failure-detector notice
// (mpisim::kTagFaultNotice, base+32) is delivered by the simulator itself,
// and pario's liveness-sync tag (base+67, see pario/collective.cpp) rides
// with its other collective-internal tags. Both are registered with the
// verifier through the internal-tag channel, so the audit still covers
// them.

namespace detail {

constexpr int kAllTags[] = {kTagWorkReq, kTagAssign,  kTagFetchReq,
                            kTagFetchResp, kTagRanges, kTagSelect};

constexpr bool all_unique_and_in_band() {
  for (std::size_t i = 0; i < std::size(kAllTags); ++i) {
    if (kAllTags[i] < 0 || kAllTags[i] >= mpisim::kDriverTagLimit) return false;
    for (std::size_t j = i + 1; j < std::size(kAllTags); ++j) {
      if (kAllTags[i] == kAllTags[j]) return false;
    }
  }
  return true;
}

static_assert(all_unique_and_in_band(),
              "driver tags must be unique and below the runtime's internal "
              "collective tag band");

}  // namespace detail

/// Every registered driver tag, for seeding the protocol verifier's tag
/// audit (mpisim::VerifyOptions::registered_tags).
inline std::span<const int> registered_tags() { return detail::kAllTags; }

/// Enumerator name of a registered tag, or nullptr for unknown values.
constexpr const char* tag_name(int tag) {
  switch (tag) {
    case kTagWorkReq: return "kTagWorkReq";
    case kTagAssign: return "kTagAssign";
    case kTagFetchReq: return "kTagFetchReq";
    case kTagFetchResp: return "kTagFetchResp";
    case kTagRanges: return "kTagRanges";
    case kTagSelect: return "kTagSelect";
    default: return nullptr;
  }
}

/// Human-readable tag for diagnostics: "kTagAssign(2)" for registered
/// tags, the bare number otherwise.
inline std::string tag_label(int tag) {
  if (const char* name = tag_name(tag))
    return std::string(name) + "(" + std::to_string(tag) + ")";
  return std::to_string(tag);
}

}  // namespace pioblast::driver
