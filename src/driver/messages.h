// Driver protocol message types and their wire codecs.
//
// Every structured message the drivers exchange (beyond the generic work
// queue in work_queue.h) is a named struct here with a field-by-field
// WireCodec, replacing the anonymous Encoder/Decoder sequences that used to
// live inline in each driver.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "mpisim/wire.h"
#include "seqdb/partition.h"

namespace pioblast::driver {

/// Sentinel local index closing one query's fetch-serving loop.
inline constexpr std::uint32_t kEndOfQuery = 0xFFFFFFFFu;

/// mpiBLAST master -> worker: fetch the subject data of one cached hit.
///
/// Baseline-fidelity note: mpiBLAST 1.2.1's fetch request also carried the
/// query id, which the worker never needed (its serving loop is already
/// per-query). That redundant field has been dropped from the wire format;
/// the serialized round-trip structure — the bottleneck the paper measures
/// — is unchanged.
struct FetchRequest {
  std::uint32_t local_index = 0;  ///< index into the worker's per-query hits

  bool end_of_query() const { return local_index == kEndOfQuery; }
};

/// mpiBLAST worker -> master: one subject's defline and residues.
struct FetchResponse {
  std::string defline;
  std::uint64_t subject_len = 0;
  std::vector<std::uint8_t> residues;
};

/// pioBLAST master -> worker: the worker's static virtual-fragment plan.
struct RangeAssignment {
  std::uint32_t total_fragments = 0;  ///< job-wide virtual fragment count
  /// Collective-input rounds all ranks must join: the maximum per-worker
  /// range count (equals ceil(total/nworkers) for round-robin, but can be
  /// larger under speed-weighted plans).
  std::uint32_t rounds = 0;
  std::vector<seqdb::FragmentRange> ranges;  ///< this worker's, in order
};

/// pioBLAST master -> worker: which cached output buffers to write where.
struct OutputSelection {
  struct Slot {
    std::uint32_t local_index = 0;  ///< into the worker's per-query hits
    std::uint64_t offset = 0;       ///< absolute output-file byte offset
  };
  std::vector<Slot> slots;
};

}  // namespace pioblast::driver

namespace pioblast::mpisim {

template <>
struct WireCodec<driver::FetchRequest> {
  static void encode(Encoder& enc, const driver::FetchRequest& r) {
    enc.put(r.local_index);
  }
  static driver::FetchRequest decode(Decoder& dec) {
    return {dec.get<std::uint32_t>()};
  }
};

template <>
struct WireCodec<driver::FetchResponse> {
  static void encode(Encoder& enc, const driver::FetchResponse& r) {
    enc.put_string(r.defline);
    enc.put(r.subject_len);
    enc.put_bytes(r.residues);
  }
  static driver::FetchResponse decode(Decoder& dec) {
    driver::FetchResponse r;
    r.defline = dec.get_string();
    r.subject_len = dec.get<std::uint64_t>();
    r.residues = dec.get_bytes();
    return r;
  }
};

template <>
struct WireCodec<driver::RangeAssignment> {
  static void encode(Encoder& enc, const driver::RangeAssignment& a) {
    enc.put(a.total_fragments).put(a.rounds);
    enc.put(static_cast<std::uint32_t>(a.ranges.size()));
    for (const auto& r : a.ranges) seqdb::encode_range(enc, r);
  }
  static driver::RangeAssignment decode(Decoder& dec) {
    driver::RangeAssignment a;
    a.total_fragments = dec.get<std::uint32_t>();
    a.rounds = dec.get<std::uint32_t>();
    const auto count = dec.get<std::uint32_t>();
    a.ranges.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i)
      a.ranges.push_back(seqdb::decode_range(dec));
    return a;
  }
};

template <>
struct WireCodec<driver::OutputSelection> {
  static void encode(Encoder& enc, const driver::OutputSelection& s) {
    enc.put(static_cast<std::uint32_t>(s.slots.size()));
    for (const auto& slot : s.slots) enc.put(slot.local_index).put(slot.offset);
  }
  static driver::OutputSelection decode(Decoder& dec) {
    driver::OutputSelection s;
    const auto count = dec.get<std::uint32_t>();
    s.slots.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
      driver::OutputSelection::Slot slot;
      slot.local_index = dec.get<std::uint32_t>();
      slot.offset = dec.get<std::uint64_t>();
      s.slots.push_back(slot);
    }
    return s;
  }
};

}  // namespace pioblast::mpisim
