#include "driver/metrics.h"

#include <sstream>

#include "mpisim/hooks.h"

namespace pioblast::driver {

// The race-detector annotations below pass &mu_ as the protecting lock
// identity and run outside the critical section (a detector report
// unwinds the run; throwing with mu_ held could wedge it). Cross-rank
// counter bumps carry no happens-before edge — the lockset exemption is
// what keeps these legal, and mpicheck's tests assert exactly that.

void RunMetrics::add(std::string_view name, std::uint64_t delta) {
  mpisim::annotate_access(this, "RunMetrics::add", /*write=*/true, {&mu_});
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    counters_.emplace(std::string(name), delta);
  } else {
    it->second += delta;
  }
}

void RunMetrics::set(std::string_view name, std::uint64_t value) {
  mpisim::annotate_access(this, "RunMetrics::set", /*write=*/true, {&mu_});
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    counters_.emplace(std::string(name), value);
  } else {
    it->second = value;
  }
}

std::uint64_t RunMetrics::get(std::string_view name) const {
  mpisim::annotate_access(this, "RunMetrics::get", /*write=*/false, {&mu_});
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

std::map<std::string, std::uint64_t> RunMetrics::snapshot() const {
  mpisim::annotate_access(this, "RunMetrics::snapshot", /*write=*/false,
                          {&mu_});
  std::lock_guard<std::mutex> lock(mu_);
  return {counters_.begin(), counters_.end()};
}

std::string RunMetrics::to_json() const { return metrics_json(snapshot()); }

std::string metrics_json(const std::map<std::string, std::uint64_t>& counters) {
  std::ostringstream os;
  os << '{';
  bool first = true;
  for (const auto& [name, value] : counters) {
    if (!first) os << ',';
    first = false;
    os << '"' << name << "\":" << value;
  }
  os << '}';
  return os.str();
}

}  // namespace pioblast::driver
