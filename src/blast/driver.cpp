#include "blast/driver.h"

#include <algorithm>

namespace pioblast::blast {

PhaseBreakdown summarize_run(const mpisim::RunReport& report) {
  PhaseBreakdown out;
  out.total = report.makespan();
  for (const auto& rank : report.ranks) {
    if (rank.rank == 0) continue;  // master accounted separately
    out.copy_input = std::max(
        out.copy_input, rank.phases.get("copy") + rank.phases.get("input"));
    out.search = std::max(out.search, rank.phases.get("search"));
  }
  // Single-process fallback: use the only rank's buckets.
  if (report.ranks.size() == 1) {
    const auto& r = report.ranks.front();
    out.copy_input = r.phases.get("copy") + r.phases.get("input");
    out.search = r.phases.get("search");
  }
  out.output = report.phase_of(0, "output");
  // The buckets come from *different* ranks (slowest worker vs master), so
  // under extreme imbalance their raw sum can exceed the makespan. Clamp
  // sequentially so copy + search + output <= total always holds and each
  // bucket stays non-negative — the invariant the breakdown tests assert.
  out.copy_input = std::min(out.copy_input, out.total);
  out.search = std::min(out.search, out.total - out.copy_input);
  out.output = std::min(out.output, out.total - out.copy_input - out.search);
  out.other = std::max(0.0, out.total - out.copy_input - out.search - out.output);
  return out;
}

}  // namespace pioblast::blast
