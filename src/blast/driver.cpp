#include "blast/driver.h"

#include <algorithm>

namespace pioblast::blast {

PhaseBreakdown summarize_run(const mpisim::RunReport& report) {
  PhaseBreakdown out;
  out.total = report.makespan();
  for (const auto& rank : report.ranks) {
    if (rank.rank == 0) continue;  // master accounted separately
    out.copy_input = std::max(
        out.copy_input, rank.phases.get("copy") + rank.phases.get("input"));
    out.search = std::max(out.search, rank.phases.get("search"));
  }
  // Single-process fallback: use the only rank's buckets.
  if (report.ranks.size() == 1) {
    const auto& r = report.ranks.front();
    out.copy_input = r.phases.get("copy") + r.phases.get("input");
    out.search = r.phases.get("search");
  }
  out.output = report.phase_of(0, "output");
  out.other = std::max(0.0, out.total - out.copy_input - out.search - out.output);
  return out;
}

}  // namespace pioblast::blast
