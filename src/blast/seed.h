// Seed generation: the query word index.
//
// blastp: every overlapping 3-mer of the query contributes its
// *neighborhood* — all words whose BLOSUM62 score against the query word
// reaches threshold T — to a dense lookup table over the 24^3 word space.
// Scanning a subject sequence then probes the table once per position.
//
// blastn: exact 11-mers, 2-bit packed, in a hash map (the 4^11 word space
// is too sparse for a dense table at our database sizes).
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "blast/hsp.h"
#include "blast/scoring.h"

namespace pioblast::blast {

/// Lookup result: query positions whose neighborhood contains a word.
using PositionList = std::vector<std::uint32_t>;

/// Word index over one query sequence.
class WordIndex {
 public:
  /// Builds the index; `query` holds residue codes.
  WordIndex(std::span<const std::uint8_t> query, const ScoringMatrix& matrix,
            const SearchParams& params);

  int word_size() const { return word_size_; }

  /// Probes with the word starting at `subject + pos`. Returns nullptr when
  /// the word has no query neighbors. For DNA, words containing N never
  /// match.
  const PositionList* probe(const std::uint8_t* word) const;

  /// Number of distinct words indexed (diagnostics/tests).
  std::size_t distinct_words() const;

  /// Total (word, query position) entries (diagnostics/tests).
  std::size_t total_entries() const { return total_entries_; }

 private:
  void build_protein(std::span<const std::uint8_t> query,
                     const ScoringMatrix& matrix, int threshold);
  void build_dna(std::span<const std::uint8_t> query);

  std::uint32_t pack_protein(const std::uint8_t* w) const {
    return (static_cast<std::uint32_t>(w[0]) * 24u +
            static_cast<std::uint32_t>(w[1])) *
               24u +
           static_cast<std::uint32_t>(w[2]);
  }

  bool is_dna_ = false;
  int word_size_ = 3;
  std::size_t total_entries_ = 0;
  /// blastp: dense table over 24^3 packed words.
  std::vector<PositionList> dense_;
  /// blastn: packed 2-bit word -> positions.
  std::unordered_map<std::uint64_t, PositionList> sparse_;
};

}  // namespace pioblast::blast
