// Seed generation: the query word index.
//
// blastp: every overlapping 3-mer of the query contributes its
// *neighborhood* — all words whose BLOSUM62 score against the query word
// reaches threshold T — to a dense lookup table over the 24^3 word space.
// Scanning a subject sequence then probes the table once per position.
//
// blastn: exact 11-mers, 2-bit packed, in a hash map (the 4^11 word space
// is too sparse for a dense table at our database sizes).
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "blast/hsp.h"
#include "blast/scoring.h"

namespace pioblast::blast {

/// Lookup result: query positions whose neighborhood contains a word.
using PositionList = std::vector<std::uint32_t>;

/// Word index over one query sequence.
class WordIndex {
 public:
  /// Builds the index; `query` holds residue codes.
  WordIndex(std::span<const std::uint8_t> query, const ScoringMatrix& matrix,
            const SearchParams& params);

  int word_size() const { return word_size_; }

  /// Probes with the word starting at `subject + pos`. Returns nullptr when
  /// the word has no query neighbors. For DNA, words containing N never
  /// match.
  const PositionList* probe(const std::uint8_t* word) const;

  /// Number of distinct words indexed (diagnostics/tests).
  std::size_t distinct_words() const;

  /// Total (word, query position) entries (diagnostics/tests).
  std::size_t total_entries() const { return total_entries_; }

 private:
  void build_protein(std::span<const std::uint8_t> query,
                     const ScoringMatrix& matrix, int threshold);
  void build_dna(std::span<const std::uint8_t> query);

  std::uint32_t pack_protein(const std::uint8_t* w) const {
    return (static_cast<std::uint32_t>(w[0]) * 24u +
            static_cast<std::uint32_t>(w[1])) *
               24u +
           static_cast<std::uint32_t>(w[2]);
  }

  bool is_dna_ = false;
  int word_size_ = 3;
  std::size_t total_entries_ = 0;
  /// blastp: dense table over 24^3 packed words.
  std::vector<PositionList> dense_;
  /// blastn: packed 2-bit word -> positions.
  std::unordered_map<std::uint64_t, PositionList> sparse_;
};

/// Offset-compacted neighborhood lookup for the fast kernel: one contiguous
/// entry array of query positions plus per-word bucket offsets, replacing
/// WordIndex's vector-of-vectors (blastp) / hash map (blastn) with two flat
/// arrays the scan loop can probe with a single indexed load.
///
/// Built independently from the query (its own neighborhood enumeration,
/// not a copy of WordIndex's buckets) so the kernel property tests compare
/// two genuinely separate constructions. Bucket contents preserve the
/// map-based builder's order (query position ascending), which the fast
/// kernel relies on for seed-for-seed identical search order.
class FlatNeighborhood {
 public:
  FlatNeighborhood(std::span<const std::uint8_t> query,
                   const ScoringMatrix& matrix, const SearchParams& params);

  bool is_dna() const { return is_dna_; }
  int word_size() const { return word_size_; }

  /// blastp: neighbors of the packed base-24 word `code` (may be empty).
  std::span<const std::uint32_t> neighbors(std::uint32_t code) const {
    const std::uint32_t b = offsets_[code];
    const std::uint32_t e = offsets_[code + 1];
    return {entries_.data() + b, static_cast<std::size_t>(e - b)};
  }

  /// blastn: neighbors of the 2-bit packed word (open-addressing probe —
  /// usually one cache line; empty span when the word is absent).
  std::span<const std::uint32_t> neighbors_packed(std::uint64_t packed) const {
    if (slots_.empty()) return {};
    std::size_t i =
        static_cast<std::size_t>(packed * 0x9E3779B97F4A7C15ull) >> slot_shift_;
    while (true) {
      const Slot& s = slots_[i];
      if (s.bucket1 == 0) return {};
      if (s.key == packed) {
        const std::uint32_t b = offsets_[s.bucket1 - 1];
        const std::uint32_t e = offsets_[s.bucket1];
        return {entries_.data() + b, static_cast<std::size_t>(e - b)};
      }
      i = (i + 1) & slot_mask_;
    }
  }

  // Introspection for the property tests. `entries()` excludes the two
  // zero pads the constructor appends for the kernel's unconditional
  // two-entry bucket expansion.
  std::span<const std::uint32_t> offsets() const { return offsets_; }
  std::span<const std::uint32_t> entries() const {
    return {entries_.data(), entries_.size() - 2};
  }
  std::span<const std::uint64_t> keys() const { return keys_; }
  std::size_t total_entries() const { return entries_.size() - 2; }

  /// Raw entry storage including the two zero pads past the last bucket:
  /// the scan loop may read (but never use) up to two entries beyond a
  /// bucket's end before consulting its size.
  const std::uint32_t* entries_padded() const { return entries_.data(); }

  /// Largest bucket size (bounds the scan loop's expansion slack).
  std::size_t max_bucket() const { return max_bucket_; }

 private:
  void build_protein(std::span<const std::uint8_t> query,
                     const ScoringMatrix& matrix, int threshold);
  void build_dna(std::span<const std::uint8_t> query);

  bool is_dna_ = false;
  int word_size_ = 3;
  std::size_t max_bucket_ = 0;
  /// blastp: size 24^3 + 1; blastn: size keys_.size() + 1.
  std::vector<std::uint32_t> offsets_;
  /// Query positions, bucket-contiguous, plus two trailing zero pads.
  std::vector<std::uint32_t> entries_;
  std::vector<std::uint64_t> keys_;     ///< blastn: sorted distinct words

  /// blastn probe table: word -> bucket index + 1 (0 = empty slot).
  /// Power-of-two capacity >= 4x keys, linear probing, Fibonacci hashing.
  struct Slot {
    std::uint64_t key = 0;
    std::uint32_t bucket1 = 0;
  };
  std::vector<Slot> slots_;
  std::size_t slot_mask_ = 0;
  int slot_shift_ = 0;
};

}  // namespace pioblast::blast
