// Scoring matrices and Karlin–Altschul statistical parameters.
//
// Protein search uses BLOSUM62 over the 24-letter NCBIstdaa-like alphabet
// (see seqdb/alphabet.h); nucleotide search uses a match/mismatch matrix
// (+1/-3 by default, megablast-era blastn defaults). Karlin–Altschul
// (lambda, K, H) parameter sets are the published values for these scoring
// systems and drive bit scores and E-values (stats.h).
#pragma once

#include <array>
#include <cstdint>
#include <span>

#include "seqdb/alphabet.h"

namespace pioblast::blast {

/// Karlin–Altschul parameters for a scoring system.
struct KarlinParams {
  double lambda = 0.0;
  double K = 0.0;
  double H = 0.0;
};

/// Square scoring matrix over residue codes. Max alphabet is protein (24).
class ScoringMatrix {
 public:
  static constexpr int kMaxAlphabet = 24;

  /// BLOSUM62 with published ungapped/gapped(11,1) Karlin parameters.
  static ScoringMatrix blosum62();

  /// Nucleotide match/mismatch matrix; N scores `mismatch` against all.
  /// Karlin parameters are published values for +1/-3 (and approximations
  /// for other reward/penalty pairs).
  static ScoringMatrix dna(int match = 1, int mismatch = -3);

  /// Arbitrary matrix over `size` residue codes, `scores` row-major
  /// (size*size entries). Used by the kernel property/differential tests
  /// to drive the seed machinery with randomized scoring systems.
  static ScoringMatrix custom(int size, std::span<const int> scores,
                              const KarlinParams& ungapped,
                              const KarlinParams& gapped);

  int size() const { return size_; }

  int score(std::uint8_t a, std::uint8_t b) const {
    return table_[static_cast<std::size_t>(a) * kMaxAlphabet + b];
  }

  /// Row pointer (`row(a)[b] == score(a, b)`); the fast kernel hoists this
  /// out of its inner loops.
  const int* row(std::uint8_t a) const {
    return table_.data() + static_cast<std::size_t>(a) * kMaxAlphabet;
  }

  /// Highest score in row `a` (used for neighborhood-word pruning).
  int row_max(std::uint8_t a) const { return row_max_[a]; }

  const KarlinParams& ungapped() const { return ungapped_; }
  const KarlinParams& gapped() const { return gapped_; }

 private:
  ScoringMatrix() { table_.fill(0); row_max_.fill(0); }

  int size_ = 0;
  std::array<int, kMaxAlphabet * kMaxAlphabet> table_{};
  std::array<int, kMaxAlphabet> row_max_{};
  KarlinParams ungapped_{};
  KarlinParams gapped_{};
};

}  // namespace pioblast::blast
