// Search job description shared by the mpiBLAST and pioBLAST drivers.
#pragma once

#include <string>

#include "blast/hsp.h"
#include "seqdb/alphabet.h"

namespace pioblast::blast {

/// Report rendering style (blastall's default pairwise view vs -m8/-m9
/// tab-separated hit tables).
enum class OutputFormat {
  kPairwise = 0,
  kTabular = 1,
};

/// Everything a parallel search run needs to know. The same JobConfig can
/// be handed to either driver; both read the query file from the shared
/// file system and write the (identical) report to `output_path`.
struct JobConfig {
  std::string db_base = "nr";            ///< formatted database base name
  std::string db_title = "synthetic nr"; ///< title printed in query headers
  std::string query_path = "queries.fa"; ///< FASTA query set on the shared FS
  std::string output_path = "results.txt";
  SearchParams params = SearchParams::blastp_defaults();
  OutputFormat output_format = OutputFormat::kPairwise;
  /// Number of database fragments. For mpiBLAST this must match the
  /// physical fragment count produced by mpiformatdb; for pioBLAST it is
  /// the number of *virtual* fragments (0 = natural partitioning: one
  /// fragment per worker).
  int nfragments = 0;
};

}  // namespace pioblast::blast
