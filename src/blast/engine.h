// The BLAST search engine: query context + fragment search.
//
// For each (query, database fragment) pair the engine runs the classic
// pipeline: word scan over every subject sequence probing the query word
// index; two-hit filtering on diagonals (blastp); ungapped X-drop
// extension; gap-triggered gapped extension with traceback; containment
// culling; Karlin–Altschul E-value filtering against the *global* database
// statistics; and a final per-fragment hit-list cut (the "local cut" whose
// per-worker volume drives the paper's result-merging costs).
//
// The engine is purely deterministic: identical inputs produce identical
// HSP lists regardless of how the database was partitioned, which the
// integration tests assert.
#pragma once

#include <memory>
#include <span>
#include <string_view>
#include <vector>

#include "blast/extend.h"
#include "blast/hsp.h"
#include "blast/scoring.h"
#include "blast/seed.h"
#include "blast/stats.h"
#include "seqdb/formatdb.h"
#include "sim/cost_model.h"

namespace pioblast::blast {

/// Per-query precomputation shared across fragment searches: the word
/// index, the scoring matrix, and the query's length adjustment.
class QueryContext {
 public:
  QueryContext(std::uint32_t query_id, std::span<const std::uint8_t> residues,
               const SearchParams& params, const ScoringMatrix& matrix,
               const GlobalDbStats& db);

  std::uint32_t query_id() const { return query_id_; }
  std::span<const std::uint8_t> residues() const { return residues_; }
  const WordIndex& index() const { return index_; }
  const FlatNeighborhood& flat_index() const { return flat_; }
  const SelfScoreProfile& self_profile() const { return self_; }
  const ScoringMatrix& matrix() const { return matrix_; }
  const SearchParams& params() const { return params_; }
  const GlobalDbStats& db() const { return db_; }
  std::uint64_t length_adjust() const { return adjust_; }

  /// Minimum raw score that can reach the E-value cutoff (computed once;
  /// used to discard hopeless HSPs before E-value math).
  int cutoff_score() const { return cutoff_score_; }

 private:
  std::uint32_t query_id_;
  std::vector<std::uint8_t> residues_;
  SearchParams params_;
  const ScoringMatrix& matrix_;
  GlobalDbStats db_;
  WordIndex index_;
  FlatNeighborhood flat_;
  SelfScoreProfile self_;
  std::uint64_t adjust_ = 0;
  int cutoff_score_ = 0;
};

/// Which search-kernel implementation runs the fragment scan. Both produce
/// bit-identical HSP lists and counters; `kScalar` is the straightforward
/// reference implementation, `kFast` the batched/flat-table/SWAR rebuild
/// that the differential kernel tests check against it.
enum class KernelKind { kScalar, kFast };

/// Parses "scalar" / "fast" (aborts on anything else; used by CLI parsing).
KernelKind parse_kernel(std::string_view name);

/// Inverse of parse_kernel, for logs and test output.
const char* kernel_name(KernelKind kind);

/// Result of searching one query against one fragment.
struct FragmentSearchResult {
  std::vector<Hsp> hsps;          ///< sorted by Hsp::better, capped at hitlist_size
  sim::SearchCounters counters;   ///< feeds the virtual-time cost model
};

/// Searches `query` against every sequence of `fragment` (scalar kernel).
FragmentSearchResult search_fragment(const QueryContext& query,
                                     const seqdb::LoadedFragment& fragment);

/// Fast-kernel twin of search_fragment: same HSPs, same counters, computed
/// via the flat neighborhood table and SWAR/arena extension paths.
FragmentSearchResult search_fragment_fast(const QueryContext& query,
                                          const seqdb::LoadedFragment& fragment);

/// Searches every query of a batch against `fragment` with the chosen
/// kernel; results are index-aligned with `queries`. The fast kernel scans
/// and packs the fragment ONCE (FragmentIndex) and services the whole
/// batch from the precomputed word codes — the per-fragment cost the
/// scalar kernel pays per query. Output is bit-identical across kernels.
std::vector<FragmentSearchResult> search_fragment_batch(
    std::span<const QueryContext> queries,
    const seqdb::LoadedFragment& fragment, KernelKind kernel);

/// Builds the scoring matrix implied by `params`.
ScoringMatrix make_matrix(const SearchParams& params);

}  // namespace pioblast::blast
