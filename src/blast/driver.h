// Driver run results and phase summaries shared by both drivers.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "mpisim/runtime.h"

namespace pioblast::blast {

/// The paper's Table-1 style phase decomposition of one run.
struct PhaseBreakdown {
  double copy_input = 0;  ///< mpiBLAST fragment copy / pioBLAST parallel input
  double search = 0;      ///< BLAST kernel time (max over workers)
  double output = 0;      ///< result merging + formatting + file output
  double other = 0;       ///< init, query broadcast, residual waits
  double total = 0;       ///< job makespan

  double search_fraction() const { return total > 0 ? search / total : 0; }
  double nonsearch() const { return total - search; }
};

/// Derives the breakdown from per-rank phase buckets: data-staging and
/// search come from the slowest worker (they execute concurrently across
/// workers), output from the master's merge/output phase (it is the serial
/// section), and "other" absorbs the remainder of the makespan.
PhaseBreakdown summarize_run(const mpisim::RunReport& report);

/// What a driver hands back to benches and tests.
struct DriverResult {
  mpisim::RunReport report;
  PhaseBreakdown phases;
  std::uint64_t output_bytes = 0;
  std::uint64_t candidates_merged = 0;    ///< records screened by the master
  std::uint64_t alignments_reported = 0;  ///< alignments in the final output
  /// Protospec conformance summary ("CONFORM spec=... result=ok") when the
  /// run was monitored (--conformance); empty otherwise. A divergent run
  /// throws mpisim::VerifyError instead of returning.
  std::string conformance;
  /// Full structured-counter snapshot (driver::RunMetrics). Superset of the
  /// three legacy fields above, which are kept for existing callers.
  std::map<std::string, std::uint64_t> metrics;
};

}  // namespace pioblast::blast
