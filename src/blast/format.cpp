#include "blast/format.h"

#include <cmath>
#include <cstdio>

#include "blast/scoring.h"
#include "util/error.h"

namespace pioblast::blast {

std::string format_evalue(double e) {
  char buf[64];
  if (e <= 0 || e < 1e-180) {
    return "0.0";
  }
  if (e < 1e-4) {
    std::snprintf(buf, sizeof buf, "%.0e", e);
    // Normalize exponent form: "3e-31" not "3e-031".
    std::string s = buf;
    const auto epos = s.find('e');
    if (epos != std::string::npos) {
      std::string mant = s.substr(0, epos);
      std::string exp = s.substr(epos + 1);
      bool neg = false;
      std::size_t i = 0;
      if (!exp.empty() && (exp[0] == '-' || exp[0] == '+')) {
        neg = exp[0] == '-';
        i = 1;
      }
      while (i < exp.size() - 1 && exp[i] == '0') ++i;
      s = mant + "e" + (neg ? "-" : "") + exp.substr(i);
    }
    return s;
  }
  if (e < 0.1) {
    std::snprintf(buf, sizeof buf, "%.3f", e);
  } else if (e < 10) {
    std::snprintf(buf, sizeof buf, "%.1f", e);
  } else {
    std::snprintf(buf, sizeof buf, "%.0f", e);
  }
  return buf;
}

namespace {

/// Thousands-separated integer, NCBI header style ("1,986,684").
std::string with_commas(std::uint64_t v) {
  std::string digits = std::to_string(v);
  std::string out;
  const std::size_t n = digits.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (i > 0 && (n - i) % 3 == 0) out.push_back(',');
    out.push_back(digits[i]);
  }
  return out;
}

}  // namespace

std::string format_query_header(const seqdb::FastaRecord& query,
                                const std::string& db_title,
                                const GlobalDbStats& db,
                                std::uint64_t reported_alignments) {
  std::string out;
  out += "Query= " + query.defline() + "\n";
  out += "         (" + with_commas(query.sequence.size()) + " letters)\n\n";
  out += "Database: " + db_title + "\n";
  out += "           " + with_commas(db.num_seqs) + " sequences; " +
         with_commas(db.total_residues) + " total letters\n\n";
  out += "Sequences producing significant alignments: " +
         std::to_string(reported_alignments) + "\n\n";
  return out;
}

std::string format_no_hits() { return " ***** No hits found ******\n\n"; }

std::string_view defline_id(std::string_view defline) {
  const auto space = defline.find_first_of(" \t");
  return space == std::string_view::npos ? defline : defline.substr(0, space);
}

std::string format_tabular_query_header(const seqdb::FastaRecord& query,
                                        const std::string& db_title,
                                        std::uint64_t reported_alignments) {
  std::string out;
  out += "# Query: " + query.defline() + "\n";
  out += "# Database: " + db_title + "\n";
  out += "# Fields: Query id, Subject id, % identity, alignment length, "
         "mismatches, gap openings, q. start, q. end, s. start, s. end, "
         "e-value, bit score\n";
  out += "# " + std::to_string(reported_alignments) + " hits found\n";
  return out;
}

std::string format_tabular_line(const Hsp& hsp, std::string_view query_id,
                                std::string_view subject_defline) {
  // Gap openings = number of maximal indel runs in the traceback.
  std::uint32_t gap_openings = 0;
  bool in_gap = false;
  for (AlignOp op : hsp.ops) {
    if (op == AlignOp::kMatch) {
      in_gap = false;
    } else if (!in_gap) {
      ++gap_openings;
      in_gap = true;
    }
  }
  const std::uint32_t alen = std::max<std::uint32_t>(hsp.align_len, 1);
  const std::uint32_t mismatches = hsp.align_len - hsp.identities - hsp.gaps;
  const std::string_view subject_id = defline_id(subject_defline);
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "%.*s\t%.*s\t%.2f\t%u\t%u\t%u\t%u\t%u\t%llu\t%llu\t%s\t%.1f\n",
                static_cast<int>(query_id.size()), query_id.data(),
                static_cast<int>(subject_id.size()), subject_id.data(),
                100.0 * hsp.identities / alen, hsp.align_len, mismatches,
                gap_openings, hsp.qstart + 1, hsp.qend,
                static_cast<unsigned long long>(hsp.sstart + 1),
                static_cast<unsigned long long>(hsp.send),
                format_evalue(hsp.evalue).c_str(), hsp.bits);
  return buf;
}

std::string format_alignment(const Hsp& hsp, seqdb::SeqType type,
                             std::span<const std::uint8_t> query_residues,
                             std::span<const std::uint8_t> subject_residues,
                             std::string_view subject_defline,
                             std::uint64_t subject_length,
                             const ScoringMatrix& matrix) {
  std::string out;
  out += ">" + std::string(subject_defline) + "\n";
  out += "          Length = " + with_commas(subject_length) + "\n\n";

  char line[160];
  std::snprintf(line, sizeof line, " Score = %.1f bits (%d), Expect = %s\n",
                hsp.bits, hsp.score, format_evalue(hsp.evalue).c_str());
  out += line;
  const std::uint32_t alen = std::max<std::uint32_t>(hsp.align_len, 1);
  std::snprintf(line, sizeof line,
                " Identities = %u/%u (%u%%), Positives = %u/%u (%u%%), "
                "Gaps = %u/%u (%u%%)\n\n",
                hsp.identities, hsp.align_len, 100 * hsp.identities / alen,
                hsp.positives, hsp.align_len, 100 * hsp.positives / alen,
                hsp.gaps, hsp.align_len, 100 * hsp.gaps / alen);
  out += line;

  // Build the three gapped strings once, then emit 60-column panels.
  std::string qline, mline, sline;
  qline.reserve(hsp.ops.size());
  mline.reserve(hsp.ops.size());
  sline.reserve(hsp.ops.size());
  std::uint32_t qi = hsp.qstart;
  std::uint64_t si = hsp.sstart;
  for (AlignOp op : hsp.ops) {
    switch (op) {
      case AlignOp::kMatch: {
        const std::uint8_t a = query_residues[qi];
        const std::uint8_t b = subject_residues[si];
        const char qc = seqdb::decode_residue(type, a);
        const char sc = seqdb::decode_residue(type, b);
        qline.push_back(qc);
        sline.push_back(sc);
        if (a == b) {
          mline.push_back(type == seqdb::SeqType::kProtein ? qc : '|');
        } else if (type == seqdb::SeqType::kProtein && matrix.score(a, b) > 0) {
          mline.push_back('+');
        } else {
          mline.push_back(' ');
        }
        ++qi;
        ++si;
        break;
      }
      case AlignOp::kInsert:
        qline.push_back(seqdb::decode_residue(type, query_residues[qi]));
        mline.push_back(' ');
        sline.push_back('-');
        ++qi;
        break;
      case AlignOp::kDelete:
        qline.push_back('-');
        mline.push_back(' ');
        sline.push_back(seqdb::decode_residue(type, subject_residues[si]));
        ++si;
        break;
    }
  }

  constexpr std::size_t kWidth = 60;
  std::uint32_t qcursor = hsp.qstart;
  std::uint64_t scursor = hsp.sstart;
  for (std::size_t off = 0; off < qline.size(); off += kWidth) {
    const std::size_t len = std::min(kWidth, qline.size() - off);
    const std::string qseg = qline.substr(off, len);
    const std::string mseg = mline.substr(off, len);
    const std::string sseg = sline.substr(off, len);
    std::uint32_t qconsumed = 0;
    std::uint64_t sconsumed = 0;
    for (char c : qseg)
      if (c != '-') ++qconsumed;
    for (char c : sseg)
      if (c != '-') ++sconsumed;

    std::snprintf(line, sizeof line, "Query: %-5u %s %u\n", qcursor + 1,
                  qseg.c_str(), qcursor + qconsumed);
    out += line;
    out += "             " + mseg + "\n";
    std::snprintf(line, sizeof line, "Sbjct: %-5llu %s %llu\n",
                  static_cast<unsigned long long>(scursor + 1), sseg.c_str(),
                  static_cast<unsigned long long>(scursor + sconsumed));
    out += line;
    out += "\n";
    qcursor += qconsumed;
    scursor += sconsumed;
  }
  out += "\n";
  return out;
}

}  // namespace pioblast::blast
