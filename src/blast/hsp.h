// High-scoring segment pairs (HSPs) and search parameters.
#pragma once

#include <cstdint>
#include <vector>

#include "seqdb/alphabet.h"

namespace pioblast::blast {

/// One aligned operation run in an HSP traceback.
enum class AlignOp : std::uint8_t {
  kMatch = 0,   ///< residue aligned to residue (match or substitution)
  kInsert = 1,  ///< gap in subject (query residue consumed)
  kDelete = 2,  ///< gap in query (subject residue consumed)
};

/// A gapped local alignment between one query and one database sequence.
/// Coordinates are 0-based half-open over the *ungapped* sequences.
struct Hsp {
  std::uint32_t query_id = 0;          ///< index within the query set
  std::uint64_t subject_global_id = 0; ///< ordinal in the *global* database
  std::uint32_t qstart = 0, qend = 0;
  std::uint64_t sstart = 0, send = 0;
  std::int32_t score = 0;              ///< raw score
  double bits = 0.0;
  double evalue = 0.0;
  std::uint32_t identities = 0;
  std::uint32_t positives = 0;  ///< positions with positive substitution score
  std::uint32_t gaps = 0;       ///< gap characters in the alignment
  std::uint32_t align_len = 0;  ///< alignment columns
  std::vector<AlignOp> ops;     ///< traceback, query/subject start to end

  /// Deterministic strict weak order used everywhere results are ranked:
  /// better score first, then lower E-value, then query/subject/position
  /// tie-breaks so merged output is unique regardless of partitioning.
  static bool better(const Hsp& a, const Hsp& b) {
    if (a.score != b.score) return a.score > b.score;
    if (a.evalue != b.evalue) return a.evalue < b.evalue;
    if (a.subject_global_id != b.subject_global_id)
      return a.subject_global_id < b.subject_global_id;
    if (a.qstart != b.qstart) return a.qstart < b.qstart;
    return a.sstart < b.sstart;
  }
};

/// Search parameter set (NCBI blastall-style defaults).
struct SearchParams {
  seqdb::SeqType type = seqdb::SeqType::kProtein;
  int word_size = 3;          ///< 3 for blastp, 11 for blastn
  int threshold = 11;         ///< neighborhood word score threshold T (blastp)
  int two_hit_window = 40;    ///< A: max diagonal distance between seed pair
  int xdrop_ungapped = 16;    ///< raw-score drop-off for ungapped extension
  int xdrop_gapped = 38;      ///< raw-score drop-off for gapped extension
  int gap_open = 11;
  int gap_extend = 1;
  int gap_trigger = 41;       ///< min ungapped score to attempt gapped extension
  int cutoff_score_min = 25;  ///< discard HSPs below this raw score outright
  double evalue_cutoff = 10.0;
  int hitlist_size = 500;     ///< max alignments reported per query (local cut)
  int dna_match = 1;
  int dna_mismatch = -3;

  static SearchParams blastp_defaults();
  static SearchParams blastn_defaults();
};

}  // namespace pioblast::blast
