#include "blast/scoring.h"

#include <algorithm>

namespace pioblast::blast {

namespace {

// BLOSUM62 in kProteinLetters order: ARNDCQEGHILKMFPSTWYVBZX*.
constexpr int kB62[24][24] = {
    /*A*/ { 4,-1,-2,-2, 0,-1,-1, 0,-2,-1,-1,-1,-1,-2,-1, 1, 0,-3,-2, 0,-2,-1, 0,-4},
    /*R*/ {-1, 5, 0,-2,-3, 1, 0,-2, 0,-3,-2, 2,-1,-3,-2,-1,-1,-3,-2,-3,-1, 0,-1,-4},
    /*N*/ {-2, 0, 6, 1,-3, 0, 0, 0, 1,-3,-3, 0,-2,-3,-2, 1, 0,-4,-2,-3, 3, 0,-1,-4},
    /*D*/ {-2,-2, 1, 6,-3, 0, 2,-1,-1,-3,-4,-1,-3,-3,-1, 0,-1,-4,-3,-3, 4, 1,-1,-4},
    /*C*/ { 0,-3,-3,-3, 9,-3,-4,-3,-3,-1,-1,-3,-1,-2,-3,-1,-1,-2,-2,-1,-3,-3,-2,-4},
    /*Q*/ {-1, 1, 0, 0,-3, 5, 2,-2, 0,-3,-2, 1, 0,-3,-1, 0,-1,-2,-1,-2, 0, 3,-1,-4},
    /*E*/ {-1, 0, 0, 2,-4, 2, 5,-2, 0,-3,-3, 1,-2,-3,-1, 0,-1,-3,-2,-2, 1, 4,-1,-4},
    /*G*/ { 0,-2, 0,-1,-3,-2,-2, 6,-2,-4,-4,-2,-3,-3,-2, 0,-2,-2,-3,-3,-1,-2,-1,-4},
    /*H*/ {-2, 0, 1,-1,-3, 0, 0,-2, 8,-3,-3,-1,-2,-1,-2,-1,-2,-2, 2,-3, 0, 0,-1,-4},
    /*I*/ {-1,-3,-3,-3,-1,-3,-3,-4,-3, 4, 2,-3, 1, 0,-3,-2,-1,-3,-1, 3,-3,-3,-1,-4},
    /*L*/ {-1,-2,-3,-4,-1,-2,-3,-4,-3, 2, 4,-2, 2, 0,-3,-2,-1,-2,-1, 1,-4,-3,-1,-4},
    /*K*/ {-1, 2, 0,-1,-3, 1, 1,-2,-1,-3,-2, 5,-1,-3,-1, 0,-1,-3,-2,-2, 0, 1,-1,-4},
    /*M*/ {-1,-1,-2,-3,-1, 0,-2,-3,-2, 1, 2,-1, 5, 0,-2,-1,-1,-1,-1, 1,-3,-1,-1,-4},
    /*F*/ {-2,-3,-3,-3,-2,-3,-3,-3,-1, 0, 0,-3, 0, 6,-4,-2,-2, 1, 3,-1,-3,-3,-1,-4},
    /*P*/ {-1,-2,-2,-1,-3,-1,-1,-2,-2,-3,-3,-1,-2,-4, 7,-1,-1,-4,-3,-2,-2,-1,-2,-4},
    /*S*/ { 1,-1, 1, 0,-1, 0, 0, 0,-1,-2,-2, 0,-1,-2,-1, 4, 1,-3,-2,-2, 0, 0, 0,-4},
    /*T*/ { 0,-1, 0,-1,-1,-1,-1,-2,-2,-1,-1,-1,-1,-2,-1, 1, 5,-2,-2, 0,-1,-1, 0,-4},
    /*W*/ {-3,-3,-4,-4,-2,-2,-3,-2,-2,-3,-2,-3,-1, 1,-4,-3,-2,11, 2,-3,-4,-3,-2,-4},
    /*Y*/ {-2,-2,-2,-3,-2,-1,-2,-3, 2,-1,-1,-2,-1, 3,-3,-2,-2, 2, 7,-1,-3,-2,-1,-4},
    /*V*/ { 0,-3,-3,-3,-1,-2,-2,-3,-3, 3, 1,-2, 1,-1,-2,-2, 0,-3,-1, 4,-3,-2,-1,-4},
    /*B*/ {-2,-1, 3, 4,-3, 0, 1,-1, 0,-3,-4, 0,-3,-3,-2, 0,-1,-4,-3,-3, 4, 1,-1,-4},
    /*Z*/ {-1, 0, 0, 1,-3, 3, 4,-2, 0,-3,-3, 1,-1,-3,-1, 0,-1,-3,-2,-2, 1, 4,-1,-4},
    /*X*/ { 0,-1,-1,-1,-2,-1,-1,-1,-1,-1,-1,-1,-1,-1,-2, 0, 0,-2,-1,-1,-1,-1,-1,-4},
    /***/ {-4,-4,-4,-4,-4,-4,-4,-4,-4,-4,-4,-4,-4,-4,-4,-4,-4,-4,-4,-4,-4,-4,-4, 1},
};

}  // namespace

ScoringMatrix ScoringMatrix::blosum62() {
  ScoringMatrix m;
  m.size_ = 24;
  for (int a = 0; a < 24; ++a) {
    int best = kB62[a][0];
    for (int b = 0; b < 24; ++b) {
      m.table_[static_cast<std::size_t>(a) * kMaxAlphabet + b] = kB62[a][b];
      best = std::max(best, kB62[a][b]);
    }
    m.row_max_[static_cast<std::size_t>(a)] = best;
  }
  // Published Karlin–Altschul values for BLOSUM62 (NCBI blast_stat.c).
  m.ungapped_ = {0.3176, 0.134, 0.4012};
  m.gapped_ = {0.267, 0.041, 0.14};  // gap open 11, gap extend 1
  return m;
}

ScoringMatrix ScoringMatrix::dna(int match, int mismatch) {
  ScoringMatrix m;
  m.size_ = 5;  // ACGTN
  for (int a = 0; a < 5; ++a) {
    for (int b = 0; b < 5; ++b) {
      const bool n = (a == 4 || b == 4);
      m.table_[static_cast<std::size_t>(a) * kMaxAlphabet + b] =
          (!n && a == b) ? match : mismatch;
    }
    m.row_max_[static_cast<std::size_t>(a)] = (a == 4) ? mismatch : match;
  }
  // Published values for +1/-3 (NCBI blast_stat.c); other reward/penalty
  // pairs reuse them as approximations — fine for relative comparisons.
  m.ungapped_ = {1.374, 0.711, 1.31};
  m.gapped_ = {1.28, 0.46, 0.85};  // gap open 5, gap extend 2
  return m;
}

ScoringMatrix ScoringMatrix::custom(int size, std::span<const int> scores,
                                    const KarlinParams& ungapped,
                                    const KarlinParams& gapped) {
  ScoringMatrix m;
  m.size_ = size;
  for (int a = 0; a < size; ++a) {
    int best = scores[static_cast<std::size_t>(a) * static_cast<std::size_t>(size)];
    for (int b = 0; b < size; ++b) {
      const int s = scores[static_cast<std::size_t>(a) *
                               static_cast<std::size_t>(size) +
                           static_cast<std::size_t>(b)];
      m.table_[static_cast<std::size_t>(a) * kMaxAlphabet + b] = s;
      best = std::max(best, s);
    }
    m.row_max_[static_cast<std::size_t>(a)] = best;
  }
  m.ungapped_ = ungapped;
  m.gapped_ = gapped;
  return m;
}

}  // namespace pioblast::blast
