#include "blast/seed.h"

#include <algorithm>
#include <bit>

#include "util/error.h"

namespace pioblast::blast {

SearchParams SearchParams::blastp_defaults() {
  SearchParams p;
  p.type = seqdb::SeqType::kProtein;
  p.word_size = 3;
  p.threshold = 11;
  p.two_hit_window = 40;
  p.xdrop_ungapped = 16;
  p.xdrop_gapped = 38;
  p.gap_open = 11;
  p.gap_extend = 1;
  p.gap_trigger = 41;
  p.cutoff_score_min = 25;
  return p;
}

SearchParams SearchParams::blastn_defaults() {
  SearchParams p;
  p.type = seqdb::SeqType::kNucleotide;
  p.word_size = 11;
  p.threshold = 0;      // exact words
  p.two_hit_window = 0; // blastn extends on single hits
  p.xdrop_ungapped = 20;
  p.xdrop_gapped = 30;
  p.gap_open = 5;
  p.gap_extend = 2;
  p.gap_trigger = 18;
  p.cutoff_score_min = 14;
  return p;
}

WordIndex::WordIndex(std::span<const std::uint8_t> query,
                     const ScoringMatrix& matrix, const SearchParams& params)
    : is_dna_(params.type == seqdb::SeqType::kNucleotide),
      word_size_(params.word_size) {
  PIOBLAST_CHECK_MSG(!is_dna_ || (word_size_ >= 4 && word_size_ <= 31),
                     "blastn word size must be in [4,31]");
  PIOBLAST_CHECK_MSG(is_dna_ || word_size_ == 3, "blastp word size must be 3");
  if (query.size() < static_cast<std::size_t>(word_size_)) return;
  if (is_dna_) {
    build_dna(query);
  } else {
    build_protein(query, matrix, params.threshold);
  }
}

void WordIndex::build_protein(std::span<const std::uint8_t> query,
                              const ScoringMatrix& matrix, int threshold) {
  dense_.assign(24u * 24u * 24u, {});
  const int n = static_cast<int>(query.size()) - 2;
  for (int pos = 0; pos < n; ++pos) {
    const std::uint8_t q0 = query[static_cast<std::size_t>(pos)];
    const std::uint8_t q1 = query[static_cast<std::size_t>(pos) + 1];
    const std::uint8_t q2 = query[static_cast<std::size_t>(pos) + 2];
    // Enumerate neighborhood words with branch-and-bound: a partial score
    // plus the remaining rows' maxima must still be able to reach T.
    const int max1 = matrix.row_max(q1);
    const int max2 = matrix.row_max(q2);
    for (std::uint8_t a = 0; a < 24; ++a) {
      const int s0 = matrix.score(q0, a);
      if (s0 + max1 + max2 < threshold) continue;
      for (std::uint8_t b = 0; b < 24; ++b) {
        const int s01 = s0 + matrix.score(q1, b);
        if (s01 + max2 < threshold) continue;
        for (std::uint8_t c = 0; c < 24; ++c) {
          if (s01 + matrix.score(q2, c) < threshold) continue;
          const std::uint32_t packed = (static_cast<std::uint32_t>(a) * 24u +
                                        b) * 24u + c;
          dense_[packed].push_back(static_cast<std::uint32_t>(pos));
          ++total_entries_;
        }
      }
    }
  }
}

void WordIndex::build_dna(std::span<const std::uint8_t> query) {
  const int w = word_size_;
  const std::uint64_t mask = (1ULL << (2 * w)) - 1;
  std::uint64_t packed = 0;
  int valid = 0;  // consecutive non-N residues accumulated
  for (std::size_t pos = 0; pos < query.size(); ++pos) {
    const std::uint8_t code = query[pos];
    if (code >= 4) {  // N or other ambiguity: restart the window
      valid = 0;
      packed = 0;
      continue;
    }
    packed = ((packed << 2) | code) & mask;
    if (++valid >= w) {
      sparse_[packed].push_back(static_cast<std::uint32_t>(pos + 1 - static_cast<std::size_t>(w)));
      ++total_entries_;
    }
  }
}

const PositionList* WordIndex::probe(const std::uint8_t* word) const {
  if (!is_dna_) {
    if (dense_.empty()) return nullptr;
    const PositionList& list = dense_[pack_protein(word)];
    return list.empty() ? nullptr : &list;
  }
  std::uint64_t packed = 0;
  for (int i = 0; i < word_size_; ++i) {
    if (word[i] >= 4) return nullptr;  // word contains N
    packed = (packed << 2) | word[i];
  }
  const auto it = sparse_.find(packed);
  return it == sparse_.end() ? nullptr : &it->second;
}

std::size_t WordIndex::distinct_words() const {
  if (is_dna_) return sparse_.size();
  std::size_t count = 0;
  for (const auto& list : dense_)
    if (!list.empty()) ++count;
  return count;
}

FlatNeighborhood::FlatNeighborhood(std::span<const std::uint8_t> query,
                                   const ScoringMatrix& matrix,
                                   const SearchParams& params)
    : is_dna_(params.type == seqdb::SeqType::kNucleotide),
      word_size_(params.word_size) {
  PIOBLAST_CHECK_MSG(!is_dna_ || (word_size_ >= 4 && word_size_ <= 31),
                     "blastn word size must be in [4,31]");
  PIOBLAST_CHECK_MSG(is_dna_ || word_size_ == 3, "blastp word size must be 3");
  if (is_dna_) {
    build_dna(query);
  } else {
    build_protein(query, matrix, params.threshold);
  }
  // Two zero pads past the last bucket so the scan loop can expand small
  // buckets with unconditional two-entry copies.
  entries_.push_back(0);
  entries_.push_back(0);
  for (std::size_t k = 0; k + 1 < offsets_.size(); ++k)
    max_bucket_ = std::max(max_bucket_,
                           static_cast<std::size_t>(offsets_[k + 1] - offsets_[k]));
}

void FlatNeighborhood::build_protein(std::span<const std::uint8_t> query,
                                     const ScoringMatrix& matrix,
                                     int threshold) {
  constexpr std::uint32_t kWords = 24u * 24u * 24u;
  offsets_.assign(kWords + 1, 0);
  if (query.size() < 3) return;

  // One enumeration pass into (word, pos) pairs, then a stable counting
  // sort by word. Pairs are generated with pos ascending, so each bucket
  // ends up pos-ascending — the same order the map-based builder appends.
  struct Pair {
    std::uint32_t word;
    std::uint32_t pos;
  };
  std::vector<Pair> pairs;
  const int n = static_cast<int>(query.size()) - 2;
  for (int pos = 0; pos < n; ++pos) {
    const std::uint8_t q0 = query[static_cast<std::size_t>(pos)];
    const std::uint8_t q1 = query[static_cast<std::size_t>(pos) + 1];
    const std::uint8_t q2 = query[static_cast<std::size_t>(pos) + 2];
    const int* row0 = matrix.row(q0);
    const int* row1 = matrix.row(q1);
    const int* row2 = matrix.row(q2);
    const int max1 = matrix.row_max(q1);
    const int max2 = matrix.row_max(q2);
    for (std::uint8_t a = 0; a < 24; ++a) {
      const int s0 = row0[a];
      if (s0 + max1 + max2 < threshold) continue;
      for (std::uint8_t b = 0; b < 24; ++b) {
        const int s01 = s0 + row1[b];
        if (s01 + max2 < threshold) continue;
        const std::uint32_t ab = (static_cast<std::uint32_t>(a) * 24u + b) * 24u;
        for (std::uint8_t c = 0; c < 24; ++c) {
          if (s01 + row2[c] < threshold) continue;
          pairs.push_back({ab + c, static_cast<std::uint32_t>(pos)});
        }
      }
    }
  }

  for (const Pair& pr : pairs) ++offsets_[pr.word + 1];
  for (std::uint32_t w = 0; w < kWords; ++w) offsets_[w + 1] += offsets_[w];
  entries_.resize(pairs.size());
  std::vector<std::uint32_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (const Pair& pr : pairs) entries_[cursor[pr.word]++] = pr.pos;
}

void FlatNeighborhood::build_dna(std::span<const std::uint8_t> query) {
  const int w = word_size_;
  offsets_.assign(1, 0);
  if (query.size() < static_cast<std::size_t>(w)) return;

  const std::uint64_t mask = (1ULL << (2 * w)) - 1;
  struct Pair {
    std::uint64_t word;
    std::uint32_t pos;
  };
  std::vector<Pair> pairs;
  std::uint64_t packed = 0;
  int valid = 0;
  for (std::size_t pos = 0; pos < query.size(); ++pos) {
    const std::uint8_t code = query[pos];
    if (code >= 4) {
      valid = 0;
      packed = 0;
      continue;
    }
    packed = ((packed << 2) | code) & mask;
    if (++valid >= w) {
      pairs.push_back({packed, static_cast<std::uint32_t>(
                                   pos + 1 - static_cast<std::size_t>(w))});
    }
  }
  if (pairs.empty()) return;

  keys_.reserve(pairs.size());
  for (const Pair& pr : pairs) keys_.push_back(pr.word);
  std::sort(keys_.begin(), keys_.end());
  keys_.erase(std::unique(keys_.begin(), keys_.end()), keys_.end());

  offsets_.assign(keys_.size() + 1, 0);
  auto bucket_of = [this](std::uint64_t word) {
    return static_cast<std::size_t>(
        std::lower_bound(keys_.begin(), keys_.end(), word) - keys_.begin());
  };
  for (const Pair& pr : pairs) ++offsets_[bucket_of(pr.word) + 1];
  for (std::size_t k = 0; k < keys_.size(); ++k) offsets_[k + 1] += offsets_[k];
  entries_.resize(pairs.size());
  std::vector<std::uint32_t> cursor(offsets_.begin(), offsets_.end() - 1);
  // Pairs are pos-ascending, so the stable fill keeps every bucket in the
  // same order WordIndex's per-word push_back produces.
  for (const Pair& pr : pairs) entries_[cursor[bucket_of(pr.word)]++] = pr.pos;

  // Probe table for the scan loop: at most ~25% load so misses (the common
  // case — most subject words have no query neighbors) terminate on the
  // first or second slot.
  std::size_t cap = 16;
  while (cap < keys_.size() * 4) cap <<= 1;
  slots_.assign(cap, Slot{});
  slot_mask_ = cap - 1;
  slot_shift_ = 64 - std::countr_zero(cap);
  for (std::size_t k = 0; k < keys_.size(); ++k) {
    std::size_t i =
        static_cast<std::size_t>(keys_[k] * 0x9E3779B97F4A7C15ull) >>
        slot_shift_;
    while (slots_[i].bucket1 != 0) i = (i + 1) & slot_mask_;
    slots_[i] = {keys_[k], static_cast<std::uint32_t>(k + 1)};
  }
}

}  // namespace pioblast::blast
