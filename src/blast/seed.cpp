#include "blast/seed.h"

#include "util/error.h"

namespace pioblast::blast {

SearchParams SearchParams::blastp_defaults() {
  SearchParams p;
  p.type = seqdb::SeqType::kProtein;
  p.word_size = 3;
  p.threshold = 11;
  p.two_hit_window = 40;
  p.xdrop_ungapped = 16;
  p.xdrop_gapped = 38;
  p.gap_open = 11;
  p.gap_extend = 1;
  p.gap_trigger = 41;
  p.cutoff_score_min = 25;
  return p;
}

SearchParams SearchParams::blastn_defaults() {
  SearchParams p;
  p.type = seqdb::SeqType::kNucleotide;
  p.word_size = 11;
  p.threshold = 0;      // exact words
  p.two_hit_window = 0; // blastn extends on single hits
  p.xdrop_ungapped = 20;
  p.xdrop_gapped = 30;
  p.gap_open = 5;
  p.gap_extend = 2;
  p.gap_trigger = 18;
  p.cutoff_score_min = 14;
  return p;
}

WordIndex::WordIndex(std::span<const std::uint8_t> query,
                     const ScoringMatrix& matrix, const SearchParams& params)
    : is_dna_(params.type == seqdb::SeqType::kNucleotide),
      word_size_(params.word_size) {
  PIOBLAST_CHECK_MSG(!is_dna_ || (word_size_ >= 4 && word_size_ <= 31),
                     "blastn word size must be in [4,31]");
  PIOBLAST_CHECK_MSG(is_dna_ || word_size_ == 3, "blastp word size must be 3");
  if (query.size() < static_cast<std::size_t>(word_size_)) return;
  if (is_dna_) {
    build_dna(query);
  } else {
    build_protein(query, matrix, params.threshold);
  }
}

void WordIndex::build_protein(std::span<const std::uint8_t> query,
                              const ScoringMatrix& matrix, int threshold) {
  dense_.assign(24u * 24u * 24u, {});
  const int n = static_cast<int>(query.size()) - 2;
  for (int pos = 0; pos < n; ++pos) {
    const std::uint8_t q0 = query[static_cast<std::size_t>(pos)];
    const std::uint8_t q1 = query[static_cast<std::size_t>(pos) + 1];
    const std::uint8_t q2 = query[static_cast<std::size_t>(pos) + 2];
    // Enumerate neighborhood words with branch-and-bound: a partial score
    // plus the remaining rows' maxima must still be able to reach T.
    const int max1 = matrix.row_max(q1);
    const int max2 = matrix.row_max(q2);
    for (std::uint8_t a = 0; a < 24; ++a) {
      const int s0 = matrix.score(q0, a);
      if (s0 + max1 + max2 < threshold) continue;
      for (std::uint8_t b = 0; b < 24; ++b) {
        const int s01 = s0 + matrix.score(q1, b);
        if (s01 + max2 < threshold) continue;
        for (std::uint8_t c = 0; c < 24; ++c) {
          if (s01 + matrix.score(q2, c) < threshold) continue;
          const std::uint32_t packed = (static_cast<std::uint32_t>(a) * 24u +
                                        b) * 24u + c;
          dense_[packed].push_back(static_cast<std::uint32_t>(pos));
          ++total_entries_;
        }
      }
    }
  }
}

void WordIndex::build_dna(std::span<const std::uint8_t> query) {
  const int w = word_size_;
  const std::uint64_t mask = (1ULL << (2 * w)) - 1;
  std::uint64_t packed = 0;
  int valid = 0;  // consecutive non-N residues accumulated
  for (std::size_t pos = 0; pos < query.size(); ++pos) {
    const std::uint8_t code = query[pos];
    if (code >= 4) {  // N or other ambiguity: restart the window
      valid = 0;
      packed = 0;
      continue;
    }
    packed = ((packed << 2) | code) & mask;
    if (++valid >= w) {
      sparse_[packed].push_back(static_cast<std::uint32_t>(pos + 1 - static_cast<std::size_t>(w)));
      ++total_entries_;
    }
  }
}

const PositionList* WordIndex::probe(const std::uint8_t* word) const {
  if (!is_dna_) {
    if (dense_.empty()) return nullptr;
    const PositionList& list = dense_[pack_protein(word)];
    return list.empty() ? nullptr : &list;
  }
  std::uint64_t packed = 0;
  for (int i = 0; i < word_size_; ++i) {
    if (word[i] >= 4) return nullptr;  // word contains N
    packed = (packed << 2) | word[i];
  }
  const auto it = sparse_.find(packed);
  return it == sparse_.end() ? nullptr : &it->second;
}

std::size_t WordIndex::distinct_words() const {
  if (is_dna_) return sparse_.size();
  std::size_t count = 0;
  for (const auto& list : dense_)
    if (!list.empty()) ++count;
  return count;
}

}  // namespace pioblast::blast
