#include "blast/fragment_index.h"

#include "util/error.h"

namespace pioblast::blast {

FragmentIndex::FragmentIndex(const seqdb::LoadedFragment& fragment,
                             const SearchParams& params)
    : is_dna_(params.type == seqdb::SeqType::kNucleotide),
      word_size_(params.word_size) {
  PIOBLAST_CHECK_MSG(!is_dna_ || (word_size_ >= 4 && word_size_ <= 31),
                     "blastn word size must be in [4,31]");
  PIOBLAST_CHECK_MSG(is_dna_ || word_size_ == 3, "blastp word size must be 3");

  const std::uint64_t nseqs = fragment.num_seqs();
  starts_.reserve(nseqs + 1);
  starts_.push_back(0);
  const std::size_t w = static_cast<std::size_t>(word_size_);

  // Size the code array up front: growing it sequence by sequence with
  // exact-fit reserves would reallocate (and copy the whole prefix) on
  // every sequence, turning the build quadratic in fragment size.
  std::size_t total_words = 0;
  for (std::uint64_t local = 0; local < nseqs; ++local) {
    const std::size_t slen = fragment.sequence(local).size();
    total_words += slen >= w ? slen - w + 1 : 0;
  }
  if (is_dna_) {
    codes64_.reserve(total_words);
  } else {
    codes32_.reserve(total_words);
  }

  for (std::uint64_t local = 0; local < nseqs; ++local) {
    const std::span<const std::uint8_t> s = fragment.sequence(local);
    const std::size_t nwords = s.size() >= w ? s.size() - w + 1 : 0;
    if (!is_dna_) {
      if (nwords > 0) {
        // Rolling base-24 pack: drop the leading residue, shift, append.
        std::uint32_t code = (static_cast<std::uint32_t>(s[0]) * 24u +
                              static_cast<std::uint32_t>(s[1])) *
                                 24u +
                             static_cast<std::uint32_t>(s[2]);
        codes32_.push_back(code);
        for (std::size_t pos = 1; pos < nwords; ++pos) {
          code = (code - static_cast<std::uint32_t>(s[pos - 1]) * 576u) * 24u +
                 static_cast<std::uint32_t>(s[pos + 2]);
          codes32_.push_back(code);
        }
      }
      starts_.push_back(codes32_.size());
    } else {
      const std::size_t base = codes64_.size();
      codes64_.resize(base + nwords, kInvalidWord);
      const std::uint64_t mask = (1ULL << (2 * word_size_)) - 1;
      std::uint64_t packed = 0;
      int valid = 0;
      for (std::size_t i = 0; i < s.size(); ++i) {
        const std::uint8_t code = s[i];
        if (code >= 4) {  // ambiguity: restart the window
          valid = 0;
          packed = 0;
          continue;
        }
        packed = ((packed << 2) | code) & mask;
        if (++valid >= word_size_) codes64_[base + i + 1 - w] = packed;
      }
      starts_.push_back(codes64_.size());
    }
  }
}

}  // namespace pioblast::blast
