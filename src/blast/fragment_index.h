// Per-assignment database-fragment index for the fast kernel.
//
// The scalar engine re-derives the packed word at every subject position
// for every query (Q scans of the fragment per batch). The fast kernel
// inverts that: the fragment is scanned ONCE per assignment and the packed
// word codes are materialized per position, so servicing a whole query
// batch is Q probes of each precomputed code instead of Q re-packings —
// the Nguyen & Lavenier "index the database once, batch the queries"
// recipe adapted to our word-scan structure.
//
// Protein codes are base-24 packed 3-mers (fit u32); nucleotide codes are
// 2-bit packed words up to 31-mers (u64), with a sentinel at positions
// whose window contains an ambiguous residue — exactly the positions the
// scalar probe() rejects.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "blast/hsp.h"
#include "seqdb/formatdb.h"

namespace pioblast::blast {

class FragmentIndex {
 public:
  /// Word at this position straddles an ambiguous residue (blastn only).
  static constexpr std::uint64_t kInvalidWord = ~0ULL;

  FragmentIndex(const seqdb::LoadedFragment& fragment,
                const SearchParams& params);

  bool is_dna() const { return is_dna_; }
  int word_size() const { return word_size_; }
  std::uint64_t num_seqs() const { return starts_.size() - 1; }

  /// Packed words of subject `local`, one per word start position
  /// (size max(0, slen - word_size + 1)). Protein only.
  std::span<const std::uint32_t> codes32(std::uint64_t local) const {
    const std::uint64_t b = starts_[local];
    return {codes32_.data() + b,
            static_cast<std::size_t>(starts_[local + 1] - b)};
  }

  /// Same for nucleotide fragments (kInvalidWord marks ambiguous windows).
  std::span<const std::uint64_t> codes64(std::uint64_t local) const {
    const std::uint64_t b = starts_[local];
    return {codes64_.data() + b,
            static_cast<std::size_t>(starts_[local + 1] - b)};
  }

  /// Total positions indexed (diagnostics/tests).
  std::uint64_t positions() const {
    return is_dna_ ? codes64_.size() : codes32_.size();
  }

 private:
  bool is_dna_;
  int word_size_;
  std::vector<std::uint64_t> starts_;  ///< per-subject code offsets, size n+1
  std::vector<std::uint32_t> codes32_;
  std::vector<std::uint64_t> codes64_;
};

}  // namespace pioblast::blast
