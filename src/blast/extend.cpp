#include "blast/extend.h"

#include <algorithm>
#include <cstring>
#include <limits>

#include "util/error.h"

namespace pioblast::blast {

UngappedExtension extend_ungapped(std::span<const std::uint8_t> query,
                                  std::span<const std::uint8_t> subject,
                                  std::uint32_t qpos, std::uint64_t spos,
                                  int word_size, const ScoringMatrix& matrix,
                                  int xdrop) {
  PIOBLAST_CHECK(qpos + static_cast<std::uint32_t>(word_size) <= query.size());
  PIOBLAST_CHECK(spos + static_cast<std::uint64_t>(word_size) <= subject.size());

  UngappedExtension ext;
  // Seed score.
  int score = 0;
  for (int k = 0; k < word_size; ++k)
    score += matrix.score(query[qpos + static_cast<std::uint32_t>(k)],
                          subject[spos + static_cast<std::uint64_t>(k)]);
  ext.cells += static_cast<std::uint64_t>(word_size);

  // Rightward: keep the prefix-maximum; stop at X-drop.
  int best = score;
  std::uint32_t best_qend = qpos + static_cast<std::uint32_t>(word_size);
  std::uint64_t best_send = spos + static_cast<std::uint64_t>(word_size);
  {
    int run = score;
    std::uint32_t qi = best_qend;
    std::uint64_t si = best_send;
    while (qi < query.size() && si < subject.size()) {
      run += matrix.score(query[qi], subject[si]);
      ++qi;
      ++si;
      ++ext.cells;
      if (run > best) {
        best = run;
        best_qend = qi;
        best_send = si;
      } else if (run <= best - xdrop) {
        break;
      }
    }
  }

  // Leftward from the seed start.
  std::uint32_t best_qstart = qpos;
  std::uint64_t best_sstart = spos;
  {
    int run = best;
    int left_best = best;
    std::uint32_t qi = qpos;
    std::uint64_t si = spos;
    while (qi > 0 && si > 0) {
      --qi;
      --si;
      run += matrix.score(query[qi], subject[si]);
      ++ext.cells;
      if (run > left_best) {
        left_best = run;
        best_qstart = qi;
        best_sstart = si;
      } else if (run <= left_best - xdrop) {
        break;
      }
    }
    best = left_best;
  }

  ext.score = best;
  ext.qstart = best_qstart;
  ext.qend = best_qend;
  ext.sstart = best_sstart;
  ext.send = best_send;
  return ext;
}

namespace {

constexpr int kNegInf = std::numeric_limits<int>::min() / 4;

/// Traceback direction bits for one DP cell.
///   bits 0-1: source of H (0 = diagonal, 1 = E, 2 = F)
///   bit 2:    E extends a previous E (else opens from H)
///   bit 3:    F extends a previous F (else opens from H)
enum : std::uint8_t {
  kHFromDiag = 0,
  kHFromE = 1,
  kHFromF = 2,
  kHMask = 3,
  kEFromE = 4,
  kFFromF = 8,
};

/// One direction of gapped extension: aligns prefixes of q and s starting
/// at the implicit anchor (0,0); the first move must be diagonal (no
/// leading gaps, as in BLAST's anchored extension).
struct DirResult {
  int score = 0;
  std::size_t qlen = 0;  ///< query residues consumed to the best cell
  std::size_t slen = 0;  ///< subject residues consumed
  std::vector<AlignOp> ops;
  std::uint64_t cells = 0;
};

DirResult extend_dir(std::span<const std::uint8_t> q,
                     std::span<const std::uint8_t> s, const ScoringMatrix& matrix,
                     int gap_open, int gap_extend, int xdrop) {
  DirResult result;
  if (q.empty() || s.empty()) return result;

  const std::size_t m = q.size();
  const std::size_t n = s.size();
  const int open_cost = gap_open + gap_extend;

  // Row-linear DP with an active-column window driven by the X-drop rule.
  // H[j]/F[j] hold the previous row's values for columns inside that row's
  // computed window [prev_lo, prev_hi); anything outside is dead (kNegInf).
  std::vector<int> H(n + 1, kNegInf), F(n + 1, kNegInf);
  // Traceback rows: per row, the window's direction bytes plus its origin.
  struct TbRow {
    std::size_t lo;
    std::vector<std::uint8_t> dirs;
  };
  std::vector<TbRow> tb;
  tb.reserve(64);

  H[0] = 0;
  int best = 0;
  std::size_t best_i = 0, best_j = 0;
  std::size_t prev_lo = 0, prev_hi = 1;  // row 0: only column 0 is live
  std::size_t lo = 1;                    // first column of the next row

  for (std::size_t i = 1; i <= m && lo <= n; ++i) {
    TbRow row;
    row.lo = lo;

    // H(i-1, lo-1), valid only if column lo-1 was computed last row.
    int h_diag =
        (lo - 1 >= prev_lo && lo - 1 < prev_hi) ? H[lo - 1] : kNegInf;
    int h_left = kNegInf;  // H(i, j-1)
    int e_left = kNegInf;  // E(i, j-1)
    std::size_t new_lo = n + 1;  // first surviving column this row
    std::size_t new_hi = lo;     // one past the last surviving column
    std::size_t j = lo;

    for (; j <= n; ++j) {
      ++result.cells;
      const bool prev_valid = j >= prev_lo && j < prev_hi;
      const int h_up = prev_valid ? H[j] : kNegInf;
      const int f_up = prev_valid ? F[j] : kNegInf;

      // E: gap consuming subject residue s[j-1] (gap in query).
      std::uint8_t dir = 0;
      const int e_open = h_left == kNegInf ? kNegInf : h_left - open_cost;
      const int e_ext = e_left == kNegInf ? kNegInf : e_left - gap_extend;
      int e = std::max(e_open, e_ext);
      if (e_ext > e_open) dir |= kEFromE;
      // F: gap consuming query residue q[i-1] (gap in subject).
      const int f_open = h_up == kNegInf ? kNegInf : h_up - open_cost;
      const int f_ext = f_up == kNegInf ? kNegInf : f_up - gap_extend;
      int f = std::max(f_open, f_ext);
      if (f_ext > f_open) dir |= kFFromF;
      // H: best of diagonal / E / F.
      const int diag = h_diag == kNegInf
                           ? kNegInf
                           : h_diag + matrix.score(q[i - 1], s[j - 1]);
      int h = diag;
      if (e > h) {
        h = e;
        dir = static_cast<std::uint8_t>((dir & ~kHMask) | kHFromE);
      }
      if (f > h) {
        h = f;
        dir = static_cast<std::uint8_t>((dir & ~kHMask) | kHFromF);
      }

      // X-drop pruning relative to the global best.
      const bool dead = h < best - xdrop;
      if (dead) {
        h = kNegInf;
        e = kNegInf;
        f = kNegInf;
      } else {
        if (j < new_lo) new_lo = j;
        new_hi = j + 1;
        if (h > best) {
          best = h;
          best_i = i;
          best_j = j;
        }
      }

      h_diag = h_up;  // becomes H(i-1, j) for column j+1
      h_left = h;
      e_left = e;
      H[j] = h;
      F[j] = f;
      row.dirs.push_back(dir);

      // Past the previous row's window only the in-row E-chain can feed
      // later columns (for column j+1 the diagonal source is H(i-1, j),
      // dead once j >= prev_hi); when the chain is dead the rest of the
      // row is unreachable.
      if (j >= prev_hi && dead && e == kNegInf) {
        ++j;
        break;
      }
    }

    tb.push_back(std::move(row));
    if (new_lo >= new_hi) break;  // every column pruned: extension done
    prev_lo = lo;
    prev_hi = j;  // columns [lo, j) were computed this row
    lo = new_lo;
  }

  result.score = best;
  result.qlen = best_i;
  result.slen = best_j;
  if (best_i == 0) return result;  // no positive extension

  // Traceback from (best_i, best_j) to (0, 0).
  enum class State { kH, kE, kF };
  State state = State::kH;
  std::size_t i = best_i, j = best_j;
  while (i > 0 || j > 0) {
    PIOBLAST_CHECK_MSG(i > 0 && j > 0, "gapped traceback escaped the matrix");
    const TbRow& row = tb[i - 1];
    PIOBLAST_CHECK_MSG(j >= row.lo && j - row.lo < row.dirs.size(),
                       "gapped traceback outside stored window");
    const std::uint8_t dir = row.dirs[j - row.lo];
    switch (state) {
      case State::kH:
        switch (dir & kHMask) {
          case kHFromDiag:
            result.ops.push_back(AlignOp::kMatch);
            --i;
            --j;
            break;
          case kHFromE:
            state = State::kE;
            break;
          case kHFromF:
            state = State::kF;
            break;
          default:
            PIOBLAST_CHECK_MSG(false, "invalid traceback direction");
        }
        break;
      case State::kE:
        result.ops.push_back(AlignOp::kDelete);
        state = (dir & kEFromE) ? State::kE : State::kH;
        --j;
        break;
      case State::kF:
        result.ops.push_back(AlignOp::kInsert);
        state = (dir & kFFromF) ? State::kF : State::kH;
        --i;
        break;
    }
  }
  std::reverse(result.ops.begin(), result.ops.end());
  return result;
}

}  // namespace

namespace {

GappedExtension combine_directions(const DirResult& left, const DirResult& right,
                                   std::uint32_t anchor_q,
                                   std::uint64_t anchor_s) {
  GappedExtension out;
  out.score = left.score + right.score;
  out.cells = left.cells + right.cells;
  out.qstart = anchor_q - static_cast<std::uint32_t>(left.qlen);
  out.sstart = anchor_s - left.slen;
  out.qend = anchor_q + static_cast<std::uint32_t>(right.qlen);
  out.send = anchor_s + right.slen;
  out.ops.reserve(left.ops.size() + right.ops.size());
  out.ops.assign(left.ops.rbegin(), left.ops.rend());
  out.ops.insert(out.ops.end(), right.ops.begin(), right.ops.end());
  return out;
}

}  // namespace

GappedExtension extend_gapped(std::span<const std::uint8_t> query,
                              std::span<const std::uint8_t> subject,
                              std::uint32_t anchor_q, std::uint64_t anchor_s,
                              const ScoringMatrix& matrix, int gap_open,
                              int gap_extend, int xdrop) {
  PIOBLAST_CHECK(anchor_q < query.size());
  PIOBLAST_CHECK(anchor_s < subject.size());

  // Right: includes the anchor pair itself.
  const DirResult right =
      extend_dir(query.subspan(anchor_q), subject.subspan(anchor_s), matrix,
                 gap_open, gap_extend, xdrop);

  // Left: reversed prefixes strictly before the anchor.
  std::vector<std::uint8_t> qrev(query.begin(),
                                 query.begin() + static_cast<std::ptrdiff_t>(anchor_q));
  std::vector<std::uint8_t> srev(
      subject.begin(), subject.begin() + static_cast<std::ptrdiff_t>(anchor_s));
  std::reverse(qrev.begin(), qrev.end());
  std::reverse(srev.begin(), srev.end());
  const DirResult left =
      extend_dir(qrev, srev, matrix, gap_open, gap_extend, xdrop);

  return combine_directions(left, right, anchor_q, anchor_s);
}

// ---- fast-kernel extension paths ------------------------------------------

SelfScoreProfile::SelfScoreProfile(std::span<const std::uint8_t> query,
                                   const ScoringMatrix& matrix) {
  prefix.resize(query.size() + 1, 0);
  positive.resize(query.size() + 1, 0);
  for (std::size_t i = 0; i < query.size(); ++i) {
    const int s = matrix.score(query[i], query[i]);
    prefix[i + 1] = prefix[i] + s;
    positive[i + 1] = positive[i] + (s > 0 ? 1u : 0u);
  }
}

namespace {

inline std::uint64_t load8(const std::uint8_t* p) {
  std::uint64_t v;
  std::memcpy(&v, p, sizeof v);
  return v;
}

}  // namespace

UngappedExtension extend_ungapped_fast(std::span<const std::uint8_t> query,
                                       std::span<const std::uint8_t> subject,
                                       std::uint32_t qpos, std::uint64_t spos,
                                       int word_size,
                                       const ScoringMatrix& matrix, int xdrop,
                                       const SelfScoreProfile& self) {
  PIOBLAST_CHECK(qpos + static_cast<std::uint32_t>(word_size) <= query.size());
  PIOBLAST_CHECK(spos + static_cast<std::uint64_t>(word_size) <= subject.size());

  const std::uint8_t* q = query.data();
  const std::uint8_t* s = subject.data();
  const std::size_t qlen = query.size();
  const std::size_t slen = subject.size();

  UngappedExtension ext;
  int score = 0;
  {
    const std::uint8_t* qs = q + qpos;
    const std::uint8_t* ss = s + spos;
    for (int k = 0; k < word_size; ++k)
      score += matrix.row(qs[k])[ss[k]];
  }
  ext.cells += static_cast<std::uint64_t>(word_size);

  // Rightward. Invariant entering each step: run > best - xdrop. An
  // 8-residue block with identical query/subject bytes and all-positive
  // self scores makes the scalar loop's running score strictly monotone:
  // no X-drop can fire inside it and the best lands on the block end, so
  // the whole block collapses to one prefix-sum add.
  int best = score;
  std::uint32_t best_qend = qpos + static_cast<std::uint32_t>(word_size);
  std::uint64_t best_send = spos + static_cast<std::uint64_t>(word_size);
  {
    int run = score;
    std::size_t qi = best_qend;
    std::size_t si = best_send;
    while (qi < qlen && si < slen) {
      // Attempt a block only when the current residue pair matches: in
      // non-identical regions that one byte compare is the whole overhead,
      // while identity runs still collapse 8 residues per step. Gating
      // cannot change the result — a taken block produces exactly the
      // per-residue outcome wherever it starts.
      if (q[qi] == s[si] && qi + 8 <= qlen && si + 8 <= slen &&
          load8(q + qi) == load8(s + si) &&
          self.positive[qi + 8] - self.positive[qi] == 8) {
        run += self.prefix[qi + 8] - self.prefix[qi];
        qi += 8;
        si += 8;
        ext.cells += 8;
        if (run > best) {
          best = run;
          best_qend = static_cast<std::uint32_t>(qi);
          best_send = si;
        }
        continue;
      }
      run += matrix.row(q[qi])[s[si]];
      ++qi;
      ++si;
      ++ext.cells;
      if (run > best) {
        best = run;
        best_qend = static_cast<std::uint32_t>(qi);
        best_send = si;
      } else if (run <= best - xdrop) {
        break;
      }
    }
  }

  // Leftward, mirrored (blocks walk toward the sequence starts).
  std::uint32_t best_qstart = qpos;
  std::uint64_t best_sstart = spos;
  {
    int run = best;
    int left_best = best;
    std::size_t qi = qpos;
    std::size_t si = spos;
    while (qi > 0 && si > 0) {
      if (q[qi - 1] == s[si - 1] && qi >= 8 && si >= 8 &&
          load8(q + qi - 8) == load8(s + si - 8) &&
          self.positive[qi] - self.positive[qi - 8] == 8) {
        run += self.prefix[qi] - self.prefix[qi - 8];
        qi -= 8;
        si -= 8;
        ext.cells += 8;
        if (run > left_best) {
          left_best = run;
          best_qstart = static_cast<std::uint32_t>(qi);
          best_sstart = si;
        }
        continue;
      }
      --qi;
      --si;
      run += matrix.row(q[qi])[s[si]];
      ++ext.cells;
      if (run > left_best) {
        left_best = run;
        best_qstart = static_cast<std::uint32_t>(qi);
        best_sstart = si;
      } else if (run <= left_best - xdrop) {
        break;
      }
    }
    best = left_best;
  }

  ext.score = best;
  ext.qstart = best_qstart;
  ext.qend = best_qend;
  ext.sstart = best_sstart;
  ext.send = best_send;
  return ext;
}

namespace {

/// Fast twin of extend_dir. Same window walk, same comparisons, same
/// stored H/F values (dead cells clamped to the exact kNegInf sentinel),
/// so scores, windows, and tracebacks are bit-identical to the scalar
/// path. Mechanical differences only: dead-source arithmetic runs
/// unguarded (the results stay far below any live score, and the only
/// bytes that can differ are traceback directions of dead cells, which
/// the traceback can never visit), the scoring row pointer is hoisted per
/// row, and traceback bytes land in a reusable arena.
DirResult extend_dir_fast(std::span<const std::uint8_t> q,
                          std::span<const std::uint8_t> s,
                          const ScoringMatrix& matrix, int gap_open,
                          int gap_extend, int xdrop, GappedScratch& sc) {
  DirResult result;
  if (q.empty() || s.empty()) return result;

  const std::size_t m = q.size();
  const std::size_t n = s.size();
  const int open_cost = gap_open + gap_extend;

  // Invariant: outside the most recent row's window, H and F hold exactly
  // kNegInf. Newly grown columns start there; per-row clearing and the
  // exit cleanup below restore it before every return.
  if (sc.H.size() < n + 1) {
    sc.H.resize(n + 1, kNegInf);
    sc.F.resize(n + 1, kNegInf);
  }
  int* H = sc.H.data();
  int* F = sc.F.data();
  sc.dirs.clear();
  sc.rows.clear();

  H[0] = 0;
  int best = 0;
  std::size_t best_i = 0, best_j = 0;
  std::size_t prev_lo = 0, prev_hi = 1;
  std::size_t lo = 1;

  auto clear_window = [&](std::size_t a, std::size_t b) {
    for (std::size_t jj = a; jj < b; ++jj) {
      H[jj] = kNegInf;
      F[jj] = kNegInf;
    }
  };

  std::size_t i = 1;
  for (; i <= m && lo <= n; ++i) {
    const std::size_t row_start = sc.dirs.size();
    // Pre-size the traceback row and write through a raw pointer indexed by
    // j: a per-cell push_back would re-check capacity and bump the size on
    // every DP cell. The row is trimmed to the cells actually computed
    // after the early-exit below.
    sc.dirs.resize(row_start + (n - lo + 1));
    std::uint8_t* const dp = sc.dirs.data() + row_start - lo;
    const int* qrow = matrix.row(q[i - 1]);

    int h_diag = H[lo - 1];  // exact kNegInf when lo-1 fell outside the window
    int h_left = kNegInf;
    int e_left = kNegInf;
    std::size_t new_lo = n + 1;
    std::size_t new_hi = lo;
    std::size_t j = lo;

    for (; j <= n; ++j) {
      ++result.cells;
      const int h_up = H[j];
      const int f_up = F[j];

      std::uint8_t dir = 0;
      const int e_open = h_left - open_cost;
      const int e_ext = e_left - gap_extend;
      int e = e_open < e_ext ? e_ext : e_open;
      if (e_ext > e_open) dir |= kEFromE;
      const int f_open = h_up - open_cost;
      const int f_ext = f_up - gap_extend;
      int f = f_open < f_ext ? f_ext : f_open;
      if (f_ext > f_open) dir |= kFFromF;
      const int diag = h_diag + qrow[s[j - 1]];
      int h = diag;
      if (e > h) {
        h = e;
        dir = static_cast<std::uint8_t>((dir & ~kHMask) | kHFromE);
      }
      if (f > h) {
        h = f;
        dir = static_cast<std::uint8_t>((dir & ~kHMask) | kHFromF);
      }

      const bool dead = h < best - xdrop;
      if (dead) {
        h = kNegInf;
        e = kNegInf;
        f = kNegInf;
      } else {
        if (j < new_lo) new_lo = j;
        new_hi = j + 1;
        if (h > best) {
          best = h;
          best_i = i;
          best_j = j;
        }
      }

      h_diag = h_up;
      h_left = h;
      e_left = e;
      H[j] = h;
      F[j] = f;
      dp[j] = dir;

      if (j >= prev_hi && dead && e == kNegInf) {
        ++j;
        break;
      }
    }

    sc.dirs.resize(row_start + (j - lo));
    sc.rows.push_back({lo, row_start, j - lo});
    if (new_lo >= new_hi) {
      // Every column pruned: restore the all-kNegInf invariant over both
      // the previous window and this row's writes, then stop.
      clear_window(prev_lo, prev_hi);
      clear_window(lo, j);
      prev_hi = prev_lo;  // mark cleaned for the exit path below
      lo = j;
      break;
    }
    // Columns of the previous window this row did not overwrite go back
    // to the sentinel so the next row can read H/F unconditionally.
    clear_window(prev_lo, std::min(prev_hi, lo));
    clear_window(std::max(j, prev_lo), prev_hi);
    prev_lo = lo;
    prev_hi = j;
    lo = new_lo;
  }
  clear_window(prev_lo, prev_hi);  // final computed window

  result.score = best;
  result.qlen = best_i;
  result.slen = best_j;
  if (best_i == 0) return result;

  enum class State { kH, kE, kF };
  State state = State::kH;
  std::size_t ti = best_i, tj = best_j;
  while (ti > 0 || tj > 0) {
    PIOBLAST_CHECK_MSG(ti > 0 && tj > 0, "gapped traceback escaped the matrix");
    const GappedScratch::Row& row = sc.rows[ti - 1];
    PIOBLAST_CHECK_MSG(tj >= row.lo && tj - row.lo < row.len,
                       "gapped traceback outside stored window");
    const std::uint8_t dir = sc.dirs[row.start + (tj - row.lo)];
    switch (state) {
      case State::kH:
        switch (dir & kHMask) {
          case kHFromDiag:
            result.ops.push_back(AlignOp::kMatch);
            --ti;
            --tj;
            break;
          case kHFromE:
            state = State::kE;
            break;
          case kHFromF:
            state = State::kF;
            break;
          default:
            PIOBLAST_CHECK_MSG(false, "invalid traceback direction");
        }
        break;
      case State::kE:
        result.ops.push_back(AlignOp::kDelete);
        state = (dir & kEFromE) ? State::kE : State::kH;
        --tj;
        break;
      case State::kF:
        result.ops.push_back(AlignOp::kInsert);
        state = (dir & kFFromF) ? State::kF : State::kH;
        --ti;
        break;
    }
  }
  std::reverse(result.ops.begin(), result.ops.end());
  return result;
}

}  // namespace

GappedExtension extend_gapped_fast(std::span<const std::uint8_t> query,
                                   std::span<const std::uint8_t> subject,
                                   std::uint32_t anchor_q,
                                   std::uint64_t anchor_s,
                                   const ScoringMatrix& matrix, int gap_open,
                                   int gap_extend, int xdrop,
                                   GappedScratch& scratch) {
  PIOBLAST_CHECK(anchor_q < query.size());
  PIOBLAST_CHECK(anchor_s < subject.size());

  const DirResult right =
      extend_dir_fast(query.subspan(anchor_q), subject.subspan(anchor_s),
                      matrix, gap_open, gap_extend, xdrop, scratch);

  scratch.qrev.assign(query.rend() - static_cast<std::ptrdiff_t>(anchor_q),
                      query.rend());
  scratch.srev.assign(subject.rend() - static_cast<std::ptrdiff_t>(anchor_s),
                      subject.rend());
  const DirResult left = extend_dir_fast(scratch.qrev, scratch.srev, matrix,
                                         gap_open, gap_extend, xdrop, scratch);

  return combine_directions(left, right, anchor_q, anchor_s);
}

}  // namespace pioblast::blast
