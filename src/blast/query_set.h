// Prepared query sets: parsed queries plus per-query search contexts.
//
// Building a QueryContext (word index + statistics) is identical on every
// rank, so the drivers prepare one QuerySet per job and share it read-only
// across all simulated processes. This is a host-side memory/CPU
// optimization only: the virtual-time cost of query preparation is charged
// by the drivers exactly as before, and search results are unaffected
// (contexts are immutable during the search).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "blast/engine.h"
#include "seqdb/fasta.h"

namespace pioblast::blast {

class QuerySet {
 public:
  /// Parses `fasta_text` and builds one context per query against the
  /// given global database statistics.
  static std::shared_ptr<const QuerySet> build(const std::string& fasta_text,
                                               const SearchParams& params,
                                               const GlobalDbStats& stats);

  const std::vector<seqdb::FastaRecord>& queries() const { return queries_; }
  const std::vector<QueryContext>& contexts() const { return contexts_; }
  const ScoringMatrix& matrix() const { return *matrix_; }
  const GlobalDbStats& stats() const { return stats_; }
  std::uint32_t size() const { return static_cast<std::uint32_t>(queries_.size()); }

 private:
  QuerySet() = default;

  std::vector<seqdb::FastaRecord> queries_;
  /// Heap-held so context references stay valid however QuerySet is moved.
  std::shared_ptr<const ScoringMatrix> matrix_;
  GlobalDbStats stats_;
  std::vector<QueryContext> contexts_;
};

}  // namespace pioblast::blast
