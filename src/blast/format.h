// NCBI-style pairwise output formatting.
//
// Both drivers emit the same text through these functions — mpiBLAST's
// master formats everything centrally, pioBLAST's workers format their own
// alignments into memory buffers (paper §3.2: a "modified NCBI BLAST output
// routine that redirects the formatted result data from file output to
// memory buffers") — so the final output files are byte-identical, which
// the integration tests assert. All numeric rendering is locale-free and
// deterministic.
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "blast/hsp.h"
#include "blast/stats.h"
#include "seqdb/alphabet.h"
#include "seqdb/fasta.h"

namespace pioblast::blast {

/// Renders an E-value the way NCBI BLAST does ("3e-31", "0.001", "2.5").
std::string format_evalue(double e);

/// Per-query report header: query defline/length plus database statistics.
/// Master-computable without any alignment bodies (pioBLAST needs this to
/// derive output offsets before workers write).
std::string format_query_header(const seqdb::FastaRecord& query,
                                const std::string& db_title,
                                const GlobalDbStats& db,
                                std::uint64_t reported_alignments);

/// One alignment block: subject defline, score/identity lines, and the
/// 60-column Query/midline/Sbjct panels.
std::string format_alignment(const Hsp& hsp, seqdb::SeqType type,
                             std::span<const std::uint8_t> query_residues,
                             std::span<const std::uint8_t> subject_residues,
                             std::string_view subject_defline,
                             std::uint64_t subject_length,
                             const ScoringMatrix& matrix);

/// Footer line appended when a query matched nothing.
std::string format_no_hits();

// ---- tabular output (blastall -m8/-m9 style) ------------------------------

/// First whitespace-delimited token of a defline (the sequence id).
std::string_view defline_id(std::string_view defline);

/// Per-query comment block (-m9 style): query, database, field names.
std::string format_tabular_query_header(const seqdb::FastaRecord& query,
                                        const std::string& db_title,
                                        std::uint64_t reported_alignments);

/// One tab-separated hit line: query id, subject id, % identity, alignment
/// length, mismatches, gap openings, q.start, q.end, s.start, s.end,
/// e-value, bit score. Coordinates are 1-based inclusive as in blastall.
std::string format_tabular_line(const Hsp& hsp, std::string_view query_id,
                                std::string_view subject_defline);

}  // namespace pioblast::blast
