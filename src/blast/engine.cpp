#include "blast/engine.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"

namespace pioblast::blast {

ScoringMatrix make_matrix(const SearchParams& params) {
  return params.type == seqdb::SeqType::kProtein
             ? ScoringMatrix::blosum62()
             : ScoringMatrix::dna(params.dna_match, params.dna_mismatch);
}

QueryContext::QueryContext(std::uint32_t query_id,
                           std::span<const std::uint8_t> residues,
                           const SearchParams& params, const ScoringMatrix& matrix,
                           const GlobalDbStats& db)
    : query_id_(query_id),
      residues_(residues.begin(), residues.end()),
      params_(params),
      matrix_(matrix),
      db_(db),
      index_(residues_, matrix, params),
      adjust_(length_adjustment(matrix.gapped(), residues_.size(), db)) {
  // Smallest raw score that can still reach the E-value cutoff:
  //   E = K m' n' exp(-lambda S) <= E0  =>  S >= ln(K m' n' / E0) / lambda.
  const KarlinParams& kp = matrix.gapped();
  const double m_eff = static_cast<double>(
      std::max<std::uint64_t>(residues_.size() - adjust_, 1));
  const double n_eff = static_cast<double>(std::max<std::uint64_t>(
      db.total_residues > db.num_seqs * adjust_
          ? db.total_residues - db.num_seqs * adjust_
          : 1,
      1));
  const double s = std::log(kp.K * m_eff * n_eff / params.evalue_cutoff) / kp.lambda;
  cutoff_score_ = std::max(params.cutoff_score_min,
                           static_cast<int>(std::ceil(std::max(s, 1.0))));
}

namespace {

/// Epoch-stamped per-diagonal table, reused across subjects so the scan
/// does not reallocate or clear for every sequence.
class DiagTable {
 public:
  void begin_subject(std::size_t qlen, std::size_t slen) {
    const std::size_t need = qlen + slen + 1;
    if (entries_.size() < need) entries_.resize(need);
    ++epoch_;
  }

  /// Last seed position recorded on the diagonal (or -1).
  std::int64_t last_seed(std::size_t diag) const {
    const Entry& e = entries_[diag];
    return e.seed_epoch == epoch_ ? e.last_seed : -1;
  }
  void set_last_seed(std::size_t diag, std::int64_t pos) {
    Entry& e = entries_[diag];
    e.seed_epoch = epoch_;
    e.last_seed = pos;
  }

  /// Subject offset up to which this diagonal is covered by an extension.
  std::int64_t covered_until(std::size_t diag) const {
    const Entry& e = entries_[diag];
    return e.cover_epoch == epoch_ ? e.covered : -1;
  }
  void set_covered(std::size_t diag, std::int64_t until) {
    Entry& e = entries_[diag];
    const std::int64_t prev = e.cover_epoch == epoch_ ? e.covered : -1;
    e.cover_epoch = epoch_;
    e.covered = std::max(prev, until);
  }

 private:
  struct Entry {
    std::uint64_t seed_epoch = 0;
    std::uint64_t cover_epoch = 0;
    std::int64_t last_seed = -1;
    std::int64_t covered = -1;
  };
  std::vector<Entry> entries_;
  std::uint64_t epoch_ = 0;
};

/// Fills identity/positive/gap counts by replaying the traceback.
void annotate_alignment(Hsp& hsp, std::span<const std::uint8_t> query,
                        std::span<const std::uint8_t> subject,
                        const ScoringMatrix& matrix) {
  std::uint32_t qi = hsp.qstart;
  std::uint64_t si = hsp.sstart;
  hsp.identities = 0;
  hsp.positives = 0;
  hsp.gaps = 0;
  hsp.align_len = static_cast<std::uint32_t>(hsp.ops.size());
  for (AlignOp op : hsp.ops) {
    switch (op) {
      case AlignOp::kMatch: {
        const std::uint8_t a = query[qi];
        const std::uint8_t b = subject[si];
        if (a == b) ++hsp.identities;
        if (matrix.score(a, b) > 0) ++hsp.positives;
        ++qi;
        ++si;
        break;
      }
      case AlignOp::kInsert:
        ++hsp.gaps;
        ++qi;
        break;
      case AlignOp::kDelete:
        ++hsp.gaps;
        ++si;
        break;
    }
  }
  PIOBLAST_CHECK_MSG(qi == hsp.qend && si == hsp.send,
                     "traceback does not span the HSP coordinates");
}

/// True if `a` is contained within `b`'s envelope on both sequences.
bool contained_in(const Hsp& a, const Hsp& b) {
  return a.qstart >= b.qstart && a.qend <= b.qend && a.sstart >= b.sstart &&
         a.send <= b.send;
}

}  // namespace

FragmentSearchResult search_fragment(const QueryContext& query,
                                     const seqdb::LoadedFragment& fragment) {
  FragmentSearchResult result;
  const SearchParams& params = query.params();
  const ScoringMatrix& matrix = query.matrix();
  const std::span<const std::uint8_t> q = query.residues();
  const std::size_t qlen = q.size();
  const int w = params.word_size;
  const bool two_hit = params.two_hit_window > 0;

  if (qlen < static_cast<std::size_t>(w)) return result;

  DiagTable diags;
  std::vector<Hsp> subject_hsps;
  // Envelopes of every gapped extension run for the current subject —
  // including ones whose score fell below the cutoffs. Seeds inside an
  // explored envelope are skipped; without this, a weak homolog (below
  // the reporting cutoff) would re-run a near-full-length gapped DP for
  // every one of its seeds.
  struct Envelope {
    std::uint32_t qstart, qend;
    std::uint64_t sstart, send;
  };
  std::vector<Envelope> explored;

  for (std::uint64_t local = 0; local < fragment.num_seqs(); ++local) {
    const std::span<const std::uint8_t> s = fragment.sequence(local);
    result.counters.db_residues_scanned += s.size();
    if (s.size() < static_cast<std::size_t>(w)) continue;
    diags.begin_subject(qlen, s.size());
    subject_hsps.clear();
    explored.clear();

    const std::size_t last_word = s.size() - static_cast<std::size_t>(w);
    for (std::size_t spos = 0; spos <= last_word; ++spos) {
      const PositionList* hits = query.index().probe(s.data() + spos);
      if (hits == nullptr) continue;
      for (const std::uint32_t qpos : *hits) {
        ++result.counters.seed_hits;
        const std::size_t diag = spos + qlen - qpos;

        // Skip seeds inside a region an extension already covered.
        if (static_cast<std::int64_t>(spos) <= diags.covered_until(diag)) continue;

        if (two_hit) {
          // NCBI two-hit rule: a fresh hit or one beyond the window resets
          // the diagonal; a hit overlapping the previous one (distance
          // < w) is ignored *without* updating it — otherwise runs of
          // consecutive seeds (identical sequences!) would never trigger.
          const std::int64_t prev = diags.last_seed(diag);
          const std::int64_t gap =
              prev < 0 ? -1 : static_cast<std::int64_t>(spos) - prev;
          if (prev < 0 || gap > params.two_hit_window) {
            diags.set_last_seed(diag, static_cast<std::int64_t>(spos));
            continue;
          }
          if (gap < w) continue;  // overlapping hit: keep the older one
          diags.set_last_seed(diag, static_cast<std::int64_t>(spos));
        }

        ++result.counters.two_hit_triggers;
        const UngappedExtension ung =
            extend_ungapped(q, s, qpos, spos, w, matrix, params.xdrop_ungapped);
        result.counters.ungapped_cells += ung.cells;
        diags.set_covered(diag, static_cast<std::int64_t>(ung.send) - w);
        if (ung.score < params.gap_trigger) continue;

        // Seeds whose ungapped segment lies inside a region some gapped
        // extension already explored would re-derive (a piece of) the same
        // alignment: skip them before the expensive gapped pass, as NCBI
        // BLAST does. Homologs with indels otherwise trigger one
        // near-full-length gapped extension per indel-shifted diagonal.
        bool inside_existing = false;
        for (const Envelope& env : explored) {
          if (ung.qstart >= env.qstart && ung.qend <= env.qend &&
              ung.sstart >= env.sstart && ung.send <= env.send) {
            inside_existing = true;
            break;
          }
        }
        if (inside_existing) continue;

        // Anchor the gapped pass at the midpoint of the ungapped segment.
        const std::uint32_t half =
            (ung.qend - ung.qstart) / 2;
        const std::uint32_t anchor_q = ung.qstart + half;
        const std::uint64_t anchor_s = ung.sstart + half;
        GappedExtension gap = extend_gapped(q, s, anchor_q, anchor_s, matrix,
                                            params.gap_open, params.gap_extend,
                                            params.xdrop_gapped);
        result.counters.gapped_cells += gap.cells;
        result.counters.traceback_cells += gap.ops.size();
        diags.set_covered(diag, static_cast<std::int64_t>(gap.send) - w);
        explored.push_back({gap.qstart, gap.qend, gap.sstart, gap.send});
        if (gap.score < query.cutoff_score()) continue;

        Hsp hsp;
        hsp.query_id = query.query_id();
        hsp.subject_global_id = fragment.global_id(local);
        hsp.qstart = gap.qstart;
        hsp.qend = gap.qend;
        hsp.sstart = gap.sstart;
        hsp.send = gap.send;
        hsp.score = gap.score;
        hsp.ops = std::move(gap.ops);
        const KarlinParams& kp = matrix.gapped();
        hsp.bits = bit_score(kp, hsp.score);
        hsp.evalue = evalue(kp, hsp.score, qlen, query.db(), query.length_adjust());
        if (hsp.evalue > params.evalue_cutoff) continue;
        annotate_alignment(hsp, q, s, matrix);
        subject_hsps.push_back(std::move(hsp));
      }
    }

    // Containment culling within the subject: keep an HSP only if it is not
    // enveloped by a better one.
    std::sort(subject_hsps.begin(), subject_hsps.end(), Hsp::better);
    std::vector<Hsp> kept;
    for (Hsp& cand : subject_hsps) {
      bool dominated = false;
      for (const Hsp& better_hsp : kept) {
        if (contained_in(cand, better_hsp)) {
          dominated = true;
          break;
        }
      }
      if (!dominated) kept.push_back(std::move(cand));
    }
    for (Hsp& h : kept) result.hsps.push_back(std::move(h));
  }

  // Rank and apply the per-fragment hit-list cut ("local cut").
  std::sort(result.hsps.begin(), result.hsps.end(), Hsp::better);
  if (result.hsps.size() > static_cast<std::size_t>(params.hitlist_size))
    result.hsps.resize(static_cast<std::size_t>(params.hitlist_size));
  result.counters.hsps_found = result.hsps.size();
  return result;
}

}  // namespace pioblast::blast
