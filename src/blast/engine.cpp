#include "blast/engine.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "blast/engine_detail.h"
#include "util/error.h"

namespace pioblast::blast {

ScoringMatrix make_matrix(const SearchParams& params) {
  return params.type == seqdb::SeqType::kProtein
             ? ScoringMatrix::blosum62()
             : ScoringMatrix::dna(params.dna_match, params.dna_mismatch);
}

KernelKind parse_kernel(std::string_view name) {
  if (name == "scalar") return KernelKind::kScalar;
  if (name == "fast") return KernelKind::kFast;
  PIOBLAST_CHECK_MSG(false, "unknown kernel '" + std::string(name) +
                                "' (expected 'scalar' or 'fast')");
  return KernelKind::kFast;  // unreachable
}

const char* kernel_name(KernelKind kind) {
  return kind == KernelKind::kScalar ? "scalar" : "fast";
}

QueryContext::QueryContext(std::uint32_t query_id,
                           std::span<const std::uint8_t> residues,
                           const SearchParams& params, const ScoringMatrix& matrix,
                           const GlobalDbStats& db)
    : query_id_(query_id),
      residues_(residues.begin(), residues.end()),
      params_(params),
      matrix_(matrix),
      db_(db),
      index_(residues_, matrix, params),
      flat_(residues_, matrix, params),
      self_(residues_, matrix),
      adjust_(length_adjustment(matrix.gapped(), residues_.size(), db)) {
  // Smallest raw score that can still reach the E-value cutoff:
  //   E = K m' n' exp(-lambda S) <= E0  =>  S >= ln(K m' n' / E0) / lambda.
  const KarlinParams& kp = matrix.gapped();
  const double m_eff = static_cast<double>(
      std::max<std::uint64_t>(residues_.size() - adjust_, 1));
  const double n_eff = static_cast<double>(std::max<std::uint64_t>(
      db.total_residues > db.num_seqs * adjust_
          ? db.total_residues - db.num_seqs * adjust_
          : 1,
      1));
  const double s = std::log(kp.K * m_eff * n_eff / params.evalue_cutoff) / kp.lambda;
  cutoff_score_ = std::max(params.cutoff_score_min,
                           static_cast<int>(std::ceil(std::max(s, 1.0))));
}

FragmentSearchResult search_fragment(const QueryContext& query,
                                     const seqdb::LoadedFragment& fragment) {
  using detail::DiagTable;
  using detail::Envelope;
  using detail::annotate_alignment;
  using detail::contained_in;
  FragmentSearchResult result;
  const SearchParams& params = query.params();
  const ScoringMatrix& matrix = query.matrix();
  const std::span<const std::uint8_t> q = query.residues();
  const std::size_t qlen = q.size();
  const int w = params.word_size;
  const bool two_hit = params.two_hit_window > 0;

  if (qlen < static_cast<std::size_t>(w)) return result;

  DiagTable diags;
  std::vector<Hsp> subject_hsps;
  std::vector<Envelope> explored;

  for (std::uint64_t local = 0; local < fragment.num_seqs(); ++local) {
    const std::span<const std::uint8_t> s = fragment.sequence(local);
    result.counters.db_residues_scanned += s.size();
    if (s.size() < static_cast<std::size_t>(w)) continue;
    diags.begin_subject(qlen, s.size());
    subject_hsps.clear();
    explored.clear();

    const std::size_t last_word = s.size() - static_cast<std::size_t>(w);
    for (std::size_t spos = 0; spos <= last_word; ++spos) {
      const PositionList* hits = query.index().probe(s.data() + spos);
      if (hits == nullptr) continue;
      for (const std::uint32_t qpos : *hits) {
        ++result.counters.seed_hits;
        const std::size_t diag = spos + qlen - qpos;

        // Skip seeds inside a region an extension already covered.
        if (static_cast<std::int64_t>(spos) <= diags.covered_until(diag)) continue;

        if (two_hit) {
          // NCBI two-hit rule: a fresh hit or one beyond the window resets
          // the diagonal; a hit overlapping the previous one (distance
          // < w) is ignored *without* updating it — otherwise runs of
          // consecutive seeds (identical sequences!) would never trigger.
          const std::int64_t prev = diags.last_seed(diag);
          const std::int64_t gap =
              prev < 0 ? -1 : static_cast<std::int64_t>(spos) - prev;
          if (prev < 0 || gap > params.two_hit_window) {
            diags.set_last_seed(diag, static_cast<std::int64_t>(spos));
            continue;
          }
          if (gap < w) continue;  // overlapping hit: keep the older one
          diags.set_last_seed(diag, static_cast<std::int64_t>(spos));
        }

        ++result.counters.two_hit_triggers;
        const UngappedExtension ung =
            extend_ungapped(q, s, qpos, spos, w, matrix, params.xdrop_ungapped);
        result.counters.ungapped_cells += ung.cells;
        diags.set_covered(diag, static_cast<std::int64_t>(ung.send) - w);
        if (ung.score < params.gap_trigger) continue;

        // Seeds whose ungapped segment lies inside a region some gapped
        // extension already explored would re-derive (a piece of) the same
        // alignment: skip them before the expensive gapped pass, as NCBI
        // BLAST does. Homologs with indels otherwise trigger one
        // near-full-length gapped extension per indel-shifted diagonal.
        bool inside_existing = false;
        for (const Envelope& env : explored) {
          if (ung.qstart >= env.qstart && ung.qend <= env.qend &&
              ung.sstart >= env.sstart && ung.send <= env.send) {
            inside_existing = true;
            break;
          }
        }
        if (inside_existing) continue;

        // Anchor the gapped pass at the midpoint of the ungapped segment.
        const std::uint32_t half =
            (ung.qend - ung.qstart) / 2;
        const std::uint32_t anchor_q = ung.qstart + half;
        const std::uint64_t anchor_s = ung.sstart + half;
        GappedExtension gap = extend_gapped(q, s, anchor_q, anchor_s, matrix,
                                            params.gap_open, params.gap_extend,
                                            params.xdrop_gapped);
        result.counters.gapped_cells += gap.cells;
        result.counters.traceback_cells += gap.ops.size();
        diags.set_covered(diag, static_cast<std::int64_t>(gap.send) - w);
        explored.push_back({gap.qstart, gap.qend, gap.sstart, gap.send});
        if (gap.score < query.cutoff_score()) continue;

        Hsp hsp;
        hsp.query_id = query.query_id();
        hsp.subject_global_id = fragment.global_id(local);
        hsp.qstart = gap.qstart;
        hsp.qend = gap.qend;
        hsp.sstart = gap.sstart;
        hsp.send = gap.send;
        hsp.score = gap.score;
        hsp.ops = std::move(gap.ops);
        const KarlinParams& kp = matrix.gapped();
        hsp.bits = bit_score(kp, hsp.score);
        hsp.evalue = evalue(kp, hsp.score, qlen, query.db(), query.length_adjust());
        if (hsp.evalue > params.evalue_cutoff) continue;
        annotate_alignment(hsp, q, s, matrix);
        subject_hsps.push_back(std::move(hsp));
      }
    }

    // Containment culling within the subject: keep an HSP only if it is not
    // enveloped by a better one.
    std::sort(subject_hsps.begin(), subject_hsps.end(), Hsp::better);
    std::vector<Hsp> kept;
    for (Hsp& cand : subject_hsps) {
      bool dominated = false;
      for (const Hsp& better_hsp : kept) {
        if (contained_in(cand, better_hsp)) {
          dominated = true;
          break;
        }
      }
      if (!dominated) kept.push_back(std::move(cand));
    }
    for (Hsp& h : kept) result.hsps.push_back(std::move(h));
  }

  // Rank and apply the per-fragment hit-list cut ("local cut").
  std::sort(result.hsps.begin(), result.hsps.end(), Hsp::better);
  if (result.hsps.size() > static_cast<std::size_t>(params.hitlist_size))
    result.hsps.resize(static_cast<std::size_t>(params.hitlist_size));
  result.counters.hsps_found = result.hsps.size();
  return result;
}

}  // namespace pioblast::blast
