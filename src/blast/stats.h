// Karlin–Altschul statistics: bit scores, E-values, effective lengths.
//
// E-values are always computed against the *global* database statistics
// (total residues and sequence count of the whole database), never the
// fragment a worker happens to hold — exactly what mpiBLAST does so that
// database segmentation does not change reported statistics. This is also
// what makes our merged output invariant to the number of fragments, a
// property the integration tests assert.
#pragma once

#include <cstdint>

#include "blast/scoring.h"

namespace pioblast::blast {

/// Statistics of the whole database, distributed to every worker.
struct GlobalDbStats {
  std::uint64_t total_residues = 0;
  std::uint64_t num_seqs = 0;
};

/// Length adjustment ("expected HSP length" correction): the classic
/// iterated ln(K m n) / H formula, clamped so effective lengths stay
/// positive.
std::uint64_t length_adjustment(const KarlinParams& kp, std::uint64_t query_len,
                                const GlobalDbStats& db);

/// Bit score: (lambda * raw - ln K) / ln 2.
double bit_score(const KarlinParams& kp, int raw_score);

/// E-value of a raw score for a query of `query_len` against `db`,
/// using pre-computed length adjustment `adjust`.
double evalue(const KarlinParams& kp, int raw_score, std::uint64_t query_len,
              const GlobalDbStats& db, std::uint64_t adjust);

}  // namespace pioblast::blast
