// Internals shared by the scalar engine (engine.cpp) and the fast kernel
// (kernel_fast.cpp). Both search loops must make identical decisions from
// identical state — the differential kernel tests compare their outputs
// byte for byte — so the per-diagonal bookkeeping and HSP annotation live
// here rather than being duplicated.
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "blast/hsp.h"
#include "blast/scoring.h"
#include "util/error.h"

namespace pioblast::blast::detail {

/// Epoch-stamped per-diagonal table, reused across subjects so the scan
/// does not reallocate or clear for every sequence.
class DiagTable {
 public:
  void begin_subject(std::size_t qlen, std::size_t slen) {
    const std::size_t need = qlen + slen + 1;
    if (entries_.size() < need) entries_.resize(need);
    ++epoch_;
  }

  /// Last seed position recorded on the diagonal (or -1).
  std::int64_t last_seed(std::size_t diag) const {
    const Entry& e = entries_[diag];
    return e.seed_epoch == epoch_ ? e.last_seed : -1;
  }
  void set_last_seed(std::size_t diag, std::int64_t pos) {
    Entry& e = entries_[diag];
    e.seed_epoch = epoch_;
    e.last_seed = pos;
  }

  /// Subject offset up to which this diagonal is covered by an extension.
  std::int64_t covered_until(std::size_t diag) const {
    const Entry& e = entries_[diag];
    return e.cover_epoch == epoch_ ? e.covered : -1;
  }
  void set_covered(std::size_t diag, std::int64_t until) {
    Entry& e = entries_[diag];
    const std::int64_t prev = e.cover_epoch == epoch_ ? e.covered : -1;
    e.cover_epoch = epoch_;
    e.covered = std::max(prev, until);
  }

 private:
  struct Entry {
    std::uint64_t seed_epoch = 0;
    std::uint64_t cover_epoch = 0;
    std::int64_t last_seed = -1;
    std::int64_t covered = -1;
  };
  std::vector<Entry> entries_;
  std::uint64_t epoch_ = 0;
};

/// Region some gapped extension already explored for the current subject —
/// including extensions whose score fell below the cutoffs. Seeds inside an
/// explored envelope are skipped; without this, a weak homolog (below the
/// reporting cutoff) would re-run a near-full-length gapped DP for every
/// one of its seeds.
struct Envelope {
  std::uint32_t qstart, qend;
  std::uint64_t sstart, send;
};

/// Fills identity/positive/gap counts by replaying the traceback.
inline void annotate_alignment(Hsp& hsp, std::span<const std::uint8_t> query,
                               std::span<const std::uint8_t> subject,
                               const ScoringMatrix& matrix) {
  std::uint32_t qi = hsp.qstart;
  std::uint64_t si = hsp.sstart;
  hsp.identities = 0;
  hsp.positives = 0;
  hsp.gaps = 0;
  hsp.align_len = static_cast<std::uint32_t>(hsp.ops.size());
  for (AlignOp op : hsp.ops) {
    switch (op) {
      case AlignOp::kMatch: {
        const std::uint8_t a = query[qi];
        const std::uint8_t b = subject[si];
        if (a == b) ++hsp.identities;
        if (matrix.score(a, b) > 0) ++hsp.positives;
        ++qi;
        ++si;
        break;
      }
      case AlignOp::kInsert:
        ++hsp.gaps;
        ++qi;
        break;
      case AlignOp::kDelete:
        ++hsp.gaps;
        ++si;
        break;
    }
  }
  PIOBLAST_CHECK_MSG(qi == hsp.qend && si == hsp.send,
                     "traceback does not span the HSP coordinates");
}

/// True if `a` is contained within `b`'s envelope on both sequences.
inline bool contained_in(const Hsp& a, const Hsp& b) {
  return a.qstart >= b.qstart && a.qend <= b.qend && a.sstart >= b.sstart &&
         a.send <= b.send;
}

}  // namespace pioblast::blast::detail
