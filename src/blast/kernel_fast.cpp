// The fast search kernel: batched twin of engine.cpp's search_fragment.
//
// Three structural changes over the scalar loop, none of which alter any
// search decision (the differential kernel tests assert bit-identical HSP
// lists and counters):
//
//   1. The fragment is scanned ONCE per batch: FragmentIndex materializes
//      the packed word code at every subject position, so each of the Q
//      queries probes precomputed codes instead of re-packing the subject
//      (the scalar path pays that packing Q times).
//   2. Word probes go through FlatNeighborhood — a contiguous
//      offset-compacted bucket table — instead of WordIndex's
//      vector-of-vectors (protein) / hash map (nucleotide).
//   3. Extensions run through extend_ungapped_fast (SWAR 8-residue skips)
//      and extend_gapped_fast (reusable DP scratch + traceback arena).
//
// The per-(query, subject) control flow below is a line-for-line mirror of
// the scalar loop: same counter accounting, same two-hit rule, same
// coverage and envelope skips, same cutoffs and culling. Keep them in
// lockstep when editing either.
#include <algorithm>

#include "blast/engine.h"
#include "blast/engine_detail.h"
#include "blast/fragment_index.h"
#include "util/error.h"

namespace pioblast::blast {

namespace {

/// Lean twin of detail::DiagTable: one 8-byte entry per diagonal, so each
/// cache line holds 8 diagonals instead of the scalar table's 2. There is
/// no epoch stamp: the table is kept all-{-1,-1} between subjects by
/// re-walking the (short) seed list after processing and clearing exactly
/// the entries it touched — those lines are still hot, while stamping
/// would cost a compare and two selects on every seed. Positions are
/// stored as int32 (the batch driver checks subject lengths fit; query
/// lengths are uint32 already).
struct FastDiags {
  struct Entry {
    std::int32_t last_seed = -1;
    std::int32_t covered = -1;
  };
  /// All entries read {-1,-1} (= never touched) outside process_seeds.
  std::vector<Entry> entries;

  void ensure(std::size_t qlen, std::size_t slen) {
    const std::size_t need = qlen + slen + 1;
    if (entries.size() < need) entries.resize(need);  // value-init = {-1,-1}
  }
};

/// Per-query scan state, persistent across subjects (reusable vectors,
/// exactly like the scalar loop's locals). The diagonal table is NOT per
/// query: process_seeds leaves it all-{-1,-1}, so one table serves every
/// (query, subject) pair — see search_fragment_batch.
struct QueryState {
  std::vector<std::uint64_t> seeds;  ///< (spos << 32) | qpos, one subject
  std::vector<Hsp> subject_hsps;
  std::vector<detail::Envelope> explored;
};

/// Everything the (rare) trigger path needs. Kept out of the seed loop —
/// see run_trigger.
struct TriggerCtx {
  const QueryContext& query;
  std::span<const std::uint8_t> s;
  std::uint64_t subject_global_id;
  QueryState& st;
  GappedScratch& scratch;
  FragmentSearchResult& result;
};

/// Extension path for one triggering seed: ungapped X-drop, then (past the
/// gap trigger) the banded gapped pass, scoring, and HSP construction.
/// Deliberately noinline: only a few percent of seeds trigger, and keeping
/// this out of line keeps the seed-processing loop's code small enough to
/// schedule tightly. Mirrors the scalar loop's trigger block statement for
/// statement.
[[gnu::noinline]] void run_trigger(TriggerCtx& ctx, std::uint32_t qpos,
                                   std::uint64_t spos,
                                   FastDiags::Entry& entry) {
  const QueryContext& query = ctx.query;
  const SearchParams& params = query.params();
  const ScoringMatrix& matrix = query.matrix();
  const std::span<const std::uint8_t> q = query.residues();
  const std::span<const std::uint8_t> s = ctx.s;
  const int w = params.word_size;
  FragmentSearchResult& result = ctx.result;
  QueryState& st = ctx.st;

  ++result.counters.two_hit_triggers;
  const UngappedExtension ung = extend_ungapped_fast(
      q, s, qpos, spos, w, matrix, params.xdrop_ungapped,
      query.self_profile());
  result.counters.ungapped_cells += ung.cells;
  entry.covered = std::max(
      entry.covered,
      static_cast<std::int32_t>(static_cast<std::int64_t>(ung.send) - w));
  if (ung.score < params.gap_trigger) return;

  // Envelope skip: seeds whose ungapped segment lies inside an already
  // explored gapped region would re-derive the same alignment.
  for (const detail::Envelope& env : st.explored) {
    if (ung.qstart >= env.qstart && ung.qend <= env.qend &&
        ung.sstart >= env.sstart && ung.send <= env.send) {
      return;
    }
  }

  // Anchor the gapped pass at the midpoint of the ungapped segment.
  const std::uint32_t half = (ung.qend - ung.qstart) / 2;
  const std::uint32_t anchor_q = ung.qstart + half;
  const std::uint64_t anchor_s = ung.sstart + half;
  GappedExtension gap_ext = extend_gapped_fast(
      q, s, anchor_q, anchor_s, matrix, params.gap_open, params.gap_extend,
      params.xdrop_gapped, ctx.scratch);
  result.counters.gapped_cells += gap_ext.cells;
  result.counters.traceback_cells += gap_ext.ops.size();
  entry.covered = std::max(
      entry.covered,
      static_cast<std::int32_t>(static_cast<std::int64_t>(gap_ext.send) - w));
  st.explored.push_back(
      {gap_ext.qstart, gap_ext.qend, gap_ext.sstart, gap_ext.send});
  if (gap_ext.score < query.cutoff_score()) return;

  Hsp hsp;
  hsp.query_id = query.query_id();
  hsp.subject_global_id = ctx.subject_global_id;
  hsp.qstart = gap_ext.qstart;
  hsp.qend = gap_ext.qend;
  hsp.sstart = gap_ext.sstart;
  hsp.send = gap_ext.send;
  hsp.score = gap_ext.score;
  hsp.ops = std::move(gap_ext.ops);
  const KarlinParams& kp = matrix.gapped();
  hsp.bits = bit_score(kp, hsp.score);
  hsp.evalue =
      evalue(kp, hsp.score, q.size(), query.db(), query.length_adjust());
  if (hsp.evalue > params.evalue_cutoff) return;
  detail::annotate_alignment(hsp, q, s, matrix);
  st.subject_hsps.push_back(std::move(hsp));
}

/// Phase 2 of the subject scan: walk the expanded seed buffer and apply the
/// two-hit / coverage automaton per diagonal. Branchless: the scalar loop's
/// per-seed control flow (first-touch / covered skip / window reset /
/// overlap skip / trigger) is a chain of data-dependent branches that
/// mispredict on essentially random diagonal state; here every outcome is
/// computed with conditional moves and one unconditional 4-byte store,
/// leaving the rare trigger as the only real branch. The truth table
/// matches the scalar loop case for case:
///   fresh entry    -> prev = cov = -1 (first touch)
///   spos <= cov    -> skip, no state change
///   prev<0 | gap>W -> record seed, no trigger
///   gap < w        -> overlap: keep older seed, no trigger
///   else           -> record seed, trigger extension
/// After the walk, a second pass over the same seed list resets every
/// touched entry to {-1,-1}, restoring the table invariant for the next
/// subject (the lines are still in cache, so this is far cheaper than
/// epoch-stamping each seed).
template <bool kTwoHit>
void process_seeds(TriggerCtx& ctx, FastDiags& table, std::size_t nseeds,
                   std::size_t qlen, int w, int window) {
  QueryState& st = ctx.st;
  const std::uint64_t* const sp = st.seeds.data();
  FastDiags::Entry* const diags = table.entries.data();
  for (std::size_t i = 0; i < nseeds; ++i) {
    const std::uint64_t pk = sp[i];
    const std::uint32_t spos = static_cast<std::uint32_t>(pk >> 32);
    const std::uint32_t qpos = static_cast<std::uint32_t>(pk);
    const std::int32_t spos32 = static_cast<std::int32_t>(spos);
    FastDiags::Entry& entry = diags[static_cast<std::size_t>(spos) + qlen - qpos];
    const std::int32_t prev = entry.last_seed;
    const std::int32_t cov = entry.covered;
    const bool cov_skip = spos32 <= cov;
    const std::int32_t gap = spos32 - prev;
    const bool reset = (prev < 0) | (gap > window);
    const bool trigger =
        kTwoHit ? ((!cov_skip) & (!reset) & (gap >= w)) : !cov_skip;
    const bool record = (!cov_skip) & (reset | trigger);
    entry.last_seed = record ? spos32 : prev;
    if (trigger) [[unlikely]]
      run_trigger(ctx, qpos, spos, entry);
  }
  for (std::size_t i = 0; i < nseeds; ++i) {
    const std::uint64_t pk = sp[i];
    const std::uint32_t spos = static_cast<std::uint32_t>(pk >> 32);
    const std::uint32_t qpos = static_cast<std::uint32_t>(pk);
    diags[static_cast<std::size_t>(spos) + qlen - qpos] = FastDiags::Entry{};
  }
}

/// Containment culling within one subject: keep an HSP only if it is not
/// enveloped by a better one, then flush survivors to the fragment result.
void cull_and_flush(QueryState& st, FragmentSearchResult& result) {
  std::sort(st.subject_hsps.begin(), st.subject_hsps.end(), Hsp::better);
  std::vector<Hsp> kept;
  for (Hsp& cand : st.subject_hsps) {
    bool dominated = false;
    for (const Hsp& better_hsp : kept) {
      if (detail::contained_in(cand, better_hsp)) {
        dominated = true;
        break;
      }
    }
    if (!dominated) kept.push_back(std::move(cand));
  }
  for (Hsp& h : kept) result.hsps.push_back(std::move(h));
}

/// One (query, subject) scan for the nucleotide path: expand this query's
/// hash-probe hits into the seed buffer, then run the diagonal automaton.
void scan_subject_dna(const QueryContext& query,
                      std::span<const std::uint8_t> s,
                      std::uint64_t subject_global_id,
                      std::span<const std::uint64_t> codes64, QueryState& st,
                      FastDiags& diags, GappedScratch& scratch,
                      FragmentSearchResult& result) {
  const SearchParams& params = query.params();
  const std::size_t qlen = query.residues().size();
  const int w = params.word_size;
  const bool two_hit = params.two_hit_window > 0;
  const FlatNeighborhood& flat = query.flat_index();

  diags.ensure(qlen, s.size());
  st.subject_hsps.clear();
  st.explored.clear();

  const std::size_t nwords = s.size() - static_cast<std::size_t>(w) + 1;
  if (st.seeds.size() < nwords) st.seeds.resize(nwords);
  std::uint64_t* bp = st.seeds.data();
  std::size_t cur = 0;
  for (std::size_t spos = 0; spos < nwords; ++spos) {
    const std::uint64_t code = codes64[spos];
    if (code == FragmentIndex::kInvalidWord) continue;  // scalar: word has N
    const std::span<const std::uint32_t> hits = flat.neighbors_packed(code);
    if (hits.empty()) continue;
    if (cur + hits.size() > st.seeds.size()) [[unlikely]] {
      st.seeds.resize(std::max(st.seeds.size() * 2, cur + hits.size()));
      bp = st.seeds.data();
    }
    const std::uint64_t hi = static_cast<std::uint64_t>(spos) << 32;
    for (const std::uint32_t qpos : hits) bp[cur++] = hi | qpos;
  }
  result.counters.seed_hits += cur;  // == the scalar per-seed ++

  TriggerCtx ctx{query, s, subject_global_id, st, scratch, result};
  if (two_hit) {
    process_seeds<true>(ctx, diags, cur, qlen, w, params.two_hit_window);
  } else {
    process_seeds<false>(ctx, diags, cur, qlen, w, params.two_hit_window);
  }
  cull_and_flush(st, result);
}

/// Merged neighborhood over the whole protein batch: per word, the
/// concatenation of every query's bucket in query-id-major order (positions
/// stay ascending within a query, exactly the per-query bucket order). One
/// probe of this table per subject position services the entire QuerySet —
/// the scalar path probes per (query, position).
struct BatchNeighborhood {
  static constexpr std::uint32_t kQposBits = 22;
  static constexpr std::uint32_t kQposMask = (1u << kQposBits) - 1;
  std::vector<std::uint32_t> offsets;  ///< 24^3 + 1 bucket bounds
  std::vector<std::uint32_t> entries;  ///< (query id << 22) | query position

  explicit BatchNeighborhood(std::span<const QueryContext> queries) {
    constexpr std::uint32_t kWords = 24u * 24u * 24u;
    offsets.assign(kWords + 1, 0);
    std::size_t total = 0;
    for (const QueryContext& qc : queries) {
      const std::span<const std::uint32_t> offs = qc.flat_index().offsets();
      for (std::uint32_t c = 0; c < kWords; ++c)
        offsets[c + 1] += offs[c + 1] - offs[c];
      total += qc.flat_index().total_entries();
    }
    for (std::uint32_t c = 0; c < kWords; ++c) offsets[c + 1] += offsets[c];
    entries.resize(total);
    std::vector<std::uint32_t> cursor(offsets.begin(), offsets.end() - 1);
    for (std::size_t qi = 0; qi < queries.size(); ++qi) {
      const FlatNeighborhood& flat = queries[qi].flat_index();
      const std::span<const std::uint32_t> offs = flat.offsets();
      const std::span<const std::uint32_t> ent = flat.entries();
      const std::uint32_t tag = static_cast<std::uint32_t>(qi) << kQposBits;
      for (std::uint32_t c = 0; c < kWords; ++c)
        for (std::uint32_t k = offs[c]; k < offs[c + 1]; ++k)
          entries[cursor[c]++] = tag | ent[k];
    }
  }
};

}  // namespace

std::vector<FragmentSearchResult> search_fragment_batch(
    std::span<const QueryContext> queries,
    const seqdb::LoadedFragment& fragment, KernelKind kernel) {
  std::vector<FragmentSearchResult> results(queries.size());
  if (queries.empty()) return results;

  if (kernel == KernelKind::kScalar) {
    for (std::size_t i = 0; i < queries.size(); ++i)
      results[i] = search_fragment(queries[i], fragment);
    return results;
  }

  const SearchParams& params = queries[0].params();
  const std::size_t w = static_cast<std::size_t>(params.word_size);
  const bool is_dna = params.type == seqdb::SeqType::kNucleotide;
  for (const QueryContext& qc : queries) {
    PIOBLAST_CHECK_MSG(qc.params().type == params.type &&
                           qc.params().word_size == params.word_size,
                       "batched queries must share word size and type");
  }

  // One fragment scan for the whole batch.
  const FragmentIndex index(fragment, params);

  if (is_dna) {
    // Nucleotide: query-outer keeps each query's probe table cache-hot
    // across the fragment (the precomputed codes stream sequentially, so
    // re-reading them per query is cheap; seeds are sparse).
    QueryState state;
    FastDiags diags;
    GappedScratch scratch;
    for (std::size_t i = 0; i < queries.size(); ++i) {
      // A query shorter than the word size produces an empty result with
      // zero counters in the scalar kernel; mirror that exactly.
      if (queries[i].residues().size() < w) continue;
      for (std::uint64_t local = 0; local < fragment.num_seqs(); ++local) {
        const std::span<const std::uint8_t> s = fragment.sequence(local);
        results[i].counters.db_residues_scanned += s.size();
        if (s.size() < w) continue;
        // FastDiags stores positions as int32; subject lengths outside that
        // range would need the scalar kernel's 64-bit table.
        PIOBLAST_CHECK_MSG(s.size() < (1ull << 31),
                           "fast kernel: subject exceeds int32 position range");
        scan_subject_dna(queries[i], s, fragment.global_id(local),
                         index.codes64(local), state, diags, scratch,
                         results[i]);
      }
    }
  } else {
    // Protein: subject-outer with a merged batch neighborhood. Each subject
    // position is probed ONCE for the whole QuerySet; the bucket scatters
    // (spos, qpos) seeds into per-query buffers which are then run through
    // the diagonal automaton query by query. Bucket entries are
    // query-id-major with ascending positions, so every query sees exactly
    // the seed sequence its own per-query scan would produce.
    PIOBLAST_CHECK_MSG(queries.size() < (1u << 10),
                       "fast kernel: batch exceeds query-id tag range");
    for (const QueryContext& qc : queries)
      PIOBLAST_CHECK_MSG(qc.residues().size() < (1u << BatchNeighborhood::kQposBits),
                         "fast kernel: query exceeds position tag range");
    const BatchNeighborhood batch(queries);
    const std::uint32_t* const offs = batch.offsets.data();
    const std::uint32_t* const ent = batch.entries.data();
    const bool two_hit = params.two_hit_window > 0;

    std::vector<QueryState> states(queries.size());
    // Cached per-query buffer pointers so the scatter loop avoids chasing
    // vector internals per seed; refreshed when a buffer grows.
    std::vector<std::uint64_t*> bufs(queries.size());
    std::vector<std::uint32_t> caps(queries.size(), 0);
    std::vector<std::uint32_t> cur(queries.size());
    GappedScratch scratch;
    // ONE diagonal table for the whole batch: process_seeds restores it to
    // all-{-1,-1} after each (query, subject) pair, so sharing it is safe
    // and keeps the hot table L1-resident (a few KB) instead of spreading
    // the seed automaton's loads across per-query tables.
    FastDiags diags;
    std::size_t max_qlen = 0;
    for (const QueryContext& qc : queries)
      max_qlen = std::max(max_qlen, qc.residues().size());

    // Residues scanned is a pure per-subject sum: accumulate it once and
    // credit every participating query (the scalar loop adds it subject by
    // subject; queries shorter than the word size never scan at all).
    std::uint64_t total_residues = 0;
    for (std::uint64_t local = 0; local < fragment.num_seqs(); ++local)
      total_residues += fragment.sequence(local).size();
    for (std::size_t i = 0; i < queries.size(); ++i)
      if (queries[i].residues().size() >= w)
        results[i].counters.db_residues_scanned += total_residues;

    for (std::uint64_t local = 0; local < fragment.num_seqs(); ++local) {
      const std::span<const std::uint8_t> s = fragment.sequence(local);
      if (s.size() < w) continue;
      PIOBLAST_CHECK_MSG(s.size() < (1ull << 31),
                         "fast kernel: subject exceeds int32 position range");
      const std::span<const std::uint32_t> codes32 = index.codes32(local);
      const std::size_t nwords = codes32.size();
      diags.ensure(max_qlen, s.size());

      // Scatter this subject's seeds into the per-query buffers.
      std::fill(cur.begin(), cur.end(), 0u);
      for (std::size_t spos = 0; spos < nwords; ++spos) {
        const std::uint32_t c = codes32[spos];
        const std::uint64_t hi = static_cast<std::uint64_t>(spos) << 32;
        const std::uint32_t e = offs[c + 1];
        for (std::uint32_t k = offs[c]; k < e; ++k) {
          const std::uint32_t tag = ent[k];
          const std::uint32_t qi = tag >> BatchNeighborhood::kQposBits;
          if (cur[qi] >= caps[qi]) [[unlikely]] {
            std::vector<std::uint64_t>& sv = states[qi].seeds;
            sv.resize(std::max<std::size_t>(256, sv.size() * 2));
            bufs[qi] = sv.data();
            caps[qi] = static_cast<std::uint32_t>(sv.size());
          }
          bufs[qi][cur[qi]++] = hi | (tag & BatchNeighborhood::kQposMask);
        }
      }

      // Run each query's diagonal automaton over its seeds.
      for (std::size_t i = 0; i < queries.size(); ++i) {
        const std::size_t nseeds = cur[i];
        if (nseeds == 0) continue;
        QueryState& st = states[i];
        const std::size_t qlen = queries[i].residues().size();
        results[i].counters.seed_hits += nseeds;  // == the scalar per-seed ++
        st.subject_hsps.clear();
        st.explored.clear();
        TriggerCtx ctx{queries[i], s,       fragment.global_id(local),
                       st,         scratch, results[i]};
        if (two_hit) {
          process_seeds<true>(ctx, diags, nseeds, qlen, params.word_size,
                              params.two_hit_window);
        } else {
          process_seeds<false>(ctx, diags, nseeds, qlen, params.word_size,
                               params.two_hit_window);
        }
        if (!st.subject_hsps.empty()) cull_and_flush(st, results[i]);
      }
    }
  }

  // Rank and apply the per-fragment hit-list cut ("local cut").
  for (std::size_t i = 0; i < queries.size(); ++i) {
    FragmentSearchResult& r = results[i];
    const int hitlist = queries[i].params().hitlist_size;
    std::sort(r.hsps.begin(), r.hsps.end(), Hsp::better);
    if (r.hsps.size() > static_cast<std::size_t>(hitlist))
      r.hsps.resize(static_cast<std::size_t>(hitlist));
    r.counters.hsps_found = r.hsps.size();
  }
  return results;
}

FragmentSearchResult search_fragment_fast(const QueryContext& query,
                                          const seqdb::LoadedFragment& fragment) {
  std::vector<FragmentSearchResult> results =
      search_fragment_batch({&query, 1}, fragment, KernelKind::kFast);
  return std::move(results.front());
}

}  // namespace pioblast::blast
