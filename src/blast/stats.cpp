#include "blast/stats.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"

namespace pioblast::blast {

std::uint64_t length_adjustment(const KarlinParams& kp, std::uint64_t query_len,
                                const GlobalDbStats& db) {
  PIOBLAST_CHECK(kp.H > 0);
  const double m = static_cast<double>(std::max<std::uint64_t>(query_len, 1));
  const double n = static_cast<double>(std::max<std::uint64_t>(db.total_residues, 1));
  const double ns = static_cast<double>(std::max<std::uint64_t>(db.num_seqs, 1));
  // Fixed-point iteration of l = ln(K (m-l)(n - ns*l)) / H, five rounds as
  // in the classic NCBI implementation; clamp to keep lengths positive.
  double l = 0.0;
  for (int iter = 0; iter < 5; ++iter) {
    const double me = std::max(m - l, 1.0);
    const double ne = std::max(n - ns * l, ns);
    const double arg = std::max(kp.K * me * ne, 1.0 + 1e-9);
    l = std::log(arg) / kp.H;
  }
  l = std::max(0.0, std::min(l, m - 1.0));
  return static_cast<std::uint64_t>(l);
}

double bit_score(const KarlinParams& kp, int raw_score) {
  return (kp.lambda * raw_score - std::log(kp.K)) / std::log(2.0);
}

double evalue(const KarlinParams& kp, int raw_score, std::uint64_t query_len,
              const GlobalDbStats& db, std::uint64_t adjust) {
  const double m_eff =
      static_cast<double>(std::max<std::uint64_t>(query_len - adjust, 1));
  const std::uint64_t db_adjust = db.num_seqs * adjust;
  const double n_eff = static_cast<double>(
      db.total_residues > db_adjust ? db.total_residues - db_adjust : 1);
  return kp.K * m_eff * n_eff * std::exp(-kp.lambda * raw_score);
}

}  // namespace pioblast::blast
