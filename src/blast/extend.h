// Seed extension: ungapped X-drop and gapped affine-cost X-drop DP.
//
// Mirrors the NCBI BLAST pipeline stages: a two-hit-triggered seed is first
// extended without gaps along its diagonal; if the ungapped score reaches
// the gap trigger, a gapped extension runs in both directions from an
// anchor inside the ungapped segment, with traceback so the final HSP
// carries a full alignment (needed for output formatting and identity
// counts). Cell counters feed the deterministic compute-cost model.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "blast/hsp.h"
#include "blast/scoring.h"

namespace pioblast::blast {

/// Result of an ungapped X-drop extension around a seed.
struct UngappedExtension {
  int score = 0;
  std::uint32_t qstart = 0, qend = 0;  ///< half-open on the query
  std::uint64_t sstart = 0, send = 0;  ///< half-open on the subject
  std::uint64_t cells = 0;             ///< residue pairs examined
};

/// Extends the `word_size` seed at (qpos, spos) along its diagonal in both
/// directions, stopping when the running score drops `xdrop` below the best.
UngappedExtension extend_ungapped(std::span<const std::uint8_t> query,
                                  std::span<const std::uint8_t> subject,
                                  std::uint32_t qpos, std::uint64_t spos,
                                  int word_size, const ScoringMatrix& matrix,
                                  int xdrop);

/// Result of a gapped extension (both directions combined).
struct GappedExtension {
  int score = 0;
  std::uint32_t qstart = 0, qend = 0;
  std::uint64_t sstart = 0, send = 0;
  std::vector<AlignOp> ops;  ///< traceback from (qstart,sstart) to (qend,send)
  std::uint64_t cells = 0;   ///< DP cells evaluated (both directions)
};

/// Gapped X-drop extension anchored at the aligned pair (anchor_q,
/// anchor_s), which must lie inside a seeded match. Gap costs follow the
/// NCBI convention: a gap of length k costs open + k * extend.
GappedExtension extend_gapped(std::span<const std::uint8_t> query,
                              std::span<const std::uint8_t> subject,
                              std::uint32_t anchor_q, std::uint64_t anchor_s,
                              const ScoringMatrix& matrix, int gap_open,
                              int gap_extend, int xdrop);

// ---- fast-kernel extension paths ------------------------------------------
//
// Same inputs, bit-identical outputs (scores, coordinates, tracebacks,
// cell counts) as the scalar functions above — the differential kernel
// tests enforce this. The speed comes from mechanical restructuring only:
// SWAR 8-residue skips over identical diagonal runs (ungapped), hoisted
// scoring-matrix row pointers, and reusable DP scratch with a flat
// traceback arena instead of per-cell vector growth (gapped).

/// Per-query precomputation for the SWAR ungapped skip: prefix sums of the
/// query's self-alignment scores and a prefix count of positions whose
/// self score is strictly positive. An 8-residue block may be skipped only
/// when the subject bytes are identical AND every self score in the block
/// is positive, which makes the scalar loop's running score strictly
/// monotone across the block (no X-drop, best always at the block end).
struct SelfScoreProfile {
  std::vector<int> prefix;            ///< prefix[i] = sum self scores < i
  std::vector<std::uint32_t> positive;///< positive[i] = count positive < i

  SelfScoreProfile() = default;
  SelfScoreProfile(std::span<const std::uint8_t> query,
                   const ScoringMatrix& matrix);
};

/// Fast twin of extend_ungapped (identical result, identical cells).
UngappedExtension extend_ungapped_fast(std::span<const std::uint8_t> query,
                                       std::span<const std::uint8_t> subject,
                                       std::uint32_t qpos, std::uint64_t spos,
                                       int word_size,
                                       const ScoringMatrix& matrix, int xdrop,
                                       const SelfScoreProfile& self);

/// Reusable DP buffers for extend_gapped_fast; one per searching thread.
/// Holding the arena across calls removes the per-cell push_back and
/// per-call row allocations of the scalar path.
struct GappedScratch {
  std::vector<int> H, F;
  std::vector<std::uint8_t> dirs;  ///< traceback bytes, all rows contiguous
  struct Row {
    std::size_t lo;     ///< first column of the row's window
    std::size_t start;  ///< offset of the row's bytes in `dirs`
    std::size_t len;
  };
  std::vector<Row> rows;
  std::vector<std::uint8_t> qrev, srev;  ///< reversed prefixes (left pass)
};

/// Fast twin of extend_gapped (identical result, identical cells).
GappedExtension extend_gapped_fast(std::span<const std::uint8_t> query,
                                   std::span<const std::uint8_t> subject,
                                   std::uint32_t anchor_q,
                                   std::uint64_t anchor_s,
                                   const ScoringMatrix& matrix, int gap_open,
                                   int gap_extend, int xdrop,
                                   GappedScratch& scratch);

}  // namespace pioblast::blast
