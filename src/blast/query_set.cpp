#include "blast/query_set.h"

#include "seqdb/alphabet.h"

namespace pioblast::blast {

std::shared_ptr<const QuerySet> QuerySet::build(const std::string& fasta_text,
                                                const SearchParams& params,
                                                const GlobalDbStats& stats) {
  auto set = std::shared_ptr<QuerySet>(new QuerySet());
  set->queries_ = seqdb::parse_fasta(fasta_text);
  set->matrix_ = std::make_shared<const ScoringMatrix>(make_matrix(params));
  set->stats_ = stats;
  set->contexts_.reserve(set->queries_.size());
  for (std::uint32_t q = 0; q < set->queries_.size(); ++q) {
    set->contexts_.emplace_back(
        q,
        seqdb::encode_sequence(params.type, set->queries_[q].sequence),
        params, *set->matrix_, stats);
  }
  return set;
}

}  // namespace pioblast::blast
