// Wire serialization of HSPs and candidate metadata.
//
// mpiBLAST workers ship *entire* local result alignments to the master
// (encode_hsp/decode_hsp); pioBLAST workers ship only the small
// CandidateMeta records (paper §3.2: "alignment identifications, necessary
// scores, and alignment output sizes"), keeping bodies — and the formatted
// text — cached locally. The size difference between the two encodings is
// precisely the message-volume reduction the paper claims.
#pragma once

#include <cstdint>
#include <vector>

#include "blast/hsp.h"
#include "mpisim/wire.h"

namespace pioblast::blast {

/// Full HSP (with traceback) — the mpiBLAST result-submission record.
inline void encode_hsp(mpisim::Encoder& enc, const Hsp& h) {
  enc.put(h.query_id)
      .put(h.subject_global_id)
      .put(h.qstart)
      .put(h.qend)
      .put(h.sstart)
      .put(h.send)
      .put(h.score)
      .put(h.bits)
      .put(h.evalue)
      .put(h.identities)
      .put(h.positives)
      .put(h.gaps)
      .put(h.align_len);
  std::vector<std::uint8_t> ops(h.ops.size());
  for (std::size_t i = 0; i < h.ops.size(); ++i)
    ops[i] = static_cast<std::uint8_t>(h.ops[i]);
  enc.put_vector(ops);
}

inline Hsp decode_hsp(mpisim::Decoder& dec) {
  Hsp h;
  h.query_id = dec.get<std::uint32_t>();
  h.subject_global_id = dec.get<std::uint64_t>();
  h.qstart = dec.get<std::uint32_t>();
  h.qend = dec.get<std::uint32_t>();
  h.sstart = dec.get<std::uint64_t>();
  h.send = dec.get<std::uint64_t>();
  h.score = dec.get<std::int32_t>();
  h.bits = dec.get<double>();
  h.evalue = dec.get<double>();
  h.identities = dec.get<std::uint32_t>();
  h.positives = dec.get<std::uint32_t>();
  h.gaps = dec.get<std::uint32_t>();
  h.align_len = dec.get<std::uint32_t>();
  const auto ops = dec.get_vector<std::uint8_t>();
  h.ops.reserve(ops.size());
  for (std::uint8_t op : ops) h.ops.push_back(static_cast<AlignOp>(op));
  return h;
}

/// Lean candidate record — the pioBLAST result-submission record. Fixed
/// size (48 bytes on the wire), independent of alignment length.
struct CandidateMeta {
  std::uint32_t query_id = 0;
  std::uint32_t local_index = 0;  ///< index into the owner's result cache
  std::uint64_t subject_global_id = 0;
  std::int32_t score = 0;
  std::int32_t owner = 0;  ///< worker rank holding the cached body
  double evalue = 0.0;
  std::uint64_t output_size = 0;  ///< formatted alignment text bytes
  std::uint32_t qstart = 0;       ///< tie-break
  std::uint32_t sstart32 = 0;     ///< tie-break (truncated subject start)

  /// Total order consistent with Hsp::better so both drivers select the
  /// same winners.
  static bool better(const CandidateMeta& a, const CandidateMeta& b) {
    if (a.score != b.score) return a.score > b.score;
    if (a.evalue != b.evalue) return a.evalue < b.evalue;
    if (a.subject_global_id != b.subject_global_id)
      return a.subject_global_id < b.subject_global_id;
    if (a.qstart != b.qstart) return a.qstart < b.qstart;
    return a.sstart32 < b.sstart32;
  }
};

inline void encode_candidate(mpisim::Encoder& enc, const CandidateMeta& c) {
  enc.put(c.query_id)
      .put(c.local_index)
      .put(c.subject_global_id)
      .put(c.score)
      .put(c.owner)
      .put(c.evalue)
      .put(c.output_size)
      .put(c.qstart)
      .put(c.sstart32);
}

inline CandidateMeta decode_candidate(mpisim::Decoder& dec) {
  CandidateMeta c;
  c.query_id = dec.get<std::uint32_t>();
  c.local_index = dec.get<std::uint32_t>();
  c.subject_global_id = dec.get<std::uint64_t>();
  c.score = dec.get<std::int32_t>();
  c.owner = dec.get<std::int32_t>();
  c.evalue = dec.get<double>();
  c.output_size = dec.get<std::uint64_t>();
  c.qstart = dec.get<std::uint32_t>();
  c.sstart32 = dec.get<std::uint32_t>();
  return c;
}

}  // namespace pioblast::blast

namespace pioblast::mpisim {

/// Typed-channel bindings delegating to the shared serializers above.
template <>
struct WireCodec<blast::Hsp> {
  static void encode(Encoder& enc, const blast::Hsp& h) {
    blast::encode_hsp(enc, h);
  }
  static blast::Hsp decode(Decoder& dec) { return blast::decode_hsp(dec); }
};

template <>
struct WireCodec<blast::CandidateMeta> {
  static void encode(Encoder& enc, const blast::CandidateMeta& c) {
    blast::encode_candidate(enc, c);
  }
  static blast::CandidateMeta decode(Decoder& dec) {
    return blast::decode_candidate(dec);
  }
};

}  // namespace pioblast::mpisim
