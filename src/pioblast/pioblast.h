// pioBLAST: the paper's contribution.
//
// Same search kernel and identical output as the mpiBLAST baseline, with
// the three data-handling optimizations of Section 3:
//
//   1. Direct global database access + dynamic partitioning (§3.1): the
//      master derives per-worker (start, end) byte ranges of the shared
//      formatted volumes from the global index; workers read their ranges
//      in parallel with individual MPI-IO reads into memory buffers. No
//      physical fragments, no copy stage; the search kernel runs on the
//      in-memory buffers (no I/O embedded in the search phase).
//   2. Result caching + lean merging (§3.2): workers format and cache
//      their candidate alignment text locally and submit only fixed-size
//      metadata records (id, score, output size) for global screening.
//   3. Parallel output (§3.3): the master computes per-alignment offsets
//      in the single shared output file, distributes them, and every rank
//      writes its cached buffers through an MPI-IO file view with one
//      two-phase collective write (paper Figure 2, left).
//
// Optional extensions from Section 5 (off by default, measured by the
// ablation bench):
//   * early score broadcast — per query, workers agree on a global score
//     threshold (the max over workers of each worker's hitlist-th best
//     local score, a valid lower bound on the global cut) and prune
//     submissions below it, shrinking merge volume without changing output;
//   * collective input — read the database ranges with collective reads
//     instead of individual ones;
//   * fragment refinement — more virtual fragments than workers, assigned
//     by a pluggable static scheduler (finer granularity for load
//     balancing studies).
//
// Implemented on the shared driver framework (src/driver): range
// assignment goes through a pluggable driver::Scheduler (static policies
// pre-plan and pre-send; the greedy policy serves ranges at run time over
// driver::serve_work), the per-query search loop is driver::SearchStage,
// and structured messages run over typed driver::Channels.
#pragma once

#include "blast/driver.h"
#include "blast/engine.h"
#include "blast/job.h"
#include "driver/scheduler.h"
#include "mpisim/exec.h"
#include "mpisim/fault.h"
#include "mpisim/hooks.h"
#include "mpisim/trace.h"
#include "pario/collective.h"
#include "pario/env.h"
#include "sim/cluster.h"

namespace pioblast::pio {

struct PioBlastOptions {
  blast::JobConfig job;
  /// Optional event tracer (not owned; must outlive the run).
  mpisim::Tracer* tracer = nullptr;
  /// Protocol verifier (mpisim/verifier.h): audits the run for deadlock,
  /// collective order, tag registry conformance, typed payloads, and
  /// message leaks. On by default; `--verify off` in the CLI disables it.
  bool verify = true;
  /// Protospec runtime conformance (protospec/conform.h): replay the run's
  /// trace against the declarative pioblast protocol spec and throw
  /// mpisim::VerifyError on the first divergent event. Uses `tracer` when
  /// set, otherwise records an internal trace. The CLI's --conformance.
  bool conformance = false;
  bool early_score_broadcast = false;  ///< §5 local-pruning extension
  bool collective_input = false;       ///< read input ranges collectively
  /// Range-assignment policy. Static policies (round-robin, the
  /// heterogeneity-aware speed-weighted apportionment) are planned and
  /// distributed up front — the only mode compatible with collective
  /// input, whose round structure must be known before the run. The
  /// greedy policy hands out file ranges at run time as workers finish —
  /// "the file ranges can be decided at run time and differentiated
  /// between different workers" (§5).
  driver::SchedulerKind scheduler = driver::SchedulerKind::kStaticRoundRobin;
  /// Legacy alias for `scheduler = kGreedyDynamic` (§5 dynamic load
  /// balancing). Use with job.nfragments > nworkers for finer task
  /// granularity. Incompatible with collective_input (assignment order is
  /// data-dependent).
  bool dynamic_scheduling = false;
  /// §5 memory adaptivity: merge and flush queries in batches of this size
  /// (one collective write per batch), bounding the cached-output memory.
  /// 0 = a single flush at the end (the default, maximum aggregation).
  std::uint32_t query_batch = 0;
  /// MPI-IO-style access hints (pario/env.h): cb_nodes / cb_buffer_size
  /// tune the two-phase collectives (output, and input when
  /// collective_input is on); the ds_* / list knobs shape the independent
  /// fragment-range reads. The CLI's --pario-hints flag.
  pario::Hints hints{};
  /// Fault injections (crashes, stragglers, drops); inert by default. An
  /// active plan switches the run into its fault-tolerant paths: with the
  /// greedy scheduler a lost worker's ranges are reassigned; collective
  /// I/O falls back to independent transfers for the survivors. See
  /// mpisim/fault.h and the CLI's --fault flag.
  mpisim::FaultPlan faults;
  /// mpicheck hooks (mpisim/hooks.h; either may be null, neither owned):
  /// a deterministic cooperative scheduler and a happens-before race
  /// detector. Set by the CLI's --check/--schedule modes and by tests.
  mpisim::ScheduleHook* schedule = nullptr;
  mpisim::RaceHook* race = nullptr;
  /// Rank execution backend (mpisim/exec.h): threads (default) or the
  /// single-threaded fiber event loop. The CLI's --exec-model flag.
  mpisim::ExecModel exec = mpisim::ExecModel::kThreads;
  /// Search-kernel implementation (blast/engine.h). Both kernels produce
  /// bit-identical output and virtual time; the CLI's --kernel flag.
  blast::KernelKind kernel = blast::KernelKind::kFast;
};

/// Runs pioBLAST with `nprocs` simulated processes (1 master + workers)
/// against the formatted database job.db_base on storage.shared().
blast::DriverResult run_pioblast(const sim::ClusterConfig& cluster, int nprocs,
                                 pario::ClusterStorage& storage,
                                 const PioBlastOptions& opts);

}  // namespace pioblast::pio
