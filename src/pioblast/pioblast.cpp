#include "pioblast/pioblast.h"

#include <algorithm>
#include <limits>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "blast/engine.h"
#include "blast/format.h"
#include "blast/query_set.h"
#include "blast/serialize.h"
#include "driver/channel.h"
#include "driver/master_worker.h"
#include "driver/messages.h"
#include "driver/range_reader.h"
#include "driver/search_stage.h"
#include "driver/tags.h"
#include "driver/work_queue.h"
#include "mpisim/wire.h"
#include "pario/file.h"
#include "protospec/conform.h"
#include "protospec/spec.h"
#include "seqdb/partition.h"
#include "util/error.h"

namespace pioblast::pio {

namespace {

constexpr driver::Channel<driver::RangeAssignment> kRanges{driver::kTagRanges};
constexpr driver::Channel<driver::OutputSelection> kSelect{driver::kTagSelect};

class PioBlastApp final : public driver::MasterWorkerApp {
 public:
  PioBlastApp(const sim::ClusterConfig& cluster, int nprocs,
              pario::ClusterStorage& storage, const PioBlastOptions& opts,
              std::shared_ptr<const blast::QuerySet> queries,
              driver::SchedulerKind kind)
      : MasterWorkerApp(cluster, nprocs, storage, opts.job, std::move(queries),
                        opts.tracer),
        opts_(opts),
        scheduler_(driver::make_scheduler(kind)),
        dynamic_(kind == driver::SchedulerKind::kGreedyDynamic) {
    set_verify(opts.verify);
    set_faults(opts.faults);
    set_check(opts.schedule, opts.race);
    set_exec(opts.exec);
  }

 private:
  // The protocol interleaves master and worker steps around shared
  // collectives, so the whole thing is one body() — keeping the collective
  // call order textually in one place.
  void body(mpisim::Process& p) override;

  void output_stage(mpisim::Process& p, driver::SearchStage& stage,
                    const blast::GlobalDbStats& db_stats);

  const PioBlastOptions& opts_;
  std::unique_ptr<driver::Scheduler> scheduler_;
  bool dynamic_;
};

void PioBlastApp::body(mpisim::Process& p) {
  const seqdb::SeqType type = opts_.job.params.type;
  const seqdb::VolumeNames names = seqdb::volume_names(opts_.job.db_base, type);

  // ---- dynamic partitioning (still in the init "other" phase) ------------
  blast::GlobalDbStats db_stats;
  std::vector<seqdb::FragmentRange> my_ranges;   // static assignment
  std::vector<seqdb::FragmentRange> all_ranges;  // master, greedy mode
  std::uint32_t rounds = 0;  // collective-input rounds (static mode)

  if (p.is_root()) {
    // The master reads the global index and computes the per-worker file
    // ranges ("virtual fragments") — paper §3.1.
    const auto pin = pario::timed_read_all(p, shared(), names.index, 1);
    const seqdb::DbIndex index = seqdb::DbIndex::deserialize(pin);
    db_stats = {index.total_residues, index.num_seqs};
    const int nfragments =
        opts_.job.nfragments > 0 ? opts_.job.nfragments : nworkers();
    auto ranges = seqdb::virtual_partition(index, nfragments);
    const auto total = static_cast<std::uint32_t>(ranges.size());

    if (dynamic_) {
      // §5 extension: ranges are handed out greedily during the run.
      all_ranges = std::move(ranges);
    } else {
      // Static assignment of virtual fragments to workers, planned by the
      // configured scheduler (round-robin or speed-weighted).
      const auto plans = scheduler_->plan(total, topology());
      for (const auto& plan : plans)
        rounds = std::max(rounds, static_cast<std::uint32_t>(plan.size()));
      for (int w = 0; w < nworkers(); ++w) {
        driver::RangeAssignment assignment;
        assignment.total_fragments = total;
        assignment.rounds = rounds;
        for (const std::uint32_t t : plans[static_cast<std::size_t>(w)])
          assignment.ranges.push_back(ranges[t]);
        kRanges.send(p, w + 1, assignment);
      }
      metrics().add(driver::kMetricTasksAssigned, total);
    }
  } else if (!dynamic_) {
    driver::RangeAssignment assignment = kRanges.recv(p, 0);
    my_ranges = std::move(assignment.ranges);
    rounds = assignment.rounds;
  }

  {
    // Database statistics ride the broadcast channel.
    std::vector<std::uint8_t> stats_buf;
    if (p.is_root()) {
      mpisim::Encoder enc;
      enc.put(db_stats.total_residues).put(db_stats.num_seqs);
      stats_buf = enc.take();
    }
    p.bcast(stats_buf, 0);
    mpisim::Decoder dec(stats_buf);
    db_stats.total_residues = dec.get<std::uint64_t>();
    db_stats.num_seqs = dec.get<std::uint64_t>();
  }

  // ---- parallel input stage ("input") ------------------------------------
  p.set_phase("input");
  driver::SearchStage stage(queries(), &metrics(), opts_.kernel);
  // A header-only index view is enough to rebuild fragments from slices.
  seqdb::DbIndex header_view;
  header_view.type = type;

  // Reads one virtual fragment's byte ranges with individual MPI-IO
  // reads from every shared database file (paper §4.1 / §5), all workers
  // in parallel. The v2 list-I/O path merges and sieves the per-file
  // request lists; with the naive hints it is the historical one read per
  // range.
  auto read_range = [&](const seqdb::FragmentRange& range) {
    auto frags = driver::read_fragment_ranges(p, shared(), names, header_view,
                                              std::span(&range, 1), opts_.hints,
                                              nworkers(), &metrics());
    return std::move(frags.front());
  };

  if (dynamic_) {
    if (p.is_root()) {
      // Greedy range scheduler: identical protocol shape to mpiBLAST's
      // fragment scheduler, but handing out *file ranges*, not files.
      p.set_phase("search");
      driver::serve_work(
          p, *scheduler_, static_cast<std::uint32_t>(all_ranges.size()),
          topology(),
          [&](mpisim::Encoder& enc, std::uint32_t task) {
            seqdb::encode_range(enc, all_ranges[task]);
          },
          &metrics());
    } else {
      while (true) {
        p.set_phase("input");
        const auto range = driver::request_work<seqdb::FragmentRange>(
            p, [](std::uint32_t, mpisim::Decoder& dec) {
              return seqdb::decode_range(dec);
            });
        if (!range) break;
        stage.add_fragment(read_range(*range));
        p.set_phase("search");
        stage.search_latest(p);
      }
      p.set_phase("search");
    }
  } else if (opts_.collective_input) {
    // Collective-input extension: all ranks participate in the same
    // number of collective rounds (workers with fewer fragments — and
    // the master — join with empty views). The round count travels in the
    // RangeAssignment: it is the maximum per-worker range count, which for
    // uneven (e.g. speed-weighted) plans can exceed ceil(total/nworkers).
    for (std::uint32_t r = 0; r < rounds; ++r) {
      const bool have = !p.is_root() && r < my_ranges.size();
      const seqdb::FragmentRange* range = have ? &my_ranges[r] : nullptr;
      auto read_part = [&](const std::string& file, const pario::Region& reg) {
        return pario::collective_read(
            p, shared(), file,
            have ? pario::FileView(std::vector<pario::Region>{reg})
                 : pario::FileView{},
            opts_.hints.collective());
      };
      const pario::Region none{};
      auto pin_seq = read_part(names.index, have ? range->pin_seq_off : none);
      auto pin_hdr = read_part(names.index, have ? range->pin_hdr_off : none);
      auto psq = read_part(names.sequence, have ? range->psq : none);
      auto phr = read_part(names.header, have ? range->phr : none);
      if (have) {
        stage.add_fragment(seqdb::fragment_from_slices(
            header_view, *range, std::move(pin_seq), std::move(pin_hdr),
            std::move(psq), std::move(phr)));
      }
    }
  } else if (!p.is_root()) {
    // Static assignment: load every assigned range up front with one
    // request list per volume file, so ranges that are adjacent in the
    // volumes coalesce into single device reads. In greedy mode input and
    // search interleave per assignment above instead.
    for (auto& frag : driver::read_fragment_ranges(
             p, shared(), names, header_view, my_ranges, opts_.hints,
             nworkers(), &metrics()))
      stage.add_fragment(std::move(frag));
  }

  // ---- search stage ("search"): pure in-memory compute --------------------
  p.set_phase("search");
  if (!p.is_root() && !dynamic_) {
    for (std::size_t slot = 0; slot < stage.fragment_count(); ++slot)
      stage.search_slot(p, slot);
  }
  if (!p.is_root()) stage.sort_hits();

  // All ranks (including the otherwise idle master) attribute the wait
  // for the slowest searcher to the search phase, as the paper's
  // instrumentation does.
  p.barrier();

  output_stage(p, stage, db_stats);
}

void PioBlastApp::output_stage(mpisim::Process& p, driver::SearchStage& stage,
                               const blast::GlobalDbStats& db_stats) {
  const seqdb::SeqType type = opts_.job.params.type;
  const auto& qset = queries();
  const auto& query_list = qset.queries();
  const auto& contexts = qset.contexts();
  const std::uint32_t nqueries = qset.size();

  // ---- result merging + parallel output ("output") ------------------------
  p.set_phase("output");
  const int hitlist = opts_.job.params.hitlist_size;
  std::uint64_t out_offset = 0;
  std::uint64_t merged = 0;
  std::uint64_t reported = 0;
  // Accumulated (offset, data) regions for the next collective write.
  std::vector<pario::Region> my_regions;
  std::vector<std::uint8_t> my_data;

  auto add_region = [&](std::uint64_t offset, std::string_view text) {
    my_regions.push_back({offset, text.size()});
    my_data.insert(my_data.end(), text.begin(), text.end());
  };

  // §5 extension: query batching. Queries are merged and flushed in
  // batches of `query_batch` (0 = everything at once), bounding the
  // cached-output memory footprint — "adaptive approaches, such as query
  // batching ... that adjust to the amount of available memory".
  const std::uint32_t batch =
      opts_.query_batch > 0 ? opts_.query_batch : std::max(nqueries, 1u);

  for (std::uint32_t batch_start = 0; batch_start < nqueries;
       batch_start += batch) {
    const std::uint32_t batch_end = std::min(nqueries, batch_start + batch);

    // Workers format this batch's cached candidates into memory buffers
    // — the "modified NCBI BLAST output routine that redirects formatted
    // result data from file output to memory buffers" (§3.2). This is
    // the bulk of output preparation and it runs in parallel.
    if (!p.is_root()) {
      const bool tabular =
          opts_.job.output_format == blast::OutputFormat::kTabular;
      for (std::uint32_t q = batch_start; q < batch_end; ++q) {
        for (driver::CachedHit& hit : stage.hits(q)) {
          const seqdb::LoadedFragment& frag = stage.fragment(hit.frag_slot);
          hit.text =
              tabular
                  ? blast::format_tabular_line(hit.hsp, query_list[q].id,
                                               frag.defline(hit.local_id))
                  : blast::format_alignment(
                        hit.hsp, type, contexts[q].residues(),
                        frag.sequence(hit.local_id), frag.defline(hit.local_id),
                        frag.sequence(hit.local_id).size(), qset.matrix());
          p.compute(p.cost().format_seconds(hit.text.size()));
        }
      }
    }

    for (std::uint32_t q = batch_start; q < batch_end; ++q) {
      // §5 extension: agree on a global score threshold before submitting.
      std::int32_t threshold = std::numeric_limits<std::int32_t>::min();
      if (opts_.early_score_broadcast) {
        std::int32_t local_kth = std::numeric_limits<std::int32_t>::min();
        if (!p.is_root() &&
            stage.hits(q).size() >= static_cast<std::size_t>(hitlist)) {
          local_kth =
              stage.hits(q)[static_cast<std::size_t>(hitlist) - 1].hsp.score;
        }
        mpisim::Encoder enc;
        enc.put(local_kth);
        auto gathered = p.gather(enc.bytes(), 0);
        std::vector<std::uint8_t> tbuf;
        if (p.is_root()) {
          std::int32_t best = std::numeric_limits<std::int32_t>::min();
          for (int w = 1; w < nprocs(); ++w) {
            // A crashed worker's gather slot is empty: no contribution.
            if (gathered[static_cast<std::size_t>(w)].empty()) continue;
            mpisim::Decoder dec(gathered[static_cast<std::size_t>(w)]);
            best = std::max(best, dec.get<std::int32_t>());
          }
          mpisim::Encoder tenc;
          tenc.put(best);
          tbuf = tenc.take();
        }
        p.bcast(tbuf, 0);
        mpisim::Decoder dec(tbuf);
        threshold = dec.get<std::int32_t>();
      }

      // Submit metadata-only candidate records.
      mpisim::Encoder enc;
      std::uint32_t submitted = 0;
      mpisim::Encoder body;
      if (!p.is_root()) {
        const auto& hits = stage.hits(q);
        for (std::uint32_t i = 0; i < hits.size(); ++i) {
          const driver::CachedHit& hit = hits[i];
          if (opts_.early_score_broadcast && hit.hsp.score < threshold)
            continue;
          blast::CandidateMeta meta;
          meta.query_id = q;
          meta.local_index = i;
          meta.subject_global_id = hit.hsp.subject_global_id;
          meta.score = hit.hsp.score;
          meta.owner = p.rank();
          meta.evalue = hit.hsp.evalue;
          meta.output_size = hit.text.size();
          meta.qstart = hit.hsp.qstart;
          meta.sstart32 = static_cast<std::uint32_t>(hit.hsp.sstart);
          blast::encode_candidate(body, meta);
          ++submitted;
        }
      }
      enc.put(submitted);
      const auto& body_bytes = body.bytes();
      enc.put_bytes(std::span(body_bytes.data(), body_bytes.size()));
      auto gathered = p.gather(enc.bytes(), 0);

      if (p.is_root()) {
        std::vector<blast::CandidateMeta> candidates;
        std::uint64_t submitted_bytes = 0;
        for (int w = 1; w < nprocs(); ++w) {
          // A crashed worker's gather slot is empty (live workers always
          // send at least the u32 submission count).
          if (gathered[static_cast<std::size_t>(w)].empty()) continue;
          submitted_bytes += gathered[static_cast<std::size_t>(w)].size();
          mpisim::Decoder dec(gathered[static_cast<std::size_t>(w)]);
          const auto count = dec.get<std::uint32_t>();
          const auto raw = dec.get_bytes();
          mpisim::Decoder body_dec(raw);
          for (std::uint32_t i = 0; i < count; ++i)
            candidates.push_back(blast::decode_candidate(body_dec));
        }
        merged += candidates.size();
        p.compute(p.cost().merge_seconds(candidates.size(), submitted_bytes));
        std::sort(candidates.begin(), candidates.end(),
                  blast::CandidateMeta::better);
        if (candidates.size() > static_cast<std::size_t>(hitlist))
          candidates.resize(static_cast<std::size_t>(hitlist));
        reported += candidates.size();

        // Header + offsets: the master knows every output size up front.
        const bool tabular =
            opts_.job.output_format == blast::OutputFormat::kTabular;
        std::string header =
            tabular ? blast::format_tabular_query_header(
                          query_list[q], opts_.job.db_title, candidates.size())
                    : blast::format_query_header(query_list[q],
                                                 opts_.job.db_title, db_stats,
                                                 candidates.size());
        p.compute(p.cost().format_seconds(header.size()));
        if (candidates.empty() && !tabular) header += blast::format_no_hits();
        const std::uint64_t header_offset = out_offset;
        std::uint64_t cursor = out_offset + header.size();
        add_region(header_offset, header);

        // Tell each owner which cached buffers to write and where.
        std::vector<driver::OutputSelection> selections(
            static_cast<std::size_t>(nprocs()));
        for (const auto& c : candidates) {
          selections[static_cast<std::size_t>(c.owner)].slots.push_back(
              {c.local_index, cursor});
          cursor += c.output_size;
        }
        for (int w = 1; w < nprocs(); ++w)
          kSelect.send(p, w, selections[static_cast<std::size_t>(w)]);
        out_offset = cursor;
      } else {
        const driver::OutputSelection selection = kSelect.recv(p, 0);
        for (const auto& slot : selection.slots) {
          PIOBLAST_CHECK(slot.local_index < stage.hits(q).size());
          const driver::CachedHit& hit = stage.hits(q)[slot.local_index];
          add_region(slot.offset, hit.text);
          p.compute(p.cost().memcpy_seconds(hit.text.size()));
        }
      }
    }  // queries in batch

    // One collective write flushes this batch's cached buffers into the
    // shared output file (paper Figure 2, left). Regions were
    // accumulated in offset order (offsets grow monotonically through
    // the merge loop); the FileView constructor asserts that invariant.
    pario::FileView view(my_regions);
    pario::collective_write(p, shared(), opts_.job.output_path, view, my_data,
                            opts_.hints.collective());
    my_regions.clear();
    my_data.clear();
    // Release this batch's cached output buffers (the memory-bounding
    // point of batching).
    if (!p.is_root()) {
      for (std::uint32_t q = batch_start; q < batch_end; ++q) {
        for (driver::CachedHit& hit : stage.hits(q)) {
          hit.text.clear();
          hit.text.shrink_to_fit();
        }
      }
    }
  }  // batches

  if (p.is_root()) {
    metrics().set(driver::kMetricCandidatesMerged, merged);
    metrics().set(driver::kMetricAlignmentsReported, reported);
    metrics().set(driver::kMetricOutputBytes, out_offset);
  }
}

}  // namespace

blast::DriverResult run_pioblast(const sim::ClusterConfig& cluster, int nprocs,
                                 pario::ClusterStorage& storage,
                                 const PioBlastOptions& opts) {
  PIOBLAST_CHECK_MSG(nprocs >= 2, "pioBLAST needs a master and >= 1 worker");
  const seqdb::SeqType type = opts.job.params.type;
  const seqdb::VolumeNames names = seqdb::volume_names(opts.job.db_base, type);

  driver::SchedulerKind kind = opts.scheduler;
  if (opts.dynamic_scheduling) kind = driver::SchedulerKind::kGreedyDynamic;
  PIOBLAST_CHECK_MSG(
      !(kind == driver::SchedulerKind::kGreedyDynamic && opts.collective_input),
      "dynamic scheduling is incompatible with collective input (assignment "
      "order is data-dependent)");

  // Shared read-only query contexts (host-side optimization; the in-run
  // query broadcast and index reads still charge virtual time as before).
  const auto host_index = seqdb::DbIndex::deserialize_header(
      storage.shared().pread(names.index, 0, seqdb::DbIndex::kHeaderBytes));
  const blast::GlobalDbStats host_stats{host_index.total_residues,
                                        host_index.num_seqs};
  const auto query_text_raw = storage.shared().read_all(opts.job.query_path);
  auto shared_queries = blast::QuerySet::build(
      std::string(query_text_raw.begin(), query_text_raw.end()),
      opts.job.params, host_stats);
  const auto nqueries = static_cast<int>(shared_queries->size());

  // Conformance needs the event stream; record one ourselves when the
  // caller did not ask for a trace.
  mpisim::Tracer conform_tracer;
  PioBlastOptions local = opts;
  if (local.conformance && local.tracer == nullptr)
    local.tracer = &conform_tracer;

  PioBlastApp app(cluster, nprocs, storage, local, std::move(shared_queries),
                  kind);
  blast::DriverResult result = app.run();
  if (local.conformance) {
    protospec::SpecParams sp;
    sp.nranks = nprocs;
    sp.tasks = opts.job.nfragments > 0 ? opts.job.nfragments : nprocs - 1;
    sp.queries = nqueries;
    sp.batch = opts.query_batch > 0 ? static_cast<int>(opts.query_batch)
                                    : nqueries;
    sp.fault_tolerant = opts.faults.active();
    sp.dynamic = kind == driver::SchedulerKind::kGreedyDynamic;
    sp.early_score = opts.early_score_broadcast;
    result.conformance = protospec::enforce_conformance(
        *protospec::spec_by_name("pioblast"), sp, local.tracer->sorted());
  }
  return result;
}

}  // namespace pioblast::pio
