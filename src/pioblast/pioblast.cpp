#include "pioblast/pioblast.h"

#include <algorithm>
#include <atomic>
#include <limits>

#include "blast/engine.h"
#include "blast/format.h"
#include "blast/query_set.h"
#include "blast/serialize.h"
#include "mpisim/runtime.h"
#include "mpisim/wire.h"
#include "pario/file.h"
#include "seqdb/partition.h"
#include "util/error.h"

namespace pioblast::pio {

namespace {

constexpr int kTagRanges = 10;
constexpr int kTagSelect = 11;
constexpr int kTagWorkReq = 12;
constexpr int kTagAssign = 13;

/// A cached candidate: the HSP, where its subject lives, and (once the
/// output stage formats it) its output buffer.
struct CachedHit {
  blast::Hsp hsp;
  std::size_t frag_slot = 0;
  std::uint64_t local_id = 0;
  std::string text;  ///< formatted alignment block (paper: "output buffers")
};

void encode_range(mpisim::Encoder& enc, const seqdb::FragmentRange& r) {
  enc.put(r.fragment_id)
      .put(r.seqs.first)
      .put(r.seqs.count)
      .put(r.psq.offset)
      .put(r.psq.length)
      .put(r.phr.offset)
      .put(r.phr.length)
      .put(r.pin_seq_off.offset)
      .put(r.pin_seq_off.length)
      .put(r.pin_hdr_off.offset)
      .put(r.pin_hdr_off.length);
}

seqdb::FragmentRange decode_range(mpisim::Decoder& dec) {
  seqdb::FragmentRange r;
  r.fragment_id = dec.get<int>();
  r.seqs.first = dec.get<std::uint64_t>();
  r.seqs.count = dec.get<std::uint64_t>();
  r.psq.offset = dec.get<std::uint64_t>();
  r.psq.length = dec.get<std::uint64_t>();
  r.phr.offset = dec.get<std::uint64_t>();
  r.phr.length = dec.get<std::uint64_t>();
  r.pin_seq_off.offset = dec.get<std::uint64_t>();
  r.pin_seq_off.length = dec.get<std::uint64_t>();
  r.pin_hdr_off.offset = dec.get<std::uint64_t>();
  r.pin_hdr_off.length = dec.get<std::uint64_t>();
  return r;
}

}  // namespace

blast::DriverResult run_pioblast(const sim::ClusterConfig& cluster, int nprocs,
                                 pario::ClusterStorage& storage,
                                 const PioBlastOptions& opts) {
  PIOBLAST_CHECK_MSG(nprocs >= 2, "pioBLAST needs a master and >= 1 worker");
  const int nworkers = nprocs - 1;
  const seqdb::SeqType type = opts.job.params.type;
  const seqdb::VolumeNames names = seqdb::volume_names(opts.job.db_base, type);

  std::atomic<std::uint64_t> candidates_merged{0};
  std::atomic<std::uint64_t> alignments_reported{0};
  std::atomic<std::uint64_t> output_bytes{0};

  // Shared read-only query contexts (host-side optimization; the in-run
  // query broadcast and index reads still charge virtual time as before).
  const auto host_index = seqdb::DbIndex::deserialize_header(
      storage.shared().pread(names.index, 0, seqdb::DbIndex::kHeaderBytes));
  const blast::GlobalDbStats host_stats{host_index.total_residues,
                                        host_index.num_seqs};
  const auto query_text_raw = storage.shared().read_all(opts.job.query_path);
  const auto shared_queries = blast::QuerySet::build(
      std::string(query_text_raw.begin(), query_text_raw.end()),
      opts.job.params, host_stats);

  auto rank_fn = [&](mpisim::Process& p) {
    pario::VirtualFS& shared = storage.shared();

    // ---- init + dynamic partitioning ("other") ---------------------------
    p.set_phase("other");
    p.compute(p.cost().process_init_seconds());

    std::vector<std::uint8_t> query_bytes;
    blast::GlobalDbStats db_stats;
    std::vector<seqdb::FragmentRange> my_ranges;   // static assignment
    std::vector<seqdb::FragmentRange> all_ranges;  // master, dynamic mode
    std::uint32_t total_fragments = 0;

    if (p.is_root()) {
      // The master reads the global index and computes the per-worker file
      // ranges ("virtual fragments") — paper §3.1.
      const auto pin = pario::timed_read_all(p, shared, names.index, 1);
      const seqdb::DbIndex index = seqdb::DbIndex::deserialize(pin);
      db_stats = {index.total_residues, index.num_seqs};
      const int nfragments =
          opts.job.nfragments > 0 ? opts.job.nfragments : nworkers;
      const auto ranges = seqdb::virtual_partition(index, nfragments);
      total_fragments = static_cast<std::uint32_t>(ranges.size());

      if (opts.dynamic_scheduling) {
        // §5 extension: ranges are handed out greedily during the run.
        all_ranges = ranges;
      } else {
        // Round-robin static assignment of virtual fragments to workers.
        std::vector<mpisim::Encoder> per_worker(
            static_cast<std::size_t>(nworkers));
        std::vector<std::uint32_t> counts(static_cast<std::size_t>(nworkers), 0);
        for (const auto& r : ranges)
          ++counts[static_cast<std::size_t>(r.fragment_id % nworkers)];
        for (int w = 0; w < nworkers; ++w) {
          per_worker[static_cast<std::size_t>(w)]
              .put(static_cast<std::uint32_t>(ranges.size()))
              .put(counts[static_cast<std::size_t>(w)]);
        }
        for (const auto& r : ranges)
          encode_range(
              per_worker[static_cast<std::size_t>(r.fragment_id % nworkers)], r);
        for (int w = 0; w < nworkers; ++w)
          p.send(w + 1, kTagRanges,
                 per_worker[static_cast<std::size_t>(w)].bytes());
      }

      query_bytes = pario::timed_read_all(p, shared, opts.job.query_path, 1);
    } else if (!opts.dynamic_scheduling) {
      mpisim::Message msg = p.recv(0, kTagRanges);
      mpisim::Decoder dec(msg.payload);
      total_fragments = dec.get<std::uint32_t>();
      const auto count = dec.get<std::uint32_t>();
      for (std::uint32_t i = 0; i < count; ++i) my_ranges.push_back(decode_range(dec));
    }

    p.bcast(query_bytes, 0);
    {
      // Database statistics ride the same broadcast channel.
      std::vector<std::uint8_t> stats_buf;
      if (p.is_root()) {
        mpisim::Encoder enc;
        enc.put(db_stats.total_residues).put(db_stats.num_seqs);
        stats_buf = enc.take();
      }
      p.bcast(stats_buf, 0);
      mpisim::Decoder dec(stats_buf);
      db_stats.total_residues = dec.get<std::uint64_t>();
      db_stats.num_seqs = dec.get<std::uint64_t>();
    }
    const auto& queries = shared_queries->queries();
    const auto& contexts = shared_queries->contexts();
    const std::uint32_t nqueries = shared_queries->size();
    const blast::ScoringMatrix& matrix = shared_queries->matrix();

    // ---- parallel input stage ("input") ----------------------------------
    p.set_phase("input");
    std::vector<seqdb::LoadedFragment> fragments;
    std::vector<std::vector<CachedHit>> per_query(nqueries);
    // A header-only index view is enough to rebuild fragments from slices.
    seqdb::DbIndex header_view;
    header_view.type = type;

    // Reads one virtual fragment's byte ranges with individual MPI-IO
    // reads — one contiguous range from every shared database file (paper
    // §4.1 / §5), all workers in parallel.
    auto read_range = [&](const seqdb::FragmentRange& range) {
      auto pin_seq =
          pario::timed_read(p, shared, names.index, range.pin_seq_off.offset,
                            range.pin_seq_off.length, nworkers);
      auto pin_hdr =
          pario::timed_read(p, shared, names.index, range.pin_hdr_off.offset,
                            range.pin_hdr_off.length, nworkers);
      auto psq = pario::timed_read(p, shared, names.sequence, range.psq.offset,
                                   range.psq.length, nworkers);
      auto phr = pario::timed_read(p, shared, names.header, range.phr.offset,
                                   range.phr.length, nworkers);
      return seqdb::fragment_from_slices(header_view, range, std::move(pin_seq),
                                         std::move(pin_hdr), std::move(psq),
                                         std::move(phr));
    };

    // Searches every query against the last loaded fragment, caching hits.
    auto search_fragment_all_queries = [&]() {
      const seqdb::LoadedFragment& frag = fragments.back();
      const std::size_t slot = fragments.size() - 1;
      p.compute(p.cost().fragment_setup_seconds());
      for (std::uint32_t q = 0; q < nqueries; ++q) {
        auto result = blast::search_fragment(contexts[q], frag);
        p.compute(p.cost().search_seconds(result.counters));
        for (blast::Hsp& hsp : result.hsps) {
          // Result caching (§3.2): remember the subject's location so its
          // sequence data never needs to be re-fetched later.
          CachedHit hit;
          hit.frag_slot = slot;
          hit.local_id = hsp.subject_global_id - frag.first_global_seq();
          hit.hsp = std::move(hsp);
          per_query[q].push_back(std::move(hit));
        }
      }
    };

    if (opts.dynamic_scheduling) {
      PIOBLAST_CHECK_MSG(!opts.collective_input,
                         "dynamic scheduling is incompatible with collective "
                         "input (assignment order is data-dependent)");
      if (p.is_root()) {
        // Greedy range scheduler: identical protocol shape to mpiBLAST's
        // fragment scheduler, but handing out *file ranges*, not files.
        p.set_phase("search");
        std::size_t next = 0;
        int retired = 0;
        while (retired < nworkers) {
          mpisim::Message req = p.recv(mpisim::kAnySource, kTagWorkReq);
          mpisim::Encoder reply;
          if (next < all_ranges.size()) {
            reply.put<std::uint8_t>(1);
            encode_range(reply, all_ranges[next++]);
          } else {
            reply.put<std::uint8_t>(0);
            ++retired;
          }
          p.send(req.src, kTagAssign, reply.bytes());
        }
      } else {
        while (true) {
          p.set_phase("input");
          p.send(0, kTagWorkReq, {});
          mpisim::Message msg = p.recv(0, kTagAssign);
          mpisim::Decoder dec(msg.payload);
          if (dec.get<std::uint8_t>() == 0) break;
          const auto range = decode_range(dec);
          fragments.push_back(read_range(range));
          p.set_phase("search");
          search_fragment_all_queries();
        }
        p.set_phase("search");
      }
    } else if (opts.collective_input) {
      // Collective-input extension: all ranks participate in the same
      // number of collective rounds (workers with fewer fragments — and
      // the master — join with empty views).
      const std::uint32_t rounds =
          (total_fragments + static_cast<std::uint32_t>(nworkers) - 1) /
          static_cast<std::uint32_t>(nworkers);
      for (std::uint32_t r = 0; r < rounds; ++r) {
        const bool have = !p.is_root() && r < my_ranges.size();
        const seqdb::FragmentRange* range = have ? &my_ranges[r] : nullptr;
        auto read_part = [&](const std::string& file, const pario::Region& reg) {
          return pario::collective_read(
              p, shared, file,
              have ? pario::FileView(std::vector<pario::Region>{reg})
                   : pario::FileView{},
              opts.collective);
        };
        const pario::Region none{};
        auto pin_seq = read_part(names.index, have ? range->pin_seq_off : none);
        auto pin_hdr = read_part(names.index, have ? range->pin_hdr_off : none);
        auto psq = read_part(names.sequence, have ? range->psq : none);
        auto phr = read_part(names.header, have ? range->phr : none);
        if (have) {
          fragments.push_back(seqdb::fragment_from_slices(
              header_view, *range, std::move(pin_seq), std::move(pin_hdr),
              std::move(psq), std::move(phr)));
        }
      }
    } else if (!p.is_root()) {
      // Static assignment: load every assigned range up front. In dynamic
      // mode input and search interleave per assignment above instead.
      const std::size_t nranges = my_ranges.size();
      for (std::size_t i = 0; i < nranges; ++i)
        fragments.push_back(read_range(my_ranges[i]));
    }

    // ---- search stage ("search"): pure in-memory compute ------------------
    p.set_phase("search");
    if (!p.is_root() && !opts.dynamic_scheduling) {
      const std::size_t loaded = fragments.size();
      // search_fragment_all_queries() works on fragments.back(); iterate in
      // load order by rotating through the already-loaded list.
      std::vector<seqdb::LoadedFragment> in_order;
      in_order.swap(fragments);
      for (auto& frag : in_order) {
        fragments.push_back(std::move(frag));
        search_fragment_all_queries();
      }
      PIOBLAST_CHECK(fragments.size() == loaded);
    }
    if (!p.is_root()) {
      for (std::uint32_t q = 0; q < nqueries; ++q) {
        std::sort(per_query[q].begin(), per_query[q].end(),
                  [](const CachedHit& a, const CachedHit& b) {
                    return blast::Hsp::better(a.hsp, b.hsp);
                  });
      }
    }

    // All ranks (including the otherwise idle master) attribute the wait
    // for the slowest searcher to the search phase, as the paper's
    // instrumentation does.
    p.barrier();

    // ---- result merging + parallel output ("output") ----------------------
    p.set_phase("output");
    const int hitlist = opts.job.params.hitlist_size;
    std::uint64_t out_offset = 0;
    std::uint64_t merged = 0;
    std::uint64_t reported = 0;
    // Accumulated (offset, data) regions for the next collective write.
    std::vector<pario::Region> my_regions;
    std::vector<std::uint8_t> my_data;

    auto add_region = [&](std::uint64_t offset, std::string_view text) {
      my_regions.push_back({offset, text.size()});
      my_data.insert(my_data.end(), text.begin(), text.end());
    };

    // §5 extension: query batching. Queries are merged and flushed in
    // batches of `query_batch` (0 = everything at once), bounding the
    // cached-output memory footprint — "adaptive approaches, such as query
    // batching ... that adjust to the amount of available memory".
    const std::uint32_t batch =
        opts.query_batch > 0 ? opts.query_batch : std::max(nqueries, 1u);

    for (std::uint32_t batch_start = 0; batch_start < nqueries;
         batch_start += batch) {
      const std::uint32_t batch_end = std::min(nqueries, batch_start + batch);

      // Workers format this batch's cached candidates into memory buffers
      // — the "modified NCBI BLAST output routine that redirects formatted
      // result data from file output to memory buffers" (§3.2). This is
      // the bulk of output preparation and it runs in parallel.
      if (!p.is_root()) {
        const bool tabular =
            opts.job.output_format == blast::OutputFormat::kTabular;
        for (std::uint32_t q = batch_start; q < batch_end; ++q) {
          for (CachedHit& hit : per_query[q]) {
            const seqdb::LoadedFragment& frag = fragments[hit.frag_slot];
            hit.text =
                tabular
                    ? blast::format_tabular_line(hit.hsp, queries[q].id,
                                                 frag.defline(hit.local_id))
                    : blast::format_alignment(
                          hit.hsp, type, contexts[q].residues(),
                          frag.sequence(hit.local_id),
                          frag.defline(hit.local_id),
                          frag.sequence(hit.local_id).size(), matrix);
            p.compute(p.cost().format_seconds(hit.text.size()));
          }
        }
      }

      for (std::uint32_t q = batch_start; q < batch_end; ++q) {
      // §5 extension: agree on a global score threshold before submitting.
      std::int32_t threshold = std::numeric_limits<std::int32_t>::min();
      if (opts.early_score_broadcast) {
        std::int32_t local_kth = std::numeric_limits<std::int32_t>::min();
        if (!p.is_root() &&
            per_query[q].size() >= static_cast<std::size_t>(hitlist)) {
          local_kth = per_query[q][static_cast<std::size_t>(hitlist) - 1].hsp.score;
        }
        mpisim::Encoder enc;
        enc.put(local_kth);
        auto gathered = p.gather(enc.bytes(), 0);
        std::vector<std::uint8_t> tbuf;
        if (p.is_root()) {
          std::int32_t best = std::numeric_limits<std::int32_t>::min();
          for (int w = 1; w < nprocs; ++w) {
            mpisim::Decoder dec(gathered[static_cast<std::size_t>(w)]);
            best = std::max(best, dec.get<std::int32_t>());
          }
          mpisim::Encoder tenc;
          tenc.put(best);
          tbuf = tenc.take();
        }
        p.bcast(tbuf, 0);
        mpisim::Decoder dec(tbuf);
        threshold = dec.get<std::int32_t>();
      }

      // Submit metadata-only candidate records.
      mpisim::Encoder enc;
      std::uint32_t submitted = 0;
      mpisim::Encoder body;
      if (!p.is_root()) {
        for (std::uint32_t i = 0; i < per_query[q].size(); ++i) {
          const CachedHit& hit = per_query[q][i];
          if (opts.early_score_broadcast && hit.hsp.score < threshold) continue;
          blast::CandidateMeta meta;
          meta.query_id = q;
          meta.local_index = i;
          meta.subject_global_id = hit.hsp.subject_global_id;
          meta.score = hit.hsp.score;
          meta.owner = p.rank();
          meta.evalue = hit.hsp.evalue;
          meta.output_size = hit.text.size();
          meta.qstart = hit.hsp.qstart;
          meta.sstart32 = static_cast<std::uint32_t>(hit.hsp.sstart);
          blast::encode_candidate(body, meta);
          ++submitted;
        }
      }
      enc.put(submitted);
      const auto& body_bytes = body.bytes();
      enc.put_bytes(std::span(body_bytes.data(), body_bytes.size()));
      auto gathered = p.gather(enc.bytes(), 0);

      if (p.is_root()) {
        std::vector<blast::CandidateMeta> candidates;
        std::uint64_t submitted_bytes = 0;
        for (int w = 1; w < nprocs; ++w) {
          submitted_bytes += gathered[static_cast<std::size_t>(w)].size();
          mpisim::Decoder dec(gathered[static_cast<std::size_t>(w)]);
          const auto count = dec.get<std::uint32_t>();
          const auto raw = dec.get_bytes();
          mpisim::Decoder body_dec(raw);
          for (std::uint32_t i = 0; i < count; ++i)
            candidates.push_back(blast::decode_candidate(body_dec));
        }
        merged += candidates.size();
        p.compute(p.cost().merge_seconds(candidates.size(), submitted_bytes));
        std::sort(candidates.begin(), candidates.end(),
                  blast::CandidateMeta::better);
        if (candidates.size() > static_cast<std::size_t>(hitlist))
          candidates.resize(static_cast<std::size_t>(hitlist));
        reported += candidates.size();

        // Header + offsets: the master knows every output size up front.
        const bool tabular =
            opts.job.output_format == blast::OutputFormat::kTabular;
        std::string header =
            tabular ? blast::format_tabular_query_header(
                          queries[q], opts.job.db_title, candidates.size())
                    : blast::format_query_header(queries[q], opts.job.db_title,
                                                 db_stats, candidates.size());
        p.compute(p.cost().format_seconds(header.size()));
        if (candidates.empty() && !tabular) header += blast::format_no_hits();
        const std::uint64_t header_offset = out_offset;
        std::uint64_t cursor = out_offset + header.size();
        add_region(header_offset, header);

        // Tell each owner which cached buffers to write and where.
        std::vector<mpisim::Encoder> selections(static_cast<std::size_t>(nprocs));
        std::vector<std::uint32_t> counts(static_cast<std::size_t>(nprocs), 0);
        for (const auto& c : candidates)
          ++counts[static_cast<std::size_t>(c.owner)];
        for (int w = 1; w < nprocs; ++w)
          selections[static_cast<std::size_t>(w)].put(
              counts[static_cast<std::size_t>(w)]);
        for (const auto& c : candidates) {
          selections[static_cast<std::size_t>(c.owner)].put(c.local_index)
              .put(cursor);
          cursor += c.output_size;
        }
        for (int w = 1; w < nprocs; ++w)
          p.send(w, kTagSelect, selections[static_cast<std::size_t>(w)].bytes());
        out_offset = cursor;
      } else {
        mpisim::Message sel = p.recv(0, kTagSelect);
        mpisim::Decoder dec(sel.payload);
        const auto count = dec.get<std::uint32_t>();
        for (std::uint32_t i = 0; i < count; ++i) {
          const auto local_index = dec.get<std::uint32_t>();
          const auto offset = dec.get<std::uint64_t>();
          PIOBLAST_CHECK(local_index < per_query[q].size());
          add_region(offset, per_query[q][local_index].text);
          p.compute(p.cost().memcpy_seconds(
              per_query[q][local_index].text.size()));
        }
      }
      }  // queries in batch

      // One collective write flushes this batch's cached buffers into the
      // shared output file (paper Figure 2, left). Regions were
      // accumulated in offset order (offsets grow monotonically through
      // the merge loop); the FileView constructor asserts that invariant.
      pario::FileView view(my_regions);
      pario::collective_write(p, shared, opts.job.output_path, view, my_data,
                              opts.collective);
      my_regions.clear();
      my_data.clear();
      // Release this batch's cached output buffers (the memory-bounding
      // point of batching).
      if (!p.is_root()) {
        for (std::uint32_t q = batch_start; q < batch_end; ++q) {
          for (CachedHit& hit : per_query[q]) {
            hit.text.clear();
            hit.text.shrink_to_fit();
          }
        }
      }
    }  // batches

    if (p.is_root()) {
      candidates_merged.store(merged);
      alignments_reported.store(reported);
      output_bytes.store(out_offset);
    }
    p.barrier();
  };

  blast::DriverResult result;
  result.report = mpisim::run(nprocs, cluster, rank_fn, opts.tracer);
  result.phases = blast::summarize_run(result.report);
  result.output_bytes = output_bytes.load();
  result.candidates_merged = candidates_merged.load();
  result.alignments_reported = alignments_reported.load();
  return result;
}

}  // namespace pioblast::pio
