#include "pario/env.h"

#include <cctype>
#include <cstdlib>
#include <sstream>

#include "util/error.h"

namespace pioblast::pario {

namespace {

[[noreturn]] void bad_hint(const std::string& spec, const std::string& why) {
  throw util::RuntimeError("bad --pario-hints \"" + spec + "\": " + why);
}

/// Parses a byte size with optional binary k/m/g suffix ("256k", "1m").
std::uint64_t parse_size(const std::string& spec, const std::string& value) {
  if (value.empty()) bad_hint(spec, "empty size value");
  std::size_t pos = 0;
  unsigned long long n = 0;
  try {
    n = std::stoull(value, &pos);
  } catch (const std::exception&) {
    bad_hint(spec, "malformed size \"" + value + "\"");
  }
  std::uint64_t mult = 1;
  if (pos < value.size()) {
    if (pos + 1 != value.size()) bad_hint(spec, "malformed size \"" + value + "\"");
    switch (std::tolower(static_cast<unsigned char>(value[pos]))) {
      case 'k': mult = 1ull << 10; break;
      case 'm': mult = 1ull << 20; break;
      case 'g': mult = 1ull << 30; break;
      default: bad_hint(spec, "unknown size suffix in \"" + value + "\"");
    }
  }
  return static_cast<std::uint64_t>(n) * mult;
}

int parse_int(const std::string& spec, const std::string& value) {
  std::size_t pos = 0;
  int n = 0;
  try {
    n = std::stoi(value, &pos);
  } catch (const std::exception&) {
    bad_hint(spec, "malformed integer \"" + value + "\"");
  }
  if (pos != value.size()) bad_hint(spec, "malformed integer \"" + value + "\"");
  return n;
}

double parse_fraction(const std::string& spec, const std::string& value) {
  std::size_t pos = 0;
  double x = 0;
  try {
    x = std::stod(value, &pos);
  } catch (const std::exception&) {
    bad_hint(spec, "malformed number \"" + value + "\"");
  }
  if (pos != value.size() || x < 0.0 || x > 1.0)
    bad_hint(spec, "ds_density must be a fraction in [0,1], got \"" + value + "\"");
  return x;
}

bool parse_bool(const std::string& spec, const std::string& value) {
  if (value == "on" || value == "true" || value == "1") return true;
  if (value == "off" || value == "false" || value == "0") return false;
  bad_hint(spec, "expected on/off, got \"" + value + "\"");
}

SieveMode parse_sieve_mode(const std::string& spec, const std::string& value) {
  if (value == "auto") return SieveMode::kAuto;
  if (value == "enable" || value == "on") return SieveMode::kEnable;
  if (value == "disable" || value == "off") return SieveMode::kDisable;
  bad_hint(spec, "ds_read must be auto/enable/disable, got \"" + value + "\"");
}

const char* sieve_mode_name(SieveMode m) {
  switch (m) {
    case SieveMode::kAuto: return "auto";
    case SieveMode::kEnable: return "enable";
    case SieveMode::kDisable: return "disable";
  }
  return "auto";
}

/// Renders a byte count back with the largest exact binary suffix.
std::string render_size(std::uint64_t bytes) {
  const char* suffix = "";
  if (bytes != 0 && bytes % (1ull << 30) == 0) {
    bytes >>= 30;
    suffix = "g";
  } else if (bytes != 0 && bytes % (1ull << 20) == 0) {
    bytes >>= 20;
    suffix = "m";
  } else if (bytes != 0 && bytes % (1ull << 10) == 0) {
    bytes >>= 10;
    suffix = "k";
  }
  return std::to_string(bytes) + suffix;
}

}  // namespace

Hints Hints::parse(const std::string& spec) {
  Hints h;
  std::istringstream in(spec);
  std::string item;
  while (std::getline(in, item, ',')) {
    if (item.empty()) continue;
    const auto eq = item.find('=');
    if (eq == std::string::npos)
      bad_hint(spec, "expected key=value, got \"" + item + "\"");
    const std::string key = item.substr(0, eq);
    const std::string value = item.substr(eq + 1);
    if (key == "cb_nodes") {
      h.cb_nodes = parse_int(spec, value);
      if (h.cb_nodes <= 0) bad_hint(spec, "cb_nodes must be positive");
    } else if (key == "cb_buffer_size") {
      h.cb_buffer_size = parse_size(spec, value);
    } else if (key == "ds_read") {
      h.ds_read = parse_sieve_mode(spec, value);
    } else if (key == "ds_buffer_size") {
      h.ds_buffer_size = parse_size(spec, value);
      if (h.ds_buffer_size == 0) bad_hint(spec, "ds_buffer_size must be positive");
    } else if (key == "ds_density") {
      h.ds_density = parse_fraction(spec, value);
    } else if (key == "list" || key == "list_io") {
      h.list_io = parse_bool(spec, value);
    } else {
      bad_hint(spec, "unknown hint \"" + key + "\"");
    }
  }
  return h;
}

std::string Hints::describe() const {
  std::ostringstream os;
  os << "cb_nodes=" << cb_nodes
     << ",cb_buffer_size=" << render_size(cb_buffer_size)
     << ",ds_read=" << sieve_mode_name(ds_read)
     << ",ds_buffer_size=" << render_size(ds_buffer_size)
     << ",ds_density=" << ds_density
     << ",list=" << (list_io ? "on" : "off");
  return os.str();
}

}  // namespace pioblast::pario
