#include "pario/vfs.h"

#include <algorithm>

#include "util/error.h"

namespace pioblast::pario {

void VirtualFS::create(const std::string& path) {
  std::lock_guard lock(mu_);
  auto& slot = files_[path];
  if (!slot) slot = std::make_shared<FileData>();
  std::lock_guard flock(slot->mu);
  slot->bytes.clear();
}

bool VirtualFS::exists(const std::string& path) const {
  std::lock_guard lock(mu_);
  return files_.count(path) != 0;
}

void VirtualFS::remove(const std::string& path) {
  std::lock_guard lock(mu_);
  files_.erase(path);
}

std::shared_ptr<VirtualFS::FileData> VirtualFS::get(const std::string& path) const {
  std::lock_guard lock(mu_);
  auto it = files_.find(path);
  PIOBLAST_CHECK_MSG(it != files_.end(), "no such file: " << path);
  return it->second;
}

std::shared_ptr<VirtualFS::FileData> VirtualFS::get_or_create(const std::string& path) {
  std::lock_guard lock(mu_);
  auto& slot = files_[path];
  if (!slot) slot = std::make_shared<FileData>();
  return slot;
}

std::uint64_t VirtualFS::size(const std::string& path) const {
  auto fd = get(path);
  std::lock_guard lock(fd->mu);
  return fd->bytes.size();
}

void VirtualFS::pwrite(const std::string& path, std::uint64_t offset,
                       std::span<const std::uint8_t> data) {
  auto fd = get_or_create(path);
  std::lock_guard lock(fd->mu);
  const std::uint64_t end = offset + data.size();
  if (fd->bytes.size() < end) fd->bytes.resize(end, 0);
  std::copy(data.begin(), data.end(),
            fd->bytes.begin() + static_cast<std::ptrdiff_t>(offset));
}

std::vector<std::uint8_t> VirtualFS::pread(const std::string& path,
                                           std::uint64_t offset,
                                           std::uint64_t len) const {
  auto fd = get(path);
  std::lock_guard lock(fd->mu);
  PIOBLAST_CHECK_MSG(offset + len <= fd->bytes.size(),
                     "pread past EOF: " << path << " offset=" << offset
                                        << " len=" << len
                                        << " size=" << fd->bytes.size());
  return {fd->bytes.begin() + static_cast<std::ptrdiff_t>(offset),
          fd->bytes.begin() + static_cast<std::ptrdiff_t>(offset + len)};
}

std::vector<std::uint8_t> VirtualFS::pread_upto(const std::string& path,
                                                std::uint64_t offset,
                                                std::uint64_t len) const {
  auto fd = get(path);
  std::lock_guard lock(fd->mu);
  if (offset >= fd->bytes.size()) return {};
  const std::uint64_t avail = fd->bytes.size() - offset;
  const std::uint64_t take = std::min(len, avail);
  return {fd->bytes.begin() + static_cast<std::ptrdiff_t>(offset),
          fd->bytes.begin() + static_cast<std::ptrdiff_t>(offset + take)};
}

std::vector<std::uint8_t> VirtualFS::read_all(const std::string& path) const {
  auto fd = get(path);
  std::lock_guard lock(fd->mu);
  return fd->bytes;
}

void VirtualFS::write_all(const std::string& path,
                          std::span<const std::uint8_t> data) {
  auto fd = get_or_create(path);
  std::lock_guard lock(fd->mu);
  fd->bytes.assign(data.begin(), data.end());
}

std::vector<std::string> VirtualFS::list() const {
  std::lock_guard lock(mu_);
  std::vector<std::string> out;
  out.reserve(files_.size());
  for (const auto& [path, _] : files_) out.push_back(path);
  return out;
}

std::uint64_t VirtualFS::total_bytes() const {
  std::lock_guard lock(mu_);
  std::uint64_t total = 0;
  for (const auto& [_, fd] : files_) {
    std::lock_guard flock(fd->mu);
    total += fd->bytes.size();
  }
  return total;
}

}  // namespace pioblast::pario
