// Cluster storage environment: the file systems a simulated job sees.
//
// One shared file system (holding the formatted database, query file, and
// the output file) plus, when the cluster has node-local disks, one private
// file system per rank (mpiBLAST's fragment copy target). On clusters
// without local disks (the ORNL Altix), `local_for` returns the shared
// scratch instead — exactly the fallback the paper describes.
#pragma once

#include <memory>
#include <vector>

#include "pario/vfs.h"
#include "sim/cluster.h"
#include "util/error.h"

namespace pioblast::pario {

class ClusterStorage {
 public:
  ClusterStorage(const sim::ClusterConfig& cluster, int nranks)
      : shared_(cluster.shared_storage) {
    PIOBLAST_CHECK(nranks >= 1);
    if (cluster.has_local_disks()) {
      locals_.reserve(static_cast<std::size_t>(nranks));
      for (int r = 0; r < nranks; ++r)
        locals_.push_back(std::make_unique<VirtualFS>(*cluster.local_disks));
    }
  }

  VirtualFS& shared() { return shared_; }
  const VirtualFS& shared() const { return shared_; }

  bool has_local_disks() const { return !locals_.empty(); }

  /// Rank-private scratch: the node's local disk when present, otherwise
  /// the shared file system (Altix-style shared job scratch).
  VirtualFS& local_for(int rank) {
    if (locals_.empty()) return shared_;
    PIOBLAST_CHECK(rank >= 0 &&
                   rank < static_cast<int>(locals_.size()));
    return *locals_[static_cast<std::size_t>(rank)];
  }

 private:
  VirtualFS shared_;
  std::vector<std::unique_ptr<VirtualFS>> locals_;
};

}  // namespace pioblast::pario
