// Cluster storage environment: the file systems a simulated job sees, and
// the MPI-IO-style hint set that tunes how the pario layer accesses them.
//
// One shared file system (holding the formatted database, query file, and
// the output file) plus, when the cluster has node-local disks, one private
// file system per rank (mpiBLAST's fragment copy target). On clusters
// without local disks (the ORNL Altix), `local_for` returns the shared
// scratch instead — exactly the fallback the paper describes.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "pario/collective.h"
#include "pario/vfs.h"
#include "sim/cluster.h"
#include "util/error.h"

namespace pioblast::pario {

/// Whether noncontiguous independent reads may be data-sieved (one large
/// covering read per hole-y request window instead of one read per range).
enum class SieveMode {
  kAuto,     ///< sieve when the window's useful-byte density clears ds_density
  kEnable,   ///< always sieve windows that fit the sieve buffer
  kDisable,  ///< never bridge holes; only coalesce adjacent/overlapping runs
};

/// MPI-IO-style access hints, mirroring ROMIO's `cb_nodes` /
/// `cb_buffer_size` / `ind_rd_buffer_size` / `romio_ds_read` family
/// (Thakur/Gropp/Lusk, "Optimizing Noncontiguous Accesses in MPI-IO").
/// Parsed from the CLI's `--pario-hints key=value,...` flag; every driver
/// option struct carries one.
struct Hints {
  // ---- collective buffering (two-phase I/O) ------------------------------
  /// Number of aggregator ranks for collective reads/writes (cb_nodes).
  int cb_nodes = 4;
  /// Per-aggregator exchange-buffer size in bytes (cb_buffer_size): the
  /// two-phase shuffle is chunked into rounds of at most this much data
  /// per aggregator. 0 = one unbounded round (the pre-v2 behavior).
  std::uint64_t cb_buffer_size = 256 * 1024;

  // ---- data sieving for independent noncontiguous reads ------------------
  SieveMode ds_read = SieveMode::kAuto;
  /// Sieve-buffer cap: a covering read never spans more than this.
  std::uint64_t ds_buffer_size = 1024 * 1024;
  /// Auto-mode density floor: a window is sieved only while
  /// useful_bytes / covering_span stays at or above this fraction.
  double ds_density = 0.3;

  // ---- list I/O ----------------------------------------------------------
  /// Coalesce adjacent/overlapping requests of a request list before they
  /// hit the (virtual) device. `false` disables merging AND sieving: every
  /// request becomes one device read (the naive independent-read path).
  bool list_io = true;

  /// The two-phase tuning knobs as a CollectiveConfig.
  CollectiveConfig collective() const { return {cb_nodes, cb_buffer_size}; }

  /// Parses "cb_nodes=8,cb_buffer_size=1m,ds_read=auto,ds_buffer_size=4m,
  /// ds_density=0.5,list=on". Sizes accept k/m/g binary suffixes. Throws
  /// util::RuntimeError on unknown keys or malformed values.
  static Hints parse(const std::string& spec);

  /// Canonical one-line rendering (parseable back through parse()).
  std::string describe() const;
};

class ClusterStorage {
 public:
  ClusterStorage(const sim::ClusterConfig& cluster, int nranks)
      : shared_(cluster.shared_storage) {
    PIOBLAST_CHECK(nranks >= 1);
    if (cluster.has_local_disks()) {
      locals_.reserve(static_cast<std::size_t>(nranks));
      for (int r = 0; r < nranks; ++r)
        locals_.push_back(std::make_unique<VirtualFS>(*cluster.local_disks));
    }
  }

  VirtualFS& shared() { return shared_; }
  const VirtualFS& shared() const { return shared_; }

  bool has_local_disks() const { return !locals_.empty(); }

  /// Rank-private scratch: the node's local disk when present, otherwise
  /// the shared file system (Altix-style shared job scratch).
  VirtualFS& local_for(int rank) {
    if (locals_.empty()) return shared_;
    PIOBLAST_CHECK(rank >= 0 &&
                   rank < static_cast<int>(locals_.size()));
    return *locals_[static_cast<std::size_t>(rank)];
  }

 private:
  VirtualFS shared_;
  std::vector<std::unique_ptr<VirtualFS>> locals_;
};

}  // namespace pioblast::pario
