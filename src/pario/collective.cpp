#include "pario/collective.h"

#include <algorithm>
#include <cstring>
#include <limits>

#include "mpisim/wire.h"
#include "util/error.h"

namespace pioblast::pario {

namespace {

// Driver-visible tags start at 0; Process reserves tags >= 1<<24 for its
// collectives; the pario collectives use a disjoint band above that.
constexpr int kTagShuffle = (1 << 24) + 64;
constexpr int kTagReadReq = (1 << 24) + 65;
constexpr int kTagReadResp = (1 << 24) + 66;
constexpr int kTagFaultSync = (1 << 24) + 67;  ///< liveness bitmap, root->all

/// Agrees on a liveness snapshot before a collective: rank 0 (which the
/// fault model guarantees survives) reads the simulator's dead set and
/// distributes it, so every participant makes the same plan-or-fallback
/// decision even if a rank dies mid-collective later. Only called on
/// fault-tolerant runs.
std::vector<std::uint8_t> sync_liveness(mpisim::Process& p) {
  const auto n = static_cast<std::size_t>(p.size());
  std::vector<std::uint8_t> dead(n, 0);
  if (p.rank() == 0) {
    for (int r = 0; r < p.size(); ++r)
      dead[static_cast<std::size_t>(r)] = p.world().is_dead(r) ? 1 : 0;
    for (int r = 1; r < p.size(); ++r)
      p.send(r, kTagFaultSync, dead);  // sealed mailboxes absorb the dead
  } else {
    dead = p.recv(0, kTagFaultSync).payload;
  }
  return dead;
}

bool any_dead(const std::vector<std::uint8_t>& dead) {
  for (const std::uint8_t d : dead)
    if (d != 0) return true;
  return false;
}

int live_count(const std::vector<std::uint8_t>& dead) {
  int n = 0;
  for (const std::uint8_t d : dead)
    if (d == 0) ++n;
  return n;
}

/// Computes aggregator file-domain boundaries [b0..bA] over the union of
/// all ranks' regions. Executed via gather at rank 0 + broadcast so every
/// rank pays realistic coordination cost.
std::vector<std::uint64_t> agree_domains(mpisim::Process& p, const FileView& view,
                                         int aggregators) {
  std::uint64_t lo = std::numeric_limits<std::uint64_t>::max();
  std::uint64_t hi = 0;
  for (const Region& r : view.regions()) {
    if (r.length == 0) continue;
    lo = std::min(lo, r.offset);
    hi = std::max(hi, r.offset + r.length);
  }
  mpisim::Encoder enc;
  enc.put(lo).put(hi);
  auto gathered = p.gather(enc.bytes(), /*root=*/0);

  std::vector<std::uint8_t> boundary_buf;
  if (p.rank() == 0) {
    std::uint64_t glo = std::numeric_limits<std::uint64_t>::max();
    std::uint64_t ghi = 0;
    for (const auto& contrib : gathered) {
      // A rank crashed mid-collective leaves an empty gather slot.
      if (contrib.empty()) continue;
      mpisim::Decoder dec(contrib);
      glo = std::min(glo, dec.get<std::uint64_t>());
      ghi = std::max(ghi, dec.get<std::uint64_t>());
    }
    if (glo > ghi) {  // nobody has data
      glo = 0;
      ghi = 0;
    }
    std::vector<std::uint64_t> bounds(static_cast<std::size_t>(aggregators) + 1);
    const std::uint64_t span = ghi - glo;
    for (int d = 0; d <= aggregators; ++d) {
      bounds[static_cast<std::size_t>(d)] =
          glo + span * static_cast<std::uint64_t>(d) /
                   static_cast<std::uint64_t>(aggregators);
    }
    mpisim::Encoder benc;
    benc.put_vector(bounds);
    boundary_buf = benc.take();
  }
  p.bcast(boundary_buf, /*root=*/0);
  mpisim::Decoder dec(boundary_buf);
  return dec.get_vector<std::uint64_t>();
}

/// Domain index owning file offset `off` (clamped to the last domain).
std::size_t domain_of(const std::vector<std::uint64_t>& bounds, std::uint64_t off) {
  // bounds is non-decreasing with bounds.size() == A+1.
  const auto it = std::upper_bound(bounds.begin(), bounds.end(), off);
  const auto idx = static_cast<std::size_t>(it - bounds.begin());
  const std::size_t ndomains = bounds.size() - 1;
  if (idx == 0) return 0;
  return std::min(idx - 1, ndomains - 1);
}

}  // namespace

FileView::FileView(std::vector<Region> regions) : regions_(std::move(regions)) {
  for (std::size_t i = 1; i < regions_.size(); ++i) {
    PIOBLAST_CHECK_MSG(
        regions_[i].offset >= regions_[i - 1].offset + regions_[i - 1].length,
        "file view regions must be sorted and disjoint");
  }
}

std::uint64_t FileView::extent() const {
  std::uint64_t total = 0;
  for (const Region& r : regions_) total += r.length;
  return total;
}

void FileView::append(Region r) {
  if (!regions_.empty()) {
    const Region& prev = regions_.back();
    PIOBLAST_CHECK_MSG(r.offset >= prev.offset + prev.length,
                       "file view regions must be appended in order");
  }
  regions_.push_back(r);
}

std::uint64_t collective_write(mpisim::Process& p, VirtualFS& fs,
                               const std::string& path, const FileView& view,
                               std::span<const std::uint8_t> data,
                               const CollectiveConfig& cfg) {
  PIOBLAST_CHECK_MSG(data.size() == view.extent(),
                     "collective_write: buffer size " << data.size()
                                                      << " != view extent "
                                                      << view.extent());
  const int nprocs = p.size();
  const int naggs = std::max(1, std::min(cfg.aggregators, nprocs));

  // Fault-tolerant runs agree on a liveness snapshot first; once any
  // participant is lost the two-phase exchange (whose round structure
  // assumes full participation) is abandoned and every survivor falls
  // back to independent writes of its own regions. Slower — each rank
  // pays seek-heavy non-aggregated I/O — but correct and dead-simple.
  if (p.world().fault_tolerant()) {
    const auto dead = sync_liveness(p);
    if (any_dead(dead)) {
      std::uint64_t buf_pos = 0;
      for (const Region& r : view.regions()) {
        fs.pwrite(path, r.offset, data.subspan(buf_pos, r.length));
        buf_pos += r.length;
      }
      p.io_wait(fs.model().write_seconds(view.extent(), live_count(dead)));
      if (p.rank() == 0) {
        p.trace(mpisim::TraceKind::kRecovery,
                "collective write degraded to independent writes (" +
                    std::to_string(live_count(dead)) + " survivors)");
      }
      p.barrier();
      return data.size();
    }
  }

  const auto bounds = agree_domains(p, view, naggs);

  // ---- phase 1: split regions across aggregator file domains -------------
  std::vector<mpisim::Encoder> batches(static_cast<std::size_t>(naggs));
  std::uint64_t buf_pos = 0;
  for (const Region& r : view.regions()) {
    std::uint64_t off = r.offset;
    std::uint64_t left = r.length;
    while (left > 0) {
      const std::size_t d = domain_of(bounds, off);
      const std::uint64_t dom_end = bounds[d + 1];
      // The last domain is closed on the right; others are half-open.
      const std::uint64_t chunk =
          (d + 1 == static_cast<std::size_t>(naggs) || dom_end <= off)
              ? left
              : std::min(left, dom_end - off);
      batches[d].put<std::uint64_t>(off);
      batches[d].put_bytes(data.subspan(buf_pos, chunk));
      off += chunk;
      buf_pos += chunk;
      left -= chunk;
    }
  }

  // Exchange: each rank sends one (possibly empty) batch to every
  // aggregator; its own batch stays local at memory-copy cost.
  std::vector<std::uint8_t> own_batch;
  for (int d = 0; d < naggs; ++d) {
    auto bytes = batches[static_cast<std::size_t>(d)].take();
    if (d == p.rank()) {
      p.compute(p.cost().memcpy_seconds(bytes.size()));
      own_batch = std::move(bytes);
    } else {
      p.send(d, kTagShuffle, bytes);
    }
  }

  // ---- phase 2: aggregators apply their file domains ---------------------
  if (p.rank() < naggs) {
    std::uint64_t domain_bytes = 0;
    for (int r = 0; r < nprocs; ++r) {
      std::vector<std::uint8_t> batch;
      if (r == p.rank()) {
        batch = std::move(own_batch);
      } else {
        try {
          batch = p.recv(r, kTagShuffle).payload;
        } catch (const mpisim::PeerLostError&) {
          // Rank died between the liveness sync and its shuffle send; its
          // contribution is lost but the survivors' data still lands.
        }
      }
      mpisim::Decoder dec(batch);
      while (!dec.exhausted()) {
        const auto off = dec.get<std::uint64_t>();
        const auto chunk = dec.get_bytes();
        fs.pwrite(path, off, chunk);
        domain_bytes += chunk.size();
      }
    }
    // Large sequential write of the coalesced domain, concurrent with the
    // other aggregators.
    p.io_wait(fs.model().write_seconds(domain_bytes, naggs));
  }

  p.barrier();
  return data.size();
}

std::vector<std::uint8_t> collective_read(mpisim::Process& p, const VirtualFS& fs,
                                          const std::string& path,
                                          const FileView& view,
                                          const CollectiveConfig& cfg) {
  const int nprocs = p.size();
  const int naggs = std::max(1, std::min(cfg.aggregators, nprocs));

  // Same degraded path as collective_write: with a participant lost, the
  // survivors read their own regions independently.
  if (p.world().fault_tolerant()) {
    const auto dead = sync_liveness(p);
    if (any_dead(dead)) {
      std::vector<std::uint8_t> out(view.extent());
      std::uint64_t buf_pos = 0;
      for (const Region& r : view.regions()) {
        const auto bytes = fs.pread(path, r.offset, r.length);
        std::memcpy(out.data() + buf_pos, bytes.data(), bytes.size());
        buf_pos += r.length;
      }
      p.io_wait(fs.model().read_seconds(view.extent(), live_count(dead)));
      if (p.rank() == 0) {
        p.trace(mpisim::TraceKind::kRecovery,
                "collective read degraded to independent reads (" +
                    std::to_string(live_count(dead)) + " survivors)");
      }
      p.barrier();
      return out;
    }
  }

  const auto bounds = agree_domains(p, view, naggs);

  // ---- build per-aggregator request lists --------------------------------
  struct Want {
    std::uint64_t file_off;
    std::uint64_t buf_pos;
    std::uint64_t len;
  };
  std::vector<std::vector<Want>> wants(static_cast<std::size_t>(naggs));
  std::uint64_t buf_pos = 0;
  for (const Region& r : view.regions()) {
    std::uint64_t off = r.offset;
    std::uint64_t left = r.length;
    while (left > 0) {
      const std::size_t d = domain_of(bounds, off);
      const std::uint64_t dom_end = bounds[d + 1];
      const std::uint64_t chunk =
          (d + 1 == static_cast<std::size_t>(naggs) || dom_end <= off)
              ? left
              : std::min(left, dom_end - off);
      wants[d].push_back({off, buf_pos, chunk});
      off += chunk;
      buf_pos += chunk;
      left -= chunk;
    }
  }

  std::vector<std::vector<Want>> local_requests(static_cast<std::size_t>(nprocs));
  for (int d = 0; d < naggs; ++d) {
    mpisim::Encoder enc;
    for (const Want& w : wants[static_cast<std::size_t>(d)])
      enc.put(w.file_off).put(w.buf_pos).put(w.len);
    if (d == p.rank()) {
      local_requests[static_cast<std::size_t>(d)] =
          wants[static_cast<std::size_t>(d)];
    } else {
      p.send(d, kTagReadReq, enc.bytes());
    }
  }

  std::vector<std::uint8_t> out(view.extent());

  // ---- aggregators serve their domains ------------------------------------
  if (p.rank() < naggs) {
    std::uint64_t served = 0;
    std::vector<std::pair<int, mpisim::Encoder>> responses;
    for (int r = 0; r < nprocs; ++r) {
      std::vector<Want> reqs;
      if (r == p.rank()) {
        reqs = std::move(local_requests[static_cast<std::size_t>(r)]);
      } else {
        try {
          const mpisim::Message msg = p.recv(r, kTagReadReq);
          mpisim::Decoder dec(msg.payload);
          while (!dec.exhausted()) {
            Want w;
            w.file_off = dec.get<std::uint64_t>();
            w.buf_pos = dec.get<std::uint64_t>();
            w.len = dec.get<std::uint64_t>();
            reqs.push_back(w);
          }
        } catch (const mpisim::PeerLostError&) {
          // Requester died mid-collective: serve nobody's nothing; the
          // (empty) response below lands in its sealed mailbox.
        }
      }
      mpisim::Encoder resp;
      for (const Want& w : reqs) {
        auto bytes = fs.pread(path, w.file_off, w.len);
        served += w.len;
        if (r == p.rank()) {
          std::memcpy(out.data() + w.buf_pos, bytes.data(), bytes.size());
        } else {
          resp.put(w.buf_pos).put_bytes(bytes);
        }
      }
      if (r != p.rank()) responses.emplace_back(r, std::move(resp));
    }
    // One large concurrent read of the domain, then fan the data out.
    p.io_wait(fs.model().read_seconds(served, naggs));
    for (auto& [r, resp] : responses) p.send(r, kTagReadResp, resp.bytes());
  }

  // ---- requesters assemble their buffers ----------------------------------
  for (int d = 0; d < naggs; ++d) {
    if (d == p.rank()) continue;
    mpisim::Message msg;
    try {
      msg = p.recv(d, kTagReadResp);
    } catch (const mpisim::PeerLostError&) {
      // Aggregator died mid-collective: its domain's bytes are
      // unrecoverable this round; the affected buffer slice stays
      // zero-filled.
      continue;
    }
    mpisim::Decoder dec(msg.payload);
    if (wants[static_cast<std::size_t>(d)].empty()) {
      // The (empty) response still had to be drained to keep the exchange
      // balanced.
      PIOBLAST_CHECK(dec.exhausted());
      continue;
    }
    while (!dec.exhausted()) {
      const auto pos = dec.get<std::uint64_t>();
      const auto bytes = dec.get_bytes();
      std::memcpy(out.data() + pos, bytes.data(), bytes.size());
    }
  }

  p.barrier();
  return out;
}

std::span<const int> collective_internal_tags() {
  static constexpr int kTags[] = {kTagShuffle, kTagReadReq, kTagReadResp,
                                  kTagFaultSync};
  return kTags;
}

}  // namespace pioblast::pario
