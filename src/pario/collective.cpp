#include "pario/collective.h"

#include <algorithm>
#include <cstring>
#include <limits>
#include <utility>

#include "mpisim/wire.h"
#include "util/error.h"

namespace pioblast::pario {

namespace {

// Driver-visible tags start at 0; Process reserves tags >= 1<<24 for its
// collectives; the pario collectives use a disjoint band above that.
constexpr int kTagShuffle = (1 << 24) + 64;
constexpr int kTagReadReq = (1 << 24) + 65;
constexpr int kTagReadResp = (1 << 24) + 66;
constexpr int kTagFaultSync = (1 << 24) + 67;  ///< liveness bitmap, root->all

/// Agrees on a liveness snapshot before a collective: rank 0 (which the
/// fault model guarantees survives) reads the simulator's dead set and
/// distributes it, so every participant makes the same plan-or-fallback
/// decision even if a rank dies mid-collective later. Only called on
/// fault-tolerant runs.
std::vector<std::uint8_t> sync_liveness(mpisim::Process& p) {
  const auto n = static_cast<std::size_t>(p.size());
  std::vector<std::uint8_t> dead(n, 0);
  if (p.rank() == 0) {
    for (int r = 0; r < p.size(); ++r)
      dead[static_cast<std::size_t>(r)] = p.world().is_dead(r) ? 1 : 0;
    for (int r = 1; r < p.size(); ++r)
      p.send(r, kTagFaultSync, dead);  // sealed mailboxes absorb the dead
  } else {
    dead = p.recv(0, kTagFaultSync).payload;
  }
  return dead;
}

bool any_dead(const std::vector<std::uint8_t>& dead) {
  for (const std::uint8_t d : dead)
    if (d != 0) return true;
  return false;
}

int live_count(const std::vector<std::uint8_t>& dead) {
  int n = 0;
  for (const std::uint8_t d : dead)
    if (d == 0) ++n;
  return n;
}

/// Computes aggregator file-domain boundaries [b0..bA] over the union of
/// all ranks' regions. Executed via gather at rank 0 + broadcast so every
/// rank pays realistic coordination cost.
std::vector<std::uint64_t> agree_domains(mpisim::Process& p, const FileView& view,
                                         int aggregators) {
  std::uint64_t lo = std::numeric_limits<std::uint64_t>::max();
  std::uint64_t hi = 0;
  for (const Region& r : view.regions()) {
    if (r.length == 0) continue;
    lo = std::min(lo, r.offset);
    hi = std::max(hi, r.offset + r.length);
  }
  mpisim::Encoder enc;
  enc.put(lo).put(hi);
  auto gathered = p.gather(enc.bytes(), /*root=*/0);

  std::vector<std::uint8_t> boundary_buf;
  if (p.rank() == 0) {
    std::uint64_t glo = std::numeric_limits<std::uint64_t>::max();
    std::uint64_t ghi = 0;
    for (const auto& contrib : gathered) {
      // A rank crashed mid-collective leaves an empty gather slot.
      if (contrib.empty()) continue;
      mpisim::Decoder dec(contrib);
      glo = std::min(glo, dec.get<std::uint64_t>());
      ghi = std::max(ghi, dec.get<std::uint64_t>());
    }
    if (glo > ghi) {  // nobody has data
      glo = 0;
      ghi = 0;
    }
    mpisim::Encoder benc;
    benc.put_vector(domain_split(glo, ghi, aggregators));
    boundary_buf = benc.take();
  }
  p.bcast(boundary_buf, /*root=*/0);
  mpisim::Decoder dec(boundary_buf);
  return dec.get_vector<std::uint64_t>();
}

/// Domain index owning file offset `off` (clamped to the last domain).
std::size_t domain_of(const std::vector<std::uint64_t>& bounds, std::uint64_t off) {
  // bounds is non-decreasing with bounds.size() == A+1.
  const auto it = std::upper_bound(bounds.begin(), bounds.end(), off);
  const auto idx = static_cast<std::size_t>(it - bounds.begin());
  const std::size_t ndomains = bounds.size() - 1;
  if (idx == 0) return 0;
  return std::min(idx - 1, ndomains - 1);
}

/// Number of cb_buffer_size-sized exchange rounds domain `d` needs (at
/// least one, so empty domains still keep the message pattern balanced).
/// Every rank derives this from the agreed bounds, so the round structure
/// is consistent without further coordination.
std::uint64_t rounds_of(const std::vector<std::uint64_t>& bounds, std::size_t d,
                        std::uint64_t buffer_size) {
  const std::uint64_t span = bounds[d + 1] - bounds[d];
  if (buffer_size == 0 || span == 0) return 1;
  return (span + buffer_size - 1) / buffer_size;
}

/// Splits [off, off+len) at domain and round boundaries, invoking
/// `emit(domain, round, chunk_off, chunk_len)` once per piece in file
/// order. The last domain (and each domain's last round) is closed on the
/// right, absorbing any residue beyond its nominal boundary.
template <typename Emit>
void for_each_chunk(const std::vector<std::uint64_t>& bounds,
                    std::uint64_t buffer_size, int naggs, std::uint64_t off,
                    std::uint64_t len, Emit&& emit) {
  std::uint64_t left = len;
  while (left > 0) {
    const std::size_t d = domain_of(bounds, off);
    const std::uint64_t dom_end = bounds[d + 1];
    const bool last_domain =
        d + 1 == static_cast<std::size_t>(naggs) || dom_end <= off;
    std::uint64_t limit = last_domain ? off + left
                                      : std::min(off + left, dom_end);
    std::uint64_t round = 0;
    if (buffer_size != 0) {
      const std::uint64_t nrounds = rounds_of(bounds, d, buffer_size);
      round = std::min((off - bounds[d]) / buffer_size, nrounds - 1);
      if (round + 1 < nrounds) {
        limit = std::min(limit, bounds[d] + (round + 1) * buffer_size);
      }
    }
    const std::uint64_t chunk = limit - off;
    emit(d, round, off, chunk);
    off += chunk;
    left -= chunk;
  }
}

}  // namespace

int effective_aggregators(const CollectiveConfig& cfg, int nprocs) {
  PIOBLAST_CHECK_MSG(cfg.aggregators > 0,
                     "collective I/O: aggregator count (cb_nodes) must be "
                     "positive, got "
                         << cfg.aggregators);
  return std::min(cfg.aggregators, nprocs);
}

std::vector<std::uint64_t> domain_split(std::uint64_t lo, std::uint64_t hi,
                                        int ndomains) {
  PIOBLAST_CHECK_MSG(ndomains >= 1, "domain_split: need >= 1 domain");
  PIOBLAST_CHECK_MSG(lo <= hi, "domain_split: inverted span");
  const std::uint64_t span = hi - lo;
  const auto n = static_cast<std::uint64_t>(ndomains);
  const std::uint64_t base = span / n;
  const std::uint64_t rem = span % n;
  std::vector<std::uint64_t> bounds(static_cast<std::size_t>(ndomains) + 1);
  for (std::uint64_t d = 0; d <= n; ++d) {
    bounds[static_cast<std::size_t>(d)] = lo + d * base + std::min(d, rem);
  }
  return bounds;
}

FileView::FileView(std::vector<Region> regions) : regions_(std::move(regions)) {
  for (std::size_t i = 1; i < regions_.size(); ++i) {
    PIOBLAST_CHECK_MSG(
        regions_[i].offset >= regions_[i - 1].offset + regions_[i - 1].length,
        "file view regions must be sorted and disjoint");
  }
}

std::uint64_t FileView::extent() const {
  std::uint64_t total = 0;
  for (const Region& r : regions_) total += r.length;
  return total;
}

void FileView::append(Region r) {
  if (!regions_.empty()) {
    const Region& prev = regions_.back();
    PIOBLAST_CHECK_MSG(r.offset >= prev.offset + prev.length,
                       "file view regions must be appended in order");
  }
  regions_.push_back(r);
}

std::uint64_t collective_write(mpisim::Process& p, VirtualFS& fs,
                               const std::string& path, const FileView& view,
                               std::span<const std::uint8_t> data,
                               const CollectiveConfig& cfg) {
  PIOBLAST_CHECK_MSG(data.size() == view.extent(),
                     "collective_write: buffer size " << data.size()
                                                      << " != view extent "
                                                      << view.extent());
  const int nprocs = p.size();
  const int naggs = effective_aggregators(cfg, nprocs);

  // Fault-tolerant runs agree on a liveness snapshot first; once any
  // participant is lost the two-phase exchange (whose round structure
  // assumes full participation) is abandoned and every survivor falls
  // back to independent writes of its own regions. Slower — each rank
  // pays seek-heavy non-aggregated I/O — but correct and dead-simple.
  if (p.world().fault_tolerant()) {
    const auto dead = sync_liveness(p);
    if (any_dead(dead)) {
      std::uint64_t buf_pos = 0;
      for (const Region& r : view.regions()) {
        fs.pwrite(path, r.offset, data.subspan(buf_pos, r.length));
        buf_pos += r.length;
      }
      p.io_wait(fs.model().write_seconds(view.extent(), live_count(dead)));
      if (p.rank() == 0) {
        p.trace(mpisim::TraceKind::kRecovery,
                "collective write degraded to independent writes (" +
                    std::to_string(live_count(dead)) + " survivors)");
      }
      p.barrier();
      return data.size();
    }
  }

  const auto bounds = agree_domains(p, view, naggs);

  // ---- phase 1: split regions across aggregator file domains, chunked
  // into cb_buffer_size exchange rounds per domain ------------------------
  std::vector<std::vector<mpisim::Encoder>> batches(
      static_cast<std::size_t>(naggs));
  for (int d = 0; d < naggs; ++d) {
    batches[static_cast<std::size_t>(d)].resize(
        rounds_of(bounds, static_cast<std::size_t>(d), cfg.buffer_size));
  }
  std::uint64_t buf_pos = 0;
  for (const Region& r : view.regions()) {
    for_each_chunk(bounds, cfg.buffer_size, naggs, r.offset, r.length,
                   [&](std::size_t d, std::uint64_t round, std::uint64_t off,
                       std::uint64_t chunk) {
                     batches[d][round].put<std::uint64_t>(off);
                     batches[d][round].put_bytes(data.subspan(buf_pos, chunk));
                     buf_pos += chunk;
                   });
  }

  // Exchange: each rank sends one (possibly empty) batch per round to
  // every aggregator; its own batches stay local at memory-copy cost.
  // Round k of each aggregator is a complete sub-exchange of at most
  // cb_buffer_size file-domain bytes, so aggregator memory stays bounded
  // instead of holding the whole shuffle at once.
  std::vector<std::vector<std::uint8_t>> own_rounds;
  for (int d = 0; d < naggs; ++d) {
    auto& rounds = batches[static_cast<std::size_t>(d)];
    for (auto& round : rounds) {
      auto bytes = round.take();
      if (d == p.rank()) {
        p.compute(p.cost().memcpy_seconds(bytes.size()));
        own_rounds.push_back(std::move(bytes));
      } else {
        p.send(d, kTagShuffle, bytes);
      }
    }
  }

  // ---- phase 2: aggregators apply their file domains round by round ------
  if (p.rank() < naggs) {
    const std::uint64_t nrounds = rounds_of(
        bounds, static_cast<std::size_t>(p.rank()), cfg.buffer_size);
    for (std::uint64_t k = 0; k < nrounds; ++k) {
      std::uint64_t round_bytes = 0;
      for (int r = 0; r < nprocs; ++r) {
        std::vector<std::uint8_t> batch;
        if (r == p.rank()) {
          batch = std::move(own_rounds[k]);
        } else {
          try {
            batch = p.recv(r, kTagShuffle).payload;
          } catch (const mpisim::PeerLostError&) {
            // Rank died between the liveness sync and this round's send;
            // its contribution is lost but the survivors' data still
            // lands.
          }
        }
        mpisim::Decoder dec(batch);
        while (!dec.exhausted()) {
          const auto off = dec.get<std::uint64_t>();
          const auto chunk = dec.get_bytes();
          fs.pwrite(path, off, chunk);
          round_bytes += chunk.size();
        }
      }
      // Large sequential write of this round's coalesced sub-domain,
      // concurrent with the other aggregators.
      if (round_bytes > 0) {
        p.io_wait(fs.model().write_seconds(round_bytes, naggs));
      }
    }
  }

  p.barrier();
  return data.size();
}

std::vector<std::uint8_t> collective_read(mpisim::Process& p, const VirtualFS& fs,
                                          const std::string& path,
                                          const FileView& view,
                                          const CollectiveConfig& cfg) {
  const int nprocs = p.size();
  const int naggs = effective_aggregators(cfg, nprocs);

  // Same degraded path as collective_write: with a participant lost, the
  // survivors read their own regions independently.
  if (p.world().fault_tolerant()) {
    const auto dead = sync_liveness(p);
    if (any_dead(dead)) {
      std::vector<std::uint8_t> out(view.extent());
      std::uint64_t buf_pos = 0;
      for (const Region& r : view.regions()) {
        const auto bytes = fs.pread(path, r.offset, r.length);
        std::memcpy(out.data() + buf_pos, bytes.data(), bytes.size());
        buf_pos += r.length;
      }
      p.io_wait(fs.model().read_seconds(view.extent(), live_count(dead)));
      if (p.rank() == 0) {
        p.trace(mpisim::TraceKind::kRecovery,
                "collective read degraded to independent reads (" +
                    std::to_string(live_count(dead)) + " survivors)");
      }
      p.barrier();
      return out;
    }
  }

  const auto bounds = agree_domains(p, view, naggs);

  // ---- build per-aggregator request lists, chunked at round boundaries ---
  struct Want {
    std::uint64_t file_off;
    std::uint64_t buf_pos;
    std::uint64_t len;
  };
  std::vector<std::vector<Want>> wants(static_cast<std::size_t>(naggs));
  std::uint64_t buf_pos = 0;
  for (const Region& r : view.regions()) {
    for_each_chunk(bounds, cfg.buffer_size, naggs, r.offset, r.length,
                   [&](std::size_t d, std::uint64_t, std::uint64_t off,
                       std::uint64_t chunk) {
                     wants[d].push_back({off, buf_pos, chunk});
                     buf_pos += chunk;
                   });
  }

  std::vector<std::vector<Want>> local_requests(static_cast<std::size_t>(nprocs));
  for (int d = 0; d < naggs; ++d) {
    mpisim::Encoder enc;
    for (const Want& w : wants[static_cast<std::size_t>(d)])
      enc.put(w.file_off).put(w.buf_pos).put(w.len);
    if (d == p.rank()) {
      local_requests[static_cast<std::size_t>(d)] =
          wants[static_cast<std::size_t>(d)];
    } else {
      p.send(d, kTagReadReq, enc.bytes());
    }
  }

  std::vector<std::uint8_t> out(view.extent());

  // ---- aggregators serve their domains round by round ----------------------
  if (p.rank() < naggs) {
    const auto self = static_cast<std::size_t>(p.rank());
    const std::uint64_t nrounds = rounds_of(bounds, self, cfg.buffer_size);
    // Collect each requester's wants, grouped by exchange round.
    std::vector<std::vector<std::vector<Want>>> by_round(
        static_cast<std::size_t>(nprocs));
    for (auto& rounds : by_round)
      rounds.resize(static_cast<std::size_t>(nrounds));
    auto round_of = [&](std::uint64_t off) -> std::uint64_t {
      if (cfg.buffer_size == 0) return 0;
      return std::min((off - bounds[self]) / cfg.buffer_size, nrounds - 1);
    };
    for (int r = 0; r < nprocs; ++r) {
      std::vector<Want> reqs;
      if (r == p.rank()) {
        reqs = std::move(local_requests[static_cast<std::size_t>(r)]);
      } else {
        try {
          const mpisim::Message msg = p.recv(r, kTagReadReq);
          mpisim::Decoder dec(msg.payload);
          while (!dec.exhausted()) {
            Want w;
            w.file_off = dec.get<std::uint64_t>();
            w.buf_pos = dec.get<std::uint64_t>();
            w.len = dec.get<std::uint64_t>();
            reqs.push_back(w);
          }
        } catch (const mpisim::PeerLostError&) {
          // Requester died mid-collective: serve nobody's nothing; the
          // (empty) responses below land in its sealed mailbox.
        }
      }
      for (const Want& w : reqs)
        by_round[static_cast<std::size_t>(r)][round_of(w.file_off)].push_back(w);
    }
    // One bounded sub-domain read per round, then fan that round's data
    // out before touching the next — aggregator memory never exceeds
    // cb_buffer_size plus the in-flight responses.
    for (std::uint64_t k = 0; k < nrounds; ++k) {
      std::uint64_t served = 0;
      std::vector<std::pair<int, mpisim::Encoder>> responses;
      for (int r = 0; r < nprocs; ++r) {
        mpisim::Encoder resp;
        for (const Want& w : by_round[static_cast<std::size_t>(r)][k]) {
          auto bytes = fs.pread(path, w.file_off, w.len);
          served += w.len;
          if (r == p.rank()) {
            std::memcpy(out.data() + w.buf_pos, bytes.data(), bytes.size());
          } else {
            resp.put(w.buf_pos).put_bytes(bytes);
          }
        }
        if (r != p.rank()) responses.emplace_back(r, std::move(resp));
      }
      if (served > 0) p.io_wait(fs.model().read_seconds(served, naggs));
      for (auto& [r, resp] : responses) p.send(r, kTagReadResp, resp.bytes());
    }
  }

  // ---- requesters assemble their buffers, one message per round ------------
  for (int d = 0; d < naggs; ++d) {
    if (d == p.rank()) continue;
    const std::uint64_t nrounds =
        rounds_of(bounds, static_cast<std::size_t>(d), cfg.buffer_size);
    for (std::uint64_t k = 0; k < nrounds; ++k) {
      mpisim::Message msg;
      try {
        msg = p.recv(d, kTagReadResp);
      } catch (const mpisim::PeerLostError&) {
        // Aggregator died mid-collective: this round's bytes are
        // unrecoverable; the affected buffer slices stay zero-filled.
        continue;
      }
      mpisim::Decoder dec(msg.payload);
      while (!dec.exhausted()) {
        const auto pos = dec.get<std::uint64_t>();
        const auto bytes = dec.get_bytes();
        std::memcpy(out.data() + pos, bytes.data(), bytes.size());
      }
    }
  }

  p.barrier();
  return out;
}

std::span<const int> collective_internal_tags() {
  static constexpr int kTags[] = {kTagShuffle, kTagReadReq, kTagReadResp,
                                  kTagFaultSync};
  return kTags;
}

}  // namespace pioblast::pario
