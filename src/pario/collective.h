// Collective I/O with file views (the MPI-IO `MPI_File_set_view` +
// `MPI_File_write_all` analogue), implemented as genuine two-phase I/O.
//
// pioBLAST's parallel output (paper §3.3) builds an MPI file view over the
// shared output file — each worker owns a set of non-contiguous
// (offset, length) regions — and issues one collective write. The MPI-IO
// library then shuffles data among aggregator processes so that each
// aggregator holds a contiguous file domain, and issues large sequential
// writes. We implement exactly that:
//
//   phase 1 (shuffle):  every rank splits its regions across the aggregators'
//                       file domains and sends each aggregator one batch
//                       message (real data movement, charged by the network
//                       model);
//   phase 2 (write):    each aggregator coalesces its batch into runs and
//                       writes them, charged at the device's concurrent
//                       bandwidth; a closing barrier completes the
//                       collective and synchronizes clocks.
//
// The same machinery provides collective reads (used by the optional
// collective-input extension).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "mpisim/process.h"
#include "pario/vfs.h"

namespace pioblast::pario {

/// One contiguous piece of a file view.
struct Region {
  std::uint64_t offset = 0;
  std::uint64_t length = 0;
};

/// A rank's window onto a shared file: an ordered list of disjoint regions.
/// The concatenation of the regions (in order) maps to the rank's linear
/// data buffer, exactly like an MPI file view built from an indexed type.
class FileView {
 public:
  FileView() = default;
  explicit FileView(std::vector<Region> regions);

  const std::vector<Region>& regions() const { return regions_; }

  /// Sum of region lengths == required data buffer size.
  std::uint64_t extent() const;

  /// Appends a region; must start at or after the end of the previous one.
  void append(Region r);

 private:
  std::vector<Region> regions_;
};

/// Tuning knobs for the two-phase exchange.
struct CollectiveConfig {
  int aggregators = 4;  ///< number of aggregator ranks (cb_nodes in ROMIO)
};

/// Collectively writes each rank's `data` through its `view` into `path` on
/// `fs`. Every rank of the job must call this (empty views are fine).
/// Returns the number of bytes this rank contributed.
std::uint64_t collective_write(mpisim::Process& p, VirtualFS& fs,
                               const std::string& path, const FileView& view,
                               std::span<const std::uint8_t> data,
                               const CollectiveConfig& cfg = {});

/// Collectively reads each rank's `view` from `path`; the regions'
/// concatenated bytes are returned in view order. Every rank must call.
std::vector<std::uint8_t> collective_read(mpisim::Process& p, const VirtualFS& fs,
                                          const std::string& path,
                                          const FileView& view,
                                          const CollectiveConfig& cfg = {});

/// The internal-band tags the two-phase exchange uses. Drivers that run
/// with the protocol verifier must pass these through
/// mpisim::VerifyOptions::internal_tags or the tag audit rejects them.
std::span<const int> collective_internal_tags();

}  // namespace pioblast::pario
