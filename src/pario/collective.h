// Collective I/O with file views (the MPI-IO `MPI_File_set_view` +
// `MPI_File_write_all` analogue), implemented as genuine two-phase I/O.
//
// pioBLAST's parallel output (paper §3.3) builds an MPI file view over the
// shared output file — each worker owns a set of non-contiguous
// (offset, length) regions — and issues one collective write. The MPI-IO
// library then shuffles data among aggregator processes so that each
// aggregator holds a contiguous file domain, and issues large sequential
// writes. We implement exactly that:
//
//   phase 1 (shuffle):  every rank splits its regions across the aggregators'
//                       file domains and sends each aggregator one batch
//                       message (real data movement, charged by the network
//                       model);
//   phase 2 (write):    each aggregator coalesces its batch into runs and
//                       writes them, charged at the device's concurrent
//                       bandwidth; a closing barrier completes the
//                       collective and synchronizes clocks.
//
// The same machinery provides collective reads (used by the optional
// collective-input extension).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "mpisim/process.h"
#include "pario/vfs.h"

namespace pioblast::pario {

/// One contiguous piece of a file view.
struct Region {
  std::uint64_t offset = 0;
  std::uint64_t length = 0;
};

/// A rank's window onto a shared file: an ordered list of disjoint regions.
/// The concatenation of the regions (in order) maps to the rank's linear
/// data buffer, exactly like an MPI file view built from an indexed type.
class FileView {
 public:
  FileView() = default;
  explicit FileView(std::vector<Region> regions);

  const std::vector<Region>& regions() const { return regions_; }

  /// Sum of region lengths == required data buffer size.
  std::uint64_t extent() const;

  /// Appends a region; must start at or after the end of the previous one.
  void append(Region r);

 private:
  std::vector<Region> regions_;
};

/// Tuning knobs for the two-phase exchange. Usually derived from
/// pario::Hints (env.h), whose `cb_nodes` / `cb_buffer_size` fields mirror
/// ROMIO's hint names.
struct CollectiveConfig {
  int aggregators = 4;  ///< number of aggregator ranks (cb_nodes in ROMIO)
  /// Per-aggregator exchange-buffer size: the shuffle is chunked into
  /// rounds of at most this much file-domain data per aggregator, bounding
  /// aggregator memory exactly like ROMIO's cb_buffer_size. 0 = one
  /// unbounded round.
  std::uint64_t buffer_size = 256 * 1024;
};

/// Effective aggregator count for a world of `nprocs` ranks:
/// cfg.aggregators clamped down to the world size. Shared by
/// collective_write and collective_read so the two paths can never drift
/// (the verifier's tag audit relies on them agreeing). cfg.aggregators
/// must be positive — a non-positive hint is a caller bug, reported
/// loudly instead of silently clamped.
int effective_aggregators(const CollectiveConfig& cfg, int nprocs);

/// Splits the byte span [lo, hi) into `ndomains` aggregator file domains,
/// spreading the remainder over the leading domains so sizes differ by at
/// most one byte (never a division-rounded runt last domain). Returns the
/// ndomains+1 boundaries; when the span is smaller than `ndomains` the
/// trailing domains are empty (zero-width) rather than degenerate.
/// Exposed for the domain-bound regression tests.
std::vector<std::uint64_t> domain_split(std::uint64_t lo, std::uint64_t hi,
                                        int ndomains);

/// Collectively writes each rank's `data` through its `view` into `path` on
/// `fs`. Every rank of the job must call this (empty views are fine).
/// Returns the number of bytes this rank contributed.
std::uint64_t collective_write(mpisim::Process& p, VirtualFS& fs,
                               const std::string& path, const FileView& view,
                               std::span<const std::uint8_t> data,
                               const CollectiveConfig& cfg = {});

/// Collectively reads each rank's `view` from `path`; the regions'
/// concatenated bytes are returned in view order. Every rank must call.
std::vector<std::uint8_t> collective_read(mpisim::Process& p, const VirtualFS& fs,
                                          const std::string& path,
                                          const FileView& view,
                                          const CollectiveConfig& cfg = {});

/// The internal-band tags the two-phase exchange uses. Drivers that run
/// with the protocol verifier must pass these through
/// mpisim::VerifyOptions::internal_tags or the tag audit rejects them.
std::span<const int> collective_internal_tags();

}  // namespace pioblast::pario
