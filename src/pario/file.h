// Timed individual file I/O (the MPI-IO "individual interface" analogue).
//
// These wrappers move real bytes through a VirtualFS while charging the
// calling rank's virtual clock from the file system's StorageModel. The
// `concurrency` hint tells the model how many clients are streaming the
// device at once; drivers know this from protocol structure (e.g. "all W
// workers read their partitions simultaneously in the input stage").
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "mpisim/process.h"
#include "pario/vfs.h"

namespace pioblast::pario {

/// Reads [offset, offset+len) from `path`, charging `p`'s clock.
std::vector<std::uint8_t> timed_read(mpisim::Process& p, const VirtualFS& fs,
                                     const std::string& path, std::uint64_t offset,
                                     std::uint64_t len, int concurrency = 1);

/// Reads a whole file, charging `p`'s clock.
std::vector<std::uint8_t> timed_read_all(mpisim::Process& p, const VirtualFS& fs,
                                         const std::string& path,
                                         int concurrency = 1);

/// Writes `data` at `offset`, charging `p`'s clock.
void timed_write(mpisim::Process& p, VirtualFS& fs, const std::string& path,
                 std::uint64_t offset, std::span<const std::uint8_t> data,
                 int concurrency = 1);

/// Copies a file between (possibly different) file systems — e.g. the
/// mpiBLAST fragment copy stage from shared storage to a local disk. The
/// clock is charged for the read on `src_fs` and the write on `dst_fs`.
void timed_copy(mpisim::Process& p, const VirtualFS& src_fs,
                const std::string& src_path, VirtualFS& dst_fs,
                const std::string& dst_path, int concurrency = 1);

}  // namespace pioblast::pario
