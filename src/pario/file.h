// Timed individual file I/O (the MPI-IO "individual interface" analogue).
//
// These wrappers move real bytes through a VirtualFS while charging the
// calling rank's virtual clock from the file system's StorageModel. The
// `concurrency` hint tells the model how many clients are streaming the
// device at once; drivers know this from protocol structure (e.g. "all W
// workers read their partitions simultaneously in the input stage").
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "mpisim/process.h"
#include "pario/collective.h"
#include "pario/vfs.h"

namespace pioblast::pario {

struct Hints;  // env.h; env.h includes this header, so only a fwd decl here

/// Reads [offset, offset+len) from `path`, charging `p`'s clock.
std::vector<std::uint8_t> timed_read(mpisim::Process& p, const VirtualFS& fs,
                                     const std::string& path, std::uint64_t offset,
                                     std::uint64_t len, int concurrency = 1);

/// Reads up to `len` bytes at `offset` (short at EOF), charging `p`'s
/// clock for the bytes actually returned — an over-reaching request must
/// not be billed for bytes the device never transferred.
std::vector<std::uint8_t> timed_read_upto(mpisim::Process& p, const VirtualFS& fs,
                                          const std::string& path,
                                          std::uint64_t offset, std::uint64_t len,
                                          int concurrency = 1);

/// Reads a whole file, charging `p`'s clock.
std::vector<std::uint8_t> timed_read_all(mpisim::Process& p, const VirtualFS& fs,
                                         const std::string& path,
                                         int concurrency = 1);

/// Writes `data` at `offset`, charging `p`'s clock.
void timed_write(mpisim::Process& p, VirtualFS& fs, const std::string& path,
                 std::uint64_t offset, std::span<const std::uint8_t> data,
                 int concurrency = 1);

/// Copies a file between (possibly different) file systems — e.g. the
/// mpiBLAST fragment copy stage from shared storage to a local disk. The
/// clock is charged for the read on `src_fs` and the write on `dst_fs`.
void timed_copy(mpisim::Process& p, const VirtualFS& src_fs,
                const std::string& src_path, VirtualFS& dst_fs,
                const std::string& dst_path, int concurrency = 1);

// ---------------------------------------------------------------------------
// List I/O with request merging and data sieving (pario v2).
//
// `list_read` is the noncontiguous independent-read entry point: a request
// list of (offset, length) regions against one file, answered with one
// buffer per request. Before touching the device it coalesces
// adjacent/overlapping requests into runs (list-I/O merging) and — when the
// hints allow — bridges small holes between runs with one large covering
// read per window (data sieving, Thakur/Gropp/Lusk), discarding the
// unwanted bytes. Covering reads may over-reach EOF; they are issued as
// short reads and billed for the bytes actually returned.
// ---------------------------------------------------------------------------

/// Device-level accounting for one list_read call.
struct ListIoStats {
  std::uint64_t requests = 0;      ///< input regions (len > 0)
  std::uint64_t reads_issued = 0;  ///< device reads after merge + sieve
  std::uint64_t bytes_wanted = 0;  ///< sum of requested lengths
  std::uint64_t bytes_read = 0;    ///< bytes actually pulled off the device
  std::uint64_t sieved_reads = 0;  ///< device reads that bridged >= 1 hole
  std::uint64_t merged_runs = 0;   ///< requests absorbed into a prior run

  void add(const ListIoStats& o) {
    requests += o.requests;
    reads_issued += o.reads_issued;
    bytes_wanted += o.bytes_wanted;
    bytes_read += o.bytes_read;
    sieved_reads += o.sieved_reads;
    merged_runs += o.merged_runs;
  }
};

/// Coalesces a request list into sorted disjoint runs (adjacent and
/// overlapping regions merge; zero-length regions drop). Pure helper,
/// exposed for tests and for callers that only need the merge step.
std::vector<Region> merge_regions(std::span<const Region> regions);

/// Reads every region of `regions` from `path`, returning one buffer per
/// input region, in input order (regions may be unsorted and may overlap).
/// Device access is shaped by `hints` (see file-level comment); with
/// `hints.list_io == false` each region is one direct device read — the
/// naive path the benchmarks compare against. `stats`, when non-null, is
/// accumulated into (not reset).
std::vector<std::vector<std::uint8_t>> list_read(
    mpisim::Process& p, const VirtualFS& fs, const std::string& path,
    std::span<const Region> regions, const Hints& hints, int concurrency = 1,
    ListIoStats* stats = nullptr);

}  // namespace pioblast::pario
