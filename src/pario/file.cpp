#include "pario/file.h"

namespace pioblast::pario {

std::vector<std::uint8_t> timed_read(mpisim::Process& p, const VirtualFS& fs,
                                     const std::string& path, std::uint64_t offset,
                                     std::uint64_t len, int concurrency) {
  p.io_wait(fs.model().read_seconds(len, concurrency));
  return fs.pread(path, offset, len);
}

std::vector<std::uint8_t> timed_read_all(mpisim::Process& p, const VirtualFS& fs,
                                         const std::string& path, int concurrency) {
  const std::uint64_t len = fs.size(path);
  p.io_wait(fs.model().read_seconds(len, concurrency));
  return fs.read_all(path);
}

void timed_write(mpisim::Process& p, VirtualFS& fs, const std::string& path,
                 std::uint64_t offset, std::span<const std::uint8_t> data,
                 int concurrency) {
  p.io_wait(fs.model().write_seconds(data.size(), concurrency));
  fs.pwrite(path, offset, data);
}

void timed_copy(mpisim::Process& p, const VirtualFS& src_fs,
                const std::string& src_path, VirtualFS& dst_fs,
                const std::string& dst_path, int concurrency) {
  const std::uint64_t len = src_fs.size(src_path);
  p.io_wait(src_fs.model().read_seconds(len, concurrency));
  auto data = src_fs.read_all(src_path);
  p.io_wait(dst_fs.model().write_seconds(len, concurrency));
  dst_fs.write_all(dst_path, data);
}

}  // namespace pioblast::pario
