#include "pario/file.h"

#include <algorithm>
#include <cstring>

#include "pario/env.h"

namespace pioblast::pario {

std::vector<std::uint8_t> timed_read(mpisim::Process& p, const VirtualFS& fs,
                                     const std::string& path, std::uint64_t offset,
                                     std::uint64_t len, int concurrency) {
  p.io_wait(fs.model().read_seconds(len, concurrency));
  return fs.pread(path, offset, len);
}

std::vector<std::uint8_t> timed_read_upto(mpisim::Process& p, const VirtualFS& fs,
                                          const std::string& path,
                                          std::uint64_t offset, std::uint64_t len,
                                          int concurrency) {
  auto bytes = fs.pread_upto(path, offset, len);
  p.io_wait(fs.model().read_seconds(bytes.size(), concurrency));
  return bytes;
}

std::vector<std::uint8_t> timed_read_all(mpisim::Process& p, const VirtualFS& fs,
                                         const std::string& path, int concurrency) {
  const std::uint64_t len = fs.size(path);
  p.io_wait(fs.model().read_seconds(len, concurrency));
  return fs.read_all(path);
}

void timed_write(mpisim::Process& p, VirtualFS& fs, const std::string& path,
                 std::uint64_t offset, std::span<const std::uint8_t> data,
                 int concurrency) {
  p.io_wait(fs.model().write_seconds(data.size(), concurrency));
  fs.pwrite(path, offset, data);
}

void timed_copy(mpisim::Process& p, const VirtualFS& src_fs,
                const std::string& src_path, VirtualFS& dst_fs,
                const std::string& dst_path, int concurrency) {
  const std::uint64_t len = src_fs.size(src_path);
  p.io_wait(src_fs.model().read_seconds(len, concurrency));
  auto data = src_fs.read_all(src_path);
  p.io_wait(dst_fs.model().write_seconds(len, concurrency));
  dst_fs.write_all(dst_path, data);
}

std::vector<Region> merge_regions(std::span<const Region> regions) {
  std::vector<Region> sorted;
  sorted.reserve(regions.size());
  for (const Region& r : regions)
    if (r.length > 0) sorted.push_back(r);
  std::sort(sorted.begin(), sorted.end(),
            [](const Region& a, const Region& b) { return a.offset < b.offset; });
  std::vector<Region> runs;
  for (const Region& r : sorted) {
    if (!runs.empty() && r.offset <= runs.back().offset + runs.back().length) {
      Region& run = runs.back();
      run.length = std::max(run.offset + run.length, r.offset + r.length) -
                   run.offset;
    } else {
      runs.push_back(r);
    }
  }
  return runs;
}

namespace {

/// One device read covering >= 1 requests, possibly bridging holes.
struct Window {
  std::uint64_t start = 0;
  std::uint64_t end = 0;     ///< exclusive; end - start is the device read
  std::uint64_t useful = 0;  ///< bytes some request actually wants
  bool sieved = false;       ///< bridged at least one hole
};

}  // namespace

std::vector<std::vector<std::uint8_t>> list_read(
    mpisim::Process& p, const VirtualFS& fs, const std::string& path,
    std::span<const Region> regions, const Hints& hints, int concurrency,
    ListIoStats* stats) {
  ListIoStats local;
  std::vector<std::vector<std::uint8_t>> out(regions.size());

  // The naive independent-read path: one exact device read per request, in
  // input order. This is the pre-v2 behavior and the benchmark baseline.
  if (!hints.list_io) {
    for (std::size_t i = 0; i < regions.size(); ++i) {
      const Region& r = regions[i];
      if (r.length == 0) continue;
      out[i] = timed_read(p, fs, path, r.offset, r.length, concurrency);
      local.requests += 1;
      local.reads_issued += 1;
      local.bytes_wanted += r.length;
      local.bytes_read += r.length;
    }
    if (stats != nullptr) stats->add(local);
    return out;
  }

  // ---- plan device reads: sort requests, merge runs, sieve holes ---------
  std::vector<std::size_t> order;
  order.reserve(regions.size());
  for (std::size_t i = 0; i < regions.size(); ++i) {
    if (regions[i].length == 0) continue;
    order.push_back(i);
    local.requests += 1;
    local.bytes_wanted += regions[i].length;
  }
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return regions[a].offset < regions[b].offset;
  });

  const bool may_sieve = hints.ds_read != SieveMode::kDisable;
  std::vector<Window> windows;
  // Requests assigned to each window, parallel to `windows`.
  std::vector<std::vector<std::size_t>> members;
  for (const std::size_t i : order) {
    const Region& r = regions[i];
    const std::uint64_t r_end = r.offset + r.length;
    if (!windows.empty() && r.offset <= windows.back().end) {
      // Adjacent or overlapping: plain list-I/O merging, always on.
      Window& w = windows.back();
      const std::uint64_t overlap = std::min(w.end, r_end) -
                                    std::min(w.end, r.offset);
      w.end = std::max(w.end, r_end);
      w.useful += r.length - overlap;
      members.back().push_back(i);
      local.merged_runs += 1;
      continue;
    }
    if (!windows.empty() && may_sieve) {
      // A hole separates this request from the current window: bridge it
      // with one covering read when the widened window still fits the
      // sieve buffer and (in auto mode) stays dense enough to beat the
      // extra seek it saves.
      const Window& w = windows.back();
      const std::uint64_t span = r_end - w.start;
      const double density = static_cast<double>(w.useful + r.length) /
                             static_cast<double>(span);
      const bool fits = span <= hints.ds_buffer_size;
      const bool dense =
          hints.ds_read == SieveMode::kEnable || density >= hints.ds_density;
      if (fits && dense) {
        Window& back = windows.back();
        back.end = r_end;
        back.useful += r.length;
        back.sieved = true;
        members.back().push_back(i);
        continue;
      }
    }
    windows.push_back({r.offset, r_end, r.length, false});
    members.push_back({i});
  }

  // ---- issue one device read per window, extract the wanted ranges -------
  for (std::size_t wi = 0; wi < windows.size(); ++wi) {
    const Window& w = windows[wi];
    // Covering reads may over-reach EOF (over-reaching requests do too);
    // the device returns a short read and the clock is charged for the
    // bytes actually transferred.
    const auto buf =
        timed_read_upto(p, fs, path, w.start, w.end - w.start, concurrency);
    local.reads_issued += 1;
    local.bytes_read += buf.size();
    if (w.sieved) local.sieved_reads += 1;
    for (const std::size_t i : members[wi]) {
      const Region& r = regions[i];
      const std::uint64_t rel = r.offset - w.start;
      if (rel >= buf.size()) continue;  // request entirely past EOF
      const std::uint64_t take = std::min(r.length, buf.size() - rel);
      out[i].assign(buf.begin() + static_cast<std::ptrdiff_t>(rel),
                    buf.begin() + static_cast<std::ptrdiff_t>(rel + take));
    }
  }

  if (stats != nullptr) stats->add(local);
  return out;
}

}  // namespace pioblast::pario
