// In-memory virtual file system with real bytes.
//
// Every simulated file (formatted database volumes, fragment copies, the
// shared BLAST output file) lives here as an actual byte vector, so
// correctness properties — e.g. "pioBLAST and mpiBLAST produce identical
// output" — are checked on real data. Each VirtualFS carries the
// StorageModel of the device it represents (XFS, NFS, a node-local disk);
// the *timed* access wrappers live in file.h / collective.h.
//
// Raw operations here are untimed and thread-safe; they are the storage
// backend, not the performance model.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "sim/storage.h"

namespace pioblast::pario {

class VirtualFS {
 public:
  explicit VirtualFS(sim::StorageModel model = sim::StorageModel::xfs_parallel())
      : model_(model) {}

  VirtualFS(const VirtualFS&) = delete;
  VirtualFS& operator=(const VirtualFS&) = delete;

  const sim::StorageModel& model() const { return model_; }

  /// Creates an empty file (truncates if it exists).
  void create(const std::string& path);

  /// True if the file exists.
  bool exists(const std::string& path) const;

  /// Removes a file; no-op if absent.
  void remove(const std::string& path);

  /// Current size in bytes; throws if absent.
  std::uint64_t size(const std::string& path) const;

  /// Writes at `offset`, extending the file (zero-filling any gap).
  /// Creates the file if absent.
  void pwrite(const std::string& path, std::uint64_t offset,
              std::span<const std::uint8_t> data);

  /// Reads exactly [offset, offset+len); throws if out of range.
  std::vector<std::uint8_t> pread(const std::string& path, std::uint64_t offset,
                                  std::uint64_t len) const;

  /// Reads up to `len` bytes at `offset`, short (possibly empty) at EOF —
  /// the POSIX pread contract. Sieving's covering reads routinely
  /// over-reach the file tail; callers charge the virtual clock for the
  /// bytes actually returned, not the bytes requested.
  std::vector<std::uint8_t> pread_upto(const std::string& path,
                                       std::uint64_t offset,
                                       std::uint64_t len) const;

  /// Convenience: reads the whole file.
  std::vector<std::uint8_t> read_all(const std::string& path) const;

  /// Convenience: replaces the whole file contents.
  void write_all(const std::string& path, std::span<const std::uint8_t> data);

  /// Sorted list of file paths (diagnostics/tests).
  std::vector<std::string> list() const;

  /// Total bytes stored across all files.
  std::uint64_t total_bytes() const;

 private:
  struct FileData {
    mutable std::mutex mu;
    std::vector<std::uint8_t> bytes;
  };

  std::shared_ptr<FileData> get(const std::string& path) const;
  std::shared_ptr<FileData> get_or_create(const std::string& path);

  sim::StorageModel model_;
  mutable std::mutex mu_;
  std::map<std::string, std::shared_ptr<FileData>> files_;
};

}  // namespace pioblast::pario
