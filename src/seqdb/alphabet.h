// Residue alphabets and encodings.
//
// Sequences are stored in formatted databases as small integer codes (as
// NCBI's .psq/.nsq volumes do); the BLAST engine consumes codes directly so
// scoring-matrix lookups are single array indexes.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace pioblast::seqdb {

/// Sequence molecule type.
enum class SeqType : std::uint8_t {
  kProtein = 0,
  kNucleotide = 1,
};

/// Number of residue codes for a type (includes the unknown residue).
int alphabet_size(SeqType type);

/// Protein alphabet: codes 0..23 for ARNDCQEGHILKMFPSTWYVBZX*, in the
/// classic NCBIstdaa-like ordering used by our BLOSUM62 table.
inline constexpr std::string_view kProteinLetters = "ARNDCQEGHILKMFPSTWYVBZX*";

/// Nucleotide alphabet: codes 0..4 for ACGTN.
inline constexpr std::string_view kDnaLetters = "ACGTN";

/// Encodes one residue character (case-insensitive); unknown characters map
/// to the alphabet's wildcard (X for protein, N for DNA).
std::uint8_t encode_residue(SeqType type, char c);

/// Decodes a residue code back to its canonical letter.
char decode_residue(SeqType type, std::uint8_t code);

/// Encodes a character sequence to codes.
std::vector<std::uint8_t> encode_sequence(SeqType type, std::string_view seq);

/// Decodes a code sequence to letters.
std::string decode_sequence(SeqType type, const std::vector<std::uint8_t>& codes);

/// True if `c` is a plausible residue letter for the type (used by FASTA
/// validation; '*' is accepted for protein stop codons).
bool is_valid_letter(SeqType type, char c);

}  // namespace pioblast::seqdb
