#include "seqdb/partition.h"

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "util/error.h"

namespace pioblast::seqdb {

std::vector<SeqRange> balanced_split(const DbIndex& index, int nfragments) {
  PIOBLAST_CHECK_MSG(nfragments >= 1, "need at least one fragment");
  PIOBLAST_CHECK_MSG(static_cast<std::uint64_t>(nfragments) <= index.num_seqs,
                     "cannot split " << index.num_seqs << " sequences into "
                                     << nfragments << " fragments");
  const std::uint64_t n = index.num_seqs;
  const std::uint64_t total = index.total_residues;
  std::vector<SeqRange> ranges;
  ranges.reserve(static_cast<std::size_t>(nfragments));

  std::uint64_t next_seq = 0;
  for (int f = 0; f < nfragments; ++f) {
    // Residue budget boundary for the end of fragment f.
    const std::uint64_t budget_end =
        total * static_cast<std::uint64_t>(f + 1) /
        static_cast<std::uint64_t>(nfragments);
    std::uint64_t end = next_seq;
    // Every remaining fragment must get at least one sequence.
    const std::uint64_t max_end = n - static_cast<std::uint64_t>(nfragments - 1 - f);
    while (end < max_end &&
           (end < next_seq + 1 || index.seq_offsets[end] < budget_end)) {
      ++end;
    }
    ranges.push_back({next_seq, end - next_seq});
    next_seq = end;
  }
  // Give any tail to the last fragment (possible when budgets round down).
  ranges.back().count += n - next_seq;
  return ranges;
}

void encode_range(mpisim::Encoder& enc, const FragmentRange& r) {
  enc.put(r.fragment_id)
      .put(r.seqs.first)
      .put(r.seqs.count)
      .put(r.psq.offset)
      .put(r.psq.length)
      .put(r.phr.offset)
      .put(r.phr.length)
      .put(r.pin_seq_off.offset)
      .put(r.pin_seq_off.length)
      .put(r.pin_hdr_off.offset)
      .put(r.pin_hdr_off.length);
}

FragmentRange decode_range(mpisim::Decoder& dec) {
  FragmentRange r;
  r.fragment_id = dec.get<int>();
  r.seqs.first = dec.get<std::uint64_t>();
  r.seqs.count = dec.get<std::uint64_t>();
  r.psq.offset = dec.get<std::uint64_t>();
  r.psq.length = dec.get<std::uint64_t>();
  r.phr.offset = dec.get<std::uint64_t>();
  r.phr.length = dec.get<std::uint64_t>();
  r.pin_seq_off.offset = dec.get<std::uint64_t>();
  r.pin_seq_off.length = dec.get<std::uint64_t>();
  r.pin_hdr_off.offset = dec.get<std::uint64_t>();
  r.pin_hdr_off.length = dec.get<std::uint64_t>();
  return r;
}

std::vector<FragmentRange> virtual_partition(const DbIndex& index, int nfragments) {
  const auto splits = balanced_split(index, nfragments);
  std::vector<FragmentRange> out;
  out.reserve(splits.size());
  for (int f = 0; f < nfragments; ++f) {
    const SeqRange& s = splits[static_cast<std::size_t>(f)];
    FragmentRange fr;
    fr.fragment_id = f;
    fr.seqs = s;
    const std::uint64_t lo = s.first;
    const std::uint64_t hi = s.first + s.count;
    fr.psq = {index.seq_offsets[lo], index.seq_offsets[hi] - index.seq_offsets[lo]};
    fr.phr = {index.hdr_offsets[lo], index.hdr_offsets[hi] - index.hdr_offsets[lo]};
    // Slices cover count+1 entries so the worker has both boundaries.
    fr.pin_seq_off = {DbIndex::seq_offsets_pos(lo), (s.count + 1) * 8};
    fr.pin_hdr_off = {DbIndex::hdr_offsets_pos(index.num_seqs, lo),
                      (s.count + 1) * 8};
    out.push_back(fr);
  }
  return out;
}

LoadedFragment fragment_from_slices(const DbIndex& header, const FragmentRange& range,
                                    std::vector<std::uint8_t> pin_seq_off_bytes,
                                    std::vector<std::uint8_t> pin_hdr_off_bytes,
                                    std::vector<std::uint8_t> psq_bytes,
                                    std::vector<std::uint8_t> phr_bytes) {
  const std::uint64_t entries = range.seqs.count + 1;
  PIOBLAST_CHECK_MSG(pin_seq_off_bytes.size() == entries * 8,
                     "sequence-offset slice size mismatch");
  PIOBLAST_CHECK_MSG(pin_hdr_off_bytes.size() == entries * 8,
                     "header-offset slice size mismatch");
  std::vector<std::uint64_t> seq_off(entries);
  std::vector<std::uint64_t> hdr_off(entries);
  std::memcpy(seq_off.data(), pin_seq_off_bytes.data(), entries * 8);
  std::memcpy(hdr_off.data(), pin_hdr_off_bytes.data(), entries * 8);
  return LoadedFragment(header.type, range.seqs.first, std::move(seq_off),
                        std::move(hdr_off), std::move(psq_bytes),
                        std::move(phr_bytes));
}

StaticPartitionResult mpiformatdb(pario::VirtualFS& fs,
                                  const std::vector<FastaRecord>& records,
                                  const std::string& base, SeqType type,
                                  const std::string& title, int nfragments) {
  // Step 1: format the whole database (mpiformatdb wraps formatdb).
  auto formatted = format_db(fs, records, base, type, title);
  const DbIndex& index = formatted.index;
  const auto splits = balanced_split(index, nfragments);

  // Step 2: write one physical volume set per fragment.
  StaticPartitionResult result;
  result.global_index = index;
  result.ranges = splits;
  for (int f = 0; f < nfragments; ++f) {
    const SeqRange& s = splits[static_cast<std::size_t>(f)];
    char suffix[16];
    std::snprintf(suffix, sizeof suffix, ".%03d", f);
    const std::string frag_base = base + suffix;

    std::vector<FastaRecord> slice(
        records.begin() + static_cast<std::ptrdiff_t>(s.first),
        records.begin() + static_cast<std::ptrdiff_t>(s.first + s.count));
    auto frag = format_db(fs, slice, frag_base, type,
                          title + " fragment " + std::to_string(f));
    result.fragment_bases.push_back(frag_base);
    result.bytes_written += frag.formatted_bytes;
  }
  return result;
}

}  // namespace pioblast::seqdb
