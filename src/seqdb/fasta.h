// FASTA parsing and writing.
//
// Raw databases and query sets travel as FASTA text (the paper's workflow:
// raw FASTA -> formatdb -> formatted volumes). The parser is tolerant of
// blank lines, CRLF endings, and arbitrary line wrapping; the writer wraps
// sequences at a fixed column like NCBI tools.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace pioblast::seqdb {

/// One FASTA record. `id` is the first whitespace-delimited token of the
/// defline; `description` is the remainder (possibly empty).
struct FastaRecord {
  std::string id;
  std::string description;
  std::string sequence;

  std::string defline() const {
    return description.empty() ? id : id + " " + description;
  }
};

/// Parses FASTA text into records. Throws util::RuntimeError on malformed
/// input (sequence data before the first '>', empty deflines, records with
/// no residues).
std::vector<FastaRecord> parse_fasta(std::string_view text);

/// Convenience overload for byte buffers read from a VirtualFS.
std::vector<FastaRecord> parse_fasta(std::span<const std::uint8_t> bytes);

/// Serializes records to FASTA text with sequences wrapped at `width`.
std::string write_fasta(const std::vector<FastaRecord>& records, int width = 70);

}  // namespace pioblast::seqdb
