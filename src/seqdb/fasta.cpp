#include "seqdb/fasta.h"

#include <cctype>

#include "util/error.h"

namespace pioblast::seqdb {

std::vector<FastaRecord> parse_fasta(std::string_view text) {
  std::vector<FastaRecord> records;
  FastaRecord current;
  bool in_record = false;

  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string_view::npos) eol = text.size();
    std::string_view line = text.substr(pos, eol - pos);
    pos = eol + 1;
    // Trim a trailing CR (CRLF input) and trailing spaces.
    while (!line.empty() &&
           (line.back() == '\r' || line.back() == ' ' || line.back() == '\t')) {
      line.remove_suffix(1);
    }
    if (line.empty()) continue;

    if (line.front() == '>') {
      if (in_record) {
        PIOBLAST_CHECK_MSG(!current.sequence.empty(),
                           "FASTA record '" << current.id << "' has no residues");
        records.push_back(std::move(current));
        current = {};
      }
      in_record = true;
      std::string_view defline = line.substr(1);
      while (!defline.empty() && defline.front() == ' ') defline.remove_prefix(1);
      PIOBLAST_CHECK_MSG(!defline.empty(), "empty FASTA defline");
      const std::size_t space = defline.find_first_of(" \t");
      if (space == std::string_view::npos) {
        current.id = std::string(defline);
      } else {
        current.id = std::string(defline.substr(0, space));
        std::string_view rest = defline.substr(space + 1);
        while (!rest.empty() && (rest.front() == ' ' || rest.front() == '\t'))
          rest.remove_prefix(1);
        current.description = std::string(rest);
      }
    } else {
      PIOBLAST_CHECK_MSG(in_record, "FASTA sequence data before first defline");
      for (char c : line) {
        if (std::isspace(static_cast<unsigned char>(c))) continue;
        current.sequence.push_back(c);
      }
    }
  }
  if (in_record) {
    PIOBLAST_CHECK_MSG(!current.sequence.empty(),
                       "FASTA record '" << current.id << "' has no residues");
    records.push_back(std::move(current));
  }
  return records;
}

std::vector<FastaRecord> parse_fasta(std::span<const std::uint8_t> bytes) {
  return parse_fasta(std::string_view(reinterpret_cast<const char*>(bytes.data()),
                                      bytes.size()));
}

std::string write_fasta(const std::vector<FastaRecord>& records, int width) {
  PIOBLAST_CHECK(width > 0);
  std::string out;
  for (const FastaRecord& rec : records) {
    out.push_back('>');
    out += rec.defline();
    out.push_back('\n');
    for (std::size_t i = 0; i < rec.sequence.size();
         i += static_cast<std::size_t>(width)) {
      out += rec.sequence.substr(i, static_cast<std::size_t>(width));
      out.push_back('\n');
    }
  }
  return out;
}

}  // namespace pioblast::seqdb
