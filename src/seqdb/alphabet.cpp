#include "seqdb/alphabet.h"

#include <array>
#include <cctype>

#include "util/error.h"

namespace pioblast::seqdb {

namespace {

constexpr int kProteinSize = 24;  // ARNDCQEGHILKMFPSTWYVBZX*
constexpr int kDnaSize = 5;       // ACGTN
constexpr std::uint8_t kProteinX = 22;
constexpr std::uint8_t kDnaN = 4;

std::array<std::uint8_t, 256> build_encode_table(std::string_view letters,
                                                 std::uint8_t wildcard) {
  std::array<std::uint8_t, 256> table{};
  table.fill(wildcard);
  for (std::size_t i = 0; i < letters.size(); ++i) {
    const char c = letters[i];
    table[static_cast<unsigned char>(c)] = static_cast<std::uint8_t>(i);
    table[static_cast<unsigned char>(std::tolower(c))] = static_cast<std::uint8_t>(i);
  }
  return table;
}

const std::array<std::uint8_t, 256>& protein_table() {
  static const auto table = build_encode_table(kProteinLetters, kProteinX);
  return table;
}

const std::array<std::uint8_t, 256>& dna_table() {
  static const auto table = build_encode_table(kDnaLetters, kDnaN);
  return table;
}

}  // namespace

int alphabet_size(SeqType type) {
  return type == SeqType::kProtein ? kProteinSize : kDnaSize;
}

std::uint8_t encode_residue(SeqType type, char c) {
  return type == SeqType::kProtein ? protein_table()[static_cast<unsigned char>(c)]
                                   : dna_table()[static_cast<unsigned char>(c)];
}

char decode_residue(SeqType type, std::uint8_t code) {
  const std::string_view letters =
      type == SeqType::kProtein ? kProteinLetters : kDnaLetters;
  PIOBLAST_CHECK_MSG(code < letters.size(), "residue code out of range: "
                                                << static_cast<int>(code));
  return letters[code];
}

std::vector<std::uint8_t> encode_sequence(SeqType type, std::string_view seq) {
  std::vector<std::uint8_t> codes;
  codes.reserve(seq.size());
  for (char c : seq) codes.push_back(encode_residue(type, c));
  return codes;
}

std::string decode_sequence(SeqType type, const std::vector<std::uint8_t>& codes) {
  std::string out;
  out.reserve(codes.size());
  for (auto code : codes) out.push_back(decode_residue(type, code));
  return out;
}

bool is_valid_letter(SeqType type, char c) {
  const char upper = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  const std::string_view letters =
      type == SeqType::kProtein ? kProteinLetters : kDnaLetters;
  return letters.find(upper) != std::string_view::npos;
}

}  // namespace pioblast::seqdb
