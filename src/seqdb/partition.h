// Database partitioning: physical (mpiformatdb) and virtual (pioBLAST).
//
// Both partitioners split at sequence boundaries and balance fragments by
// residue count, so a fragment's search cost is roughly proportional to its
// share of the database. The virtual partitioner (paper §3.1) never writes
// fragment files: it turns the global index into per-fragment byte ranges
// of the shared volumes, which workers read directly with parallel I/O —
// "one set of global formatted database files can be partitioned
// dynamically into an arbitrary number of virtual fragments at execution
// time".
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "mpisim/wire.h"
#include "pario/collective.h"
#include "pario/vfs.h"
#include "seqdb/formatdb.h"

namespace pioblast::seqdb {

/// Half-open range of sequence ordinals [first, first + count).
struct SeqRange {
  std::uint64_t first = 0;
  std::uint64_t count = 0;
};

/// Splits `num_seqs` sequences into `nfragments` ranges balanced by
/// residues (each fragment gets consecutive sequences whose residue total
/// approximates total/nfragments). Throws if nfragments exceeds num_seqs.
std::vector<SeqRange> balanced_split(const DbIndex& index, int nfragments);

/// One virtual fragment: byte ranges into the three global volume files.
struct FragmentRange {
  int fragment_id = 0;
  SeqRange seqs;
  pario::Region psq;           ///< residues of the fragment in <base>.psq
  pario::Region phr;           ///< deflines of the fragment in <base>.phr
  pario::Region pin_seq_off;   ///< the fragment's slice of seq_offsets in .pin
  pario::Region pin_hdr_off;   ///< the fragment's slice of hdr_offsets in .pin
};

/// Shared wire serialization of a FragmentRange — the one encoding both
/// drivers (and any future scheduler or fault-injection plugin) use when a
/// range crosses a simulated message boundary. Field-by-field so the wire
/// size is exact (no struct padding).
void encode_range(mpisim::Encoder& enc, const FragmentRange& r);
FragmentRange decode_range(mpisim::Decoder& dec);

/// Computes the virtual fragment ranges for a formatted database. The
/// index slices cover count+1 offsets so workers can rebase locally.
std::vector<FragmentRange> virtual_partition(const DbIndex& index, int nfragments);

/// Reconstructs a LoadedFragment from the raw byte slices a worker read
/// from the global volume files (pioBLAST's input stage).
LoadedFragment fragment_from_slices(const DbIndex& header, const FragmentRange& range,
                                    std::vector<std::uint8_t> pin_seq_off_bytes,
                                    std::vector<std::uint8_t> pin_hdr_off_bytes,
                                    std::vector<std::uint8_t> psq_bytes,
                                    std::vector<std::uint8_t> phr_bytes);

/// mpiformatdb: formats and statically partitions a database into
/// `nfragments` physical fragment volume sets `<base>.NNN.*` on `fs`.
/// Returns the per-fragment bases in fragment order plus the global index.
struct StaticPartitionResult {
  std::vector<std::string> fragment_bases;
  std::vector<SeqRange> ranges;
  DbIndex global_index;
  std::uint64_t bytes_written = 0;
};
StaticPartitionResult mpiformatdb(pario::VirtualFS& fs,
                                  const std::vector<FastaRecord>& records,
                                  const std::string& base, SeqType type,
                                  const std::string& title, int nfragments);

}  // namespace pioblast::seqdb

namespace pioblast::mpisim {

/// Typed-channel binding for FragmentRange (delegates to the shared
/// seqdb::encode_range/decode_range serializers above).
template <>
struct WireCodec<seqdb::FragmentRange> {
  static void encode(Encoder& enc, const seqdb::FragmentRange& r) {
    seqdb::encode_range(enc, r);
  }
  static seqdb::FragmentRange decode(Decoder& dec) {
    return seqdb::decode_range(dec);
  }
};

}  // namespace pioblast::mpisim
