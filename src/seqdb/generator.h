// Synthetic sequence database generation.
//
// Stand-in for GenBank nr/nt (see DESIGN.md substitutions). Sequences are
// drawn with realistic residue frequencies and a log-normal length
// distribution; a configurable fraction of sequences are *mutated copies*
// of earlier ones, forming homology families like real protein databases —
// this is what gives query searches rich, multi-alignment hit lists, which
// in turn drives the result-merging volume the paper's experiments measure.
// Everything is seeded and bit-reproducible.
#pragma once

#include <cstdint>
#include <vector>

#include "seqdb/alphabet.h"
#include "seqdb/fasta.h"

namespace pioblast::seqdb {

struct GeneratorConfig {
  SeqType type = SeqType::kProtein;
  std::uint64_t target_residues = 4u << 20;  ///< stop once this many residues exist
  std::uint32_t min_len = 60;
  std::uint32_t max_len = 2000;
  double log_mean = 5.7;    ///< log-normal location (exp(5.7) ~= 300 aa, nr-like)
  double log_sigma = 0.55;  ///< log-normal scale
  double family_fraction = 0.35;  ///< probability a sequence derives from an earlier one
  double mutation_rate = 0.12;    ///< per-residue substitution rate within families
  double indel_rate = 0.01;       ///< per-residue insertion/deletion rate within families
  /// When > 0, caps the number of *root* (de novo) sequences: once that
  /// many roots exist, every further sequence derives from an earlier one.
  /// With uniform parent choice this yields Yule-process family growth —
  /// a few very large families, like the redundancy of real GenBank nr —
  /// which is what saturates per-fragment hit lists in the benchmarks.
  std::uint32_t max_roots = 0;
  std::uint64_t seed = 0x5eedBA57;
  std::string id_prefix = "syn";
};

/// Generates a database; record ids are "<prefix>|NNNNNN" with descriptive
/// deflines, mimicking GenBank-style FASTA.
std::vector<FastaRecord> generate_database(const GeneratorConfig& config);

/// Randomly samples whole records from `db` until the cumulative FASTA text
/// size reaches `target_bytes` (the paper built its query sets by "randomly
/// sampling the nr database itself"). Sampling is without replacement while
/// possible; ids are rewritten to "query_N" to keep output deterministic.
std::vector<FastaRecord> sample_queries(const std::vector<FastaRecord>& db,
                                        std::uint64_t target_bytes,
                                        std::uint64_t seed);

}  // namespace pioblast::seqdb
