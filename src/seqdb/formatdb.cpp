#include "seqdb/formatdb.h"

#include <algorithm>
#include <cstring>

#include "util/error.h"

namespace pioblast::seqdb {

namespace {
constexpr std::uint32_t kMagic = 0x42444250;  // "PBDB"
constexpr std::uint32_t kVersion = 1;
constexpr std::size_t kTitleBytes = 64;
}  // namespace

std::vector<std::uint8_t> DbIndex::serialize() const {
  PIOBLAST_CHECK(seq_offsets.size() == num_seqs + 1);
  PIOBLAST_CHECK(hdr_offsets.size() == num_seqs + 1);
  std::vector<std::uint8_t> out;
  out.reserve(kHeaderBytes + (num_seqs + 1) * 16);

  auto put_u32 = [&](std::uint32_t v) {
    const auto* b = reinterpret_cast<const std::uint8_t*>(&v);
    out.insert(out.end(), b, b + 4);
  };
  auto put_u64 = [&](std::uint64_t v) {
    const auto* b = reinterpret_cast<const std::uint8_t*>(&v);
    out.insert(out.end(), b, b + 8);
  };

  put_u32(kMagic);
  put_u32(kVersion);
  put_u32(static_cast<std::uint32_t>(type));
  put_u32(0);  // reserved
  put_u64(num_seqs);
  put_u64(total_residues);
  put_u64(max_seq_len);
  char title_buf[kTitleBytes] = {};
  std::memcpy(title_buf, title.data(), std::min(title.size(), kTitleBytes - 1));
  out.insert(out.end(), title_buf, title_buf + kTitleBytes);
  PIOBLAST_CHECK(out.size() == kHeaderBytes);

  for (std::uint64_t v : seq_offsets) put_u64(v);
  for (std::uint64_t v : hdr_offsets) put_u64(v);
  return out;
}

DbIndex DbIndex::deserialize_header(std::span<const std::uint8_t> bytes) {
  PIOBLAST_CHECK_MSG(bytes.size() >= kHeaderBytes, "index file too small");
  auto get_u32 = [&](std::size_t pos) {
    std::uint32_t v;
    std::memcpy(&v, bytes.data() + pos, 4);
    return v;
  };
  auto get_u64 = [&](std::size_t pos) {
    std::uint64_t v;
    std::memcpy(&v, bytes.data() + pos, 8);
    return v;
  };
  PIOBLAST_CHECK_MSG(get_u32(0) == kMagic, "bad index magic");
  PIOBLAST_CHECK_MSG(get_u32(4) == kVersion, "bad index version");
  DbIndex idx;
  idx.type = static_cast<SeqType>(get_u32(8));
  idx.num_seqs = get_u64(16);
  idx.total_residues = get_u64(24);
  idx.max_seq_len = get_u64(32);
  const char* title_ptr = reinterpret_cast<const char*>(bytes.data() + 40);
  idx.title.assign(title_ptr, strnlen(title_ptr, kTitleBytes));
  return idx;
}

DbIndex DbIndex::deserialize(std::span<const std::uint8_t> bytes) {
  DbIndex idx = deserialize_header(bytes);
  const std::uint64_t n = idx.num_seqs;
  PIOBLAST_CHECK_MSG(bytes.size() >= kHeaderBytes + (n + 1) * 16,
                     "index file truncated");
  idx.seq_offsets.resize(n + 1);
  idx.hdr_offsets.resize(n + 1);
  std::memcpy(idx.seq_offsets.data(), bytes.data() + kHeaderBytes, (n + 1) * 8);
  std::memcpy(idx.hdr_offsets.data(), bytes.data() + kHeaderBytes + (n + 1) * 8,
              (n + 1) * 8);
  return idx;
}

VolumeNames volume_names(const std::string& base, SeqType type) {
  if (type == SeqType::kProtein)
    return {base + ".pin", base + ".psq", base + ".phr"};
  return {base + ".nin", base + ".nsq", base + ".nhr"};
}

FormatDbResult format_db(pario::VirtualFS& fs, const std::vector<FastaRecord>& records,
                         const std::string& base, SeqType type,
                         const std::string& title) {
  PIOBLAST_CHECK_MSG(!records.empty(), "formatdb: empty database");
  DbIndex idx;
  idx.type = type;
  idx.title = title;
  idx.num_seqs = records.size();
  idx.seq_offsets.reserve(records.size() + 1);
  idx.hdr_offsets.reserve(records.size() + 1);

  std::vector<std::uint8_t> psq;
  std::vector<std::uint8_t> phr;
  std::uint64_t raw_bytes = 0;

  idx.seq_offsets.push_back(0);
  idx.hdr_offsets.push_back(0);
  for (const FastaRecord& rec : records) {
    const auto codes = encode_sequence(type, rec.sequence);
    psq.insert(psq.end(), codes.begin(), codes.end());
    const std::string defline = rec.defline();
    phr.insert(phr.end(), defline.begin(), defline.end());
    idx.seq_offsets.push_back(psq.size());
    idx.hdr_offsets.push_back(phr.size());
    idx.max_seq_len = std::max<std::uint64_t>(idx.max_seq_len, codes.size());
    raw_bytes += rec.sequence.size() + defline.size() + 3;  // '>' + newlines
  }
  idx.total_residues = psq.size();

  const VolumeNames names = volume_names(base, type);
  fs.write_all(names.index, idx.serialize());
  fs.write_all(names.sequence, psq);
  fs.write_all(names.header, phr);

  FormatDbResult result;
  result.base = base;
  result.index = std::move(idx);
  result.raw_bytes = raw_bytes;
  result.formatted_bytes =
      fs.size(names.index) + fs.size(names.sequence) + fs.size(names.header);
  return result;
}

FormatDbResult format_db_from_file(pario::VirtualFS& fs, const std::string& raw_path,
                                   const std::string& base, SeqType type,
                                   const std::string& title) {
  const auto raw = fs.read_all(raw_path);
  auto records = parse_fasta(raw);
  auto result = format_db(fs, records, base, type, title);
  result.raw_bytes = raw.size();
  return result;
}

LoadedFragment::LoadedFragment(SeqType type, std::uint64_t first_global_seq,
                               std::vector<std::uint64_t> seq_offsets,
                               std::vector<std::uint64_t> hdr_offsets,
                               std::vector<std::uint8_t> psq,
                               std::vector<std::uint8_t> phr)
    : type_(type),
      first_global_seq_(first_global_seq),
      seq_offsets_(std::move(seq_offsets)),
      hdr_offsets_(std::move(hdr_offsets)),
      psq_(std::move(psq)),
      phr_(std::move(phr)) {
  PIOBLAST_CHECK_MSG(seq_offsets_.size() >= 2, "fragment must hold >= 1 sequence");
  PIOBLAST_CHECK(hdr_offsets_.size() == seq_offsets_.size());
  // Rebase offsets so the first sequence starts at 0 in the local buffers.
  const std::uint64_t seq_base = seq_offsets_.front();
  const std::uint64_t hdr_base = hdr_offsets_.front();
  for (auto& v : seq_offsets_) v -= seq_base;
  for (auto& v : hdr_offsets_) v -= hdr_base;
  PIOBLAST_CHECK_MSG(seq_offsets_.back() == psq_.size(),
                     "sequence buffer size mismatch: offsets say "
                         << seq_offsets_.back() << ", buffer has " << psq_.size());
  PIOBLAST_CHECK_MSG(hdr_offsets_.back() == phr_.size(),
                     "header buffer size mismatch");
}

std::span<const std::uint8_t> LoadedFragment::sequence(std::uint64_t local) const {
  PIOBLAST_CHECK(local < num_seqs());
  return std::span(psq_.data() + seq_offsets_[local],
                   seq_offsets_[local + 1] - seq_offsets_[local]);
}

std::string_view LoadedFragment::defline(std::uint64_t local) const {
  PIOBLAST_CHECK(local < num_seqs());
  return std::string_view(
      reinterpret_cast<const char*>(phr_.data() + hdr_offsets_[local]),
      hdr_offsets_[local + 1] - hdr_offsets_[local]);
}

LoadedFragment load_volumes(const pario::VirtualFS& fs, const std::string& base,
                            SeqType type, std::uint64_t first_global_seq) {
  const VolumeNames names = volume_names(base, type);
  const DbIndex idx = DbIndex::deserialize(fs.read_all(names.index));
  return LoadedFragment(type, first_global_seq, idx.seq_offsets, idx.hdr_offsets,
                        fs.read_all(names.sequence), fs.read_all(names.header));
}

}  // namespace pioblast::seqdb
