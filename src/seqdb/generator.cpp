#include "seqdb/generator.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdio>
#include <numeric>

#include "util/error.h"
#include "util/rng.h"

namespace pioblast::seqdb {

namespace {

// Robinson & Robinson (1991) amino-acid background frequencies, in the
// order of kProteinLetters (ARNDCQEGHILKMFPSTWYV); B/Z/X/* get zero mass.
constexpr std::array<double, 20> kAaFreq = {
    0.07805, 0.05129, 0.04487, 0.05364, 0.01925, 0.04264, 0.06295,
    0.07377, 0.02199, 0.05142, 0.09019, 0.05744, 0.02243, 0.03856,
    0.05203, 0.07120, 0.05841, 0.01330, 0.03216, 0.06441};

constexpr std::array<double, 4> kNtFreq = {0.293, 0.207, 0.208, 0.292};  // ACGT

/// Builds a cumulative distribution over residue codes.
std::vector<double> cumulative(SeqType type) {
  std::vector<double> cdf;
  double acc = 0;
  if (type == SeqType::kProtein) {
    for (double f : kAaFreq) cdf.push_back(acc += f);
  } else {
    for (double f : kNtFreq) cdf.push_back(acc += f);
  }
  // Normalize the final entry to exactly 1 so sampling never falls off.
  for (double& v : cdf) v /= acc;
  return cdf;
}

std::uint8_t sample_code(util::Rng& rng, const std::vector<double>& cdf) {
  const double u = rng.uniform();
  const auto it = std::lower_bound(cdf.begin(), cdf.end(), u);
  return static_cast<std::uint8_t>(std::min<std::ptrdiff_t>(
      it - cdf.begin(), static_cast<std::ptrdiff_t>(cdf.size()) - 1));
}

/// Deterministic standard normal via Box–Muller on our own RNG (std
/// distributions are implementation-defined, which would break
/// cross-platform reproducibility).
double sample_normal(util::Rng& rng) {
  double u1 = rng.uniform();
  if (u1 < 1e-300) u1 = 1e-300;
  const double u2 = rng.uniform();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
}

std::uint32_t sample_length(util::Rng& rng, const GeneratorConfig& cfg) {
  const double len = std::exp(cfg.log_mean + cfg.log_sigma * sample_normal(rng));
  return std::clamp(static_cast<std::uint32_t>(len), cfg.min_len, cfg.max_len);
}

std::string random_sequence(util::Rng& rng, const std::vector<double>& cdf,
                            SeqType type, std::uint32_t len) {
  std::string seq;
  seq.reserve(len);
  for (std::uint32_t i = 0; i < len; ++i)
    seq.push_back(decode_residue(type, sample_code(rng, cdf)));
  return seq;
}

/// Derives a homolog: point mutations plus occasional 1-8 residue indels.
std::string mutate(util::Rng& rng, const std::vector<double>& cdf, SeqType type,
                   const std::string& parent, const GeneratorConfig& cfg) {
  std::string child;
  child.reserve(parent.size() + 16);
  for (std::size_t i = 0; i < parent.size(); ++i) {
    const double u = rng.uniform();
    if (u < cfg.indel_rate / 2) {
      // Deletion: skip 1-8 residues.
      i += rng.between(0, 7);
      continue;
    }
    if (u < cfg.indel_rate) {
      // Insertion of 1-8 random residues, then keep the original.
      const auto k = rng.between(1, 8);
      for (std::uint64_t j = 0; j < k; ++j)
        child.push_back(decode_residue(type, sample_code(rng, cdf)));
    }
    if (rng.uniform() < cfg.mutation_rate) {
      child.push_back(decode_residue(type, sample_code(rng, cdf)));
    } else {
      child.push_back(parent[i]);
    }
  }
  if (child.empty()) child = parent.substr(0, 1);
  return child;
}

}  // namespace

std::vector<FastaRecord> generate_database(const GeneratorConfig& cfg) {
  PIOBLAST_CHECK(cfg.target_residues > 0);
  PIOBLAST_CHECK(cfg.min_len >= 10 && cfg.min_len <= cfg.max_len);
  util::Rng rng(cfg.seed);
  const auto cdf = cumulative(cfg.type);

  std::vector<FastaRecord> db;
  std::uint64_t residues = 0;
  std::uint64_t serial = 0;
  std::uint32_t roots = 0;
  while (residues < cfg.target_residues) {
    FastaRecord rec;
    char idbuf[48];
    std::snprintf(idbuf, sizeof idbuf, "%s|%06llu", cfg.id_prefix.c_str(),
                  static_cast<unsigned long long>(serial));
    rec.id = idbuf;
    const bool roots_exhausted = cfg.max_roots > 0 && roots >= cfg.max_roots;
    if (!db.empty() &&
        (roots_exhausted || rng.uniform() < cfg.family_fraction)) {
      const auto parent = rng.below(db.size());
      rec.sequence = mutate(rng, cdf, cfg.type, db[parent].sequence, cfg);
      rec.description = "homolog of " + db[parent].id;
    } else {
      rec.sequence = random_sequence(rng, cdf, cfg.type, sample_length(rng, cfg));
      rec.description = "synthetic sequence len=" + std::to_string(rec.sequence.size());
      ++roots;
    }
    residues += rec.sequence.size();
    db.push_back(std::move(rec));
    ++serial;
  }
  return db;
}

std::vector<FastaRecord> sample_queries(const std::vector<FastaRecord>& db,
                                        std::uint64_t target_bytes,
                                        std::uint64_t seed) {
  PIOBLAST_CHECK_MSG(!db.empty(), "cannot sample queries from an empty database");
  util::Rng rng(seed);
  // Shuffle a permutation of indices (Fisher–Yates) and take a prefix.
  std::vector<std::uint64_t> order(db.size());
  std::iota(order.begin(), order.end(), 0);
  for (std::size_t i = order.size(); i > 1; --i) {
    const auto j = rng.below(i);
    std::swap(order[i - 1], order[j]);
  }

  std::vector<FastaRecord> queries;
  std::uint64_t bytes = 0;
  std::size_t cursor = 0;
  std::uint64_t serial = 0;
  while (bytes < target_bytes) {
    const FastaRecord& src = db[order[cursor]];
    cursor = (cursor + 1) % order.size();  // wrap if target exceeds DB size
    FastaRecord q;
    q.id = "query_" + std::to_string(serial++);
    q.description = "sampled from " + src.id;
    q.sequence = src.sequence;
    bytes += q.sequence.size() + q.defline().size() + 3;
    queries.push_back(std::move(q));
  }
  return queries;
}

}  // namespace pioblast::seqdb
