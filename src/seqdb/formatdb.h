// formatdb: raw FASTA -> formatted, searchable database volumes.
//
// Mirrors the NCBI toolchain the paper builds on. A formatted database
// `<base>` consists of three files on the (virtual) file system:
//
//   <base>.pin  index: fixed 104-byte header, then the sequence-offset
//               array and the header-offset array, each (n+1) u64 entries
//               at *computable byte positions* — this is what makes
//               pioBLAST's ranged index reads (paper §3.1) possible;
//   <base>.psq  encoded residues of all sequences, back to back;
//   <base>.phr  deflines of all sequences, back to back.
//
// For nucleotide databases the same layout is written as .nin/.nsq/.nhr.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "pario/vfs.h"
#include "seqdb/alphabet.h"
#include "seqdb/fasta.h"

namespace pioblast::seqdb {

/// Deserialized contents of a `.pin`/`.nin` index file.
struct DbIndex {
  SeqType type = SeqType::kProtein;
  std::string title;
  std::uint64_t num_seqs = 0;
  std::uint64_t total_residues = 0;
  std::uint64_t max_seq_len = 0;
  /// Byte offsets into .psq; entry i..i+1 brackets sequence i. Size n+1.
  std::vector<std::uint64_t> seq_offsets;
  /// Byte offsets into .phr; entry i..i+1 brackets defline i. Size n+1.
  std::vector<std::uint64_t> hdr_offsets;

  /// Fixed serialized header size preceding the offset arrays.
  static constexpr std::uint64_t kHeaderBytes = 104;

  std::uint64_t seq_len(std::uint64_t i) const {
    return seq_offsets[i + 1] - seq_offsets[i];
  }

  /// Byte position of seq_offsets[i] within the serialized index file.
  static std::uint64_t seq_offsets_pos(std::uint64_t i) {
    return kHeaderBytes + i * sizeof(std::uint64_t);
  }

  /// Byte position of hdr_offsets[i] within the serialized index file,
  /// given the database's sequence count.
  static std::uint64_t hdr_offsets_pos(std::uint64_t num_seqs, std::uint64_t i) {
    return kHeaderBytes + (num_seqs + 1 + i) * sizeof(std::uint64_t);
  }

  std::vector<std::uint8_t> serialize() const;
  static DbIndex deserialize(std::span<const std::uint8_t> bytes);

  /// Parses just the fixed header (first kHeaderBytes): type, title and
  /// counts — enough for a master to plan ranged reads without loading the
  /// offset arrays.
  static DbIndex deserialize_header(std::span<const std::uint8_t> bytes);
};

/// File-name suffixes for a database of the given type.
struct VolumeNames {
  std::string index;     ///< <base>.pin or <base>.nin
  std::string sequence;  ///< <base>.psq or <base>.nsq
  std::string header;    ///< <base>.phr or <base>.nhr
};
VolumeNames volume_names(const std::string& base, SeqType type);

/// Result of a formatdb run.
struct FormatDbResult {
  std::string base;
  DbIndex index;
  std::uint64_t raw_bytes = 0;        ///< size of the raw FASTA input
  std::uint64_t formatted_bytes = 0;  ///< total size of the three volumes
};

/// Formats FASTA `records` into volumes `<base>.*` on `fs`.
FormatDbResult format_db(pario::VirtualFS& fs, const std::vector<FastaRecord>& records,
                         const std::string& base, SeqType type,
                         const std::string& title);

/// Convenience: parses raw FASTA text stored at `raw_path` on `fs`, then
/// formats it (the classic `formatdb -i raw` flow).
FormatDbResult format_db_from_file(pario::VirtualFS& fs, const std::string& raw_path,
                                   const std::string& base, SeqType type,
                                   const std::string& title);

/// A database fragment resident in worker memory: either a physical
/// fragment's files (mpiBLAST) or ranged reads of the global volumes
/// (pioBLAST). Offsets are rebased so the buffers are self-contained.
class LoadedFragment {
 public:
  LoadedFragment(SeqType type, std::uint64_t first_global_seq,
                 std::vector<std::uint64_t> seq_offsets,
                 std::vector<std::uint64_t> hdr_offsets,
                 std::vector<std::uint8_t> psq, std::vector<std::uint8_t> phr);

  SeqType type() const { return type_; }
  std::uint64_t num_seqs() const { return seq_offsets_.size() - 1; }
  std::uint64_t first_global_seq() const { return first_global_seq_; }
  std::uint64_t global_id(std::uint64_t local) const {
    return first_global_seq_ + local;
  }

  std::span<const std::uint8_t> sequence(std::uint64_t local) const;
  std::string_view defline(std::uint64_t local) const;
  std::uint64_t residues() const { return psq_.size(); }
  std::uint64_t bytes() const { return psq_.size() + phr_.size(); }

 private:
  SeqType type_;
  std::uint64_t first_global_seq_;
  std::vector<std::uint64_t> seq_offsets_;  ///< rebased to psq_[0]; size n+1
  std::vector<std::uint64_t> hdr_offsets_;  ///< rebased to phr_[0]; size n+1
  std::vector<std::uint8_t> psq_;
  std::vector<std::uint8_t> phr_;
};

/// Loads a whole formatted database (or physical fragment) `<base>.*` from
/// `fs` into memory. Untimed — callers charge I/O via timed wrappers.
LoadedFragment load_volumes(const pario::VirtualFS& fs, const std::string& base,
                            SeqType type, std::uint64_t first_global_seq = 0);

}  // namespace pioblast::seqdb
